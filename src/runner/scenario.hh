/**
 * @file
 * Declarative experiment scenarios.
 *
 * Every paper figure, ablation and sweep in this repo is a grid of
 * independent simulations. A Scenario captures one such grid
 * declaratively: a function expanding sweep options into the flat list
 * of RunConfigs, and a reduce step that turns the finished RunResults
 * back into the figure's human-readable report. The ExperimentEngine
 * runs the grid (serially or across a thread pool); reporters can also
 * emit the raw per-run records as JSON lines or CSV.
 *
 * The ScenarioRegistry is a plain container — registrations are
 * explicit (bench/register_all.cc), not static-initializer magic, so
 * the set of scenarios is deterministic and testable.
 */

#ifndef RUNNER_SCENARIO_HH
#define RUNNER_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace gals::runner
{

/** Sweep-wide knobs every scenario expands against. */
struct SweepOptions
{
    /** Instructions per run. */
    std::uint64_t instructions = 50000;

    /** Benchmarks to sweep; empty means the scenario's default set
     *  (usually all shipped benchmarks). */
    std::vector<std::string> benchmarks;

    /** Workload seed for every run (the first replica's seed when
     *  the sweep is replicated). */
    std::uint64_t seed = 0;

    /** Seed replications (`--seeds N`): each scenario grid is run
     *  once per seed in seedList(). 1 = the classic single sweep. */
    unsigned seedReplicas = 1;

    /** Explicit replica seeds (`--seed-list a,b,c`); overrides
     *  @ref seed / @ref seedReplicas when non-empty. */
    std::vector<std::uint64_t> explicitSeeds;

    /** Grid shard executed by this invocation (`--shard i/N`),
     *  applied to every scenario's replica-expanded flat grid via
     *  shardRunIndices(). Default: inactive (the whole grid, with
     *  normal reports); an explicit 1/1 is a sharded run of one
     *  slice. */
    ShardSpec shard;

    /** @name Fabric axes (`--cores`, `--topology`, `--traffic`)
     *
     * Empty vectors mean "the scenario's default sweep" — the state
     * every pre-fabric invocation is in, so manifests, plan lines and
     * worker command lines only mention these axes when they are
     * explicitly set. Fabric-family scenarios cross their grid with
     * whichever of these are non-empty.
     */
    /// @{
    std::vector<unsigned> coreCounts;
    std::vector<std::string> topologies;
    std::vector<std::string> traffics;

    /** The core-count sweep: coreCounts, or @p def when unset. */
    std::vector<unsigned> coreSet(std::vector<unsigned> def) const
    {
        return coreCounts.empty() ? def : coreCounts;
    }
    /** The topology sweep: topologies, or @p def when unset. */
    std::vector<std::string>
    topologySet(std::vector<std::string> def) const
    {
        return topologies.empty() ? def : topologies;
    }
    /** The traffic sweep: traffics, or @p def when unset. */
    std::vector<std::string>
    trafficSet(std::vector<std::string> def) const
    {
        return traffics.empty() ? def : traffics;
    }
    /// @}

    /** Interval-meter period (`--interval-ticks K`), stamped onto
     *  every expanded run by expandReplicatedRuns(); 0 = off (the
     *  pre-meter state every manifest and plan line is in). */
    std::uint64_t intervalTicks = 0;

    /** Warm-state split (`--warmup-insts K`), stamped by
     *  expandReplicatedRuns() onto every *single-core* run of the
     *  grid (fabric runs do not support warmup snapshots and keep
     *  the field 0, so their hashes never change). 0 = off. */
    std::uint64_t warmupInstructions = 0;

    /** The replica seeds, in run order: @ref explicitSeeds when
     *  given, else seed, seed+1, ..., seed+seedReplicas-1. */
    std::vector<std::uint64_t> seedList() const;

    /** True when the sweep runs more than one replica per grid
     *  point. */
    bool replicated() const { return seedList().size() > 1; }

    /** The benchmark sweep set: @ref benchmarks, or all shipped
     *  benchmarks when empty. */
    std::vector<std::string> benchmarkSet() const;

    /**
     * Defaults from the environment, honouring the knobs the
     * hand-rolled bench drivers always supported: GALSSIM_INSTS
     * (instructions per run) and GALSSIM_BENCH (restrict the sweep to
     * one benchmark).
     */
    static SweepOptions fromEnvironment();
};

struct ReplicaSummary; // runner/stats.hh

/**
 * The finished results of one sweep, as handed to Scenario::reduce.
 *
 * For a single-seed sweep, @ref runs is the engine output in
 * makeRuns() order and @ref replicas is null. For a replicated sweep
 * (SweepOptions::replicated()), @ref runs holds the per-grid-point
 * replica *means* — so existing reduce() code reads means without
 * change — and @ref replicas carries the per-metric spread for
 * reduce() paths that print mean ± 95% CI columns.
 */
struct SweepView
{
    const std::vector<RunResults> &runs;
    const ReplicaSummary *replicas = nullptr;
};

/** One declarative experiment: a run grid plus its report. */
struct Scenario
{
    /** CLI key, e.g. "fig05". */
    std::string name;

    /** Display title, e.g. "Figure 5". */
    std::string figure;

    /** One-line summary for `galsbench --list`. */
    std::string description;

    /** Expand the sweep into independent runs. May be empty for
     *  pure-literature scenarios (Table 1). */
    std::function<std::vector<RunConfig>(const SweepOptions &)> makeRuns;

    /** Turn the finished sweep (per-grid-point results in makeRuns()
     *  order, see SweepView) into the figure's report on stdout. */
    std::function<void(const SweepOptions &, const SweepView &)>
        reduce;
};

/** Named collection of scenarios, in registration order. */
class ScenarioRegistry
{
  public:
    /** Register a scenario; fatal on a duplicate or empty name. */
    void add(Scenario s);

    /**
     * Look up a scenario by CLI key.
     * @param name the Scenario::name, e.g. "fig05".
     * @return the scenario, or nullptr if absent.
     */
    const Scenario *find(const std::string &name) const;

    /** Every registered scenario, in registration order. */
    const std::vector<Scenario> &all() const { return scenarios_; }

    /** Number of registered scenarios. */
    std::size_t size() const { return scenarios_.size(); }

  private:
    std::vector<Scenario> scenarios_;
};

/** @name Pair-sweep helpers
 *
 * Most figures compare a base/GALS pair per sweep point. These helpers
 * fix the convention: appendPair() pushes the base config then the
 * GALS config, so pair i lives at results[2i] / results[2i+1], which
 * pairAt() reassembles.
 */
/// @{

/** Append a base/GALS config pair for one sweep point. */
void appendPair(std::vector<RunConfig> &runs,
                const std::string &benchmark,
                std::uint64_t instructions,
                const DvfsSetting &galsDvfs = DvfsSetting(),
                std::uint64_t seed = 0,
                const ProcessorConfig &proc = ProcessorConfig());

/** Reassemble pair @p i from a flat appendPair()-built result list. */
PairResults pairAt(const std::vector<RunResults> &results,
                   std::size_t i);

/// @}

/**
 * Expand @p s into its replica-expanded flat grid: the scenario's
 * makeRuns() once per seed in opts.seedList() (each call sees
 * SweepOptions::seed set to that replica's seed), concatenated so
 * replica r occupies [r*G, (r+1)*G) for grid size G. Every replica
 * must expand to the same grid size (fatal otherwise: a scenario's
 * grid shape may not depend on the seed).
 *
 * @param gridSize out: the per-replica grid size G (may be null).
 */
std::vector<RunConfig> expandReplicatedRuns(const Scenario &s,
                                            const SweepOptions &opts,
                                            std::size_t *gridSize);

/** The subset of @p runs at @p indices (ascending canonical order —
 *  the shardRunIndices() slice), for executing one shard of a
 *  grid. */
std::vector<RunConfig> selectRuns(const std::vector<RunConfig> &runs,
                                  const std::vector<std::size_t> &indices);

} // namespace gals::runner

#endif // RUNNER_SCENARIO_HH
