/**
 * @file
 * Sweep persistence: trajectory files and run manifests.
 *
 * `galsbench --output PATH` streams the raw per-run records of every
 * executed scenario into one trajectory file — JSON-lines by default,
 * CSV when PATH ends in `.csv` — through the TrajectorySink below.
 * `--manifest PATH` additionally writes a run manifest describing the
 * whole evaluation (galssim version, engine, instruction budget,
 * seeds, shard, and per-scenario grid sizes + config hashes).
 *
 * Both files are deliberately free of timestamps, hostnames and job
 * counts: re-running the same sweep on any machine at any `--jobs`
 * must produce byte-identical bytes, so an archived evaluation can be
 * verified with `cmp` (or `galsbench --verify MANIFEST`).
 *
 * Sharded sweeps (`--shard i/N`) write the same record bytes they
 * would unsharded — each record carries its canonical grid index —
 * so `galsbench --merge` can reassemble N shard files into the
 * canonical single-machine trajectory (runner/merge.hh). The shard
 * manifest records the canonical per-scenario grid (full grid size
 * and full-grid config hash) plus a `shard` object naming the slice.
 */

#ifndef RUNNER_TRAJECTORY_HH
#define RUNNER_TRAJECTORY_HH

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace gals::runner
{

struct SweepOptions;

/** On-disk record format of a trajectory file. */
enum class TrajectoryFormat
{
    jsonLines, ///< one JSON object per run per line
    csv,       ///< one header row, then one row per run
    gtrj,      ///< binary frames (runner/gtrj.hh)
};

/** Format implied by a `--output` path: `.csv` → csv, `.gtrj` →
 *  gtrj, anything else (including `.json` / `.jsonl`) → JSON lines.
 *  Lenient by design — existing extensionless archives stay
 *  readable; the CLI validates new paths with
 *  trajectoryFormatForCliPath() instead. */
TrajectoryFormat trajectoryFormatForPath(const std::string &path);

/** Strict CLI-side parse of a `--output` path: true with @p out set
 *  for the known extensions (`.jsonl` / `.json` / `.csv` / `.gtrj`),
 *  false for anything else — the caller rejects with usage, like the
 *  `--engine` validation, instead of silently writing JSON lines to
 *  a surprising filename. */
bool trajectoryFormatForCliPath(const std::string &path,
                                TrajectoryFormat &out);

/** Short format name for manifests: "jsonl", "csv" or "gtrj". */
const char *trajectoryFormatName(TrajectoryFormat format);

/**
 * An open trajectory file accepting one scenario's finished grid (or
 * shard slice) at a time. Rows are the raw per-run records
 * (per-replica for multi-seed sweeps) in engine order, so the file is
 * byte-identical for any job count. The CSV header is written once,
 * before the first rows.
 *
 * Write errors are detected eagerly: append() fails fatal as soon as
 * the stream goes bad (disk full, unwritable path), rather than
 * burning the rest of the sweep and only noticing at close().
 */
class TrajectorySink
{
  public:
    /**
     * Open @p path; fatal if the file cannot be created. A gtrj sink
     * writes the file header on open (append mode: only when the
     * file is empty, i.e. a fresh slice or a resume scan that
     * truncated everything including a torn header).
     * @param appendMode keep existing contents and append (the
     *     dispatch orchestrator's resumed workers extend a salvaged
     *     record prefix); JSON-lines and gtrj only — a resumed CSV
     *     file would need header reconciliation nothing requires
     *     yet.
     */
    explicit TrajectorySink(const std::string &path,
                            bool appendMode = false);

    /**
     * Write to a caller-owned stream instead of a file — this is how
     * `--verify` regenerates an archived trajectory in memory before
     * byte-comparing it. @p path is used in error messages only.
     */
    TrajectorySink(std::ostream &os, TrajectoryFormat format,
                   const std::string &path = "<stream>");

    /**
     * Append one scenario's cfgs/results (parallel vectors).
     * @p indices, when given, are the canonical grid indices of a
     * shard slice (see writeJsonLines()).
     */
    void append(const std::string &scenario,
                const std::vector<RunConfig> &cfgs,
                const std::vector<RunResults> &results,
                const std::vector<std::size_t> *indices = nullptr);

    /**
     * Append ONE record and flush it to disk before returning
     * (JSON-lines / gtrj). This is the crash-safety primitive behind
     * `galsbench dispatch`: a worker streaming records through
     * appendOne() in canonical order loses at most the one record
     * being written when it is killed, and the surviving prefix is a
     * valid record prefix (JSON lines / gtrj frames) the
     * orchestrator's resume scan can keep.
     * @param canonicalIndex the record's index in the unsharded grid.
     */
    void appendOne(const std::string &scenario, const RunConfig &cfg,
                   const RunResults &result,
                   std::size_t canonicalIndex);

    /** Flush and verify the stream; fatal on any write error. Safe
     *  to call more than once. Caller-owned streams are flushed but
     *  not closed. */
    void close();

    const std::string &path() const { return path_; }
    TrajectoryFormat format() const { return format_; }

  private:
    std::string path_;
    TrajectoryFormat format_;
    std::ofstream file_;
    std::ostream *os_; ///< &file_, or the caller's stream
    bool wroteHeader_ = false;
};

/** One executed scenario as recorded in a manifest. */
struct ManifestScenario
{
    std::string name;           ///< scenario key, e.g. "fig05"
    std::size_t gridSize = 0;   ///< runs per replica (full grid)
    std::size_t replicas = 0;   ///< seed replications
    std::uint64_t configHash = 0; ///< runConfigHash of the full grid
};

/**
 * Write the run manifest as deterministic pretty-printed JSON: fixed
 * key order, no timestamps or host details. @p engineName is the
 * event-queue engine (queueEngineName()), @p outputPath the
 * trajectory file this manifest describes (empty when --output was
 * not given). A sharded sweep (opts.shard.active()) additionally
 * records a `"shard": {"index": i, "count": N}` object; the scenario
 * entries always describe the canonical full grid, so N shard
 * manifests differ from the unsharded manifest only by the shard
 * object and the output path — which is what lets
 * `--merge-manifest` fuse them back byte-identically.
 */
void writeManifest(std::ostream &os, const SweepOptions &opts,
                   const std::string &engineName,
                   const std::string &outputPath,
                   const std::vector<ManifestScenario> &scenarios);

/** writeManifest() to @p path via temp-file + atomic rename, so a
 *  crash mid-write never leaves a torn manifest — either the old
 *  file survives intact or the new one is complete. Fatal on any IO
 *  error. */
void writeManifestFile(const std::string &path,
                       const SweepOptions &opts,
                       const std::string &engineName,
                       const std::string &outputPath,
                       const std::vector<ManifestScenario> &scenarios);

} // namespace gals::runner

#endif // RUNNER_TRAJECTORY_HH
