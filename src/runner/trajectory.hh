/**
 * @file
 * Sweep persistence: trajectory files and run manifests.
 *
 * `galsbench --output PATH` streams the raw per-run records of every
 * executed scenario into one trajectory file — JSON-lines by default,
 * CSV when PATH ends in `.csv` — through the TrajectorySink below.
 * `--manifest PATH` additionally writes a run manifest describing the
 * whole evaluation (galssim version, engine, instruction budget,
 * seeds, and per-scenario grid sizes + config hashes).
 *
 * Both files are deliberately free of timestamps, hostnames and job
 * counts: re-running the same sweep on any machine at any `--jobs`
 * must produce byte-identical bytes, so an archived evaluation can be
 * verified with `cmp`.
 */

#ifndef RUNNER_TRAJECTORY_HH
#define RUNNER_TRAJECTORY_HH

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace gals::runner
{

struct SweepOptions;

/** On-disk record format of a trajectory file. */
enum class TrajectoryFormat
{
    jsonLines, ///< one JSON object per run per line
    csv,       ///< one header row, then one row per run
};

/** Format implied by a `--output` path: `.csv` → csv, anything else
 *  (including `.json` / `.jsonl`) → JSON lines. */
TrajectoryFormat trajectoryFormatForPath(const std::string &path);

/** Short format name for manifests: "jsonl" or "csv". */
const char *trajectoryFormatName(TrajectoryFormat format);

/**
 * An open trajectory file accepting one scenario's finished grid at a
 * time. Rows are the raw per-run records (per-replica for multi-seed
 * sweeps) in engine order, so the file is byte-identical for any job
 * count. The CSV header is written once, before the first rows.
 */
class TrajectorySink
{
  public:
    /** Open (truncate) @p path; fatal if the file cannot be
     *  created. */
    explicit TrajectorySink(const std::string &path);

    /** Append one scenario's cfgs/results (parallel vectors). */
    void append(const std::string &scenario,
                const std::vector<RunConfig> &cfgs,
                const std::vector<RunResults> &results);

    /** Flush and verify the stream; fatal on any write error. Safe
     *  to call more than once. */
    void close();

    const std::string &path() const { return path_; }
    TrajectoryFormat format() const { return format_; }

  private:
    std::string path_;
    TrajectoryFormat format_;
    std::ofstream os_;
    bool wroteHeader_ = false;
};

/** One executed scenario as recorded in a manifest. */
struct ManifestScenario
{
    std::string name;           ///< scenario key, e.g. "fig05"
    std::size_t gridSize = 0;   ///< runs per replica
    std::size_t replicas = 0;   ///< seed replications
    std::uint64_t configHash = 0; ///< runConfigHash of the full grid
};

/**
 * Write the run manifest as deterministic pretty-printed JSON: fixed
 * key order, no timestamps or host details. @p engineName is the
 * event-queue engine (queueEngineName()), @p outputPath the
 * trajectory file this manifest describes (empty when --output was
 * not given).
 */
void writeManifest(std::ostream &os, const SweepOptions &opts,
                   const std::string &engineName,
                   const std::string &outputPath,
                   const std::vector<ManifestScenario> &scenarios);

/** writeManifest() to @p path; fatal on any IO error. */
void writeManifestFile(const std::string &path,
                       const SweepOptions &opts,
                       const std::string &engineName,
                       const std::string &outputPath,
                       const std::vector<ManifestScenario> &scenarios);

} // namespace gals::runner

#endif // RUNNER_TRAJECTORY_HH
