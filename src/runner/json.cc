#include "runner/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace gals::runner::json
{

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : s_(text), error_(error)
    {
    }

    bool
    document(Value &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    const std::string &s_;
    std::string &error_;
    std::size_t pos_ = 0;

    bool
    fail(const std::string &what)
    {
        error_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        return true;
    }

    bool
    value(Value &out)
    {
        switch (peek()) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"':
            out.kind = Value::Kind::string;
            return stringToken(out.str);
          case 't':
            out.kind = Value::Kind::boolean;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = Value::Kind::boolean;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = Value::Kind::null;
            return literal("null");
          default:
            return number(out);
        }
    }

    bool
    object(Value &out)
    {
        out.kind = Value::Kind::object;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (peek() != '"')
                return fail("expected object key");
            if (!stringToken(key))
                return false;
            skipWs();
            if (peek() != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            Value member;
            if (!value(member))
                return false;
            out.members.emplace_back(std::move(key),
                                     std::move(member));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(Value &out)
    {
        out.kind = Value::Kind::array;
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            Value item;
            if (!value(item))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    stringToken(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (++pos_ >= s_.size())
                return fail("dangling escape");
            switch (s_[pos_]) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 >= s_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 1; k <= 4; ++k) {
                    const char h = s_[pos_ + k];
                    if (!std::isxdigit(
                            static_cast<unsigned char>(h)))
                        return fail("bad \\u escape");
                    code = code * 16 +
                           (h <= '9'   ? h - '0'
                            : h <= 'F' ? h - 'A' + 10
                                       : h - 'a' + 10);
                }
                pos_ += 4;
                // Our writers only \u-escape control characters;
                // encode the BMP code point as UTF-8 for anything
                // else so round-trips stay lossless.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    number(Value &out)
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("expected value");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit required after '.'");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit required in exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        out.kind = Value::Kind::number;
        out.raw = s_.substr(start, pos_ - start);
        out.number = std::strtod(out.raw.c_str(), nullptr);
        return true;
    }
};

} // namespace

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

bool
Value::asU64(std::uint64_t &out) const
{
    if (kind != Kind::number || raw.empty() || raw[0] == '-' ||
        raw.find_first_of(".eE") != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
    if (errno == ERANGE || end == raw.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parse(const std::string &text, Value &out, std::string &error)
{
    out = Value();
    error.clear();
    return Parser(text, error).document(out);
}

} // namespace gals::runner::json
