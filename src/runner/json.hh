/**
 * @file
 * Minimal strict JSON reader for galssim's own record formats.
 *
 * `--merge` and `--verify` must read back the manifests and
 * trajectory records this repo writes (runner/trajectory.hh,
 * runner/reporter.hh). This is a small recursive-descent parser over
 * the full JSON grammar — objects, arrays, strings with escapes,
 * numbers, literals — strict in what it accepts (no trailing
 * garbage, no bare nan/inf) and careful to keep the raw token text
 * of numbers, so 64-bit seeds and config hashes round-trip without
 * passing through double.
 *
 * It is a reader, not a serializer: writing stays with the
 * hand-formatted writers so archived files remain byte-stable.
 */

#ifndef RUNNER_JSON_HH
#define RUNNER_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gals::runner::json
{

/** One parsed JSON value. */
struct Value
{
    enum class Kind
    {
        null,
        boolean,
        number,
        string,
        array,
        object,
    };

    Kind kind = Kind::null;

    bool boolean = false;      ///< Kind::boolean
    double number = 0.0;       ///< Kind::number
    std::string raw;           ///< Kind::number: exact token text
    std::string str;           ///< Kind::string (unescaped)
    std::vector<Value> items;  ///< Kind::array
    /** Kind::object, in document order. */
    std::vector<std::pair<std::string, Value>> members;

    bool isNull() const { return kind == Kind::null; }

    /** Object member by key, or nullptr (also for non-objects). */
    const Value *find(const std::string &key) const;

    /**
     * The exact unsigned 64-bit value of a number token.
     * @return false for non-numbers, negatives, fractions or
     *     out-of-range values.
     */
    bool asU64(std::uint64_t &out) const;
};

/**
 * Parse @p text as exactly one JSON value (surrounding whitespace
 * allowed, trailing garbage rejected).
 * @param error on failure: a one-line description with the byte
 *     offset.
 * @return true on success, filling @p out.
 */
bool parse(const std::string &text, Value &out, std::string &error);

} // namespace gals::runner::json

#endif // RUNNER_JSON_HH
