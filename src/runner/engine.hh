/**
 * @file
 * Thread-pool executor for experiment grids.
 *
 * Every RunConfig is an independent simulation — it owns its
 * EventQueue, Processor, caches and energy accounts — so a sweep is
 * embarrassingly parallel. The engine fans a batch out over worker
 * threads and stores each result at its config's index, so the output
 * is deterministic and element-wise identical to the serial runMany()
 * regardless of the job count or scheduling order.
 */

#ifndef RUNNER_ENGINE_HH
#define RUNNER_ENGINE_HH

#include <vector>

#include "core/experiment.hh"

namespace gals::runner
{

/** Parallel experiment executor. */
class ExperimentEngine
{
  public:
    /**
     * @param jobs worker threads; 0 picks the hardware thread
     *     count, 1 degenerates to the serial runMany().
     */
    explicit ExperimentEngine(unsigned jobs = 1);

    /**
     * Run the batch across the worker pool.
     * @param cfgs independent run configurations.
     * @return results element-wise: results[i] belongs to cfgs[i],
     *     byte-identical for any job count.
     */
    std::vector<RunResults> run(const std::vector<RunConfig> &cfgs) const;

    /** Resolved worker-thread count (never 0). */
    unsigned jobs() const { return jobs_; }

    /** Hardware thread count (at least 1). */
    static unsigned hardwareJobs();

  private:
    unsigned jobs_;
};

} // namespace gals::runner

#endif // RUNNER_ENGINE_HH
