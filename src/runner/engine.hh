/**
 * @file
 * Thread-pool executor for experiment grids.
 *
 * Every RunConfig is an independent simulation — it owns its
 * EventQueue, Processor, caches and energy accounts — so a sweep is
 * embarrassingly parallel. The engine fans a batch out over worker
 * threads and stores each result at its config's index, so the output
 * is deterministic and element-wise identical to the serial runMany()
 * regardless of the job count or scheduling order.
 *
 * Scheduling is work stealing: each worker starts with a contiguous
 * block of run indices in its own deque and, when it runs dry, steals
 * from the tail of another worker's deque. Run lengths are strongly
 * heterogeneous (fpppp simulates ~3x longer than adpcm at equal
 * instruction counts), so a static division can leave most of the
 * pool idle behind one slow worker; stealing keeps every thread busy
 * until the whole grid drains. Because results land in per-index
 * slots, the *order of execution* is free to vary while the *output*
 * stays byte-identical.
 */

#ifndef RUNNER_ENGINE_HH
#define RUNNER_ENGINE_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "core/experiment.hh"

namespace gals::runner
{

/** Parallel experiment executor. */
class ExperimentEngine
{
  public:
    /**
     * @param jobs worker threads; 0 picks the hardware thread
     *     count, 1 degenerates to the serial runMany().
     */
    explicit ExperimentEngine(unsigned jobs = 1);

    /**
     * Run the batch across the worker pool.
     * @param cfgs independent run configurations.
     * @return results element-wise: results[i] belongs to cfgs[i],
     *     byte-identical for any job count.
     */
    std::vector<RunResults> run(const std::vector<RunConfig> &cfgs) const;

    /**
     * The work-stealing core, exposed for generic index-addressed
     * work: execute @p task(i) exactly once for every i in
     * [0, count), spread over the pool. @p task must be safe to call
     * concurrently for distinct indices and must confine its effects
     * to index-owned state (the run() wrapper writes results[i]).
     * A task that throws aborts the sweep (fatal) after the pool
     * joins.
     */
    void runIndexed(std::size_t count,
                    const std::function<void(std::size_t)> &task) const;

    /** Resolved worker-thread count (never 0). */
    unsigned jobs() const { return jobs_; }

    /** Hardware thread count (at least 1). */
    static unsigned hardwareJobs();

  private:
    unsigned jobs_;
};

} // namespace gals::runner

#endif // RUNNER_ENGINE_HH
