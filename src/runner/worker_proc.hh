/**
 * @file
 * Worker subprocess management for the dispatch orchestrator.
 *
 * A WorkerProc wraps one `galsbench --shard i/M` worker: fork + exec
 * with both stdout and stderr redirected to a per-slice log file,
 * non-blocking exit polling (the orchestrator's event loop must
 * never block on one worker while others finish), and SIGKILL for
 * stragglers. The destructor kills and reaps a still-running child,
 * so no code path — including fatal error exits in the orchestrator
 * — leaks a worker or a zombie.
 *
 * This is deliberately plain POSIX (fork/execv/waitpid/kill): the
 * orchestrator's crash-safety story depends on workers being real
 * processes that the kernel can take away at any instant.
 */

#ifndef RUNNER_WORKER_PROC_HH
#define RUNNER_WORKER_PROC_HH

#include <string>
#include <vector>

#include <sys/types.h>

namespace gals::runner
{

/** One launched worker subprocess. Movable, not copyable. */
class WorkerProc
{
  public:
    /** What a poll() observed. */
    enum class Poll
    {
        running,  ///< still alive
        exitedOk, ///< exited with status 0
        failed,   ///< non-zero exit or killed by a signal
    };

    WorkerProc() = default;
    WorkerProc(const WorkerProc &) = delete;
    WorkerProc &operator=(const WorkerProc &) = delete;

    /** Kills (SIGKILL) and reaps the child if still running. */
    ~WorkerProc();

    /**
     * Fork and exec @p argv (argv[0] is the binary path), with the
     * child's stdout + stderr appended to @p logPath.
     * @param err on failure: why the launch did not happen.
     * @return true iff the child is now running.
     */
    bool start(const std::vector<std::string> &argv,
               const std::string &logPath, std::string &err);

    /** True between a successful start() and the poll()/kill() that
     *  reaped the child. */
    bool running() const { return pid_ > 0; }

    /**
     * Non-blocking status check; reaps the child when it has exited.
     * @param detail on exitedOk/failed: "exit N" / "signal N".
     * @return Poll::running while the child is still alive.
     */
    Poll poll(std::string &detail);

    /** SIGKILL the child and reap it (blocking — SIGKILL cannot be
     *  ignored, so the wait is bounded). No-op if not running. */
    void kill();

    /** Child pid, or -1. */
    pid_t pid() const { return pid_; }

  private:
    pid_t pid_ = -1;
};

} // namespace gals::runner

#endif // RUNNER_WORKER_PROC_HH
