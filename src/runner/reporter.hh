/**
 * @file
 * Machine-readable reporters for experiment sweeps.
 *
 * The scenarios' own reduce() steps print the paper-style tables; the
 * reporters here emit the raw per-run records instead — one JSON
 * object per line, or CSV with a header row — for trajectory files
 * and downstream analysis. Doubles are printed round-trip exact, so
 * serial and parallel runs of the same grid produce byte-identical
 * output.
 */

#ifndef RUNNER_REPORTER_HH
#define RUNNER_REPORTER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace gals::runner
{

/** How a sweep's results are rendered. */
enum class OutputFormat
{
    table, ///< the scenario's own human-readable reduce()
    json,  ///< one JSON object per run, one per line
    csv,   ///< header row + one CSV row per run
};

/** Parse "table" / "json" / "csv"; fatal on anything else. */
OutputFormat parseOutputFormat(const std::string &name);

/** Emit one JSON object per run (JSON-lines). */
void writeJsonLines(std::ostream &os, const std::string &scenario,
                    const std::vector<RunConfig> &cfgs,
                    const std::vector<RunResults> &results);

/** Emit a CSV table, one row per run, unit energies flattened into
 *  energy_nj.<unit> columns. */
void writeCsv(std::ostream &os, const std::string &scenario,
              const std::vector<RunConfig> &cfgs,
              const std::vector<RunResults> &results);

} // namespace gals::runner

#endif // RUNNER_REPORTER_HH
