/**
 * @file
 * Machine-readable reporters for experiment sweeps.
 *
 * The scenarios' own reduce() steps print the paper-style tables; the
 * reporters here emit the raw per-run records instead — one JSON
 * object per line, or CSV with a header row — for trajectory files
 * and downstream analysis. Doubles are printed round-trip exact, so
 * serial and parallel runs of the same grid produce byte-identical
 * output.
 */

#ifndef RUNNER_REPORTER_HH
#define RUNNER_REPORTER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace gals::runner
{

class ScenarioRegistry;
struct SweepOptions;

/** How a sweep's results are rendered. */
enum class OutputFormat
{
    table,    ///< the scenario's own human-readable reduce()
    json,     ///< one JSON object per run, one per line
    csv,      ///< header row + one CSV row per run
    markdown, ///< scenario catalog table (valid with --list only)
};

/** Parse "table" / "json" / "csv" / "md"; fatal on anything else. */
OutputFormat parseOutputFormat(const std::string &name);

/** Emit one JSON object per run (JSON-lines). */
void writeJsonLines(std::ostream &os, const std::string &scenario,
                    const std::vector<RunConfig> &cfgs,
                    const std::vector<RunResults> &results);

/** Emit a CSV table, one row per run, unit energies flattened into
 *  energy_nj.<unit> columns. */
void writeCsv(std::ostream &os, const std::string &scenario,
              const std::vector<RunConfig> &cfgs,
              const std::vector<RunResults> &results);

/**
 * Emit the scenario catalog as a markdown table (one row per
 * registered scenario: name, figure/table reference, description,
 * grid size and instructions per run at @p opts). This is what
 * `galsbench --list --format md` prints and what docs/SCENARIOS.md is
 * generated from; CI regenerates it and fails on drift, so the output
 * must be deterministic for fixed registry + options.
 */
void writeScenarioCatalogMarkdown(std::ostream &os,
                                  const ScenarioRegistry &registry,
                                  const SweepOptions &opts);

} // namespace gals::runner

#endif // RUNNER_REPORTER_HH
