/**
 * @file
 * Machine-readable reporters for experiment sweeps.
 *
 * The scenarios' own reduce() steps print the paper-style tables; the
 * reporters here emit the raw per-run records instead — one JSON
 * object per line, or CSV with a header row — for trajectory files
 * and downstream analysis. Doubles are printed round-trip exact, so
 * serial and parallel runs of the same grid produce byte-identical
 * output.
 *
 * The records are strict: string fields are JSON-escaped /
 * RFC-4180-quoted, and non-finite doubles render as JSON `null`
 * (empty in CSV) rather than the bare `nan`/`inf` every parser
 * rejects.
 *
 * For replicated (multi-seed) sweeps, the *Summary writers emit one
 * aggregated record per grid point with `<metric>` (mean) and
 * `<metric>_ci95` (95% confidence half-width) columns; the raw
 * per-replica rows belong in the trajectory file
 * (runner/trajectory.hh).
 */

#ifndef RUNNER_REPORTER_HH
#define RUNNER_REPORTER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace gals::runner
{

class ScenarioRegistry;
struct SweepOptions;
struct ReplicaSummary;

/** How a sweep's results are rendered. */
enum class OutputFormat
{
    table,    ///< the scenario's own human-readable reduce()
    json,     ///< one JSON object per run, one per line
    csv,      ///< header row + one CSV row per run
    markdown, ///< scenario catalog table (valid with --list only)
};

/** Parse "table" / "json" / "csv" / "md"; fatal on anything else. */
OutputFormat parseOutputFormat(const std::string &name);

/** @name Record-format primitives
 *
 * Shared by the reporters, the trajectory sink and the manifest
 * writer, so every emitted file obeys the same quoting rules.
 */
/// @{

/** JSON string literal for @p s, including the surrounding quotes:
 *  escapes `"`, `\` and control characters. */
std::string jsonQuote(const std::string &s);

/** RFC-4180 CSV field: quoted (with internal quotes doubled) when
 *  @p s contains a comma, quote or newline; verbatim otherwise. */
std::string csvField(const std::string &s);

/// @}

/**
 * Emit one JSON object per run (JSON-lines). @p indices, when given,
 * supplies each record's canonical run index (its position in the
 * full unsharded grid) instead of the default 0..n-1 — a shard's
 * records then carry the same bytes they would in an unsharded run,
 * which is what lets `--merge` reassemble shard files cmp-identical
 * to the single-machine trajectory.
 */
void writeJsonLines(std::ostream &os, const std::string &scenario,
                    const std::vector<RunConfig> &cfgs,
                    const std::vector<RunResults> &results,
                    const std::vector<std::size_t> *indices = nullptr);

/** Emit a CSV table, one row per run, unit energies flattened into
 *  energy_nj.<unit> columns. */
void writeCsv(std::ostream &os, const std::string &scenario,
              const std::vector<RunConfig> &cfgs,
              const std::vector<RunResults> &results);

/** @name CSV header/rows split
 *
 * The trajectory sink appends several scenarios to one file and must
 * write the header exactly once; writeCsv() is header + rows.
 */
/// @{

/** The CSV header row. @p sample supplies the unit-energy column
 *  set (identical for every run: the power-model Unit enum). */
void writeCsvHeader(std::ostream &os, const RunResults &sample);

/** CSV data rows only, in the writeCsvHeader() column order.
 *  @p indices as in writeJsonLines(): canonical run indices for
 *  shard slices. */
void writeCsvRows(std::ostream &os, const std::string &scenario,
                  const std::vector<RunConfig> &cfgs,
                  const std::vector<RunResults> &results,
                  const std::vector<std::size_t> *indices = nullptr);

/// @}

/** @name Aggregated (replicated-sweep) records
 *
 * One record per grid point instead of per run: each scalar metric
 * becomes a `<name>` mean plus `<name>_ci95` half-width pair, the
 * per-replica seed columns are replaced by a `replicas` count, and
 * unit energies are replica means. @p gridCfgs is the first replica
 * block (size == summary.gridSize).
 */
/// @{

void writeJsonLinesSummary(std::ostream &os,
                           const std::string &scenario,
                           const std::vector<RunConfig> &gridCfgs,
                           const ReplicaSummary &summary);

void writeCsvSummary(std::ostream &os, const std::string &scenario,
                     const std::vector<RunConfig> &gridCfgs,
                     const ReplicaSummary &summary);

/// @}

/**
 * Emit the scenario catalog as a markdown table (one row per
 * registered scenario: name, figure/table reference, description,
 * grid size and instructions per run at @p opts). This is what
 * `galsbench --list --format md` prints and what docs/SCENARIOS.md is
 * generated from; CI regenerates it and fails on drift, so the output
 * must be deterministic for fixed registry + options.
 */
void writeScenarioCatalogMarkdown(std::ostream &os,
                                  const ScenarioRegistry &registry,
                                  const SweepOptions &opts);

} // namespace gals::runner

#endif // RUNNER_REPORTER_HH
