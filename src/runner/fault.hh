/**
 * @file
 * Deterministic fault injection for orchestrator workers —
 * TEST-ONLY machinery.
 *
 * The dispatch orchestrator (runner/orchestrator.hh) has to survive
 * workers that crash or hang mid-slice, and those failure paths must
 * be *deterministically* testable: "kill a random worker and hope"
 * is not a regression test. A worker launched with the hidden
 * `--fault-exit-after K` / `--fault-hang-after K` flags (or the
 * `GALSSIM_FAULT=exit-after=K` / `hang-after=K` environment
 * variable) counts the trajectory records it has flushed and, once K
 * of them are on disk, either dies abruptly (`_exit`, like a
 * SIGKILL'd process: no destructors, no stream flushes) or stalls
 * forever (exercising the orchestrator's straggler deadline).
 * K = 0 faults at sweep start, before the first record.
 *
 * The plan is process-global and disabled by default; nothing in a
 * normal run ever consults it beyond one integer comparison per
 * flushed record.
 */

#ifndef RUNNER_FAULT_HH
#define RUNNER_FAULT_HH

#include <cstdint>
#include <string>

namespace gals::runner
{

/** An injected worker fault: trigger after this many flushed
 *  trajectory records. disabled = never. */
struct FaultPlan
{
    static constexpr std::uint64_t disabled = ~std::uint64_t(0);

    std::uint64_t exitAfter = disabled; ///< _exit(galsFaultExitCode)
    std::uint64_t hangAfter = disabled; ///< sleep forever

    bool active() const
    {
        return exitAfter != disabled || hangAfter != disabled;
    }
};

/** The exit code an injected `exit-after` fault dies with, so tests
 *  and the orchestrator can tell it from a real failure if they care
 *  to (they treat both identically: retry). */
constexpr int faultExitCode = 70;

/** Install @p plan for this process (workers call this from their
 *  CLI/environment parsing, before any record is written). */
void setFaultPlan(const FaultPlan &plan);

/** The currently installed plan. */
const FaultPlan &faultPlan();

/**
 * Parse a `GALSSIM_FAULT` spec: `exit-after=K` or `hang-after=K`
 * (decimal, >= 0) into @p plan.
 * @return false with @p err set on anything else.
 */
bool parseFaultSpec(const std::string &spec, FaultPlan &plan,
                    std::string &err);

/**
 * Fault checkpoint: trigger the installed plan if the number of
 * records flushed so far equals its threshold. Workers call this
 * once at sweep start (covers K = 0) — that is faultPoint() — and
 * faultTick() after every flushed record (increments the count, then
 * checks). No-ops when no plan is active.
 */
void faultPoint();
void faultTick();

} // namespace gals::runner

#endif // RUNNER_FAULT_HH
