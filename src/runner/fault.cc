#include "runner/fault.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include <unistd.h>

namespace gals::runner
{

namespace
{

FaultPlan g_plan;
std::atomic<std::uint64_t> g_flushed{0};

[[noreturn]] void
faultExit(std::uint64_t flushed)
{
    // Mimic an abrupt crash: no destructors, no buffered-stream
    // flushes — exactly what the orchestrator's resume scan has to
    // tolerate. The one fprintf keeps worker logs debuggable.
    std::fprintf(stderr,
                 "galsbench: fault injection: exiting after %llu "
                 "records\n",
                 static_cast<unsigned long long>(flushed));
    ::_exit(faultExitCode);
}

[[noreturn]] void
faultHang(std::uint64_t flushed)
{
    std::fprintf(stderr,
                 "galsbench: fault injection: hanging after %llu "
                 "records\n",
                 static_cast<unsigned long long>(flushed));
    for (;;)
        ::sleep(3600);
}

void
maybeTrigger(std::uint64_t flushed)
{
    if (flushed == g_plan.exitAfter)
        faultExit(flushed);
    if (flushed == g_plan.hangAfter)
        faultHang(flushed);
}

} // namespace

void
setFaultPlan(const FaultPlan &plan)
{
    g_plan = plan;
}

const FaultPlan &
faultPlan()
{
    return g_plan;
}

bool
parseFaultSpec(const std::string &spec, FaultPlan &plan,
               std::string &err)
{
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos) {
        err = "fault spec '" + spec +
              "' lacks '=' (expected exit-after=K or hang-after=K)";
        return false;
    }
    const std::string key = spec.substr(0, eq);
    const std::string val = spec.substr(eq + 1);
    if (val.empty() ||
        val.find_first_not_of("0123456789") != std::string::npos) {
        err = "fault spec '" + spec +
              "' needs a non-negative decimal count";
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const std::uint64_t k = std::strtoull(val.c_str(), &end, 10);
    if (errno == ERANGE || *end != '\0' || k == FaultPlan::disabled) {
        err = "fault spec '" + spec + "' count out of range";
        return false;
    }
    if (key == "exit-after") {
        plan.exitAfter = k;
    } else if (key == "hang-after") {
        plan.hangAfter = k;
    } else {
        err = "unknown fault kind '" + key +
              "' (expected exit-after or hang-after)";
        return false;
    }
    return true;
}

void
faultPoint()
{
    if (!g_plan.active())
        return;
    maybeTrigger(g_flushed.load(std::memory_order_relaxed));
}

void
faultTick()
{
    if (!g_plan.active())
        return;
    maybeTrigger(g_flushed.fetch_add(1, std::memory_order_relaxed) +
                 1);
}

} // namespace gals::runner
