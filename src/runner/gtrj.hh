/**
 * @file
 * The `.gtrj` binary trajectory format.
 *
 * A gtrj file is the hot-path twin of the JSON-lines trajectory: the
 * same canonical per-run records (scenario, canonical grid index,
 * config identity, every metric column, unit energies, per-core and
 * interval blocks), varint-packed into length-prefixed binary frames
 * behind a fixed magic/version header. `galsbench parse` converts a
 * gtrj file back to the strict JSON-lines/CSV reporters byte-for-byte,
 * so the binary file carries exactly the information of its text twin
 * at a fraction of the size.
 *
 * Layout (all integers LEB128 varints, all doubles raw IEEE-754 bits
 * little-endian — non-finite values round-trip exactly):
 *
 *   file   := "GTRJ" varint(formatVersion) frame*
 *   frame  := varint(payloadLen) payload
 *
 * The payload field order is fixed by @ref formatVersion (see
 * encodeRecord() in gtrj.cc); integral metric columns and block
 * counts are varints, metric doubles are 8-byte bit patterns, and the
 * unit-energy block stores values positionally against the sorted
 * power-model unit-name list rather than repeating the names per
 * record. Optional blocks (fabric axes, per-core results, interval
 * samples) are gated by a flags byte.
 *
 * Versioning rules: any change to the payload field order, the
 * meaning of an existing flags-byte bit, the metric column list, or
 * the power-model unit set bumps @ref formatVersion (readers reject
 * unknown versions), and ships with a galssimVersion() bump since
 * the records describe simulator output. The one additive path that
 * does NOT bump the version is claiming a previously-unused flag bit
 * for a new gated block (the fabric/interval/warmup pattern): every
 * record not using the bit keeps its exact bytes, and older readers
 * reject records that do carry it via the known-bits mask — a clean
 * refusal, never a misparse. There is no in-band skipping; the
 * format optimizes for exactness, not forward compatibility.
 *
 * Frames are self-delimiting and encoded statelessly (no
 * inter-record compression), so a shard's frames are byte-identical
 * to the same records in an unsharded file — merge fan-in reorders
 * raw frames without re-encoding — and a SIGKILL mid-write leaves a
 * detectable torn tail: the orchestrator's resume scan keeps the
 * valid frame prefix and truncates the rest, exactly like the
 * JSON-lines partial-line scan.
 */

#ifndef RUNNER_GTRJ_HH
#define RUNNER_GTRJ_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "core/experiment.hh"

namespace gals::runner::gtrj
{

/** Bumped on any payload-layout change; readers reject others. */
constexpr std::uint64_t formatVersion = 1;

/** The 4-byte file magic. */
inline constexpr char magic[4] = {'G', 'T', 'R', 'J'};

/** The file header bytes: magic + varint(formatVersion). */
const std::string &fileHeader();

/** Append the LEB128 varint encoding of @p v to @p out. */
void appendVarint(std::string &out, std::uint64_t v);

/** Decode a varint at @p pos, advancing it; false when @p buf ends
 *  mid-varint or the encoding exceeds 10 bytes. */
bool readVarint(std::string_view buf, std::size_t &pos,
                std::uint64_t &v);

/** One record decoded from a frame: enough config + results to
 *  regenerate the exact JSON-lines/CSV record bytes. */
struct DecodedRecord
{
    std::string scenario;
    std::uint64_t index = 0;
    RunConfig cfg;
    RunResults results;
};

/**
 * Encode one run as a complete frame (length prefix + payload).
 * Encoding is stateless: the bytes depend only on the arguments, so
 * shard-written frames equal their unsharded twins.
 */
std::string encodeRecord(const std::string &scenario,
                         std::uint64_t index, const RunConfig &cfg,
                         const RunResults &r);

/** Validate the header at the start of @p buf, advancing @p pos past
 *  it; false (with @p err set) on short/foreign/unknown-version
 *  bytes. */
bool readHeader(std::string_view buf, std::size_t &pos,
                std::string &err);

/** Outcome of reading one frame. */
enum class FrameStatus
{
    ok,  ///< payload extracted, @p pos advanced past the frame
    eof, ///< clean end of file exactly at @p pos
    torn ///< trailing bytes that are not a complete frame
};

/** Read the frame at @p pos: on ok, @p payload views the payload
 *  bytes inside @p buf and @p pos moves past the frame. The length
 *  prefix alone is checked here; decodePayload() validates content. */
FrameStatus nextFrame(std::string_view buf, std::size_t &pos,
                      std::string_view &payload, std::string &err);

/** Decode one frame payload; false (with @p err) on any layout
 *  violation, including trailing unconsumed bytes. */
bool decodePayload(std::string_view payload, DecodedRecord &out,
                   std::string &err);

/** Complete frames at the start of @p buf (header included), walking
 *  length prefixes only; a torn tail or bad header just ends the
 *  count. Used for cheap progress reporting. */
std::size_t countFrames(std::string_view buf);

/**
 * Convert a whole gtrj buffer to JSON-lines text, byte-identical to
 * the writeJsonLines() output of a native run of the same records;
 * false (with @p err) on a bad header or any torn/undecodable frame.
 */
bool toJsonLines(std::string_view buf, std::string &out,
                 std::string &err);

/** Same conversion to CSV (header row from the first record, as the
 *  CSV TrajectorySink writes it); false on bad input. */
bool toCsv(std::string_view buf, std::string &out, std::string &err);

} // namespace gals::runner::gtrj

#endif // RUNNER_GTRJ_HH
