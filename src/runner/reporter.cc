#include "runner/reporter.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "runner/scenario.hh"
#include "runner/stats.hh"
#include "sim/logging.hh"

namespace gals::runner
{

namespace
{

/** Round-trip-exact rendering of a finite double (%.17g). */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
num(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

/** JSON number token: `null` for NaN/infinity, which %.17g would
 *  render as the invalid bare tokens `nan` / `inf`. */
std::string
jsonNum(double v)
{
    return std::isfinite(v) ? num(v) : "null";
}

/** CSV number field: empty for NaN/infinity (the conventional
 *  missing-value encoding). */
std::string
csvNum(double v)
{
    return std::isfinite(v) ? num(v) : std::string();
}

/** One metric rendered for a per-run record: integral columns print
 *  their exact uint64 value, doubles round-trip exact with
 *  non-finite mapped per format. */
std::string
metricValue(const MetricAccessor &acc, const RunResults &r, bool json)
{
    if (acc.integral)
        return num(acc.getU(r));
    const double v = acc.get(r);
    return json ? jsonNum(v) : csvNum(v);
}

void
checkSizes(const std::vector<RunConfig> &cfgs,
           const std::vector<RunResults> &results,
           const std::vector<std::size_t> *indices)
{
    gals_assert(cfgs.size() == results.size(),
                "reporter: ", cfgs.size(), " configs vs ",
                results.size(), " results");
    gals_assert(!indices || indices->size() == results.size(),
                "reporter: ", indices->size(), " indices vs ",
                results.size(), " results");
}

std::size_t
recordIndex(const std::vector<std::size_t> *indices, std::size_t i)
{
    return indices ? (*indices)[i] : i;
}

} // namespace

OutputFormat
parseOutputFormat(const std::string &name)
{
    if (name == "table")
        return OutputFormat::table;
    if (name == "json")
        return OutputFormat::json;
    if (name == "csv")
        return OutputFormat::csv;
    if (name == "md" || name == "markdown")
        return OutputFormat::markdown;
    gals_fatal("unknown output format '", name,
               "' (expected table, json, csv or md)");
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
writeJsonLines(std::ostream &os, const std::string &scenario,
               const std::vector<RunConfig> &cfgs,
               const std::vector<RunResults> &results,
               const std::vector<std::size_t> *indices)
{
    checkSizes(cfgs, results, indices);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunConfig &c = cfgs[i];
        const RunResults &r = results[i];
        os << "{\"scenario\":" << jsonQuote(scenario)
           << ",\"index\":" << recordIndex(indices, i)
           << ",\"benchmark\":" << jsonQuote(r.benchmark)
           << ",\"gals\":" << (r.gals ? "true" : "false")
           << ",\"dynamic_dvfs\":" << (c.dynamicDvfs ? "true" : "false")
           << ",\"instructions\":" << num(c.instructions)
           << ",\"seed\":" << num(c.seed)
           << ",\"phase_seed\":" << num(effectivePhaseSeed(c));
        // Warmup split only when one was requested: pre-warmup
        // records keep their exact bytes.
        if (c.warmupInstructions > 0)
            os << ",\"warmup_insts\":" << num(c.warmupInstructions);
        // Fabric axes only for fabric runs: pre-fabric records (and
        // N=1 fabric-scenario records) keep their exact bytes.
        if (c.fabric.active())
            os << ",\"cores\":" << c.fabric.cores << ",\"topology\":"
               << jsonQuote(topologyKindName(c.fabric.topology))
               << ",\"traffic\":" << jsonQuote(c.fabric.traffic);
        for (const MetricAccessor &acc : metricAccessors())
            os << ",\"" << acc.name
               << "\":" << metricValue(acc, r, true);
        os << ",\"energy_nj\":{";
        bool first = true;
        for (const auto &[unit, nj] : r.unitEnergyNj) {
            if (!first)
                os << ",";
            first = false;
            os << jsonQuote(unit) << ":" << jsonNum(nj);
        }
        os << "}";
        if (!r.cores.empty()) {
            os << ",\"per_core\":[";
            for (std::size_t k = 0; k < r.cores.size(); ++k) {
                const CoreResults &cr = r.cores[k];
                if (k)
                    os << ",";
                os << "{\"core\":" << cr.core << ",\"committed\":"
                   << num(cr.committed) << ",\"ipc_nominal\":"
                   << jsonNum(cr.ipcNominal) << ",\"energy_j\":"
                   << jsonNum(cr.energyJ) << ",\"fifo_events\":"
                   << num(cr.fifoEvents) << ",\"msgs_sent\":"
                   << num(cr.msgsSent) << ",\"msgs_received\":"
                   << num(cr.msgsReceived)
                   << ",\"remote_stall_cycles\":"
                   << num(cr.remoteStallCycles)
                   << ",\"avg_remote_latency_cycles\":"
                   << jsonNum(cr.avgRemoteLatencyCycles) << "}";
            }
            os << "]";
        }
        // Interval-meter series, gated on the config so the array is
        // present (possibly empty, e.g. fabric runs) exactly when the
        // meter was requested; unmetered records keep their exact
        // bytes.
        if (c.intervalTicks > 0) {
            os << ",\"interval_ticks\":" << num(c.intervalTicks)
               << ",\"intervals\":[";
            for (std::size_t k = 0; k < r.intervals.size(); ++k) {
                const IntervalSample &s = r.intervals[k];
                if (k)
                    os << ",";
                os << "{\"tick\":" << num(s.tick)
                   << ",\"committed\":" << num(s.committed)
                   << ",\"ipc\":" << jsonNum(s.ipc)
                   << ",\"energy_nj\":{";
                for (unsigned d = 0; d < numDomains; ++d)
                    os << (d ? "," : "")
                       << jsonQuote(
                              domainName(static_cast<DomainId>(d)))
                       << ":" << jsonNum(s.energyNj[d]);
                os << "},\"fifo_occ\":" << num(s.fifoOcc) << "}";
            }
            os << "]";
        }
        os << "}\n";
    }
}

void
writeCsvHeader(std::ostream &os, const RunResults &sample)
{
    os << "scenario,index,benchmark,gals,dynamic_dvfs,instructions,"
          "seed,phase_seed";
    for (const MetricAccessor &acc : metricAccessors())
        os << "," << acc.name;
    for (const auto &[unit, nj] : sample.unitEnergyNj)
        os << "," << csvField("energy_nj." + unit);
    os << "\n";
}

void
writeCsvRows(std::ostream &os, const std::string &scenario,
             const std::vector<RunConfig> &cfgs,
             const std::vector<RunResults> &results,
             const std::vector<std::size_t> *indices)
{
    checkSizes(cfgs, results, indices);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunConfig &c = cfgs[i];
        const RunResults &r = results[i];
        os << csvField(scenario) << "," << recordIndex(indices, i)
           << ","
           << csvField(r.benchmark) << "," << (r.gals ? 1 : 0) << ","
           << (c.dynamicDvfs ? 1 : 0) << "," << num(c.instructions)
           << "," << num(c.seed) << ","
           << num(effectivePhaseSeed(c));
        for (const MetricAccessor &acc : metricAccessors())
            os << "," << metricValue(acc, r, false);
        for (const auto &[unit, nj] : r.unitEnergyNj)
            os << "," << csvNum(nj);
        os << "\n";
    }
}

void
writeCsv(std::ostream &os, const std::string &scenario,
         const std::vector<RunConfig> &cfgs,
         const std::vector<RunResults> &results)
{
    checkSizes(cfgs, results, nullptr);
    // Unit-energy columns from the first record; every run reports
    // the same unit set (the Unit enum).
    writeCsvHeader(os, results.empty() ? RunResults() : results.front());
    writeCsvRows(os, scenario, cfgs, results);
}

void
writeJsonLinesSummary(std::ostream &os, const std::string &scenario,
                      const std::vector<RunConfig> &gridCfgs,
                      const ReplicaSummary &summary)
{
    gals_assert(gridCfgs.size() == summary.gridSize,
                "summary reporter: ", gridCfgs.size(),
                " grid configs vs grid size ", summary.gridSize);
    const auto &accessors = metricAccessors();
    for (std::size_t g = 0; g < summary.gridSize; ++g) {
        const RunConfig &c = gridCfgs[g];
        const RunResults &r = summary.mean[g];
        os << "{\"scenario\":" << jsonQuote(scenario)
           << ",\"index\":" << g
           << ",\"benchmark\":" << jsonQuote(r.benchmark)
           << ",\"gals\":" << (r.gals ? "true" : "false")
           << ",\"dynamic_dvfs\":" << (c.dynamicDvfs ? "true" : "false")
           << ",\"instructions\":" << num(c.instructions)
           << ",\"replicas\":" << summary.replicas;
        for (std::size_t m = 0; m < accessors.size(); ++m) {
            const MetricSummary &s = summary.metrics[g][m];
            os << ",\"" << accessors[m].name
               << "\":" << jsonNum(s.mean) << ",\""
               << accessors[m].name << "_ci95\":" << jsonNum(s.ci95);
        }
        os << ",\"energy_nj\":{";
        bool first = true;
        for (const auto &[unit, nj] : r.unitEnergyNj) {
            if (!first)
                os << ",";
            first = false;
            os << jsonQuote(unit) << ":" << jsonNum(nj);
        }
        os << "}}\n";
    }
}

void
writeCsvSummary(std::ostream &os, const std::string &scenario,
                const std::vector<RunConfig> &gridCfgs,
                const ReplicaSummary &summary)
{
    gals_assert(gridCfgs.size() == summary.gridSize,
                "summary reporter: ", gridCfgs.size(),
                " grid configs vs grid size ", summary.gridSize);
    const auto &accessors = metricAccessors();

    os << "scenario,index,benchmark,gals,dynamic_dvfs,instructions,"
          "replicas";
    for (const MetricAccessor &acc : accessors)
        os << "," << acc.name << "," << acc.name << "_ci95";
    if (!summary.mean.empty())
        for (const auto &[unit, nj] : summary.mean.front().unitEnergyNj)
            os << "," << csvField("energy_nj." + unit);
    os << "\n";

    for (std::size_t g = 0; g < summary.gridSize; ++g) {
        const RunConfig &c = gridCfgs[g];
        const RunResults &r = summary.mean[g];
        os << csvField(scenario) << "," << g << ","
           << csvField(r.benchmark) << "," << (r.gals ? 1 : 0) << ","
           << (c.dynamicDvfs ? 1 : 0) << "," << num(c.instructions)
           << "," << summary.replicas;
        for (std::size_t m = 0; m < accessors.size(); ++m) {
            const MetricSummary &s = summary.metrics[g][m];
            os << "," << csvNum(s.mean) << "," << csvNum(s.ci95);
        }
        for (const auto &[unit, nj] : r.unitEnergyNj)
            os << "," << csvNum(nj);
        os << "\n";
    }
}

void
writeScenarioCatalogMarkdown(std::ostream &os,
                             const ScenarioRegistry &registry,
                             const SweepOptions &opts)
{
    os << "# Scenario catalog\n"
       << "\n"
       << "<!-- Generated by `galsbench --list --format md`. Do not "
          "edit by hand:\n"
          "     CI regenerates this file and fails on drift. -->\n"
       << "\n"
       << "Every paper figure, ablation and sweep is a registered "
          "scenario of the\n"
          "`galsbench` CLI. Run one with `galsbench --scenario "
          "<name>`; the *runs*\n"
          "column is the grid size at default sweep options ("
       << num(opts.instructions) << " instructions\nper run).\n"
       << "\n"
       << "| name | reference | description | runs | insts/run |\n"
       << "|---|---|---|---:|---:|\n";
    for (const Scenario &s : registry.all()) {
        const std::size_t runs =
            s.makeRuns ? s.makeRuns(opts).size() : 0;
        os << "| `" << s.name << "` | " << s.figure << " | "
           << s.description << " | " << runs << " | "
           << (runs == 0 ? std::string("-") : num(opts.instructions))
           << " |\n";
    }
}

} // namespace gals::runner
