#include "runner/reporter.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "runner/scenario.hh"
#include "sim/logging.hh"

namespace gals::runner
{

namespace
{

/** Round-trip-exact double rendering (shortest form, %.17g). */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
num(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

/** The scalar metrics every reporter emits, in column order. */
struct MetricColumn
{
    const char *name;
    std::string (*get)(const RunResults &);
};

const MetricColumn metricColumns[] = {
    {"committed", [](const RunResults &r) { return num(r.committed); }},
    {"fetched", [](const RunResults &r) { return num(r.fetched); }},
    {"wrong_path_fetched",
     [](const RunResults &r) { return num(r.wrongPathFetched); }},
    {"ticks", [](const RunResults &r) { return num(r.ticks); }},
    {"time_sec", [](const RunResults &r) { return num(r.timeSec); }},
    {"ipc_nominal",
     [](const RunResults &r) { return num(r.ipcNominal); }},
    {"energy_j", [](const RunResults &r) { return num(r.energyJ); }},
    {"avg_power_w",
     [](const RunResults &r) { return num(r.avgPowerW); }},
    {"fifo_events",
     [](const RunResults &r) { return num(r.fifoEvents); }},
    {"avg_slip_cycles",
     [](const RunResults &r) { return num(r.avgSlipCycles); }},
    {"avg_fifo_slip_cycles",
     [](const RunResults &r) { return num(r.avgFifoSlipCycles); }},
    {"misspec_fraction",
     [](const RunResults &r) { return num(r.misspecFraction); }},
    {"mispredicts_per_k",
     [](const RunResults &r) { return num(r.mispredictsPerKCommitted); }},
    {"dir_accuracy",
     [](const RunResults &r) { return num(r.dirAccuracy); }},
    {"avg_rob_occ", [](const RunResults &r) { return num(r.avgRobOcc); }},
    {"avg_int_renames",
     [](const RunResults &r) { return num(r.avgIntRenames); }},
    {"avg_fp_renames",
     [](const RunResults &r) { return num(r.avgFpRenames); }},
    {"int_iq_occ", [](const RunResults &r) { return num(r.intIQOcc); }},
    {"fp_iq_occ", [](const RunResults &r) { return num(r.fpIQOcc); }},
    {"mem_iq_occ", [](const RunResults &r) { return num(r.memIQOcc); }},
    {"il1_miss_rate",
     [](const RunResults &r) { return num(r.il1MissRate); }},
    {"dl1_miss_rate",
     [](const RunResults &r) { return num(r.dl1MissRate); }},
    {"l2_miss_rate",
     [](const RunResults &r) { return num(r.l2MissRate); }},
};

void
checkSizes(const std::vector<RunConfig> &cfgs,
           const std::vector<RunResults> &results)
{
    gals_assert(cfgs.size() == results.size(),
                "reporter: ", cfgs.size(), " configs vs ",
                results.size(), " results");
}

} // namespace

OutputFormat
parseOutputFormat(const std::string &name)
{
    if (name == "table")
        return OutputFormat::table;
    if (name == "json")
        return OutputFormat::json;
    if (name == "csv")
        return OutputFormat::csv;
    if (name == "md" || name == "markdown")
        return OutputFormat::markdown;
    gals_fatal("unknown output format '", name,
               "' (expected table, json, csv or md)");
}

void
writeJsonLines(std::ostream &os, const std::string &scenario,
               const std::vector<RunConfig> &cfgs,
               const std::vector<RunResults> &results)
{
    checkSizes(cfgs, results);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunConfig &c = cfgs[i];
        const RunResults &r = results[i];
        os << "{\"scenario\":\"" << scenario << "\""
           << ",\"index\":" << i
           << ",\"benchmark\":\"" << r.benchmark << "\""
           << ",\"gals\":" << (r.gals ? "true" : "false")
           << ",\"dynamic_dvfs\":" << (c.dynamicDvfs ? "true" : "false")
           << ",\"instructions\":" << num(c.instructions)
           << ",\"seed\":" << num(c.seed)
           << ",\"phase_seed\":" << num(effectivePhaseSeed(c));
        for (const MetricColumn &col : metricColumns)
            os << ",\"" << col.name << "\":" << col.get(r);
        os << ",\"energy_nj\":{";
        bool first = true;
        for (const auto &[unit, nj] : r.unitEnergyNj) {
            if (!first)
                os << ",";
            first = false;
            os << "\"" << unit << "\":" << num(nj);
        }
        os << "}}\n";
    }
}

void
writeCsv(std::ostream &os, const std::string &scenario,
         const std::vector<RunConfig> &cfgs,
         const std::vector<RunResults> &results)
{
    checkSizes(cfgs, results);

    os << "scenario,index,benchmark,gals,dynamic_dvfs,instructions,"
          "seed,phase_seed";
    for (const MetricColumn &col : metricColumns)
        os << "," << col.name;
    // Unit-energy columns from the first record; every run reports
    // the same unit set (the Unit enum).
    if (!results.empty())
        for (const auto &[unit, nj] : results.front().unitEnergyNj)
            os << ",energy_nj." << unit;
    os << "\n";

    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunConfig &c = cfgs[i];
        const RunResults &r = results[i];
        os << scenario << "," << i << "," << r.benchmark << ","
           << (r.gals ? 1 : 0) << "," << (c.dynamicDvfs ? 1 : 0) << ","
           << num(c.instructions) << "," << num(c.seed) << ","
           << num(effectivePhaseSeed(c));
        for (const MetricColumn &col : metricColumns)
            os << "," << col.get(r);
        for (const auto &[unit, nj] : r.unitEnergyNj)
            os << "," << num(nj);
        os << "\n";
    }
}

void
writeScenarioCatalogMarkdown(std::ostream &os,
                             const ScenarioRegistry &registry,
                             const SweepOptions &opts)
{
    os << "# Scenario catalog\n"
       << "\n"
       << "<!-- Generated by `galsbench --list --format md`. Do not "
          "edit by hand:\n"
          "     CI regenerates this file and fails on drift. -->\n"
       << "\n"
       << "Every paper figure, ablation and sweep is a registered "
          "scenario of the\n"
          "`galsbench` CLI. Run one with `galsbench --scenario "
          "<name>`; the *runs*\n"
          "column is the grid size at default sweep options ("
       << num(opts.instructions) << " instructions\nper run).\n"
       << "\n"
       << "| name | reference | description | runs | insts/run |\n"
       << "|---|---|---|---:|---:|\n";
    for (const Scenario &s : registry.all()) {
        const std::size_t runs =
            s.makeRuns ? s.makeRuns(opts).size() : 0;
        os << "| `" << s.name << "` | " << s.figure << " | "
           << s.description << " | " << runs << " | "
           << (runs == 0 ? std::string("-") : num(opts.instructions))
           << " |\n";
    }
}

} // namespace gals::runner
