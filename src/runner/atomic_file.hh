/**
 * @file
 * Crash-safe whole-file writes: temp file + atomic rename.
 *
 * A manifest or status file written with a plain ofstream can be
 * left half-written by a crash (or a full disk) and then misparse in
 * a later `--verify` or resume. atomicWriteFile() writes the new
 * contents to `<path>.tmp` in full — fsync'd — and only then
 * rename(2)s it over @p path, so any reader at any instant sees
 * either the complete old file or the complete new file, never a
 * torn one. A failure leaves the previous file untouched.
 *
 * The temp name is deliberately deterministic (`<path>.tmp`): all of
 * our writers are single-process per destination, and a fixed name
 * both lets a crashed leftover be overwritten by the next attempt
 * and lets tests provoke the failure path.
 */

#ifndef RUNNER_ATOMIC_FILE_HH
#define RUNNER_ATOMIC_FILE_HH

#include <string>

namespace gals::runner
{

/** The temp path atomicWriteFile() stages through: `<path>.tmp`. */
std::string atomicTempPath(const std::string &path);

/**
 * Replace @p path with @p contents atomically (write `<path>.tmp`,
 * fsync, rename). On failure the temp file is removed and the
 * previous @p path — if any — is left exactly as it was.
 * @param err on failure: a one-line human-readable reason.
 * @return true iff @p path now holds @p contents.
 */
bool atomicWriteFile(const std::string &path,
                     const std::string &contents, std::string &err);

} // namespace gals::runner

#endif // RUNNER_ATOMIC_FILE_HH
