#include "runner/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace gals::runner
{

namespace
{

std::string
errnoText()
{
    return std::strerror(errno);
}

} // namespace

std::string
atomicTempPath(const std::string &path)
{
    return path + ".tmp";
}

bool
atomicWriteFile(const std::string &path, const std::string &contents,
                std::string &err)
{
    const std::string tmp = atomicTempPath(path);
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        err = "cannot open '" + tmp + "' for writing: " + errnoText();
        return false;
    }

    std::size_t written = 0;
    while (written < contents.size()) {
        const ssize_t n = ::write(fd, contents.data() + written,
                                  contents.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            err = "error writing '" + tmp + "': " + errnoText();
            ::close(fd);
            std::remove(tmp.c_str());
            return false;
        }
        written += static_cast<std::size_t>(n);
    }

    // The rename below is only crash-safe if the *data* reaches disk
    // before the name does; without the fsync a power loss could
    // leave the new name pointing at zero-length contents.
    if (::fsync(fd) != 0) {
        err = "fsync '" + tmp + "' failed: " + errnoText();
        ::close(fd);
        std::remove(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        err = "error closing '" + tmp + "': " + errnoText();
        std::remove(tmp.c_str());
        return false;
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        err = "cannot rename '" + tmp + "' to '" + path +
              "': " + errnoText();
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace gals::runner
