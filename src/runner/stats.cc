#include "runner/stats.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/logging.hh"

namespace gals::runner
{

namespace
{

/** One table entry per scalar RunResults metric. */
#define GALS_METRIC_F64(colName, field)                                \
    MetricAccessor                                                     \
    {                                                                  \
        colName, false,                                                \
            [](const RunResults &r) { return double(r.field); },       \
            [](RunResults &r, double v) { r.field = v; }, nullptr,     \
            nullptr                                                    \
    }
#define GALS_METRIC_U64(colName, field)                                \
    MetricAccessor                                                     \
    {                                                                  \
        colName, true,                                                 \
            [](const RunResults &r) { return double(r.field); },       \
            [](RunResults &r, double v) {                              \
                r.field =                                              \
                    static_cast<std::uint64_t>(std::llround(v));       \
            },                                                         \
            [](const RunResults &r) {                                  \
                return static_cast<std::uint64_t>(r.field);            \
            },                                                         \
            [](RunResults &r, std::uint64_t v) { r.field = v; }        \
    }

} // namespace

const std::vector<MetricAccessor> &
metricAccessors()
{
    static const std::vector<MetricAccessor> accessors = {
        GALS_METRIC_U64("committed", committed),
        GALS_METRIC_U64("fetched", fetched),
        GALS_METRIC_U64("wrong_path_fetched", wrongPathFetched),
        GALS_METRIC_U64("ticks", ticks),
        GALS_METRIC_F64("time_sec", timeSec),
        GALS_METRIC_F64("ipc_nominal", ipcNominal),
        GALS_METRIC_F64("energy_j", energyJ),
        GALS_METRIC_F64("avg_power_w", avgPowerW),
        GALS_METRIC_U64("fifo_events", fifoEvents),
        GALS_METRIC_F64("avg_slip_cycles", avgSlipCycles),
        GALS_METRIC_F64("avg_fifo_slip_cycles", avgFifoSlipCycles),
        GALS_METRIC_F64("misspec_fraction", misspecFraction),
        GALS_METRIC_F64("mispredicts_per_k", mispredictsPerKCommitted),
        GALS_METRIC_F64("dir_accuracy", dirAccuracy),
        GALS_METRIC_F64("avg_rob_occ", avgRobOcc),
        GALS_METRIC_F64("avg_int_renames", avgIntRenames),
        GALS_METRIC_F64("avg_fp_renames", avgFpRenames),
        GALS_METRIC_F64("int_iq_occ", intIQOcc),
        GALS_METRIC_F64("fp_iq_occ", fpIQOcc),
        GALS_METRIC_F64("mem_iq_occ", memIQOcc),
        GALS_METRIC_F64("il1_miss_rate", il1MissRate),
        GALS_METRIC_F64("dl1_miss_rate", dl1MissRate),
        GALS_METRIC_F64("l2_miss_rate", l2MissRate),
    };
    return accessors;
}

#undef GALS_METRIC_F64
#undef GALS_METRIC_U64

double
tCritical95(unsigned dof)
{
    // Two-sided 95% Student-t critical values, dof 1..30 exact to
    // four decimals, then a step approximation that returns each
    // bracket's LOWER-dof (larger) value — t(31), t(41), t(61),
    // t(121) — so the step only ever widens a CI, never narrows it.
    static const double table[30] = {
        12.7062, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646,
        2.3060,  2.2622, 2.2281, 2.2010, 2.1788, 2.1604, 2.1448,
        2.1314,  2.1199, 2.1098, 2.1009, 2.0930, 2.0860, 2.0796,
        2.0739,  2.0687, 2.0639, 2.0595, 2.0555, 2.0518, 2.0484,
        2.0452,  2.0423};
    gals_assert(dof >= 1, "tCritical95: dof must be >= 1");
    if (dof <= 30)
        return table[dof - 1];
    if (dof <= 40)
        return 2.0395;
    if (dof <= 60)
        return 2.0195;
    if (dof <= 120)
        return 2.0003;
    return 1.9799;
}

MetricSummary
summarize(const std::vector<double> &xs)
{
    MetricSummary s;
    s.n = static_cast<unsigned>(xs.size());
    if (s.n == 0)
        return s;

    double sum = 0.0;
    for (double x : xs)
        sum += x;
    s.mean = sum / s.n;

    if (s.n < 2)
        return s; // sd/ci stay 0: one replica carries no spread info

    double sq = 0.0;
    for (double x : xs)
        sq += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(sq / (s.n - 1));
    s.ci95 = tCritical95(s.n - 1) * s.stddev / std::sqrt(double(s.n));
    return s;
}

const MetricSummary *
ReplicaSummary::metric(std::size_t grid, const std::string &name) const
{
    if (grid >= metrics.size())
        return nullptr;
    const auto &accessors = metricAccessors();
    for (std::size_t m = 0; m < accessors.size(); ++m)
        if (name == accessors[m].name)
            return &metrics[grid][m];
    return nullptr;
}

ReplicaSummary
summarizeReplicas(std::size_t gridSize,
                  const std::vector<RunResults> &all)
{
    gals_assert(gridSize > 0, "summarizeReplicas: empty grid");
    gals_assert(all.size() % gridSize == 0,
                "summarizeReplicas: ", all.size(),
                " results do not tile a grid of ", gridSize);

    ReplicaSummary summary;
    summary.gridSize = gridSize;
    summary.replicas = all.size() / gridSize;
    summary.mean.reserve(gridSize);
    summary.metrics.reserve(gridSize);

    const auto &accessors = metricAccessors();
    std::vector<double> sample(summary.replicas);
    for (std::size_t g = 0; g < gridSize; ++g) {
        // First replica seeds the non-metric fields (benchmark name,
        // gals flag, unit-energy key set).
        RunResults mean = all[g];
        std::vector<MetricSummary> perMetric;
        perMetric.reserve(accessors.size());

        for (const MetricAccessor &acc : accessors) {
            for (std::size_t r = 0; r < summary.replicas; ++r)
                sample[r] = acc.get(all[r * gridSize + g]);
            const MetricSummary s = summarize(sample);
            acc.set(mean, s.mean);
            perMetric.push_back(s);
        }

        for (auto &[unit, nj] : mean.unitEnergyNj) {
            double sum = 0.0;
            for (std::size_t r = 0; r < summary.replicas; ++r) {
                const auto &e = all[r * gridSize + g].unitEnergyNj;
                const auto it = e.find(unit);
                sum += it == e.end() ? 0.0 : it->second;
            }
            nj = sum / double(summary.replicas);
        }

        summary.mean.push_back(std::move(mean));
        summary.metrics.push_back(std::move(perMetric));
    }
    return summary;
}

double
ratioCi95(double meanA, double ciA, double meanB, double ciB)
{
    if (meanA == 0.0 || meanB == 0.0 || !std::isfinite(meanA) ||
        !std::isfinite(meanB))
        return std::nan("");
    const double ra = ciA / meanA, rb = ciB / meanB;
    return std::fabs(meanA / meanB) * std::sqrt(ra * ra + rb * rb);
}

std::string
formatMeanCi(double mean, double ci)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g ± %.3g", mean, ci);
    return buf;
}

void
writeReplicationTable(std::ostream &os, const std::string &scenario,
                      const std::vector<RunConfig> &gridCfgs,
                      const ReplicaSummary &summary)
{
    gals_assert(gridCfgs.size() == summary.gridSize,
                "replication table: ", gridCfgs.size(),
                " grid configs vs grid size ", summary.gridSize);

    static const char *const headline[] = {
        "ipc_nominal", "time_sec", "energy_j", "avg_power_w",
        "avg_slip_cycles"};

    char line[256];
    std::snprintf(line, sizeof(line),
                  "\nReplication summary: %s (%zu seeds, mean ± "
                  "95%% CI, Student-t)\n",
                  scenario.c_str(), summary.replicas);
    os << line;
    std::snprintf(line, sizeof(line),
                  "%-4s %-10s %-5s %-22s %-22s %-22s %-22s %-22s\n",
                  "idx", "benchmark", "gals", headline[0], headline[1],
                  headline[2], headline[3], headline[4]);
    os << line;

    for (std::size_t g = 0; g < summary.gridSize; ++g) {
        std::snprintf(line, sizeof(line), "%-4zu %-10s %-5s ", g,
                      gridCfgs[g].benchmark.c_str(),
                      gridCfgs[g].gals ? "yes" : "no");
        os << line;
        for (const char *name : headline) {
            const MetricSummary *m = summary.metric(g, name);
            std::snprintf(line, sizeof(line), "%-22s",
                          m ? formatMeanCi(m->mean, m->ci95).c_str()
                            : "-");
            os << line;
        }
        os << "\n";
    }
}

} // namespace gals::runner
