#include "runner/trajectory.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <system_error>

#include "runner/atomic_file.hh"
#include "runner/gtrj.hh"
#include "runner/reporter.hh"
#include "runner/scenario.hh"
#include "sim/logging.hh"

namespace gals::runner
{

namespace
{

std::string
hashHex(std::uint64_t h)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

} // namespace

TrajectoryFormat
trajectoryFormatForPath(const std::string &path)
{
    const std::size_t dot = path.find_last_of('.');
    if (dot != std::string::npos) {
        const std::string ext = path.substr(dot);
        if (ext == ".csv")
            return TrajectoryFormat::csv;
        if (ext == ".gtrj")
            return TrajectoryFormat::gtrj;
    }
    return TrajectoryFormat::jsonLines;
}

bool
trajectoryFormatForCliPath(const std::string &path,
                           TrajectoryFormat &out)
{
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos)
        return false;
    const std::string ext = path.substr(dot);
    if (ext == ".jsonl" || ext == ".json") {
        out = TrajectoryFormat::jsonLines;
        return true;
    }
    if (ext == ".csv") {
        out = TrajectoryFormat::csv;
        return true;
    }
    if (ext == ".gtrj") {
        out = TrajectoryFormat::gtrj;
        return true;
    }
    return false;
}

const char *
trajectoryFormatName(TrajectoryFormat format)
{
    switch (format) {
      case TrajectoryFormat::csv:
        return "csv";
      case TrajectoryFormat::gtrj:
        return "gtrj";
      default:
        return "jsonl";
    }
}

TrajectorySink::TrajectorySink(const std::string &path,
                               bool appendMode)
    : path_(path), format_(trajectoryFormatForPath(path)),
      file_(path, std::ios::out | std::ios::binary |
                      (appendMode ? std::ios::app
                                  : std::ios::trunc)),
      os_(&file_)
{
    if (appendMode && format_ == TrajectoryFormat::csv)
        gals_fatal("append mode needs a JSON-lines or gtrj "
                   "trajectory, not '",
                   path_, "'");
    if (!file_)
        gals_fatal("cannot open trajectory file '", path_,
                   "' for writing");
    if (format_ == TrajectoryFormat::gtrj) {
        // Fresh files get the header now; an append-mode resume only
        // needs one when the salvage scan truncated the file to
        // nothing (a torn header counts for nothing).
        std::error_code ec;
        const auto size =
            appendMode ? std::filesystem::file_size(path, ec)
                       : std::uintmax_t(0);
        if (!appendMode || ec || size == 0)
            *os_ << gtrj::fileHeader();
    }
}

TrajectorySink::TrajectorySink(std::ostream &os,
                               TrajectoryFormat format,
                               const std::string &path)
    : path_(path), format_(format), os_(&os)
{
    if (format_ == TrajectoryFormat::gtrj)
        *os_ << gtrj::fileHeader();
}

void
TrajectorySink::append(const std::string &scenario,
                       const std::vector<RunConfig> &cfgs,
                       const std::vector<RunResults> &results,
                       const std::vector<std::size_t> *indices)
{
    if (format_ == TrajectoryFormat::jsonLines) {
        writeJsonLines(*os_, scenario, cfgs, results, indices);
    } else if (format_ == TrajectoryFormat::gtrj) {
        gals_assert(cfgs.size() == results.size(),
                    "trajectory sink: ", cfgs.size(), " configs vs ",
                    results.size(), " results");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const std::size_t index = indices ? (*indices)[i] : i;
            const std::string frame = gtrj::encodeRecord(
                scenario, index, cfgs[i], results[i]);
            os_->write(frame.data(),
                       static_cast<std::streamsize>(frame.size()));
        }
    } else if (!results.empty()) {
        // Defer the header to the first non-empty grid: an empty one
        // (a literature-only scenario, or a shard slice with no
        // records) has no record to take the energy_nj.* column set
        // from.
        if (!wroteHeader_) {
            writeCsvHeader(*os_, results.front());
            wroteHeader_ = true;
        }
        writeCsvRows(*os_, scenario, cfgs, results, indices);
    }
    // Fail the sweep now, not after simulating the remaining
    // scenarios: a bad stream here means records are already lost.
    if (!*os_)
        gals_fatal("error writing trajectory file '", path_, "'");
}

void
TrajectorySink::appendOne(const std::string &scenario,
                          const RunConfig &cfg,
                          const RunResults &result,
                          std::size_t canonicalIndex)
{
    if (format_ == TrajectoryFormat::csv)
        gals_fatal("appendOne() streams JSON lines or gtrj only ('",
                   path_, "' is csv)");
    const std::vector<RunConfig> cfgs{cfg};
    const std::vector<RunResults> results{result};
    const std::vector<std::size_t> indices{canonicalIndex};
    append(scenario, cfgs, results, &indices);
    // The flush is the contract: once appendOne() returns, the
    // record survives a SIGKILL of this process.
    os_->flush();
    if (!*os_)
        gals_fatal("error writing trajectory file '", path_, "'");
}

void
TrajectorySink::close()
{
    if (os_ == &file_ && !file_.is_open())
        return;
    os_->flush();
    if (!*os_)
        gals_fatal("error writing trajectory file '", path_, "'");
    if (os_ != &file_)
        return;
    file_.close();
    if (!file_)
        gals_fatal("error closing trajectory file '", path_, "'");
}

void
writeManifest(std::ostream &os, const SweepOptions &opts,
              const std::string &engineName,
              const std::string &outputPath,
              const std::vector<ManifestScenario> &scenarios)
{
    os << "{\n"
       << "  \"manifest_version\": 1,\n"
       << "  \"galssim_version\": " << jsonQuote(galssimVersion())
       << ",\n"
       << "  \"engine\": " << jsonQuote(engineName) << ",\n"
       << "  \"instructions\": " << opts.instructions << ",\n";

    os << "  \"seeds\": [";
    bool first = true;
    for (std::uint64_t seed : opts.seedList()) {
        if (!first)
            os << ", ";
        first = false;
        os << seed;
    }
    os << "],\n";

    // The CLI benchmark restriction; empty means every scenario uses
    // its default sweep set.
    os << "  \"benchmarks\": [";
    first = true;
    for (const std::string &b : opts.benchmarks) {
        if (!first)
            os << ", ";
        first = false;
        os << jsonQuote(b);
    }
    os << "],\n";

    // Fabric axes (--cores / --topology / --traffic), written only
    // when explicitly set: pre-fabric manifests — including archived
    // PR 3-6 ones — keep their exact historical bytes.
    if (!opts.coreCounts.empty() || !opts.topologies.empty() ||
        !opts.traffics.empty()) {
        os << "  \"fabric\": {\"cores\": [";
        first = true;
        for (unsigned c : opts.coreCounts) {
            if (!first)
                os << ", ";
            first = false;
            os << c;
        }
        os << "], \"topologies\": [";
        first = true;
        for (const std::string &t : opts.topologies) {
            if (!first)
                os << ", ";
            first = false;
            os << jsonQuote(t);
        }
        os << "], \"traffics\": [";
        first = true;
        for (const std::string &t : opts.traffics) {
            if (!first)
                os << ", ";
            first = false;
            os << jsonQuote(t);
        }
        os << "]},\n";
    }

    // Interval meter (--interval-ticks), written only when enabled:
    // pre-meter manifests keep their exact historical bytes.
    if (opts.intervalTicks > 0)
        os << "  \"interval_ticks\": " << opts.intervalTicks << ",\n";

    // Warmup split (--warmup-insts), gated the same way.
    if (opts.warmupInstructions > 0)
        os << "  \"warmup_insts\": " << opts.warmupInstructions
           << ",\n";

    if (opts.shard.active())
        os << "  \"shard\": {\"index\": " << opts.shard.index
           << ", \"count\": " << opts.shard.count << "},\n";

    if (outputPath.empty()) {
        os << "  \"output\": null,\n";
    } else {
        os << "  \"output\": " << jsonQuote(outputPath) << ",\n"
           << "  \"output_format\": "
           << jsonQuote(trajectoryFormatName(
                  trajectoryFormatForPath(outputPath)))
           << ",\n";
    }

    os << "  \"scenarios\": [";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const ManifestScenario &s = scenarios[i];
        os << (i ? ",\n" : "\n") << "    {\"name\": "
           << jsonQuote(s.name) << ", \"grid\": " << s.gridSize
           << ", \"replicas\": " << s.replicas
           << ", \"runs\": " << s.gridSize * s.replicas
           << ", \"config_hash\": " << jsonQuote(hashHex(s.configHash))
           << "}";
    }
    os << (scenarios.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

void
writeManifestFile(const std::string &path, const SweepOptions &opts,
                  const std::string &engineName,
                  const std::string &outputPath,
                  const std::vector<ManifestScenario> &scenarios)
{
    // Atomic rename, not in-place truncate: the dispatch
    // orchestrator treats a slice manifest's *existence* as the
    // slice-complete marker, so a torn manifest must be impossible.
    std::ostringstream os;
    writeManifest(os, opts, engineName, outputPath, scenarios);
    std::string err;
    if (!atomicWriteFile(path, os.str(), err))
        gals_fatal("manifest file: ", err);
}

} // namespace gals::runner
