#include "runner/trajectory.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "runner/atomic_file.hh"
#include "runner/reporter.hh"
#include "runner/scenario.hh"
#include "sim/logging.hh"

namespace gals::runner
{

namespace
{

std::string
hashHex(std::uint64_t h)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

} // namespace

TrajectoryFormat
trajectoryFormatForPath(const std::string &path)
{
    const std::size_t dot = path.find_last_of('.');
    if (dot != std::string::npos && path.substr(dot) == ".csv")
        return TrajectoryFormat::csv;
    return TrajectoryFormat::jsonLines;
}

const char *
trajectoryFormatName(TrajectoryFormat format)
{
    return format == TrajectoryFormat::csv ? "csv" : "jsonl";
}

TrajectorySink::TrajectorySink(const std::string &path,
                               bool appendMode)
    : path_(path), format_(trajectoryFormatForPath(path)),
      file_(path, std::ios::out | std::ios::binary |
                      (appendMode ? std::ios::app
                                  : std::ios::trunc)),
      os_(&file_)
{
    if (appendMode && format_ != TrajectoryFormat::jsonLines)
        gals_fatal("append mode needs a JSON-lines trajectory, not '",
                   path_, "'");
    if (!file_)
        gals_fatal("cannot open trajectory file '", path_,
                   "' for writing");
}

TrajectorySink::TrajectorySink(std::ostream &os,
                               TrajectoryFormat format,
                               const std::string &path)
    : path_(path), format_(format), os_(&os)
{
}

void
TrajectorySink::append(const std::string &scenario,
                       const std::vector<RunConfig> &cfgs,
                       const std::vector<RunResults> &results,
                       const std::vector<std::size_t> *indices)
{
    if (format_ == TrajectoryFormat::jsonLines) {
        writeJsonLines(*os_, scenario, cfgs, results, indices);
    } else if (!results.empty()) {
        // Defer the header to the first non-empty grid: an empty one
        // (a literature-only scenario, or a shard slice with no
        // records) has no record to take the energy_nj.* column set
        // from.
        if (!wroteHeader_) {
            writeCsvHeader(*os_, results.front());
            wroteHeader_ = true;
        }
        writeCsvRows(*os_, scenario, cfgs, results, indices);
    }
    // Fail the sweep now, not after simulating the remaining
    // scenarios: a bad stream here means records are already lost.
    if (!*os_)
        gals_fatal("error writing trajectory file '", path_, "'");
}

void
TrajectorySink::appendOne(const std::string &scenario,
                          const RunConfig &cfg,
                          const RunResults &result,
                          std::size_t canonicalIndex)
{
    if (format_ != TrajectoryFormat::jsonLines)
        gals_fatal("appendOne() streams JSON lines only ('", path_,
                   "' is csv)");
    const std::vector<RunConfig> cfgs{cfg};
    const std::vector<RunResults> results{result};
    const std::vector<std::size_t> indices{canonicalIndex};
    writeJsonLines(*os_, scenario, cfgs, results, &indices);
    // The flush is the contract: once appendOne() returns, the
    // record survives a SIGKILL of this process.
    os_->flush();
    if (!*os_)
        gals_fatal("error writing trajectory file '", path_, "'");
}

void
TrajectorySink::close()
{
    if (os_ == &file_ && !file_.is_open())
        return;
    os_->flush();
    if (!*os_)
        gals_fatal("error writing trajectory file '", path_, "'");
    if (os_ != &file_)
        return;
    file_.close();
    if (!file_)
        gals_fatal("error closing trajectory file '", path_, "'");
}

void
writeManifest(std::ostream &os, const SweepOptions &opts,
              const std::string &engineName,
              const std::string &outputPath,
              const std::vector<ManifestScenario> &scenarios)
{
    os << "{\n"
       << "  \"manifest_version\": 1,\n"
       << "  \"galssim_version\": " << jsonQuote(galssimVersion())
       << ",\n"
       << "  \"engine\": " << jsonQuote(engineName) << ",\n"
       << "  \"instructions\": " << opts.instructions << ",\n";

    os << "  \"seeds\": [";
    bool first = true;
    for (std::uint64_t seed : opts.seedList()) {
        if (!first)
            os << ", ";
        first = false;
        os << seed;
    }
    os << "],\n";

    // The CLI benchmark restriction; empty means every scenario uses
    // its default sweep set.
    os << "  \"benchmarks\": [";
    first = true;
    for (const std::string &b : opts.benchmarks) {
        if (!first)
            os << ", ";
        first = false;
        os << jsonQuote(b);
    }
    os << "],\n";

    // Fabric axes (--cores / --topology / --traffic), written only
    // when explicitly set: pre-fabric manifests — including archived
    // PR 3-6 ones — keep their exact historical bytes.
    if (!opts.coreCounts.empty() || !opts.topologies.empty() ||
        !opts.traffics.empty()) {
        os << "  \"fabric\": {\"cores\": [";
        first = true;
        for (unsigned c : opts.coreCounts) {
            if (!first)
                os << ", ";
            first = false;
            os << c;
        }
        os << "], \"topologies\": [";
        first = true;
        for (const std::string &t : opts.topologies) {
            if (!first)
                os << ", ";
            first = false;
            os << jsonQuote(t);
        }
        os << "], \"traffics\": [";
        first = true;
        for (const std::string &t : opts.traffics) {
            if (!first)
                os << ", ";
            first = false;
            os << jsonQuote(t);
        }
        os << "]},\n";
    }

    if (opts.shard.active())
        os << "  \"shard\": {\"index\": " << opts.shard.index
           << ", \"count\": " << opts.shard.count << "},\n";

    if (outputPath.empty()) {
        os << "  \"output\": null,\n";
    } else {
        os << "  \"output\": " << jsonQuote(outputPath) << ",\n"
           << "  \"output_format\": "
           << jsonQuote(trajectoryFormatName(
                  trajectoryFormatForPath(outputPath)))
           << ",\n";
    }

    os << "  \"scenarios\": [";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const ManifestScenario &s = scenarios[i];
        os << (i ? ",\n" : "\n") << "    {\"name\": "
           << jsonQuote(s.name) << ", \"grid\": " << s.gridSize
           << ", \"replicas\": " << s.replicas
           << ", \"runs\": " << s.gridSize * s.replicas
           << ", \"config_hash\": " << jsonQuote(hashHex(s.configHash))
           << "}";
    }
    os << (scenarios.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

void
writeManifestFile(const std::string &path, const SweepOptions &opts,
                  const std::string &engineName,
                  const std::string &outputPath,
                  const std::vector<ManifestScenario> &scenarios)
{
    // Atomic rename, not in-place truncate: the dispatch
    // orchestrator treats a slice manifest's *existence* as the
    // slice-complete marker, so a torn manifest must be impossible.
    std::ostringstream os;
    writeManifest(os, opts, engineName, outputPath, scenarios);
    std::string err;
    if (!atomicWriteFile(path, os.str(), err))
        gals_fatal("manifest file: ", err);
}

} // namespace gals::runner
