#include "runner/worker_proc.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace gals::runner
{

WorkerProc::~WorkerProc()
{
    kill();
}

bool
WorkerProc::start(const std::vector<std::string> &argv,
                  const std::string &logPath, std::string &err)
{
    if (running()) {
        err = "worker already running";
        return false;
    }
    if (argv.empty()) {
        err = "empty worker argv";
        return false;
    }

    // Open the log in the parent so a bad path is a reportable
    // launch error, not a silent child death.
    const int logFd = ::open(logPath.c_str(),
                             O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (logFd < 0) {
        err = "cannot open worker log '" + logPath +
              "': " + std::strerror(errno);
        return false;
    }

    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        err = std::string("fork failed: ") + std::strerror(errno);
        ::close(logFd);
        return false;
    }
    if (pid == 0) {
        // Child: log gets both streams; the worker's record files go
        // through --output, never through stdout.
        ::dup2(logFd, 1);
        ::dup2(logFd, 2);
        ::close(logFd);
        ::execv(cargv[0], cargv.data());
        // Exec failed; stderr is the log file now.
        ::dprintf(2, "worker exec '%s' failed: %s\n", cargv[0],
                  std::strerror(errno));
        ::_exit(127);
    }
    ::close(logFd);
    pid_ = pid;
    return true;
}

WorkerProc::Poll
WorkerProc::poll(std::string &detail)
{
    if (!running()) {
        detail = "not running";
        return Poll::failed;
    }
    int status = 0;
    const pid_t r = ::waitpid(pid_, &status, WNOHANG);
    if (r == 0)
        return Poll::running;
    pid_ = -1;
    if (r < 0) {
        detail = std::string("waitpid failed: ") +
                 std::strerror(errno);
        return Poll::failed;
    }
    if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        detail = "exit " + std::to_string(code);
        return code == 0 ? Poll::exitedOk : Poll::failed;
    }
    if (WIFSIGNALED(status)) {
        detail = "signal " + std::to_string(WTERMSIG(status));
        return Poll::failed;
    }
    detail = "unknown wait status";
    return Poll::failed;
}

void
WorkerProc::kill()
{
    if (!running())
        return;
    ::kill(pid_, SIGKILL);
    // SIGKILL is not maskable, so this wait terminates promptly.
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
    pid_ = -1;
}

} // namespace gals::runner
