#include "runner/engine.hh"

#include <algorithm>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "sim/logging.hh"

namespace gals::runner
{

namespace
{

/**
 * One worker's run queue. A plain mutex per deque is plenty here:
 * tasks are whole simulations (milliseconds to minutes each), so
 * lock traffic is noise — the win of work stealing is load balance,
 * not lock-free throughput.
 */
struct alignas(64) WorkerQueue
{
    std::mutex m;
    std::deque<std::size_t> d;

    /** Owner end: pop the next index of the worker's own block. */
    bool
    popFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(m);
        if (d.empty())
            return false;
        out = d.front();
        d.pop_front();
        return true;
    }

    /** Thief end: steal from the far end of a victim's block. */
    bool
    popBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(m);
        if (d.empty())
            return false;
        out = d.back();
        d.pop_back();
        return true;
    }
};

} // namespace

ExperimentEngine::ExperimentEngine(unsigned jobs)
    : jobs_(jobs == 0 ? hardwareJobs() : jobs)
{
}

unsigned
ExperimentEngine::hardwareJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ExperimentEngine::runIndexed(
    std::size_t count,
    const std::function<void(std::size_t)> &task) const
{
    if (count == 0)
        return;
    if (jobs_ <= 1 || count <= 1) {
        // Same failure contract as the pool below: a throwing task
        // is fatal with the same prefix, not a propagated exception,
        // so --jobs 1 and --jobs N behave identically.
        try {
            for (std::size_t i = 0; i < count; ++i)
                task(i);
        } catch (const std::exception &e) {
            gals_fatal("experiment worker failed: ", e.what());
        } catch (...) {
            gals_fatal("experiment worker failed: unknown exception");
        }
        return;
    }

    const unsigned nThreads =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, count));

    // Seed each worker with a contiguous block, so with homogeneous
    // run lengths nobody needs to steal at all and each worker walks
    // its slice in index order.
    std::vector<WorkerQueue> queues(nThreads);
    for (unsigned w = 0; w < nThreads; ++w) {
        const std::size_t begin = count * w / nThreads;
        const std::size_t end = count * (w + 1) / nThreads;
        for (std::size_t i = begin; i < end; ++i)
            queues[w].d.push_back(i);
    }

    // A worker exception must not escape its thread (std::terminate);
    // capture the first failure and re-raise it after the join.
    std::mutex errorMutex;
    std::string firstError;

    auto runTask = [&](std::size_t i) {
        try {
            task(i);
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (firstError.empty())
                firstError = e.what();
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (firstError.empty())
                firstError = "unknown exception";
        }
    };

    auto worker = [&](unsigned self) {
        std::size_t i;
        for (;;) {
            if (queues[self].popFront(i)) {
                runTask(i);
                continue;
            }
            // Own queue dry: scan the others and steal one index.
            // Tasks never enqueue new tasks, so a full unsuccessful
            // scan means the grid is drained and we can retire.
            bool stole = false;
            for (unsigned v = 1; v < nThreads && !stole; ++v)
                stole = queues[(self + v) % nThreads].popBack(i);
            if (!stole)
                return;
            runTask(i);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(nThreads);
    for (unsigned t = 0; t < nThreads; ++t)
        threads.emplace_back(worker, t);
    for (std::thread &t : threads)
        t.join();

    if (!firstError.empty())
        gals_fatal("experiment worker failed: ", firstError);
}

std::vector<RunResults>
ExperimentEngine::run(const std::vector<RunConfig> &cfgs) const
{
    if (jobs_ <= 1 || cfgs.size() <= 1)
        return runMany(cfgs);

    std::vector<RunResults> results(cfgs.size());
    runIndexed(cfgs.size(),
               [&](std::size_t i) { results[i] = runOne(cfgs[i]); });
    return results;
}

} // namespace gals::runner
