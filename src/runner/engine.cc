#include "runner/engine.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "sim/logging.hh"

namespace gals::runner
{

ExperimentEngine::ExperimentEngine(unsigned jobs)
    : jobs_(jobs == 0 ? hardwareJobs() : jobs)
{
}

unsigned
ExperimentEngine::hardwareJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

std::vector<RunResults>
ExperimentEngine::run(const std::vector<RunConfig> &cfgs) const
{
    if (jobs_ <= 1 || cfgs.size() <= 1)
        return runMany(cfgs);

    std::vector<RunResults> results(cfgs.size());
    std::atomic<std::size_t> next{0};

    // A worker exception must not escape its thread (std::terminate);
    // capture the first failure and re-raise it after the join.
    std::mutex errorMutex;
    std::string firstError;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cfgs.size())
                return;
            try {
                results[i] = runOne(cfgs[i]);
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (firstError.empty())
                    firstError = e.what();
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (firstError.empty())
                    firstError = "unknown exception";
            }
        }
    };

    const unsigned nThreads = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, cfgs.size()));
    std::vector<std::thread> threads;
    threads.reserve(nThreads);
    for (unsigned t = 0; t < nThreads; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();

    if (!firstError.empty())
        gals_fatal("experiment worker failed: ", firstError);
    return results;
}

} // namespace gals::runner
