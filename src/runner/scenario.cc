#include "runner/scenario.hh"

#include <algorithm>
#include <cstdlib>
#include <iterator>

#include "sim/logging.hh"

namespace gals::runner
{

std::vector<std::string>
SweepOptions::benchmarkSet() const
{
    return benchmarks.empty() ? benchmarkNames() : benchmarks;
}

std::vector<std::uint64_t>
SweepOptions::seedList() const
{
    if (!explicitSeeds.empty())
        return explicitSeeds;
    std::vector<std::uint64_t> seeds;
    seeds.reserve(seedReplicas == 0 ? 1 : seedReplicas);
    for (unsigned r = 0; r < std::max(1u, seedReplicas); ++r)
        seeds.push_back(seed + r);
    return seeds;
}

SweepOptions
SweepOptions::fromEnvironment()
{
    SweepOptions opts;
    if (const char *env = std::getenv("GALSSIM_INSTS"))
        opts.instructions = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("GALSSIM_BENCH"))
        opts.benchmarks = {std::string(env)};
    return opts;
}

void
ScenarioRegistry::add(Scenario s)
{
    if (s.name.empty())
        gals_fatal("scenario registered without a name");
    if (find(s.name))
        gals_fatal("scenario '", s.name, "' registered twice");
    scenarios_.push_back(std::move(s));
}

const Scenario *
ScenarioRegistry::find(const std::string &name) const
{
    for (const Scenario &s : scenarios_)
        if (s.name == name)
            return &s;
    return nullptr;
}

void
appendPair(std::vector<RunConfig> &runs, const std::string &benchmark,
           std::uint64_t instructions, const DvfsSetting &galsDvfs,
           std::uint64_t seed, const ProcessorConfig &proc)
{
    RunConfig base;
    base.benchmark = benchmark;
    base.instructions = instructions;
    base.gals = false;
    base.seed = seed;
    base.proc = proc;

    RunConfig galsCfg = base;
    galsCfg.gals = true;
    galsCfg.dvfs = galsDvfs;

    runs.push_back(std::move(base));
    runs.push_back(std::move(galsCfg));
}

std::vector<RunConfig>
expandReplicatedRuns(const Scenario &s, const SweepOptions &opts,
                     std::size_t *gridSize)
{
    std::vector<RunConfig> all;
    std::size_t grid = 0;
    bool first = true;
    for (std::uint64_t seed : opts.seedList()) {
        SweepOptions replica = opts;
        replica.seed = seed;
        std::vector<RunConfig> runs =
            s.makeRuns ? s.makeRuns(replica)
                       : std::vector<RunConfig>();
        if (first) {
            grid = runs.size();
            first = false;
        } else {
            gals_assert(runs.size() == grid, "scenario '", s.name,
                        "': replica grid size ", runs.size(),
                        " != ", grid,
                        " (grid shape may not depend on the seed)");
        }
        all.insert(all.end(),
                   std::make_move_iterator(runs.begin()),
                   std::make_move_iterator(runs.end()));
    }
    // The interval meter applies sweep-wide; stamping here (the one
    // place every scenario's grid passes through) keeps the option
    // out of each scenario's makeRuns(). The warmup split is stamped
    // the same way, but only onto single-core runs: fabric runs do
    // not support warm snapshots, and leaving their field at 0 keeps
    // their hashes unchanged instead of silently ignoring the option
    // mid-run (runOne asserts the combination never reaches it).
    for (RunConfig &cfg : all) {
        cfg.intervalTicks = opts.intervalTicks;
        if (!cfg.fabric.active())
            cfg.warmupInstructions = opts.warmupInstructions;
    }
    if (gridSize)
        *gridSize = grid;
    return all;
}

std::vector<RunConfig>
selectRuns(const std::vector<RunConfig> &runs,
           const std::vector<std::size_t> &indices)
{
    std::vector<RunConfig> out;
    out.reserve(indices.size());
    for (std::size_t i : indices) {
        gals_assert(i < runs.size(), "selectRuns: index ", i,
                    " out of range (", runs.size(), " runs)");
        out.push_back(runs[i]);
    }
    return out;
}

PairResults
pairAt(const std::vector<RunResults> &results, std::size_t i)
{
    gals_assert(2 * i + 1 < results.size(),
                "pairAt(", i, ") out of range (", results.size(),
                " results)");
    PairResults pr;
    pr.base = results[2 * i];
    pr.galsRun = results[2 * i + 1];
    return pr;
}

} // namespace gals::runner
