#include "runner/gtrj.hh"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include "power/power_model.hh"
#include "runner/reporter.hh"
#include "runner/stats.hh"
#include "sim/bytecodec.hh"
#include "sim/logging.hh"

namespace gals::runner::gtrj
{

namespace
{

/** Optional-block bits of the per-record flags byte. A reader that
 *  predates a bit rejects records carrying it (see flagKnownMask in
 *  decodePayload), so adding a bit extends the format without
 *  touching the bytes of any record not using it. */
enum : unsigned char
{
    flagGals = 1u << 0,
    flagDynamicDvfs = 1u << 1,
    flagFabric = 1u << 2,
    flagPerCore = 1u << 3,
    flagIntervals = 1u << 4,
    flagWarmup = 1u << 5,
    flagKnownMask = (1u << 6) - 1,
};

/** A frame longer than this is a torn length prefix, not a record:
 *  real records are a few hundred bytes. */
constexpr std::uint64_t maxPayloadLen = 1ull << 30;

/**
 * The power-model unit names in std::map iteration (sorted) order:
 * the implicit column order of the positional unit-energy block.
 * Changing the Unit enum therefore changes the format — bump
 * formatVersion.
 */
const std::vector<std::string> &
canonicalUnitNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        v.reserve(numUnits);
        for (unsigned i = 0; i < numUnits; ++i)
            v.push_back(unitName(static_cast<Unit>(i)));
        std::sort(v.begin(), v.end());
        return v;
    }();
    return names;
}

// The codec primitives moved to sim/bytecodec.hh when the snapshot
// format (core/snapshot.hh) started sharing them.
using codec::appendF64;
using codec::appendString;
using codec::readF64;
using codec::readString;

} // namespace

const std::string &
fileHeader()
{
    static const std::string header = [] {
        std::string h(magic, sizeof(magic));
        appendVarint(h, formatVersion);
        return h;
    }();
    return header;
}

void
appendVarint(std::string &out, std::uint64_t v)
{
    codec::appendVarint(out, v);
}

bool
readVarint(std::string_view buf, std::size_t &pos, std::uint64_t &v)
{
    return codec::readVarint(buf, pos, v);
}

std::string
encodeRecord(const std::string &scenario, std::uint64_t index,
             const RunConfig &cfg, const RunResults &r)
{
    std::string p;
    p.reserve(512);

    appendString(p, scenario);
    appendVarint(p, index);
    appendString(p, r.benchmark);

    unsigned char flags = 0;
    if (r.gals)
        flags |= flagGals;
    if (cfg.dynamicDvfs)
        flags |= flagDynamicDvfs;
    if (cfg.fabric.active())
        flags |= flagFabric;
    if (!r.cores.empty())
        flags |= flagPerCore;
    if (cfg.intervalTicks > 0)
        flags |= flagIntervals;
    if (cfg.warmupInstructions > 0)
        flags |= flagWarmup;
    p.push_back(static_cast<char>(flags));

    appendVarint(p, cfg.instructions);
    appendVarint(p, cfg.seed);
    // The raw phase seed, not the resolved one: the follows-workload
    // sentinel must survive the round trip so a decoded record
    // resolves (and prints) exactly like the native run's config.
    appendVarint(p, cfg.phaseSeed);

    if (flags & flagWarmup)
        appendVarint(p, cfg.warmupInstructions);

    if (flags & flagFabric) {
        appendVarint(p, cfg.fabric.cores);
        appendString(p, topologyKindName(cfg.fabric.topology));
        appendString(p, cfg.fabric.traffic);
    }

    const auto &accessors = metricAccessors();
    appendVarint(p, accessors.size());
    for (const MetricAccessor &acc : accessors) {
        if (acc.integral)
            appendVarint(p, acc.getU(r));
        else
            appendF64(p, acc.get(r));
    }

    // Positional unit energies: every run reports the full power-model
    // unit set, so the sorted names are implied, not repeated.
    const auto &unitNames = canonicalUnitNames();
    gals_assert(r.unitEnergyNj.size() == unitNames.size(),
                "gtrj: run reports ", r.unitEnergyNj.size(),
                " unit energies, expected ", unitNames.size());
    appendVarint(p, r.unitEnergyNj.size());
    std::size_t u = 0;
    for (const auto &[unit, nj] : r.unitEnergyNj) {
        gals_assert(unit == unitNames[u], "gtrj: unit '", unit,
                    "' out of canonical order (expected '",
                    unitNames[u], "')");
        ++u;
        appendF64(p, nj);
    }

    if (flags & flagPerCore) {
        appendVarint(p, r.cores.size());
        for (const CoreResults &cr : r.cores) {
            appendVarint(p, cr.core);
            appendVarint(p, cr.committed);
            appendF64(p, cr.ipcNominal);
            appendF64(p, cr.energyJ);
            appendVarint(p, cr.fifoEvents);
            appendVarint(p, cr.msgsSent);
            appendVarint(p, cr.msgsReceived);
            appendVarint(p, cr.remoteStallCycles);
            appendF64(p, cr.avgRemoteLatencyCycles);
        }
    }

    if (flags & flagIntervals) {
        appendVarint(p, cfg.intervalTicks);
        appendVarint(p, r.intervals.size());
        for (const IntervalSample &s : r.intervals) {
            appendVarint(p, s.tick);
            appendVarint(p, s.committed);
            appendF64(p, s.ipc);
            for (double nj : s.energyNj)
                appendF64(p, nj);
            appendVarint(p, s.fifoOcc);
        }
    }

    std::string frame;
    frame.reserve(p.size() + 4);
    appendVarint(frame, p.size());
    frame += p;
    return frame;
}

bool
readHeader(std::string_view buf, std::size_t &pos, std::string &err)
{
    if (buf.size() - pos < sizeof(magic) ||
        std::memcmp(buf.data() + pos, magic, sizeof(magic)) != 0) {
        err = "not a gtrj file (bad magic)";
        return false;
    }
    pos += sizeof(magic);
    std::uint64_t version = 0;
    if (!readVarint(buf, pos, version)) {
        err = "gtrj header truncated";
        return false;
    }
    if (version != formatVersion) {
        err = "unsupported gtrj format version " +
              std::to_string(version) + " (this build reads " +
              std::to_string(formatVersion) + ")";
        return false;
    }
    return true;
}

FrameStatus
nextFrame(std::string_view buf, std::size_t &pos,
          std::string_view &payload, std::string &err)
{
    if (pos >= buf.size())
        return FrameStatus::eof;
    std::size_t p = pos;
    std::uint64_t len = 0;
    if (!readVarint(buf, p, len)) {
        err = "torn frame length at offset " + std::to_string(pos);
        return FrameStatus::torn;
    }
    if (len > maxPayloadLen || len > buf.size() - p) {
        err = "torn frame at offset " + std::to_string(pos) +
              " (payload of " + std::to_string(len) + " bytes, " +
              std::to_string(buf.size() - p) + " available)";
        return FrameStatus::torn;
    }
    payload = buf.substr(p, static_cast<std::size_t>(len));
    pos = p + static_cast<std::size_t>(len);
    return FrameStatus::ok;
}

bool
decodePayload(std::string_view payload, DecodedRecord &out,
              std::string &err)
{
    out = DecodedRecord();
    std::size_t pos = 0;
    err = "truncated gtrj record payload";

    if (!readString(payload, pos, out.scenario))
        return false;
    if (!readVarint(payload, pos, out.index))
        return false;
    if (!readString(payload, pos, out.cfg.benchmark))
        return false;
    out.results.benchmark = out.cfg.benchmark;

    if (pos >= payload.size())
        return false;
    const unsigned char flags =
        static_cast<unsigned char>(payload[pos++]);
    if (flags & ~flagKnownMask) {
        err = "gtrj record with unknown flag bits";
        return false;
    }
    out.cfg.gals = flags & flagGals;
    out.results.gals = out.cfg.gals;
    out.cfg.dynamicDvfs = flags & flagDynamicDvfs;

    if (!readVarint(payload, pos, out.cfg.instructions))
        return false;
    if (!readVarint(payload, pos, out.cfg.seed))
        return false;
    if (!readVarint(payload, pos, out.cfg.phaseSeed))
        return false;

    if (flags & flagWarmup) {
        if (!readVarint(payload, pos, out.cfg.warmupInstructions) ||
            out.cfg.warmupInstructions == 0) {
            err = "gtrj record with invalid warmup instruction count";
            return false;
        }
    }

    if (flags & flagFabric) {
        std::uint64_t cores = 0;
        std::string topology;
        if (!readVarint(payload, pos, cores) ||
            !readString(payload, pos, topology) ||
            !readString(payload, pos, out.cfg.fabric.traffic))
            return false;
        out.cfg.fabric.cores = static_cast<unsigned>(cores);
        if (!parseTopologyKind(topology, out.cfg.fabric.topology)) {
            err = "gtrj record with unknown topology '" + topology +
                  "'";
            return false;
        }
    }

    const auto &accessors = metricAccessors();
    std::uint64_t metricCount = 0;
    if (!readVarint(payload, pos, metricCount))
        return false;
    if (metricCount != accessors.size()) {
        err = "gtrj record with " + std::to_string(metricCount) +
              " metric columns, expected " +
              std::to_string(accessors.size());
        return false;
    }
    for (const MetricAccessor &acc : accessors) {
        if (acc.integral) {
            std::uint64_t v = 0;
            if (!readVarint(payload, pos, v))
                return false;
            acc.setU(out.results, v);
        } else {
            double v = 0.0;
            if (!readF64(payload, pos, v))
                return false;
            acc.set(out.results, v);
        }
    }

    const auto &unitNames = canonicalUnitNames();
    std::uint64_t unitCount = 0;
    if (!readVarint(payload, pos, unitCount))
        return false;
    if (unitCount != unitNames.size()) {
        err = "gtrj record with " + std::to_string(unitCount) +
              " unit energies, expected " +
              std::to_string(unitNames.size());
        return false;
    }
    for (const std::string &unit : unitNames) {
        double nj = 0.0;
        if (!readF64(payload, pos, nj))
            return false;
        out.results.unitEnergyNj[unit] = nj;
    }

    if (flags & flagPerCore) {
        std::uint64_t n = 0;
        if (!readVarint(payload, pos, n) ||
            n > payload.size() - pos)
            return false;
        out.results.cores.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            CoreResults cr;
            std::uint64_t core = 0;
            if (!readVarint(payload, pos, core) ||
                !readVarint(payload, pos, cr.committed) ||
                !readF64(payload, pos, cr.ipcNominal) ||
                !readF64(payload, pos, cr.energyJ) ||
                !readVarint(payload, pos, cr.fifoEvents) ||
                !readVarint(payload, pos, cr.msgsSent) ||
                !readVarint(payload, pos, cr.msgsReceived) ||
                !readVarint(payload, pos, cr.remoteStallCycles) ||
                !readF64(payload, pos, cr.avgRemoteLatencyCycles))
                return false;
            cr.core = static_cast<unsigned>(core);
            out.results.cores.push_back(cr);
        }
    }

    if (flags & flagIntervals) {
        std::uint64_t n = 0;
        if (!readVarint(payload, pos, out.cfg.intervalTicks) ||
            out.cfg.intervalTicks == 0 ||
            !readVarint(payload, pos, n) || n > payload.size() - pos)
            return false;
        out.results.intervals.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            IntervalSample s;
            if (!readVarint(payload, pos, s.tick) ||
                !readVarint(payload, pos, s.committed) ||
                !readF64(payload, pos, s.ipc))
                return false;
            for (double &nj : s.energyNj)
                if (!readF64(payload, pos, nj))
                    return false;
            if (!readVarint(payload, pos, s.fifoOcc))
                return false;
            out.results.intervals.push_back(s);
        }
    }

    if (pos != payload.size()) {
        err = "gtrj record with " +
              std::to_string(payload.size() - pos) +
              " trailing payload bytes";
        return false;
    }
    err.clear();
    return true;
}

std::size_t
countFrames(std::string_view buf)
{
    std::size_t pos = 0;
    std::string err;
    if (!readHeader(buf, pos, err))
        return 0;
    std::size_t n = 0;
    std::string_view payload;
    while (nextFrame(buf, pos, payload, err) == FrameStatus::ok)
        ++n;
    return n;
}

namespace
{

/** Shared frame walk of the two converters: calls @p emit per
 *  decoded record, in file order. */
template <typename Emit>
bool
convert(std::string_view buf, std::string &err, Emit &&emit)
{
    std::size_t pos = 0;
    if (!readHeader(buf, pos, err))
        return false;
    std::string_view payload;
    std::size_t n = 0;
    for (;;) {
        const FrameStatus st = nextFrame(buf, pos, payload, err);
        if (st == FrameStatus::eof)
            return true;
        if (st == FrameStatus::torn)
            return false;
        DecodedRecord rec;
        if (!decodePayload(payload, rec, err)) {
            err = "record " + std::to_string(n) + ": " + err;
            return false;
        }
        emit(rec);
        ++n;
    }
}

} // namespace

bool
toJsonLines(std::string_view buf, std::string &out, std::string &err)
{
    std::ostringstream os;
    if (!convert(buf, err, [&os](const DecodedRecord &rec) {
            const std::vector<RunConfig> cfgs{rec.cfg};
            const std::vector<RunResults> results{rec.results};
            const std::vector<std::size_t> indices{
                static_cast<std::size_t>(rec.index)};
            writeJsonLines(os, rec.scenario, cfgs, results, &indices);
        }))
        return false;
    out = os.str();
    return true;
}

bool
toCsv(std::string_view buf, std::string &out, std::string &err)
{
    std::ostringstream os;
    bool wroteHeader = false;
    if (!convert(buf, err, [&os, &wroteHeader](
                               const DecodedRecord &rec) {
            // Header from the first record, as the CSV sink defers it
            // to the first non-empty grid.
            if (!wroteHeader) {
                writeCsvHeader(os, rec.results);
                wroteHeader = true;
            }
            const std::vector<RunConfig> cfgs{rec.cfg};
            const std::vector<RunResults> results{rec.results};
            const std::vector<std::size_t> indices{
                static_cast<std::size_t>(rec.index)};
            writeCsvRows(os, rec.scenario, cfgs, results, &indices);
        }))
        return false;
    out = os.str();
    return true;
}

} // namespace gals::runner::gtrj
