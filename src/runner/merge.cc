#include "runner/merge.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "runner/atomic_file.hh"
#include "runner/engine.hh"
#include "runner/gtrj.hh"
#include "runner/json.hh"
#include "runner/scenario.hh"
#include "runner/trajectory.hh"
#include "sim/event_queue.hh"

namespace gals::runner
{

namespace
{

bool
readFile(const std::string &path, std::string &out, std::string &err)
{
    std::ifstream is(path, std::ios::in | std::ios::binary);
    if (!is) {
        err = "cannot open '" + path + "' for reading";
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    if (is.bad()) {
        err = "error reading '" + path + "'";
        return false;
    }
    out = buf.str();
    return true;
}

/** Split on '\n', dropping the trailing empty piece of a final
 *  newline (every line of our formats is newline-terminated). */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        lines.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

/** One trajectory record with its sort key. */
struct Record
{
    std::string scenario;
    std::size_t scenarioRank = 0; ///< resolved after the global order
    std::uint64_t index = 0;
    std::string line; ///< the raw record bytes (no newline)
};

/** Extract scenario + index + instruction budget from one
 *  JSON-lines record. */
bool
jsonRecordKey(const std::string &line, std::string &scenario,
              std::uint64_t &index, std::uint64_t &instructions,
              std::string &err)
{
    json::Value v;
    if (!json::parse(line, v, err))
        return false;
    const json::Value *s = v.find("scenario");
    const json::Value *i = v.find("index");
    const json::Value *insts = v.find("instructions");
    if (!s || s->kind != json::Value::Kind::string || !i ||
        !i->asU64(index) || !insts || !insts->asU64(instructions)) {
        err = "record lacks string 'scenario' / integral 'index' / "
              "'instructions'";
        return false;
    }
    scenario = s->str;
    return true;
}

/** Read one RFC-4180 field starting at @p pos; advances past the
 *  field and its trailing comma (if any). */
bool
csvFieldAt(const std::string &line, std::size_t &pos,
           std::string &out, std::string &err)
{
    out.clear();
    if (pos < line.size() && line[pos] == '"') {
        ++pos;
        for (;;) {
            if (pos >= line.size()) {
                err = "unterminated quoted CSV field";
                return false;
            }
            if (line[pos] == '"') {
                if (pos + 1 < line.size() && line[pos + 1] == '"') {
                    out += '"';
                    pos += 2;
                    continue;
                }
                ++pos;
                break;
            }
            out += line[pos++];
        }
    } else {
        while (pos < line.size() && line[pos] != ',')
            out += line[pos++];
    }
    if (pos < line.size()) {
        if (line[pos] != ',') {
            err = "malformed CSV field boundary";
            return false;
        }
        ++pos;
    }
    return true;
}

bool
csvU64(const std::string &text, std::uint64_t &out)
{
    // strtoull silently wraps negatives ("-1" -> 2^64-1); our
    // writers emit bare digits, so accept exactly that.
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return errno != ERANGE && *end == '\0';
}

/** Extract scenario + index + instruction budget (columns 1, 2 and
 *  6 of the fixed reporter layout) from one CSV row. */
bool
csvRecordKey(const std::string &line, std::string &scenario,
             std::uint64_t &index, std::uint64_t &instructions,
             std::string &err)
{
    std::size_t pos = 0;
    std::string idx, skip, insts;
    if (!csvFieldAt(line, pos, scenario, err) ||
        !csvFieldAt(line, pos, idx, err) ||
        !csvFieldAt(line, pos, skip, err) || // benchmark
        !csvFieldAt(line, pos, skip, err) || // gals
        !csvFieldAt(line, pos, skip, err) || // dynamic_dvfs
        !csvFieldAt(line, pos, insts, err))
        return false;
    if (!csvU64(idx, index)) {
        err = "bad index column '" + idx + "'";
        return false;
    }
    if (!csvU64(insts, instructions)) {
        err = "bad instructions column '" + insts + "'";
        return false;
    }
    return true;
}

/**
 * Merge the per-file scenario orders into one canonical order. Each
 * file lists its scenarios in execution order, i.e. as a subsequence
 * of the canonical order; the greedy merge emits, at every step, the
 * earliest file's head that no other file still holds at a non-head
 * position. File order breaks genuine ties (a scenario present in
 * only one file).
 */
bool
mergeScenarioOrders(const std::vector<std::vector<std::string>> &seqs,
                    std::vector<std::string> &order, std::string &err)
{
    std::vector<std::size_t> head(seqs.size(), 0);
    for (;;) {
        bool anyLeft = false;
        std::string picked;
        for (std::size_t f = 0; f < seqs.size() && picked.empty();
             ++f) {
            if (head[f] >= seqs[f].size())
                continue;
            anyLeft = true;
            const std::string &cand = seqs[f][head[f]];
            bool blocked = false;
            for (std::size_t g = 0; g < seqs.size() && !blocked;
                 ++g) {
                for (std::size_t k = head[g] + 1;
                     k < seqs[g].size() && !blocked; ++k)
                    blocked = seqs[g][k] == cand;
            }
            if (!blocked)
                picked = cand;
        }
        if (!anyLeft)
            return true;
        if (picked.empty()) {
            err = "shard files disagree on scenario order";
            return false;
        }
        order.push_back(picked);
        for (std::size_t f = 0; f < seqs.size(); ++f)
            if (head[f] < seqs[f].size() &&
                seqs[f][head[f]] == picked)
                ++head[f];
    }
}

std::size_t
rankOf(const std::vector<std::string> &order, const std::string &name)
{
    return static_cast<std::size_t>(
        std::find(order.begin(), order.end(), name) - order.begin());
}

/** A manifest read back from disk. */
struct ParsedManifest
{
    std::string version;    ///< galssim_version
    std::string engineName; ///< "calendar" / "heap"
    SweepOptions opts;      ///< instructions, seeds, benchmarks, shard
    std::string output;     ///< trajectory path; empty when null
    std::vector<ManifestScenario> scenarios;
};

bool
readManifest(const std::string &path, ParsedManifest &out,
             std::string &err)
{
    std::string text;
    if (!readFile(path, text, err))
        return false;
    json::Value v;
    if (!json::parse(text, v, err)) {
        err = path + ": " + err;
        return false;
    }

    const auto fail = [&](const std::string &what) {
        err = path + ": " + what;
        return false;
    };

    std::uint64_t manifestVersion = 0;
    const json::Value *mv = v.find("manifest_version");
    if (!mv || !mv->asU64(manifestVersion) || manifestVersion != 1)
        return fail("unsupported manifest_version");

    const json::Value *ver = v.find("galssim_version");
    const json::Value *eng = v.find("engine");
    const json::Value *insts = v.find("instructions");
    const json::Value *seeds = v.find("seeds");
    if (!ver || ver->kind != json::Value::Kind::string || !eng ||
        eng->kind != json::Value::Kind::string || !insts ||
        !insts->asU64(out.opts.instructions) || !seeds ||
        seeds->kind != json::Value::Kind::array)
        return fail("missing/malformed version, engine, "
                    "instructions or seeds");
    out.version = ver->str;
    out.engineName = eng->str;

    for (const json::Value &s : seeds->items) {
        std::uint64_t seed = 0;
        if (!s.asU64(seed))
            return fail("non-integral seed");
        out.opts.explicitSeeds.push_back(seed);
    }
    if (out.opts.explicitSeeds.empty())
        return fail("empty seeds list");
    out.opts.seed = out.opts.explicitSeeds.front();

    if (const json::Value *bench = v.find("benchmarks")) {
        if (bench->kind != json::Value::Kind::array)
            return fail("malformed benchmarks");
        for (const json::Value &b : bench->items) {
            if (b.kind != json::Value::Kind::string)
                return fail("non-string benchmark");
            out.opts.benchmarks.push_back(b.str);
        }
    }

    if (const json::Value *fab = v.find("fabric")) {
        const json::Value *cores = fab->find("cores");
        const json::Value *topos = fab->find("topologies");
        const json::Value *traffics = fab->find("traffics");
        if (!cores || cores->kind != json::Value::Kind::array ||
            !topos || topos->kind != json::Value::Kind::array ||
            !traffics ||
            traffics->kind != json::Value::Kind::array)
            return fail("malformed fabric object");
        for (const json::Value &c : cores->items) {
            std::uint64_t n = 0;
            if (!c.asU64(n) || n < 1)
                return fail("non-integral fabric core count");
            out.opts.coreCounts.push_back(static_cast<unsigned>(n));
        }
        for (const json::Value &t : topos->items) {
            if (t.kind != json::Value::Kind::string)
                return fail("non-string fabric topology");
            out.opts.topologies.push_back(t.str);
        }
        for (const json::Value &t : traffics->items) {
            if (t.kind != json::Value::Kind::string)
                return fail("non-string fabric traffic");
            out.opts.traffics.push_back(t.str);
        }
    }

    if (const json::Value *ivl = v.find("interval_ticks")) {
        if (!ivl->asU64(out.opts.intervalTicks) ||
            out.opts.intervalTicks == 0)
            return fail("malformed interval_ticks");
    }

    if (const json::Value *wu = v.find("warmup_insts")) {
        if (!wu->asU64(out.opts.warmupInstructions) ||
            out.opts.warmupInstructions == 0)
            return fail("malformed warmup_insts");
    }

    if (const json::Value *shard = v.find("shard")) {
        const json::Value *idx = shard->find("index");
        const json::Value *cnt = shard->find("count");
        std::uint64_t i = 0, n = 0;
        if (!idx || !idx->asU64(i) || !cnt || !cnt->asU64(n) ||
            i < 1 || n < 1 || i > n)
            return fail("malformed shard object");
        out.opts.shard.index = static_cast<unsigned>(i);
        out.opts.shard.count = static_cast<unsigned>(n);
    }

    if (const json::Value *outPath = v.find("output"))
        if (outPath->kind == json::Value::Kind::string)
            out.output = outPath->str;

    const json::Value *scens = v.find("scenarios");
    if (!scens || scens->kind != json::Value::Kind::array)
        return fail("missing scenarios");
    for (const json::Value &s : scens->items) {
        ManifestScenario ms;
        const json::Value *name = s.find("name");
        const json::Value *grid = s.find("grid");
        const json::Value *replicas = s.find("replicas");
        const json::Value *hash = s.find("config_hash");
        std::uint64_t g = 0, r = 0;
        if (!name || name->kind != json::Value::Kind::string ||
            !grid || !grid->asU64(g) || !replicas ||
            !replicas->asU64(r) || !hash ||
            hash->kind != json::Value::Kind::string)
            return fail("malformed scenario entry");
        ms.name = name->str;
        ms.gridSize = g;
        ms.replicas = r;
        errno = 0;
        char *end = nullptr;
        ms.configHash =
            std::strtoull(hash->str.c_str(), &end, 16);
        if (hash->str.size() != 16 || errno == ERANGE ||
            *end != '\0')
            return fail("malformed config_hash");
        out.scenarios.push_back(std::move(ms));
    }
    return true;
}

bool
sameScenarios(const std::vector<ManifestScenario> &a,
              const std::vector<ManifestScenario> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].name != b[i].name ||
            a[i].gridSize != b[i].gridSize ||
            a[i].replicas != b[i].replicas ||
            a[i].configHash != b[i].configHash)
            return false;
    return true;
}

/** Directory part of @p path including the trailing '/', or empty. */
std::string
dirName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash + 1);
}

} // namespace

bool
mergeTrajectories(const std::vector<std::string> &shardFiles,
                  const std::string &outputPath, std::ostream &diag,
                  const MergePlan *expected)
{
    if (shardFiles.empty()) {
        diag << "merge: no shard files given\n";
        return false;
    }
    const TrajectoryFormat format =
        trajectoryFormatForPath(outputPath);

    std::string err;
    std::vector<Record> records;
    std::vector<std::vector<std::string>> scenarioSeqs;
    // Per file, per scenario (parallel to scenarioSeqs): the record
    // indices in file order, for the shard-stride completeness
    // checks below.
    std::vector<std::vector<std::vector<std::uint64_t>>> indexSeqs;
    // Instruction budget per scenario, for cross-file sweep
    // consistency.
    std::map<std::string, std::uint64_t> instsByScenario;
    std::string header; // CSV only

    for (const std::string &path : shardFiles) {
        if (trajectoryFormatForPath(path) != format) {
            diag << "merge: '" << path << "' and '" << outputPath
                 << "' disagree on trajectory format "
                    "(mixed .csv / .jsonl?)\n";
            return false;
        }
        std::string text;
        if (!readFile(path, text, err)) {
            diag << "merge: " << err << "\n";
            return false;
        }
        scenarioSeqs.emplace_back();
        indexSeqs.emplace_back();
        std::vector<std::string> &seq = scenarioSeqs.back();
        std::vector<std::vector<std::uint64_t>> &idx =
            indexSeqs.back();

        // Per-record admission shared by every format: cross-file
        // instruction consistency, per-file scenario contiguity and
        // strictly-ascending indices. @p where names the record
        // ("file:line" / "file record N") for diagnostics.
        const auto admit = [&](Record &&rec,
                               std::uint64_t instructions,
                               const std::string &where) -> bool {
            // Shards of one sweep share one instruction budget per
            // scenario; a disagreement means the inputs come from
            // different sweeps and must not fuse.
            const auto [it, inserted] = instsByScenario.emplace(
                rec.scenario, instructions);
            if (!inserted && it->second != instructions) {
                diag << "merge: " << where << ": scenario '"
                     << rec.scenario
                     << "' records disagree on instructions ("
                     << it->second << " vs " << instructions
                     << ") — shard files from different sweeps?\n";
                return false;
            }
            if (seq.empty() || seq.back() != rec.scenario) {
                // A scenario's records are contiguous per file; a
                // reappearance means the file is not a shard
                // trajectory.
                if (std::find(seq.begin(), seq.end(),
                              rec.scenario) != seq.end()) {
                    diag << "merge: " << where << ": scenario '"
                         << rec.scenario
                         << "' records are not contiguous\n";
                    return false;
                }
                seq.push_back(rec.scenario);
                idx.emplace_back();
            }
            if (!idx.back().empty() &&
                idx.back().back() >= rec.index) {
                diag << "merge: " << where
                     << ": indices not strictly ascending (not a "
                        "shard trajectory?)\n";
                return false;
            }
            idx.back().push_back(rec.index);
            records.push_back(std::move(rec));
            return true;
        };

        if (format == TrajectoryFormat::gtrj) {
            // Binary shard: walk the frames, keeping each record's
            // raw bytes (length prefix + payload) so the merge
            // re-emits them untouched — frames are stateless, so the
            // merged file equals the unsharded run's byte-for-byte.
            std::size_t pos = 0;
            if (!gtrj::readHeader(text, pos, err)) {
                diag << "merge: " << path << ": " << err << "\n";
                return false;
            }
            std::size_t recNo = 0;
            for (;;) {
                const std::size_t frameStart = pos;
                std::string_view payload;
                const gtrj::FrameStatus st =
                    gtrj::nextFrame(text, pos, payload, err);
                if (st == gtrj::FrameStatus::eof)
                    break;
                if (st == gtrj::FrameStatus::torn) {
                    // Torn tails are the orchestrator's business
                    // (resume salvage); merge inputs are finished
                    // slices and must be intact.
                    diag << "merge: " << path << ": " << err
                         << "\n";
                    return false;
                }
                ++recNo;
                gtrj::DecodedRecord dec;
                if (!gtrj::decodePayload(payload, dec, err)) {
                    diag << "merge: " << path << " record " << recNo
                         << ": " << err << "\n";
                    return false;
                }
                Record rec;
                rec.scenario = dec.scenario;
                rec.index = dec.index;
                rec.line =
                    text.substr(frameStart, pos - frameStart);
                if (!admit(std::move(rec), dec.cfg.instructions,
                           path + " record " +
                               std::to_string(recNo)))
                    return false;
            }
            continue;
        }

        std::vector<std::string> lines = splitLines(text);
        std::size_t lineNo = 0;
        for (std::string &line : lines) {
            ++lineNo;
            if (format == TrajectoryFormat::csv && lineNo == 1) {
                // The header row. Every non-empty shard writes the
                // same one; keep the first, insist the rest match.
                if (header.empty())
                    header = line;
                else if (line != header) {
                    diag << "merge: '" << path
                         << "' has a different CSV header\n";
                    return false;
                }
                continue;
            }
            Record rec;
            std::uint64_t instructions = 0;
            const bool ok =
                format == TrajectoryFormat::jsonLines
                    ? jsonRecordKey(line, rec.scenario, rec.index,
                                    instructions, err)
                    : csvRecordKey(line, rec.scenario, rec.index,
                                   instructions, err);
            if (!ok) {
                diag << "merge: " << path << ":" << lineNo << ": "
                     << err << "\n";
                return false;
            }
            rec.line = std::move(line);
            if (!admit(std::move(rec), instructions,
                       path + ":" + std::to_string(lineNo)))
                return false;
        }
    }

    // Completeness evidence from the records themselves: within one
    // file a scenario's indices step by the shard count, so any
    // scenario with two records in some file reveals how many shard
    // files a complete merge needs.
    std::uint64_t stride = 0;
    for (std::size_t f = 0; f < indexSeqs.size(); ++f) {
        for (const std::vector<std::uint64_t> &xs : indexSeqs[f]) {
            for (std::size_t k = 1; k < xs.size(); ++k) {
                const std::uint64_t d = xs[k] - xs[k - 1];
                if (stride == 0)
                    stride = d;
                if (d != stride) {
                    diag << "merge: '" << shardFiles[f]
                         << "': shard stride " << d
                         << " disagrees with " << stride
                         << " (files from different sweeps?)\n";
                    return false;
                }
            }
        }
    }
    if (expected) {
        if (shardFiles.size() != expected->shardCount) {
            diag << "merge: manifests declare "
                 << expected->shardCount << " shards but "
                 << shardFiles.size()
                 << " trajectory files were given\n";
            return false;
        }
    } else if (stride != 0) {
        if (shardFiles.size() != stride) {
            diag << "merge: records step by " << stride
                 << " (a " << stride << "-way sharded sweep) but "
                 << shardFiles.size() << " file"
                 << (shardFiles.size() == 1 ? " was" : "s were")
                 << " given (missing shard?)\n";
            return false;
        }
        // One file = one shard: every scenario in a file must share
        // the shard's residue.
        for (std::size_t f = 0; f < indexSeqs.size(); ++f) {
            std::uint64_t residue = stride;
            for (const auto &xs : indexSeqs[f]) {
                if (xs.empty())
                    continue;
                if (residue == stride)
                    residue = xs.front() % stride;
                else if (xs.front() % stride != residue) {
                    diag << "merge: '" << shardFiles[f]
                         << "' mixes records of different shards\n";
                    return false;
                }
            }
        }
    } else {
        // No stride evidence at all (no scenario has two records in
        // any one file — e.g. grid size <= shard count): the record
        // set of a complete merge is indistinguishable from that of
        // a truncated one, so refuse rather than silently archive a
        // plausible-looking partial trajectory. The shard manifests
        // prove completeness where the records cannot.
        diag << "merge: completeness cannot be proven from the "
                "records alone (no scenario has two records in any "
                "input file); pass the shard manifests via "
                "--merge-manifest\n";
        return false;
    }

    std::vector<std::string> order;
    if (!mergeScenarioOrders(scenarioSeqs, order, err)) {
        diag << "merge: " << err << "\n";
        return false;
    }
    for (Record &rec : records)
        rec.scenarioRank = rankOf(order, rec.scenario);

    std::stable_sort(records.begin(), records.end(),
                     [](const Record &a, const Record &b) {
                         return a.scenarioRank != b.scenarioRank
                                    ? a.scenarioRank < b.scenarioRank
                                    : a.index < b.index;
                     });

    // The merged sequence must be exactly 0..k-1 per scenario:
    // duplicates mean overlapping shards, gaps mean a missing one.
    std::uint64_t expect = 0;
    std::size_t rank = static_cast<std::size_t>(-1);
    std::vector<std::uint64_t> counts(order.size(), 0);
    for (const Record &rec : records) {
        if (rec.scenarioRank != rank) {
            rank = rec.scenarioRank;
            expect = 0;
        }
        if (rec.index != expect) {
            diag << "merge: scenario '" << order[rank] << "': "
                 << (rec.index < expect
                         ? "duplicate record (overlapping shards?)"
                         : "missing records (missing shard?)")
                 << " at index " << (rec.index < expect ? rec.index
                                                        : expect)
                 << "\n";
            return false;
        }
        ++expect;
        counts[rank] = expect;
    }

    if (expected) {
        // The manifests are authoritative: the merged records must
        // be exactly the manifest's scenarios at their full run
        // counts (scenarios with empty grids never emit records).
        std::vector<std::string> wantNames;
        std::vector<std::uint64_t> wantCounts;
        for (const ManifestScenario &ms : expected->scenarios) {
            if (ms.gridSize * ms.replicas == 0)
                continue;
            wantNames.push_back(ms.name);
            wantCounts.push_back(ms.gridSize * ms.replicas);
        }
        if (order != wantNames) {
            diag << "merge: trajectory scenarios do not match the "
                    "shard manifests\n";
            return false;
        }
        for (std::size_t r = 0; r < counts.size(); ++r)
            if (counts[r] != wantCounts[r]) {
                diag << "merge: scenario '" << order[r] << "': "
                     << counts[r] << " records but the manifests "
                     << "declare " << wantCounts[r]
                     << " (missing shard?)\n";
                return false;
            }
    }

    std::ofstream os(outputPath, std::ios::out | std::ios::trunc |
                                     std::ios::binary);
    if (!os) {
        diag << "merge: cannot open '" << outputPath
             << "' for writing\n";
        return false;
    }
    if (format == TrajectoryFormat::gtrj) {
        // Raw frames, no separators: the header then each record's
        // own frame bytes, byte-equal to an unsharded sink.
        const std::string &h = gtrj::fileHeader();
        os.write(h.data(), static_cast<std::streamsize>(h.size()));
        for (const Record &rec : records)
            os.write(rec.line.data(),
                     static_cast<std::streamsize>(rec.line.size()));
    } else {
        if (format == TrajectoryFormat::csv && !header.empty())
            os << header << "\n";
        for (const Record &rec : records)
            os << rec.line << "\n";
    }
    os.flush();
    if (!os) {
        // A truncated file would pass for a canonical trajectory in
        // a later collection step; remove it like the CLI removes
        // the companion manifest.
        os.close();
        std::remove(outputPath.c_str());
        diag << "merge: error writing '" << outputPath
             << "' (partial file removed)\n";
        return false;
    }
    diag << "merge: " << records.size() << " records from "
         << shardFiles.size() << " shard file"
         << (shardFiles.size() == 1 ? "" : "s") << " -> '"
         << outputPath << "'\n";
    if (!expected)
        // Records cannot prove every run is present: a sweep whose
        // tail records were lost can be indistinguishable from a
        // complete smaller sweep (e.g. shards {0,3},{1,4},{2,5} are
        // a complete 6-run grid *and* a 7-run grid missing run 6).
        diag << "merge: note — completeness inferred from the "
                "records alone; pass the shard manifests via "
                "--merge-manifest for the authoritative check\n";
    return true;
}

bool
mergeManifests(const std::vector<std::string> &shardFiles,
               const std::string &manifestPath,
               const std::string &outputPath, std::ostream &diag,
               MergePlan *plan)
{
    if (shardFiles.empty()) {
        diag << "merge-manifest: no shard manifests given\n";
        return false;
    }
    std::string err;
    std::vector<ParsedManifest> parsed(shardFiles.size());
    for (std::size_t i = 0; i < shardFiles.size(); ++i) {
        if (!readManifest(shardFiles[i], parsed[i], err)) {
            diag << "merge-manifest: " << err << "\n";
            return false;
        }
        if (!parsed[i].opts.shard.active()) {
            diag << "merge-manifest: '" << shardFiles[i]
                 << "' is not a shard manifest (no shard object)\n";
            return false;
        }
    }

    const ParsedManifest &first = parsed.front();
    if (first.version != galssimVersion()) {
        diag << "merge-manifest: manifests were written by galssim "
             << first.version << ", this binary is "
             << galssimVersion() << "\n";
        return false;
    }
    const unsigned count = first.opts.shard.count;
    if (shardFiles.size() != count) {
        diag << "merge-manifest: manifests declare " << count
             << " shards but " << shardFiles.size()
             << " files were given\n";
        return false;
    }
    std::vector<bool> seen(count + 1, false);
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        const ParsedManifest &m = parsed[i];
        if (m.version != first.version ||
            m.engineName != first.engineName ||
            m.opts.instructions != first.opts.instructions ||
            m.opts.explicitSeeds != first.opts.explicitSeeds ||
            m.opts.benchmarks != first.opts.benchmarks ||
            m.opts.coreCounts != first.opts.coreCounts ||
            m.opts.topologies != first.opts.topologies ||
            m.opts.traffics != first.opts.traffics ||
            m.opts.intervalTicks != first.opts.intervalTicks ||
            m.opts.warmupInstructions !=
                first.opts.warmupInstructions ||
            m.opts.shard.count != count ||
            !sameScenarios(m.scenarios, first.scenarios)) {
            diag << "merge-manifest: '" << shardFiles[i]
                 << "' disagrees with '" << shardFiles.front()
                 << "' (different sweep?)\n";
            return false;
        }
        if (seen[m.opts.shard.index]) {
            diag << "merge-manifest: shard " << m.opts.shard.index
                 << "/" << count << " appears twice\n";
            return false;
        }
        seen[m.opts.shard.index] = true;
    }
    for (unsigned i = 1; i <= count; ++i)
        if (!seen[i]) {
            diag << "merge-manifest: shard " << i << "/" << count
                 << " is missing\n";
            return false;
        }

    SweepOptions opts = first.opts;
    opts.shard = ShardSpec(); // the merged manifest is unsharded
    // Not writeManifestFile(): an unwritable path must report back,
    // not gals_fatal the process (the no-die contract above). The
    // temp-file + rename keeps the same guarantee that policy used
    // to hand-roll: no canonical-looking partial artifact is ever
    // left behind, and a previously merged manifest survives a
    // failed re-merge intact.
    std::ostringstream os;
    writeManifest(os, opts, first.engineName, outputPath,
                  first.scenarios);
    std::string werr;
    if (!atomicWriteFile(manifestPath, os.str(), werr)) {
        diag << "merge-manifest: " << werr << "\n";
        return false;
    }
    diag << "merge-manifest: " << count << " shard manifests -> '"
         << manifestPath << "'\n";
    if (plan) {
        plan->shardCount = count;
        plan->scenarios = first.scenarios;
    }
    return true;
}

bool
verifyManifest(const ScenarioRegistry &registry,
               const ExperimentEngine &engine,
               const std::string &manifestPath, std::ostream &diag)
{
    std::string err;
    ParsedManifest m;
    if (!readManifest(manifestPath, m, err)) {
        diag << "verify: " << err << "\n";
        return false;
    }
    if (m.version != galssimVersion()) {
        diag << "verify: manifest was written by galssim "
             << m.version << ", this binary is " << galssimVersion()
             << " — results are not comparable\n";
        return false;
    }
    if (m.engineName != "calendar" && m.engineName != "heap") {
        diag << "verify: unknown engine '" << m.engineName << "'\n";
        return false;
    }
    if (m.output.empty()) {
        diag << "verify: manifest records no trajectory "
                "(the archived run had no --output)\n";
        return false;
    }

    // The manifest records --output as the archiving invocation
    // spelled it, so for a relative path the trajectory may sit (a)
    // next to the manifest (archives travel as a pair — the CI
    // artifact case), (b) next to the manifest under its basename
    // (a pair moved together after archiving into a subdirectory),
    // or (c) at the recorded path from the current directory
    // (verifying where the archive was written). Manifest-adjacent
    // candidates come first: the pair travels together, and a
    // fresher unrelated file at the cwd-relative path must not
    // shadow the archive's true companion.
    std::string archivePath = m.output;
    if (m.output.front() != '/') {
        const std::size_t slash = m.output.find_last_of('/');
        const std::string base = slash == std::string::npos
                                     ? m.output
                                     : m.output.substr(slash + 1);
        for (const std::string &candidate :
             {dirName(manifestPath) + m.output,
              dirName(manifestPath) + base, m.output}) {
            if (std::ifstream(candidate).good()) {
                archivePath = candidate;
                break;
            }
        }
    }
    std::string archived;
    if (!readFile(archivePath, archived, err)) {
        diag << "verify: " << err << "\n";
        return false;
    }

    // The archived engine governs the replay, but the override must
    // not leak past this call (test binaries and future multi-verify
    // CLIs run other work after us).
    struct EngineRestore
    {
        QueueEngine prev = EventQueue::defaultEngine();
        ~EngineRestore() { EventQueue::setDefaultEngine(prev); }
    } engineRestore;
    EventQueue::setDefaultEngine(parseQueueEngine(m.engineName));

    const TrajectoryFormat format =
        trajectoryFormatForPath(m.output);
    std::ostringstream regen;
    TrajectorySink sink(regen, format, archivePath);

    for (const ManifestScenario &ms : m.scenarios) {
        const Scenario *scenario = registry.find(ms.name);
        if (!scenario) {
            diag << "verify: unknown scenario '" << ms.name
                 << "' (registry drift?)\n";
            return false;
        }
        std::size_t gridSize = 0;
        const std::vector<RunConfig> runs =
            expandReplicatedRuns(*scenario, m.opts, &gridSize);
        if (gridSize != ms.gridSize ||
            m.opts.seedList().size() != ms.replicas) {
            diag << "verify: scenario '" << ms.name
                 << "': grid " << gridSize << "x"
                 << m.opts.seedList().size()
                 << " != archived " << ms.gridSize << "x"
                 << ms.replicas << "\n";
            return false;
        }
        if (runConfigHash(runs) != ms.configHash) {
            diag << "verify: scenario '" << ms.name
                 << "': config hash mismatch — the simulator or "
                    "scenario definition changed since the archive "
                    "was written\n";
            return false;
        }
        const std::vector<std::size_t> indices =
            shardRunIndices(runs.size(), m.opts.shard);
        const std::vector<RunConfig> shardRuns =
            selectRuns(runs, indices);
        const std::vector<RunResults> results =
            engine.run(shardRuns);
        sink.append(ms.name, shardRuns, results,
                    m.opts.shard.active() ? &indices : nullptr);
        diag << "verify: " << ms.name << ": " << results.size()
             << " runs re-executed\n";
    }
    sink.close();

    // The CSV header row is not a record; keep the diagnostics'
    // record counts and indices honest about it.
    const std::size_t headerLines =
        format == TrajectoryFormat::csv ? 1 : 0;
    const auto recordCount = [&](std::size_t lines) {
        return lines > headerLines ? lines - headerLines : 0;
    };

    const std::string &expected = archived;
    const std::string actual = regen.str();
    if (expected == actual) {
        diag << "verify: OK — '" << archivePath << "' ("
             << (format == TrajectoryFormat::gtrj
                     ? gtrj::countFrames(actual)
                     : recordCount(splitLines(actual).size()))
             << " records, " << actual.size()
             << " bytes) is byte-identical to the replay\n";
        return true;
    }

    diag << "verify: FAILED — regenerated trajectory differs from '"
         << archivePath << "'\n";

    // Line diffs over binary frames locate nothing a human can read;
    // render both sides as JSON lines first. If either side does not
    // even decode, fall back to the first differing byte.
    std::string expText = expected, actText = actual;
    if (format == TrajectoryFormat::gtrj) {
        std::string e2, a2, derr;
        if (!gtrj::toJsonLines(expected, e2, derr) ||
            !gtrj::toJsonLines(actual, a2, derr)) {
            std::size_t off = 0;
            const std::size_t lim =
                std::min(expected.size(), actual.size());
            while (off < lim && expected[off] == actual[off])
                ++off;
            diag << "verify:   archived "
                 << gtrj::countFrames(expected) << " frames / "
                 << expected.size() << " bytes, replay "
                 << gtrj::countFrames(actual) << " frames / "
                 << actual.size()
                 << " bytes; first differing byte at offset " << off
                 << " (" << derr << ")\n";
            return false;
        }
        expText.swap(e2);
        actText.swap(a2);
    }

    const std::vector<std::string> expLines = splitLines(expText);
    const std::vector<std::string> actLines = splitLines(actText);
    if (expLines.size() != actLines.size())
        diag << "verify:   archived has "
             << recordCount(expLines.size()) << " records, replay has "
             << recordCount(actLines.size()) << "\n";
    const std::size_t n =
        std::max(expLines.size(), actLines.size());
    std::size_t shown = 0, differing = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::string *e =
            i < expLines.size() ? &expLines[i] : nullptr;
        const std::string *a =
            i < actLines.size() ? &actLines[i] : nullptr;
        if (e && a && *e == *a)
            continue;
        ++differing;
        if (shown < 4) {
            ++shown;
            if (i < headerLines)
                diag << "verify:   header:\n";
            else
                diag << "verify:   record " << i - headerLines
                     << ":\n";
            diag << "verify:     archived: "
                 << (e ? *e : "<missing>") << "\n"
                 << "verify:     replay:   "
                 << (a ? *a : "<missing>") << "\n";
        }
    }
    diag << "verify:   " << differing << " differing line"
         << (differing == 1 ? "" : "s") << " in total\n";
    return false;
}

} // namespace gals::runner
