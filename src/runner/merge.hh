/**
 * @file
 * Shard fan-in and archive replay: `--merge`, `--merge-manifest`
 * and `--verify`.
 *
 * A sharded sweep (`galsbench --shard i/N`) leaves N trajectory
 * files and N manifests, each covering a disjoint round-robin slice
 * of the run grid but carrying the records' *canonical* grid
 * indices. mergeTrajectories() fuses the shard files back into the
 * single-machine ordering — cmp-identical to an unsharded run — and
 * mergeManifests() fuses the shard manifests into the canonical
 * manifest. verifyManifest() closes the loop: it re-runs an archived
 * manifest (engine, instruction budget, seeds, benchmarks, shard)
 * against the current binary, checks the per-scenario grid shapes
 * and config hashes first, and byte-compares the regenerated
 * trajectory against the archived file, reporting a per-record diff
 * on mismatch.
 *
 * All three return false with a diagnostic instead of dying, so the
 * CLI can exit non-zero cleanly and tests can assert on messages.
 */

#ifndef RUNNER_MERGE_HH
#define RUNNER_MERGE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace gals::runner
{

class ExperimentEngine;
class ScenarioRegistry;
struct ManifestScenario;

/** What a complete merge must contain, as recovered from the shard
 *  manifests: the authoritative completeness cross-check for
 *  mergeTrajectories(). */
struct MergePlan
{
    unsigned shardCount = 0;
    /** Canonical scenario entries (full grid sizes / replicas), in
     *  execution order. */
    std::vector<ManifestScenario> scenarios;
};

/**
 * Merge shard trajectory files into @p outputPath in canonical
 * (unsharded) record order. All inputs and the output must share one
 * format (by extension, trajectoryFormatForPath()). Fails on
 * malformed records, on overlapping shards (duplicate canonical
 * index), on shard files whose records disagree on a scenario's
 * instruction budget (inputs from different sweeps), and on
 * incomplete merges: interior index gaps, a file count that
 * contradicts the shard stride visible in the records, and — when
 * @p expected is given (recovered from the shard manifests by
 * mergeManifests()) — any deviation from the manifest's scenario
 * set and per-scenario run counts. When neither a plan nor stride
 * evidence exists (no scenario has two records in any one file — a
 * grid no larger than the shard count), completeness is unprovable
 * from the records, and the merge is refused. Records alone can
 * never prove the *tail* of a sweep survived (a lost last record
 * leaves a set indistinguishable from a complete smaller grid), so
 * a manifest-less merge prints a note and the shard manifests —
 * `--merge-manifest` in the same invocation — remain the
 * authoritative completeness check (what CI uses).
 * @param diag human-readable progress and errors.
 * @return true iff the merged file was written.
 */
bool mergeTrajectories(const std::vector<std::string> &shardFiles,
                       const std::string &outputPath,
                       std::ostream &diag,
                       const MergePlan *expected = nullptr);

/**
 * Merge shard manifests into the canonical manifest at
 * @p manifestPath: every shard manifest must agree on version,
 * engine, sweep options and scenario grids, and the shard indices
 * must cover 1..N exactly. The merged manifest drops the shard
 * object and records @p outputPath (the merged trajectory's path;
 * may be empty) — making it byte-identical to the manifest an
 * unsharded `--output outputPath` run writes. @p plan, when given,
 * receives the recovered canonical sweep shape for
 * mergeTrajectories() to cross-check against.
 */
bool mergeManifests(const std::vector<std::string> &shardFiles,
                    const std::string &manifestPath,
                    const std::string &outputPath,
                    std::ostream &diag, MergePlan *plan = nullptr);

/**
 * Replay an archived manifest and byte-compare the regenerated
 * trajectory against the archived one (the manifest's `output` path,
 * resolved relative to the manifest file's directory). Before
 * spending any simulation time, each scenario's regenerated grid
 * must match the manifest's grid size, replica count and full-grid
 * config hash — catching config drift early. @p engine supplies the
 * worker pool (any job count: records are index-slotted).
 * @return true iff every record matches byte for byte.
 */
bool verifyManifest(const ScenarioRegistry &registry,
                    const ExperimentEngine &engine,
                    const std::string &manifestPath,
                    std::ostream &diag);

} // namespace gals::runner

#endif // RUNNER_MERGE_HH
