#include "runner/orchestrator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "runner/atomic_file.hh"
#include "runner/gtrj.hh"
#include "runner/json.hh"
#include "runner/merge.hh"
#include "runner/reporter.hh"
#include "runner/trajectory.hh"
#include "runner/worker_proc.hh"

namespace gals::runner
{

// ---------------------------------------------------------------------------
// DispatchTracker

DispatchTracker::DispatchTracker(std::size_t slices,
                                 DispatchPolicy policy)
    : policy_(policy), slices_(slices)
{
}

void
DispatchTracker::markDone(std::size_t slice)
{
    slices_.at(slice).state = SliceState::done;
}

std::optional<std::size_t>
DispatchTracker::nextDispatch(std::uint64_t nowMs) const
{
    for (std::size_t i = 0; i < slices_.size(); ++i) {
        const Slice &s = slices_[i];
        if (s.state == SliceState::pending && s.eligibleAtMs <= nowMs)
            return i;
    }
    return std::nullopt;
}

void
DispatchTracker::onLaunched(std::size_t slice, std::uint64_t nowMs)
{
    Slice &s = slices_.at(slice);
    s.state = SliceState::running;
    s.attempts += 1;
    s.startedMs = nowMs;
}

void
DispatchTracker::onFinished(std::size_t slice, std::uint64_t nowMs)
{
    Slice &s = slices_.at(slice);
    s.state = SliceState::done;
    durationsMs_.push_back(nowMs - s.startedMs);
}

void
DispatchTracker::onFailed(std::size_t slice, std::uint64_t nowMs)
{
    Slice &s = slices_.at(slice);
    if (s.attempts >= policy_.maxAttempts) {
        s.state = SliceState::failed;
        return;
    }
    s.state = SliceState::pending;
    s.eligibleAtMs = nowMs + backoffDelayMs(s.attempts);
}

std::vector<std::size_t>
DispatchTracker::stragglers(std::uint64_t nowMs) const
{
    std::vector<std::size_t> out;
    const std::uint64_t deadline = deadlineMs();
    if (deadline == 0)
        return out;
    for (std::size_t i = 0; i < slices_.size(); ++i) {
        const Slice &s = slices_[i];
        if (s.state == SliceState::running &&
            nowMs - s.startedMs > deadline)
            out.push_back(i);
    }
    return out;
}

std::uint64_t
DispatchTracker::deadlineMs() const
{
    const std::uint64_t median = medianDurationMs();
    if (median == 0 && durationsMs_.empty())
        return 0;
    const double scaled =
        policy_.stragglerFactor * static_cast<double>(median);
    const std::uint64_t byMedian =
        scaled < 0 ? 0 : static_cast<std::uint64_t>(scaled);
    return std::max(policy_.minDeadlineMs, byMedian);
}

std::uint64_t
DispatchTracker::medianDurationMs() const
{
    if (durationsMs_.empty())
        return 0;
    std::vector<std::uint64_t> sorted = durationsMs_;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    if (n % 2 == 1)
        return sorted[n / 2];
    return (sorted[n / 2 - 1] + sorted[n / 2]) / 2;
}

std::uint64_t
DispatchTracker::backoffDelayMs(unsigned failures) const
{
    if (failures == 0 || policy_.backoffBaseMs == 0)
        return 0;
    std::uint64_t delay = policy_.backoffBaseMs;
    for (unsigned k = 1;
         k < failures && delay < policy_.backoffCapMs; ++k)
        delay *= 2;
    return std::min(delay, policy_.backoffCapMs);
}

SliceState
DispatchTracker::state(std::size_t slice) const
{
    return slices_.at(slice).state;
}

unsigned
DispatchTracker::attempts(std::size_t slice) const
{
    return slices_.at(slice).attempts;
}

std::uint64_t
DispatchTracker::eligibleAtMs(std::size_t slice) const
{
    return slices_.at(slice).eligibleAtMs;
}

std::size_t
DispatchTracker::countIn(SliceState s) const
{
    std::size_t n = 0;
    for (const Slice &slice : slices_)
        if (slice.state == s)
            ++n;
    return n;
}

bool
DispatchTracker::allDone() const
{
    return countIn(SliceState::done) == slices_.size();
}

// ---------------------------------------------------------------------------
// Slice-file scanning

namespace
{

/** The gtrj arm of scanSliceRecords(): the valid prefix is the file
 *  header plus the run of complete frames that decode and match the
 *  expectation, so a resumed worker's append continues mid-file
 *  exactly where truncate(2) cut. A torn or missing header salvages
 *  nothing (validBytes 0 — the reopened sink writes a fresh one). */
bool
scanGtrjSliceRecords(const std::string &path,
                     const std::vector<SliceExpectation> &expected,
                     SliceScan &out, std::string &err,
                     std::vector<RecordStat> *stats)
{
    std::ifstream is(path, std::ios::in | std::ios::binary);
    if (!is) {
        // A never-written slice scans as an empty valid prefix.
        return true;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    if (is.bad()) {
        err = "error reading '" + path + "'";
        return false;
    }
    const std::string text = buf.str();

    std::size_t pos = 0;
    std::string herr;
    if (gtrj::readHeader(text, pos, herr)) {
        out.validBytes = pos;
        for (std::size_t k = 0; k < expected.size(); ++k) {
            std::string_view payload;
            std::string ferr;
            const gtrj::FrameStatus st =
                gtrj::nextFrame(text, pos, payload, ferr);
            if (st == gtrj::FrameStatus::eof)
                break;
            if (st == gtrj::FrameStatus::torn) {
                out.trimmedTail = true;
                break;
            }
            gtrj::DecodedRecord dec;
            if (!gtrj::decodePayload(payload, dec, ferr) ||
                dec.scenario != expected[k].scenario ||
                dec.index != expected[k].index) {
                // Corrupted or foreign record: everything from here
                // on is untrustworthy.
                out.trimmedTail = true;
                break;
            }
            if (stats)
                stats->push_back(
                    {dec.results.benchmark, dec.results.timeSec});
            out.validRecords += 1;
            out.validBytes = pos;
        }
    }

    if (text.size() > out.validBytes)
        out.trimmedTail = true;
    return true;
}

} // namespace

bool
scanSliceRecords(const std::string &path,
                 const std::vector<SliceExpectation> &expected,
                 SliceScan &out, std::string &err,
                 std::vector<RecordStat> *stats)
{
    out = SliceScan{};
    if (trajectoryFormatForPath(path) == TrajectoryFormat::gtrj)
        return scanGtrjSliceRecords(path, expected, out, err,
                                    stats);
    std::ifstream is(path, std::ios::in | std::ios::binary);
    if (!is) {
        // A never-written slice scans as an empty valid prefix.
        return true;
    }

    std::string line;
    for (std::size_t k = 0; k < expected.size(); ++k) {
        if (!std::getline(is, line)) {
            if (is.bad()) {
                err = "error reading '" + path + "'";
                return false;
            }
            break; // clean EOF: prefix simply ends here
        }
        if (is.eof()) {
            // getline hit EOF before a newline: a torn trailing
            // record from a mid-write crash. Cut it off.
            out.trimmedTail = true;
            break;
        }
        json::Value v;
        std::string perr;
        std::uint64_t index = 0;
        const json::Value *s = nullptr;
        const json::Value *i = nullptr;
        if (!json::parse(line, v, perr) ||
            !(s = v.find("scenario")) || !(i = v.find("index")) ||
            s->kind != json::Value::Kind::string ||
            !i->asU64(index) || s->str != expected[k].scenario ||
            index != expected[k].index) {
            // Corrupted or foreign record: everything from here on is
            // untrustworthy.
            out.trimmedTail = true;
            break;
        }
        if (stats) {
            RecordStat stat;
            if (const json::Value *b = v.find("benchmark"))
                stat.benchmark = b->str;
            if (const json::Value *t = v.find("time_sec"))
                stat.timeSec = t->number;
            stats->push_back(std::move(stat));
        }
        out.validRecords += 1;
        out.validBytes += line.size() + 1;
    }

    if (is.bad()) {
        err = "error reading '" + path + "'";
        return false;
    }

    // Anything past the valid prefix — a torn line, extra records
    // beyond the expectation — is tail to trim.
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (!ec && size > out.validBytes)
        out.trimmedTail = true;
    return true;
}

// ---------------------------------------------------------------------------
// runDispatch

namespace
{

std::uint64_t
monotonicNowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
commaJoin(const std::vector<std::uint64_t> &values)
{
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(values[i]);
    }
    return out;
}

/** Everything known about one slice while the dispatch runs. */
struct SliceRuntime
{
    std::vector<SliceExpectation> expected;
    std::string recordsPath;
    std::string manifestPath;
    std::string logPath;
    WorkerProc worker;
    std::size_t resumeSkip = 0;     ///< records already on disk
    std::uint64_t launchedMs = 0;   ///< this attempt's start time
};

/** Append-only, line-flushed journal writer. */
class Journal
{
  public:
    bool open(const std::string &path, std::string &err)
    {
        os_.open(path, std::ios::out | std::ios::app |
                           std::ios::binary);
        if (!os_) {
            err = "cannot open journal '" + path + "' for writing";
            return false;
        }
        path_ = path;
        return true;
    }

    void line(const std::string &text)
    {
        os_ << text << "\n";
        os_.flush();
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream os_;
};

/** Aggregated per-benchmark latency from completed slices. */
struct BenchAgg
{
    std::size_t runs = 0;
    double totalTimeSec = 0.0;
};

std::size_t
countFileLines(const std::string &path)
{
    std::ifstream is(path, std::ios::in | std::ios::binary);
    if (!is)
        return 0;
    std::size_t lines = 0;
    char buf[65536];
    while (is.read(buf, sizeof(buf)) || is.gcount() > 0) {
        const std::streamsize got = is.gcount();
        for (std::streamsize i = 0; i < got; ++i)
            if (buf[i] == '\n')
                ++lines;
        if (got < static_cast<std::streamsize>(sizeof(buf)))
            break;
    }
    return lines;
}

/** Records currently in a slice file, for progress snapshots: lines
 *  for the text formats, complete frames for gtrj (a torn tail just
 *  stops the count — progress may briefly read one low, never
 *  wrong). */
std::size_t
countFileRecords(const std::string &path)
{
    if (trajectoryFormatForPath(path) != TrajectoryFormat::gtrj)
        return countFileLines(path);
    std::ifstream is(path, std::ios::in | std::ios::binary);
    if (!is)
        return 0;
    std::ostringstream buf;
    buf << is.rdbuf();
    return gtrj::countFrames(buf.str());
}

} // namespace

bool
runDispatch(const ScenarioRegistry &registry,
            const DispatchOptions &options, std::ostream &diag,
            DispatchReport *reportOut)
{
    namespace fs = std::filesystem;

    DispatchOptions opts = options;
    if (opts.outputPath.empty()) {
        diag << "dispatch: --output PATH is required\n";
        return false;
    }
    const TrajectoryFormat outFormat =
        trajectoryFormatForPath(opts.outputPath);
    if (outFormat == TrajectoryFormat::csv) {
        diag << "dispatch: --output must be a JSON-lines or gtrj "
                "path (crash-safe streaming appends self-delimiting "
                "records; a CSV header cannot be resumed)\n";
        return false;
    }
    if (opts.scenarios.empty()) {
        diag << "dispatch: no scenario selected\n";
        return false;
    }
    if (opts.workerBinary.empty()) {
        diag << "dispatch: no worker binary\n";
        return false;
    }
    if (opts.policy.maxAttempts == 0)
        opts.policy.maxAttempts = 1;
    if (opts.workers == 0)
        opts.workers = std::thread::hardware_concurrency()
                           ? std::thread::hardware_concurrency()
                           : 1;
    if (opts.slices == 0)
        opts.slices = opts.workers;
    opts.sweep.shard = ShardSpec(); // dispatch owns the slicing

    // Expand every scenario once: the expectations below are the
    // ground truth each worker's slice file is validated against.
    struct ScenarioShape
    {
        const Scenario *scenario;
        std::size_t totalRuns;
        std::size_t gridSize;
    };
    std::vector<ScenarioShape> shapes;
    std::size_t totalRuns = 0;
    for (const std::string &name : opts.scenarios) {
        const Scenario *scenario = registry.find(name);
        if (!scenario) {
            diag << "dispatch: unknown scenario '" << name << "'\n";
            return false;
        }
        std::size_t gridSize = 0;
        const std::vector<RunConfig> runs =
            expandReplicatedRuns(*scenario, opts.sweep, &gridSize);
        shapes.push_back({scenario, runs.size(), gridSize});
        totalRuns += runs.size();
    }

    const unsigned M = opts.slices;
    const std::string workDir = opts.outputPath + ".dispatch";
    const std::string journalPath = workDir + "/journal.jsonl";
    const std::string statusPath = workDir + "/status.json";
    const std::string finalManifestPath =
        opts.manifestPath.empty() ? workDir + "/manifest.json"
                                  : opts.manifestPath;

    std::error_code ec;
    if (opts.fresh)
        fs::remove_all(workDir, ec);
    fs::create_directories(workDir, ec);
    if (ec) {
        diag << "dispatch: cannot create work directory '" << workDir
             << "': " << ec.message() << "\n";
        return false;
    }

    // One dispatch per work directory: two orchestrators appending to
    // one journal and relaunching each other's slices would corrupt
    // everything the journal is supposed to guarantee.
    const int lockFd =
        ::open(journalPath.c_str(), O_RDWR | O_CREAT, 0644);
    if (lockFd < 0) {
        diag << "dispatch: cannot open '" << journalPath
             << "': " << std::strerror(errno) << "\n";
        return false;
    }
    if (::flock(lockFd, LOCK_EX | LOCK_NB) != 0) {
        diag << "dispatch: another dispatch already owns '" << workDir
             << "' (journal is flock'd)\n";
        ::close(lockFd);
        return false;
    }
    // Lock released by process exit or the close below; a kill -9
    // releases it automatically, which is exactly what resume needs.

    // The plan line pins everything that defines the slice partition.
    // Resuming under different flags would mis-assign records.
    std::ostringstream plan;
    plan << "{\"event\":\"plan\",\"galssim_version\":"
         << jsonQuote(galssimVersion())
         << ",\"engine\":" << jsonQuote(opts.engineName)
         << ",\"slices\":" << M
         << ",\"output\":" << jsonQuote(opts.outputPath)
         << ",\"instructions\":" << opts.sweep.instructions
         << ",\"seeds\":[" << commaJoin(opts.sweep.seedList())
         << "],\"benchmarks\":[";
    for (std::size_t i = 0; i < opts.sweep.benchmarks.size(); ++i)
        plan << (i ? "," : "")
             << jsonQuote(opts.sweep.benchmarks[i]);
    plan << "]";
    // Gated like the manifest's fabric object: absent for pre-fabric
    // sweeps, so their plan lines (and thus resumability of archived
    // dispatch directories) keep their exact historical bytes.
    if (!opts.sweep.coreCounts.empty() ||
        !opts.sweep.topologies.empty() ||
        !opts.sweep.traffics.empty()) {
        plan << ",\"fabric\":{\"cores\":[";
        for (std::size_t i = 0; i < opts.sweep.coreCounts.size(); ++i)
            plan << (i ? "," : "") << opts.sweep.coreCounts[i];
        plan << "],\"topologies\":[";
        for (std::size_t i = 0; i < opts.sweep.topologies.size(); ++i)
            plan << (i ? "," : "")
                 << jsonQuote(opts.sweep.topologies[i]);
        plan << "],\"traffics\":[";
        for (std::size_t i = 0; i < opts.sweep.traffics.size(); ++i)
            plan << (i ? "," : "")
                 << jsonQuote(opts.sweep.traffics[i]);
        plan << "]}";
    }
    // Gated the same way: only metered sweeps mention the interval,
    // only warm sweeps mention the split. The snapshot directory is
    // deliberately absent — it caches, it does not define the sweep.
    if (opts.sweep.intervalTicks > 0)
        plan << ",\"interval_ticks\":" << opts.sweep.intervalTicks;
    if (opts.sweep.warmupInstructions > 0)
        plan << ",\"warmup_insts\":"
             << opts.sweep.warmupInstructions;
    plan << ",\"scenarios\":[";
    for (std::size_t i = 0; i < shapes.size(); ++i)
        plan << (i ? "," : "") << "{\"name\":"
             << jsonQuote(shapes[i].scenario->name)
             << ",\"runs\":" << shapes[i].totalRuns << "}";
    plan << "]}";
    const std::string planLine = plan.str();

    {
        std::ifstream is(journalPath,
                         std::ios::in | std::ios::binary);
        std::string firstLine;
        if (is && std::getline(is, firstLine) &&
            !firstLine.empty() && firstLine != planLine) {
            diag << "dispatch: '" << journalPath
                 << "' records a different sweep plan; resume with "
                    "the original flags or pass --fresh to discard "
                    "the previous state\n";
            ::close(lockFd);
            return false;
        }
    }

    Journal journal;
    std::string err;
    if (!journal.open(journalPath, err)) {
        diag << "dispatch: " << err << "\n";
        ::close(lockFd);
        return false;
    }
    if (fs::file_size(journalPath, ec) == 0 || ec)
        journal.line(planLine);

    // Build each slice's runtime state + expected record sequence
    // (scenario execution order, ascending canonical index within a
    // scenario — exactly the order a streaming worker flushes).
    std::vector<SliceRuntime> slices(M);
    for (unsigned i = 0; i < M; ++i) {
        SliceRuntime &rt = slices[i];
        const std::string base =
            workDir + "/slice_" + std::to_string(i + 1);
        // Slice files carry the output's format so the workers, the
        // resume scan and the final merge all agree from the path
        // alone.
        rt.recordsPath =
            base + (outFormat == TrajectoryFormat::gtrj ? ".gtrj"
                                                        : ".jsonl");
        rt.manifestPath = base + ".manifest.json";
        rt.logPath = base + ".log";
        ShardSpec shard;
        shard.index = i + 1;
        shard.count = M;
        for (const ScenarioShape &shape : shapes)
            for (std::size_t idx :
                 shardRunIndices(shape.totalRuns, shard))
                rt.expected.push_back(
                    {shape.scenario->name,
                     static_cast<std::uint64_t>(idx)});
    }

    DispatchReport report;
    report.totalRuns = totalRuns;
    report.slices = M;

    DispatchTracker tracker(M, opts.policy);
    std::map<std::string, BenchAgg> benchAgg;

    // Scan + trim every slice file: salvage the valid prefix, decide
    // which slices are already complete (records + manifest), and
    // arm --resume-skip for the rest.
    auto rescanSlice = [&](unsigned i, bool harvestStats,
                           std::string &scanErr) -> bool {
        SliceRuntime &rt = slices[i];
        SliceScan scan;
        std::vector<RecordStat> stats;
        if (!scanSliceRecords(rt.recordsPath, rt.expected, scan,
                              scanErr,
                              harvestStats ? &stats : nullptr))
            return false;
        if (scan.trimmedTail) {
            if (::truncate(rt.recordsPath.c_str(),
                           static_cast<off_t>(scan.validBytes)) !=
                0) {
                scanErr = "cannot truncate '" + rt.recordsPath +
                          "': " + std::strerror(errno);
                return false;
            }
            journal.line("{\"event\":\"trim\",\"slice\":" +
                         std::to_string(i + 1) + ",\"records\":" +
                         std::to_string(scan.validRecords) +
                         ",\"bytes\":" +
                         std::to_string(scan.validBytes) + "}");
        }
        rt.resumeSkip = scan.validRecords;
        if (harvestStats)
            for (const RecordStat &s : stats) {
                BenchAgg &agg = benchAgg[s.benchmark];
                agg.runs += 1;
                agg.totalTimeSec += s.timeSec;
            }
        return true;
    };

    for (unsigned i = 0; i < M; ++i) {
        SliceRuntime &rt = slices[i];
        std::string scanErr;
        const bool complete =
            rescanSlice(i, false, scanErr) &&
            rt.resumeSkip == rt.expected.size() &&
            fs::exists(rt.manifestPath);
        if (!scanErr.empty()) {
            diag << "dispatch: " << scanErr << "\n";
            ::close(lockFd);
            return false;
        }
        report.resumedRecords += rt.resumeSkip;
        if (complete) {
            tracker.markDone(i);
            report.resumedDoneSlices += 1;
            std::string statsErr;
            rescanSlice(i, true, statsErr); // harvest for status.json
            journal.line("{\"event\":\"resume-done\",\"slice\":" +
                         std::to_string(i + 1) + "}");
        } else if (rt.resumeSkip > 0) {
            journal.line("{\"event\":\"resume\",\"slice\":" +
                         std::to_string(i + 1) + ",\"records\":" +
                         std::to_string(rt.resumeSkip) + "}");
        }
    }
    report.recordsRun = totalRuns - report.resumedRecords;

    const std::uint64_t startMs = monotonicNowMs();
    const std::size_t recordsAtStart = report.resumedRecords;
    std::uint64_t lastStatusMs = 0;

    auto writeStatus = [&](const char *state) {
        std::size_t recordsDone = 0;
        for (unsigned i = 0; i < M; ++i)
            recordsDone +=
                tracker.state(i) == SliceState::done
                    ? slices[i].expected.size()
                    : countFileRecords(slices[i].recordsPath);
        const std::uint64_t elapsed = monotonicNowMs() - startMs;
        const double sec =
            static_cast<double>(elapsed) / 1000.0;
        const double rate =
            sec > 0.0 ? static_cast<double>(recordsDone -
                                            recordsAtStart) /
                            sec
                      : 0.0;
        const std::size_t remaining = totalRuns - recordsDone;
        std::ostringstream os;
        os << "{\n  \"state\": " << jsonQuote(state)
           << ",\n  \"slices\": {\"total\": " << M << ", \"done\": "
           << tracker.countIn(SliceState::done) << ", \"running\": "
           << tracker.countIn(SliceState::running)
           << ", \"pending\": "
           << tracker.countIn(SliceState::pending)
           << ", \"failed\": "
           << tracker.countIn(SliceState::failed) << "}"
           << ",\n  \"records\": {\"total\": " << totalRuns
           << ", \"done\": " << recordsDone << "}"
           << ",\n  \"retries\": " << report.retries
           << ",\n  \"stragglers_killed\": "
           << report.stragglersKilled
           << ",\n  \"elapsed_ms\": " << elapsed
           << ",\n  \"runs_per_sec\": " << rate
           << ",\n  \"eta_ms\": "
           << (rate > 0.0 ? static_cast<std::uint64_t>(
                                static_cast<double>(remaining) *
                                1000.0 / rate)
                          : 0)
           << ",\n  \"benchmarks\": [";
        bool first = true;
        for (const auto &[name, agg] : benchAgg) {
            os << (first ? "\n" : ",\n") << "    {\"name\": "
               << jsonQuote(name) << ", \"runs\": " << agg.runs
               << ", \"mean_time_sec\": "
               << (agg.runs ? agg.totalTimeSec /
                                  static_cast<double>(agg.runs)
                            : 0.0)
               << "}";
            first = false;
        }
        os << (benchAgg.empty() ? "]\n" : "\n  ]\n") << "}\n";
        std::string werr;
        if (!atomicWriteFile(statusPath, os.str(), werr))
            diag << "dispatch: status write failed: " << werr
                 << "\n";
    };

    auto launchSlice = [&](unsigned i,
                           std::uint64_t nowMs) -> bool {
        SliceRuntime &rt = slices[i];
        std::string scanErr;
        if (!rescanSlice(i, false, scanErr)) {
            diag << "dispatch: " << scanErr << "\n";
            return false;
        }
        std::vector<std::string> argv;
        argv.push_back(opts.workerBinary);
        for (const ScenarioShape &shape : shapes) {
            argv.push_back("--scenario");
            argv.push_back(shape.scenario->name);
        }
        argv.push_back("--shard");
        argv.push_back(std::to_string(i + 1) + "/" +
                       std::to_string(M));
        argv.push_back("--jobs");
        argv.push_back(std::to_string(opts.workerJobs));
        argv.push_back("--insts");
        argv.push_back(std::to_string(opts.sweep.instructions));
        argv.push_back("--seed-list");
        argv.push_back(commaJoin(opts.sweep.seedList()));
        for (const std::string &b : opts.sweep.benchmarks) {
            argv.push_back("--bench");
            argv.push_back(b);
        }
        if (!opts.sweep.coreCounts.empty()) {
            std::string cores;
            for (std::size_t k = 0; k < opts.sweep.coreCounts.size();
                 ++k) {
                if (k)
                    cores += ',';
                cores += std::to_string(opts.sweep.coreCounts[k]);
            }
            argv.push_back("--cores");
            argv.push_back(cores);
        }
        if (!opts.sweep.topologies.empty()) {
            std::string topos;
            for (std::size_t k = 0; k < opts.sweep.topologies.size();
                 ++k) {
                if (k)
                    topos += ',';
                topos += opts.sweep.topologies[k];
            }
            argv.push_back("--topology");
            argv.push_back(topos);
        }
        if (!opts.sweep.traffics.empty()) {
            std::string traffics;
            for (std::size_t k = 0; k < opts.sweep.traffics.size();
                 ++k) {
                if (k)
                    traffics += ',';
                traffics += opts.sweep.traffics[k];
            }
            argv.push_back("--traffic");
            argv.push_back(traffics);
        }
        if (opts.sweep.intervalTicks > 0) {
            argv.push_back("--interval-ticks");
            argv.push_back(
                std::to_string(opts.sweep.intervalTicks));
        }
        if (opts.sweep.warmupInstructions > 0) {
            argv.push_back("--warmup-insts");
            argv.push_back(
                std::to_string(opts.sweep.warmupInstructions));
        }
        if (!opts.snapshotDir.empty()) {
            argv.push_back("--snapshot-dir");
            argv.push_back(opts.snapshotDir);
        }
        argv.push_back("--engine");
        argv.push_back(opts.engineName);
        argv.push_back("--output");
        argv.push_back(rt.recordsPath);
        argv.push_back("--manifest");
        argv.push_back(rt.manifestPath);
        if (rt.resumeSkip > 0) {
            argv.push_back("--resume-skip");
            argv.push_back(std::to_string(rt.resumeSkip));
        }
        for (const std::string &a : opts.workerArgs)
            argv.push_back(a);
        if (tracker.attempts(i) == 0) {
            const auto it = opts.firstAttemptArgs.find(i + 1);
            if (it != opts.firstAttemptArgs.end())
                for (const std::string &a : it->second)
                    argv.push_back(a);
        }
        std::string startErr;
        if (!rt.worker.start(argv, rt.logPath, startErr)) {
            diag << "dispatch: slice " << i + 1 << ": " << startErr
                 << "\n";
            tracker.onLaunched(i, nowMs); // burn the attempt
            tracker.onFailed(i, nowMs);
            journal.line(
                "{\"event\":\"fail\",\"slice\":" +
                std::to_string(i + 1) + ",\"attempt\":" +
                std::to_string(tracker.attempts(i)) +
                ",\"detail\":\"launch failed\"}");
            return true; // the dispatch itself continues
        }
        tracker.onLaunched(i, nowMs);
        rt.launchedMs = nowMs;
        report.launches += 1;
        journal.line("{\"event\":\"launch\",\"slice\":" +
                     std::to_string(i + 1) + ",\"attempt\":" +
                     std::to_string(tracker.attempts(i)) +
                     ",\"skip\":" + std::to_string(rt.resumeSkip) +
                     ",\"pid\":" +
                     std::to_string(rt.worker.pid()) + "}");
        return true;
    };

    auto failSlice = [&](unsigned i, std::uint64_t nowMs,
                         const std::string &detail) {
        journal.line("{\"event\":\"fail\",\"slice\":" +
                     std::to_string(i + 1) + ",\"attempt\":" +
                     std::to_string(tracker.attempts(i)) +
                     ",\"detail\":" + jsonQuote(detail) + "}");
        tracker.onFailed(i, nowMs);
        if (tracker.state(i) == SliceState::pending) {
            report.retries += 1;
            diag << "dispatch: slice " << i + 1 << " failed ("
                 << detail << "), retry in "
                 << tracker.backoffDelayMs(tracker.attempts(i))
                 << " ms\n";
        } else {
            diag << "dispatch: slice " << i + 1 << " failed ("
                 << detail << "), attempts exhausted\n";
        }
    };

    bool ioError = false;
    while (!tracker.allDone() && !tracker.anyExhausted() &&
           !ioError) {
        const std::uint64_t now = monotonicNowMs();

        // Reap finished workers.
        for (unsigned i = 0; i < M; ++i) {
            SliceRuntime &rt = slices[i];
            if (tracker.state(i) != SliceState::running ||
                !rt.worker.running())
                continue;
            std::string detail;
            const WorkerProc::Poll polled = rt.worker.poll(detail);
            if (polled == WorkerProc::Poll::running)
                continue;
            if (polled == WorkerProc::Poll::failed) {
                failSlice(i, now, detail);
                continue;
            }
            // Exited 0: trust nothing — the slice is done only if
            // its records and manifest actually check out on disk.
            std::string scanErr;
            if (!rescanSlice(i, true, scanErr)) {
                diag << "dispatch: " << scanErr << "\n";
                ioError = true;
                break;
            }
            if (rt.resumeSkip == rt.expected.size() &&
                fs::exists(rt.manifestPath)) {
                tracker.onFinished(i, now);
                journal.line("{\"event\":\"done\",\"slice\":" +
                             std::to_string(i + 1) + ",\"ms\":" +
                             std::to_string(now - rt.launchedMs) +
                             "}");
            } else {
                failSlice(i, now,
                          "exited 0 with incomplete output (" +
                              std::to_string(rt.resumeSkip) + "/" +
                              std::to_string(rt.expected.size()) +
                              " records)");
            }
        }
        if (ioError)
            break;

        // Straggler kills: re-dispatch is idempotent because the
        // relaunch rescans and skips whatever the straggler flushed.
        for (std::size_t i : tracker.stragglers(now)) {
            SliceRuntime &rt = slices[i];
            journal.line("{\"event\":\"kill\",\"slice\":" +
                         std::to_string(i + 1) +
                         ",\"reason\":\"straggler\","
                         "\"deadline_ms\":" +
                         std::to_string(tracker.deadlineMs()) +
                         "}");
            diag << "dispatch: slice " << i + 1
                 << " exceeded the straggler deadline ("
                 << tracker.deadlineMs() << " ms), killing pid "
                 << rt.worker.pid() << "\n";
            rt.worker.kill();
            report.stragglersKilled += 1;
            failSlice(static_cast<unsigned>(i), now,
                      "straggler killed");
        }

        // Launch work up to the worker cap.
        while (tracker.countIn(SliceState::running) <
               opts.workers) {
            const std::optional<std::size_t> next =
                tracker.nextDispatch(now);
            if (!next)
                break;
            if (!launchSlice(static_cast<unsigned>(*next), now)) {
                ioError = true;
                break;
            }
        }
        if (ioError)
            break;

        if (now - lastStatusMs >= opts.statusIntervalMs) {
            writeStatus("running");
            lastStatusMs = now;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }

    // Take down anything still running (straggler kill loops, abort
    // on exhaustion, I/O errors): WorkerProc's destructor would do
    // it too, but do it explicitly before declaring the outcome.
    for (SliceRuntime &rt : slices)
        if (rt.worker.running())
            rt.worker.kill();

    for (unsigned i = 0; i < M; ++i)
        report.sliceAttempts.push_back(tracker.attempts(i));
    if (reportOut)
        *reportOut = report;

    if (!tracker.allDone()) {
        journal.line("{\"event\":\"abort\"}");
        writeStatus("failed");
        diag << "dispatch: aborted ("
             << tracker.countIn(SliceState::failed)
             << " slices exhausted their "
             << opts.policy.maxAttempts << " attempts); see '"
             << workDir << "' logs\n";
        if (reportOut)
            *reportOut = report;
        ::close(lockFd);
        return false;
    }

    // Fan the slices back in through the PR-4 merge machinery: the
    // manifests first (the authoritative completeness cross-check),
    // then the trajectories into the canonical unsharded file.
    std::vector<std::string> manifestFiles, recordFiles;
    for (const SliceRuntime &rt : slices) {
        manifestFiles.push_back(rt.manifestPath);
        recordFiles.push_back(rt.recordsPath);
    }
    MergePlan mergePlan;
    bool ok = mergeManifests(manifestFiles, finalManifestPath,
                             opts.outputPath, diag, &mergePlan);
    if (ok)
        ok = mergeTrajectories(recordFiles, opts.outputPath, diag,
                               &mergePlan);
    if (!ok) {
        journal.line("{\"event\":\"merge-failed\"}");
        writeStatus("failed");
        ::close(lockFd);
        return false;
    }
    journal.line("{\"event\":\"merged\",\"output\":" +
                 jsonQuote(opts.outputPath) + ",\"manifest\":" +
                 jsonQuote(finalManifestPath) + "}");
    writeStatus("done");
    if (reportOut)
        *reportOut = report;

    diag << "dispatch: " << totalRuns << " runs over " << M
         << " slices -> '" << opts.outputPath << "' ("
         << report.launches << " launches, " << report.retries
         << " retries, " << report.stragglersKilled
         << " stragglers killed";
    if (report.resumedRecords)
        diag << ", " << report.resumedRecords
             << " records resumed";
    diag << ")\n";
    ::close(lockFd);
    return true;
}

} // namespace gals::runner
