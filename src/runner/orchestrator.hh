/**
 * @file
 * Crash-safe sweep orchestration: `galsbench dispatch`.
 *
 * PR 4 built the passive substrate for multi-machine sweeps —
 * `--shard i/N` slices, `--merge` fan-in, `--verify` replay. The
 * orchestrator is the active control plane on top: it splits every
 * selected scenario's grid into M round-robin slices, launches
 * `galsbench --shard i/M` worker subprocesses (up to W at a time),
 * and drives them to completion through a slice state machine that
 * survives anything short of losing the disk:
 *
 *   pending --launch--> running --exit 0 + complete file--> done
 *      ^                   |
 *      |   crash / bad exit / straggler kill (capped exponential
 *      +---backoff---------+  backoff; attempts > cap => failed)
 *
 * Crash safety rests on three artifacts next to the output, in
 * `<output>.dispatch/`:
 *
 *  - `slice_<i>.jsonl` (or `.gtrj` for a binary output) /
 *    `slice_<i>.manifest.json` — each worker streams records one
 *    flushed line (or frame) at a time in canonical slice order, so
 *    a SIGKILL at any instant costs at most one (truncated) trailing
 *    record. The slice manifest is written
 *    atomically after the last record, so its existence marks the
 *    slice complete.
 *  - `journal.jsonl` — append-only state-transition journal. Its
 *    first line records the full sweep plan; a resumed dispatch
 *    refuses to continue a journal whose plan differs from its own
 *    flags (pass --fresh to discard the old state instead).
 *  - `status.json` — progress snapshot (runs/sec, slices done,
 *    retries, ETA, per-benchmark stats), rewritten periodically via
 *    temp-file + atomic rename.
 *
 * Resume: on startup every existing slice file is scanned against
 * the slice's expected (scenario, canonical-index) sequence; the
 * valid prefix is kept (a truncated or mismatching tail is cut off
 * with truncate(2)) and the worker is relaunched with
 * `--resume-skip K` so it appends only the missing records. Slices
 * whose records and manifest are already complete are not re-run at
 * all.
 *
 * Stragglers: once at least one slice has finished, a running slice
 * older than max(minDeadlineMs, stragglerFactor x median finished
 * slice time) is SIGKILLed and re-dispatched (counting against the
 * same attempt cap). Re-dispatch is idempotent: the records the
 * straggler did flush are kept and skipped.
 *
 * When every slice is done the existing merge machinery
 * (runner/merge.hh) fans the slice manifests and trajectories back
 * into the canonical unsharded files — cmp-identical to a
 * single-machine `--jobs 1` run.
 */

#ifndef RUNNER_ORCHESTRATOR_HH
#define RUNNER_ORCHESTRATOR_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runner/scenario.hh"

namespace gals::runner
{

/** Retry / straggler policy of one dispatch. */
struct DispatchPolicy
{
    /** Launches per slice before the dispatch gives up. */
    unsigned maxAttempts = 3;

    /** Backoff before retry k (1-based) is
     *  min(backoffCapMs, backoffBaseMs << (k-1)). */
    std::uint64_t backoffBaseMs = 500;
    std::uint64_t backoffCapMs = 8000;

    /** Straggler deadline = max(minDeadlineMs, stragglerFactor x
     *  median finished-slice wall time). No deadline until the
     *  first slice finishes (there is no median to trust). */
    double stragglerFactor = 4.0;
    std::uint64_t minDeadlineMs = 30000;
};

/** Lifecycle of one slice. */
enum class SliceState
{
    pending, ///< waiting for a worker (possibly in backoff)
    running, ///< a worker is executing it
    done,    ///< records + manifest complete on disk
    failed,  ///< attempts exhausted
};

/**
 * The dispatch slice state machine, pure and time-injected (all
 * "now" values are caller-supplied milliseconds on one monotonic
 * clock), so retry caps, backoff schedules and straggler deadlines
 * are unit-testable without processes or sleeps.
 */
class DispatchTracker
{
  public:
    DispatchTracker(std::size_t slices, DispatchPolicy policy);

    /** Mark a slice complete before any launch (resume found its
     *  records + manifest already on disk). Contributes no duration
     *  to the straggler median. */
    void markDone(std::size_t slice);

    /** The lowest-index pending slice whose backoff has elapsed, or
     *  nullopt. Does not change state — pair with onLaunched(). */
    std::optional<std::size_t> nextDispatch(std::uint64_t nowMs) const;

    /** A worker was started for @p slice (counts one attempt). */
    void onLaunched(std::size_t slice, std::uint64_t nowMs);

    /** The slice's worker exited cleanly and its artifacts are
     *  complete; records the duration for the straggler median. */
    void onFinished(std::size_t slice, std::uint64_t nowMs);

    /**
     * The slice's attempt failed (crash, non-zero exit, straggler
     * kill, incomplete output). Below the attempt cap the slice
     * returns to pending, eligible again after the capped
     * exponential backoff; at the cap it becomes failed.
     */
    void onFailed(std::size_t slice, std::uint64_t nowMs);

    /**
     * Running slices whose attempt started more than deadlineMs()
     * ago. Pure: calling it twice returns the same set; a slice
     * leaves the set only via onFailed()/onFinished(). Empty while
     * deadlineMs() == 0.
     */
    std::vector<std::size_t> stragglers(std::uint64_t nowMs) const;

    /** Current straggler deadline in ms, or 0 while no slice has
     *  finished yet. */
    std::uint64_t deadlineMs() const;

    /** Median wall time of finished slices (0 if none). */
    std::uint64_t medianDurationMs() const;

    /** Backoff delay after @p failures failures (1-based). */
    std::uint64_t backoffDelayMs(unsigned failures) const;

    SliceState state(std::size_t slice) const;
    unsigned attempts(std::size_t slice) const;
    /** Earliest time a pending slice may relaunch. */
    std::uint64_t eligibleAtMs(std::size_t slice) const;

    std::size_t size() const { return slices_.size(); }
    std::size_t countIn(SliceState s) const;
    bool allDone() const;
    /** True once any slice has exhausted its attempts. */
    bool anyExhausted() const { return countIn(SliceState::failed) > 0; }

  private:
    struct Slice
    {
        SliceState state = SliceState::pending;
        unsigned attempts = 0;
        std::uint64_t eligibleAtMs = 0;
        std::uint64_t startedMs = 0;
    };

    DispatchPolicy policy_;
    std::vector<Slice> slices_;
    std::vector<std::uint64_t> durationsMs_; ///< finished slices
};

/** One expected record of a slice file: which scenario, which
 *  canonical grid index. */
struct SliceExpectation
{
    std::string scenario;
    std::uint64_t index = 0;
};

/** Per-record stats harvested while scanning (for status.json's
 *  per-benchmark figures). */
struct RecordStat
{
    std::string benchmark;
    double timeSec = 0.0;
};

/** What scanSliceRecords() found. */
struct SliceScan
{
    std::size_t validRecords = 0; ///< matching prefix length
    std::uint64_t validBytes = 0; ///< offset just past that prefix
    bool trimmedTail = false;     ///< bytes past the prefix exist
};

/**
 * Scan a (possibly partial, possibly crash-truncated) slice
 * trajectory at @p path against its expected record sequence. The
 * format follows the path's extension: the valid prefix is the run
 * of leading JSON lines (or, for `.gtrj`, the file header plus the
 * run of complete binary frames) that parse as records and match
 * @p expected position for position; anything after it — a torn
 * trailing line or frame from a mid-write crash, a corrupted or
 * foreign record — is reported via trimmedTail so the caller can
 * truncate(2) to validBytes and resume from validRecords. A missing
 * file scans as an empty valid prefix.
 * @param stats when non-null, appends one RecordStat per valid
 *     record.
 * @return false only on an I/O error reading an existing file.
 */
bool scanSliceRecords(const std::string &path,
                      const std::vector<SliceExpectation> &expected,
                      SliceScan &out, std::string &err,
                      std::vector<RecordStat> *stats = nullptr);

/** Everything `galsbench dispatch` needs to run one sweep. */
struct DispatchOptions
{
    /** Resolved scenario names, in execution order. */
    std::vector<std::string> scenarios;

    /** Sweep shape (instructions, seeds, benchmarks); the shard
     *  field is ignored — dispatch owns the slicing. */
    SweepOptions sweep;

    /** Event-queue engine name ("calendar" / "heap"), passed to
     *  every worker and recorded in the manifests. */
    std::string engineName = "calendar";

    /** Final merged trajectory (JSON-lines or gtrj — CSV cannot be
     *  crash-resumed). The work directory is
     *  `<outputPath>.dispatch/`. */
    std::string outputPath;

    /** Final merged manifest; empty keeps it inside the work
     *  directory (the merge still needs it as the completeness
     *  cross-check). */
    std::string manifestPath;

    /** The galsbench binary workers exec. */
    std::string workerBinary;

    unsigned slices = 0;  ///< M; 0 = the resolved worker count
    unsigned workers = 0; ///< concurrent workers; 0 = hardware
    unsigned workerJobs = 1; ///< --jobs inside each worker

    DispatchPolicy policy;

    /** status.json rewrite cadence. */
    std::uint64_t statusIntervalMs = 1000;

    /** Discard any existing work directory instead of resuming. */
    bool fresh = false;

    /** Warm-snapshot exchange directory (`--snapshot-dir`),
     *  forwarded to every worker so slices share warmup stems on
     *  disk — including across an orchestrator crash and resume.
     *  Not run-defining: it never appears in the plan line or any
     *  manifest. Empty = workers memoize in-process only. */
    std::string snapshotDir;

    /** TEST-ONLY: extra argv appended to every worker launch (e.g. a
     *  persistent fault flag). */
    std::vector<std::string> workerArgs;

    /** TEST-ONLY: extra argv appended to the FIRST attempt of the
     *  keyed slice only (1-based, matching `--shard i/M`), so fault
     *  injection exercises the retry path deterministically: attempt
     *  1 faults, attempt 2 runs clean. */
    std::map<unsigned, std::vector<std::string>> firstAttemptArgs;
};

/** Outcome accounting, for tests and the CLI summary. */
struct DispatchReport
{
    std::size_t totalRuns = 0;       ///< records in the full sweep
    std::size_t slices = 0;          ///< M
    std::size_t launches = 0;        ///< workers actually spawned
    std::size_t retries = 0;         ///< failed attempts retried
    std::size_t stragglersKilled = 0;
    std::size_t resumedDoneSlices = 0; ///< complete before any launch
    std::size_t resumedRecords = 0;  ///< records salvaged on startup
    std::size_t recordsRun = 0;      ///< totalRuns - resumedRecords
    std::vector<unsigned> sliceAttempts; ///< per slice, this run
};

/**
 * Run one dispatch to completion (or to failure). Returns true iff
 * every slice completed and the merged trajectory (and manifest)
 * were written. Diagnostics and progress lines go to @p diag;
 * machine-readable progress goes to `<output>.dispatch/status.json`.
 */
bool runDispatch(const ScenarioRegistry &registry,
                 const DispatchOptions &options, std::ostream &diag,
                 DispatchReport *report = nullptr);

} // namespace gals::runner

#endif // RUNNER_ORCHESTRATOR_HH
