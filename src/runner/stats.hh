/**
 * @file
 * Replication statistics for multi-seed sweeps.
 *
 * A replicated sweep runs the same scenario grid once per workload
 * seed (`galsbench --seeds N` / `--seed-list`); this module reduces
 * the R×G flat result list back to the G grid points, giving each
 * scalar metric a sample mean, standard deviation and 95%
 * confidence-interval half-width (Student's t, two-sided). The
 * reporters and the scenarios' own reduce() tables render these as
 * "mean ± ci" columns; the raw per-replica rows stay in the
 * trajectory file (runner/trajectory.hh).
 *
 * The canonical metric column list lives here too (MetricAccessor):
 * it is the single source of truth for the column names and order
 * used by the JSON-lines/CSV reporters and the aggregation below.
 */

#ifndef RUNNER_STATS_HH
#define RUNNER_STATS_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace gals::runner
{

/** One scalar metric column of RunResults, with uniform double
 *  access for aggregation and a setter for writing means back. */
struct MetricAccessor
{
    const char *name;    ///< column name, e.g. "ipc_nominal"
    bool integral;       ///< printed as an integer in per-run records
    double (*get)(const RunResults &);
    void (*set)(RunResults &, double);
    /** Exact integer access for integral columns (null otherwise):
     *  per-run records print this directly so values above 2^53 are
     *  not rounded through double. */
    std::uint64_t (*getU)(const RunResults &);
    /** Exact integer setter for integral columns (null otherwise):
     *  the binary-trajectory decoder restores counters without
     *  rounding through double. */
    void (*setU)(RunResults &, std::uint64_t);
};

/** The scalar metric columns, in canonical reporter column order. */
const std::vector<MetricAccessor> &metricAccessors();

/** Sample statistics of one metric over the replicas of a grid
 *  point. */
struct MetricSummary
{
    unsigned n = 0;      ///< replica count
    double mean = 0.0;   ///< sample mean
    double stddev = 0.0; ///< sample standard deviation (n-1)
    double ci95 = 0.0;   ///< 95% CI half-width; 0 when n < 2
};

/** Two-sided 95% Student-t critical value for @p dof degrees of
 *  freedom (dof >= 1; large dof asymptotes to the normal 1.96). */
double tCritical95(unsigned dof);

/** Reduce one sample to mean / stddev / 95% CI half-width.
 *  Non-finite samples propagate into the summary as NaN. */
MetricSummary summarize(const std::vector<double> &xs);

/**
 * A replicated sweep reduced per grid point. Replica r of grid point
 * g lives at index r*gridSize + g of the flat engine results (the
 * expandReplicatedRuns() layout).
 */
struct ReplicaSummary
{
    std::size_t gridSize = 0;
    std::size_t replicas = 0;

    /** Per-grid-point metric-wise means (integral metrics rounded;
     *  benchmark/gals/unit energies carried over). This is what a
     *  scenario's reduce() sees for a replicated sweep. */
    std::vector<RunResults> mean;

    /** metrics[g][m]: summary of metricAccessors()[m] at grid point
     *  g. */
    std::vector<std::vector<MetricSummary>> metrics;

    /** Summary of metric @p name at grid point @p grid, or nullptr
     *  for an unknown name. */
    const MetricSummary *metric(std::size_t grid,
                                const std::string &name) const;
};

/**
 * Aggregate a flat replicated result list (layout above) into
 * per-grid-point summaries. @p all must hold an integral number of
 * @p gridSize-sized replica blocks.
 */
ReplicaSummary summarizeReplicas(std::size_t gridSize,
                                 const std::vector<RunResults> &all);

/**
 * Delta-method 95% half-width of the ratio a/b given each side's
 * mean and CI half-width: |a/b| * sqrt((ciA/a)^2 + (ciB/b)^2).
 * The scenarios' normalized-ratio tables (rel. perf, energy ratio)
 * use this to qualify ratios of replicated metrics.
 */
double ratioCi95(double meanA, double ciA, double meanB, double ciB);

/** "mean ± ci" with %.3f fields, e.g. "0.912 ± 0.004". */
std::string formatMeanCi(double mean, double ci);

/**
 * Generic replication appendix printed after a scenario's own table:
 * one row per grid point with mean ± 95% CI for the headline metrics
 * (IPC, time, energy, power, slip). @p gridCfgs is the first replica
 * block of the expanded grid (size == summary.gridSize).
 */
void writeReplicationTable(std::ostream &os,
                           const std::string &scenario,
                           const std::vector<RunConfig> &gridCfgs,
                           const ReplicaSummary &summary);

} // namespace gals::runner

#endif // RUNNER_STATS_HH
