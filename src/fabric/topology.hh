/**
 * @file
 * Topology generators: turn (TopologyKind, N) into the directed link
 * list a fabric::System instantiates as Channel-backed GALS links,
 * plus the static routing function the per-core NICs use.
 *
 * Both generators emit a strongly connected directed graph whose
 * links are sorted (src, dst) ascending — construction order is part
 * of the determinism contract, so it must not depend on container
 * iteration quirks.
 */

#ifndef FABRIC_TOPOLOGY_HH
#define FABRIC_TOPOLOGY_HH

#include <vector>

#include "fabric/fabric_config.hh"

namespace gals
{

/** One directed inter-core link. */
struct LinkSpec
{
    unsigned src = 0;
    unsigned dst = 0;
};

/** Rows of the 2D mesh for @p cores: largest divisor <= sqrt(N), so
 *  the mesh is as square as N allows (prime N degrades to a chain). */
unsigned meshRows(unsigned cores);

/** Generate the directed links of @p kind over @p cores cores,
 *  sorted (src, dst) ascending, no duplicates. */
std::vector<LinkSpec> buildTopologyLinks(TopologyKind kind,
                                         unsigned cores);

/**
 * The neighbor @p from forwards to next for a message addressed to
 * @p to (!= @p from). Ring: shortest direction, ties broken forward.
 * Mesh: XY dimension-order (column first, then row) — deadlock-free
 * for the request/reply protocol because routes never cycle.
 */
unsigned nextHop(TopologyKind kind, unsigned cores, unsigned from,
                 unsigned to);

} // namespace gals

#endif // FABRIC_TOPOLOGY_HH
