/**
 * @file
 * The multi-core GALS fabric: a System owns one shared EventQueue, N
 * Processor cores (each with its own five clock domains, exactly the
 * paper pipeline), and a generated topology of inter-core links.
 *
 * Each directed link is itself a GALS element: a private ClockDomain
 * clocking a store-and-forward hop, fed and drained through two
 * Channel segments (source core -> link, link -> destination core).
 * In base mode the segments are synchronous latches on a common
 * period; in GALS mode they are Chelcea-Nowick FIFOs and the link
 * clock gets a random phase — so the fabric inherits the exact
 * synchronizer semantics the paper gives the intra-core FIFOs.
 *
 * Traffic: each core's NIC injects one remote request per
 * FabricConfig::trafficInterval committed instructions, round-robin
 * over its TrafficMatrix flows, and stalls fetch while
 * trafficWindow requests await their completion replies — the
 * "remote-completion dependency" that couples core progress to
 * fabric latency.
 *
 * Determinism contract: everything runs on the one EventQueue; NICs
 * and link hops are ordinary prioritized tickers (stages 10, NIC 20,
 * energy 90), channels are drained in fixed ascending-source order,
 * and all randomness comes from seeds in the RunConfig. Results are
 * therefore byte-identical across --jobs, --engine calendar|heap,
 * shard/merge round trips and dispatch crash-resume, like every
 * single-core run.
 */

#ifndef FABRIC_SYSTEM_HH
#define FABRIC_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/experiment.hh"
#include "core/processor.hh"
#include "fabric/topology.hh"
#include "sim/event_queue.hh"

namespace gals
{

/** One message on the fabric: a remote request or its completion. */
struct FabricMsg
{
    unsigned src = 0;
    unsigned dst = 0;
    std::uint64_t seq = 0;
    bool reply = false;
    Tick sendTick = 0; ///< injection time of the original request
};

/**
 * N cores plus the fabric, built from one RunConfig with
 * cfg.fabric.active(). run() owns the event-service loop and returns
 * the aggregated RunResults with the per-core breakdown filled in.
 */
class System
{
  public:
    explicit System(const RunConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run every core to cfg.instructions committed; single use. */
    RunResults run();

    unsigned cores() const { return static_cast<unsigned>(procs_.size()); }
    Processor &core(unsigned i) { return *procs_[i]; }
    EventQueue &eventQueue() { return eq_; }

  private:
    class Link;
    class Nic;

    void buildCores();
    void buildFabric();
    RunResults aggregate();

    RunConfig cfg_;
    EventQueue eq_;
    std::vector<std::unique_ptr<Processor>> procs_;
    std::vector<std::unique_ptr<Link>> links_;
    std::vector<std::unique_ptr<Nic>> nics_;
    bool ran_ = false;
};

/** Convenience wrapper: build a System from @p cfg and run it. */
RunResults runSystem(const RunConfig &cfg);

} // namespace gals

#endif // FABRIC_SYSTEM_HH
