#include "fabric/fabric_config.hh"

namespace gals
{

const char *
topologyKindName(TopologyKind k)
{
    switch (k) {
      case TopologyKind::ring:
        return "ring";
      case TopologyKind::mesh2d:
        return "mesh2d";
    }
    return "?";
}

bool
parseTopologyKind(const std::string &s, TopologyKind &out)
{
    if (s == "ring") {
        out = TopologyKind::ring;
        return true;
    }
    if (s == "mesh2d") {
        out = TopologyKind::mesh2d;
        return true;
    }
    return false;
}

namespace
{

/** Parse the ":K" suffix of hotspot:K. Returns false on malformed. */
bool
parseHotspotTarget(const std::string &spec, unsigned long &target)
{
    const std::string digits = spec.substr(std::string("hotspot:").size());
    if (digits.empty())
        return false;
    target = 0;
    for (const char c : digits) {
        if (c < '0' || c > '9')
            return false;
        target = target * 10 + static_cast<unsigned long>(c - '0');
        if (target > 1000000)
            return false;
    }
    return true;
}

bool
isHotspotSpec(const std::string &spec)
{
    return spec.rfind("hotspot:", 0) == 0;
}

} // namespace

std::string
checkTrafficSpec(const std::string &spec)
{
    if (spec == "none" || spec == "permutation" || spec == "uniform" ||
        spec == "incast" || spec == "hotspot")
        return "";
    if (isHotspotSpec(spec)) {
        unsigned long target = 0;
        if (!parseHotspotTarget(spec, target))
            return "malformed hotspot target in '" + spec +
                   "' (want hotspot:<core>)";
        return "";
    }
    return "unknown traffic pattern '" + spec +
           "' (valid: none, permutation, uniform, incast, "
           "hotspot[:<core>])";
}

std::string
parseTrafficPattern(const std::string &spec, unsigned cores,
                    std::vector<TrafficFlow> &flows)
{
    flows.clear();
    const std::string syntax = checkTrafficSpec(spec);
    if (!syntax.empty())
        return syntax;

    if (spec == "none")
        return "";

    if (spec == "permutation") {
        for (unsigned i = 0; i < cores; ++i)
            flows.push_back({i, (i + 1) % cores});
        return "";
    }

    if (spec == "uniform") {
        for (unsigned i = 0; i < cores; ++i)
            for (unsigned j = 0; j < cores; ++j)
                if (i != j)
                    flows.push_back({i, j});
        return "";
    }

    unsigned long target = 0; // incast and hotspot default to core 0
    if (isHotspotSpec(spec) && !parseHotspotTarget(spec, target))
        return "malformed hotspot target in '" + spec + "'";
    if (target >= cores)
        return "traffic '" + spec + "' references core " +
               std::to_string(target) + " but the fabric has only " +
               std::to_string(cores) + " cores";
    for (unsigned i = 0; i < cores; ++i)
        if (i != target)
            flows.push_back({i, static_cast<unsigned>(target)});
    return "";
}

std::string
FabricConfig::validate() const
{
    if (cores == 0)
        return "fabric: cores must be >= 1";
    if (!active())
        return "";
    if (linkFifoCapacity < 2)
        return "fabric: link FIFO capacity must be >= 2";
    if (trafficInterval == 0)
        return "fabric: traffic interval must be >= 1";
    if (trafficWindow == 0)
        return "fabric: traffic window must be >= 1";
    std::vector<TrafficFlow> flows;
    return parseTrafficPattern(traffic, cores, flows);
}

} // namespace gals
