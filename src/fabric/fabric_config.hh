/**
 * @file
 * Fabric (multi-core) configuration: how many cores, how they are
 * wired (Topology) and who talks to whom (TrafficMatrix).
 *
 * A default-constructed FabricConfig means "no fabric": one core, the
 * single-processor paper pipeline, and — critically — zero effect on
 * runConfigHash(), trajectory records or manifests, so every
 * pre-fabric archive keeps verifying byte-for-byte.
 */

#ifndef FABRIC_FABRIC_CONFIG_HH
#define FABRIC_FABRIC_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core_config.hh"

namespace gals
{

/** Generated link graphs connecting the cores. */
enum class TopologyKind : std::uint8_t
{
    ring,   ///< bidirectional ring, shortest-direction routing
    mesh2d, ///< 2D mesh (rows x cols), XY dimension-order routing
};

/** Stable lowercase name (CLI value, trajectory field). */
const char *topologyKindName(TopologyKind k);

/** Parse a CLI topology name; false on unknown. */
bool parseTopologyKind(const std::string &s, TopologyKind &out);

/** One src -> dst request stream of a traffic matrix. */
struct TrafficFlow
{
    unsigned src = 0;
    unsigned dst = 0;
};

/**
 * Expand a declarative traffic-matrix spec into flows for @p cores
 * cores. Specs:
 *
 *   none        no inter-core traffic (cores run independently)
 *   permutation core i -> core (i+1) mod N
 *   uniform     all-to-all: every core -> every other core
 *   incast      every core -> core 0
 *   hotspot     alias for hotspot:0
 *   hotspot:K   every core -> core K
 *
 * @return "" on success, else a diagnostic (unknown pattern, or a
 *     referenced core >= @p cores).
 */
std::string parseTrafficPattern(const std::string &spec, unsigned cores,
                                std::vector<TrafficFlow> &flows);

/** Syntax-only spec check (core count not yet known). "" == ok. */
std::string checkTrafficSpec(const std::string &spec);

/**
 * The fabric axes of one run. Inert at cores == 1 (active() false):
 * the run takes the classic single-Processor path and none of these
 * fields is hashed or reported.
 */
struct FabricConfig
{
    /** Number of cores; > 1 engages fabric::runSystem(). */
    unsigned cores = 1;

    TopologyKind topology = TopologyKind::ring;

    /** Traffic-matrix spec (see parseTrafficPattern()). */
    std::string traffic = "uniform";

    /** Capacity of each inter-core link FIFO (both segments). */
    unsigned linkFifoCapacity = defaults::fetchQueueSize * 2;

    /** A core injects one remote request per this many commits. */
    std::uint64_t trafficInterval = 200;

    /** Max requests in flight per core before fetch stalls on the
     *  remote completions (the "remote dependency" window). */
    unsigned trafficWindow = 8;

    bool active() const { return cores > 1; }

    /** "" when runnable, else a diagnostic. */
    std::string validate() const;
};

} // namespace gals

#endif // FABRIC_FABRIC_CONFIG_HH
