#include "fabric/topology.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gals
{

unsigned
meshRows(unsigned cores)
{
    gals_assert(cores >= 1, "meshRows: zero cores");
    unsigned rows = 1;
    for (unsigned r = 1; r * r <= cores; ++r)
        if (cores % r == 0)
            rows = r;
    return rows;
}

std::vector<LinkSpec>
buildTopologyLinks(TopologyKind kind, unsigned cores)
{
    std::vector<LinkSpec> links;
    if (cores < 2)
        return links;

    auto add = [&links](unsigned a, unsigned b) {
        for (const LinkSpec &l : links)
            if (l.src == a && l.dst == b)
                return;
        links.push_back({a, b});
    };

    switch (kind) {
      case TopologyKind::ring:
        for (unsigned i = 0; i < cores; ++i) {
            add(i, (i + 1) % cores);
            add(i, (i + cores - 1) % cores);
        }
        break;
      case TopologyKind::mesh2d: {
        const unsigned rows = meshRows(cores);
        const unsigned cols = cores / rows;
        for (unsigned r = 0; r < rows; ++r) {
            for (unsigned c = 0; c < cols; ++c) {
                const unsigned n = r * cols + c;
                if (c + 1 < cols) {
                    add(n, n + 1);
                    add(n + 1, n);
                }
                if (r + 1 < rows) {
                    add(n, n + cols);
                    add(n + cols, n);
                }
            }
        }
        break;
      }
    }

    std::sort(links.begin(), links.end(),
              [](const LinkSpec &a, const LinkSpec &b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
    return links;
}

unsigned
nextHop(TopologyKind kind, unsigned cores, unsigned from, unsigned to)
{
    gals_assert(from != to, "nextHop: message already at destination");
    gals_assert(from < cores && to < cores, "nextHop: core out of range");

    switch (kind) {
      case TopologyKind::ring: {
        const unsigned fwd = (to + cores - from) % cores;
        const unsigned bwd = cores - fwd;
        return fwd <= bwd ? (from + 1) % cores
                          : (from + cores - 1) % cores;
      }
      case TopologyKind::mesh2d: {
        const unsigned rows = meshRows(cores);
        const unsigned cols = cores / rows;
        const unsigned fc = from % cols;
        const unsigned tc = to % cols;
        if (fc != tc)
            return fc < tc ? from + 1 : from - 1;
        return from % cols == to % cols && from < to ? from + cols
                                                     : from - cols;
      }
    }
    gals_panic("nextHop: unknown topology");
    return 0;
}

} // namespace gals
