#include "fabric/system.hh"

#include <algorithm>
#include <string>

#include "core/channel.hh"
#include "dvfs/controller.hh"
#include "sim/logging.hh"

namespace gals
{

/**
 * One directed inter-core link: a private clock domain driving a
 * store-and-forward hop between two Channel segments. The hop logic
 * runs at priority 10 on the link's own clock, like a pipeline stage.
 */
class System::Link final : public ClockDomain::Ticker
{
  public:
    Link(EventQueue &eq, const RunConfig &cfg, const LinkSpec &spec,
         ClockDomain &srcDom, ClockDomain &dstDom)
        : spec_(spec),
          dom_(eq,
               "fabric.link." + std::to_string(spec.src) + "to" +
                   std::to_string(spec.dst),
               cfg.proc.nominalPeriod),
          in_("fabric.ch." + std::to_string(spec.src) + "to" +
                  std::to_string(spec.dst) + ".in",
              cfg.gals ? ChannelMode::asyncFifo : ChannelMode::syncLatch,
              srcDom, dom_, cfg.fabric.linkFifoCapacity,
              cfg.proc.syncEdges, false),
          out_("fabric.ch." + std::to_string(spec.src) + "to" +
                   std::to_string(spec.dst) + ".out",
               cfg.gals ? ChannelMode::asyncFifo
                        : ChannelMode::syncLatch,
               dom_, dstDom, cfg.fabric.linkFifoCapacity,
               cfg.proc.syncEdges, false)
    {
        dom_.addTicker(*this, 10);
    }

    void
    tick() override
    {
        while (!in_.empty() && !out_.full()) {
            out_.push(in_.front());
            in_.pop();
        }
    }

    const LinkSpec &spec() const { return spec_; }
    ClockDomain &domain() { return dom_; }
    Channel<FabricMsg> &ingress() { return in_; }
    Channel<FabricMsg> &egress() { return out_; }

  private:
    LinkSpec spec_;
    ClockDomain dom_;
    Channel<FabricMsg> in_;
    Channel<FabricMsg> out_;
};

/**
 * Per-core network interface, a priority-20 ticker on the core's
 * decode domain (after the pipeline stages, before the energy
 * close-out). Deterministic by construction: in-links drain in
 * ascending source-core order, routing is static (topology.hh), and
 * injection is keyed off the core's own commit count.
 */
class System::Nic final : public ClockDomain::Ticker
{
  public:
    Nic(unsigned core, const FabricConfig &fab, EventQueue &eq,
        Processor &proc)
        : core_(core), cores_(fab.cores), kind_(fab.topology),
          interval_(fab.trafficInterval), window_(fab.trafficWindow),
          eq_(eq), proc_(proc), outTo_(fab.cores, nullptr)
    {
        proc_.domain(DomainId::decode).addTicker(*this, 20);
    }

    void addFlow(const TrafficFlow &f) { flows_.push_back(f); }

    void connectOut(unsigned neighbor, Channel<FabricMsg> *ch)
    {
        outTo_[neighbor] = ch;
    }

    void connectIn(unsigned srcCore, Channel<FabricMsg> *ch)
    {
        inPorts_.push_back({srcCore, ch});
    }

    /** Sort the in-ports and arm the fetch throttle. */
    void
    finishWiring()
    {
        std::sort(inPorts_.begin(), inPorts_.end(),
                  [](const InPort &a, const InPort &b) {
                      return a.src < b.src;
                  });
        proc_.fetch().setExternalStall([this] {
            if (outstanding_ >= window_) {
                ++remoteStallCycles_;
                return true;
            }
            return false;
        });
    }

    void
    tick() override
    {
        const Tick now = eq_.now();

        // Drain incoming links in ascending source order. Backpressure
        // is per-port: a full outbound hop parks the head message and
        // moves on to the next port.
        for (const InPort &port : inPorts_) {
            Channel<FabricMsg> &ch = *port.ch;
            while (!ch.empty()) {
                const FabricMsg m = ch.front();
                if (m.dst == core_) {
                    if (m.reply) {
                        ch.pop();
                        ++repliesReceived_;
                        latencySumTicks_ +=
                            static_cast<double>(now - m.sendTick);
                        gals_assert(outstanding_ > 0,
                                    "fabric: reply without request");
                        --outstanding_;
                    } else {
                        Channel<FabricMsg> *out = routeTo(m.src);
                        if (out->full())
                            break;
                        out->push(FabricMsg{core_, m.src, m.seq, true,
                                            m.sendTick});
                        ch.pop();
                        ++requestsServed_;
                    }
                } else {
                    Channel<FabricMsg> *out = routeTo(m.dst);
                    if (out->full())
                        break;
                    out->push(m);
                    ch.pop();
                    ++forwarded_;
                }
            }
        }

        // Inject one request per trafficInterval commits, round-robin
        // over this core's flows, bounded by the completion window.
        if (flows_.empty())
            return;
        const std::uint64_t due =
            proc_.decodeUnit().commitStats().committed / interval_;
        while (injected_ < due) {
            if (outstanding_ >= window_)
                break;
            const TrafficFlow &f =
                flows_[rrNext_ % flows_.size()];
            Channel<FabricMsg> *out = routeTo(f.dst);
            if (out->full())
                break;
            out->push(FabricMsg{core_, f.dst, seq_++, false, now});
            ++rrNext_;
            ++injected_;
            ++outstanding_;
            ++msgsSent_;
        }
    }

    /** @name Per-core traffic statistics */
    /// @{
    std::uint64_t msgsSent() const { return msgsSent_; }
    std::uint64_t requestsServed() const { return requestsServed_; }
    std::uint64_t repliesReceived() const { return repliesReceived_; }
    std::uint64_t forwarded() const { return forwarded_; }
    std::uint64_t remoteStallCycles() const { return remoteStallCycles_; }
    double latencySumTicks() const { return latencySumTicks_; }
    /// @}

  private:
    struct InPort
    {
        unsigned src;
        Channel<FabricMsg> *ch;
    };

    Channel<FabricMsg> *
    routeTo(unsigned target)
    {
        Channel<FabricMsg> *out =
            outTo_[nextHop(kind_, cores_, core_, target)];
        gals_assert(out != nullptr, "fabric: core ", core_,
                    " has no link toward ", target);
        return out;
    }

    unsigned core_;
    unsigned cores_;
    TopologyKind kind_;
    std::uint64_t interval_;
    unsigned window_;
    EventQueue &eq_;
    Processor &proc_;

    std::vector<TrafficFlow> flows_;
    std::vector<Channel<FabricMsg> *> outTo_; ///< by neighbor core id
    std::vector<InPort> inPorts_;             ///< ascending src order

    std::uint64_t seq_ = 1;
    std::size_t rrNext_ = 0;
    std::uint64_t injected_ = 0;
    unsigned outstanding_ = 0;

    std::uint64_t msgsSent_ = 0;
    std::uint64_t requestsServed_ = 0;
    std::uint64_t repliesReceived_ = 0;
    std::uint64_t forwarded_ = 0;
    std::uint64_t remoteStallCycles_ = 0;
    double latencySumTicks_ = 0.0;
};

System::System(const RunConfig &cfg)
    : cfg_(cfg), eq_("eq.fabric." + cfg.benchmark)
{
    const std::string err = cfg_.fabric.validate();
    if (!err.empty())
        gals_fatal(err);
    gals_assert(cfg_.fabric.active(),
                "System needs cores > 1; use runOne() for one core");
    buildCores();
    buildFabric();
}

System::~System()
{
    // Mirror Processor::~Processor: stop link clocks so no event
    // still scheduled on the queue refers to a dying domain.
    for (auto &l : links_)
        if (l->domain().running())
            l->domain().stop();
}

void
System::buildCores()
{
    const BenchmarkProfile &profile = findBenchmark(cfg_.benchmark);
    for (unsigned c = 0; c < cfg_.fabric.cores; ++c) {
        ProcessorConfig pc = cfg_.proc;
        pc.gals = cfg_.gals;
        pc.dvfs = cfg_.gals ? cfg_.dvfs : DvfsSetting();
        // Core 0 keeps the single-core seeds exactly; core c offsets
        // both the workload and the clock phases deterministically.
        pc.phaseSeed = effectivePhaseSeed(cfg_) + c;
        procs_.push_back(std::make_unique<Processor>(
            eq_, pc, profile, cfg_.seed + c,
            "core" + std::to_string(c) + "."));
    }
}

void
System::buildFabric()
{
    const FabricConfig &fab = cfg_.fabric;

    for (unsigned c = 0; c < fab.cores; ++c)
        nics_.push_back(
            std::make_unique<Nic>(c, fab, eq_, *procs_[c]));

    for (const LinkSpec &ls : buildTopologyLinks(fab.topology, fab.cores)) {
        auto link = std::make_unique<Link>(
            eq_, cfg_, ls, procs_[ls.src]->domain(DomainId::decode),
            procs_[ls.dst]->domain(DomainId::decode));
        nics_[ls.src]->connectOut(ls.dst, &link->ingress());
        nics_[ls.dst]->connectIn(ls.src, &link->egress());
        links_.push_back(std::move(link));
    }

    std::vector<TrafficFlow> flows;
    const std::string err =
        parseTrafficPattern(fab.traffic, fab.cores, flows);
    if (!err.empty())
        gals_fatal(err);
    for (const TrafficFlow &f : flows)
        nics_[f.src]->addFlow(f);

    for (auto &nic : nics_)
        nic->finishWiring();
}

RunResults
System::run()
{
    gals_assert(!ran_, "System::run() is single use");
    ran_ = true;

    for (auto &p : procs_)
        p->prepareRun(cfg_.instructions);

    // One online DVFS controller per core, managing its FP domain
    // exactly like the single-core path.
    std::vector<std::unique_ptr<DynamicDvfsController>> ctrls;
    if (cfg_.dynamicDvfs) {
        for (auto &p : procs_) {
            auto ctrl = std::make_unique<DynamicDvfsController>(
                eq_, p->config().tech);
            ctrl->manage(p->domain(DomainId::fpd),
                         p->fpCluster().issuedCounter(),
                         p->config().core.fpIssueWidth);
            ctrl->start();
            ctrls.push_back(std::move(ctrl));
        }
    }

    // Start the core clocks (each core draws its phases from its own
    // seeded stream, so core 0 of an N=1... fabric and a plain run
    // see identical phases), then the link clocks from a separate
    // fabric stream.
    for (auto &p : procs_) {
        Rng rng(p->config().phaseSeed * 0x9e3779b97f4a7c15ULL +
                0x1234567ULL);
        p->startClocks(rng);
    }
    Rng link_rng((effectivePhaseSeed(cfg_) + 0x0fabULL) *
                     0x9e3779b97f4a7c15ULL +
                 0x1234567ULL);
    for (auto &l : links_) {
        ClockDomain &cd = l->domain();
        if (cfg_.gals && cfg_.proc.randomPhase)
            cd.setPhase(link_rng.range(0, cd.period() - 1));
        cd.start();
    }

    const Tick watchdog_ticks =
        cfg_.proc.watchdogCycles * cfg_.proc.nominalPeriod;
    std::uint64_t last_total = 0;
    Tick last_progress = 0;

    auto all_done = [this] {
        for (const auto &p : procs_)
            if (p->committed() < cfg_.instructions)
                return false;
        return true;
    };

    while (!all_done()) {
        gals_assert(!eq_.empty(), "event queue drained mid-run");
        eq_.serviceOne();

        std::uint64_t total = 0;
        for (const auto &p : procs_)
            total += p->committed();
        if (total != last_total) {
            last_total = total;
            last_progress = eq_.now();
        } else if (eq_.now() - last_progress > watchdog_ticks) {
            gals_panic("fabric watchdog: no commit for ",
                       cfg_.proc.watchdogCycles, " cycles at tick ",
                       eq_.now(), " (committed ", total, "/",
                       cfg_.instructions * cores(), " over ", cores(),
                       " cores)");
        }
    }

    for (auto &ctrl : ctrls)
        ctrl->stop();
    for (auto &p : procs_)
        p->finishRun();
    for (auto &l : links_)
        if (l->domain().running())
            l->domain().stop();

    return aggregate();
}

RunResults
System::aggregate()
{
    RunResults agg;
    agg.benchmark = cfg_.benchmark;
    agg.gals = cfg_.gals;

    const double period =
        static_cast<double>(cfg_.proc.nominalPeriod);

    double slip_ticks = 0.0;
    double fifo_slip_ticks = 0.0;
    std::uint64_t mispredicts = 0;
    std::uint64_t dir_correct = 0;
    std::uint64_t dir_wrong = 0;

    for (unsigned c = 0; c < cores(); ++c) {
        Processor &p = *procs_[c];
        const RunResults r = extractRunResults(p, cfg_);

        agg.committed += r.committed;
        agg.fetched += r.fetched;
        agg.wrongPathFetched += r.wrongPathFetched;
        agg.energyJ += r.energyJ;
        agg.fifoEvents += r.fifoEvents;
        for (const auto &kv : r.unitEnergyNj)
            agg.unitEnergyNj[kv.first] += kv.second;

        agg.avgRobOcc += r.avgRobOcc;
        agg.avgIntRenames += r.avgIntRenames;
        agg.avgFpRenames += r.avgFpRenames;
        agg.intIQOcc += r.intIQOcc;
        agg.fpIQOcc += r.fpIQOcc;
        agg.memIQOcc += r.memIQOcc;
        agg.il1MissRate += r.il1MissRate;
        agg.dl1MissRate += r.dl1MissRate;
        agg.l2MissRate += r.l2MissRate;

        const CommitStats &cs = p.decodeUnit().commitStats();
        slip_ticks += cs.slipSumTicks;
        fifo_slip_ticks += cs.fifoSlipSumTicks;
        mispredicts += cs.committedMispredicts;
        const BranchUnit &bu = p.fetch().branchUnit();
        dir_correct += bu.dirCorrect();
        dir_wrong += bu.dirWrong();

        const Nic &nic = *nics_[c];
        CoreResults cr;
        cr.core = c;
        cr.committed = r.committed;
        const double core_cycles =
            static_cast<double>(cs.lastCommitTick) / period;
        cr.ipcNominal =
            core_cycles > 0.0 ? r.committed / core_cycles : 0.0;
        cr.energyJ = r.energyJ;
        cr.fifoEvents = r.fifoEvents;
        cr.msgsSent = nic.msgsSent();
        cr.msgsReceived = nic.requestsServed();
        cr.remoteStallCycles = nic.remoteStallCycles();
        cr.avgRemoteLatencyCycles =
            nic.repliesReceived()
                ? nic.latencySumTicks() /
                      static_cast<double>(nic.repliesReceived()) /
                      period
                : 0.0;
        agg.cores.push_back(cr);
    }

    // Link FIFO traffic is fabric activity the per-core counters
    // cannot see.
    for (const auto &l : links_)
        agg.fifoEvents += l->ingress().pushes() + l->ingress().pops() +
                          l->egress().pushes() + l->egress().pops();

    const double n = static_cast<double>(cores());
    agg.avgRobOcc /= n;
    agg.avgIntRenames /= n;
    agg.avgFpRenames /= n;
    agg.intIQOcc /= n;
    agg.fpIQOcc /= n;
    agg.memIQOcc /= n;
    agg.il1MissRate /= n;
    agg.dl1MissRate /= n;
    agg.l2MissRate /= n;

    agg.ticks = eq_.now();
    agg.timeSec = tickToSeconds(agg.ticks);
    const double cycles = static_cast<double>(agg.ticks) / period;
    agg.ipcNominal =
        cycles > 0.0 ? static_cast<double>(agg.committed) / cycles : 0.0;
    agg.avgPowerW =
        agg.timeSec > 0.0 ? agg.energyJ / agg.timeSec : 0.0;

    if (agg.committed > 0) {
        agg.avgSlipCycles =
            slip_ticks / static_cast<double>(agg.committed) / period;
        agg.avgFifoSlipCycles =
            fifo_slip_ticks / static_cast<double>(agg.committed) /
            period;
    }
    agg.misspecFraction =
        agg.fetched ? static_cast<double>(agg.wrongPathFetched) /
                          static_cast<double>(agg.fetched)
                    : 0.0;
    agg.mispredictsPerKCommitted =
        agg.committed ? 1000.0 * static_cast<double>(mispredicts) /
                            static_cast<double>(agg.committed)
                      : 0.0;
    const std::uint64_t dir_total = dir_correct + dir_wrong;
    agg.dirAccuracy =
        dir_total ? static_cast<double>(dir_correct) /
                        static_cast<double>(dir_total)
                  : 1.0;

    return agg;
}

RunResults
runSystem(const RunConfig &cfg)
{
    System sys(cfg);
    return sys.run();
}

} // namespace gals
