/**
 * @file
 * Synthetic workload: static program construction and dynamic
 * instruction stream generation.
 *
 * At construction the generator *compiles* a BenchmarkProfile into a
 * static program: basic blocks laid out contiguously in instruction
 * memory, each ending in exactly one branch with a fixed kind
 * (strongly biased, weakly biased, loop back-edge, unconditional,
 * call, return) and fixed targets. Register operands are fixed per
 * static instruction, with producer-consumer distances drawn from the
 * profile's geometric distributions.
 *
 * At run time, next() walks the control-flow graph: branch outcomes
 * are drawn per site (biased coins, loop trip counters, a call/return
 * stack) and memory addresses are drawn from hot / warm / cold working
 * sets. Because branch PCs and code layout recur, the processor's real
 * branch predictor and real caches learn the program exactly as they
 * would a SPEC95 binary.
 *
 * The correct-path stream is a pure function of (profile, run seed)
 * and the number of next() calls, so base and GALS processor runs see
 * bit-identical instruction streams — the property every comparison in
 * the paper's Figures 5-13 relies on.
 */

#ifndef WORKLOAD_GENERATOR_HH
#define WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "sim/random.hh"
#include "workload/profile.hh"

namespace gals
{

/** One generated (fetched-from-oracle) instruction record. */
struct GenInst
{
    InstClass cls = InstClass::intAlu;
    std::uint64_t pc = 0;
    unsigned numSrcs = 0;
    RegId srcs[3] = {invalidReg, invalidReg, invalidReg};
    RegId dest = invalidReg;
    /** @name Branch resolution (oracle outcome) */
    /// @{
    bool taken = false;
    std::uint64_t target = 0;
    /// @}
    /** Effective address for loads/stores. */
    std::uint64_t memAddr = 0;
};

/**
 * Compiles a profile into a static program and generates its dynamic
 * instruction stream.
 */
class StreamGenerator
{
  public:
    /** Address-space constants (bytes). */
    static constexpr std::uint64_t codeBase = 0x00400000ULL;
    static constexpr std::uint64_t dataBase = 0x40000000ULL;
    static constexpr unsigned lineBytes = 32;
    static constexpr unsigned maxBlockOps = 256;

    StreamGenerator(const BenchmarkProfile &profile,
                    std::uint64_t run_seed = 0);

    /** Generate and return the next correct-path instruction. */
    const GenInst &next();

    /**
     * Fetch the static instruction at @p pc for wrong-path execution:
     * the mispredicted path runs through *real program code* (as it
     * does on real hardware), so it warms and pollutes the caches and
     * consumes fetch bandwidth realistically. Memory operands draw
     * junk addresses; branch outcomes are not resolved (the elder
     * mispredict always redirects first).
     */
    GenInst wrongPath(std::uint64_t pc);

    /** Map an arbitrary pc into the program (wraps past the end). */
    std::uint64_t wrapPc(std::uint64_t pc) const;

    /** Number of correct-path instructions generated so far. */
    std::uint64_t generated() const { return generated_; }

    const BenchmarkProfile &profile() const { return profile_; }

    /** First instruction address of the program. */
    std::uint64_t entryPc() const { return codeBase; }

    /** @name Static program introspection (tests, tools) */
    /// @{
    unsigned numBlocks() const
    {
        return static_cast<unsigned>(blocks_.size());
    }
    std::uint64_t blockStartPc(unsigned block) const;
    unsigned blockLength(unsigned block) const;
    std::uint64_t staticProgramBytes() const;
    /// @}

    /** @name Warm-state snapshot (core/snapshot.hh)
     *
     * The *dynamic* walk state only: RNG streams, position in the
     * CFG, the call stack, loop trip counters and the working-set
     * rings. The static program is a pure function of
     * (profile, seed), so a restored generator rebuilds it through
     * its constructor and the snapshot never stores it. Restore
     * checks block/ring counts against this generator and fails the
     * reader on a mismatch.
     */
    /// @{
    void snapshotSave(SnapshotWriter &w) const;
    void snapshotRestore(SnapshotReader &r);
    /// @}

  private:
    /** Branch kinds of a block-terminating branch site. */
    enum class SiteKind : std::uint8_t
    {
        easy,   ///< strongly biased conditional
        hard,   ///< weakly biased conditional
        loop,   ///< loop back-edge (taken tripCount times, then exits)
        jump,   ///< unconditional
        call,
        ret,
    };

    /** One static instruction. */
    struct StaticOp
    {
        InstClass cls = InstClass::intAlu;
        std::uint8_t numSrcs = 0;
        RegId srcs[3] = {invalidReg, invalidReg, invalidReg};
        RegId dest = invalidReg;
    };

    /** One basic block: ops (last one is the branch) + site behaviour. */
    struct Block
    {
        std::uint64_t startPc = 0;
        std::vector<StaticOp> ops;
        SiteKind kind = SiteKind::jump;
        double takenProb = 1.0;   ///< easy / hard sites
        unsigned tripCount = 0;   ///< loop sites
        unsigned tripsLeft = 0;   ///< dynamic loop counter
        std::uint32_t targetBlock = 0; ///< taken target (not ret)
    };

    void buildProgram();
    InstClass drawClass(Rng &rng, bool allow_branch);
    void fillStaticSources(StaticOp &op, Rng &rng);
    RegId drawIntSource(Rng &rng);
    RegId drawFpSource(Rng &rng);
    void recordStaticDest(const StaticOp &op);
    std::uint32_t drawTargetBlock(Rng &rng, std::uint32_t from);
    std::uint64_t drawMemAddr();
    std::uint64_t wrongPathMemAddr();

    const BenchmarkProfile profile_;
    Rng dynRng_; ///< dynamic outcomes (branches, addresses)
    Rng wpRng_;  ///< wrong-path junk

    /** @name Static program */
    /// @{
    std::vector<Block> blocks_;
    std::vector<std::uint64_t> blockStarts_; ///< sorted, for pc lookup
    std::uint64_t programBytes_ = 0;
    std::vector<std::uint32_t> funcEntries_;
    /// @}

    /** @name Static-generation register dataflow state */
    /// @{
    static constexpr std::size_t destRingSize = 64;
    std::vector<RegId> recentIntDests_;
    std::size_t intDestHead_ = 0;
    std::size_t intDestCount_ = 0;
    std::vector<RegId> recentFpDests_;
    std::size_t fpDestHead_ = 0;
    std::size_t fpDestCount_ = 0;
    RegId nextIntDest_ = 4;
    RegId nextFpDest_ = static_cast<RegId>(numArchIntRegs) + 4;
    /// @}

    /** @name Dynamic walk state */
    /// @{
    std::uint64_t generated_ = 0;
    GenInst current_;
    std::uint32_t curBlock_ = 0;
    unsigned opIdx_ = 0;

    /**
     * Call stack modelled as a circular stack of the same depth as the
     * front end's return address stack. Because correct-path fetch
     * performs exactly the same push/pop sequence on the RAS, the two
     * stay in lock-step (even across wrap-around overflow), which is
     * how real code behaves: returns go where calls came from.
     */
    static constexpr unsigned callStackDepth = 16;
    std::uint32_t callStack_[callStackDepth] = {};
    unsigned callTop_ = 0;
    unsigned callDepth_ = 0;
    /// @}

    /** @name Dynamic memory state */
    /// @{
    std::vector<std::uint64_t> hotLineRing_;
    std::size_t hotLineHead_ = 0;
    std::vector<std::uint64_t> warmLineRing_;
    std::size_t warmLineHead_ = 0;
    std::uint64_t freshLine_ = 0;
    std::uint64_t wpLine_ = 0;
    /// @}
};

} // namespace gals

#endif // WORKLOAD_GENERATOR_HH
