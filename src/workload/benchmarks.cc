/**
 * @file
 * The benchmark profile table: SPEC95 integer, SPEC95 floating point
 * and MediaBench, matching the suites used in the paper (section 5).
 *
 * Mix fractions, branch predictabilities and locality parameters are
 * calibrated to published characterizations of these benchmarks
 * (SimpleScalar-era studies). The paper calls out two specifics we
 * honour exactly: fpppp executes roughly one branch per 67
 * instructions while typical codes run one per 5-6 (section 5.1), and
 * ijpeg has a very low proportion of memory accesses (section 5.2);
 * perl and gcc execute virtually no floating point.
 */

#include "workload/profile.hh"

#include "sim/logging.hh"

namespace gals
{

namespace
{

std::vector<BenchmarkProfile>
makeTable()
{
    std::vector<BenchmarkProfile> v;

    auto add = [&v](BenchmarkProfile p) {
        p.seed = 0x5eed0000ULL + v.size() * 0x9e37ULL;
        p.validate();
        v.push_back(std::move(p));
    };

    // -------------------------------------------------------- SPEC95 int
    {
        BenchmarkProfile p;
        p.name = "compress";
        p.suite = "spec95int";
        p.fracCondBranch = 0.14;
        p.fracUncondBranch = 0.015;
        p.fracCall = 0.005;
        p.fracLoad = 0.21;
        p.fracStore = 0.09;
        p.easyBranchFrac = 0.6;
        p.easyBias = 0.995;
        p.hardBias = 0.87;
        p.loopBranchFrac = 0.22;
        p.intDepDistMean = 3.2;
        p.hotLines = 192;
        p.warmLines = 5000;
        p.l1Reuse = 0.945;
        p.l2Reuse = 0.050;
        p.codeBlocks = 160;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "gcc";
        p.suite = "spec95int";
        p.fracCondBranch = 0.16;
        p.fracUncondBranch = 0.022;
        p.fracCall = 0.011;
        p.fracLoad = 0.24;
        p.fracStore = 0.12;
        p.easyBranchFrac = 0.68;
        p.easyBias = 0.995;
        p.hardBias = 0.88;
        p.loopBranchFrac = 0.15;
        p.intDepDistMean = 3.6;
        p.hotLines = 224;
        p.warmLines = 5500;
        p.l1Reuse = 0.958;
        p.l2Reuse = 0.038;
        p.codeBlocks = 2000; // large instruction footprint
        p.jumpLocality = 0.82;
        p.jumpRadius = 24;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "go";
        p.suite = "spec95int";
        p.fracCondBranch = 0.13;
        p.fracUncondBranch = 0.015;
        p.fracCall = 0.008;
        p.fracLoad = 0.24;
        p.fracStore = 0.08;
        p.easyBranchFrac = 0.5; // notoriously unpredictable
        p.easyBias = 0.995;
        p.hardBias = 0.79;
        p.loopBranchFrac = 0.10;
        p.intDepDistMean = 3.4;
        p.hotLines = 224;
        p.warmLines = 5000;
        p.l1Reuse = 0.955;
        p.l2Reuse = 0.040;
        p.codeBlocks = 1200;
        p.jumpLocality = 0.84;
        p.jumpRadius = 24;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "ijpeg";
        p.suite = "spec95int";
        p.fracCondBranch = 0.066;
        p.fracUncondBranch = 0.008;
        p.fracCall = 0.004;
        // Paper section 5.2: "very low proportion of memory accesses".
        p.fracLoad = 0.125;
        p.fracStore = 0.050;
        p.fracIntMult = 0.040;
        p.easyBranchFrac = 0.68; // loop-dominated, predictable
        p.easyBias = 0.995;
        p.loopBranchFrac = 0.27;
        p.loopMeanTrip = 64.0;
        p.intDepDistMean = 4.5;
        p.hotLines = 160;
        p.warmLines = 2500;
        p.l1Reuse = 0.975;
        p.l2Reuse = 0.022;
        p.codeBlocks = 250;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "li";
        p.suite = "spec95int";
        p.fracCondBranch = 0.15;
        p.fracUncondBranch = 0.03;
        p.fracCall = 0.020; // heavy recursion
        p.fracLoad = 0.26;
        p.fracStore = 0.14;
        p.easyBranchFrac = 0.66;
        p.easyBias = 0.995;
        p.hardBias = 0.88;
        p.loopBranchFrac = 0.12;
        p.intDepDistMean = 3.0;
        p.hotLines = 192;
        p.warmLines = 3500;
        p.l1Reuse = 0.965;
        p.l2Reuse = 0.032;
        p.codeBlocks = 300;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "m88ksim";
        p.suite = "spec95int";
        p.fracCondBranch = 0.15;
        p.fracUncondBranch = 0.02;
        p.fracCall = 0.010;
        p.fracLoad = 0.20;
        p.fracStore = 0.07;
        p.easyBranchFrac = 0.8; // simulator main loop: predictable
        p.easyBias = 0.995;
        p.hardBias = 0.88;
        p.loopBranchFrac = 0.12;
        p.intDepDistMean = 3.5;
        p.hotLines = 160;
        p.warmLines = 2500;
        p.l1Reuse = 0.975;
        p.l2Reuse = 0.022;
        p.codeBlocks = 500;
        add(p);
    }
    {
        BenchmarkProfile p;
        // Paper section 5.2: "virtually no floating-point instructions
        // in this integer benchmark".
        p.name = "perl";
        p.suite = "spec95int";
        p.fracCondBranch = 0.15;
        p.fracUncondBranch = 0.025;
        p.fracCall = 0.014;
        p.fracLoad = 0.24;
        p.fracStore = 0.13;
        p.easyBranchFrac = 0.75;
        p.easyBias = 0.995;
        p.hardBias = 0.88;
        p.loopBranchFrac = 0.10;
        p.intDepDistMean = 3.2;
        p.hotLines = 208;
        p.warmLines = 4000;
        p.l1Reuse = 0.962;
        p.l2Reuse = 0.034;
        p.codeBlocks = 900;
        p.jumpLocality = 0.86;
        p.jumpRadius = 24;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "vortex";
        p.suite = "spec95int";
        p.fracCondBranch = 0.13;
        p.fracUncondBranch = 0.02;
        p.fracCall = 0.012;
        p.fracLoad = 0.27;
        p.fracStore = 0.19;
        p.easyBranchFrac = 0.85; // highly predictable
        p.easyBias = 0.995;
        p.loopBranchFrac = 0.05;
        p.intDepDistMean = 3.8;
        p.hotLines = 240;
        p.warmLines = 6000;
        p.l1Reuse = 0.950;
        p.l2Reuse = 0.045;
        p.codeBlocks = 1400;
        p.jumpLocality = 0.86;
        p.jumpRadius = 24;
        add(p);
    }

    // --------------------------------------------------------- SPEC95 fp
    {
        BenchmarkProfile p;
        // Paper section 5.1: "on an average only one in every 67
        // instructions is a branch in this benchmark".
        p.name = "fpppp";
        p.suite = "spec95fp";
        p.fracCondBranch = 0.012;
        p.fracUncondBranch = 0.002;
        p.fracCall = 0.0005;
        p.fracLoad = 0.30;
        p.fracStore = 0.12;
        p.fracFpAlu = 0.24;
        p.fracFpMult = 0.17;
        p.fracFpDiv = 0.008;
        p.easyBranchFrac = 0.78;
        p.easyBias = 0.995;
        p.loopBranchFrac = 0.17;
        p.loopMeanTrip = 80.0;
        p.intDepDistMean = 6.0; // enormous basic blocks, high ILP
        p.fpDepDistMean = 8.0;
        p.hotLines = 224;
        p.warmLines = 3500;
        p.l1Reuse = 0.965;
        p.l2Reuse = 0.032;
        p.codeBlocks = 100;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "applu";
        p.suite = "spec95fp";
        p.fracCondBranch = 0.025;
        p.fracUncondBranch = 0.004;
        p.fracCall = 0.001;
        p.fracLoad = 0.28;
        p.fracStore = 0.12;
        p.fracFpAlu = 0.22;
        p.fracFpMult = 0.15;
        p.fracFpDiv = 0.012;
        p.easyBranchFrac = 0.7;
        p.easyBias = 0.995;
        p.loopBranchFrac = 0.25;
        p.loopMeanTrip = 48.0;
        p.intDepDistMean = 5.0;
        p.fpDepDistMean = 7.0;
        p.hotLines = 256;
        p.warmLines = 6500;
        p.l1Reuse = 0.930;
        p.l2Reuse = 0.064;
        p.codeBlocks = 150;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "swim";
        p.suite = "spec95fp";
        p.fracCondBranch = 0.018;
        p.fracUncondBranch = 0.003;
        p.fracCall = 0.001;
        p.fracLoad = 0.30;
        p.fracStore = 0.14;
        p.fracFpAlu = 0.24;
        p.fracFpMult = 0.17;
        p.fracFpDiv = 0.004;
        p.easyBranchFrac = 0.65;
        p.easyBias = 0.995;
        p.loopBranchFrac = 0.32;
        p.loopMeanTrip = 128.0;
        p.intDepDistMean = 5.5;
        p.fpDepDistMean = 6.5;
        // Streaming array sweeps: poorer temporal locality.
        p.hotLines = 256;
        p.warmLines = 7000;
        p.l1Reuse = 0.915;
        p.l2Reuse = 0.078;
        p.codeBlocks = 100;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "tomcatv";
        p.suite = "spec95fp";
        p.fracCondBranch = 0.022;
        p.fracUncondBranch = 0.003;
        p.fracCall = 0.001;
        p.fracLoad = 0.29;
        p.fracStore = 0.12;
        p.fracFpAlu = 0.23;
        p.fracFpMult = 0.16;
        p.fracFpDiv = 0.010;
        p.easyBranchFrac = 0.65;
        p.easyBias = 0.995;
        p.loopBranchFrac = 0.30;
        p.loopMeanTrip = 96.0;
        p.intDepDistMean = 5.0;
        p.fpDepDistMean = 6.0;
        p.hotLines = 256;
        p.warmLines = 6800;
        p.l1Reuse = 0.922;
        p.l2Reuse = 0.070;
        p.codeBlocks = 90;
        add(p);
    }

    // -------------------------------------------------------- MediaBench
    {
        BenchmarkProfile p;
        p.name = "adpcm";
        p.suite = "mediabench";
        p.fracCondBranch = 0.18;
        p.fracUncondBranch = 0.01;
        p.fracCall = 0.002;
        p.fracLoad = 0.12;
        p.fracStore = 0.04;
        p.easyBranchFrac = 0.5;
        p.easyBias = 0.995;
        p.hardBias = 0.85;
        p.loopBranchFrac = 0.32;
        p.loopMeanTrip = 32.0;
        p.intDepDistMean = 2.8; // tight serial kernel
        p.hotLines = 48;
        p.warmLines = 512;
        p.l1Reuse = 0.990;
        p.l2Reuse = 0.008;
        p.codeBlocks = 40;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "epic";
        p.suite = "mediabench";
        p.fracCondBranch = 0.12;
        p.fracUncondBranch = 0.012;
        p.fracCall = 0.004;
        p.fracLoad = 0.22;
        p.fracStore = 0.08;
        p.fracFpAlu = 0.06;
        p.fracFpMult = 0.04;
        p.fracIntMult = 0.02;
        p.easyBranchFrac = 0.62;
        p.easyBias = 0.995;
        p.loopBranchFrac = 0.26;
        p.loopMeanTrip = 48.0;
        p.intDepDistMean = 3.8;
        p.hotLines = 128;
        p.warmLines = 3200;
        p.l1Reuse = 0.960;
        p.l2Reuse = 0.036;
        p.codeBlocks = 140;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "g721";
        p.suite = "mediabench";
        p.fracCondBranch = 0.15;
        p.fracUncondBranch = 0.015;
        p.fracCall = 0.008;
        p.fracLoad = 0.18;
        p.fracStore = 0.06;
        p.fracIntMult = 0.02;
        p.easyBranchFrac = 0.6;
        p.easyBias = 0.995;
        p.hardBias = 0.87;
        p.loopBranchFrac = 0.22;
        p.loopMeanTrip = 24.0;
        p.intDepDistMean = 3.0;
        p.hotLines = 64;
        p.warmLines = 768;
        p.l1Reuse = 0.985;
        p.l2Reuse = 0.012;
        p.codeBlocks = 80;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "mpeg2";
        p.suite = "mediabench";
        p.fracCondBranch = 0.10;
        p.fracUncondBranch = 0.012;
        p.fracCall = 0.005;
        p.fracLoad = 0.25;
        p.fracStore = 0.08;
        p.fracIntMult = 0.05;
        p.easyBranchFrac = 0.66;
        p.easyBias = 0.995;
        p.loopBranchFrac = 0.26;
        p.loopMeanTrip = 32.0;
        p.intDepDistMean = 4.2;
        // Frame-sized streaming: modest L1 locality.
        p.hotLines = 256;
        p.warmLines = 6000;
        p.l1Reuse = 0.935;
        p.l2Reuse = 0.058;
        p.codeBlocks = 200;
        add(p);
    }

    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
allBenchmarks()
{
    static const std::vector<BenchmarkProfile> table = makeTable();
    return table;
}

const BenchmarkProfile &
findBenchmark(const std::string &name)
{
    for (const auto &p : allBenchmarks())
        if (p.name == name)
            return p;
    gals_fatal("unknown benchmark '", name, "'");
}

std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const auto &p : allBenchmarks())
        names.push_back(p.name);
    return names;
}

std::vector<BenchmarkProfile>
benchmarksInSuite(const std::string &suite)
{
    std::vector<BenchmarkProfile> out;
    for (const auto &p : allBenchmarks())
        if (p.suite == suite)
            out.push_back(p);
    return out;
}

} // namespace gals
