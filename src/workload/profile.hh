/**
 * @file
 * Statistical benchmark profiles.
 *
 * The paper evaluates SPEC95 and MediaBench binaries under
 * SimpleScalar. We substitute a synthetic program whose first-order
 * statistics — instruction mix, branch density and predictability,
 * dependency distances, and cache locality — are calibrated per
 * benchmark to published characterizations (see DESIGN.md §2). Those
 * statistics are what drive every effect the paper measures: flow
 * rates through the clock domains, misprediction recovery cost, and
 * queue occupancies.
 *
 * A profile is compiled by StreamGenerator into a *static program*: a
 * control-flow graph of basic blocks laid out contiguously in the
 * instruction address space, where every branch site has a fixed kind
 * (biased / loop back-edge) and fixed targets. The real branch
 * predictor and the real caches therefore see recurring addresses and
 * can learn, exactly as with a real binary.
 */

#ifndef WORKLOAD_PROFILE_HH
#define WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gals
{

/**
 * Per-benchmark statistical description of the program. All `frac*`
 * fields are fractions of all instructions; the remainder after
 * summing every class fraction is plain integer ALU work.
 */
struct BenchmarkProfile
{
    std::string name;
    std::string suite; ///< "spec95int", "spec95fp" or "mediabench"

    /** @name Instruction mix */
    /// @{
    double fracCondBranch = 0.15;
    double fracUncondBranch = 0.02;
    double fracCall = 0.01; ///< calls; an equal fraction of returns
    double fracLoad = 0.22;
    double fracStore = 0.10;
    double fracFpAlu = 0.0;
    double fracFpMult = 0.0;
    double fracFpDiv = 0.0;
    double fracIntMult = 0.01;
    double fracIntDiv = 0.002;
    /// @}

    /** @name Branch behaviour (per static site) */
    /// @{
    /** Fraction of conditional sites that are strongly biased. */
    double easyBranchFrac = 0.6;
    /** Taken probability of strongly biased sites. */
    double easyBias = 0.97;
    /** Taken probability of weakly biased ("hard") sites. */
    double hardBias = 0.82;
    /** Fraction of conditional sites behaving like loop back-edges. */
    double loopBranchFrac = 0.2;
    /** Mean loop trip count for loop back-edges. */
    double loopMeanTrip = 24.0;
    /// @}

    /** @name Dependency structure (register dataflow) */
    /// @{
    /** Mean producer distance, in int writes, for int sources. */
    double intDepDistMean = 4.0;
    /** Mean producer distance, in fp writes, for fp sources. */
    double fpDepDistMean = 6.0;
    /// @}

    /** @name Memory locality */
    /// @{
    /** Probability a memory access reuses the hot (L1-resident) set. */
    double l1Reuse = 0.93;
    /** Probability of touching the warm (L2-resident) set otherwise. */
    double l2Reuse = 0.05;
    /** Hot working set size, in cache lines. */
    unsigned hotLines = 256;
    /** Warm working set size, in cache lines. */
    unsigned warmLines = 4096;
    /// @}

    /** @name Code shape */
    /// @{
    /** Number of basic blocks in the synthetic program. */
    unsigned codeBlocks = 512;
    /** Probability a jump target is near the current block. */
    double jumpLocality = 0.9;
    /** "Near" radius for local jumps, in blocks. */
    unsigned jumpRadius = 16;
    /** Every Nth block is a callable function entry. */
    unsigned funcEntryStride = 8;
    /// @}

    /** Base RNG seed (combined with the experiment seed). */
    std::uint64_t seed = 1;

    /** Sum of all class fractions except implicit intAlu. */
    double mixSum() const;

    /** Dynamic branch fraction (cond + uncond + call + ret). */
    double branchFrac() const
    {
        return fracCondBranch + fracUncondBranch + 2 * fracCall;
    }

    /** Sanity-check ranges; calls gals_fatal on nonsense. */
    void validate() const;
};

/** All profiles shipped with the library (SPEC95 int/fp + MediaBench). */
const std::vector<BenchmarkProfile> &allBenchmarks();

/** Look up a profile by name; fatal error if unknown. */
const BenchmarkProfile &findBenchmark(const std::string &name);

/** Names of the benchmarks in allBenchmarks() order. */
std::vector<std::string> benchmarkNames();

/** Subset helper: all benchmarks of one suite. */
std::vector<BenchmarkProfile> benchmarksInSuite(const std::string &suite);

} // namespace gals

#endif // WORKLOAD_PROFILE_HH
