#include "workload/generator.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot_io.hh"

namespace gals
{

StreamGenerator::StreamGenerator(const BenchmarkProfile &profile,
                                 std::uint64_t run_seed)
    : profile_(profile), dynRng_(profile.seed ^ run_seed),
      wpRng_(profile.seed ^ run_seed ^ 0xBADC0DEULL)
{
    profile_.validate();

    recentIntDests_.assign(destRingSize, 1);
    recentFpDests_.assign(destRingSize,
                          static_cast<RegId>(numArchIntRegs) + 1);

    buildProgram();

    hotLineRing_.assign(profile_.hotLines, 0);
    warmLineRing_.assign(profile_.warmLines, 0);
    for (std::size_t i = 0; i < hotLineRing_.size(); ++i)
        hotLineRing_[i] = i;
    for (std::size_t i = 0; i < warmLineRing_.size(); ++i)
        warmLineRing_[i] = profile_.hotLines + i;
    freshLine_ = profile_.hotLines + profile_.warmLines;

    curBlock_ = 0;
    opIdx_ = 0;
}

std::uint64_t
StreamGenerator::blockStartPc(unsigned block) const
{
    gals_assert(block < blocks_.size(), "bad block ", block);
    return blocks_[block].startPc;
}

unsigned
StreamGenerator::blockLength(unsigned block) const
{
    gals_assert(block < blocks_.size(), "bad block ", block);
    return static_cast<unsigned>(blocks_[block].ops.size());
}

std::uint64_t
StreamGenerator::staticProgramBytes() const
{
    const Block &last = blocks_.back();
    return last.startPc + last.ops.size() * 4 - codeBase;
}

InstClass
StreamGenerator::drawClass(Rng &rng, bool allow_branch)
{
    const auto &p = profile_;
    double u = rng.uniform();

    auto take = [&u](double frac) {
        if (u < frac)
            return true;
        u -= frac;
        return false;
    };

    if (allow_branch) {
        if (take(p.fracCondBranch))
            return InstClass::condBranch;
        if (take(p.fracUncondBranch))
            return InstClass::uncondBranch;
        if (take(p.fracCall))
            return InstClass::call;
        if (take(p.fracCall))
            return InstClass::ret;
    } else {
        // Renormalize implicitly: non-branch draws simply skip the
        // branch bands (wrong-path junk only).
        u *= 1.0 - p.branchFrac();
    }
    if (take(p.fracLoad))
        return InstClass::load;
    if (take(p.fracStore))
        return InstClass::store;
    if (take(p.fracFpAlu))
        return InstClass::fpAlu;
    if (take(p.fracFpMult))
        return InstClass::fpMult;
    if (take(p.fracFpDiv))
        return InstClass::fpDiv;
    if (take(p.fracIntMult))
        return InstClass::intMult;
    if (take(p.fracIntDiv))
        return InstClass::intDiv;
    return InstClass::intAlu;
}

RegId
StreamGenerator::drawIntSource(Rng &rng)
{
    unsigned d = rng.geometric(profile_.intDepDistMean);
    d = std::min<unsigned>(
        d, static_cast<unsigned>(std::min(intDestCount_ + 1,
                                          destRingSize)));
    const std::size_t idx =
        (intDestHead_ + destRingSize - d) % destRingSize;
    return recentIntDests_[idx];
}

RegId
StreamGenerator::drawFpSource(Rng &rng)
{
    unsigned d = rng.geometric(profile_.fpDepDistMean);
    d = std::min<unsigned>(
        d, static_cast<unsigned>(std::min(fpDestCount_ + 1,
                                          destRingSize)));
    const std::size_t idx =
        (fpDestHead_ + destRingSize - d) % destRingSize;
    return recentFpDests_[idx];
}

void
StreamGenerator::fillStaticSources(StaticOp &op, Rng &rng)
{
    switch (op.cls) {
      case InstClass::intAlu:
      case InstClass::intMult:
      case InstClass::intDiv:
        op.numSrcs = 2;
        op.srcs[0] = drawIntSource(rng);
        op.srcs[1] = drawIntSource(rng);
        break;
      case InstClass::fpAlu:
      case InstClass::fpMult:
      case InstClass::fpDiv:
        op.numSrcs = 2;
        op.srcs[0] = drawFpSource(rng);
        op.srcs[1] = drawFpSource(rng);
        break;
      case InstClass::load:
        op.numSrcs = 1;
        op.srcs[0] = drawIntSource(rng); // address register
        break;
      case InstClass::store:
        op.numSrcs = 2;
        op.srcs[0] = drawIntSource(rng); // address register
        op.srcs[1] = (profile_.fracFpAlu + profile_.fracFpMult > 0.05 &&
                      rng.chance(0.6))
                         ? drawFpSource(rng)
                         : drawIntSource(rng);
        break;
      case InstClass::condBranch:
        op.numSrcs = 1;
        op.srcs[0] = drawIntSource(rng); // condition register
        break;
      case InstClass::uncondBranch:
      case InstClass::call:
      case InstClass::ret:
        op.numSrcs = 0;
        break;
      default:
        gals_panic("unhandled class in fillStaticSources");
    }
}

void
StreamGenerator::recordStaticDest(const StaticOp &op)
{
    if (op.dest == invalidReg)
        return;
    if (isFpReg(op.dest)) {
        recentFpDests_[fpDestHead_] = op.dest;
        fpDestHead_ = (fpDestHead_ + 1) % destRingSize;
        ++fpDestCount_;
    } else {
        recentIntDests_[intDestHead_] = op.dest;
        intDestHead_ = (intDestHead_ + 1) % destRingSize;
        ++intDestCount_;
    }
}

std::uint32_t
StreamGenerator::drawTargetBlock(Rng &rng, std::uint32_t from)
{
    // Targets are strictly forward (classic if/else and break edges);
    // the only cycles in the CFG are loop back-edges, call/return
    // pairs, and the wrap from the last block to the first — the
    // program is one big outer loop, so the walk can never be trapped
    // in a branchless cycle.
    const std::uint32_t n = static_cast<std::uint32_t>(blocks_.size());
    if (from + 1 >= n)
        return 0; // wrap: restart the outer loop
    if (rng.chance(profile_.jumpLocality)) {
        const std::uint64_t lo = from + 1;
        const std::uint64_t hi =
            std::min<std::uint64_t>(n - 1, from + profile_.jumpRadius);
        return static_cast<std::uint32_t>(rng.range(lo, hi));
    }
    return static_cast<std::uint32_t>(rng.range(from + 1, n - 1));
}

void
StreamGenerator::buildProgram()
{
    // The static program is a pure function of the profile seed (not
    // the run seed): the same "binary" is executed for every run.
    Rng prog(profile_.seed ^ 0x5e7f1ULL);

    const std::uint32_t n = profile_.codeBlocks;
    blocks_.resize(n);

    for (std::uint32_t b = 0; b < n; ++b)
        if (b % profile_.funcEntryStride == 0)
            funcEntries_.push_back(b);

    std::uint64_t pc = codeBase;
    for (std::uint32_t b = 0; b < n; ++b) {
        Block &blk = blocks_[b];
        blk.startPc = pc;

        // Body: draw until the mix yields a branch (or the cap).
        RegId last_int_dest = invalidReg;
        for (unsigned i = 0; i + 1 < maxBlockOps; ++i) {
            StaticOp op;
            op.cls = drawClass(prog, true);
            if (isBranchClass(op.cls)) {
                fillStaticSources(op, prog);
                // Conditional branches usually test a freshly computed
                // value (loop counter, compare result): bind the
                // condition to the last integer write in this block so
                // branches resolve quickly, as in real code.
                if (op.cls == InstClass::condBranch &&
                    last_int_dest != invalidReg)
                    op.srcs[0] = last_int_dest;
                blk.ops.push_back(op);
                break;
            }
            fillStaticSources(op, prog);
            if (writesDest(op.cls)) {
                if (isFpClass(op.cls)) {
                    op.dest = nextFpDest_;
                    if (++nextFpDest_ >=
                        static_cast<RegId>(numArchRegs))
                        nextFpDest_ =
                            static_cast<RegId>(numArchIntRegs) + 4;
                } else {
                    op.dest = nextIntDest_;
                    if (++nextIntDest_ >=
                        static_cast<RegId>(numArchIntRegs))
                        nextIntDest_ = 4;
                    if (!isMemClass(op.cls))
                        last_int_dest = op.dest;
                }
            }
            blk.ops.push_back(op);
            recordStaticDest(op);
        }
        // Cap hit without a branch: force a jump terminator.
        if (!isBranchClass(blk.ops.back().cls)) {
            StaticOp op;
            op.cls = InstClass::uncondBranch;
            blk.ops.push_back(op);
        }

        // Classify the branch site.
        StaticOp &br = blk.ops.back();
        switch (br.cls) {
          case InstClass::condBranch: {
            const double u = prog.uniform();
            if (u < profile_.loopBranchFrac) {
                blk.kind = SiteKind::loop;
                blk.tripCount = std::max(
                    2u, prog.geometric(profile_.loopMeanTrip));
                blk.tripsLeft = blk.tripCount;
                blk.targetBlock = b; // back-edge to itself
            } else if (u < profile_.loopBranchFrac +
                               profile_.easyBranchFrac) {
                blk.kind = SiteKind::easy;
                blk.takenProb = prog.chance(0.5)
                                    ? profile_.easyBias
                                    : 1.0 - profile_.easyBias;
                blk.targetBlock = drawTargetBlock(prog, b);
            } else {
                blk.kind = SiteKind::hard;
                blk.takenProb = prog.chance(0.5)
                                    ? profile_.hardBias
                                    : 1.0 - profile_.hardBias;
                blk.targetBlock = drawTargetBlock(prog, b);
            }
            break;
          }
          case InstClass::uncondBranch:
            blk.kind = SiteKind::jump;
            blk.targetBlock = drawTargetBlock(prog, b);
            break;
          case InstClass::call: {
            blk.kind = SiteKind::call;
            blk.targetBlock = funcEntries_[prog.range(
                0, funcEntries_.size() - 1)];
            break;
          }
          case InstClass::ret:
            blk.kind = SiteKind::ret;
            blk.targetBlock = 0; // dynamic (call stack)
            break;
          default:
            gals_panic("non-branch terminator");
        }

        pc += blk.ops.size() * 4;
    }

    blockStarts_.reserve(blocks_.size());
    for (const Block &blk : blocks_)
        blockStarts_.push_back(blk.startPc);
    programBytes_ = pc - codeBase;
}

std::uint64_t
StreamGenerator::wrapPc(std::uint64_t pc) const
{
    std::uint64_t off = pc >= codeBase ? pc - codeBase : 0;
    off = (off & ~std::uint64_t(3)) % programBytes_;
    return codeBase + off;
}

std::uint64_t
StreamGenerator::drawMemAddr()
{
    const double u = dynRng_.uniform();
    std::uint64_t line;
    if (u < profile_.l1Reuse) {
        line = hotLineRing_[dynRng_.range(0, hotLineRing_.size() - 1)];
    } else if (u < profile_.l1Reuse + profile_.l2Reuse) {
        line = warmLineRing_[dynRng_.range(0, warmLineRing_.size() - 1)];
        // Promote into the hot set (temporal locality).
        hotLineRing_[hotLineHead_] = line;
        hotLineHead_ = (hotLineHead_ + 1) % hotLineRing_.size();
    } else {
        line = freshLine_++;
        warmLineRing_[warmLineHead_] = line;
        warmLineHead_ = (warmLineHead_ + 1) % warmLineRing_.size();
        hotLineRing_[hotLineHead_] = line;
        hotLineHead_ = (hotLineHead_ + 1) % hotLineRing_.size();
    }
    const std::uint64_t offset = dynRng_.range(0, lineBytes / 4 - 1) * 4;
    return dataBase + line * lineBytes + offset;
}

std::uint64_t
StreamGenerator::wrongPathMemAddr()
{
    // Wrong-path references mostly touch the same working sets (they
    // are nearby program code after all), with a modest junk fraction
    // that pollutes the cache. Read-only draws: wrong-path execution
    // must not perturb the correct-path locality state.
    const double u = wpRng_.uniform();
    std::uint64_t line;
    if (u < profile_.l1Reuse) {
        line = hotLineRing_[wpRng_.range(0, hotLineRing_.size() - 1)];
    } else if (u < profile_.l1Reuse + profile_.l2Reuse) {
        line = warmLineRing_[wpRng_.range(0, warmLineRing_.size() - 1)];
    } else {
        line = freshLine_ + 1000000 + (wpLine_++ % 8192);
    }
    const std::uint64_t offset = wpRng_.range(0, lineBytes / 4 - 1) * 4;
    return dataBase + line * lineBytes + offset;
}

const GenInst &
StreamGenerator::next()
{
    Block &blk = blocks_[curBlock_];
    gals_assert(opIdx_ < blk.ops.size(), "walk ran past block end");
    const StaticOp &op = blk.ops[opIdx_];

    GenInst gi;
    gi.cls = op.cls;
    gi.pc = blk.startPc + opIdx_ * 4;
    gi.numSrcs = op.numSrcs;
    for (unsigned i = 0; i < op.numSrcs; ++i)
        gi.srcs[i] = op.srcs[i];
    gi.dest = op.dest;

    if (isMemClass(op.cls))
        gi.memAddr = drawMemAddr();

    if (isBranchClass(op.cls)) {
        const std::uint32_t next_block =
            (curBlock_ + 1) % static_cast<std::uint32_t>(blocks_.size());
        std::uint32_t taken_block = blk.targetBlock;

        switch (blk.kind) {
          case SiteKind::easy:
          case SiteKind::hard:
            gi.taken = dynRng_.chance(blk.takenProb);
            break;
          case SiteKind::loop:
            if (blk.tripsLeft > 0) {
                --blk.tripsLeft;
                gi.taken = true;
                taken_block = curBlock_; // back-edge
            } else {
                blk.tripsLeft = blk.tripCount;
                gi.taken = false;
            }
            break;
          case SiteKind::jump:
            gi.taken = true;
            break;
          case SiteKind::call:
            gi.taken = true;
            callTop_ = (callTop_ + 1) % callStackDepth;
            callStack_[callTop_] = next_block;
            if (callDepth_ < callStackDepth)
                ++callDepth_;
            break;
          case SiteKind::ret:
            if (callDepth_ > 0) {
                gi.taken = true;
                taken_block = callStack_[callTop_];
                callTop_ = (callTop_ + callStackDepth - 1) %
                           callStackDepth;
                --callDepth_;
            } else {
                // Underflow: behaves as a not-taken branch (matches
                // the front end's empty-RAS prediction).
                gi.taken = false;
            }
            break;
        }

        gi.target = blocks_[taken_block].startPc;
        curBlock_ = gi.taken ? taken_block : next_block;
        opIdx_ = 0;
    } else {
        ++opIdx_;
    }

    ++generated_;
    current_ = gi;
    return current_;
}

GenInst
StreamGenerator::wrongPath(std::uint64_t pc)
{
    // The wrong path runs through real program code at the predicted
    // address.
    const std::uint64_t wpc = wrapPc(pc);
    const auto it = std::upper_bound(blockStarts_.begin(),
                                     blockStarts_.end(), wpc);
    gals_assert(it != blockStarts_.begin(), "pc below program base");
    const std::size_t bidx =
        static_cast<std::size_t>(it - blockStarts_.begin()) - 1;
    const Block &blk = blocks_[bidx];
    std::size_t opi = static_cast<std::size_t>((wpc - blk.startPc) / 4);
    if (opi >= blk.ops.size())
        opi = blk.ops.size() - 1;
    const StaticOp &op = blk.ops[opi];

    GenInst gi;
    gi.pc = wpc;
    gi.cls = op.cls;
    gi.numSrcs = op.numSrcs;
    for (unsigned i = 0; i < op.numSrcs; ++i)
        gi.srcs[i] = op.srcs[i];
    gi.dest = op.dest;
    if (isMemClass(op.cls))
        gi.memAddr = wrongPathMemAddr();
    if (isBranchClass(op.cls)) {
        // Outcome irrelevant: a wrong-path branch never resolves (the
        // elder mispredict redirects first). Give it its static taken
        // target so the front end can follow its own prediction.
        gi.taken = false;
        gi.target = blocks_[blk.kind == SiteKind::loop
                                ? static_cast<std::uint32_t>(bidx)
                                : blk.targetBlock]
                        .startPc;
    }
    return gi;
}

namespace
{

/** RegIds are small signed ints; round them through two's-complement
 *  u64 so invalidReg (-1) survives the varint. */
std::uint64_t
packReg(RegId r)
{
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(r));
}

RegId
unpackReg(std::uint64_t v)
{
    return static_cast<RegId>(static_cast<std::int64_t>(v));
}

} // namespace

void
StreamGenerator::snapshotSave(SnapshotWriter &w) const
{
    dynRng_.snapshotSave(w);
    wpRng_.snapshotSave(w);

    w.u64(generated_);
    w.u64(static_cast<std::uint64_t>(current_.cls));
    w.u64(current_.pc);
    w.u64(current_.numSrcs);
    for (RegId s : current_.srcs)
        w.u64(packReg(s));
    w.u64(packReg(current_.dest));
    w.flag(current_.taken);
    w.u64(current_.target);
    w.u64(current_.memAddr);

    w.u64(curBlock_);
    w.u64(opIdx_);

    for (std::uint32_t c : callStack_)
        w.u64(c);
    w.u64(callTop_);
    w.u64(callDepth_);

    // Loop trip counters are the one piece of dynamic state living
    // inside the static block table.
    w.u64(blocks_.size());
    for (const Block &b : blocks_)
        w.u64(b.tripsLeft);

    w.u64(hotLineRing_.size());
    for (std::uint64_t line : hotLineRing_)
        w.u64(line);
    w.u64(hotLineHead_);
    w.u64(warmLineRing_.size());
    for (std::uint64_t line : warmLineRing_)
        w.u64(line);
    w.u64(warmLineHead_);
    w.u64(freshLine_);
    w.u64(wpLine_);
}

void
StreamGenerator::snapshotRestore(SnapshotReader &r)
{
    dynRng_.snapshotRestore(r);
    wpRng_.snapshotRestore(r);

    generated_ = r.u64();
    current_.cls = static_cast<InstClass>(r.u64());
    current_.pc = r.u64();
    current_.numSrcs = static_cast<unsigned>(r.u64());
    if (current_.numSrcs > 3)
        r.fail("generator current numSrcs out of range");
    for (RegId &s : current_.srcs)
        s = unpackReg(r.u64());
    current_.dest = unpackReg(r.u64());
    current_.taken = r.flag();
    current_.target = r.u64();
    current_.memAddr = r.u64();

    curBlock_ = static_cast<std::uint32_t>(r.u64());
    if (curBlock_ >= blocks_.size())
        r.fail("generator block index out of range");
    opIdx_ = static_cast<unsigned>(r.u64());
    if (r.ok() && opIdx_ >= blocks_[curBlock_].ops.size())
        r.fail("generator op index out of range");

    for (std::uint32_t &c : callStack_)
        c = static_cast<std::uint32_t>(r.u64());
    callTop_ = static_cast<unsigned>(r.u64());
    callDepth_ = static_cast<unsigned>(r.u64());
    if (callTop_ >= callStackDepth || callDepth_ > callStackDepth)
        r.fail("generator call stack out of range");

    r.expectU64(r.u64(), blocks_.size(), "generator block count");
    for (Block &b : blocks_)
        b.tripsLeft = static_cast<unsigned>(r.u64());

    r.expectU64(r.u64(), hotLineRing_.size(), "hot ring size");
    for (std::uint64_t &line : hotLineRing_)
        line = r.u64();
    hotLineHead_ = static_cast<std::size_t>(r.u64());
    r.expectU64(r.u64(), warmLineRing_.size(), "warm ring size");
    for (std::uint64_t &line : warmLineRing_)
        line = r.u64();
    warmLineHead_ = static_cast<std::size_t>(r.u64());
    freshLine_ = r.u64();
    wpLine_ = r.u64();
}

} // namespace gals
