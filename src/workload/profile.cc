#include "workload/profile.hh"

#include "sim/logging.hh"

namespace gals
{

double
BenchmarkProfile::mixSum() const
{
    return fracCondBranch + fracUncondBranch + 2 * fracCall + fracLoad +
           fracStore + fracFpAlu + fracFpMult + fracFpDiv + fracIntMult +
           fracIntDiv;
}

void
BenchmarkProfile::validate() const
{
    if (name.empty())
        gals_fatal("benchmark profile without a name");
    const double sum = mixSum();
    if (sum >= 1.0)
        gals_fatal("benchmark '", name, "': instruction mix sums to ",
                   sum, " (>= 1)");
    auto frac_ok = [](double f) { return f >= 0.0 && f <= 1.0; };
    if (!frac_ok(easyBranchFrac) || !frac_ok(loopBranchFrac) ||
        easyBranchFrac + loopBranchFrac > 1.0)
        gals_fatal("benchmark '", name, "': bad branch-kind fractions");
    if (!frac_ok(easyBias) || !frac_ok(hardBias))
        gals_fatal("benchmark '", name, "': branch biases not in [0,1]");
    if (!frac_ok(l1Reuse) || !frac_ok(l2Reuse) || l1Reuse + l2Reuse > 1.0)
        gals_fatal("benchmark '", name, "': bad locality fractions");
    if (intDepDistMean < 1.0 || fpDepDistMean < 1.0)
        gals_fatal("benchmark '", name, "': dependency distances < 1");
    if (codeBlocks == 0 || jumpRadius == 0 || funcEntryStride == 0 ||
        hotLines == 0 || warmLines == 0)
        gals_fatal("benchmark '", name, "': zero-sized structure");
    if (!frac_ok(jumpLocality))
        gals_fatal("benchmark '", name, "': bad jump locality");
}

} // namespace gals
