/**
 * @file
 * Dynamic instruction: one fetched micro-op in flight, carrying its
 * renamed operands, control-flow resolution and the timestamps the
 * paper's evaluation metrics are computed from (slip, FIFO residency).
 */

#ifndef ISA_DYN_INST_HH
#define ISA_DYN_INST_HH

#include <cstdint>
#include <memory>
#include <string>

#include "isa/inst.hh"
#include "sim/ticks.hh"

namespace gals
{

/** Monotonically increasing dynamic instruction sequence number. */
using InstSeqNum = std::uint64_t;

/**
 * A dynamic instruction in flight.
 *
 * Owned via shared_ptr: the ROB, issue queues and channels all hold
 * references while the instruction traverses the machine.
 */
class DynInst
{
  public:
    static constexpr unsigned maxSrcs = 3;

    DynInst() = default;

    /** @name Static content (filled by fetch from the workload) */
    /// @{
    InstSeqNum seq = 0;
    std::uint64_t pc = 0;
    std::uint64_t index = 0;       ///< correct-path stream index
    InstClass cls = InstClass::intAlu;
    unsigned numSrcs = 0;
    RegId srcs[maxSrcs] = {invalidReg, invalidReg, invalidReg};
    RegId dest = invalidReg;
    bool wrongPath = false;        ///< fetched down a mispredicted path
    /// @}

    /** @name Control flow */
    /// @{
    bool predTaken = false;
    bool actualTaken = false;
    std::uint64_t predTarget = 0;
    std::uint64_t actualTarget = 0;
    bool mispredicted = false;     ///< known at resolve time
    bool btbMiss = false;
    /// @}

    /** @name Memory */
    /// @{
    std::uint64_t memAddr = 0;
    /// @}

    /** @name Renamed operands (filled at rename) */
    /// @{
    PhysRegId physSrcs[maxSrcs] = {invalidPhysReg, invalidPhysReg,
                                   invalidPhysReg};
    std::uint32_t srcEpochs[maxSrcs] = {0, 0, 0};
    PhysRegId physDest = invalidPhysReg;
    PhysRegId oldPhysDest = invalidPhysReg;
    std::uint32_t destEpoch = 0;
    /// @}

    /** @name Machine state */
    /// @{
    bool squashed = false;
    bool completed = false;
    /// @}

    /** @name Timestamps (ticks) for slip / FIFO accounting */
    /// @{
    Tick fetchTick = 0;
    Tick decodeTick = 0;
    Tick dispatchTick = 0;
    Tick issueTick = 0;
    Tick completeTick = 0;
    Tick commitTick = 0;
    Tick fifoResidency = 0;  ///< total time spent inside channels
    unsigned domainCrossings = 0;
    /// @}

    bool isBranch() const { return isBranchClass(cls); }
    bool isLoad() const { return cls == InstClass::load; }
    bool isStore() const { return cls == InstClass::store; }
    bool isMem() const { return isMemClass(cls); }
    bool isFp() const { return isFpClass(cls); }
    bool hasDest() const { return dest != invalidReg; }

    /** Slip: fetch-to-commit latency (paper Figure 6). */
    Tick slip() const { return commitTick - fetchTick; }

    /** One-line debug rendering. */
    std::string toString() const;
};

using DynInstPtr = std::shared_ptr<DynInst>;

} // namespace gals

#endif // ISA_DYN_INST_HH
