/**
 * @file
 * Micro-operation model: instruction classes, register identifiers and
 * static per-class properties (execution latency, issue queue binding).
 *
 * The simulator executes a synthetic instruction stream, so an
 * instruction is fully described by its class, register operands,
 * control-flow behaviour and memory address; there is no binary
 * encoding to decode.
 */

#ifndef ISA_INST_HH
#define ISA_INST_HH

#include <cstdint>
#include <string>

namespace gals
{

/** Operation classes, mirroring SimpleScalar's functional unit classes. */
enum class InstClass : std::uint8_t
{
    intAlu,       ///< add/sub/logic/compare/shift
    intMult,      ///< integer multiply
    intDiv,       ///< integer divide
    fpAlu,        ///< fp add/sub/convert/compare
    fpMult,       ///< fp multiply
    fpDiv,        ///< fp divide / sqrt
    load,         ///< memory read
    store,        ///< memory write
    condBranch,   ///< conditional branch
    uncondBranch, ///< jump
    call,         ///< call (pushes return-address stack)
    ret,          ///< return (pops return-address stack)
    numClasses
};

constexpr unsigned numInstClasses =
    static_cast<unsigned>(InstClass::numClasses);

/** Issue queues of the machine (paper Table 3: int 20 / fp 16 / mem 16). */
enum class IssueQueueId : std::uint8_t
{
    intQueue,
    fpQueue,
    memQueue,
    numQueues
};

constexpr unsigned numIssueQueues =
    static_cast<unsigned>(IssueQueueId::numQueues);

/** Architectural register identifier; [0,32) int, [32,64) fp. */
using RegId = std::int16_t;

constexpr RegId invalidReg = -1;
constexpr unsigned numArchIntRegs = 32;
constexpr unsigned numArchFpRegs = 32;
constexpr unsigned numArchRegs = numArchIntRegs + numArchFpRegs;

/** True for fp architectural registers. */
constexpr bool
isFpReg(RegId r)
{
    return r >= static_cast<RegId>(numArchIntRegs);
}

/** Physical register identifier (separate int / fp spaces). */
using PhysRegId = std::int16_t;
constexpr PhysRegId invalidPhysReg = -1;

/** Human-readable mnemonic for an instruction class. */
const char *instClassName(InstClass cls);

/** Execution latency in cycles of the owning domain. */
unsigned instLatency(InstClass cls);

/** Whether the functional unit for this class is pipelined. */
bool instPipelined(InstClass cls);

/** The issue queue this class dispatches to. */
IssueQueueId instQueue(InstClass cls);

/** Classification helpers. */
bool isBranchClass(InstClass cls);
bool isMemClass(InstClass cls);
bool isFpClass(InstClass cls);

/** Whether instructions of this class write a destination register. */
bool writesDest(InstClass cls);

} // namespace gals

#endif // ISA_INST_HH
