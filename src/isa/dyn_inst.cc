#include "isa/dyn_inst.hh"

#include <sstream>

namespace gals
{

std::string
DynInst::toString() const
{
    std::ostringstream os;
    os << "[" << seq << "] " << instClassName(cls) << " pc=0x" << std::hex
       << pc << std::dec;
    if (dest != invalidReg)
        os << " d=r" << dest << "(p" << physDest << ")";
    for (unsigned i = 0; i < numSrcs; ++i)
        os << " s" << i << "=r" << srcs[i] << "(p" << physSrcs[i] << ")";
    if (isMem())
        os << " addr=0x" << std::hex << memAddr << std::dec;
    if (isBranch()) {
        os << (actualTaken ? " T" : " N") << (predTaken ? "/pT" : "/pN");
        if (mispredicted)
            os << " MISP";
    }
    if (wrongPath)
        os << " WP";
    if (squashed)
        os << " SQ";
    return os.str();
}

} // namespace gals
