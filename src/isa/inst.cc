#include "isa/inst.hh"

#include "sim/logging.hh"

namespace gals
{

namespace
{

struct ClassInfo
{
    const char *name;
    unsigned latency;
    bool pipelined;
    IssueQueueId queue;
};

/**
 * Latencies follow SimpleScalar's defaults for an Alpha-like core:
 * single-cycle integer ALU, 3-cycle pipelined multiply, long
 * unpipelined divides, 2/4/12-cycle floating point.
 */
constexpr ClassInfo classTable[numInstClasses] = {
    /* intAlu */       {"int_alu", 1, true, IssueQueueId::intQueue},
    /* intMult */      {"int_mult", 3, true, IssueQueueId::intQueue},
    /* intDiv */       {"int_div", 20, false, IssueQueueId::intQueue},
    /* fpAlu */        {"fp_alu", 2, true, IssueQueueId::fpQueue},
    /* fpMult */       {"fp_mult", 4, true, IssueQueueId::fpQueue},
    /* fpDiv */        {"fp_div", 12, false, IssueQueueId::fpQueue},
    /* load */         {"load", 1, true, IssueQueueId::memQueue},
    /* store */        {"store", 1, true, IssueQueueId::memQueue},
    /* condBranch */   {"cond_branch", 1, true, IssueQueueId::intQueue},
    /* uncondBranch */ {"uncond_branch", 1, true, IssueQueueId::intQueue},
    /* call */         {"call", 1, true, IssueQueueId::intQueue},
    /* ret */          {"ret", 1, true, IssueQueueId::intQueue},
};

const ClassInfo &
info(InstClass cls)
{
    const auto idx = static_cast<unsigned>(cls);
    gals_assert(idx < numInstClasses, "bad instruction class ", idx);
    return classTable[idx];
}

} // namespace

const char *
instClassName(InstClass cls)
{
    return info(cls).name;
}

unsigned
instLatency(InstClass cls)
{
    return info(cls).latency;
}

bool
instPipelined(InstClass cls)
{
    return info(cls).pipelined;
}

IssueQueueId
instQueue(InstClass cls)
{
    return info(cls).queue;
}

bool
isBranchClass(InstClass cls)
{
    return cls == InstClass::condBranch || cls == InstClass::uncondBranch ||
           cls == InstClass::call || cls == InstClass::ret;
}

bool
isMemClass(InstClass cls)
{
    return cls == InstClass::load || cls == InstClass::store;
}

bool
isFpClass(InstClass cls)
{
    return cls == InstClass::fpAlu || cls == InstClass::fpMult ||
           cls == InstClass::fpDiv;
}

bool
writesDest(InstClass cls)
{
    if (isBranchClass(cls))
        return cls == InstClass::call; // link register
    return cls != InstClass::store;
}

} // namespace gals
