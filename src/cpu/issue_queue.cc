#include "cpu/issue_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace gals
{

IssueQueue::IssueQueue(std::string name, unsigned capacity,
                       const Scoreboard &view)
    : name_(std::move(name)), capacity_(capacity), view_(view)
{
    gals_assert(capacity_ > 0, "issue queue '", name_, "': no capacity");
}

void
IssueQueue::refreshReady(Entry &e) const
{
    e.allReady = true;
    for (unsigned i = 0; i < e.inst->numSrcs; ++i) {
        if (!e.ready[i]) {
            e.ready[i] =
                view_.ready(e.inst->physSrcs[i], e.inst->srcEpochs[i]);
        }
        e.allReady = e.allReady && e.ready[i];
    }
}

void
IssueQueue::insert(const DynInstPtr &inst)
{
    gals_assert(!full(), "insert into full issue queue '", name_, "'");
    Entry e;
    e.inst = inst;
    for (unsigned i = 0; i < DynInst::maxSrcs; ++i)
        e.ready[i] = i >= inst->numSrcs;
    refreshReady(e);
    entries_.push_back(std::move(e));
}

void
IssueQueue::wakeup(PhysRegId reg, std::uint32_t epoch)
{
    for (auto &e : entries_) {
        for (unsigned i = 0; i < e.inst->numSrcs; ++i) {
            ++wakeupMatches_;
            if (!e.ready[i] && e.inst->physSrcs[i] == reg &&
                e.inst->srcEpochs[i] <= epoch)
                e.ready[i] = true;
        }
    }
}

std::vector<DynInstPtr>
IssueQueue::selectIssue(
    unsigned width,
    const std::function<bool(const DynInst &)> &fuAvailable)
{
    std::vector<DynInstPtr> issued;
    if (width == 0)
        return issued;

    for (auto it = entries_.begin();
         it != entries_.end() && issued.size() < width;) {
        refreshReady(*it);
        if (it->allReady && fuAvailable(*it->inst)) {
            issued.push_back(it->inst);
            it = entries_.erase(it);
        } else {
            ++it;
        }
    }
    return issued;
}

unsigned
IssueQueue::squashAfter(InstSeqNum afterSeq)
{
    const auto old_size = entries_.size();
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [afterSeq](const Entry &e) {
                                      return e.inst->seq > afterSeq;
                                  }),
                   entries_.end());
    return static_cast<unsigned>(old_size - entries_.size());
}

} // namespace gals
