#include "cpu/lsq.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gals
{

namespace
{
constexpr std::uint64_t lineMask = ~std::uint64_t(31); // 32B lines
}

Lsq::Lsq(unsigned capacity) : capacity_(capacity)
{
    gals_assert(capacity_ > 0, "LSQ needs capacity");
}

void
Lsq::insert(const DynInstPtr &inst)
{
    gals_assert(!full(), "insert into full LSQ");
    gals_assert(inst->isMem(), "non-memory instruction in LSQ");
    q_.push_back(inst);
}

bool
Lsq::loadForwards(const DynInstPtr &load) const
{
    const std::uint64_t line = load->memAddr & lineMask;
    // Scan older entries for an executed store to the same line.
    for (auto it = q_.rbegin(); it != q_.rend(); ++it) {
        const DynInstPtr &e = *it;
        if (e->seq >= load->seq)
            continue;
        if (e->isStore() && e->completed &&
            (e->memAddr & lineMask) == line) {
            ++forwarded_;
            return true;
        }
    }
    return false;
}

void
Lsq::removeLoad(InstSeqNum seq)
{
    for (auto it = q_.begin(); it != q_.end(); ++it) {
        if ((*it)->seq == seq) {
            gals_assert((*it)->isLoad(), "removeLoad on a store");
            q_.erase(it);
            return;
        }
    }
    gals_panic("removeLoad: seq ", seq, " not in LSQ");
}

void
Lsq::removeStore(InstSeqNum seq)
{
    for (auto it = q_.begin(); it != q_.end(); ++it) {
        if ((*it)->seq == seq) {
            gals_assert((*it)->isStore(), "removeStore on a load");
            q_.erase(it);
            return;
        }
    }
    gals_panic("removeStore: seq ", seq, " not in LSQ");
}

unsigned
Lsq::squashAfter(InstSeqNum afterSeq)
{
    const auto old_size = q_.size();
    q_.erase(std::remove_if(q_.begin(), q_.end(),
                            [afterSeq](const DynInstPtr &e) {
                                return e->seq > afterSeq;
                            }),
             q_.end());
    return static_cast<unsigned>(old_size - q_.size());
}

} // namespace gals
