/**
 * @file
 * Load/store queue: tracks in-flight memory operations in the memory
 * domain, provides store-to-load forwarding by address match, and
 * holds stores until commit releases them to the D-cache.
 */

#ifndef CPU_LSQ_HH
#define CPU_LSQ_HH

#include <deque>

#include "isa/dyn_inst.hh"

namespace gals
{

/**
 * Unified LSQ (capacity shared between loads and stores).
 */
class Lsq
{
  public:
    explicit Lsq(unsigned capacity);

    bool full() const { return q_.size() >= capacity_; }
    unsigned size() const { return static_cast<unsigned>(q_.size()); }
    unsigned capacity() const { return capacity_; }

    /** Insert a memory instruction (program order). */
    void insert(const DynInstPtr &inst);

    /**
     * Would a load at @p addr forward from an older, executed store?
     * Line-granularity match, newest older store wins.
     */
    bool loadForwards(const DynInstPtr &load) const;

    /** Remove a completed load (loads leave at completion). */
    void removeLoad(InstSeqNum seq);

    /** Remove a committed store. */
    void removeStore(InstSeqNum seq);

    /** Squash everything younger than @p afterSeq. @return count. */
    unsigned squashAfter(InstSeqNum afterSeq);

    std::uint64_t forwarded() const { return forwarded_; }

  private:
    unsigned capacity_;
    std::deque<DynInstPtr> q_;
    mutable std::uint64_t forwarded_ = 0;
};

} // namespace gals

#endif // CPU_LSQ_HH
