/**
 * @file
 * Fetch stage: clock domain 1 of the GALS processor (paper Figure 3b)
 * — the L1 instruction cache and the branch prediction unit.
 *
 * Fetches up to fetchWidth instructions per cycle from the synthetic
 * stream, predicting every branch with the real branch unit. When the
 * oracle outcome disagrees with the prediction, fetch switches onto a
 * wrong-path junk stream until the resolved branch's redirect message
 * arrives back through the (possibly asynchronous) redirect channel —
 * so the GALS machine's longer recovery pipeline directly produces the
 * higher mis-speculation rates of paper Figure 8.
 */

#ifndef CPU_FETCH_HH
#define CPU_FETCH_HH

#include <functional>

#include "bpred/bpred.hh"
#include "cache/hierarchy.hh"
#include "core/channel.hh"
#include "cpu/core_config.hh"
#include "cpu/messages.hh"
#include "power/energy_account.hh"
#include "sim/clock_domain.hh"
#include "workload/generator.hh"

namespace gals
{

/**
 * The front end (clock domain 1). A ClockDomain::Ticker: construction
 * registers the stage on its domain's edge walk.
 */
class FetchStage : public ClockDomain::Ticker
{
  public:
    FetchStage(const CoreConfig &cfg, ClockDomain &domain,
               ClockDomain &memDomain, StreamGenerator &gen,
               CacheHierarchy &hier, EnergyAccount &energy,
               Channel<DynInstPtr> &out, Channel<RedirectMsg> &redirectIn,
               Channel<BpredUpdateMsg> &bpredUpdateIn, bool galsMode,
               unsigned syncEdges);

    /** One fetch-domain cycle. */
    void tick() override;

    /** Stop fetching new correct-path work (drain mode). */
    void setFetchLimit(std::uint64_t maxCorrectPath)
    {
        fetchLimit_ = maxCorrectPath;
    }

    /** Hook invoked when a redirect is observed: global squash. */
    void
    onSquash(std::function<void(InstSeqNum)> fn)
    {
        squashFn_ = std::move(fn);
    }

    /**
     * External stall predicate, polled once per fetch cycle after the
     * incoming-message drains: while it returns true the front end
     * fetches nothing. Used by the fabric NIC to model a core blocked
     * on a remote completion; unset (the default) costs nothing and
     * changes nothing.
     */
    void
    setExternalStall(std::function<bool()> fn)
    {
        externalStall_ = std::move(fn);
    }

    /** @name Statistics */
    /// @{
    std::uint64_t fetched() const { return fetched_; }
    std::uint64_t wrongPathFetched() const { return wrongPathFetched_; }
    std::uint64_t icacheStallCycles() const { return stallCycles_; }
    std::uint64_t redirects() const { return redirects_; }
    /// @}

    BranchUnit &branchUnit() { return bpred_; }

    /** @name Warm-state snapshot (core/snapshot.hh)
     *
     * Only the sequence counter is serialized: at the quiescent
     * snapshot point there is no pending instruction, no wrong-path
     * mode and no stall in flight (see quiescentForSnapshot()), so
     * everything else is the fresh-construction state.
     */
    /// @{
    bool quiescentForSnapshot() const
    {
        return pending_ == nullptr && !wrongPathMode_;
    }
    std::uint64_t nextSeq() const { return nextSeq_; }
    void setNextSeq(std::uint64_t seq) { nextSeq_ = seq; }
    /// @}

  private:
    DynInstPtr makeInst(const GenInst &gi, bool wrong_path);
    Tick missStallTicks(const MemAccessOutcome &out) const;

    const CoreConfig &cfg_;
    ClockDomain &domain_;
    ClockDomain &memDomain_;
    StreamGenerator &gen_;
    CacheHierarchy &hier_;
    EnergyAccount &energy_;
    BranchUnit bpred_;

    Channel<DynInstPtr> &out_;
    Channel<RedirectMsg> &redirectIn_;
    Channel<BpredUpdateMsg> &bpredUpdateIn_;

    bool galsMode_;
    unsigned syncEdges_;

    std::function<void(InstSeqNum)> squashFn_;
    std::function<bool()> externalStall_;

    InstSeqNum nextSeq_ = 1;
    bool wrongPathMode_ = false;
    std::uint64_t wpPc_ = 0;
    DynInstPtr pending_; ///< generated but not yet pushed (stall/full)
    Tick stallUntil_ = 0;
    std::uint64_t fetchLimit_ = ~std::uint64_t(0);

    std::uint64_t fetched_ = 0;
    std::uint64_t wrongPathFetched_ = 0;
    std::uint64_t stallCycles_ = 0;
    std::uint64_t redirects_ = 0;
};

} // namespace gals

#endif // CPU_FETCH_HH
