/**
 * @file
 * Message types exchanged between clock domains (besides instructions
 * themselves): result wakeups, completion notices for the ROB, branch
 * redirects to the front end, committed-store releases to the memory
 * domain, and predictor training updates.
 */

#ifndef CPU_MESSAGES_HH
#define CPU_MESSAGES_HH

#include <cstdint>

#include "isa/dyn_inst.hh"
#include "isa/inst.hh"

namespace gals
{

/** A register value became available (result tag broadcast). */
struct WakeupMsg
{
    PhysRegId reg = invalidPhysReg;
    std::uint32_t epoch = 0;
    InstSeqNum producer = 0;
};

/** An instruction finished executing (to the ROB / commit logic). */
struct CompleteMsg
{
    InstSeqNum seq = 0;
};

/** A mispredicted branch resolved: redirect the front end. */
struct RedirectMsg
{
    InstSeqNum branchSeq = 0;
};

/** A store committed: perform its D-cache write. */
struct StoreCommitMsg
{
    DynInstPtr inst;
};

/** Commit-time branch predictor training. */
struct BpredUpdateMsg
{
    std::uint64_t pc = 0;
    InstClass cls = InstClass::condBranch;
    bool taken = false;
    std::uint64_t target = 0;
};

} // namespace gals

#endif // CPU_MESSAGES_HH
