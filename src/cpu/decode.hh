/**
 * @file
 * Clock domain 2 of the GALS processor: instruction decode, register
 * rename, dispatch into the three issue queues, and — because the ROB
 * and rename state live here — in-order commit (paper Table 2 binds
 * pipeline stages 2-4 and 8 to domain 2).
 */

#ifndef CPU_DECODE_HH
#define CPU_DECODE_HH

#include <deque>
#include <vector>

#include "core/channel.hh"
#include "cpu/core_config.hh"
#include "cpu/messages.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "power/energy_account.hh"
#include "sim/clock_domain.hh"

namespace gals
{

/** Commit-time aggregate statistics. */
struct CommitStats
{
    std::uint64_t committed = 0;
    std::uint64_t committedBranches = 0;
    std::uint64_t committedMispredicts = 0;
    std::uint64_t committedLoads = 0;
    std::uint64_t committedStores = 0;
    double slipSumTicks = 0.0;
    double fifoSlipSumTicks = 0.0;
    Tick lastCommitTick = 0;
};

/**
 * Decode + rename + dispatch + commit (clock domain 2). A
 * ClockDomain::Ticker: construction registers the stage on its
 * domain's edge walk.
 */
class DecodeCommitUnit : public ClockDomain::Ticker
{
  public:
    DecodeCommitUnit(const CoreConfig &cfg, ClockDomain &domain,
                     EnergyAccount &energy, Channel<DynInstPtr> &fetchIn,
                     Channel<DynInstPtr> &toInt,
                     Channel<DynInstPtr> &toFp,
                     Channel<DynInstPtr> &toMem,
                     std::vector<Channel<CompleteMsg> *> completeIns,
                     Channel<StoreCommitMsg> &storeCommitOut,
                     Channel<BpredUpdateMsg> &bpredUpdateOut);

    /** One decode-domain cycle. */
    void tick() override;

    /** Mispredict recovery: flush younger state in this domain. */
    void squashAfter(InstSeqNum afterSeq);

    /** @name Occupancy & throughput statistics */
    /// @{
    const CommitStats &commitStats() const { return commitStats_; }
    Rob &rob() { return rob_; }
    RenameUnit &rename() { return rename_; }
    double avgRobOccupancy() const;
    double avgIntRenames() const;
    double avgFpRenames() const;
    std::uint64_t dispatched() const { return dispatched_; }
    std::uint64_t decodeStallCycles() const { return stallCycles_; }
    /// @}

    /** No in-flight work in this domain: ROB and internal decode
     *  pipe empty, no live RAT checkpoint. Part of the processor's
     *  warm-snapshot quiescence predicate (core/snapshot.hh). */
    bool quiescentForSnapshot() const
    {
        return rob_.size() == 0 && decodePipe_.empty() &&
               !rename_.hasCheckpoint();
    }

  private:
    void doCommit(Tick now);
    void doDecode(Tick now);
    void doDispatch(Tick now);
    Channel<DynInstPtr> &queueFor(const DynInst &inst);

    const CoreConfig &cfg_;
    ClockDomain &domain_;
    EnergyAccount &energy_;

    Channel<DynInstPtr> &fetchIn_;
    Channel<DynInstPtr> &toInt_;
    Channel<DynInstPtr> &toFp_;
    Channel<DynInstPtr> &toMem_;
    std::vector<Channel<CompleteMsg> *> completeIns_;
    Channel<StoreCommitMsg> &storeCommitOut_;
    Channel<BpredUpdateMsg> &bpredUpdateOut_;

    Rob rob_;
    RenameUnit rename_;

    /** Internal decode pipeline (paper stages 2-3). */
    struct PipeEntry
    {
        DynInstPtr inst;
        Cycle readyCycle;
    };
    std::deque<PipeEntry> decodePipe_;

    CommitStats commitStats_;
    std::uint64_t dispatched_ = 0;
    std::uint64_t stallCycles_ = 0;

    /** Occupancy accumulators (sampled once per cycle). */
    std::uint64_t occSamples_ = 0;
    std::uint64_t robOccSum_ = 0;
    std::uint64_t intRenameSum_ = 0;
    std::uint64_t fpRenameSum_ = 0;
};

} // namespace gals

#endif // CPU_DECODE_HH
