/**
 * @file
 * Per-domain register readiness scoreboard.
 *
 * Each clock domain keeps its own view of which physical register
 * values are available, because in a GALS machine readiness
 * information arrives through asynchronous FIFOs and therefore at
 * different times in different domains. Readiness is tracked as an
 * epoch per physical register: every allocation of a register bumps
 * its epoch, and a wakeup for (reg, epoch e) makes every operand
 * waiting on epoch <= e ready. Epochs make stale wakeups (from
 * squashed producers whose register was since recycled) harmless.
 */

#ifndef CPU_SCOREBOARD_HH
#define CPU_SCOREBOARD_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "sim/logging.hh"

namespace gals
{

/** One domain's view of physical-register readiness. */
class Scoreboard
{
  public:
    explicit Scoreboard(unsigned numPhysRegs)
        : seenEpoch_(numPhysRegs, 0)
    {
    }

    /** Observe a wakeup: the value of (reg, epoch) is available. */
    void
    observe(PhysRegId reg, std::uint32_t epoch)
    {
        gals_assert(reg >= 0 &&
                        static_cast<std::size_t>(reg) < seenEpoch_.size(),
                    "bad phys reg ", reg);
        if (epoch > seenEpoch_[reg])
            seenEpoch_[reg] = epoch;
    }

    /** Is the operand (reg, epoch) ready in this domain's view? */
    bool
    ready(PhysRegId reg, std::uint32_t epoch) const
    {
        gals_assert(reg >= 0 &&
                        static_cast<std::size_t>(reg) < seenEpoch_.size(),
                    "bad phys reg ", reg);
        return seenEpoch_[reg] >= epoch;
    }

    unsigned numRegs() const
    {
        return static_cast<unsigned>(seenEpoch_.size());
    }

  private:
    std::vector<std::uint32_t> seenEpoch_;
};

} // namespace gals

#endif // CPU_SCOREBOARD_HH
