#include "cpu/core_config.hh"

#include "sim/logging.hh"

namespace gals
{

void
CoreConfig::validate() const
{
    if (fetchWidth == 0 || decodeWidth == 0 || dispatchWidth == 0 ||
        commitWidth == 0)
        gals_fatal("core config: zero pipeline width");
    if (intIssueWidth == 0 || fpIssueWidth == 0 || memIssueWidth == 0)
        gals_fatal("core config: zero issue width");
    if (fetchQueueSize == 0 || intQueueSize == 0 || fpQueueSize == 0 ||
        memQueueSize == 0 || robSize == 0 || lsqSize == 0)
        gals_fatal("core config: zero structure size");
    if (numIntPhysRegs < numArchIntRegs + 1 ||
        numFpPhysRegs < numArchFpRegs + 1)
        gals_fatal("core config: too few physical registers (need > ",
                   numArchIntRegs, " int / ", numArchFpRegs, " fp)");
    if (intAlus == 0 || fpAlus == 0 || intMuls == 0 || fpMuls == 0 ||
        memPorts == 0)
        gals_fatal("core config: zero functional units");
}

} // namespace gals
