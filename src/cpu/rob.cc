#include "cpu/rob.hh"

#include "sim/logging.hh"

namespace gals
{

Rob::Rob(unsigned capacity) : capacity_(capacity)
{
    gals_assert(capacity_ > 0, "ROB needs capacity");
}

void
Rob::insert(const DynInstPtr &inst)
{
    gals_assert(!full(), "insert into full ROB");
    gals_assert(q_.empty() || q_.back()->seq < inst->seq,
                "ROB insert out of program order");
    q_.push_back(inst);
}

const DynInstPtr &
Rob::head() const
{
    gals_assert(!empty(), "head() on empty ROB");
    return q_.front();
}

void
Rob::popHead()
{
    gals_assert(!empty(), "popHead() on empty ROB");
    q_.pop_front();
}

bool
Rob::markCompleted(InstSeqNum seq)
{
    // Completions arrive out of order; search from the head since old
    // instructions complete more often near the front.
    for (auto &inst : q_) {
        if (inst->seq == seq) {
            inst->completed = true;
            return true;
        }
    }
    return false;
}

unsigned
Rob::squashAfter(InstSeqNum afterSeq,
                 const std::function<void(DynInst &)> &onSquash)
{
    unsigned n = 0;
    while (!q_.empty() && q_.back()->seq > afterSeq) {
        DynInstPtr inst = q_.back();
        q_.pop_back();
        inst->squashed = true;
        onSquash(*inst);
        ++n;
    }
    return n;
}

} // namespace gals
