/**
 * @file
 * Execution domains: clock domains 3 (integer issue queue + ALUs),
 * 4 (floating-point issue queue + FPUs) and 5 (memory issue queue +
 * D-cache + L2) of the GALS processor.
 *
 * Each domain owns a scoreboard view of register readiness fed by
 * wakeup messages from the other domains (through channels) and by its
 * own completions (observed immediately, so dependent instructions in
 * the same queue issue back-to-back — the property the paper's domain
 * partitioning is designed to preserve).
 */

#ifndef CPU_BACKEND_HH
#define CPU_BACKEND_HH

#include <queue>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/channel.hh"
#include "core/domain.hh"
#include "cpu/core_config.hh"
#include "cpu/fu_pool.hh"
#include "cpu/issue_queue.hh"
#include "cpu/lsq.hh"
#include "cpu/messages.hh"
#include "cpu/scoreboard.hh"
#include "power/energy_account.hh"
#include "sim/clock_domain.hh"

namespace gals
{

/** Which execution cluster this is. */
enum class ExecKind : std::uint8_t { intCluster, fpCluster, memCluster };

/**
 * One execution clock domain. A ClockDomain::Ticker: construction
 * registers the cluster on its domain's edge walk.
 */
class ExecDomain : public ClockDomain::Ticker
{
  public:
    ExecDomain(ExecKind kind, const CoreConfig &cfg, ClockDomain &domain,
               EnergyAccount &energy, Channel<DynInstPtr> &dispatchIn,
               std::vector<Channel<WakeupMsg> *> wakeupIns,
               std::vector<Channel<WakeupMsg> *> wakeupOuts,
               Channel<CompleteMsg> &completeOut,
               Channel<RedirectMsg> *redirectOut,
               Channel<StoreCommitMsg> *storeCommitIn,
               CacheHierarchy *hier);

    /** One cycle of this domain. */
    void tick() override;

    /** Mispredict recovery: flush younger instructions. */
    void squashAfter(InstSeqNum afterSeq);

    /** @name Statistics */
    /// @{
    double avgQueueOccupancy() const;
    std::uint64_t issued() const { return issued_; }
    /** Stable address of the issue counter, for samplers (DVFS)
     *  that read it without a callback indirection. */
    const std::uint64_t *issuedCounter() const { return &issued_; }
    std::uint64_t completed() const { return completed_; }
    const IssueQueue &queue() const { return iq_; }
    const Lsq *lsq() const
    {
        return kind_ == ExecKind::memCluster ? &lsq_ : nullptr;
    }
    /// @}

    ExecKind kind() const { return kind_; }

    /** No in-flight work in this cluster: empty issue queue, LSQ and
     *  completion list. Part of the processor's warm-snapshot
     *  quiescence predicate (core/snapshot.hh). */
    bool quiescentForSnapshot() const
    {
        return iq_.size() == 0 && lsq_.size() == 0 &&
               completions_.empty();
    }

    /** Register-readiness view, exposed so a warm-state restore can
     *  re-seed the epochs this domain has observed. */
    Scoreboard &scoreboard() { return scoreboard_; }

  private:
    void drainWakeups();
    void processCompletions(Tick now);
    void insertDispatched(Tick now);
    void issue(Tick now);
    void handleStoreCommits();
    unsigned execLatencyCycles(const DynInstPtr &inst);
    void broadcastWakeup(const DynInstPtr &inst);
    void localWakeup(PhysRegId reg, std::uint32_t epoch);
    unsigned issueWidth() const;
    Unit queueUnit() const;

    ExecKind kind_;
    const CoreConfig &cfg_;
    ClockDomain &domain_;
    EnergyAccount &energy_;

    Channel<DynInstPtr> &dispatchIn_;
    std::vector<Channel<WakeupMsg> *> wakeupIns_;
    std::vector<Channel<WakeupMsg> *> wakeupOuts_;
    Channel<CompleteMsg> &completeOut_;
    Channel<RedirectMsg> *redirectOut_;     ///< int cluster only
    Channel<StoreCommitMsg> *storeCommitIn_; ///< mem cluster only
    CacheHierarchy *hier_;                   ///< mem cluster only

    Scoreboard scoreboard_;
    IssueQueue iq_;
    FuPool fu_;
    Lsq lsq_;

    /** In-flight executions ordered by completion time. */
    struct Completion
    {
        Tick when;
        DynInstPtr inst;
        bool
        operator>(const Completion &o) const
        {
            return when > o.when;
        }
    };
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        completions_;

    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t occSamples_ = 0;
    std::uint64_t occSum_ = 0;
};

} // namespace gals

#endif // CPU_BACKEND_HH
