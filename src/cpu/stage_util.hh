/**
 * @file
 * Small helpers shared by pipeline stages.
 */

#ifndef CPU_STAGE_UTIL_HH
#define CPU_STAGE_UTIL_HH

#include "core/channel.hh"
#include "isa/dyn_inst.hh"

namespace gals
{

/**
 * Pop an instruction from a channel, accounting its FIFO residency
 * (asynchronous channels only — latch residency is ordinary pipeline
 * time) for the paper's Figure 7 slip breakdown.
 */
inline DynInstPtr
popInst(Channel<DynInstPtr> &ch, Tick now)
{
    const Tick push_tick = ch.frontPushTick();
    DynInstPtr inst = ch.front();
    ch.pop();
    if (ch.isAsync()) {
        inst->fifoResidency += now - push_tick;
        ++inst->domainCrossings;
    }
    return inst;
}

} // namespace gals

#endif // CPU_STAGE_UTIL_HH
