/**
 * @file
 * Functional unit pool for one clock domain: per-class unit counts,
 * per-cycle issue-slot tracking for pipelined units and busy-until
 * reservation for unpipelined ones (divides).
 */

#ifndef CPU_FU_POOL_HH
#define CPU_FU_POOL_HH

#include <cstdint>

#include "isa/inst.hh"
#include "sim/ticks.hh"

namespace gals
{

/**
 * Tracks functional-unit availability within one domain.
 *
 * Unit groups:
 *  - simple ALUs (intAlu + branches, or fpAlu): pipelined, N units
 *  - multiplier (intMult / fpMult): pipelined, M units
 *  - divider: shares the multiplier, unpipelined (busy for the
 *    operation's full latency)
 *  - memory ports (loads/stores)
 */
class FuPool
{
  public:
    /**
     * @param simpleUnits  ALU count
     * @param mulUnits     multiplier/divider count
     * @param memPorts     cache ports (0 for non-memory domains)
     */
    FuPool(unsigned simpleUnits, unsigned mulUnits, unsigned memPorts);

    /** Start a new cycle: clears per-cycle issue slots. */
    void newCycle(Cycle cycle);

    /** Can an instruction of @p cls issue this cycle? */
    bool available(InstClass cls) const;

    /**
     * Consume a unit for @p cls. Unpipelined classes reserve their
     * unit until @p busyUntilCycle.
     * @pre available(cls)
     */
    void allocate(InstClass cls, Cycle busyUntilCycle);

  private:
    enum class Group : std::uint8_t { simple, mul, mem };
    Group groupOf(InstClass cls) const;

    unsigned simpleUnits_, mulUnits_, memPorts_;
    unsigned simpleUsed_ = 0, mulUsed_ = 0, memUsed_ = 0;
    Cycle cycle_ = 0;
    Cycle mulBusyUntil_ = 0; ///< divider reservation (whole group)
};

} // namespace gals

#endif // CPU_FU_POOL_HH
