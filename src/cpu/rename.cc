#include "cpu/rename.hh"

#include "sim/logging.hh"
#include "sim/snapshot_io.hh"

namespace gals
{

RenameUnit::RenameUnit(unsigned numIntPhys, unsigned numFpPhys)
    : numIntPhys_(numIntPhys), numFpPhys_(numFpPhys),
      rat_(numArchRegs, invalidPhysReg),
      allocEpoch_(numIntPhys + numFpPhys, 0)
{
    gals_assert(numIntPhys_ > numArchIntRegs,
                "need more int phys regs than arch regs");
    gals_assert(numFpPhys_ > numArchFpRegs,
                "need more fp phys regs than arch regs");

    // Initial mapping: int arch reg a -> phys a; fp arch reg a ->
    // phys numIntPhys_ + (a - numArchIntRegs). The rest are free.
    for (unsigned a = 0; a < numArchIntRegs; ++a)
        rat_[a] = static_cast<PhysRegId>(a);
    for (unsigned a = 0; a < numArchFpRegs; ++a)
        rat_[numArchIntRegs + a] =
            static_cast<PhysRegId>(numIntPhys_ + a);

    for (unsigned p = numArchIntRegs; p < numIntPhys_; ++p)
        freeInt_.push_back(static_cast<PhysRegId>(p));
    for (unsigned p = numArchFpRegs; p < numFpPhys_; ++p)
        freeFp_.push_back(static_cast<PhysRegId>(numIntPhys_ + p));
}

bool
RenameUnit::needsFpDest(const DynInst &inst) const
{
    return inst.hasDest() && isFpReg(inst.dest);
}

bool
RenameUnit::canRename(const DynInst &inst) const
{
    if (!inst.hasDest())
        return true;
    return needsFpDest(inst) ? !freeFp_.empty() : !freeInt_.empty();
}

void
RenameUnit::rename(DynInst &inst)
{
    gals_assert(canRename(inst), "rename without a free register");

    for (unsigned i = 0; i < inst.numSrcs; ++i) {
        const RegId a = inst.srcs[i];
        gals_assert(a >= 0 && a < static_cast<RegId>(numArchRegs),
                    "bad source arch reg ", a);
        const PhysRegId p = rat_[a];
        inst.physSrcs[i] = p;
        inst.srcEpochs[i] = allocEpoch_[p];
    }

    if (inst.hasDest()) {
        PhysRegId p;
        if (needsFpDest(inst)) {
            p = freeFp_.back();
            freeFp_.pop_back();
        } else {
            p = freeInt_.back();
            freeInt_.pop_back();
        }
        inst.oldPhysDest = rat_[inst.dest];
        inst.physDest = p;
        inst.destEpoch = ++allocEpoch_[p];
        rat_[inst.dest] = p;
    }
}

void
RenameUnit::commitFree(const DynInst &inst)
{
    if (!inst.hasDest() || inst.oldPhysDest == invalidPhysReg)
        return;
    if (isFpReg(inst.dest))
        freeFp_.push_back(inst.oldPhysDest);
    else
        freeInt_.push_back(inst.oldPhysDest);
}

void
RenameUnit::squashFree(const DynInst &inst)
{
    if (!inst.hasDest() || inst.physDest == invalidPhysReg)
        return;
    if (isFpReg(inst.dest))
        freeFp_.push_back(inst.physDest);
    else
        freeInt_.push_back(inst.physDest);
}

void
RenameUnit::checkpoint(InstSeqNum branchSeq)
{
    gals_assert(!checkpointValid_,
                "nested RAT checkpoints are not supported (seq ",
                branchSeq, " over ", checkpointSeq_, ")");
    checkpointValid_ = true;
    checkpointSeq_ = branchSeq;
    checkpointRat_ = rat_;
}

void
RenameUnit::restore(InstSeqNum branchSeq)
{
    gals_assert(checkpointValid_, "restore without a checkpoint");
    gals_assert(checkpointSeq_ == branchSeq, "checkpoint seq mismatch: ",
                checkpointSeq_, " vs ", branchSeq);
    rat_ = checkpointRat_;
    checkpointValid_ = false;
}

void
RenameUnit::discardCheckpoint()
{
    checkpointValid_ = false;
}

void
RenameUnit::snapshotSave(SnapshotWriter &w) const
{
    gals_assert(!checkpointValid_,
                "rename snapshot with a live checkpoint");
    w.u64(rat_.size());
    for (PhysRegId p : rat_)
        w.u64(static_cast<std::uint64_t>(p));
    w.u64(freeInt_.size());
    for (PhysRegId p : freeInt_)
        w.u64(static_cast<std::uint64_t>(p));
    w.u64(freeFp_.size());
    for (PhysRegId p : freeFp_)
        w.u64(static_cast<std::uint64_t>(p));
    w.u64(allocEpoch_.size());
    for (std::uint32_t e : allocEpoch_)
        w.u64(e);
}

void
RenameUnit::snapshotRestore(SnapshotReader &r)
{
    const std::uint64_t total = totalPhysRegs();

    r.expectU64(r.u64(), rat_.size(), "RAT size");
    for (PhysRegId &p : rat_) {
        const std::uint64_t v = r.u64();
        if (v >= total)
            r.fail("RAT entry out of range");
        p = static_cast<PhysRegId>(v);
    }

    const auto readFreeList = [&](std::vector<PhysRegId> &list,
                                  std::uint64_t capacity,
                                  const char *what) {
        const std::uint64_t n = r.u64();
        if (n > capacity) {
            r.fail(std::string("oversized ") + what);
            return;
        }
        list.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t v = r.u64();
            if (v >= total)
                r.fail("free-list entry out of range");
            list.push_back(static_cast<PhysRegId>(v));
        }
    };
    readFreeList(freeInt_, numIntPhys_, "int free list");
    readFreeList(freeFp_, numFpPhys_, "fp free list");

    r.expectU64(r.u64(), allocEpoch_.size(), "epoch table size");
    for (std::uint32_t &e : allocEpoch_)
        e = static_cast<std::uint32_t>(r.u64());

    checkpointValid_ = false;
}

} // namespace gals
