#include "cpu/rename.hh"

#include "sim/logging.hh"

namespace gals
{

RenameUnit::RenameUnit(unsigned numIntPhys, unsigned numFpPhys)
    : numIntPhys_(numIntPhys), numFpPhys_(numFpPhys),
      rat_(numArchRegs, invalidPhysReg),
      allocEpoch_(numIntPhys + numFpPhys, 0)
{
    gals_assert(numIntPhys_ > numArchIntRegs,
                "need more int phys regs than arch regs");
    gals_assert(numFpPhys_ > numArchFpRegs,
                "need more fp phys regs than arch regs");

    // Initial mapping: int arch reg a -> phys a; fp arch reg a ->
    // phys numIntPhys_ + (a - numArchIntRegs). The rest are free.
    for (unsigned a = 0; a < numArchIntRegs; ++a)
        rat_[a] = static_cast<PhysRegId>(a);
    for (unsigned a = 0; a < numArchFpRegs; ++a)
        rat_[numArchIntRegs + a] =
            static_cast<PhysRegId>(numIntPhys_ + a);

    for (unsigned p = numArchIntRegs; p < numIntPhys_; ++p)
        freeInt_.push_back(static_cast<PhysRegId>(p));
    for (unsigned p = numArchFpRegs; p < numFpPhys_; ++p)
        freeFp_.push_back(static_cast<PhysRegId>(numIntPhys_ + p));
}

bool
RenameUnit::needsFpDest(const DynInst &inst) const
{
    return inst.hasDest() && isFpReg(inst.dest);
}

bool
RenameUnit::canRename(const DynInst &inst) const
{
    if (!inst.hasDest())
        return true;
    return needsFpDest(inst) ? !freeFp_.empty() : !freeInt_.empty();
}

void
RenameUnit::rename(DynInst &inst)
{
    gals_assert(canRename(inst), "rename without a free register");

    for (unsigned i = 0; i < inst.numSrcs; ++i) {
        const RegId a = inst.srcs[i];
        gals_assert(a >= 0 && a < static_cast<RegId>(numArchRegs),
                    "bad source arch reg ", a);
        const PhysRegId p = rat_[a];
        inst.physSrcs[i] = p;
        inst.srcEpochs[i] = allocEpoch_[p];
    }

    if (inst.hasDest()) {
        PhysRegId p;
        if (needsFpDest(inst)) {
            p = freeFp_.back();
            freeFp_.pop_back();
        } else {
            p = freeInt_.back();
            freeInt_.pop_back();
        }
        inst.oldPhysDest = rat_[inst.dest];
        inst.physDest = p;
        inst.destEpoch = ++allocEpoch_[p];
        rat_[inst.dest] = p;
    }
}

void
RenameUnit::commitFree(const DynInst &inst)
{
    if (!inst.hasDest() || inst.oldPhysDest == invalidPhysReg)
        return;
    if (isFpReg(inst.dest))
        freeFp_.push_back(inst.oldPhysDest);
    else
        freeInt_.push_back(inst.oldPhysDest);
}

void
RenameUnit::squashFree(const DynInst &inst)
{
    if (!inst.hasDest() || inst.physDest == invalidPhysReg)
        return;
    if (isFpReg(inst.dest))
        freeFp_.push_back(inst.physDest);
    else
        freeInt_.push_back(inst.physDest);
}

void
RenameUnit::checkpoint(InstSeqNum branchSeq)
{
    gals_assert(!checkpointValid_,
                "nested RAT checkpoints are not supported (seq ",
                branchSeq, " over ", checkpointSeq_, ")");
    checkpointValid_ = true;
    checkpointSeq_ = branchSeq;
    checkpointRat_ = rat_;
}

void
RenameUnit::restore(InstSeqNum branchSeq)
{
    gals_assert(checkpointValid_, "restore without a checkpoint");
    gals_assert(checkpointSeq_ == branchSeq, "checkpoint seq mismatch: ",
                checkpointSeq_, " vs ", branchSeq);
    rat_ = checkpointRat_;
    checkpointValid_ = false;
}

void
RenameUnit::discardCheckpoint()
{
    checkpointValid_ = false;
}

} // namespace gals
