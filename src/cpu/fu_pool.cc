#include "cpu/fu_pool.hh"

#include "sim/logging.hh"

namespace gals
{

FuPool::FuPool(unsigned simpleUnits, unsigned mulUnits, unsigned memPorts)
    : simpleUnits_(simpleUnits), mulUnits_(mulUnits), memPorts_(memPorts)
{
}

FuPool::Group
FuPool::groupOf(InstClass cls) const
{
    switch (cls) {
      case InstClass::intAlu:
      case InstClass::fpAlu:
      case InstClass::condBranch:
      case InstClass::uncondBranch:
      case InstClass::call:
      case InstClass::ret:
        return Group::simple;
      case InstClass::intMult:
      case InstClass::intDiv:
      case InstClass::fpMult:
      case InstClass::fpDiv:
        return Group::mul;
      case InstClass::load:
      case InstClass::store:
        return Group::mem;
      default:
        gals_panic("bad class in FuPool");
    }
}

void
FuPool::newCycle(Cycle cycle)
{
    cycle_ = cycle;
    simpleUsed_ = mulUsed_ = memUsed_ = 0;
}

bool
FuPool::available(InstClass cls) const
{
    switch (groupOf(cls)) {
      case Group::simple:
        return simpleUsed_ < simpleUnits_;
      case Group::mul:
        return mulUsed_ < mulUnits_ && cycle_ >= mulBusyUntil_;
      case Group::mem:
        return memUsed_ < memPorts_;
    }
    return false;
}

void
FuPool::allocate(InstClass cls, Cycle busyUntilCycle)
{
    gals_assert(available(cls), "allocate without availability");
    switch (groupOf(cls)) {
      case Group::simple:
        ++simpleUsed_;
        break;
      case Group::mul:
        ++mulUsed_;
        if (!instPipelined(cls))
            mulBusyUntil_ = busyUntilCycle;
        break;
      case Group::mem:
        ++memUsed_;
        break;
    }
}

} // namespace gals
