/**
 * @file
 * Register renaming: architectural-to-physical map (RAT), free lists,
 * allocation epochs and single-checkpoint recovery.
 *
 * The machine keeps separate integer and floating-point physical
 * register files (72 + 72, paper Table 3). Because the synthetic
 * front end knows at fetch time which branch will mispredict, and a
 * second correct-path branch cannot enter the machine before the first
 * mispredict resolves, at most one RAT checkpoint is live at any time.
 */

#ifndef CPU_RENAME_HH
#define CPU_RENAME_HH

#include <cstdint>
#include <vector>

#include "isa/dyn_inst.hh"
#include "isa/inst.hh"

namespace gals
{

class SnapshotWriter;
class SnapshotReader;

/**
 * Rename unit: RAT + free lists + epochs.
 */
class RenameUnit
{
  public:
    RenameUnit(unsigned numIntPhys, unsigned numFpPhys);

    /** Can an instruction with this destination class rename now? */
    bool canRename(const DynInst &inst) const;

    /**
     * Rename @p inst in place: translate sources through the RAT
     * (capturing epochs), allocate a destination physical register and
     * remember the previous mapping for commit-time freeing.
     * @pre canRename(inst)
     */
    void rename(DynInst &inst);

    /** Commit: release the destination's previous physical register. */
    void commitFree(const DynInst &inst);

    /** Squash: release the register the instruction allocated. */
    void squashFree(const DynInst &inst);

    /** Save the RAT (call right after renaming a branch). */
    void checkpoint(InstSeqNum branchSeq);

    /** Restore the checkpointed RAT (mispredict recovery). */
    void restore(InstSeqNum branchSeq);

    /** Drop the checkpoint without restoring (branch was flushed or
     *  committed). No-op if none is live. */
    void discardCheckpoint();

    bool hasCheckpoint() const { return checkpointValid_; }

    /** Current allocation epoch of a physical register. */
    std::uint32_t
    epochOf(PhysRegId reg) const
    {
        return allocEpoch_[reg];
    }

    /** @name Occupancy, for the paper's RAT-occupancy statistic */
    /// @{
    unsigned intRegsInUse() const
    {
        return numIntPhys_ - static_cast<unsigned>(freeInt_.size());
    }
    unsigned fpRegsInUse() const
    {
        return numFpPhys_ - static_cast<unsigned>(freeFp_.size());
    }
    /** Registers beyond the architectural mapping (speculative). */
    unsigned intRenamesInFlight() const
    {
        return intRegsInUse() - numArchIntRegs;
    }
    unsigned fpRenamesInFlight() const
    {
        return fpRegsInUse() - numArchFpRegs;
    }
    unsigned freeIntRegs() const
    {
        return static_cast<unsigned>(freeInt_.size());
    }
    unsigned freeFpRegs() const
    {
        return static_cast<unsigned>(freeFp_.size());
    }
    /// @}

    /** Physical register currently mapped to an architectural one. */
    PhysRegId
    mapOf(RegId arch) const
    {
        return rat_[arch];
    }

    unsigned totalPhysRegs() const { return numIntPhys_ + numFpPhys_; }

    /** @name Warm-state snapshot (core/snapshot.hh)
     *
     * RAT, free lists and allocation epochs. Only legal at a
     * quiescent point: save refuses (fails the writer's invariants
     * via assertion) while a checkpoint is live, and restore leaves
     * the checkpoint state empty.
     */
    /// @{
    void snapshotSave(SnapshotWriter &w) const;
    void snapshotRestore(SnapshotReader &r);
    /// @}

  private:
    bool needsFpDest(const DynInst &inst) const;

    unsigned numIntPhys_;
    unsigned numFpPhys_;
    std::vector<PhysRegId> rat_;         ///< arch -> phys
    std::vector<PhysRegId> freeInt_;
    std::vector<PhysRegId> freeFp_;
    std::vector<std::uint32_t> allocEpoch_;

    bool checkpointValid_ = false;
    InstSeqNum checkpointSeq_ = 0;
    std::vector<PhysRegId> checkpointRat_;
};

} // namespace gals

#endif // CPU_RENAME_HH
