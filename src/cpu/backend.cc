#include "cpu/backend.hh"

#include "cpu/stage_util.hh"
#include "sim/logging.hh"

namespace gals
{

namespace
{

const char *
execName(ExecKind k)
{
    switch (k) {
      case ExecKind::intCluster:
        return "int_iq";
      case ExecKind::fpCluster:
        return "fp_iq";
      case ExecKind::memCluster:
        return "mem_iq";
    }
    return "?";
}

unsigned
queueCapacity(ExecKind k, const CoreConfig &cfg)
{
    switch (k) {
      case ExecKind::intCluster:
        return cfg.intQueueSize;
      case ExecKind::fpCluster:
        return cfg.fpQueueSize;
      case ExecKind::memCluster:
        return cfg.memQueueSize;
    }
    return 0;
}

FuPool
makeFuPool(ExecKind k, const CoreConfig &cfg)
{
    switch (k) {
      case ExecKind::intCluster:
        return FuPool(cfg.intAlus, cfg.intMuls, 0);
      case ExecKind::fpCluster:
        return FuPool(cfg.fpAlus, cfg.fpMuls, 0);
      case ExecKind::memCluster:
        return FuPool(0, 0, cfg.memPorts);
    }
    gals_panic("bad exec kind");
}

} // namespace

ExecDomain::ExecDomain(ExecKind kind, const CoreConfig &cfg,
                       ClockDomain &domain, EnergyAccount &energy,
                       Channel<DynInstPtr> &dispatchIn,
                       std::vector<Channel<WakeupMsg> *> wakeupIns,
                       std::vector<Channel<WakeupMsg> *> wakeupOuts,
                       Channel<CompleteMsg> &completeOut,
                       Channel<RedirectMsg> *redirectOut,
                       Channel<StoreCommitMsg> *storeCommitIn,
                       CacheHierarchy *hier)
    : kind_(kind), cfg_(cfg), domain_(domain), energy_(energy),
      dispatchIn_(dispatchIn), wakeupIns_(std::move(wakeupIns)),
      wakeupOuts_(std::move(wakeupOuts)), completeOut_(completeOut),
      redirectOut_(redirectOut), storeCommitIn_(storeCommitIn),
      hier_(hier), scoreboard_(cfg.totalPhysRegs()),
      iq_(execName(kind), queueCapacity(kind, cfg), scoreboard_),
      fu_(makeFuPool(kind, cfg)), lsq_(cfg.lsqSize)
{
    if (kind_ == ExecKind::memCluster)
        gals_assert(hier_ != nullptr, "mem cluster needs a hierarchy");
    if (kind_ == ExecKind::intCluster)
        gals_assert(redirectOut_ != nullptr,
                    "int cluster needs the redirect channel");
    // Stage logic runs at priority 10, ahead of the per-domain energy
    // close-out ticker (priority 90).
    domain_.addTicker(*this, 10);
}

unsigned
ExecDomain::issueWidth() const
{
    switch (kind_) {
      case ExecKind::intCluster:
        return cfg_.intIssueWidth;
      case ExecKind::fpCluster:
        return cfg_.fpIssueWidth;
      case ExecKind::memCluster:
        return cfg_.memIssueWidth;
    }
    return 0;
}

Unit
ExecDomain::queueUnit() const
{
    switch (kind_) {
      case ExecKind::intCluster:
        return Unit::intIssueQueue;
      case ExecKind::fpCluster:
        return Unit::fpIssueQueue;
      case ExecKind::memCluster:
        return Unit::memIssueQueue;
    }
    return Unit::intIssueQueue;
}

void
ExecDomain::localWakeup(PhysRegId reg, std::uint32_t epoch)
{
    scoreboard_.observe(reg, epoch);
    iq_.wakeup(reg, epoch);
    energy_.chargeAccess(queueUnit());
}

void
ExecDomain::drainWakeups()
{
    for (auto *ch : wakeupIns_) {
        while (!ch->empty()) {
            const WakeupMsg m = ch->front();
            ch->pop();
            localWakeup(m.reg, m.epoch);
        }
    }
}

void
ExecDomain::broadcastWakeup(const DynInstPtr &inst)
{
    if (inst->physDest == invalidPhysReg)
        return;
    for (auto *ch : wakeupOuts_) {
        // Wakeup channels are sized so they cannot fill in practice;
        // losing a wakeup would wedge the machine.
        gals_assert(!ch->full(), "wakeup channel '", ch->name(),
                    "' overflow");
        ch->push(WakeupMsg{inst->physDest, inst->destEpoch, inst->seq});
    }
}

unsigned
ExecDomain::execLatencyCycles(const DynInstPtr &inst)
{
    if (kind_ != ExecKind::memCluster)
        return instLatency(inst->cls);

    // Memory cluster: one address-generation cycle, then the cache.
    if (inst->isStore())
        return 1; // data written at commit

    gals_assert(inst->isLoad(), "non-memory op in mem cluster");
    if (lsq_.loadForwards(inst))
        return 2; // agen + forward from the store queue

    energy_.chargeAccess(Unit::dcache);
    const MemAccessOutcome oc = hier_->dataAccess(inst->memAddr, false);
    energy_.chargeAccess(Unit::l2cache, oc.l2Accesses);

    const auto &hc = hier_->config();
    unsigned lat = 1 + hc.dl1Latency;
    if (oc.level >= 2)
        lat += hc.l2Latency;
    if (oc.level >= 3)
        lat += hc.memLatency;
    return lat;
}

void
ExecDomain::processCompletions(Tick now)
{
    while (!completions_.empty() && completions_.top().when <= now) {
        DynInstPtr inst = completions_.top().inst;
        completions_.pop();

        if (inst->squashed)
            continue;

        inst->completed = true;
        inst->completeTick = now;
        ++completed_;

        if (inst->physDest != invalidPhysReg) {
            // Register write + result bus + wakeups.
            energy_.chargeAccess(inst->isFp() ? Unit::regfileFp
                                              : Unit::regfileInt);
            energy_.chargeImmediate(Unit::resultBus, 1, domain_.vdd());
            localWakeup(inst->physDest, inst->destEpoch);
            broadcastWakeup(inst);
        }

        if (kind_ == ExecKind::memCluster && inst->isLoad())
            lsq_.removeLoad(inst->seq);

        gals_assert(!completeOut_.full(), "completion channel overflow");
        completeOut_.push(CompleteMsg{inst->seq});

        if (kind_ == ExecKind::intCluster && inst->mispredicted &&
            !inst->wrongPath) {
            gals_assert(!redirectOut_->full(),
                        "redirect channel overflow");
            redirectOut_->push(RedirectMsg{inst->seq});
        }
    }
}

void
ExecDomain::insertDispatched(Tick now)
{
    while (!dispatchIn_.empty() && !iq_.full()) {
        if (kind_ == ExecKind::memCluster && lsq_.full())
            break;
        DynInstPtr inst = popInst(dispatchIn_, now);
        iq_.insert(inst);
        energy_.chargeAccess(queueUnit());
        if (kind_ == ExecKind::memCluster)
            lsq_.insert(inst);
    }
}

void
ExecDomain::issue(Tick now)
{
    // The selection callback both checks and consumes the unit, so a
    // wide selection cannot oversubscribe the pool. Unpipelined units
    // reserve for the class's static latency (loads are pipelined
    // behind the cache ports, so their variable latency is irrelevant
    // to the reservation).
    auto fu_ok = [this](const DynInst &inst) {
        if (!fu_.available(inst.cls))
            return false;
        fu_.allocate(inst.cls,
                     domain_.cycle() + instLatency(inst.cls));
        return true;
    };

    const auto selected = iq_.selectIssue(issueWidth(), fu_ok);
    for (const DynInstPtr &inst : selected) {
        const unsigned lat = execLatencyCycles(inst);
        inst->issueTick = now;
        const Tick done = now + static_cast<Tick>(lat) * domain_.period();
        completions_.push(Completion{done, inst});
        ++issued_;

        // Operand reads and the execution itself.
        for (unsigned i = 0; i < inst->numSrcs; ++i) {
            energy_.chargeAccess(isFpReg(inst->srcs[i])
                                     ? Unit::regfileFp
                                     : Unit::regfileInt);
        }
        switch (kind_) {
          case ExecKind::intCluster:
            energy_.chargeAccess(Unit::intAlu);
            break;
          case ExecKind::fpCluster:
            energy_.chargeAccess(Unit::fpAlu);
            break;
          case ExecKind::memCluster:
            energy_.chargeAccess(Unit::lsq);
            break;
        }
    }
}

void
ExecDomain::handleStoreCommits()
{
    if (storeCommitIn_ == nullptr)
        return;
    while (!storeCommitIn_->empty()) {
        const StoreCommitMsg m = storeCommitIn_->front();
        storeCommitIn_->pop();
        energy_.chargeAccess(Unit::dcache);
        const MemAccessOutcome oc =
            hier_->dataAccess(m.inst->memAddr, true);
        energy_.chargeAccess(Unit::l2cache, oc.l2Accesses);
        lsq_.removeStore(m.inst->seq);
    }
}

void
ExecDomain::tick()
{
    const Tick now = domain_.eventQueue().now();
    fu_.newCycle(domain_.cycle());

    drainWakeups();
    processCompletions(now);
    handleStoreCommits();
    insertDispatched(now);
    issue(now);

    ++occSamples_;
    occSum_ += iq_.size();
}

void
ExecDomain::squashAfter(InstSeqNum afterSeq)
{
    iq_.squashAfter(afterSeq);
    if (kind_ == ExecKind::memCluster)
        lsq_.squashAfter(afterSeq);
    // Completion-heap entries carry the shared DynInst, whose squashed
    // flag is set by the ROB walk; processCompletions drops them.
}

double
ExecDomain::avgQueueOccupancy() const
{
    return occSamples_ ? double(occSum_) / double(occSamples_) : 0.0;
}

} // namespace gals
