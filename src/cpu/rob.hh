/**
 * @file
 * Reorder buffer: in-order window of in-flight instructions; supports
 * in-order commit from the head and squash-from-tail on misprediction
 * recovery.
 */

#ifndef CPU_ROB_HH
#define CPU_ROB_HH

#include <deque>
#include <functional>

#include "isa/dyn_inst.hh"

namespace gals
{

/**
 * The reorder buffer (domain 2 in the GALS machine).
 */
class Rob
{
  public:
    explicit Rob(unsigned capacity);

    bool full() const { return q_.size() >= capacity_; }
    bool empty() const { return q_.empty(); }
    unsigned size() const { return static_cast<unsigned>(q_.size()); }
    unsigned capacity() const { return capacity_; }

    /** Insert at the tail (program order). */
    void insert(const DynInstPtr &inst);

    /** Oldest instruction; @pre !empty(). */
    const DynInstPtr &head() const;

    /** Remove the head (commit); @pre !empty(). */
    void popHead();

    /** Mark an in-flight instruction completed; false if not found. */
    bool markCompleted(InstSeqNum seq);

    /**
     * Remove every instruction younger than @p afterSeq, youngest
     * first, invoking @p onSquash for each (used to release rename
     * registers). @return number squashed.
     */
    unsigned squashAfter(InstSeqNum afterSeq,
                         const std::function<void(DynInst &)> &onSquash);

  private:
    unsigned capacity_;
    std::deque<DynInstPtr> q_;
};

} // namespace gals

#endif // CPU_ROB_HH
