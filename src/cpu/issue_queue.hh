/**
 * @file
 * Out-of-order issue queue (one of three: int / fp / mem, paper Table
 * 3). Entries wait for their source operands to become ready in the
 * owning domain's scoreboard view and issue oldest-first.
 */

#ifndef CPU_ISSUE_QUEUE_HH
#define CPU_ISSUE_QUEUE_HH

#include <functional>
#include <string>
#include <vector>

#include "cpu/scoreboard.hh"
#include "isa/dyn_inst.hh"

namespace gals
{

/**
 * Age-ordered issue queue with per-operand ready bits.
 */
class IssueQueue
{
  public:
    IssueQueue(std::string name, unsigned capacity,
               const Scoreboard &view);

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    unsigned size() const
    {
        return static_cast<unsigned>(entries_.size());
    }
    unsigned capacity() const { return capacity_; }

    /** Insert at dispatch; readiness snapshot from the scoreboard. */
    void insert(const DynInstPtr &inst);

    /** A wakeup arrived: refresh matching operands' ready bits. */
    void wakeup(PhysRegId reg, std::uint32_t epoch);

    /**
     * Select up to @p width ready instructions, oldest first, subject
     * to @p fuAvailable (checked and consumed per candidate). Selected
     * entries are removed from the queue.
     */
    std::vector<DynInstPtr>
    selectIssue(unsigned width,
                const std::function<bool(const DynInst &)> &fuAvailable);

    /** Remove all entries younger than @p afterSeq. @return count. */
    unsigned squashAfter(InstSeqNum afterSeq);

    /** Number of wakeup-match operations (power accounting). */
    std::uint64_t wakeupMatches() const { return wakeupMatches_; }

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        DynInstPtr inst;
        bool ready[DynInst::maxSrcs];
        bool allReady;
    };

    void refreshReady(Entry &e) const;

    std::string name_;
    unsigned capacity_;
    const Scoreboard &view_;
    std::vector<Entry> entries_; ///< kept in age order
    std::uint64_t wakeupMatches_ = 0;
};

} // namespace gals

#endif // CPU_ISSUE_QUEUE_HH
