/**
 * @file
 * Microarchitectural configuration of the simulated core, matching
 * paper Table 3 by default: 4-wide fetch/decode, issue queues of
 * 20/16/16 entries (int/fp/mem), 72 integer + 72 floating-point
 * physical registers, 4 integer + 4 FP ALUs, and the Table 3 cache
 * hierarchy.
 */

#ifndef CPU_CORE_CONFIG_HH
#define CPU_CORE_CONFIG_HH

#include <cstdint>

#include "bpred/bpred.hh"
#include "cache/hierarchy.hh"

namespace gals
{

/**
 * Structural defaults shared across configuration structs. Single
 * source of truth: CoreConfig (below), ProcessorConfig
 * (core/processor.hh) and FabricConfig (fabric/fabric_config.hh) all
 * initialize from these constants instead of repeating the literals,
 * so the coupled knobs cannot drift apart.
 */
namespace defaults
{
/** Nominal clock period in ticks (1000 ps = 1 GHz). */
constexpr std::uint64_t nominalPeriod = 1000;
/** Fetch queue entries between the fetch and decode domains. */
constexpr unsigned fetchQueueSize = 8;
/** Capacity of instruction-carrying inter-domain FIFOs. */
constexpr unsigned instFifoCapacity = 24;
/** Capacity of message FIFOs (wakeups, completions, ...). */
constexpr unsigned msgFifoCapacity = 4096;
/** Synchronizer depth of the asynchronous FIFOs (edges). */
constexpr unsigned syncEdges = 3;
/** Abort when no instruction commits for this many nominal cycles. */
constexpr std::uint64_t watchdogCycles = 500000;
} // namespace defaults

/** Widths, structure sizes and functional-unit counts of the core. */
struct CoreConfig
{
    /** @name Pipeline widths (instructions per cycle) */
    /// @{
    unsigned fetchWidth = 4;   ///< Table 3: fetch rate 4 inst/cycle
    unsigned decodeWidth = 4;  ///< Table 3: decode rate 4 inst/cycle
    unsigned dispatchWidth = 4;
    unsigned commitWidth = 4;
    unsigned intIssueWidth = 4;
    unsigned fpIssueWidth = 4;
    unsigned memIssueWidth = 2;
    /// @}

    /** @name Queue / structure sizes */
    /// @{
    unsigned fetchQueueSize = defaults::fetchQueueSize;
    unsigned intQueueSize = 20;  ///< Table 3
    unsigned fpQueueSize = 16;   ///< Table 3
    unsigned memQueueSize = 16;  ///< Table 3
    unsigned robSize = 80;
    unsigned lsqSize = 32;
    unsigned numIntPhysRegs = 72; ///< Table 3
    unsigned numFpPhysRegs = 72;  ///< Table 3
    /// @}

    /** @name Functional units */
    /// @{
    unsigned intAlus = 4;  ///< Table 3
    unsigned fpAlus = 4;   ///< Table 3
    unsigned intMuls = 1;  ///< shared multiply/divide unit
    unsigned fpMuls = 1;   ///< shared fp multiply/divide unit
    unsigned memPorts = 2; ///< D-cache ports
    /// @}

    /** Decode depth in domain-2 cycles between fetch queue and
     *  dispatch (paper Table 2 stages 2-4). */
    unsigned decodePipeDepth = 2;

    BranchUnit::Config bpred;
    HierarchyConfig caches;

    /** Total physical registers (int + fp), for scoreboard sizing. */
    unsigned
    totalPhysRegs() const
    {
        return numIntPhysRegs + numFpPhysRegs;
    }

    /** Sanity checks; fatal on nonsense. */
    void validate() const;
};

} // namespace gals

#endif // CPU_CORE_CONFIG_HH
