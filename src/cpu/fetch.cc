#include "cpu/fetch.hh"

#include "sim/logging.hh"

namespace gals
{

FetchStage::FetchStage(const CoreConfig &cfg, ClockDomain &domain,
                       ClockDomain &memDomain, StreamGenerator &gen,
                       CacheHierarchy &hier, EnergyAccount &energy,
                       Channel<DynInstPtr> &out,
                       Channel<RedirectMsg> &redirectIn,
                       Channel<BpredUpdateMsg> &bpredUpdateIn,
                       bool galsMode, unsigned syncEdges)
    : cfg_(cfg), domain_(domain), memDomain_(memDomain), gen_(gen),
      hier_(hier), energy_(energy), bpred_(cfg.bpred), out_(out),
      redirectIn_(redirectIn), bpredUpdateIn_(bpredUpdateIn),
      galsMode_(galsMode), syncEdges_(syncEdges)
{
    // Stage logic runs at priority 10, ahead of the per-domain energy
    // close-out ticker (priority 90).
    domain_.addTicker(*this, 10);
}

DynInstPtr
FetchStage::makeInst(const GenInst &gi, bool wrong_path)
{
    auto inst = std::make_shared<DynInst>();
    inst->seq = nextSeq_++;
    inst->pc = gi.pc;
    inst->cls = gi.cls;
    inst->numSrcs = gi.numSrcs;
    for (unsigned i = 0; i < gi.numSrcs; ++i)
        inst->srcs[i] = gi.srcs[i];
    inst->dest = gi.dest;
    inst->actualTaken = gi.taken;
    inst->actualTarget = gi.target;
    inst->memAddr = gi.memAddr;
    inst->wrongPath = wrong_path;
    inst->fetchTick = domain_.eventQueue().now();
    if (!wrong_path)
        inst->index = gen_.generated() - 1;
    return inst;
}

Tick
FetchStage::missStallTicks(const MemAccessOutcome &out) const
{
    if (out.level <= 1)
        return 0;
    const auto &hc = hier_.config();
    Tick t = static_cast<Tick>(hc.l2Latency) * memDomain_.period();
    if (out.level >= 3)
        t += static_cast<Tick>(hc.memLatency) * memDomain_.period();
    if (galsMode_) {
        // The refill request and response each synchronize into the
        // other clock domain (fetch -> mem, mem -> fetch).
        t += static_cast<Tick>(syncEdges_) *
             (memDomain_.period() + domain_.period());
    }
    return t;
}

void
FetchStage::tick()
{
    const Tick now = domain_.eventQueue().now();

    // Commit-time predictor training arriving from domain 2.
    while (!bpredUpdateIn_.empty()) {
        const BpredUpdateMsg m = bpredUpdateIn_.front();
        bpredUpdateIn_.pop();
        bpred_.update(m.pc, m.cls, m.taken, m.target);
        energy_.chargeAccess(Unit::bpred);
    }

    // Branch redirect: squash everything younger than the branch and
    // resume correct-path fetch.
    while (!redirectIn_.empty()) {
        const RedirectMsg m = redirectIn_.front();
        redirectIn_.pop();
        ++redirects_;
        gals_assert(wrongPathMode_, "redirect while on correct path");
        if (squashFn_)
            squashFn_(m.branchSeq);
        wrongPathMode_ = false;
        if (pending_ && pending_->wrongPath)
            pending_.reset();
        stallUntil_ = 0;
    }

    if (now < stallUntil_) {
        ++stallCycles_;
        return;
    }

    // Remote-completion dependency (fabric NIC window full, etc.).
    if (externalStall_ && externalStall_())
        return;

    std::uint64_t last_line = ~std::uint64_t(0);
    for (unsigned n = 0; n < cfg_.fetchWidth; ++n) {
        if (out_.full())
            break;

        DynInstPtr inst;
        if (pending_) {
            inst = pending_;
            pending_.reset();
        } else if (wrongPathMode_) {
            inst = makeInst(gen_.wrongPath(wpPc_), true);
        } else {
            if (gen_.generated() >= fetchLimit_)
                break; // drain mode: no new correct-path work
            inst = makeInst(gen_.next(), false);
        }

        // One I-cache access per distinct line touched this cycle.
        const std::uint64_t line = inst->pc / 32;
        if (line != last_line) {
            energy_.chargeAccess(Unit::icache);
            const MemAccessOutcome oc = hier_.instFetch(inst->pc);
            energy_.chargeAccess(Unit::l2cache, oc.l2Accesses);
            if (oc.level > 1) {
                // Miss: hold this instruction until the refill returns.
                pending_ = inst;
                stallUntil_ = now + missStallTicks(oc);
                break;
            }
            last_line = line;
        }

        bool end_group = false;
        if (inst->isBranch()) {
            const BranchPrediction p =
                bpred_.predict(inst->pc, inst->cls, !inst->wrongPath);
            energy_.chargeAccess(Unit::bpred);
            inst->predTaken = p.taken;
            inst->predTarget = p.target;
            inst->btbMiss = !p.btbHit;

            if (!inst->wrongPath) {
                const bool mispredict =
                    p.taken != inst->actualTaken ||
                    (p.taken && p.target != inst->actualTarget);
                if (mispredict) {
                    inst->mispredicted = true;
                    wrongPathMode_ = true;
                    wpPc_ = p.taken ? p.target : inst->pc + 4;
                }
            } else {
                // Wrong path: follow the front end's own prediction
                // through real code; a predicted-not-taken branch with
                // a known static target may still fall through.
                wpPc_ = p.taken ? gen_.wrapPc(p.target)
                                : inst->pc + 4;
            }
            // A predicted-taken branch ends the fetch group.
            end_group = p.taken;
        } else if (inst->wrongPath) {
            wpPc_ = inst->pc + 4;
        }

        ++fetched_;
        if (inst->wrongPath)
            ++wrongPathFetched_;
        out_.push(inst);

        if (end_group)
            break;
    }
}

} // namespace gals
