#include "cpu/decode.hh"

#include "cpu/stage_util.hh"
#include "sim/logging.hh"

namespace gals
{

DecodeCommitUnit::DecodeCommitUnit(
    const CoreConfig &cfg, ClockDomain &domain, EnergyAccount &energy,
    Channel<DynInstPtr> &fetchIn, Channel<DynInstPtr> &toInt,
    Channel<DynInstPtr> &toFp, Channel<DynInstPtr> &toMem,
    std::vector<Channel<CompleteMsg> *> completeIns,
    Channel<StoreCommitMsg> &storeCommitOut,
    Channel<BpredUpdateMsg> &bpredUpdateOut)
    : cfg_(cfg), domain_(domain), energy_(energy), fetchIn_(fetchIn),
      toInt_(toInt), toFp_(toFp), toMem_(toMem),
      completeIns_(std::move(completeIns)),
      storeCommitOut_(storeCommitOut), bpredUpdateOut_(bpredUpdateOut),
      rob_(cfg.robSize),
      rename_(cfg.numIntPhysRegs, cfg.numFpPhysRegs)
{
    // Stage logic runs at priority 10, ahead of the per-domain energy
    // close-out ticker (priority 90).
    domain_.addTicker(*this, 10);
}

Channel<DynInstPtr> &
DecodeCommitUnit::queueFor(const DynInst &inst)
{
    switch (instQueue(inst.cls)) {
      case IssueQueueId::intQueue:
        return toInt_;
      case IssueQueueId::fpQueue:
        return toFp_;
      case IssueQueueId::memQueue:
        return toMem_;
      default:
        gals_panic("bad issue queue id");
    }
}

void
DecodeCommitUnit::tick()
{
    const Tick now = domain_.eventQueue().now();

    // Completion notices from the execution domains.
    for (auto *ch : completeIns_) {
        while (!ch->empty()) {
            const CompleteMsg m = ch->front();
            ch->pop();
            // A completion may race a squash; a miss is harmless.
            rob_.markCompleted(m.seq);
            energy_.chargeAccess(Unit::rob);
        }
    }

    doCommit(now);
    doDecode(now);
    doDispatch(now);

    // Occupancy sampling (paper section 5.1's occupancy observations).
    ++occSamples_;
    robOccSum_ += rob_.size();
    intRenameSum_ += rename_.intRenamesInFlight();
    fpRenameSum_ += rename_.fpRenamesInFlight();
}

void
DecodeCommitUnit::doCommit(Tick now)
{
    for (unsigned n = 0; n < cfg_.commitWidth && !rob_.empty(); ++n) {
        const DynInstPtr &head = rob_.head();
        if (!head->completed || head->wrongPath)
            break;
        if (head->isStore() && storeCommitOut_.full())
            break; // cannot release the store this cycle

        head->commitTick = now;
        rename_.commitFree(*head);
        energy_.chargeAccess(Unit::rob);

        auto &cs = commitStats_;
        ++cs.committed;
        cs.lastCommitTick = now;
        cs.slipSumTicks += static_cast<double>(head->slip());
        cs.fifoSlipSumTicks += static_cast<double>(head->fifoResidency);

        if (head->isBranch()) {
            ++cs.committedBranches;
            if (head->mispredicted)
                ++cs.committedMispredicts;
            if (!bpredUpdateOut_.full()) {
                bpredUpdateOut_.push(BpredUpdateMsg{
                    head->pc, head->cls, head->actualTaken,
                    head->actualTarget});
            }
        }
        if (head->isLoad())
            ++cs.committedLoads;
        if (head->isStore()) {
            ++cs.committedStores;
            storeCommitOut_.push(StoreCommitMsg{head});
        }

        rob_.popHead();
    }
}

void
DecodeCommitUnit::doDecode(Tick now)
{
    (void)now;
    const Cycle cycle = domain_.cycle();
    const std::size_t pipe_cap =
        static_cast<std::size_t>(cfg_.decodeWidth) *
        (cfg_.decodePipeDepth + 1);

    for (unsigned n = 0; n < cfg_.decodeWidth; ++n) {
        if (fetchIn_.empty() || decodePipe_.size() >= pipe_cap)
            break;
        DynInstPtr inst = popInst(fetchIn_, domain_.eventQueue().now());
        inst->decodeTick = domain_.eventQueue().now();
        energy_.chargeAccess(Unit::decodeLogic);
        decodePipe_.push_back({inst, cycle + cfg_.decodePipeDepth});
    }
}

void
DecodeCommitUnit::doDispatch(Tick now)
{
    const Cycle cycle = domain_.cycle();
    bool stalled = false;

    for (unsigned n = 0; n < cfg_.dispatchWidth; ++n) {
        if (decodePipe_.empty() ||
            decodePipe_.front().readyCycle > cycle)
            break;

        DynInstPtr inst = decodePipe_.front().inst;
        if (rob_.full() || !rename_.canRename(*inst)) {
            stalled = true;
            break;
        }
        Channel<DynInstPtr> &q = queueFor(*inst);
        if (q.full()) {
            stalled = true;
            break;
        }

        decodePipe_.pop_front();

        rename_.rename(*inst);
        energy_.chargeAccess(Unit::renameTable);
        if (inst->mispredicted && !inst->wrongPath)
            rename_.checkpoint(inst->seq);

        inst->dispatchTick = now;
        rob_.insert(inst);
        energy_.chargeAccess(Unit::rob);
        q.push(inst);
        ++dispatched_;
    }

    if (stalled)
        ++stallCycles_;
}

void
DecodeCommitUnit::squashAfter(InstSeqNum afterSeq)
{
    // Drop younger instructions from the local pipe and channels.
    for (auto it = decodePipe_.begin(); it != decodePipe_.end();) {
        if (it->inst->seq > afterSeq) {
            it->inst->squashed = true;
            it = decodePipe_.erase(it);
        } else {
            ++it;
        }
    }

    // Restore the RAT, then release registers allocated by squashed
    // instructions (walked youngest-first off the ROB tail).
    if (rename_.hasCheckpoint())
        rename_.restore(afterSeq);
    rob_.squashAfter(afterSeq, [this](DynInst &inst) {
        rename_.squashFree(inst);
    });
}

double
DecodeCommitUnit::avgRobOccupancy() const
{
    return occSamples_ ? double(robOccSum_) / double(occSamples_) : 0.0;
}

double
DecodeCommitUnit::avgIntRenames() const
{
    return occSamples_ ? double(intRenameSum_) / double(occSamples_)
                       : 0.0;
}

double
DecodeCommitUnit::avgFpRenames() const
{
    return occSamples_ ? double(fpRenameSum_) / double(occSamples_) : 0.0;
}

} // namespace gals
