#include "stats/stats.hh"

#include <algorithm>
#include <iomanip>
#include <utility>

#include "sim/logging.hh"

namespace gals::stats
{

namespace
{

void
emitLine(std::ostream &os, const std::string &name, double value,
         const std::string &desc)
{
    os << std::left << std::setw(44) << name << " " << std::setw(16)
       << std::setprecision(8) << value;
    if (!desc.empty())
        os << " # " << desc;
    os << "\n";
}

} // namespace

Stat::Stat(StatGroup *parent, std::string name, std::string desc)
    : parent_(parent), name_(std::move(name)), desc_(std::move(desc))
{
    gals_assert(parent_ != nullptr, "stat '", name_, "' needs a group");
    parent_->addStat(this);
}

Stat::~Stat()
{
    parent_->removeStat(this);
}

std::string
Stat::fullName() const
{
    const std::string prefix = parent_->fullName();
    return prefix.empty() ? name_ : prefix + "." + name_;
}

Scalar::Scalar(StatGroup *parent, std::string name, std::string desc)
    : Stat(parent, std::move(name), std::move(desc))
{
}

void
Scalar::dump(std::ostream &os) const
{
    emitLine(os, fullName(), value_, desc_);
}

Average::Average(StatGroup *parent, std::string name, std::string desc)
    : Stat(parent, std::move(name), std::move(desc))
{
}

void
Average::sample(double v)
{
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
Average::dump(std::ostream &os) const
{
    emitLine(os, fullName() + "::mean", mean(), desc_);
    emitLine(os, fullName() + "::count", static_cast<double>(count_), "");
    emitLine(os, fullName() + "::min", min(), "");
    emitLine(os, fullName() + "::max", max(), "");
}

void
Average::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, double lo, double hi,
                           unsigned buckets)
    : Stat(parent, std::move(name), std::move(desc)), lo_(lo), hi_(hi),
      width_((hi - lo) / buckets), buckets_(buckets, 0)
{
    gals_assert(hi > lo && buckets > 0, "bad distribution bounds for '",
                this->name(), "'");
}

void
Distribution::sample(double v, std::uint64_t n)
{
    count_ += n;
    sum_ += v * n;
    if (v < lo_) {
        underflow_ += n;
    } else if (v >= hi_) {
        overflow_ += n;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= buckets_.size()) // float edge case at hi boundary
            idx = buckets_.size() - 1;
        buckets_[idx] += n;
    }
}

void
Distribution::dump(std::ostream &os) const
{
    emitLine(os, fullName() + "::mean", mean(), desc_);
    emitLine(os, fullName() + "::count", static_cast<double>(count_), "");
    emitLine(os, fullName() + "::underflow",
             static_cast<double>(underflow_), "");
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double b_lo = lo_ + width_ * static_cast<double>(i);
        emitLine(os,
                 fullName() + "::" + std::to_string(b_lo),
                 static_cast<double>(buckets_[i]), "");
    }
    emitLine(os, fullName() + "::overflow",
             static_cast<double>(overflow_), "");
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0.0;
}

Formula::Formula(StatGroup *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : Stat(parent, std::move(name), std::move(desc)), fn_(std::move(fn))
{
}

void
Formula::dump(std::ostream &os) const
{
    emitLine(os, fullName(), value(), desc_);
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_ != nullptr)
        parent_->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_ != nullptr)
        parent_->removeChild(this);
}

void
StatGroup::removeStat(Stat *s)
{
    stats_.erase(std::remove(stats_.begin(), stats_.end(), s),
                 stats_.end());
}

void
StatGroup::removeChild(StatGroup *g)
{
    children_.erase(std::remove(children_.begin(), children_.end(), g),
                    children_.end());
}

std::string
StatGroup::fullName() const
{
    if (parent_ == nullptr)
        return name_;
    const std::string prefix = parent_->fullName();
    return prefix.empty() ? name_ : prefix + "." + name_;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Stat *s : stats_)
        s->dump(os);
    for (const StatGroup *g : children_)
        g->dump(os);
}

void
StatGroup::resetStats()
{
    for (Stat *s : stats_)
        s->reset();
    for (StatGroup *g : children_)
        g->resetStats();
}

Stat *
StatGroup::find(const std::string &path)
{
    const auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (Stat *s : stats_)
            if (s->name() == path)
                return s;
        return nullptr;
    }
    const std::string head = path.substr(0, dot);
    const std::string rest = path.substr(dot + 1);
    for (StatGroup *g : children_)
        if (g->name() == head)
            return g->find(rest);
    return nullptr;
}

} // namespace gals::stats
