/**
 * @file
 * Lightweight statistics package, gem5-flavoured.
 *
 * Stats register themselves with a StatGroup at construction; groups
 * nest to form a tree. dump() renders "name value # description" lines
 * like gem5's stats.txt so the bench harnesses can diff runs easily.
 */

#ifndef STATS_STATS_HH
#define STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace gals::stats
{

class StatGroup;

/** Base class for all statistics. */
class Stat
{
  public:
    /**
     * @note The parent group must outlive the stat; declare the
     *       StatGroup member before any Stat members.
     */
    Stat(StatGroup *parent, std::string name, std::string desc);
    virtual ~Stat();

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Fully qualified dotted name including group path. */
    std::string fullName() const;

    /** Emit one or more "name value # desc" lines. */
    virtual void dump(std::ostream &os) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  protected:
    StatGroup *parent_;
    std::string name_;
    std::string desc_;
};

/** Monotonic counter / settable scalar value. */
class Scalar : public Stat
{
  public:
    Scalar(StatGroup *parent, std::string name, std::string desc);

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    void dump(std::ostream &os) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Accumulates samples; reports mean, min, max and count. */
class Average : public Stat
{
  public:
    Average(StatGroup *parent, std::string name, std::string desc);

    void sample(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void dump(std::ostream &os) const override;
    void reset() override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bucket histogram over [lo, hi) with under/overflow buckets. */
class Distribution : public Stat
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double lo, double hi, unsigned buckets);

    void sample(double v, std::uint64_t n = 1);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }

    void dump(std::ostream &os) const override;
    void reset() override;

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0, overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** Value computed on demand from other stats. */
class Formula : public Stat
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_(); }

    void dump(std::ostream &os) const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics and child groups.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }
    std::string fullName() const;

    /** Recursively dump this group's stats then its children's. */
    void dump(std::ostream &os) const;

    /** Recursively reset. */
    void resetStats();

    const std::vector<Stat *> &statList() const { return stats_; }
    const std::vector<StatGroup *> &children() const { return children_; }

    /** Find a stat by dotted path relative to this group, or null. */
    Stat *find(const std::string &path);

  private:
    friend class Stat;
    void addStat(Stat *s) { stats_.push_back(s); }
    void removeStat(Stat *s);
    void addChild(StatGroup *g) { children_.push_back(g); }
    void removeChild(StatGroup *g);

    std::string name_;
    StatGroup *parent_;
    std::vector<Stat *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace gals::stats

#endif // STATS_STATS_HH
