#include "sim/event_queue.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <utility>

#include "sim/logging.hh"

namespace gals
{

namespace
{

constexpr QueueEngine builtinDefaultEngine =
#ifdef GALSSIM_HEAP_EVENTQUEUE
    QueueEngine::heap;
#else
    QueueEngine::calendar;
#endif

std::atomic<QueueEngine> g_defaultEngine{builtinDefaultEngine};

} // namespace

QueueEngine
parseQueueEngine(const std::string &name)
{
    if (name == "calendar")
        return QueueEngine::calendar;
    if (name == "heap")
        return QueueEngine::heap;
    gals_fatal("unknown event-queue engine '", name,
               "' (expected calendar or heap)");
}

const char *
queueEngineName(QueueEngine engine)
{
    return engine == QueueEngine::calendar ? "calendar" : "heap";
}

Event::Event(std::string name, int priority)
    : name_(std::move(name)), priority_(priority)
{
}

Event::Event(std::string name, int priority, bool periodic)
    : name_(std::move(name)), priority_(priority), periodic_(periodic)
{
}

Event::~Event()
{
    if (scheduled())
        queue_->deschedule(this);
}

CallbackEvent::CallbackEvent(std::function<void()> fn, std::string name,
                             int priority)
    : Event(std::move(name), priority), fn_(std::move(fn))
{
}

void
CallbackEvent::process()
{
    fn_();
}

PeriodicEvent::PeriodicEvent(std::function<void()> fn, Tick period,
                             std::string name, int priority)
    : Event(std::move(name), priority, true), fn_(std::move(fn)),
      period_(period)
{
    gals_assert(period > 0, "periodic event '", this->name(),
                "' needs a positive period");
}

PeriodicEvent::PeriodicEvent(Tick period, std::string name, int priority)
    : Event(std::move(name), priority, true), period_(period)
{
    gals_assert(period > 0, "periodic event '", this->name(),
                "' needs a positive period");
}

void
PeriodicEvent::period(Tick p)
{
    gals_assert(p > 0, "periodic event '", name(),
                "' needs a positive period");
    period_ = p;
}

void
PeriodicEvent::process()
{
    // Rescheduling of the next occurrence is handled by the queue
    // after this returns, so the callback may freely change the
    // period or cancel the repeat. Typed subclasses override
    // process() and never touch fn_.
    fn_();
}

QueueEngine
EventQueue::defaultEngine()
{
    return g_defaultEngine.load(std::memory_order_relaxed);
}

void
EventQueue::setDefaultEngine(QueueEngine engine)
{
    g_defaultEngine.store(engine, std::memory_order_relaxed);
}

EventQueue::EventQueue(std::string name, QueueEngine engine)
    : name_(std::move(name)), engine_(engine)
{
    if (engine_ == QueueEngine::calendar)
        buckets_ = std::vector<Bucket>(calInitialBuckets);
}

EventQueue::~EventQueue()
{
    // Orphan any still-scheduled events so their destructors do not
    // touch a dead queue.
    if (engine_ == QueueEngine::heap) {
        for (Event *ev : set_)
            ev->queue_ = nullptr;
    } else {
        for (Bucket &b : buckets_)
            for (Event *ev = b.head(); ev != nullptr;
                 ev = Bucket::next(ev))
                ev->queue_ = nullptr;
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    gals_assert(ev != nullptr, "null event");
    gals_assert(!ev->scheduled(), "event '", ev->name(),
                "' is already scheduled");
    gals_assert(when >= now_, "event '", ev->name(),
                "' scheduled in the past (", when, " < ", now_, ")");
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->queue_ = this;
    ++size_;
    if (engine_ == QueueEngine::heap) {
        set_.insert(ev);
        return;
    }
    calInsert(ev);
    if (size_ > calGrowPerBucket * buckets_.size())
        calResize(buckets_.size() * 2);
}

void
EventQueue::schedulePeriodicRepeat(PeriodicEvent *ev)
{
    // The pop that just delivered this event vacated its slot, so
    // size_ returns to a level the previous grow check admitted —
    // skip the asserts (trivially true here) and the grow check.
    ev->when_ = now_ + ev->period();
    ev->seq_ = nextSeq_++;
    ev->queue_ = this;
    ++size_;
    if (engine_ == QueueEngine::heap) {
        set_.insert(ev);
        return;
    }
    calInsert(ev);
}

void
EventQueue::deschedule(Event *ev)
{
    gals_assert(ev != nullptr, "null event");
    gals_assert(ev->queue_ == this, "event '", ev->name(),
                "' is not scheduled on this queue");
    if (engine_ == QueueEngine::heap) {
        auto it = set_.find(ev);
        gals_assert(it != set_.end(), "scheduled event '", ev->name(),
                    "' missing from queue");
        set_.erase(it);
    } else {
        calRemove(ev);
    }
    --size_;
    if (engine_ == QueueEngine::calendar)
        calMaybeShrink();
    ev->queue_ = nullptr;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled())
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::calInsert(Event *ev)
{
    const std::size_t idx = bucketIndex(ev->when_);
    Bucket &b = buckets_[idx];
    ev->bucket_ = idx;

    // Keep the bucket sorted by (when, priority, seq). Scan from the
    // tail: clock-edge traffic inserts mostly at or near the end (new
    // events carry the largest seq, and times move forward).
    Event *pos = b.tail();
    const Less less;
    while (pos != nullptr && less(ev, pos))
        pos = Bucket::prev(pos);
    b.insertAfter(pos, ev);

    // A known minimum stays valid; it only changes if the new event
    // is cheaper. An unknown (nullptr) cache stays unknown — except
    // for a sole occupant, which is trivially the minimum (the case a
    // lone periodic clock hits on every reinsert).
    if (minCache_ != nullptr) {
        if (less(ev, minCache_))
            minCache_ = ev;
    } else if (size_ == 1) {
        minCache_ = ev;
    }
}

void
EventQueue::calRemove(Event *ev)
{
    // Repair the min cache before the links go away: events with
    // equal when() always share a bucket and buckets are sorted, so
    // when the minimum is removed and its successor carries the same
    // time, that successor is the new global minimum — the case that
    // makes same-tick batches O(1) per pop. A successor at a later
    // time proves nothing (another bucket may hold an earlier year),
    // so the cache falls back to "unknown".
    if (minCache_ == ev) {
        Event *succ = Bucket::next(ev);
        minCache_ =
            (succ != nullptr && succ->when_ == ev->when_) ? succ
                                                          : nullptr;
    }
    buckets_[ev->bucket_].unlink(ev);
}

Event *
EventQueue::calFindMin() const
{
    if (size_ == 0)
        return nullptr;
    if (minCache_ != nullptr)
        return minCache_;

    // Classic calendar-queue search: walk one wheel revolution
    // starting at the bucket covering now(), accepting the first
    // bucket head that falls inside its current-year window. Bucket
    // heads are bucket minima, and events with equal when() always
    // share a bucket, so the first hit is the global minimum.
    const std::size_t n = buckets_.size();
    const std::uint64_t vstart = now_ >> widthLog2_;
    for (std::size_t k = 0; k < n; ++k) {
        Event *h = buckets_[(vstart + k) & (n - 1)].head();
        if (h != nullptr && (h->when_ >> widthLog2_) == vstart + k) {
            minCache_ = h;
            return h;
        }
    }

    // Every pending event is more than a full revolution away:
    // direct search over the bucket minima. Distinct buckets never
    // tie on when(), so comparing times alone is deterministic.
    Event *best = nullptr;
    for (const Bucket &b : buckets_)
        if (b.head() != nullptr &&
            (best == nullptr || b.head()->when_ < best->when_))
            best = b.head();
    minCache_ = best;
    return best;
}

void
EventQueue::calResize(std::size_t newBuckets)
{
    // Unlink every event into one chain, then re-insert under the new
    // geometry. Pointers stay valid, so the min cache survives.
    Bucket all;
    Tick minWhen = maxTick;
    Tick maxWhen = 0;
    for (Bucket &b : buckets_) {
        for (Event *ev = b.head(); ev != nullptr; ev = Bucket::next(ev)) {
            minWhen = std::min(minWhen, ev->when_);
            maxWhen = std::max(maxWhen, ev->when_);
        }
        all.splice(b);
    }

    buckets_ = std::vector<Bucket>(newBuckets);

    // New width: the average inter-event gap (span / population)
    // rounded down to a power of two >= 1 tick, targeting ~1 event
    // per bucket-year while keeping the bucket index a shift+mask.
    if (size_ > 1 && maxWhen > minWhen) {
        const Tick gap =
            std::max<Tick>(1, (maxWhen - minWhen) / size_);
        widthLog2_ = std::bit_width(gap) - 1;
    }

    Event *saveMin = minCache_;
    while (Event *ev = all.popFront())
        calInsert(ev);
    minCache_ = saveMin;
}

void
EventQueue::calMaybeShrink()
{
    const std::size_t n = buckets_.size();
    if (n > calInitialBuckets && size_ < n / calShrinkDivisor)
        calResize(n / 2);
}

void
EventQueue::removeMin(Event *ev)
{
    if (engine_ == QueueEngine::heap)
        set_.erase(set_.begin());
    else
        calRemove(ev);
    --size_;
    if (engine_ == QueueEngine::calendar)
        calMaybeShrink();
}

Event *
EventQueue::popMin()
{
    Event *ev = peekMin();
    if (ev != nullptr)
        removeMin(ev);
    return ev;
}

Tick
EventQueue::nextEventTime() const
{
    const Event *ev = peekMin();
    return ev != nullptr ? ev->when_ : maxTick;
}

void
EventQueue::serviceEvent(Event *ev)
{
    gals_assert(ev->when_ >= now_, "event queue went backwards");
    now_ = ev->when_;
    ev->queue_ = nullptr;
    ++processed_;

    // Periodic events reschedule themselves after their callback,
    // unless the callback rescheduled them explicitly or cancelled
    // the repeat. The flag was latched at construction, so no RTTI
    // probe sits on the dispatch path.
    const bool periodic = ev->periodic_;
    ev->process();
    if (periodic && !ev->scheduled()) {
        auto *per = static_cast<PeriodicEvent *>(ev);
        if (per->repeatingNow())
            schedulePeriodicRepeat(per);
    }
}

bool
EventQueue::serviceOne()
{
    Event *ev = popMin();
    if (ev == nullptr)
        return false;
    serviceEvent(ev);
    return true;
}

std::uint64_t
EventQueue::serviceBatch(Event *first)
{
    // Drain the whole (when, priority) tie in one pop run: the min
    // cache is repaired in O(1) while same-tick successors remain
    // (see calRemove), so only the final pop of a batch pays a wheel
    // scan. Events scheduled by a callback at the same (when,
    // priority) carry larger seqs, sort behind the pending tie, and
    // are picked up by this same loop — element-wise identical to
    // servicing one event at a time.
    const Tick when = first->when_;
    const int pri = first->priority_;
    Event *ev = first;
    std::uint64_t n = 0;
    do {
        removeMin(ev);
        serviceEvent(ev);
        ++n;
        ev = peekMin();
    } while (ev != nullptr && ev->when_ == when &&
             ev->priority_ == pri);
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    for (Event *ev = peekMin();
         ev != nullptr && ev->when_ <= until; ev = peekMin())
        n += serviceBatch(ev);
    if (now_ < until)
        now_ = until;
    return n;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    for (Event *ev = peekMin(); ev != nullptr; ev = peekMin())
        n += serviceBatch(ev);
    return n;
}

} // namespace gals
