#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace gals
{

Event::Event(std::string name, int priority)
    : name_(std::move(name)), priority_(priority)
{
}

Event::~Event()
{
    if (scheduled())
        queue_->deschedule(this);
}

CallbackEvent::CallbackEvent(std::function<void()> fn, std::string name,
                             int priority)
    : Event(std::move(name), priority), fn_(std::move(fn))
{
}

void
CallbackEvent::process()
{
    fn_();
}

PeriodicEvent::PeriodicEvent(std::function<void()> fn, Tick period,
                             std::string name, int priority)
    : Event(std::move(name), priority), fn_(std::move(fn)), period_(period)
{
    gals_assert(period > 0, "periodic event '", this->name(),
                "' needs a positive period");
}

void
PeriodicEvent::period(Tick p)
{
    gals_assert(p > 0, "periodic event '", name(),
                "' needs a positive period");
    period_ = p;
}

void
PeriodicEvent::process()
{
    // Rescheduling of the next occurrence is handled by
    // EventQueue::serviceOne after this returns, so the callback may
    // freely change the period or cancel the repeat.
    fn_();
}

EventQueue::EventQueue(std::string name) : name_(std::move(name)) {}

EventQueue::~EventQueue()
{
    // Orphan any still-scheduled events so their destructors do not
    // touch a dead queue.
    for (Event *ev : queue_)
        ev->queue_ = nullptr;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    gals_assert(ev != nullptr, "null event");
    gals_assert(!ev->scheduled(), "event '", ev->name(),
                "' is already scheduled");
    gals_assert(when >= now_, "event '", ev->name(),
                "' scheduled in the past (", when, " < ", now_, ")");
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->queue_ = this;
    queue_.insert(ev);
}

void
EventQueue::deschedule(Event *ev)
{
    gals_assert(ev != nullptr, "null event");
    gals_assert(ev->queue_ == this, "event '", ev->name(),
                "' is not scheduled on this queue");
    auto it = queue_.find(ev);
    gals_assert(it != queue_.end(), "scheduled event '", ev->name(),
                "' missing from queue");
    queue_.erase(it);
    ev->queue_ = nullptr;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled())
        deschedule(ev);
    schedule(ev, when);
}

Tick
EventQueue::nextEventTime() const
{
    if (queue_.empty())
        return maxTick;
    return (*queue_.begin())->when();
}

bool
EventQueue::serviceOne()
{
    if (queue_.empty())
        return false;

    auto it = queue_.begin();
    Event *ev = *it;
    queue_.erase(it);

    gals_assert(ev->when() >= now_, "event queue went backwards");
    now_ = ev->when();
    ev->queue_ = nullptr;
    ++processed_;

    // Periodic events reschedule themselves after their callback,
    // unless the callback rescheduled them explicitly or cancelled the
    // repeat.
    auto *per = dynamic_cast<PeriodicEvent *>(ev);
    ev->process();
    if (per != nullptr && !per->scheduled()) {
        // cancelRepeat() may have been invoked from within process().
        if (per->repeatingNow())
            schedule(per, now_ + per->period());
    }
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (!queue_.empty() && nextEventTime() <= until) {
        serviceOne();
        ++n;
    }
    if (now_ < until)
        now_ = until;
    return n;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    while (serviceOne())
        ++n;
    return n;
}

} // namespace gals
