#include "sim/event_queue.hh"

#include <algorithm>
#include <atomic>
#include <utility>

#include "sim/logging.hh"

namespace gals
{

namespace
{

constexpr QueueEngine builtinDefaultEngine =
#ifdef GALSSIM_HEAP_EVENTQUEUE
    QueueEngine::heap;
#else
    QueueEngine::calendar;
#endif

std::atomic<QueueEngine> g_defaultEngine{builtinDefaultEngine};

} // namespace

QueueEngine
parseQueueEngine(const std::string &name)
{
    if (name == "calendar")
        return QueueEngine::calendar;
    if (name == "heap")
        return QueueEngine::heap;
    gals_fatal("unknown event-queue engine '", name,
               "' (expected calendar or heap)");
}

const char *
queueEngineName(QueueEngine engine)
{
    return engine == QueueEngine::calendar ? "calendar" : "heap";
}

Event::Event(std::string name, int priority)
    : name_(std::move(name)), priority_(priority)
{
}

Event::~Event()
{
    if (scheduled())
        queue_->deschedule(this);
}

CallbackEvent::CallbackEvent(std::function<void()> fn, std::string name,
                             int priority)
    : Event(std::move(name), priority), fn_(std::move(fn))
{
}

void
CallbackEvent::process()
{
    fn_();
}

PeriodicEvent::PeriodicEvent(std::function<void()> fn, Tick period,
                             std::string name, int priority)
    : Event(std::move(name), priority), fn_(std::move(fn)), period_(period)
{
    gals_assert(period > 0, "periodic event '", this->name(),
                "' needs a positive period");
}

void
PeriodicEvent::period(Tick p)
{
    gals_assert(p > 0, "periodic event '", name(),
                "' needs a positive period");
    period_ = p;
}

void
PeriodicEvent::process()
{
    // Rescheduling of the next occurrence is handled by
    // EventQueue::serviceOne after this returns, so the callback may
    // freely change the period or cancel the repeat.
    fn_();
}

QueueEngine
EventQueue::defaultEngine()
{
    return g_defaultEngine.load(std::memory_order_relaxed);
}

void
EventQueue::setDefaultEngine(QueueEngine engine)
{
    g_defaultEngine.store(engine, std::memory_order_relaxed);
}

EventQueue::EventQueue(std::string name, QueueEngine engine)
    : name_(std::move(name)), engine_(engine)
{
    if (engine_ == QueueEngine::calendar)
        buckets_.resize(calInitialBuckets);
}

EventQueue::~EventQueue()
{
    // Orphan any still-scheduled events so their destructors do not
    // touch a dead queue.
    if (engine_ == QueueEngine::heap) {
        for (Event *ev : set_)
            ev->queue_ = nullptr;
    } else {
        for (Bucket &b : buckets_)
            for (Event *ev = b.head; ev != nullptr; ev = ev->calNext_)
                ev->queue_ = nullptr;
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    gals_assert(ev != nullptr, "null event");
    gals_assert(!ev->scheduled(), "event '", ev->name(),
                "' is already scheduled");
    gals_assert(when >= now_, "event '", ev->name(),
                "' scheduled in the past (", when, " < ", now_, ")");
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->queue_ = this;
    ++size_;
    if (engine_ == QueueEngine::heap) {
        set_.insert(ev);
        return;
    }
    calInsert(ev);
    if (size_ > calGrowPerBucket * buckets_.size())
        calResize(buckets_.size() * 2);
}

void
EventQueue::deschedule(Event *ev)
{
    gals_assert(ev != nullptr, "null event");
    gals_assert(ev->queue_ == this, "event '", ev->name(),
                "' is not scheduled on this queue");
    if (engine_ == QueueEngine::heap) {
        auto it = set_.find(ev);
        gals_assert(it != set_.end(), "scheduled event '", ev->name(),
                    "' missing from queue");
        set_.erase(it);
    } else {
        calRemove(ev);
    }
    --size_;
    if (engine_ == QueueEngine::calendar)
        calMaybeShrink();
    ev->queue_ = nullptr;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled())
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::calInsert(Event *ev)
{
    const std::size_t idx = bucketIndex(ev->when_);
    Bucket &b = buckets_[idx];
    ev->bucket_ = idx;

    // Keep the bucket sorted by (when, priority, seq). Scan from the
    // tail: clock-edge traffic inserts mostly at or near the end (new
    // events carry the largest seq, and times move forward).
    Event *pos = b.tail;
    const Less less;
    while (pos != nullptr && less(ev, pos))
        pos = pos->calPrev_;

    ev->calPrev_ = pos;
    if (pos != nullptr) {
        ev->calNext_ = pos->calNext_;
        if (pos->calNext_ != nullptr)
            pos->calNext_->calPrev_ = ev;
        else
            b.tail = ev;
        pos->calNext_ = ev;
    } else {
        ev->calNext_ = b.head;
        if (b.head != nullptr)
            b.head->calPrev_ = ev;
        else
            b.tail = ev;
        b.head = ev;
    }

    // A known minimum stays valid; it only changes if the new event
    // is cheaper. An unknown (nullptr) cache stays unknown.
    if (minCache_ != nullptr && less(ev, minCache_))
        minCache_ = ev;
}

void
EventQueue::calRemove(Event *ev)
{
    Bucket &b = buckets_[ev->bucket_];
    if (ev->calPrev_ != nullptr)
        ev->calPrev_->calNext_ = ev->calNext_;
    else
        b.head = ev->calNext_;
    if (ev->calNext_ != nullptr)
        ev->calNext_->calPrev_ = ev->calPrev_;
    else
        b.tail = ev->calPrev_;
    ev->calPrev_ = nullptr;
    ev->calNext_ = nullptr;
    if (minCache_ == ev)
        minCache_ = nullptr;
}

Event *
EventQueue::calFindMin() const
{
    if (size_ == 0)
        return nullptr;
    if (minCache_ != nullptr)
        return minCache_;

    // Classic calendar-queue search: walk one wheel revolution
    // starting at the bucket covering now(), accepting the first
    // bucket head that falls inside its current-year window. Bucket
    // heads are bucket minima, and events with equal when() always
    // share a bucket, so the first hit is the global minimum.
    const std::size_t n = buckets_.size();
    const std::uint64_t vstart = now_ / width_;
    for (std::size_t k = 0; k < n; ++k) {
        Event *h = buckets_[(vstart + k) & (n - 1)].head;
        if (h != nullptr && h->when_ / width_ == vstart + k) {
            minCache_ = h;
            return h;
        }
    }

    // Every pending event is more than a full revolution away:
    // direct search over the bucket minima. Distinct buckets never
    // tie on when(), so comparing times alone is deterministic.
    Event *best = nullptr;
    for (const Bucket &b : buckets_)
        if (b.head != nullptr &&
            (best == nullptr || b.head->when_ < best->when_))
            best = b.head;
    minCache_ = best;
    return best;
}

void
EventQueue::calResize(std::size_t newBuckets)
{
    // Unlink every event into one chain, then re-insert under the new
    // geometry. Pointers stay valid, so the min cache survives.
    Event *all = nullptr;
    Tick minWhen = maxTick;
    Tick maxWhen = 0;
    for (Bucket &b : buckets_) {
        Event *ev = b.head;
        while (ev != nullptr) {
            Event *next = ev->calNext_;
            ev->calNext_ = all;
            all = ev;
            minWhen = std::min(minWhen, ev->when_);
            maxWhen = std::max(maxWhen, ev->when_);
            ev = next;
        }
        b.head = nullptr;
        b.tail = nullptr;
    }

    buckets_.assign(newBuckets, Bucket{});

    // New width: the average inter-event gap (span / population),
    // clamped to >= 1 tick, targeting ~1 event per bucket-year.
    if (size_ > 1 && maxWhen > minWhen)
        width_ = std::max<Tick>(1, (maxWhen - minWhen) / size_);

    Event *saveMin = minCache_;
    while (all != nullptr) {
        Event *next = all->calNext_;
        calInsert(all);
        all = next;
    }
    minCache_ = saveMin;
}

void
EventQueue::calMaybeShrink()
{
    const std::size_t n = buckets_.size();
    if (n > calInitialBuckets && size_ < n / calShrinkDivisor)
        calResize(n / 2);
}

Event *
EventQueue::popMin()
{
    if (size_ == 0)
        return nullptr;
    Event *ev;
    if (engine_ == QueueEngine::heap) {
        auto it = set_.begin();
        ev = *it;
        set_.erase(it);
    } else {
        ev = calFindMin();
        calRemove(ev);
    }
    --size_;
    if (engine_ == QueueEngine::calendar)
        calMaybeShrink();
    return ev;
}

Tick
EventQueue::nextEventTime() const
{
    if (size_ == 0)
        return maxTick;
    if (engine_ == QueueEngine::heap)
        return (*set_.begin())->when_;
    return calFindMin()->when_;
}

bool
EventQueue::serviceOne()
{
    Event *ev = popMin();
    if (ev == nullptr)
        return false;

    gals_assert(ev->when() >= now_, "event queue went backwards");
    now_ = ev->when();
    ev->queue_ = nullptr;
    ++processed_;

    // Periodic events reschedule themselves after their callback,
    // unless the callback rescheduled them explicitly or cancelled the
    // repeat.
    auto *per = dynamic_cast<PeriodicEvent *>(ev);
    ev->process();
    if (per != nullptr && !per->scheduled()) {
        // cancelRepeat() may have been invoked from within process().
        if (per->repeatingNow())
            schedule(per, now_ + per->period());
    }
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (size_ != 0 && nextEventTime() <= until) {
        serviceOne();
        ++n;
    }
    if (now_ < until)
        now_ = until;
    return n;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    while (serviceOne())
        ++n;
    return n;
}

} // namespace gals
