#include "sim/clock_domain.hh"

#include <utility>

#include "sim/logging.hh"

namespace gals
{

ClockDomain::Ticker::~Ticker()
{
    if (tickerDomain_ != nullptr)
        tickerDomain_->unregisterTicker(this);
}

ClockDomain::ClockDomain(EventQueue &eq, std::string name, Tick period,
                         Tick phase)
    : eq_(eq), name_(std::move(name)), period_(period), phase_(phase),
      edgeEvent_(*this, period, name_ + ".edge")
{
    gals_assert(period > 0, "clock domain '", name_,
                "' needs a positive period");
}

ClockDomain::~ClockDomain()
{
    while (Ticker *t = tickers_.popFront()) {
        t->tickerDomain_ = nullptr;
        if (t->tickerOwned_)
            delete t;
    }
}

void
ClockDomain::registerTicker(Ticker *t, int priority, bool owned)
{
    gals_assert(t->tickerDomain_ == nullptr, "clock domain '", name_,
                "': ticker is already registered");
    t->tickerDomain_ = this;
    t->tickerPriority_ = priority;
    t->tickerOwned_ = owned;

    // Insert before the first node with a strictly greater priority,
    // scanning from the tail: equal priorities keep registration
    // order, and typical registration (ascending or uniform priority)
    // appends in O(1).
    Ticker *pos = tickers_.tail();
    while (pos != nullptr && pos->tickerPriority_ > priority)
        pos = TickerList::prev(pos);
    tickers_.insertAfter(pos, t);
}

ClockDomain::Ticker *
ClockDomain::addTicker(std::function<void()> fn, int priority)
{
    Ticker *t = new FunctionTicker(std::move(fn));
    registerTicker(t, priority, true);
    return t;
}

void
ClockDomain::unregisterTicker(Ticker *t)
{
    tickers_.unlink(t);
    t->tickerDomain_ = nullptr;
}

void
ClockDomain::removeTicker(Ticker *ticker)
{
    gals_assert(ticker != nullptr, "clock domain '", name_,
                "': removeTicker(nullptr)");
    gals_assert(ticker->tickerDomain_ == this, "clock domain '", name_,
                "': ticker is not registered here");
    if (ticker == current_) {
        // Called from within the ticker's own tick(): the edge walk
        // still holds this node, so defer the unlink (and delete, for
        // owned adapters) until its callback returns.
        pendingSelfRemove_ = true;
        return;
    }
    const bool owned = ticker->tickerOwned_;
    unregisterTicker(ticker);
    if (owned)
        delete ticker;
}

void
ClockDomain::start()
{
    gals_assert(!running_, "clock domain '", name_, "' already running");
    running_ = true;
    edgeEvent_.resumeRepeat();
    Tick first = eq_.now() + phase_;
    eq_.schedule(&edgeEvent_, first);
}

void
ClockDomain::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (edgeEvent_.scheduled())
        eq_.deschedule(&edgeEvent_);
    edgeEvent_.cancelRepeat();
}

void
ClockDomain::setPeriod(Tick period)
{
    gals_assert(period > 0, "clock domain '", name_,
                "' needs a positive period");
    period_ = period;
    edgeEvent_.period(period);
}

void
ClockDomain::setPhase(Tick phase)
{
    gals_assert(!running_ && !seenEdge_, "clock domain '", name_,
                "': cannot change phase after starting");
    phase_ = phase;
}

Tick
ClockDomain::nextEdgeAt(Tick t) const
{
    // Reference edge: the next one committed to the queue if running,
    // otherwise extrapolate from the phase.
    Tick ref;
    if (edgeEvent_.scheduled())
        ref = edgeEvent_.when();
    else if (seenEdge_)
        ref = lastEdge_ + period_;
    else
        ref = phase_;

    if (t <= ref)
        return ref;
    const Tick delta = t - ref;
    const Tick steps = (delta + period_ - 1) / period_;
    return ref + steps * period_;
}

void
ClockDomain::edge()
{
    lastEdge_ = eq_.now();
    seenEdge_ = true;
    ++cycle_;

    // The successor is read *after* tick() so the walk observes
    // mid-tick insertions after the current node and mid-tick
    // removals of later nodes; only removal of the node whose tick()
    // is running is deferred (see removeTicker).
    Ticker *t = tickers_.head();
    while (t != nullptr) {
        current_ = t;
        pendingSelfRemove_ = false;
        t->tick();
        Ticker *next = TickerList::next(t);
        current_ = nullptr;
        if (pendingSelfRemove_) {
            pendingSelfRemove_ = false;
            const bool owned = t->tickerOwned_;
            unregisterTicker(t);
            if (owned)
                delete t;
        }
        t = next;
    }
}

} // namespace gals
