#include "sim/clock_domain.hh"

#include <utility>

#include "sim/logging.hh"

namespace gals
{

ClockDomain::ClockDomain(EventQueue &eq, std::string name, Tick period,
                         Tick phase)
    : eq_(eq), name_(std::move(name)), period_(period), phase_(phase),
      edgeEvent_([this] { edge(); }, period, name_ + ".edge",
                 Event::clockEdgePri)
{
    gals_assert(period > 0, "clock domain '", name_,
                "' needs a positive period");
}

ClockDomain::~ClockDomain()
{
    Ticker *t = tickersHead_;
    while (t != nullptr) {
        Ticker *next = t->next_;
        delete t;
        t = next;
    }
}

ClockDomain::Ticker *
ClockDomain::addTicker(std::function<void()> fn, int priority)
{
    Ticker *t = new Ticker(std::move(fn), priority);

    // Insert before the first node with a strictly greater priority,
    // scanning from the tail: equal priorities keep registration
    // order, and typical registration (ascending or uniform priority)
    // appends in O(1).
    Ticker *pos = tickersTail_;
    while (pos != nullptr && pos->priority_ > priority)
        pos = pos->prev_;

    t->prev_ = pos;
    if (pos != nullptr) {
        t->next_ = pos->next_;
        if (pos->next_ != nullptr)
            pos->next_->prev_ = t;
        else
            tickersTail_ = t;
        pos->next_ = t;
    } else {
        t->next_ = tickersHead_;
        if (tickersHead_ != nullptr)
            tickersHead_->prev_ = t;
        else
            tickersTail_ = t;
        tickersHead_ = t;
    }
    return t;
}

void
ClockDomain::removeTicker(Ticker *ticker)
{
    gals_assert(ticker != nullptr, "clock domain '", name_,
                "': removeTicker(nullptr)");
    if (ticker->prev_ != nullptr)
        ticker->prev_->next_ = ticker->next_;
    else
        tickersHead_ = ticker->next_;
    if (ticker->next_ != nullptr)
        ticker->next_->prev_ = ticker->prev_;
    else
        tickersTail_ = ticker->prev_;
    delete ticker;
}

void
ClockDomain::start()
{
    gals_assert(!running_, "clock domain '", name_, "' already running");
    running_ = true;
    edgeEvent_.resumeRepeat();
    Tick first = eq_.now() + phase_;
    eq_.schedule(&edgeEvent_, first);
}

void
ClockDomain::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (edgeEvent_.scheduled())
        eq_.deschedule(&edgeEvent_);
    edgeEvent_.cancelRepeat();
}

void
ClockDomain::setPeriod(Tick period)
{
    gals_assert(period > 0, "clock domain '", name_,
                "' needs a positive period");
    period_ = period;
    edgeEvent_.period(period);
}

void
ClockDomain::setPhase(Tick phase)
{
    gals_assert(!running_ && !seenEdge_, "clock domain '", name_,
                "': cannot change phase after starting");
    phase_ = phase;
}

Tick
ClockDomain::nextEdgeAt(Tick t) const
{
    // Reference edge: the next one committed to the queue if running,
    // otherwise extrapolate from the phase.
    Tick ref;
    if (edgeEvent_.scheduled())
        ref = edgeEvent_.when();
    else if (seenEdge_)
        ref = lastEdge_ + period_;
    else
        ref = phase_;

    if (t <= ref)
        return ref;
    const Tick delta = t - ref;
    const Tick steps = (delta + period_ - 1) / period_;
    return ref + steps * period_;
}

void
ClockDomain::edge()
{
    lastEdge_ = eq_.now();
    seenEdge_ = true;
    ++cycle_;

    for (Ticker *t = tickersHead_; t != nullptr; t = t->next_)
        t->fn_();
}

} // namespace gals
