#include "sim/clock_domain.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace gals
{

ClockDomain::ClockDomain(EventQueue &eq, std::string name, Tick period,
                         Tick phase)
    : eq_(eq), name_(std::move(name)), period_(period), phase_(phase),
      edgeEvent_([this] { edge(); }, period, name_ + ".edge",
                 Event::clockEdgePri)
{
    gals_assert(period > 0, "clock domain '", name_,
                "' needs a positive period");
}

void
ClockDomain::addTicker(std::function<void()> fn, int priority)
{
    tickers_.push_back({priority, nextOrder_++, std::move(fn)});
    tickersSorted_ = false;
}

void
ClockDomain::start()
{
    gals_assert(!running_, "clock domain '", name_, "' already running");
    running_ = true;
    edgeEvent_.resumeRepeat();
    Tick first = eq_.now() + phase_;
    eq_.schedule(&edgeEvent_, first);
}

void
ClockDomain::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (edgeEvent_.scheduled())
        eq_.deschedule(&edgeEvent_);
    edgeEvent_.cancelRepeat();
}

void
ClockDomain::setPeriod(Tick period)
{
    gals_assert(period > 0, "clock domain '", name_,
                "' needs a positive period");
    period_ = period;
    edgeEvent_.period(period);
}

void
ClockDomain::setPhase(Tick phase)
{
    gals_assert(!running_ && !seenEdge_, "clock domain '", name_,
                "': cannot change phase after starting");
    phase_ = phase;
}

Tick
ClockDomain::nextEdgeAt(Tick t) const
{
    // Reference edge: the next one committed to the queue if running,
    // otherwise extrapolate from the phase.
    Tick ref;
    if (edgeEvent_.scheduled())
        ref = edgeEvent_.when();
    else if (seenEdge_)
        ref = lastEdge_ + period_;
    else
        ref = phase_;

    if (t <= ref)
        return ref;
    const Tick delta = t - ref;
    const Tick steps = (delta + period_ - 1) / period_;
    return ref + steps * period_;
}

void
ClockDomain::edge()
{
    lastEdge_ = eq_.now();
    seenEdge_ = true;
    ++cycle_;

    if (!tickersSorted_) {
        std::sort(tickers_.begin(), tickers_.end(),
                  [](const Ticker &a, const Ticker &b) {
                      if (a.priority != b.priority)
                          return a.priority < b.priority;
                      return a.order < b.order;
                  });
        tickersSorted_ = true;
    }
    for (auto &t : tickers_)
        t.fn();
}

} // namespace gals
