#include "sim/meter.hh"

#include <utility>

#include "sim/logging.hh"

namespace gals
{

PeriodicMeter::PeriodicMeter(EventQueue &eq, std::string name,
                             Tick intervalTicks)
    // Phase == period: the first edge fires one full interval after
    // start(), so sample i covers (i*K, (i+1)*K].
    : domain_(eq, std::move(name), intervalTicks, intervalTicks)
{
    gals_assert(intervalTicks > 0,
                "meter needs a positive sampling interval");
    domain_.addTicker(*this);
}

void
PeriodicMeter::tick()
{
    sampleInterval(samples_, domain_.lastEdge());
    ++samples_;
}

} // namespace gals
