/**
 * @file
 * Periodic in-run sampling.
 *
 * A PeriodicMeter owns a dedicated ClockDomain whose first edge fires
 * one full interval after start() and registers itself as the
 * domain's (typed) Ticker, so sampling rides the same deterministic
 * edge machinery as the pipeline stages: meter edges land in the
 * event queue with the same tick/priority ordering guarantees on
 * every engine and job count, which is what makes interval series
 * byte-identical across `--jobs` and calendar/heap runs.
 *
 * The meter is strictly read-only with respect to the simulated
 * machine: its edges execute no model code, so enabling it never
 * changes the headline metrics of a run. Subclasses implement
 * sampleInterval() and harvest whatever counters they need.
 */

#ifndef SIM_METER_HH
#define SIM_METER_HH

#include <cstdint>
#include <string>

#include "sim/clock_domain.hh"
#include "sim/ticks.hh"

namespace gals
{

/**
 * Fixed-period sampler: sampleInterval() runs at K, 2K, ... ticks
 * after start().
 */
class PeriodicMeter : public ClockDomain::Ticker
{
  public:
    /** @param intervalTicks sampling period K in ticks (> 0). */
    PeriodicMeter(EventQueue &eq, std::string name,
                  Tick intervalTicks);
    ~PeriodicMeter() override = default;

    /** Schedule the first sample one interval from now. */
    void start() { domain_.start(); }

    /** Stop sampling; pending edges are descheduled. */
    void stop() { domain_.stop(); }

    /** The sampling period K. */
    Tick intervalTicks() const { return domain_.period(); }

    /** Samples taken so far. */
    std::uint64_t samples() const { return samples_; }

  protected:
    /**
     * Take sample @p index (0-based) at simulated time @p now.
     * Implementations read model state; they must not mutate it.
     */
    virtual void sampleInterval(std::uint64_t index, Tick now) = 0;

  private:
    void tick() final;

    ClockDomain domain_;
    std::uint64_t samples_ = 0;
};

} // namespace gals

#endif // SIM_METER_HH
