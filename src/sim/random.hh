/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (synthetic workloads,
 * random clock phases) draws from Rng so that every experiment is
 * exactly reproducible from its seed. The generator is xoshiro256**,
 * which is fast and has no observable statistical defects at the scale
 * we use it.
 */

#ifndef SIM_RANDOM_HH
#define SIM_RANDOM_HH

#include <cstdint>

namespace gals
{

class SnapshotWriter;
class SnapshotReader;

/**
 * Seedable deterministic random number generator (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed; resets the full generator state. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Geometric-ish positive integer with the given mean (>= 1).
     * Used for dependency distances and run lengths in synthetic
     * workloads.
     */
    unsigned geometric(double mean);

    /** Gaussian sample via Box-Muller (mean, sigma). */
    double gaussian(double mean, double sigma);

    /** @name Warm-state snapshot (core/snapshot.hh)
     *
     * The full generator state — xoshiro words plus the Box-Muller
     * spare — so a restored stream continues bit-exactly where the
     * saved one stopped.
     */
    /// @{
    void snapshotSave(SnapshotWriter &w) const;
    void snapshotRestore(SnapshotReader &r);
    /// @}

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace gals

#endif // SIM_RANDOM_HH
