/**
 * @file
 * General-purpose event-driven simulation engine.
 *
 * This is the C++ analogue of the engine described in section 4.2 of
 * the paper: an event queue ordered by (time, priority) plus a global
 * timer. Events may be one-shot or periodic; periodic events model
 * clocked systems by rescheduling themselves one period into the
 * future, and any mixture of periodic and aperiodic events can be
 * simulated together, which is what makes multi-clock-domain (GALS)
 * simulation possible.
 *
 * The dispatch path is typed and allocation-free: process() is the
 * only indirect call per event (no std::function hop, no dynamic_cast
 * probing — periodic events carry a flag set at construction), and
 * runUntil()/runAll() service whole ties in one batch: when the
 * cheapest event is popped, every event sharing its (time, priority)
 * is drained from the same position before the scan for the next
 * minimum restarts. Periodic repeats re-enter the calendar through a
 * fast reinsert that skips the scheduling asserts and the grow check
 * (the pop that delivered the event just vacated the slot).
 *
 * Two interchangeable scheduling backends implement the same ordering
 * contract (see QueueEngine):
 *
 *  - @b calendar (default): a calendar queue / bucketed timing wheel
 *    (Brown, CACM 1988) with dynamic resize. Events carry embedded
 *    bucket links, so schedule/deschedule never allocate, and all
 *    operations are O(1) amortized when the bucket width tracks the
 *    inter-event gap — which it does for the clock-edge traffic that
 *    dominates GALS simulation.
 *
 *  - @b heap: the original std::set (red-black tree) implementation,
 *    kept as an A/B baseline. O(log n) per operation plus one node
 *    allocation per schedule.
 *
 * Both engines pop events in exactly the same (time, priority,
 * insertion-seq) order, so simulations are bit-identical under either;
 * tests/test_calendar_queue.cc pins that equivalence (including the
 * batched drain paths).
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "sim/intrusive_list.hh"
#include "sim/ticks.hh"

namespace gals
{

class EventQueue;

/**
 * Scheduling backend of an EventQueue.
 *
 * The process-wide default is QueueEngine::calendar; build with
 * -DGALSSIM_HEAP_EVENTQUEUE (CMake option of the same name) or call
 * EventQueue::setDefaultEngine() — e.g. via `galsbench --engine heap`
 * — to fall back to the ordered-set baseline for A/B validation.
 */
enum class QueueEngine : std::uint8_t
{
    calendar, ///< bucketed calendar queue, O(1) amortized (default)
    heap,     ///< ordered-set baseline, O(log n) (A/B validation)
};

/** Parse "calendar" / "heap"; fatal on anything else. */
QueueEngine parseQueueEngine(const std::string &name);

/** Human-readable engine name ("calendar" / "heap"). */
const char *queueEngineName(QueueEngine engine);

/** Tag for the calendar-bucket list an Event is linked into. */
struct EventBucketTag
{
};

/**
 * An occurrence scheduled on an EventQueue.
 *
 * Subclasses implement process(). An event object is owned by its
 * creator; the queue never deletes events. One event object can be
 * scheduled at most once at a time.
 *
 * The calendar engine links scheduled events into its buckets through
 * an embedded IntrusiveLink, so scheduling an event never allocates
 * memory.
 */
class Event
{
  public:
    /** Default priorities; lower value executes first within a tick. */
    enum Priority : int
    {
        clockEdgePri = 0,    ///< clock-domain edges
        defaultPri = 50,     ///< ordinary events
        statsPri = 90,       ///< end-of-interval statistics
    };

    explicit Event(std::string name = "event", int priority = defaultPri);
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when simulated time reaches when(). */
    virtual void process() = 0;

    /** Scheduled time; valid only while scheduled() is true. */
    Tick when() const { return when_; }

    /** Tie-break priority; lower executes first at equal time. */
    int priority() const { return priority_; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return queue_ != nullptr; }

    const std::string &name() const { return name_; }

  protected:
    /** Subclass constructor tagging the event as periodic, so the
     *  queue reschedules it after process() without RTTI probing.
     *  Only PeriodicEvent may set this. */
    Event(std::string name, int priority, bool periodic);

  private:
    friend class EventQueue;
    friend class IntrusiveList<Event, EventBucketTag>;

    IntrusiveLink<Event, EventBucketTag> &
    intrusiveLink(EventBucketTag)
    {
        return calLink_;
    }

    std::string name_;
    int priority_;
    bool periodic_ = false;     ///< reschedule after process()
    Tick when_ = 0;
    std::uint64_t seq_ = 0;     ///< insertion order tie-break
    EventQueue *queue_ = nullptr;

    /** @name Intrusive calendar-bucket links
     * Valid only while scheduled on a calendar-engine queue. */
    /// @{
    IntrusiveLink<Event, EventBucketTag> calLink_;
    std::size_t bucket_ = 0;    ///< owning bucket index
    /// @}
};

/** One-shot event wrapping a std::function callback. */
class CallbackEvent : public Event
{
  public:
    explicit CallbackEvent(std::function<void()> fn,
                           std::string name = "callback",
                           int priority = defaultPri);

    void process() override;

  private:
    std::function<void()> fn_;
};

/**
 * Periodic event: reschedules itself every period() ticks, exactly as
 * the paper's engine does for clocked systems. The period may be
 * changed from within process(); the new value applies to the next
 * rescheduling, which models dynamic frequency scaling.
 *
 * Hot-path subclasses (e.g. a clock domain's edge event) use the
 * protected constructor and override process() directly — one virtual
 * call per occurrence, no std::function.
 */
class PeriodicEvent : public Event
{
  public:
    PeriodicEvent(std::function<void()> fn, Tick period,
                  std::string name = "periodic",
                  int priority = clockEdgePri);

    void process() override;

    Tick period() const { return period_; }
    void period(Tick p);

    /** Stop after the current occurrence (deschedules the repeat). */
    void cancelRepeat() { repeating_ = false; }
    void resumeRepeat() { repeating_ = true; }

    /** Whether the event currently wants to repeat. */
    bool repeatingNow() const { return repeating_; }

  protected:
    /** For typed subclasses that override process() themselves. */
    PeriodicEvent(Tick period, std::string name, int priority);

  private:
    std::function<void()> fn_;
    Tick period_;
    bool repeating_ = true;
};

/**
 * The event queue and global timer.
 *
 * Events at equal (time, priority) execute in insertion order, which
 * keeps simulations deterministic. The ordering contract is engine-
 * independent: the calendar and heap engines pop element-wise
 * identical sequences.
 */
class EventQueue
{
  public:
    /** @name Calendar-queue tuning parameters
     *
     * The wheel starts with calInitialBuckets buckets of
     * calInitialWidth ticks each (sized for the ~1000-tick clock
     * periods that dominate this simulator) and resizes itself: with
     * N buckets, it doubles N when the population exceeds
     * calGrowPerBucket * N events and halves N when the population
     * falls below N / calShrinkDivisor events (never below
     * calInitialBuckets); the factor-4 gap between the two thresholds
     * is the hysteresis that prevents resize thrash. On every resize
     * the bucket width is re-derived as the pending events' time span
     * divided by their count (the average inter-event gap), rounded to
     * the nearest power of two >= 1 tick, which keeps roughly one
     * event per bucket-year. Bucket counts and widths stay powers of
     * two so both the bucket index and the year number are shifts and
     * masks, not divisions.
     */
    /// @{
    static constexpr std::size_t calInitialBuckets = 8;
    static constexpr unsigned calInitialWidthLog2 = 10; ///< 1024 ticks
    /** Grow when size() > calGrowPerBucket * bucket count. */
    static constexpr std::size_t calGrowPerBucket = 2;
    /** Shrink when size() < bucket count / calShrinkDivisor. */
    static constexpr std::size_t calShrinkDivisor = 2;
    /// @}

    explicit EventQueue(std::string name = "eventq",
                        QueueEngine engine = defaultEngine());
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Scheduling backend this queue was constructed with. */
    QueueEngine engine() const { return engine_; }

    /**
     * Process-wide default engine for newly constructed queues.
     * Starts as QueueEngine::calendar (or heap when compiled with
     * GALSSIM_HEAP_EVENTQUEUE). Set it before worker threads start
     * constructing queues (galsbench does so while parsing --engine).
     */
    static QueueEngine defaultEngine();
    static void setDefaultEngine(QueueEngine engine);

    /** Current simulated time (the global timer). */
    Tick now() const { return now_; }

    /** Schedule @p ev at absolute time @p when (>= now()). */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event. */
    void deschedule(Event *ev);

    /** Reschedule to a new time whether or not currently scheduled. */
    void reschedule(Event *ev, Tick when);

    /** True if no events are pending. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Time of the next pending event; maxTick if none. */
    Tick nextEventTime() const;

    /**
     * Execute the single next event; returns false if the queue was
     * empty.
     */
    bool serviceOne();

    /**
     * Run until simulated time would exceed @p until or the queue
     * drains. Events scheduled exactly at @p until are executed.
     * Ties are drained batch-wise: one pop services every event at
     * the same (time, priority), in insertion order.
     * @return number of events processed.
     */
    std::uint64_t runUntil(Tick until);

    /** Run until the queue drains; @return events processed. */
    std::uint64_t runAll();

    /** Total events processed since construction. */
    std::uint64_t processedCount() const { return processed_; }

    /** Current bucket count (calendar engine only; 0 on heap). */
    std::size_t calendarBuckets() const { return buckets_.size(); }

    /** Current bucket width in ticks (calendar engine only). */
    Tick calendarBucketWidth() const { return Tick(1) << widthLog2_; }

    const std::string &name() const { return name_; }

  private:
    /** Engine-independent ordering: (when, priority, insertion seq). */
    struct Less
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when_ != b->when_)
                return a->when_ < b->when_;
            if (a->priority_ != b->priority_)
                return a->priority_ < b->priority_;
            return a->seq_ < b->seq_;
        }
    };

    /** One wheel slot: a (when, priority, seq)-sorted intrusive list. */
    using Bucket = IntrusiveList<Event, EventBucketTag>;

    std::size_t bucketIndex(Tick when) const
    {
        return static_cast<std::size_t>(when >> widthLog2_) &
               (buckets_.size() - 1);
    }

    void calInsert(Event *ev);
    void calRemove(Event *ev);
    /** Cheapest pending event, nullptr when empty (caches result). */
    Event *calFindMin() const;
    void calResize(std::size_t newBuckets);
    void calMaybeShrink();

    /** Cheapest pending event without detaching it; nullptr if none.
     *  Inline: with a warm min cache this is three loads, and it runs
     *  once per pop plus once per batch continuation. */
    Event *
    peekMin() const
    {
        if (size_ == 0)
            return nullptr;
        if (engine_ == QueueEngine::heap)
            return *set_.begin();
        if (minCache_ != nullptr)
            return minCache_;
        return calFindMin();
    }
    /** Detach the cheapest pending event, nullptr when empty. */
    Event *popMin();
    /** Detach @p ev, already known to be the cheapest pending event. */
    void removeMin(Event *ev);
    /** Advance the timer to @p ev and fire it (periodic repeat incl.). */
    void serviceEvent(Event *ev);
    /** Service @p first plus every event tied with it at
     *  (when, priority); @return number serviced. */
    std::uint64_t serviceBatch(Event *first);
    /** Re-queue a just-fired periodic event at now() + period():
     *  same effect as schedule(), minus the scheduling asserts and
     *  the grow check (the preceding pop vacated the slot). */
    void schedulePeriodicRepeat(PeriodicEvent *ev);

    std::string name_;
    QueueEngine engine_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t size_ = 0;

    /** heap engine state */
    std::set<Event *, Less> set_;

    /** @name calendar engine state */
    /// @{
    std::vector<Bucket> buckets_;
    unsigned widthLog2_ = calInitialWidthLog2;
    /** Cached minimum; nullptr means "unknown", recomputed lazily.
     *  When non-null it always points at the true minimum. */
    mutable Event *minCache_ = nullptr;
    /// @}
};

} // namespace gals

#endif // SIM_EVENT_QUEUE_HH
