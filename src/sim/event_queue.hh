/**
 * @file
 * General-purpose event-driven simulation engine.
 *
 * This is the C++ analogue of the engine described in section 4.2 of
 * the paper: an event queue ordered by (time, priority) plus a global
 * timer. Events may be one-shot or periodic; periodic events model
 * clocked systems by rescheduling themselves one period into the
 * future, and any mixture of periodic and aperiodic events can be
 * simulated together, which is what makes multi-clock-domain (GALS)
 * simulation possible.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>

#include "sim/ticks.hh"

namespace gals
{

class EventQueue;

/**
 * An occurrence scheduled on an EventQueue.
 *
 * Subclasses implement process(). An event object is owned by its
 * creator; the queue never deletes events. One event object can be
 * scheduled at most once at a time.
 */
class Event
{
  public:
    /** Default priorities; lower value executes first within a tick. */
    enum Priority : int
    {
        clockEdgePri = 0,    ///< clock-domain edges
        defaultPri = 50,     ///< ordinary events
        statsPri = 90,       ///< end-of-interval statistics
    };

    explicit Event(std::string name = "event", int priority = defaultPri);
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when simulated time reaches when(). */
    virtual void process() = 0;

    /** Scheduled time; valid only while scheduled() is true. */
    Tick when() const { return when_; }

    /** Tie-break priority; lower executes first at equal time. */
    int priority() const { return priority_; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return queue_ != nullptr; }

    const std::string &name() const { return name_; }

  private:
    friend class EventQueue;

    std::string name_;
    int priority_;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;     ///< insertion order tie-break
    EventQueue *queue_ = nullptr;
};

/** One-shot event wrapping a std::function callback. */
class CallbackEvent : public Event
{
  public:
    explicit CallbackEvent(std::function<void()> fn,
                           std::string name = "callback",
                           int priority = defaultPri);

    void process() override;

  private:
    std::function<void()> fn_;
};

/**
 * Periodic event: reschedules itself every period() ticks, exactly as
 * the paper's engine does for clocked systems. The period may be
 * changed from within process(); the new value applies to the next
 * rescheduling, which models dynamic frequency scaling.
 */
class PeriodicEvent : public Event
{
  public:
    PeriodicEvent(std::function<void()> fn, Tick period,
                  std::string name = "periodic",
                  int priority = clockEdgePri);

    void process() override;

    Tick period() const { return period_; }
    void period(Tick p);

    /** Stop after the current occurrence (deschedules the repeat). */
    void cancelRepeat() { repeating_ = false; }
    void resumeRepeat() { repeating_ = true; }

    /** Whether the event currently wants to repeat. */
    bool repeatingNow() const { return repeating_; }

  private:
    std::function<void()> fn_;
    Tick period_;
    bool repeating_ = true;
};

/**
 * The event queue and global timer.
 *
 * Events at equal (time, priority) execute in insertion order, which
 * keeps simulations deterministic.
 */
class EventQueue
{
  public:
    explicit EventQueue(std::string name = "eventq");
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (the global timer). */
    Tick now() const { return now_; }

    /** Schedule @p ev at absolute time @p when (>= now()). */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event. */
    void deschedule(Event *ev);

    /** Reschedule to a new time whether or not currently scheduled. */
    void reschedule(Event *ev, Tick when);

    /** True if no events are pending. */
    bool empty() const { return queue_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return queue_.size(); }

    /** Time of the next pending event; maxTick if none. */
    Tick nextEventTime() const;

    /**
     * Execute the single next event; returns false if the queue was
     * empty.
     */
    bool serviceOne();

    /**
     * Run until simulated time would exceed @p until or the queue
     * drains. Events scheduled exactly at @p until are executed.
     * @return number of events processed.
     */
    std::uint64_t runUntil(Tick until);

    /** Run until the queue drains; @return events processed. */
    std::uint64_t runAll();

    /** Total events processed since construction. */
    std::uint64_t processedCount() const { return processed_; }

    const std::string &name() const { return name_; }

  private:
    struct Less
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when() != b->when())
                return a->when() < b->when();
            if (a->priority() != b->priority())
                return a->priority() < b->priority();
            return a->seq_ < b->seq_;
        }
    };

    std::string name_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::set<Event *, Less> queue_;
};

} // namespace gals

#endif // SIM_EVENT_QUEUE_HH
