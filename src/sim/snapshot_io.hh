/**
 * @file
 * Streaming writer/reader pair for warm-state snapshots.
 *
 * SnapshotWriter appends typed fields (varint u64, raw-bit f64,
 * length-prefixed string, section tags) to a growing byte buffer
 * using the shared codec primitives (sim/bytecodec.hh).
 * SnapshotReader walks the same fields back with *sticky* error
 * state: the first truncated or mismatching field marks the reader
 * failed, every later read returns a zero value without advancing,
 * and the caller checks ok() once at the end instead of threading a
 * bool through every component's restore method. Restore code
 * therefore reads exactly like save code, field for field.
 *
 * Section tags (`section("caches")`) are length-prefixed literal
 * strings checked on read. They exist to catch drift between a
 * component's save and restore field lists early — a skew fails on
 * the next tag with a precise error instead of silently misparsing
 * the rest of the file.
 */

#ifndef SIM_SNAPSHOT_IO_HH
#define SIM_SNAPSHOT_IO_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/bytecodec.hh"

namespace gals
{

/** Append-only typed field writer over a byte buffer. */
class SnapshotWriter
{
  public:
    void u64(std::uint64_t v) { codec::appendVarint(buf_, v); }
    void f64(double v) { codec::appendF64(buf_, v); }
    void str(const std::string &s) { codec::appendString(buf_, s); }
    void flag(bool b) { u64(b ? 1 : 0); }
    /** Write a section tag — the reader checks it verbatim. */
    void section(const char *tag) { str(tag); }

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/** Typed field reader with sticky error state. */
class SnapshotReader
{
  public:
    explicit SnapshotReader(std::string_view buf) : buf_(buf) {}

    std::uint64_t u64()
    {
        std::uint64_t v = 0;
        if (ok_ && !codec::readVarint(buf_, pos_, v))
            fail("truncated varint");
        return ok_ ? v : 0;
    }

    double f64()
    {
        double v = 0.0;
        if (ok_ && !codec::readF64(buf_, pos_, v))
            fail("truncated f64");
        return ok_ ? v : 0.0;
    }

    std::string str()
    {
        std::string s;
        if (ok_ && !codec::readString(buf_, pos_, s))
            fail("truncated string");
        return ok_ ? s : std::string();
    }

    bool flag() { return u64() != 0; }

    /** Read a section tag and require it to equal @p tag. */
    void section(const char *tag)
    {
        if (!ok_)
            return;
        const std::string got = str();
        if (ok_ && got != tag)
            fail(std::string("expected section '") + tag +
                 "', found '" + got + "'");
    }

    /** Require @p got == @p want, failing with @p what otherwise. */
    void expectU64(std::uint64_t got, std::uint64_t want,
                   const char *what)
    {
        if (ok_ && got != want)
            fail(std::string("mismatched ") + what);
    }

    /** Mark the reader failed. Later reads return zero values. */
    void fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            error_ = why;
        }
    }

    /** True when every field so far parsed and matched. */
    bool ok() const { return ok_; }
    /** True when the whole buffer was consumed (call at the end). */
    bool atEnd() const { return ok_ && pos_ == buf_.size(); }
    const std::string &error() const { return error_; }
    std::size_t pos() const { return pos_; }

  private:
    std::string_view buf_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

} // namespace gals

#endif // SIM_SNAPSHOT_IO_HH
