/**
 * @file
 * One intrusive doubly-linked list for every hot-path list in the
 * simulator.
 *
 * Three subsystems keep objects on allocation-free linked lists whose
 * links are embedded in the objects themselves: calendar-queue bucket
 * chains (Event), channel entry pools (Channel<T>::Node) and
 * clock-domain ticker lists (ClockDomain::Ticker). They used to carry
 * three hand-rolled copies of the same pointer surgery; this header is
 * the single implementation.
 *
 * A node type T embeds one IntrusiveLink<T, Tag> per list it can sit
 * on and exposes it through an accessor overloaded on the tag:
 *
 *   struct Node
 *   {
 *       IntrusiveLink<Node> link;
 *       IntrusiveLink<Node> &intrusiveLink(DefaultListTag)
 *       {
 *           return link;
 *       }
 *   };
 *   IntrusiveList<Node> list;
 *
 * Distinct tags let one object sit on several lists at once. The list
 * never owns, allocates or destroys nodes; linking and unlinking are
 * O(1) pointer splices. A node must not be linked into two lists of
 * the same tag at a time (links are reused wholesale, there is no
 * membership check beyond debug null-ness).
 */

#ifndef SIM_INTRUSIVE_LIST_HH
#define SIM_INTRUSIVE_LIST_HH

#include <cstddef>

namespace gals
{

/** Tag for node types that only ever sit on one kind of list. */
struct DefaultListTag
{
};

/** The two pointers a node embeds per list it can be linked into. */
template <typename T, typename Tag = DefaultListTag>
struct IntrusiveLink
{
    T *prev = nullptr;
    T *next = nullptr;
};

/**
 * Doubly-linked list over nodes embedding IntrusiveLink<T, Tag>.
 *
 * The list itself is two pointers; copying is disabled because two
 * lists sharing the same nodes would corrupt each other.
 */
template <typename T, typename Tag = DefaultListTag>
class IntrusiveList
{
  public:
    using Link = IntrusiveLink<T, Tag>;

    IntrusiveList() = default;
    IntrusiveList(const IntrusiveList &) = delete;
    IntrusiveList &operator=(const IntrusiveList &) = delete;

    T *head() const { return head_; }
    T *tail() const { return tail_; }
    bool empty() const { return head_ == nullptr; }

    /** Successor / predecessor of a linked node (nullptr at the end). */
    static T *next(const T *n) { return linkOf(n).next; }
    static T *prev(const T *n) { return linkOf(n).prev; }

    /** Append @p n; O(1). */
    void
    pushBack(T *n)
    {
        insertAfter(tail_, n);
    }

    /** Prepend @p n; O(1). */
    void
    pushFront(T *n)
    {
        insertAfter(nullptr, n);
    }

    /**
     * Link @p n immediately after @p pos (which must be on this list),
     * or at the front when @p pos is nullptr. This is the primitive
     * the sorted-insertion loops (calendar buckets, ticker priorities)
     * are built on: scan to a position, splice once.
     */
    void
    insertAfter(T *pos, T *n)
    {
        Link &ln = linkOf(n);
        ln.prev = pos;
        if (pos != nullptr) {
            Link &lp = linkOf(pos);
            ln.next = lp.next;
            if (lp.next != nullptr)
                linkOf(lp.next).prev = n;
            else
                tail_ = n;
            lp.next = n;
        } else {
            ln.next = head_;
            if (head_ != nullptr)
                linkOf(head_).prev = n;
            else
                tail_ = n;
            head_ = n;
        }
    }

    /** Unlink @p n (must be on this list); O(1). The node's link
     *  pointers are reset so stale traversals cannot wander. */
    void
    unlink(T *n)
    {
        Link &ln = linkOf(n);
        if (ln.prev != nullptr)
            linkOf(ln.prev).next = ln.next;
        else
            head_ = ln.next;
        if (ln.next != nullptr)
            linkOf(ln.next).prev = ln.prev;
        else
            tail_ = ln.prev;
        ln.prev = nullptr;
        ln.next = nullptr;
    }

    /** Unlink and return the head; nullptr when empty. */
    T *
    popFront()
    {
        T *n = head_;
        if (n != nullptr)
            unlink(n);
        return n;
    }

    /** Move every node of @p other onto the back of this list; O(1).
     *  @p other is left empty. */
    void
    splice(IntrusiveList &other)
    {
        if (other.head_ == nullptr)
            return;
        if (tail_ != nullptr) {
            linkOf(tail_).next = other.head_;
            linkOf(other.head_).prev = tail_;
        } else {
            head_ = other.head_;
        }
        tail_ = other.tail_;
        other.head_ = nullptr;
        other.tail_ = nullptr;
    }

    /** Drop every node without touching their links' owners. Only
     *  valid when the caller re-links or abandons the nodes itself. */
    void
    reset()
    {
        head_ = nullptr;
        tail_ = nullptr;
    }

    /** Node count by traversal; O(n), for tests and assertions. */
    std::size_t
    sizeSlow() const
    {
        std::size_t n = 0;
        for (T *it = head_; it != nullptr; it = next(it))
            ++n;
        return n;
    }

  private:
    static Link &
    linkOf(const T *n)
    {
        return const_cast<T *>(n)->intrusiveLink(Tag{});
    }

    T *head_ = nullptr;
    T *tail_ = nullptr;
};

} // namespace gals

#endif // SIM_INTRUSIVE_LIST_HH
