/**
 * @file
 * Basic simulated-time definitions.
 *
 * The simulator counts time in integer ticks; one tick is one
 * picosecond. A 64-bit tick counter wraps after ~213 days of simulated
 * time at 1 ps resolution, far beyond any experiment in this repo.
 */

#ifndef SIM_TICKS_HH
#define SIM_TICKS_HH

#include <cstdint>

namespace gals
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** Cycle count within one clock domain. */
using Cycle = std::uint64_t;

/** One simulated picosecond. */
constexpr Tick tickPs = 1;

/** Ticks per nanosecond. */
constexpr Tick ticksPerNs = 1000;

/** A tick value larger than any schedulable time; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Convert a frequency in MHz to a clock period in ticks. */
constexpr Tick
periodFromMHz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz + 0.5);
}

/** Convert a clock period in ticks to a frequency in MHz. */
constexpr double
mhzFromPeriod(Tick period)
{
    return 1e6 / static_cast<double>(period);
}

/** Convert ticks to seconds. */
constexpr double
tickToSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-12;
}

} // namespace gals

#endif // SIM_TICKS_HH
