#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/snapshot_io.hh"

namespace gals
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &s : s_)
        s = splitmix64(x);
    // A state of all zeros is the one forbidden state; splitmix64
    // cannot produce four zero outputs from any input, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
    haveSpare_ = false;
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next64() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    gals_assert(lo <= hi, "invalid range [", lo, ", ", hi, "]");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next64();
    return lo + next64() % span;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

unsigned
Rng::geometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Geometric on {1, 2, ...} with mean `mean`: success prob 1/mean.
    const double p = 1.0 / mean;
    const double u = uniform();
    const double val = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
    if (val < 1.0)
        return 1;
    if (val > 1e6)
        return 1000000;
    return static_cast<unsigned>(val);
}

void
Rng::snapshotSave(SnapshotWriter &w) const
{
    for (std::uint64_t s : s_)
        w.u64(s);
    w.flag(haveSpare_);
    w.f64(spare_);
}

void
Rng::snapshotRestore(SnapshotReader &r)
{
    for (std::uint64_t &s : s_)
        s = r.u64();
    haveSpare_ = r.flag();
    spare_ = r.f64();
    // All-zero is the forbidden xoshiro state; valid snapshots never
    // contain it, so reaching it means the bytes are corrupt.
    if (r.ok() && (s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        r.fail("all-zero rng state");
}

double
Rng::gaussian(double mean, double sigma)
{
    if (haveSpare_) {
        haveSpare_ = false;
        return mean + sigma * spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) // avoid log(0)
        u1 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double z0 = mag * std::cos(2.0 * M_PI * u2);
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mean + sigma * z0;
}

} // namespace gals
