/**
 * @file
 * Clock domains for locally synchronous blocks.
 *
 * A ClockDomain is a periodic event source with a period, a phase
 * offset, and an ordered list of per-edge tickers. The base (fully
 * synchronous) processor binds all pipeline regions to one domain; the
 * GALS processor instantiates five, each with its own period and a
 * random phase, exactly as in section 4.2 of the paper.
 *
 * The period may be changed at run time (the change takes effect after
 * the current edge), which is the mechanism used for dynamic frequency
 * scaling. Each domain also carries a supply voltage so the power model
 * can charge energy at the right Vdd.
 *
 * Tickers are intrusive list nodes with a virtual tick(): pipeline
 * stages derive from ClockDomain::Ticker and register themselves, so
 * the per-edge hot path is a plain list walk with one indirect call per
 * stage — no std::function hop, no allocation, no deferred sorting.
 * Lists stay sorted at insertion (ascending priority, then
 * registration order). A std::function adapter node remains for tests
 * and examples via the callback addTicker() overload.
 */

#ifndef SIM_CLOCK_DOMAIN_HH
#define SIM_CLOCK_DOMAIN_HH

#include <functional>
#include <string>
#include <type_traits>

#include "sim/event_queue.hh"
#include "sim/intrusive_list.hh"
#include "sim/ticks.hh"

namespace gals
{

/**
 * One locally synchronous clock region.
 */
class ClockDomain
{
  public:
    /**
     * One per-edge registration, linked into the domain's sorted
     * intrusive ticker list. Pipeline stages derive from this and
     * override tick(); registration wires the object straight into
     * the edge walk. A still-registered ticker unregisters itself on
     * destruction.
     */
    class Ticker
    {
      public:
        /** Called once per rising edge of the registered domain. */
        virtual void tick() = 0;

        Ticker(const Ticker &) = delete;
        Ticker &operator=(const Ticker &) = delete;

      protected:
        Ticker() = default;
        virtual ~Ticker();

      private:
        friend class ClockDomain;
        friend class IntrusiveList<Ticker, DefaultListTag>;

        IntrusiveLink<Ticker> &intrusiveLink(DefaultListTag)
        {
            return link_;
        }

        IntrusiveLink<Ticker> link_;
        ClockDomain *tickerDomain_ = nullptr;
        int tickerPriority_ = 0;
        /** Heap-allocated adapter owned (and deleted) by the domain. */
        bool tickerOwned_ = false;
    };

    /** Owned adapter wrapping a callback in a Ticker node; kept for
     *  tests and examples — stages should derive from Ticker. */
    class FunctionTicker final : public Ticker
    {
      public:
        explicit FunctionTicker(std::function<void()> fn)
            : fn_(std::move(fn))
        {
        }

        void tick() override { fn_(); }

      private:
        std::function<void()> fn_;
    };

    /**
     * @param eq       owning event queue
     * @param name     diagnostic name
     * @param period   clock period in ticks (> 0)
     * @param phase    first-edge offset in ticks (< period typically)
     */
    ClockDomain(EventQueue &eq, std::string name, Tick period,
                Tick phase = 0);
    ~ClockDomain();

    ClockDomain(const ClockDomain &) = delete;
    ClockDomain &operator=(const ClockDomain &) = delete;

    /**
     * Register a Ticker subclass object, run on every rising edge in
     * ascending @p priority then registration order. The domain does
     * not take ownership; the object must outlive its registration
     * (or rely on the Ticker destructor's self-unregistration).
     * @return the registration handle (== &ticker).
     */
    template <typename T>
    std::enable_if_t<std::is_base_of_v<Ticker, T>, Ticker *>
    addTicker(T &ticker, int priority = 50)
    {
        registerTicker(&ticker, priority, false);
        return &ticker;
    }

    /**
     * Register a callback through an owned FunctionTicker adapter.
     * @return a handle for removeTicker(); may be ignored.
     */
    Ticker *addTicker(std::function<void()> fn, int priority = 50);

    /**
     * Unregister a ticker; O(1). Owned adapter nodes are destroyed.
     * Safe to call from within the running ticker's own tick(): the
     * unlink is deferred until that tick() returns (removing a
     * *different* ticker mid-edge takes effect immediately).
     */
    void removeTicker(Ticker *ticker);

    /** Begin ticking: schedules the first edge at the phase offset. */
    void start();

    /** Stop ticking after the current edge. */
    void stop();

    bool running() const { return running_; }

    /** Current period in ticks. */
    Tick period() const { return period_; }

    /**
     * Change the period; takes effect when scheduling the edge after
     * the next one already committed to the queue (or immediately if
     * called between edges on a stopped clock).
     */
    void setPeriod(Tick period);

    /** Frequency in MHz implied by the current period. */
    double frequencyMHz() const { return mhzFromPeriod(period_); }

    /** Phase offset of the first edge. */
    Tick phase() const { return phase_; }

    /** Change the phase offset; only valid before start(). */
    void setPhase(Tick phase);

    /** Completed edge count (cycle counter). */
    Cycle cycle() const { return cycle_; }

    /** Time of the most recent edge; 0 before the first edge. */
    Tick lastEdge() const { return lastEdge_; }

    /**
     * First edge occurring at or after time @p t, assuming the period
     * stays at its current value. Used to model when a consumer clocked
     * by this domain can first observe an asynchronous input.
     */
    Tick nextEdgeAt(Tick t) const;

    /** First edge strictly after time @p t. */
    Tick nextEdgeAfter(Tick t) const { return nextEdgeAt(t + 1); }

    /** Supply voltage of this domain (volts). */
    double vdd() const { return vdd_; }
    void setVdd(double v) { vdd_ = v; }

    const std::string &name() const { return name_; }
    EventQueue &eventQueue() { return eq_; }

  private:
    /** The domain edge as a typed periodic event: one virtual
     *  process() straight into edge(), no std::function hop. */
    class EdgeEvent final : public PeriodicEvent
    {
      public:
        EdgeEvent(ClockDomain &domain, Tick period, std::string name)
            : PeriodicEvent(period, std::move(name),
                            Event::clockEdgePri),
              domain_(domain)
        {
        }

        void process() override { domain_.edge(); }

      private:
        ClockDomain &domain_;
    };

    using TickerList = IntrusiveList<Ticker>;

    void registerTicker(Ticker *t, int priority, bool owned);
    void unregisterTicker(Ticker *t);
    void edge();

    EventQueue &eq_;
    std::string name_;
    Tick period_;
    Tick phase_;
    Tick lastEdge_ = 0;
    bool seenEdge_ = false;
    Cycle cycle_ = 0;
    bool running_ = false;
    double vdd_ = 1.5;

    /** Sorted intrusive ticker list (ascending priority, then
     *  registration order). */
    TickerList tickers_;

    /** Ticker whose tick() is currently executing, if any. */
    Ticker *current_ = nullptr;
    /** The current ticker asked to remove itself; honoured by the
     *  edge walk once its tick() returns. */
    bool pendingSelfRemove_ = false;

    EdgeEvent edgeEvent_;
};

} // namespace gals

#endif // SIM_CLOCK_DOMAIN_HH
