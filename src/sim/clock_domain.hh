/**
 * @file
 * Clock domains for locally synchronous blocks.
 *
 * A ClockDomain is a periodic event source with a period, a phase
 * offset, and an ordered list of per-edge tick callbacks. The base
 * (fully synchronous) processor binds all pipeline regions to one
 * domain; the GALS processor instantiates five, each with its own
 * period and a random phase, exactly as in section 4.2 of the paper.
 *
 * The period may be changed at run time (the change takes effect after
 * the current edge), which is the mechanism used for dynamic frequency
 * scaling. Each domain also carries a supply voltage so the power model
 * can charge energy at the right Vdd.
 *
 * Tickers are intrusive doubly-linked list nodes kept sorted at
 * insertion (ascending priority, then registration order), so the
 * per-edge hot path is a plain list walk: no deferred sorting, no
 * vector reallocation, and O(1) removal.
 */

#ifndef SIM_CLOCK_DOMAIN_HH
#define SIM_CLOCK_DOMAIN_HH

#include <functional>
#include <string>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace gals
{

/**
 * One locally synchronous clock region.
 */
class ClockDomain
{
  public:
    /**
     * One per-edge callback registration, linked into the domain's
     * sorted intrusive ticker list. Nodes are owned by the domain;
     * addTicker() returns a handle usable with removeTicker().
     */
    class Ticker
    {
      private:
        friend class ClockDomain;

        Ticker(std::function<void()> fn, int priority)
            : fn_(std::move(fn)), priority_(priority)
        {
        }

        std::function<void()> fn_;
        int priority_;
        Ticker *prev_ = nullptr;
        Ticker *next_ = nullptr;
    };

    /**
     * @param eq       owning event queue
     * @param name     diagnostic name
     * @param period   clock period in ticks (> 0)
     * @param phase    first-edge offset in ticks (< period typically)
     */
    ClockDomain(EventQueue &eq, std::string name, Tick period,
                Tick phase = 0);
    ~ClockDomain();

    ClockDomain(const ClockDomain &) = delete;
    ClockDomain &operator=(const ClockDomain &) = delete;

    /**
     * Register a callback run on every rising edge. Callbacks run in
     * ascending @p priority, then registration order.
     * @return a handle for removeTicker(); may be ignored.
     */
    Ticker *addTicker(std::function<void()> fn, int priority = 50);

    /** Unregister and destroy a ticker; O(1). Must not be called from
     *  within that ticker's own callback. */
    void removeTicker(Ticker *ticker);

    /** Begin ticking: schedules the first edge at the phase offset. */
    void start();

    /** Stop ticking after the current edge. */
    void stop();

    bool running() const { return running_; }

    /** Current period in ticks. */
    Tick period() const { return period_; }

    /**
     * Change the period; takes effect when scheduling the edge after
     * the next one already committed to the queue (or immediately if
     * called between edges on a stopped clock).
     */
    void setPeriod(Tick period);

    /** Frequency in MHz implied by the current period. */
    double frequencyMHz() const { return mhzFromPeriod(period_); }

    /** Phase offset of the first edge. */
    Tick phase() const { return phase_; }

    /** Change the phase offset; only valid before start(). */
    void setPhase(Tick phase);

    /** Completed edge count (cycle counter). */
    Cycle cycle() const { return cycle_; }

    /** Time of the most recent edge; 0 before the first edge. */
    Tick lastEdge() const { return lastEdge_; }

    /**
     * First edge occurring at or after time @p t, assuming the period
     * stays at its current value. Used to model when a consumer clocked
     * by this domain can first observe an asynchronous input.
     */
    Tick nextEdgeAt(Tick t) const;

    /** First edge strictly after time @p t. */
    Tick nextEdgeAfter(Tick t) const { return nextEdgeAt(t + 1); }

    /** Supply voltage of this domain (volts). */
    double vdd() const { return vdd_; }
    void setVdd(double v) { vdd_ = v; }

    const std::string &name() const { return name_; }
    EventQueue &eventQueue() { return eq_; }

  private:
    void edge();

    EventQueue &eq_;
    std::string name_;
    Tick period_;
    Tick phase_;
    Tick lastEdge_ = 0;
    bool seenEdge_ = false;
    Cycle cycle_ = 0;
    bool running_ = false;
    double vdd_ = 1.5;

    /** Sorted intrusive ticker list (ascending priority, then
     *  registration order); nodes owned by this domain. */
    Ticker *tickersHead_ = nullptr;
    Ticker *tickersTail_ = nullptr;

    PeriodicEvent edgeEvent_;
};

} // namespace gals

#endif // SIM_CLOCK_DOMAIN_HH
