/**
 * @file
 * Error and status reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal simulator invariant was violated (a bug);
 *            aborts.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with an
 *            error code.
 * warn()   - something is modelled approximately; the run continues.
 * inform() - plain status output.
 */

#ifndef SIM_LOGGING_HH
#define SIM_LOGGING_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gals
{

namespace logging_detail
{

/** Concatenate a sequence of stream-printable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Count of warn() calls, exposed for tests; atomic because runs may
 *  warn concurrently under the parallel ExperimentEngine. */
extern std::atomic<unsigned long> warnCount;

} // namespace logging_detail

#define gals_panic(...)                                                  \
    ::gals::logging_detail::panicImpl(                                   \
        __FILE__, __LINE__, ::gals::logging_detail::concat(__VA_ARGS__))

#define gals_fatal(...)                                                  \
    ::gals::logging_detail::fatalImpl(                                   \
        __FILE__, __LINE__, ::gals::logging_detail::concat(__VA_ARGS__))

#define gals_warn(...)                                                   \
    ::gals::logging_detail::warnImpl(                                    \
        ::gals::logging_detail::concat(__VA_ARGS__))

#define gals_inform(...)                                                 \
    ::gals::logging_detail::informImpl(                                  \
        ::gals::logging_detail::concat(__VA_ARGS__))

/** Assert a simulator invariant; compiled in all build types. */
#define gals_assert(cond, ...)                                           \
    do {                                                                 \
        if (!(cond)) {                                                   \
            gals_panic("assertion '" #cond "' failed: ",                 \
                       ::gals::logging_detail::concat(__VA_ARGS__));     \
        }                                                                \
    } while (0)

} // namespace gals

#endif // SIM_LOGGING_HH
