#include "sim/logging.hh"

#include <exception>

namespace gals
{
namespace logging_detail
{

std::atomic<unsigned long> warnCount{0};

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s [%s:%d]\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s [%s:%d]\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    ++warnCount;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace logging_detail
} // namespace gals
