/**
 * @file
 * Shared binary-codec primitives: LEB128 varints, raw-bit doubles,
 * length-prefixed strings.
 *
 * These started life inside the `.gtrj` trajectory writer
 * (runner/gtrj.cc); the warm-state snapshot format (core/snapshot.hh)
 * serializes with the same primitives, so they live here — below both
 * layers — instead of being copied. The encodings are fixed:
 *
 *  - varint: LEB128, low 7 bits first, at most 10 bytes; the 10th
 *    byte may only carry bit 63 (anything else is corruption).
 *  - f64: the raw IEEE-754 bit pattern, little-endian, 8 bytes —
 *    non-finite values round-trip exactly.
 *  - string: varint(length) then the raw bytes.
 *
 * Readers take (buf, pos) and return false without advancing past the
 * end on truncated input, so a torn tail is always detectable.
 */

#ifndef SIM_BYTECODEC_HH
#define SIM_BYTECODEC_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace gals::codec
{

/** Append the LEB128 varint encoding of @p v to @p out. */
inline void
appendVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(0x80 | (v & 0x7f)));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

/** Decode a varint at @p pos, advancing it; false when @p buf ends
 *  mid-varint or the encoding exceeds 10 bytes. */
inline bool
readVarint(std::string_view buf, std::size_t &pos, std::uint64_t &v)
{
    v = 0;
    for (unsigned i = 0; i < 10; ++i) {
        if (pos >= buf.size())
            return false;
        const unsigned char b = static_cast<unsigned char>(buf[pos++]);
        // The 10th byte holds bit 63 only: anything more is either a
        // continuation past 10 bytes or bits beyond u64 — corruption
        // either way.
        if (i == 9 && (b & 0xfe))
            return false;
        v |= static_cast<std::uint64_t>(b & 0x7f) << (7 * i);
        if (!(b & 0x80))
            return true;
    }
    return false;
}

/** Append the raw IEEE-754 bits of @p v, little-endian. */
inline void
appendF64(std::string &out, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(bits >> (8 * i)));
}

/** Decode an f64 at @p pos, advancing it; false on short input. */
inline bool
readF64(std::string_view buf, std::size_t &pos, double &v)
{
    if (buf.size() - pos < 8)
        return false;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
        bits |= static_cast<std::uint64_t>(
                    static_cast<unsigned char>(buf[pos + i]))
                << (8 * i);
    pos += 8;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

/** Append varint(size) + raw bytes of @p s. */
inline void
appendString(std::string &out, const std::string &s)
{
    appendVarint(out, s.size());
    out += s;
}

/** Decode a length-prefixed string at @p pos, advancing it; false on
 *  truncated input. */
inline bool
readString(std::string_view buf, std::size_t &pos, std::string &s)
{
    std::uint64_t len = 0;
    if (!readVarint(buf, pos, len) || len > buf.size() - pos)
        return false;
    s.assign(buf.data() + pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return true;
}

} // namespace gals::codec

#endif // SIM_BYTECODEC_HH
