#include "bpred/bpred.hh"

#include "sim/logging.hh"
#include "sim/snapshot_io.hh"

namespace gals
{

namespace
{

/** Saturating 2-bit counter update. */
inline std::uint8_t
updateCounter(std::uint8_t ctr, bool taken)
{
    if (taken)
        return ctr < 3 ? ctr + 1 : 3;
    return ctr > 0 ? ctr - 1 : 0;
}

} // namespace

BimodalPredictor::BimodalPredictor(unsigned entries)
    : table_(entries, 2) // weakly taken
{
    gals_assert(entries > 0 && (entries & (entries - 1)) == 0,
                "bimodal table size must be a power of two");
}

std::size_t
BimodalPredictor::index(std::uint64_t pc) const
{
    return (pc >> 2) & (table_.size() - 1);
}

bool
BimodalPredictor::predict(std::uint64_t pc)
{
    return table_[index(pc)] >= 2;
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    auto &ctr = table_[index(pc)];
    ctr = updateCounter(ctr, taken);
}

void
BimodalPredictor::snapshotSave(SnapshotWriter &w) const
{
    w.u64(table_.size());
    for (std::uint8_t ctr : table_)
        w.u64(ctr);
}

void
BimodalPredictor::snapshotRestore(SnapshotReader &r)
{
    r.expectU64(r.u64(), table_.size(), "bimodal table size");
    for (std::uint8_t &ctr : table_) {
        const std::uint64_t v = r.u64();
        if (v > 3)
            r.fail("bimodal counter out of range");
        ctr = static_cast<std::uint8_t>(v);
    }
}

} // namespace gals
