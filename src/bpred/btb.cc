#include "bpred/bpred.hh"

#include "sim/logging.hh"
#include "sim/snapshot_io.hh"

namespace gals
{

Btb::Btb(unsigned sets, unsigned ways)
    : sets_(sets), ways_(ways), entries_(sets * ways)
{
    gals_assert(sets > 0 && (sets & (sets - 1)) == 0,
                "BTB set count must be a power of two");
    gals_assert(ways > 0, "BTB needs at least one way");
}

bool
Btb::lookup(std::uint64_t pc, std::uint64_t &target)
{
    ++lookups_;
    const std::uint64_t set = (pc >> 2) & (sets_ - 1);
    const std::uint64_t tag = pc >> 2;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[set * ways_ + w];
        if (e.valid && e.tag == tag) {
            e.lru = ++lruClock_;
            target = e.target;
            ++hits_;
            return true;
        }
    }
    return false;
}

void
Btb::insert(std::uint64_t pc, std::uint64_t target)
{
    const std::uint64_t set = (pc >> 2) & (sets_ - 1);
    const std::uint64_t tag = pc >> 2;

    Entry *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[set * ways_ + w];
        if (e.valid && e.tag == tag) {
            victim = &e; // refresh in place
            break;
        }
        if (victim == nullptr || !e.valid ||
            (victim->valid && e.lru < victim->lru))
            victim = &e;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lru = ++lruClock_;
}

std::uint64_t
Btb::sizeBits() const
{
    // tag + target + valid, roughly 64 bits per entry of state.
    return static_cast<std::uint64_t>(sets_) * ways_ * 64;
}

void
Btb::snapshotSave(SnapshotWriter &w) const
{
    w.u64(entries_.size());
    for (const Entry &e : entries_) {
        w.flag(e.valid);
        w.u64(e.tag);
        w.u64(e.target);
        w.u64(e.lru);
    }
    w.u64(lruClock_);
}

void
Btb::snapshotRestore(SnapshotReader &r)
{
    r.expectU64(r.u64(), entries_.size(), "BTB entry count");
    for (Entry &e : entries_) {
        e.valid = r.flag();
        e.tag = r.u64();
        e.target = r.u64();
        e.lru = r.u64();
    }
    lruClock_ = r.u64();
}

ReturnAddressStack::ReturnAddressStack(unsigned entries)
    : stack_(entries, 0)
{
    gals_assert(entries > 0, "RAS needs at least one entry");
}

void
ReturnAddressStack::push(std::uint64_t returnPc)
{
    top_ = (top_ + 1) % stack_.size();
    stack_[top_] = returnPc;
    if (depth_ < stack_.size())
        ++depth_;
}

std::uint64_t
ReturnAddressStack::pop()
{
    if (depth_ == 0)
        return 0;
    const std::uint64_t t = stack_[top_];
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --depth_;
    return t;
}

void
ReturnAddressStack::snapshotSave(SnapshotWriter &w) const
{
    w.u64(stack_.size());
    for (std::uint64_t pc : stack_)
        w.u64(pc);
    w.u64(top_);
    w.u64(depth_);
}

void
ReturnAddressStack::snapshotRestore(SnapshotReader &r)
{
    r.expectU64(r.u64(), stack_.size(), "RAS size");
    for (std::uint64_t &pc : stack_)
        pc = r.u64();
    const std::uint64_t top = r.u64();
    const std::uint64_t depth = r.u64();
    if (top >= stack_.size() || depth > stack_.size())
        r.fail("RAS pointers out of range");
    top_ = static_cast<unsigned>(top);
    depth_ = static_cast<unsigned>(depth);
}

} // namespace gals
