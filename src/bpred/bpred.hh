/**
 * @file
 * Branch prediction: direction predictors (bimodal, gshare,
 * combining), a set-associative branch target buffer, and a return
 * address stack, composed into the BranchUnit used by the fetch stage.
 *
 * The paper's clock domain 1 is "instruction cache and branch
 * prediction unit" together, so the BranchUnit's access counts feed
 * the fetch-domain power model.
 */

#ifndef BPRED_BPRED_HH
#define BPRED_BPRED_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace gals
{

class SnapshotWriter;
class SnapshotReader;

/** Abstract taken/not-taken predictor. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(std::uint64_t pc) = 0;

    /**
     * Train with the resolved outcome (called in commit order, so the
     * internal global history is non-speculative).
     */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** Table size in bits, for the power model. */
    virtual std::uint64_t sizeBits() const = 0;

    virtual const char *name() const = 0;

    /** @name Warm-state snapshot (core/snapshot.hh): the trained
     *  tables/history. Restore checks the geometry against this
     *  predictor and fails the reader on a mismatch. */
    /// @{
    virtual void snapshotSave(SnapshotWriter &w) const = 0;
    virtual void snapshotRestore(SnapshotReader &r) = 0;
    /// @}
};

/** Classic 2-bit saturating counter table indexed by pc. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(unsigned entries = 2048);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t sizeBits() const override { return table_.size() * 2; }
    const char *name() const override { return "bimodal"; }
    void snapshotSave(SnapshotWriter &w) const override;
    void snapshotRestore(SnapshotReader &r) override;

  private:
    std::size_t index(std::uint64_t pc) const;
    std::vector<std::uint8_t> table_;
};

/** Gshare: global history XOR pc indexing a 2-bit counter table. */
class GsharePredictor : public DirectionPredictor
{
  public:
    explicit GsharePredictor(unsigned entries = 4096,
                             unsigned historyBits = 12);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t sizeBits() const override { return table_.size() * 2; }
    const char *name() const override { return "gshare"; }
    void snapshotSave(SnapshotWriter &w) const override;
    void snapshotRestore(SnapshotReader &r) override;

    std::uint32_t history() const { return history_; }

  private:
    std::size_t index(std::uint64_t pc) const;
    std::vector<std::uint8_t> table_;
    std::uint32_t history_ = 0;
    std::uint32_t historyMask_;
};

/**
 * McFarling-style combining predictor: bimodal + gshare with a
 * bimodal-indexed chooser (the 21264 uses a close cousin).
 */
class CombiningPredictor : public DirectionPredictor
{
  public:
    CombiningPredictor(unsigned bimodalEntries = 2048,
                       unsigned gshareEntries = 4096,
                       unsigned gshareHistory = 12,
                       unsigned chooserEntries = 2048);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t sizeBits() const override;
    const char *name() const override { return "combining"; }
    void snapshotSave(SnapshotWriter &w) const override;
    void snapshotRestore(SnapshotReader &r) override;

  private:
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<std::uint8_t> chooser_;
};

/** Set-associative branch target buffer. */
class Btb
{
  public:
    Btb(unsigned sets = 512, unsigned ways = 4);

    /** Look up a target; returns true on hit and fills @p target. */
    bool lookup(std::uint64_t pc, std::uint64_t &target);

    /** Install / refresh an entry (LRU replacement). */
    void insert(std::uint64_t pc, std::uint64_t target);

    std::uint64_t sizeBits() const;
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }

    /** Warm-state snapshot: entries + LRU clock, not the counters. */
    void snapshotSave(SnapshotWriter &w) const;
    void snapshotRestore(SnapshotReader &r);

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
        std::uint64_t lru = 0;
    };
    unsigned sets_, ways_;
    std::vector<Entry> entries_;
    std::uint64_t lruClock_ = 0;
    std::uint64_t lookups_ = 0, hits_ = 0;
};

/** Circular return address stack with speculative push/pop. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned entries = 16);

    void push(std::uint64_t returnPc);
    /** Pop a predicted return target; 0 if the stack is empty. */
    std::uint64_t pop();
    unsigned depth() const { return depth_; }

    void snapshotSave(SnapshotWriter &w) const;
    void snapshotRestore(SnapshotReader &r);

  private:
    std::vector<std::uint64_t> stack_;
    unsigned top_ = 0;
    unsigned depth_ = 0;
};

/** Outcome of a front-end branch prediction. */
struct BranchPrediction
{
    bool taken = false;
    std::uint64_t target = 0;
    bool btbHit = false;
};

/**
 * The complete front-end branch unit: direction predictor + BTB + RAS.
 */
class BranchUnit
{
  public:
    /** Configuration of the branch unit. */
    struct Config
    {
        std::string kind = "combining"; ///< bimodal | gshare | combining
        unsigned bimodalEntries = 2048;
        unsigned gshareEntries = 4096;
        unsigned gshareHistory = 12;
        unsigned chooserEntries = 2048;
        unsigned btbSets = 512;
        unsigned btbWays = 4;
        unsigned rasEntries = 16;
    };

    BranchUnit();
    explicit BranchUnit(const Config &cfg);

    /**
     * Predict the branch at @p pc of class @p cls. Calls/returns
     * speculatively manipulate the RAS unless @p useRas is false
     * (wrong-path prediction: the RAS is not corrupted because a
     * squash would have repaired it).
     */
    BranchPrediction predict(std::uint64_t pc, InstClass cls,
                             bool useRas = true);

    /** Commit-time training with the resolved outcome. */
    void update(std::uint64_t pc, InstClass cls, bool taken,
                std::uint64_t target);

    /** @name Activity counters for the power model */
    /// @{
    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t updates() const { return updates_; }
    /// @}

    /** Direction-predictor accuracy observed so far (commit-time). */
    std::uint64_t dirCorrect() const { return dirCorrect_; }
    std::uint64_t dirWrong() const { return dirWrong_; }

    /** Total predictor state, in bits, for the power model. */
    std::uint64_t sizeBits() const;

    DirectionPredictor &direction() { return *dir_; }
    Btb &btb() { return btb_; }
    ReturnAddressStack &ras() { return ras_; }

    /** Warm-state snapshot of the whole unit (direction predictor,
     *  BTB, RAS); the activity counters stay with the measured
     *  region. */
    void snapshotSave(SnapshotWriter &w) const;
    void snapshotRestore(SnapshotReader &r);

  private:
    std::unique_ptr<DirectionPredictor> dir_;
    Btb btb_;
    ReturnAddressStack ras_;
    std::uint64_t predictions_ = 0, updates_ = 0;
    std::uint64_t dirCorrect_ = 0, dirWrong_ = 0;
};

} // namespace gals

#endif // BPRED_BPRED_HH
