#include "bpred/bpred.hh"

#include "sim/logging.hh"
#include "sim/snapshot_io.hh"

namespace gals
{

CombiningPredictor::CombiningPredictor(unsigned bimodalEntries,
                                       unsigned gshareEntries,
                                       unsigned gshareHistory,
                                       unsigned chooserEntries)
    : bimodal_(bimodalEntries),
      gshare_(gshareEntries, gshareHistory),
      chooser_(chooserEntries, 2)
{
    gals_assert(chooserEntries > 0 &&
                    (chooserEntries & (chooserEntries - 1)) == 0,
                "chooser table size must be a power of two");
}

bool
CombiningPredictor::predict(std::uint64_t pc)
{
    const bool b = bimodal_.predict(pc);
    const bool g = gshare_.predict(pc);
    const auto idx = (pc >> 2) & (chooser_.size() - 1);
    // Chooser >= 2 selects gshare.
    return chooser_[idx] >= 2 ? g : b;
}

void
CombiningPredictor::update(std::uint64_t pc, bool taken)
{
    const bool b = bimodal_.predict(pc);
    const bool g = gshare_.predict(pc);
    const auto idx = (pc >> 2) & (chooser_.size() - 1);
    auto &ch = chooser_[idx];
    if (g == taken && b != taken) {
        if (ch < 3)
            ++ch;
    } else if (b == taken && g != taken) {
        if (ch > 0)
            --ch;
    }
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

std::uint64_t
CombiningPredictor::sizeBits() const
{
    return bimodal_.sizeBits() + gshare_.sizeBits() + chooser_.size() * 2;
}

void
CombiningPredictor::snapshotSave(SnapshotWriter &w) const
{
    bimodal_.snapshotSave(w);
    gshare_.snapshotSave(w);
    w.u64(chooser_.size());
    for (std::uint8_t ctr : chooser_)
        w.u64(ctr);
}

void
CombiningPredictor::snapshotRestore(SnapshotReader &r)
{
    bimodal_.snapshotRestore(r);
    gshare_.snapshotRestore(r);
    r.expectU64(r.u64(), chooser_.size(), "chooser table size");
    for (std::uint8_t &ctr : chooser_) {
        const std::uint64_t v = r.u64();
        if (v > 3)
            r.fail("chooser counter out of range");
        ctr = static_cast<std::uint8_t>(v);
    }
}

} // namespace gals
