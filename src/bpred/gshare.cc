#include "bpred/bpred.hh"

#include "sim/logging.hh"
#include "sim/snapshot_io.hh"

namespace gals
{

GsharePredictor::GsharePredictor(unsigned entries, unsigned historyBits)
    : table_(entries, 2), historyMask_((1u << historyBits) - 1)
{
    gals_assert(entries > 0 && (entries & (entries - 1)) == 0,
                "gshare table size must be a power of two");
    gals_assert(historyBits > 0 && historyBits <= 30, "bad history size");
}

std::size_t
GsharePredictor::index(std::uint64_t pc) const
{
    return ((pc >> 2) ^ history_) & (table_.size() - 1);
}

bool
GsharePredictor::predict(std::uint64_t pc)
{
    return table_[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    auto &ctr = table_[index(pc)];
    if (taken)
        ctr = ctr < 3 ? ctr + 1 : 3;
    else
        ctr = ctr > 0 ? ctr - 1 : 0;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
}

void
GsharePredictor::snapshotSave(SnapshotWriter &w) const
{
    w.u64(table_.size());
    for (std::uint8_t ctr : table_)
        w.u64(ctr);
    w.u64(history_);
}

void
GsharePredictor::snapshotRestore(SnapshotReader &r)
{
    r.expectU64(r.u64(), table_.size(), "gshare table size");
    for (std::uint8_t &ctr : table_) {
        const std::uint64_t v = r.u64();
        if (v > 3)
            r.fail("gshare counter out of range");
        ctr = static_cast<std::uint8_t>(v);
    }
    const std::uint64_t h = r.u64();
    if (h & ~static_cast<std::uint64_t>(historyMask_))
        r.fail("gshare history wider than this predictor");
    history_ = static_cast<std::uint32_t>(h);
}

} // namespace gals
