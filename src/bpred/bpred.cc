#include "bpred/bpred.hh"

#include "sim/logging.hh"
#include "sim/snapshot_io.hh"

namespace gals
{

BranchUnit::BranchUnit() : BranchUnit(Config()) {}

BranchUnit::BranchUnit(const Config &cfg)
    : btb_(cfg.btbSets, cfg.btbWays), ras_(cfg.rasEntries)
{
    if (cfg.kind == "bimodal") {
        dir_ = std::make_unique<BimodalPredictor>(cfg.bimodalEntries);
    } else if (cfg.kind == "gshare") {
        dir_ = std::make_unique<GsharePredictor>(cfg.gshareEntries,
                                                 cfg.gshareHistory);
    } else if (cfg.kind == "combining") {
        dir_ = std::make_unique<CombiningPredictor>(
            cfg.bimodalEntries, cfg.gshareEntries, cfg.gshareHistory,
            cfg.chooserEntries);
    } else {
        gals_fatal("unknown branch predictor kind '", cfg.kind, "'");
    }
}

BranchPrediction
BranchUnit::predict(std::uint64_t pc, InstClass cls, bool useRas)
{
    ++predictions_;
    BranchPrediction p;

    switch (cls) {
      case InstClass::condBranch: {
        const bool dir = dir_->predict(pc);
        std::uint64_t tgt = 0;
        p.btbHit = btb_.lookup(pc, tgt);
        // Direction says taken, but without a BTB target the front end
        // cannot redirect; it keeps fetching fall-through.
        p.taken = dir && p.btbHit;
        p.target = p.taken ? tgt : pc + 4;
        break;
      }
      case InstClass::uncondBranch: {
        std::uint64_t tgt = 0;
        p.btbHit = btb_.lookup(pc, tgt);
        p.taken = p.btbHit;
        p.target = p.btbHit ? tgt : pc + 4;
        break;
      }
      case InstClass::call: {
        std::uint64_t tgt = 0;
        p.btbHit = btb_.lookup(pc, tgt);
        p.taken = p.btbHit;
        p.target = p.btbHit ? tgt : pc + 4;
        if (useRas)
            ras_.push(pc + 4);
        break;
      }
      case InstClass::ret: {
        const std::uint64_t tgt = useRas ? ras_.pop() : 0;
        p.btbHit = tgt != 0;
        p.taken = p.btbHit;
        p.target = p.btbHit ? tgt : pc + 4;
        break;
      }
      default:
        gals_panic("predict() on non-branch class");
    }
    return p;
}

void
BranchUnit::update(std::uint64_t pc, InstClass cls, bool taken,
                   std::uint64_t target)
{
    ++updates_;
    if (cls == InstClass::condBranch) {
        const bool pred = dir_->predict(pc);
        if (pred == taken)
            ++dirCorrect_;
        else
            ++dirWrong_;
        dir_->update(pc, taken);
    }
    if (taken && cls != InstClass::ret)
        btb_.insert(pc, target);
}

std::uint64_t
BranchUnit::sizeBits() const
{
    return dir_->sizeBits() + btb_.sizeBits();
}

void
BranchUnit::snapshotSave(SnapshotWriter &w) const
{
    // The predictor kind guards against restoring, say, gshare bytes
    // into a bimodal unit whose table happens to be the same length.
    w.str(dir_->name());
    dir_->snapshotSave(w);
    btb_.snapshotSave(w);
    ras_.snapshotSave(w);
}

void
BranchUnit::snapshotRestore(SnapshotReader &r)
{
    const std::string kind = r.str();
    if (r.ok() && kind != dir_->name())
        r.fail("mismatched branch predictor kind");
    dir_->snapshotRestore(r);
    btb_.snapshotRestore(r);
    ras_.snapshotRestore(r);
}

} // namespace gals
