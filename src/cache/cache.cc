#include "cache/cache.hh"

#include <bit>
#include <utility>

#include "sim/logging.hh"
#include "sim/snapshot_io.hh"

namespace gals
{

Cache::Cache(std::string name, std::uint64_t sizeBytes, unsigned ways,
             unsigned lineBytes, unsigned hitLatency)
    : name_(std::move(name)), sizeBytes_(sizeBytes), ways_(ways),
      lineBytes_(lineBytes), hitLatency_(hitLatency)
{
    gals_assert(ways_ > 0, "cache '", name_, "': zero ways");
    gals_assert(lineBytes_ > 0 && std::has_single_bit(lineBytes_),
                "cache '", name_, "': line size must be a power of two");
    gals_assert(sizeBytes_ % (static_cast<std::uint64_t>(ways_) *
                              lineBytes_) == 0,
                "cache '", name_, "': size not divisible by way size");
    sets_ = static_cast<unsigned>(sizeBytes_ / ways_ / lineBytes_);
    gals_assert(sets_ > 0 && std::has_single_bit(sets_), "cache '", name_,
                "': set count must be a power of two");
    lineShift_ = static_cast<unsigned>(std::countr_zero(lineBytes_));
    lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

std::uint64_t
Cache::lineAddr(std::uint64_t addr) const
{
    return addr >> lineShift_;
}

bool
Cache::access(std::uint64_t addr, bool write, bool &writeback)
{
    writeback = false;
    ++accesses_;

    const std::uint64_t la = lineAddr(addr);
    const std::uint64_t set = la & (sets_ - 1);
    const std::uint64_t tag = la >> std::countr_zero(sets_);
    Line *base = &lines_[set * ways_];

    for (unsigned w = 0; w < ways_; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lru = ++lruClock_;
            l.dirty = l.dirty || write;
            ++hits_;
            return true;
        }
    }

    // Miss: pick LRU victim (prefer invalid ways).
    Line *victim = base;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lru < victim->lru)
            victim = &l;
    }
    if (victim->valid && victim->dirty)
        writeback = true;

    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lru = ++lruClock_;
    return false;
}

bool
Cache::contains(std::uint64_t addr) const
{
    const std::uint64_t la = lineAddr(addr);
    const std::uint64_t set = la & (sets_ - 1);
    const std::uint64_t tag = la >> std::countr_zero(sets_);
    const Line *base = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &l : lines_)
        l = Line();
    lruClock_ = 0;
}

void
Cache::snapshotSave(SnapshotWriter &w) const
{
    w.u64(lines_.size());
    for (const Line &l : lines_) {
        w.flag(l.valid);
        w.flag(l.dirty);
        w.u64(l.tag);
        w.u64(l.lru);
    }
    w.u64(lruClock_);
}

void
Cache::snapshotRestore(SnapshotReader &r)
{
    r.expectU64(r.u64(), lines_.size(), "cache line count");
    for (Line &l : lines_) {
        l.valid = r.flag();
        l.dirty = r.flag();
        l.tag = r.u64();
        l.lru = r.u64();
    }
    lruClock_ = r.u64();
}

} // namespace gals
