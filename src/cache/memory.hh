/**
 * @file
 * Flat main-memory timing model: fixed latency, access counting.
 */

#ifndef CACHE_MEMORY_HH
#define CACHE_MEMORY_HH

#include <cstdint>

namespace gals
{

/**
 * Main memory behind the L2: constant-latency, infinite capacity.
 */
class MemoryModel
{
  public:
    explicit MemoryModel(unsigned latencyCycles = 60)
        : latency_(latencyCycles)
    {
    }

    /** Record an access and return its latency in cycles. */
    unsigned
    access()
    {
        ++accesses_;
        return latency_;
    }

    unsigned latency() const { return latency_; }
    void setLatency(unsigned l) { latency_ = l; }
    std::uint64_t accesses() const { return accesses_; }

  private:
    unsigned latency_;
    std::uint64_t accesses_ = 0;
};

} // namespace gals

#endif // CACHE_MEMORY_HH
