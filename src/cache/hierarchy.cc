#include "cache/hierarchy.hh"

namespace gals
{

CacheHierarchy::CacheHierarchy(const HierarchyConfig &cfg)
    : cfg_(cfg),
      il1_("il1", cfg.il1Size, cfg.il1Ways, cfg.lineBytes,
           cfg.il1Latency),
      dl1_("dl1", cfg.dl1Size, cfg.dl1Ways, cfg.lineBytes,
           cfg.dl1Latency),
      l2_("l2", cfg.l2Size, cfg.l2Ways, cfg.lineBytes, cfg.l2Latency),
      mem_(cfg.memLatency)
{
}

MemAccessOutcome
CacheHierarchy::missToL2(std::uint64_t addr, bool dirty_evicted)
{
    MemAccessOutcome out;
    bool l2_wb = false;
    const bool l2_hit = l2_.access(addr, false, l2_wb);
    out.l2Accesses = 1;
    if (dirty_evicted) {
        // The L1 victim writes back into the L2.
        bool dummy = false;
        l2_.access(addr, true, dummy);
        ++out.l2Accesses;
    }
    if (l2_hit) {
        out.level = 2;
    } else {
        out.level = 3;
        mem_.access();
        ++out.memAccesses;
        if (l2_wb)
            ++out.memAccesses; // dirty L2 victim to memory
    }
    return out;
}

MemAccessOutcome
CacheHierarchy::instFetch(std::uint64_t pc)
{
    bool wb = false;
    if (il1_.access(pc, false, wb)) {
        MemAccessOutcome out;
        out.level = 1;
        return out;
    }
    return missToL2(pc, false); // I-cache lines are never dirty
}

MemAccessOutcome
CacheHierarchy::dataAccess(std::uint64_t addr, bool write)
{
    bool wb = false;
    if (dl1_.access(addr, write, wb)) {
        MemAccessOutcome out;
        out.level = 1;
        return out;
    }
    return missToL2(addr, wb);
}

} // namespace gals
