/**
 * @file
 * Set-associative cache model with LRU replacement and write-back,
 * write-allocate policy.
 *
 * Timing is expressed as the *level* an access was served from; the
 * pipeline converts levels to ticks using the clock period of the
 * domain each level lives in (important in GALS mode, where the L2
 * belongs to the memory clock domain and may run at a different
 * frequency than the fetch domain).
 */

#ifndef CACHE_CACHE_HH
#define CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gals
{

class SnapshotWriter;
class SnapshotReader;

/**
 * One level of cache.
 */
class Cache
{
  public:
    /**
     * @param name       diagnostic name
     * @param sizeBytes  total capacity
     * @param ways       associativity (1 = direct mapped)
     * @param lineBytes  line size (power of two)
     * @param hitLatency access latency in cycles of the owning domain
     */
    Cache(std::string name, std::uint64_t sizeBytes, unsigned ways,
          unsigned lineBytes, unsigned hitLatency);

    /**
     * Access the cache.
     *
     * @param addr      byte address
     * @param write     true for stores
     * @param writeback set to true if a dirty line was evicted
     * @return true on hit; on miss the line is allocated
     */
    bool access(std::uint64_t addr, bool write, bool &writeback);

    /** Probe without modifying state (for tests/debug). */
    bool contains(std::uint64_t addr) const;

    /** Invalidate everything (cold state). */
    void flush();

    /** @name Geometry */
    /// @{
    std::uint64_t sizeBytes() const { return sizeBytes_; }
    unsigned ways() const { return ways_; }
    unsigned sets() const { return sets_; }
    unsigned lineBytes() const { return lineBytes_; }
    unsigned hitLatency() const { return hitLatency_; }
    /// @}

    /** @name Statistics */
    /// @{
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return accesses_ - hits_; }
    std::uint64_t writebacks() const { return writebacks_; }
    double missRate() const
    {
        return accesses_ ? double(misses()) / double(accesses_) : 0.0;
    }
    /// @}

    const std::string &name() const { return name_; }

    /** @name Warm-state snapshot (core/snapshot.hh)
     *
     * Tag/valid/dirty/LRU state of every line plus the LRU clock —
     * the warm contents — but none of the statistics counters, which
     * belong to the measured region. Restore checks the geometry
     * (line count) against this cache and fails the reader on a
     * mismatch.
     */
    /// @{
    void snapshotSave(SnapshotWriter &w) const;
    void snapshotRestore(SnapshotReader &r);
    /// @}

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
    };

    std::uint64_t lineAddr(std::uint64_t addr) const;

    std::string name_;
    std::uint64_t sizeBytes_;
    unsigned ways_;
    unsigned lineBytes_;
    unsigned sets_;
    unsigned lineShift_;
    unsigned hitLatency_;
    std::vector<Line> lines_;
    std::uint64_t lruClock_ = 0;

    std::uint64_t accesses_ = 0, hits_ = 0, writebacks_ = 0;
};

} // namespace gals

#endif // CACHE_CACHE_HH
