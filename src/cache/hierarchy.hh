/**
 * @file
 * The three-level memory hierarchy of the simulated machine
 * (paper Table 3): 16KB direct-mapped L1 I-cache, 16KB 4-way L1
 * D-cache, 256KB 4-way unified L2, flat main memory.
 *
 * Accesses report *which level served them* so the pipeline can
 * convert to time using the right clock domain's period: the L1
 * I-cache belongs to the fetch domain, while the D-cache and L2 belong
 * to the memory domain.
 */

#ifndef CACHE_HIERARCHY_HH
#define CACHE_HIERARCHY_HH

#include <cstdint>

#include "cache/cache.hh"
#include "cache/memory.hh"

namespace gals
{

/** Outcome of a hierarchy access. */
struct MemAccessOutcome
{
    /** 1 = L1 hit, 2 = L2 hit, 3 = main memory. */
    unsigned level = 1;
    /** L2 accesses performed (demand + writeback traffic). */
    unsigned l2Accesses = 0;
    /** Main-memory accesses performed. */
    unsigned memAccesses = 0;
};

/** Geometry/latency knobs for the hierarchy. */
struct HierarchyConfig
{
    std::uint64_t il1Size = 16 * 1024;
    unsigned il1Ways = 1; // direct mapped (Table 3)
    std::uint64_t dl1Size = 16 * 1024;
    unsigned dl1Ways = 4;
    std::uint64_t l2Size = 256 * 1024;
    unsigned l2Ways = 4;
    unsigned lineBytes = 32;
    unsigned il1Latency = 1;
    unsigned dl1Latency = 1;
    unsigned l2Latency = 6;
    unsigned memLatency = 24; ///< SimpleScalar-era main memory
};

/**
 * L1I + L1D + unified L2 + memory.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &cfg = HierarchyConfig());

    /** Instruction fetch at @p pc. */
    MemAccessOutcome instFetch(std::uint64_t pc);

    /** Data access (load or store) at @p addr. */
    MemAccessOutcome dataAccess(std::uint64_t addr, bool write);

    Cache &il1() { return il1_; }
    Cache &dl1() { return dl1_; }
    Cache &l2() { return l2_; }
    MemoryModel &memory() { return mem_; }
    const HierarchyConfig &config() const { return cfg_; }

  private:
    MemAccessOutcome missToL2(std::uint64_t addr, bool dirty_evicted);

    HierarchyConfig cfg_;
    Cache il1_;
    Cache dl1_;
    Cache l2_;
    MemoryModel mem_;
};

} // namespace gals

#endif // CACHE_HIERARCHY_HH
