#include "dvfs/vscale.hh"

#include <cmath>

#include "sim/logging.hh"

namespace gals
{

double
delayFactor(double vdd, const TechParams &t)
{
    gals_assert(vdd > t.vt, "vdd ", vdd, " must exceed vt ", t.vt);
    auto delay = [&t](double v) {
        return v / std::pow(v - t.vt, t.alpha);
    };
    return delay(vdd) / delay(t.vddNominal);
}

double
vddForSlowdown(double slowdown, const TechParams &t)
{
    gals_assert(slowdown >= 1.0, "slowdown ", slowdown, " < 1");
    if (slowdown == 1.0)
        return t.vddNominal;

    // delayFactor is monotonically decreasing in vdd on (vt, vn]:
    // bisect for the voltage with the requested delay growth.
    double lo = t.vt + 1e-4;
    double hi = t.vddNominal;
    for (int i = 0; i < 100; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (delayFactor(mid, t) > slowdown)
            lo = mid; // too slow: raise voltage
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
energyFactor(double vdd, const TechParams &t)
{
    return t.energyScale(vdd);
}

double
DvfsSetting::vddOf(DomainId d, const TechParams &t) const
{
    const double s = slowdown[domainIndex(d)];
    gals_assert(s >= 1.0, "domain ", domainName(d), " slowdown ", s,
                " < 1");
    if (!scaleVoltage)
        return t.vddNominal;
    return vddForSlowdown(s, t);
}

bool
DvfsSetting::allNominal() const
{
    for (const double s : slowdown)
        if (s != 1.0)
            return false;
    return true;
}

IdealScaling
idealScalingForPerf(double perfRatio, const TechParams &t)
{
    gals_assert(perfRatio > 0.0 && perfRatio <= 1.0,
                "perf ratio must be in (0, 1], got ", perfRatio);
    IdealScaling is;
    is.slowdown = 1.0 / perfRatio;
    is.vdd = vddForSlowdown(is.slowdown, t);
    is.energyFactor = energyFactor(is.vdd, t);
    // Same cycle count at 1/s frequency: time stretches by s.
    is.powerFactor = is.energyFactor / is.slowdown;
    return is;
}

} // namespace gals
