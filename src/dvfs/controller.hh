/**
 * @file
 * Dynamic, application-driven per-domain DVFS controller.
 *
 * The paper's conclusion points past its static experiments:
 * "Eventually, fine adaptation can be extended to support
 * application-driven, multiple-domain dynamic clock/voltage scaling."
 * This controller implements that extension on top of the runtime
 * retiming the simulation substrate already supports.
 *
 * Every sampling interval it computes each registered domain's
 * utilization (work performed / peak work possible at the current
 * frequency) and walks the domain through a table of slowdown steps:
 * below the low-water mark the domain is slowed one step (and its
 * supply dropped per equation 1); above the high-water mark it is sped
 * back up one step. An idle floating-point unit therefore glides to a
 * deep slowdown on integer code — the perl/gcc experiments of section
 * 5.2, but decided online instead of offline profiling (the paper
 * contrasts itself with Semeraro et al.'s offline approach).
 */

#ifndef DVFS_CONTROLLER_HH
#define DVFS_CONTROLLER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dvfs/vscale.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"

namespace gals
{

/** Tuning knobs of the dynamic controller. */
struct DynamicDvfsConfig
{
    /** Sampling interval in ticks (simulated time). */
    Tick samplePeriod = 2000 * 1000; // 2000 nominal cycles at 1 GHz

    /** Slow a domain one step below this utilization. */
    double loUtil = 0.08;
    /** Speed a domain one step above this utilization. */
    double hiUtil = 0.35;

    /** Samples ignored at startup (cache/predictor warm-up). */
    unsigned warmupSamples = 2;

    /** Allowed slowdown factors, ascending from nominal. */
    std::vector<double> steps = {1.0, 4.0 / 3.0, 2.0, 3.0};

    /** Scale supply voltage along with frequency (equation 1). */
    bool scaleVoltage = true;
};

/**
 * Samples utilization and retunes clock domains at run time.
 */
class DynamicDvfsController
{
  public:
    DynamicDvfsController(EventQueue &eq, const TechParams &tech,
                          const DynamicDvfsConfig &cfg =
                              DynamicDvfsConfig());
    ~DynamicDvfsController();

    DynamicDvfsController(const DynamicDvfsController &) = delete;
    DynamicDvfsController &
    operator=(const DynamicDvfsController &) = delete;

    /**
     * Put @p domain under control.
     *
     * @param workCounter monotonically increasing count of useful work
     *        units (e.g. instructions issued in the domain), read
     *        directly each sample — no callback indirection. Must stay
     *        valid while the controller runs.
     * @param peakPerCycle the most work the domain can do per cycle
     *        (its issue width)
     */
    void manage(ClockDomain &domain, const std::uint64_t *workCounter,
                double peakPerCycle);

    /** Begin sampling. */
    void start();

    /** Stop sampling (domains keep their current settings). */
    void stop();

    /** Total step changes applied so far. */
    std::uint64_t adjustments() const { return adjustments_; }

    /** Current step index of a managed domain (0 = nominal). */
    unsigned stepOf(const ClockDomain &domain) const;

    /** Most recent measured utilization of a managed domain. */
    double utilizationOf(const ClockDomain &domain) const;

  private:
    struct Managed
    {
        ClockDomain *domain;
        const std::uint64_t *workCounter;
        double peakPerCycle;
        Tick nominalPeriod;
        unsigned step = 0;
        std::uint64_t lastWork = 0;
        Cycle lastCycle = 0;
        double lastUtil = 0.0;
    };

    void sample();
    void applyStep(Managed &m, unsigned step);
    const Managed *find(const ClockDomain &domain) const;

    EventQueue &eq_;
    TechParams tech_;
    DynamicDvfsConfig cfg_;
    std::vector<Managed> managed_;
    std::unique_ptr<PeriodicEvent> sampler_;
    std::uint64_t adjustments_ = 0;
    std::uint64_t samples_ = 0;
};

} // namespace gals

#endif // DVFS_CONTROLLER_HH
