/**
 * @file
 * Named per-domain slowdown policies used by the paper's second set of
 * experiments (section 5.2): the generic selective slowdown of Figure
 * 11, the ijpeg memory-clock sweep of Figure 12 (gals-00/10/20/50) and
 * the gcc floating-point slowdowns of Figure 13 (gals-1 / gals-2).
 */

#ifndef DVFS_DVFS_POLICY_HH
#define DVFS_DVFS_POLICY_HH

#include <string>
#include <vector>

#include "dvfs/vscale.hh"

namespace gals
{

/** A named DVFS configuration. */
struct DvfsPolicy
{
    std::string name;
    DvfsSetting setting;
};

/**
 * Figure 11: "the fetch clock and memory clock were slowed down by 10%
 * and the floating point clock was slowed by 50%."
 */
DvfsPolicy genericSlowdownPolicy();

/**
 * Section 5.2, perl: "we slowed down the FP clock by a factor of 3."
 */
DvfsPolicy perlFpPolicy();

/**
 * Figure 12 (ijpeg): fetch -10%, FP -20%, memory slowed by
 * @p memPercent percent (0, 10, 20 or 50); named gals-00/10/20/50.
 */
DvfsPolicy ijpegSweepPolicy(unsigned memPercent);

/**
 * Figure 13 (gcc): fetch -10%; FP slower by 50% (variant 1, "gals-1")
 * or by a factor of 3 (variant 2, "gals-2").
 */
DvfsPolicy gccFpPolicy(unsigned variant);

/** All four ijpeg sweep points, in paper order. */
std::vector<DvfsPolicy> ijpegSweepPolicies();

/**
 * Convert a "slowed by X%" phrase to a frequency slowdown factor:
 * the clock runs at (100-X)% of nominal, i.e. factor 100/(100-X).
 */
double slowdownFromPercent(double percent);

} // namespace gals

#endif // DVFS_DVFS_POLICY_HH
