/**
 * @file
 * Voltage/frequency scaling math (paper section 3.3, equation 1):
 *
 *     D  ∝  Vdd / (Vdd - Vt)^alpha
 *
 * Slowing a clock domain by a factor s >= 1 allows its supply to drop
 * to the voltage where the logic delay has grown by exactly s; since
 * switching energy goes as Vdd^2, that is where the energy savings of
 * multiple-clock multiple-voltage GALS designs come from (section
 * 5.2). The paper uses alpha = 1.6 for 0.13 um devices.
 */

#ifndef DVFS_VSCALE_HH
#define DVFS_VSCALE_HH

#include "core/domain.hh"
#include "power/tech_params.hh"

namespace gals
{

/**
 * Relative logic delay D(vdd) / D(vddNominal) per equation 1.
 * @pre vdd > vt.
 */
double delayFactor(double vdd, const TechParams &t);

/**
 * The supply voltage at which logic is exactly @p slowdown times
 * slower than at nominal (inverse of delayFactor, by bisection).
 *
 * @param slowdown >= 1.0
 * @return vdd in (vt, vddNominal]
 */
double vddForSlowdown(double slowdown, const TechParams &t);

/** Switching-energy ratio at @p vdd relative to nominal: (V/Vn)^2. */
double energyFactor(double vdd, const TechParams &t);

/**
 * Per-domain DVFS setting for one experiment: frequency slowdown
 * factors (1.0 = nominal) and whether supply voltages track them.
 */
struct DvfsSetting
{
    PerDomain<double> slowdown = {1.0, 1.0, 1.0, 1.0, 1.0};
    bool scaleVoltage = true;

    /** Voltage for domain @p d under this setting. */
    double vddOf(DomainId d, const TechParams &t) const;

    /** True if every domain runs at nominal frequency. */
    bool allNominal() const;
};

/**
 * The "ideal" comparison the paper plots in Figures 12 and 13: the
 * fully synchronous processor slowed uniformly (single clock, single
 * voltage) until it matches a given performance penalty, with supply
 * scaled per equation 1. Energy scales by (V'/Vn)^2 — cycle count is
 * unchanged — and average power additionally divides by the slowdown.
 */
struct IdealScaling
{
    double slowdown = 1.0;     ///< >= 1
    double vdd = 0.0;          ///< scaled supply
    double energyFactor = 1.0; ///< E' / E
    double powerFactor = 1.0;  ///< P' / P
};

/** Compute the ideal-scaling point for a performance ratio
 *  @p perfRatio = perf_new / perf_base (<= 1). */
IdealScaling idealScalingForPerf(double perfRatio, const TechParams &t);

} // namespace gals

#endif // DVFS_VSCALE_HH
