#include "dvfs/dvfs_policy.hh"

#include "sim/logging.hh"

namespace gals
{

double
slowdownFromPercent(double percent)
{
    gals_assert(percent >= 0.0 && percent < 100.0,
                "bad slowdown percent ", percent);
    return 100.0 / (100.0 - percent);
}

DvfsPolicy
genericSlowdownPolicy()
{
    DvfsPolicy p;
    p.name = "generic";
    p.setting.slowdown[domainIndex(DomainId::fetch)] =
        slowdownFromPercent(10.0);
    p.setting.slowdown[domainIndex(DomainId::memd)] =
        slowdownFromPercent(10.0);
    p.setting.slowdown[domainIndex(DomainId::fpd)] =
        slowdownFromPercent(50.0);
    return p;
}

DvfsPolicy
perlFpPolicy()
{
    DvfsPolicy p;
    p.name = "perl-fp3x";
    p.setting.slowdown[domainIndex(DomainId::fpd)] = 3.0;
    return p;
}

DvfsPolicy
ijpegSweepPolicy(unsigned memPercent)
{
    gals_assert(memPercent == 0 || memPercent == 10 || memPercent == 20 ||
                    memPercent == 50,
                "ijpeg sweep point must be 0/10/20/50, got ", memPercent);
    DvfsPolicy p;
    p.name = memPercent < 10 ? "gals-00"
                             : "gals-" + std::to_string(memPercent);
    p.setting.slowdown[domainIndex(DomainId::fetch)] =
        slowdownFromPercent(10.0);
    p.setting.slowdown[domainIndex(DomainId::fpd)] =
        slowdownFromPercent(20.0);
    if (memPercent > 0)
        p.setting.slowdown[domainIndex(DomainId::memd)] =
            slowdownFromPercent(memPercent);
    return p;
}

std::vector<DvfsPolicy>
ijpegSweepPolicies()
{
    return {ijpegSweepPolicy(0), ijpegSweepPolicy(10),
            ijpegSweepPolicy(20), ijpegSweepPolicy(50)};
}

DvfsPolicy
gccFpPolicy(unsigned variant)
{
    gals_assert(variant == 1 || variant == 2,
                "gcc policy variant must be 1 or 2");
    DvfsPolicy p;
    p.name = "gals-" + std::to_string(variant);
    p.setting.slowdown[domainIndex(DomainId::fetch)] =
        slowdownFromPercent(10.0);
    p.setting.slowdown[domainIndex(DomainId::fpd)] =
        variant == 1 ? slowdownFromPercent(50.0) : 3.0;
    return p;
}

} // namespace gals
