#include "dvfs/controller.hh"

#include <cmath>

#include "sim/logging.hh"

namespace gals
{

DynamicDvfsController::DynamicDvfsController(EventQueue &eq,
                                             const TechParams &tech,
                                             const DynamicDvfsConfig &cfg)
    : eq_(eq), tech_(tech), cfg_(cfg)
{
    gals_assert(!cfg_.steps.empty() && cfg_.steps.front() == 1.0,
                "DVFS steps must start at 1.0 (nominal)");
    for (std::size_t i = 1; i < cfg_.steps.size(); ++i)
        gals_assert(cfg_.steps[i] > cfg_.steps[i - 1],
                    "DVFS steps must ascend");
    gals_assert(cfg_.loUtil < cfg_.hiUtil, "DVFS thresholds inverted");
}

DynamicDvfsController::~DynamicDvfsController()
{
    stop();
}

void
DynamicDvfsController::manage(ClockDomain &domain,
                              const std::uint64_t *workCounter,
                              double peakPerCycle)
{
    gals_assert(workCounter != nullptr, "null work counter");
    gals_assert(peakPerCycle > 0.0, "peak work per cycle must be > 0");
    Managed m;
    m.domain = &domain;
    m.workCounter = workCounter;
    m.peakPerCycle = peakPerCycle;
    m.nominalPeriod = domain.period();
    m.lastWork = *workCounter;
    m.lastCycle = domain.cycle();
    managed_.push_back(m);
}

void
DynamicDvfsController::start()
{
    if (sampler_)
        return;
    sampler_ = std::make_unique<PeriodicEvent>(
        [this] { sample(); }, cfg_.samplePeriod, "dvfs.sampler",
        Event::statsPri);
    eq_.schedule(sampler_.get(), eq_.now() + cfg_.samplePeriod);
}

void
DynamicDvfsController::stop()
{
    if (sampler_ && sampler_->scheduled())
        eq_.deschedule(sampler_.get());
    sampler_.reset();
}

void
DynamicDvfsController::applyStep(Managed &m, unsigned step)
{
    if (step == m.step)
        return;
    m.step = step;
    const double slowdown = cfg_.steps[step];
    const Tick period = static_cast<Tick>(
        std::llround(static_cast<double>(m.nominalPeriod) * slowdown));
    m.domain->setPeriod(period);
    if (cfg_.scaleVoltage)
        m.domain->setVdd(vddForSlowdown(slowdown, tech_));
    ++adjustments_;
}

void
DynamicDvfsController::sample()
{
    const bool warming = samples_ < cfg_.warmupSamples;
    ++samples_;

    for (Managed &m : managed_) {
        const std::uint64_t work = *m.workCounter;
        const Cycle cycle = m.domain->cycle();
        const std::uint64_t d_work = work - m.lastWork;
        const Cycle d_cycle = cycle - m.lastCycle;
        m.lastWork = work;
        m.lastCycle = cycle;
        if (d_cycle == 0)
            continue;

        const double util = static_cast<double>(d_work) /
                            (static_cast<double>(d_cycle) *
                             m.peakPerCycle);
        m.lastUtil = util;

        if (warming)
            continue; // measure, but do not act yet

        if (util < cfg_.loUtil &&
            m.step + 1 < cfg_.steps.size()) {
            applyStep(m, m.step + 1);
        } else if (util > cfg_.hiUtil && m.step > 0) {
            applyStep(m, m.step - 1);
        }
    }
}

const DynamicDvfsController::Managed *
DynamicDvfsController::find(const ClockDomain &domain) const
{
    for (const Managed &m : managed_)
        if (m.domain == &domain)
            return &m;
    gals_panic("domain '", domain.name(), "' is not managed");
}

unsigned
DynamicDvfsController::stepOf(const ClockDomain &domain) const
{
    return find(domain)->step;
}

double
DynamicDvfsController::utilizationOf(const ClockDomain &domain) const
{
    return find(domain)->lastUtil;
}

} // namespace gals
