#include "core/channel.hh"

namespace gals
{

ChannelBase::ChannelBase(std::string name, ChannelMode mode,
                         ClockDomain &producer, ClockDomain &consumer,
                         std::size_t capacity, unsigned syncEdges,
                         bool streaming)
    : name_(std::move(name)), mode_(mode), producer_(producer),
      consumer_(consumer), capacity_(capacity), syncEdges_(syncEdges),
      streaming_(streaming)
{
    gals_assert(capacity_ > 0, "channel '", name_, "': zero capacity");
    gals_assert(syncEdges_ > 0, "channel '", name_, "': zero sync edges");
}

Tick
ChannelBase::visibleAt(Tick t) const
{
    if (mode_ == ChannelMode::syncLatch) {
        // Plain pipeline latch: readable at the next consumer edge.
        return consumer_.nextEdgeAfter(t);
    }
    // Empty-flag two-flop synchronizer: the consumer can use the item
    // at the syncEdges-th consumer edge strictly after the push.
    const Tick first = consumer_.nextEdgeAfter(t);
    return first + static_cast<Tick>(syncEdges_ - 1) * consumer_.period();
}

Tick
ChannelBase::freeVisibleAt(Tick t) const
{
    if (mode_ == ChannelMode::syncLatch) {
        // Synchronous queue: the slot is reusable immediately (stages
        // are ticked consumer-first within a cycle).
        return t;
    }
    const Tick first = producer_.nextEdgeAfter(t);
    return first + static_cast<Tick>(syncEdges_ - 1) * producer_.period();
}

} // namespace gals
