/**
 * @file
 * The complete processor model (paper section 4, Figure 3).
 *
 * One Processor instantiates the five pipeline regions — fetch,
 * decode/rename/commit, integer, floating point, memory — each bound
 * to a ClockDomain, and couples them with Channel objects.
 *
 *  - Base (synchronous) configuration: all five domains share the same
 *    period and phase, and every channel is a synchronous latch; this
 *    is exactly a conventional single-clock superscalar (Figure 3a).
 *  - GALS configuration: the domains get independent periods (for the
 *    multiple-clock experiments of section 5.2) and random initial
 *    phases, and every channel is an asynchronous FIFO with
 *    synchronizer latency (Figure 3b).
 *
 * Both configurations run the same pipeline code, so performance and
 * power comparisons are apples-to-apples, as in the paper.
 */

#ifndef CORE_PROCESSOR_HH
#define CORE_PROCESSOR_HH

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/channel.hh"
#include "core/domain.hh"
#include "cpu/backend.hh"
#include "cpu/core_config.hh"
#include "cpu/decode.hh"
#include "cpu/fetch.hh"
#include "dvfs/vscale.hh"
#include "power/clock_grid.hh"
#include "power/energy_account.hh"
#include "power/power_model.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "workload/generator.hh"

namespace gals
{

class SnapshotWriter;
class SnapshotReader;

/** Everything configurable about one Processor instance. */
struct ProcessorConfig
{
    CoreConfig core;

    /** GALS mode: async FIFOs + independent clocks. */
    bool gals = false;

    /** Nominal clock period in ticks (1000 ps = 1 GHz). */
    Tick nominalPeriod = defaults::nominalPeriod;

    /** Per-domain frequency/voltage scaling (section 5.2). */
    DvfsSetting dvfs;

    /** Capacity of instruction-carrying FIFOs. */
    unsigned fifoCapacity = defaults::instFifoCapacity;
    /** Capacity of message FIFOs (wakeups, completions, ...). */
    unsigned msgFifoCapacity = defaults::msgFifoCapacity;
    /** Synchronizer depth of the asynchronous FIFOs (edges). */
    unsigned syncEdges = defaults::syncEdges;

    /** Randomize initial clock phases (GALS mode; section 4.3). */
    bool randomPhase = true;
    std::uint64_t phaseSeed = 0;

    TechParams tech;
    ClockHierarchySpec clocks = defaultClockHierarchy();

    /** Abort if no instruction commits for this many nominal cycles. */
    std::uint64_t watchdogCycles = defaults::watchdogCycles;

    void validate() const;
};

/**
 * A runnable processor bound to one synthetic workload.
 */
class Processor
{
  public:
    /**
     * @param namePrefix  prepended to every domain/channel name; ""
     *     for a standalone core, "core<i>." inside a fabric::System
     *     so diagnostics distinguish the cores.
     */
    Processor(EventQueue &eq, const ProcessorConfig &cfg,
              const BenchmarkProfile &profile, std::uint64_t runSeed = 0,
              const std::string &namePrefix = "");
    ~Processor();

    /** Run until @p targetCommitted instructions have committed. */
    void run(std::uint64_t targetCommitted);

    /** @name Warm-state snapshot (core/snapshot.hh)
     *
     * runWarmup() runs like run() but, after the target commits, keeps
     * servicing events until the machine is totally quiescent — no
     * in-flight instruction anywhere, every channel empty — so a
     * snapshot never has to serialize pipeline payloads or pending
     * events. snapshotSave()/snapshotRestore() then move only the
     * long-lived microarchitectural state (caches, branch predictor,
     * rename map, workload walk, RNG streams). runResumed() continues
     * a restored machine for the measured region on a fresh event
     * queue: statistics, energy and clocks all start from zero, so
     * results cover exactly the measured instructions.
     */
    /// @{
    /** Run @p warmupCommitted instructions, then drain to quiescence. */
    void runWarmup(std::uint64_t warmupCommitted);
    /** No in-flight work in any stage and every channel empty. */
    bool quiescentForSnapshot() const;
    /** Serialize warm state. Requires quiescentForSnapshot(). */
    void snapshotSave(SnapshotWriter &w);
    /** Restore warm state into this freshly constructed processor;
     *  on reader failure the processor is unusable — discard it. */
    void snapshotRestore(SnapshotReader &r);
    /** Run @p measuredCommitted further instructions after a restore. */
    void runResumed(std::uint64_t measuredCommitted);
    /// @}

    /** @name Run primitives
     * run() is prepareRun + startClocks + the event-service loop +
     * finishRun. fabric::System drives N processors through the same
     * primitives on one shared EventQueue instead of calling run().
     */
    /// @{
    /** Arm the fetch unit to stop generating past the target. */
    void prepareRun(std::uint64_t targetCommitted);
    /** Start the five clocks in canonical reverse pipeline order; in
     *  GALS mode each draws a random initial phase from @p phaseRng
     *  (section 4.3). */
    void startClocks(Rng &phaseRng);
    /** Instructions committed so far. */
    std::uint64_t committed() const;
    /** Record the end-of-run time and stop the clocks. */
    void finishRun();
    /// @}

    /** @name Component access (post-run statistics) */
    /// @{
    FetchStage &fetch() { return *fetch_; }
    DecodeCommitUnit &decodeUnit() { return *decode_; }
    ExecDomain &intCluster() { return *execInt_; }
    ExecDomain &fpCluster() { return *execFp_; }
    ExecDomain &memCluster() { return *execMem_; }
    CacheHierarchy &caches() { return hier_; }
    EnergyAccount &energy() { return energy_; }
    const PowerModel &powerModel() const { return powerModel_; }
    ClockDomain &domain(DomainId d)
    {
        return *domains_[domainIndex(d)];
    }
    const ProcessorConfig &config() const { return cfg_; }
    /// @}

    /** Total simulated time of the run, in ticks. */
    Tick runTicks() const { return endTick_; }

    /** All inter-region channels (for FIFO statistics). */
    const std::vector<ChannelBase *> &channels() const
    {
        return allChannels_;
    }

    /** Sum of pushes+pops over all channels. */
    std::uint64_t fifoEvents() const;

    /**
     * Total energy including the post-run FIFO charges, in nJ. Call
     * after run(); idempotent.
     */
    double finalizeEnergyNj();

    /**
     * Dump a gem5-style statistics listing ("name value # desc") of
     * the run: throughput, latency, speculation, occupancies, caches,
     * per-channel FIFO activity and per-unit energies.
     */
    void dumpStats(std::ostream &os);

  private:
    void buildDomains(std::uint64_t runSeed);
    void buildChannels();
    void buildStages();
    void squashFrom(InstSeqNum afterSeq);
    void runLoop(std::uint64_t targetCommitted);
    void drainToQuiescence();

    EventQueue &eq_;
    ProcessorConfig cfg_;
    std::string prefix_;
    BenchmarkProfile profile_;
    StreamGenerator gen_;
    CacheHierarchy hier_;
    PowerModel powerModel_;
    EnergyAccount energy_;

    PerDomain<std::unique_ptr<ClockDomain>> domains_;

    /** @name Channels */
    /// @{
    std::unique_ptr<Channel<DynInstPtr>> fetchToDecode_;
    std::unique_ptr<Channel<DynInstPtr>> dispatchInt_;
    std::unique_ptr<Channel<DynInstPtr>> dispatchFp_;
    std::unique_ptr<Channel<DynInstPtr>> dispatchMem_;
    /** Wakeups between the three execution domains (6 channels). */
    std::vector<std::unique_ptr<Channel<WakeupMsg>>> wakeups_;
    std::unique_ptr<Channel<CompleteMsg>> completeInt_;
    std::unique_ptr<Channel<CompleteMsg>> completeFp_;
    std::unique_ptr<Channel<CompleteMsg>> completeMem_;
    std::unique_ptr<Channel<RedirectMsg>> redirect_;
    std::unique_ptr<Channel<StoreCommitMsg>> storeCommit_;
    std::unique_ptr<Channel<BpredUpdateMsg>> bpredUpdate_;
    std::vector<ChannelBase *> allChannels_;
    /// @}

    std::unique_ptr<FetchStage> fetch_;
    std::unique_ptr<DecodeCommitUnit> decode_;
    std::unique_ptr<ExecDomain> execInt_;
    std::unique_ptr<ExecDomain> execFp_;
    std::unique_ptr<ExecDomain> execMem_;

    /** Per-domain energy close-out, run after the stage logic on
     *  every edge (priority 90). */
    class DomainEnergyTicker final : public ClockDomain::Ticker
    {
      public:
        void
        bind(EnergyAccount &energy, DomainId id, ClockDomain &domain)
        {
            energy_ = &energy;
            id_ = id;
            domain_ = &domain;
        }

        void tick() override
        {
            energy_->domainCycle(id_, domain_->vdd());
        }

      private:
        EnergyAccount *energy_ = nullptr;
        DomainId id_{};
        ClockDomain *domain_ = nullptr;
    };

    /** Global clock-grid charge, synchronous machine only: the single
     *  clock switches every reference-domain cycle (priority 91). */
    class GlobalClockTicker final : public ClockDomain::Ticker
    {
      public:
        void
        bind(EnergyAccount &energy, ClockDomain &ref)
        {
            energy_ = &energy;
            ref_ = &ref;
        }

        void tick() override
        {
            energy_->globalClockCycle(ref_->vdd());
        }

      private:
        EnergyAccount *energy_ = nullptr;
        ClockDomain *ref_ = nullptr;
    };

    DomainEnergyTicker energyTickers_[numDomains];
    GlobalClockTicker globalClockTicker_;

    Tick endTick_ = 0;
    bool energyFinalized_ = false;
    double finalEnergyNj_ = 0.0;
};

} // namespace gals

#endif // CORE_PROCESSOR_HH
