#include "core/processor.hh"

#include <cmath>
#include <ostream>

#include "sim/logging.hh"
#include "sim/snapshot_io.hh"
#include "stats/stats.hh"

namespace gals
{

void
ProcessorConfig::validate() const
{
    core.validate();
    if (nominalPeriod == 0)
        gals_fatal("processor config: zero clock period");
    if (fifoCapacity < 2)
        gals_fatal("processor config: FIFO capacity must be >= 2");
    if (syncEdges == 0)
        gals_fatal("processor config: syncEdges must be >= 1");
    for (const double s : dvfs.slowdown)
        if (s < 1.0)
            gals_fatal("processor config: slowdown ", s, " < 1");
}

Processor::Processor(EventQueue &eq, const ProcessorConfig &cfg,
                     const BenchmarkProfile &profile,
                     std::uint64_t runSeed,
                     const std::string &namePrefix)
    : eq_(eq), cfg_(cfg), prefix_(namePrefix), profile_(profile),
      gen_(profile, runSeed), hier_(cfg.core.caches),
      powerModel_(cfg.core, cfg.tech, cfg.clocks), energy_(powerModel_)
{
    cfg_.validate();
    buildDomains(runSeed);
    buildChannels();
    buildStages();
}

Processor::~Processor()
{
    // Stop clocks so no event still scheduled on the queue refers to a
    // dying domain.
    for (auto &d : domains_)
        if (d && d->running())
            d->stop();
}

void
Processor::buildDomains(std::uint64_t runSeed)
{
    (void)runSeed;
    for (unsigned i = 0; i < numDomains; ++i) {
        const auto id = static_cast<DomainId>(i);
        const double slowdown = cfg_.dvfs.slowdown[i];
        const Tick period = static_cast<Tick>(
            std::llround(static_cast<double>(cfg_.nominalPeriod) *
                         slowdown));
        Tick phase = 0;
        domains_[i] = std::make_unique<ClockDomain>(
            eq_, prefix_ + "domain." + domainName(id), period, phase);
        domains_[i]->setVdd(cfg_.dvfs.vddOf(id, cfg_.tech));
    }
}

void
Processor::buildChannels()
{
    const ChannelMode mode =
        cfg_.gals ? ChannelMode::asyncFifo : ChannelMode::syncLatch;
    auto &d = domains_;
    auto dom = [&d](DomainId id) -> ClockDomain & {
        return *d[domainIndex(id)];
    };

    const unsigned cap = cfg_.fifoCapacity;
    const unsigned mcap = cfg_.msgFifoCapacity;
    const unsigned se = cfg_.syncEdges;

    fetchToDecode_ = std::make_unique<Channel<DynInstPtr>>(
        prefix_ + "ch.fetch2decode", mode, dom(DomainId::fetch),
        dom(DomainId::decode), cap, se);
    dispatchInt_ = std::make_unique<Channel<DynInstPtr>>(
        prefix_ + "ch.disp2int", mode, dom(DomainId::decode),
        dom(DomainId::intd), cap, se);
    dispatchFp_ = std::make_unique<Channel<DynInstPtr>>(
        prefix_ + "ch.disp2fp", mode, dom(DomainId::decode),
        dom(DomainId::fpd), cap, se);
    dispatchMem_ = std::make_unique<Channel<DynInstPtr>>(
        prefix_ + "ch.disp2mem", mode, dom(DomainId::decode),
        dom(DomainId::memd), cap, se);

    const DomainId execs[3] = {DomainId::intd, DomainId::fpd,
                               DomainId::memd};
    for (const DomainId p : execs) {
        for (const DomainId c : execs) {
            if (p == c)
                continue;
            wakeups_.push_back(std::make_unique<Channel<WakeupMsg>>(
                prefix_ + "ch.wakeup." + domainName(p) + "2" +
                    domainName(c),
                mode, dom(p), dom(c), mcap, se, false));
        }
    }

    completeInt_ = std::make_unique<Channel<CompleteMsg>>(
        prefix_ + "ch.complete.int", mode, dom(DomainId::intd),
        dom(DomainId::decode), mcap, se, false);
    completeFp_ = std::make_unique<Channel<CompleteMsg>>(
        prefix_ + "ch.complete.fp", mode, dom(DomainId::fpd),
        dom(DomainId::decode), mcap, se, false);
    completeMem_ = std::make_unique<Channel<CompleteMsg>>(
        prefix_ + "ch.complete.mem", mode, dom(DomainId::memd),
        dom(DomainId::decode), mcap, se, false);

    redirect_ = std::make_unique<Channel<RedirectMsg>>(
        prefix_ + "ch.redirect", mode, dom(DomainId::intd),
        dom(DomainId::fetch), 16, se, false);
    storeCommit_ = std::make_unique<Channel<StoreCommitMsg>>(
        prefix_ + "ch.storecommit", mode, dom(DomainId::decode),
        dom(DomainId::memd), mcap, se, false);
    bpredUpdate_ = std::make_unique<Channel<BpredUpdateMsg>>(
        prefix_ + "ch.bpredupdate", mode, dom(DomainId::decode),
        dom(DomainId::fetch), mcap, se, false);

    allChannels_ = {fetchToDecode_.get(), dispatchInt_.get(),
                    dispatchFp_.get(),    dispatchMem_.get(),
                    completeInt_.get(),   completeFp_.get(),
                    completeMem_.get(),   redirect_.get(),
                    storeCommit_.get(),   bpredUpdate_.get()};
    for (auto &w : wakeups_)
        allChannels_.push_back(w.get());
}

void
Processor::buildStages()
{
    auto &d = domains_;
    auto dom = [&d](DomainId id) -> ClockDomain & {
        return *d[domainIndex(id)];
    };

    fetch_ = std::make_unique<FetchStage>(
        cfg_.core, dom(DomainId::fetch), dom(DomainId::memd), gen_,
        hier_, energy_, *fetchToDecode_, *redirect_, *bpredUpdate_,
        cfg_.gals, cfg_.syncEdges);
    fetch_->onSquash([this](InstSeqNum seq) { squashFrom(seq); });

    decode_ = std::make_unique<DecodeCommitUnit>(
        cfg_.core, dom(DomainId::decode), energy_, *fetchToDecode_,
        *dispatchInt_, *dispatchFp_, *dispatchMem_,
        std::vector<Channel<CompleteMsg> *>{completeInt_.get(),
                                            completeFp_.get(),
                                            completeMem_.get()},
        *storeCommit_, *bpredUpdate_);

    // Wakeup channel layout (producer-major, skipping self):
    //   [0] int->fp  [1] int->mem
    //   [2] fp->int  [3] fp->mem
    //   [4] mem->int [5] mem->fp
    auto wk = [this](unsigned i) { return wakeups_[i].get(); };

    execInt_ = std::make_unique<ExecDomain>(
        ExecKind::intCluster, cfg_.core, dom(DomainId::intd), energy_,
        *dispatchInt_,
        std::vector<Channel<WakeupMsg> *>{wk(2), wk(4)},
        std::vector<Channel<WakeupMsg> *>{wk(0), wk(1)}, *completeInt_,
        redirect_.get(), nullptr, nullptr);

    execFp_ = std::make_unique<ExecDomain>(
        ExecKind::fpCluster, cfg_.core, dom(DomainId::fpd), energy_,
        *dispatchFp_,
        std::vector<Channel<WakeupMsg> *>{wk(0), wk(5)},
        std::vector<Channel<WakeupMsg> *>{wk(2), wk(3)}, *completeFp_,
        nullptr, nullptr, nullptr);

    execMem_ = std::make_unique<ExecDomain>(
        ExecKind::memCluster, cfg_.core, dom(DomainId::memd), energy_,
        *dispatchMem_,
        std::vector<Channel<WakeupMsg> *>{wk(1), wk(3)},
        std::vector<Channel<WakeupMsg> *>{wk(4), wk(5)}, *completeMem_,
        nullptr, storeCommit_.get(), &hier_);

    // Stage logic registered itself at priority 10 (each stage is a
    // ClockDomain::Ticker wired up in its constructor); the energy
    // close-out runs last (priority 90). Domains are started in
    // reverse pipeline order so that, in the synchronous machine,
    // consumers tick before producers at equal time.
    for (unsigned i = 0; i < numDomains; ++i) {
        const auto id = static_cast<DomainId>(i);
        energyTickers_[i].bind(energy_, id, *domains_[i]);
        domains_[i]->addTicker(energyTickers_[i], 90);
    }
    if (!cfg_.gals) {
        // The global clock grid switches every cycle of the (single)
        // clock; charge it from the reference domain.
        ClockDomain &ref = dom(DomainId::decode);
        globalClockTicker_.bind(energy_, ref);
        ref.addTicker(globalClockTicker_, 91);
    }
}

void
Processor::squashFrom(InstSeqNum afterSeq)
{
    auto younger = [afterSeq](const DynInstPtr &inst) {
        if (inst->seq > afterSeq) {
            inst->squashed = true;
            return true;
        }
        return false;
    };
    fetchToDecode_->squash(younger);
    dispatchInt_->squash(younger);
    dispatchFp_->squash(younger);
    dispatchMem_->squash(younger);

    decode_->squashAfter(afterSeq);
    execInt_->squashAfter(afterSeq);
    execFp_->squashAfter(afterSeq);
    execMem_->squashAfter(afterSeq);
}

void
Processor::prepareRun(std::uint64_t targetCommitted)
{
    gals_assert(targetCommitted > 0, "nothing to run");
    fetch_->setFetchLimit(targetCommitted);
}

void
Processor::startClocks(Rng &phaseRng)
{
    // Start clocks in reverse pipeline order (see buildStages). In
    // GALS mode each clock gets a random initial phase (section 4.3:
    // "the starting phase of each clock was set to a random value at
    // runtime").
    const DomainId start_order[numDomains] = {
        DomainId::intd, DomainId::fpd, DomainId::memd, DomainId::decode,
        DomainId::fetch};
    for (const DomainId id : start_order) {
        ClockDomain &cd = domain(id);
        if (cfg_.gals && cfg_.randomPhase)
            cd.setPhase(phaseRng.range(0, cd.period() - 1));
        cd.start();
    }
}

std::uint64_t
Processor::committed() const
{
    return decode_->commitStats().committed;
}

void
Processor::finishRun()
{
    endTick_ = eq_.now();
    for (auto &cd : domains_)
        if (cd->running())
            cd->stop();
}

void
Processor::run(std::uint64_t targetCommitted)
{
    prepareRun(targetCommitted);
    runLoop(targetCommitted);
    finishRun();
}

void
Processor::runLoop(std::uint64_t targetCommitted)
{
    Rng phase_rng(cfg_.phaseSeed * 0x9e3779b97f4a7c15ULL + 0x1234567ULL);
    startClocks(phase_rng);

    const Tick watchdog_ticks =
        cfg_.watchdogCycles * cfg_.nominalPeriod;
    std::uint64_t last_committed = decode_->commitStats().committed;
    Tick last_progress = eq_.now();

    while (decode_->commitStats().committed < targetCommitted) {
        gals_assert(!eq_.empty(), "event queue drained mid-run");
        eq_.serviceOne();

        const std::uint64_t c = decode_->commitStats().committed;
        if (c != last_committed) {
            last_committed = c;
            last_progress = eq_.now();
        } else if (eq_.now() - last_progress > watchdog_ticks) {
            gals_panic("watchdog: no commit for ", cfg_.watchdogCycles,
                       " cycles at tick ", eq_.now(), " (committed ",
                       c, "/", targetCommitted, ", rob=",
                       decode_->rob().size(), ", intIQ=",
                       execInt_->queue().size(), ", fpIQ=",
                       execFp_->queue().size(), ", memIQ=",
                       execMem_->queue().size(), ")");
        }
    }
}

void
Processor::runWarmup(std::uint64_t warmupCommitted)
{
    prepareRun(warmupCommitted);
    runLoop(warmupCommitted);
    drainToQuiescence();
    finishRun();
}

void
Processor::runResumed(std::uint64_t measuredCommitted)
{
    gals_assert(measuredCommitted > 0, "nothing to run");
    // The restored generator has already produced the warmup stream:
    // arm the limit relative to it (fetch compares against
    // gen_.generated(), not the commit counter, which restarts at 0).
    fetch_->setFetchLimit(gen_.generated() + measuredCommitted);
    runLoop(measuredCommitted);
    finishRun();
}

bool
Processor::quiescentForSnapshot() const
{
    if (!fetch_->quiescentForSnapshot() ||
        !decode_->quiescentForSnapshot() ||
        !execInt_->quiescentForSnapshot() ||
        !execFp_->quiescentForSnapshot() ||
        !execMem_->quiescentForSnapshot())
        return false;
    for (const ChannelBase *ch : allChannels_)
        if (ch->occupancy() != 0)
            return false;
    return true;
}

void
Processor::drainToQuiescence()
{
    // The fetch limit is already exhausted, so no new correct-path
    // work appears; whatever is still in flight (wrong-path fetches
    // awaiting their redirect, wakeup/complete/update messages in
    // FIFOs) retires or is squashed within a pipeline depth's worth
    // of cycles. The clocks self-reschedule, so bound the drain by
    // the same watchdog budget as the run loop.
    const Tick watchdog_ticks =
        cfg_.watchdogCycles * cfg_.nominalPeriod;
    const Tick start = eq_.now();
    while (!quiescentForSnapshot()) {
        gals_assert(!eq_.empty(), "event queue drained mid-drain");
        eq_.serviceOne();
        if (eq_.now() - start > watchdog_ticks)
            gals_panic("watchdog: machine not quiescent ",
                       cfg_.watchdogCycles,
                       " cycles after warmup target (tick ", eq_.now(),
                       ", rob=", decode_->rob().size(), ")");
    }
}

void
Processor::snapshotSave(SnapshotWriter &w)
{
    gals_assert(quiescentForSnapshot(),
                "warm snapshot of a non-quiescent machine");

    w.section("gen");
    gen_.snapshotSave(w);

    w.section("caches");
    hier_.il1().snapshotSave(w);
    hier_.dl1().snapshotSave(w);
    hier_.l2().snapshotSave(w);

    w.section("bpred");
    fetch_->branchUnit().snapshotSave(w);

    w.section("rename");
    decode_->rename().snapshotSave(w);

    w.section("fetch");
    w.u64(fetch_->nextSeq());

    // Channels and the event queue are empty by construction at the
    // quiescent snapshot point; the sections still exist in the
    // format so that relaxing the quiescence rule later is a format
    // extension, not a format break.
    w.section("channels");
    w.u64(allChannels_.size());
    for (const ChannelBase *ch : allChannels_)
        w.u64(ch->occupancy());
    w.section("events");
    w.u64(0);
}

void
Processor::snapshotRestore(SnapshotReader &r)
{
    r.section("gen");
    gen_.snapshotRestore(r);

    r.section("caches");
    hier_.il1().snapshotRestore(r);
    hier_.dl1().snapshotRestore(r);
    hier_.l2().snapshotRestore(r);

    r.section("bpred");
    fetch_->branchUnit().snapshotRestore(r);

    r.section("rename");
    decode_->rename().snapshotRestore(r);

    r.section("fetch");
    fetch_->setNextSeq(r.u64());

    r.section("channels");
    r.expectU64(r.u64(), allChannels_.size(), "snapshot channel count");
    for (std::size_t i = 0; r.ok() && i < allChannels_.size(); ++i)
        r.expectU64(r.u64(), 0, "in-flight channel payloads");
    r.section("events");
    r.expectU64(r.u64(), 0, "in-flight events");
    if (!r.ok())
        return;

    // Re-seed every execution domain's register-readiness view: at a
    // quiescent point nothing is in flight, so every physical
    // register is ready at its current rename epoch. Future
    // consumers rename to epoch e+1 and wait for the producer's
    // wakeup exactly as they would have in an uninterrupted run.
    RenameUnit &rn = decode_->rename();
    const unsigned regs = rn.totalPhysRegs();
    ExecDomain *clusters[3] = {execInt_.get(), execFp_.get(),
                               execMem_.get()};
    for (ExecDomain *c : clusters)
        for (unsigned reg = 0; reg < regs; ++reg) {
            const auto pr = static_cast<PhysRegId>(reg);
            c->scoreboard().observe(pr, rn.epochOf(pr));
        }
}

void
Processor::dumpStats(std::ostream &os)
{
    using stats::Scalar;
    using stats::StatGroup;

    StatGroup top(cfg_.gals ? "gals" : "base");
    auto scalar = [&top](const char *name, double v, const char *desc) {
        auto *s = new Scalar(&top, name, desc);
        *s = v;
        return s;
    };

    const CommitStats &cs = decode_->commitStats();
    const double period = static_cast<double>(cfg_.nominalPeriod);
    const double cycles = static_cast<double>(endTick_) / period;

    scalar("sim_ticks", static_cast<double>(endTick_),
           "simulated time (ps)");
    scalar("committed_insts", static_cast<double>(cs.committed),
           "committed instructions");
    scalar("ipc", cycles > 0 ? cs.committed / cycles : 0,
           "instructions per nominal cycle");
    scalar("fetched_insts", static_cast<double>(fetch_->fetched()),
           "all fetched instructions");
    scalar("wrong_path_insts",
           static_cast<double>(fetch_->wrongPathFetched()),
           "wrong-path fetches (paper Fig 8)");
    scalar("redirects", static_cast<double>(fetch_->redirects()),
           "branch mispredict recoveries");
    scalar("avg_slip_cycles",
           cs.committed ? cs.slipSumTicks / cs.committed / period : 0,
           "fetch-to-commit latency (paper Fig 6)");
    scalar("avg_fifo_slip_cycles",
           cs.committed
               ? cs.fifoSlipSumTicks / cs.committed / period
               : 0,
           "slip inside async FIFOs (paper Fig 7)");
    scalar("rob_occupancy", decode_->avgRobOccupancy(), "");
    scalar("int_renames", decode_->avgIntRenames(),
           "speculative int registers in flight");
    scalar("il1_miss_rate", hier_.il1().missRate(), "");
    scalar("dl1_miss_rate", hier_.dl1().missRate(), "");
    scalar("l2_miss_rate", hier_.l2().missRate(), "");
    scalar("energy_mj", finalizeEnergyNj() * 1e-6, "total energy");
    scalar("avg_power_w",
           endTick_ ? finalizeEnergyNj() * 1e-9 /
                          tickToSeconds(endTick_)
                    : 0,
           "average power");

    StatGroup domains("domains", &top);
    std::vector<std::unique_ptr<Scalar>> owned;
    for (unsigned i = 0; i < numDomains; ++i) {
        const auto id = static_cast<DomainId>(i);
        auto s = std::make_unique<Scalar>(
            &domains, std::string(domainName(id)) + "_cycles",
            "clock cycles");
        *s = static_cast<double>(domain(id).cycle());
        owned.push_back(std::move(s));
    }

    StatGroup energy_grp("energy", &top);
    for (unsigned i = 0; i < numUnits; ++i) {
        const Unit u = static_cast<Unit>(i);
        auto s = std::make_unique<Scalar>(
            &energy_grp, unitName(u), "energy (nJ)");
        *s = energy_.unitEnergyNj(u);
        owned.push_back(std::move(s));
    }

    StatGroup fifos("channels", &top);
    for (const ChannelBase *ch : allChannels_) {
        auto s = std::make_unique<Scalar>(&fifos,
                                          ch->name() + ".pushes", "");
        *s = static_cast<double>(ch->pushes());
        owned.push_back(std::move(s));
    }

    top.dump(os);

    // Scalars created with `new` for the flat group: reclaim them.
    for (stats::Stat *s : std::vector<stats::Stat *>(
             top.statList().begin(), top.statList().end()))
        delete s;
}

std::uint64_t
Processor::fifoEvents() const
{
    std::uint64_t n = 0;
    for (const ChannelBase *ch : allChannels_)
        n += ch->pushes() + ch->pops();
    return n;
}

double
Processor::finalizeEnergyNj()
{
    if (!energyFinalized_) {
        if (cfg_.gals) {
            // FIFO storage energy per push/pop, plus the synchronizer
            // flops toggling every consumer cycle on every channel.
            energy_.chargeImmediate(Unit::fifo, fifoEvents(),
                                    cfg_.tech.vddNominal);
            const double sync_flops = 8.0;
            for (const ChannelBase *ch : allChannels_) {
                const double nj = sync_flops * cfg_.tech.cLatchFf *
                                  cfg_.tech.vddNominal *
                                  cfg_.tech.vddNominal * 1e-6 *
                                  static_cast<double>(
                                      ch->consumer().cycle());
                energy_.chargeEnergyNj(Unit::fifo, nj,
                                       cfg_.tech.vddNominal);
            }
        }
        finalEnergyNj_ = energy_.totalNj();
        energyFinalized_ = true;
    }
    return finalEnergyNj_;
}

} // namespace gals
