#include "core/experiment.hh"

#include <cstring>
#include <memory>

#include "core/snapshot.hh"
#include "dvfs/controller.hh"
#include "fabric/system.hh"
#include "sim/logging.hh"
#include "sim/meter.hh"

namespace gals
{

std::uint64_t
effectivePhaseSeed(const RunConfig &cfg)
{
    return cfg.phaseSeed == phaseSeedFollowsWorkload ? cfg.seed
                                                     : cfg.phaseSeed;
}

std::vector<std::size_t>
shardRunIndices(std::size_t total, const ShardSpec &shard)
{
    // An inactive spec (count 0) is the whole grid.
    const unsigned count = std::max(1u, shard.count);
    gals_assert(shard.index >= 1 && shard.index <= count,
                "invalid shard ", shard.index, "/", shard.count);
    std::vector<std::size_t> indices;
    indices.reserve(total / count + 1);
    for (std::size_t i = shard.index - 1; i < total; i += count)
        indices.push_back(i);
    return indices;
}

const char *
galssimVersion()
{
    return "0.5.0";
}

namespace
{

/** FNV-1a over an explicitly little-endian byte stream, so the hash
 *  is independent of host endianness and integer widths. */
struct CanonicalHash
{
    std::uint64_t h = 14695981039346656037ull;

    void
    byte(unsigned char b)
    {
        h ^= b;
        h *= 1099511628211ull;
    }
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<unsigned char>(v >> (8 * i)));
    }
    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
    void
    flag(bool v)
    {
        byte(v ? 1 : 0);
    }
    void
    str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            byte(static_cast<unsigned char>(c));
    }
};

/**
 * The `--interval-ticks` sampler: every K ticks, record the
 * interval's committed count / IPC, the per-domain energy delta and
 * the instantaneous inter-domain FIFO occupancy. Read-only over the
 * processor, so the headline metrics of a metered run equal the
 * unmetered ones.
 */
class RunMeter final : public PeriodicMeter
{
  public:
    RunMeter(EventQueue &eq, Processor &proc, Tick intervalTicks)
        : PeriodicMeter(eq, "meter", intervalTicks), proc_(proc)
    {
    }

    std::vector<IntervalSample> takeSamples()
    {
        return std::move(samples_);
    }

  protected:
    void
    sampleInterval(std::uint64_t, Tick now) override
    {
        IntervalSample s;
        s.tick = now;

        const std::uint64_t committed =
            proc_.decodeUnit().commitStats().committed;
        s.committed = committed - lastCommitted_;
        lastCommitted_ = committed;
        const double cycles =
            static_cast<double>(intervalTicks()) /
            static_cast<double>(proc_.config().nominalPeriod);
        s.ipc = cycles > 0.0 ? s.committed / cycles : 0.0;

        // Per-domain energy via the unit -> domain map; deltas
        // against the previous sample.
        std::array<double, numDomains> energy{};
        for (unsigned i = 0; i < numUnits; ++i) {
            const Unit u = static_cast<Unit>(i);
            energy[domainIndex(unitDomain(u))] +=
                proc_.energy().unitEnergyNj(u);
        }
        for (unsigned d = 0; d < numDomains; ++d) {
            s.energyNj[d] = energy[d] - lastEnergyNj_[d];
            lastEnergyNj_[d] = energy[d];
        }

        // Instantaneous occupancy: items pushed but neither popped
        // nor squashed yet, over every inter-region channel.
        std::uint64_t occ = 0;
        for (const ChannelBase *ch : proc_.channels()) {
            const std::uint64_t out =
                ch->pops() + ch->squashedItems();
            occ += ch->pushes() > out ? ch->pushes() - out : 0;
        }
        s.fifoOcc = occ;

        samples_.push_back(s);
    }

  private:
    Processor &proc_;
    std::uint64_t lastCommitted_ = 0;
    std::array<double, numDomains> lastEnergyNj_{};
    std::vector<IntervalSample> samples_;
};

} // namespace

std::uint64_t
runConfigHash(const RunConfig &cfg)
{
    CanonicalHash hash;
    hash.str(cfg.benchmark);
    hash.u64(cfg.instructions);
    hash.flag(cfg.gals);
    for (double s : cfg.dvfs.slowdown)
        hash.f64(s);
    hash.flag(cfg.dvfs.scaleVoltage);
    hash.u64(cfg.seed);
    hash.u64(effectivePhaseSeed(cfg));
    hash.flag(cfg.dynamicDvfs);

    const ProcessorConfig &pc = cfg.proc;
    hash.u64(pc.nominalPeriod);
    hash.u64(pc.fifoCapacity);
    hash.u64(pc.msgFifoCapacity);
    hash.u64(pc.syncEdges);
    hash.flag(pc.randomPhase);
    hash.u64(pc.watchdogCycles);

    const CoreConfig &core = pc.core;
    for (unsigned v :
         {core.fetchWidth, core.decodeWidth, core.dispatchWidth,
          core.commitWidth, core.intIssueWidth, core.fpIssueWidth,
          core.memIssueWidth, core.fetchQueueSize, core.intQueueSize,
          core.fpQueueSize, core.memQueueSize, core.robSize,
          core.lsqSize, core.numIntPhysRegs, core.numFpPhysRegs,
          core.intAlus, core.fpAlus, core.intMuls, core.fpMuls,
          core.memPorts, core.decodePipeDepth})
        hash.u64(v);

    hash.f64(pc.tech.vddNominal);
    hash.f64(pc.tech.vt);
    hash.f64(pc.tech.alpha);

    // Fabric axes hash only when a fabric is actually configured
    // (cores > 1): every pre-fabric RunConfig — including archived
    // PR 3-6 manifests — keeps its exact historical hash.
    const FabricConfig &fab = cfg.fabric;
    if (fab.active()) {
        hash.str("fabric");
        hash.u64(fab.cores);
        hash.str(topologyKindName(fab.topology));
        hash.str(fab.traffic);
        hash.u64(fab.linkFifoCapacity);
        hash.u64(fab.trafficInterval);
        hash.u64(fab.trafficWindow);
    }

    // Interval meter, gated like the fabric axes: a disabled meter
    // (the default) leaves every archived hash untouched.
    if (cfg.intervalTicks > 0) {
        hash.str("meter");
        hash.u64(cfg.intervalTicks);
    }

    // Warmup split, gated the same way: a run without one (the
    // default) keeps its archived hash.
    if (cfg.warmupInstructions > 0) {
        hash.str("warmup");
        hash.u64(cfg.warmupInstructions);
    }
    return hash.h;
}

std::uint64_t
runConfigHash(const std::vector<RunConfig> &cfgs)
{
    CanonicalHash hash;
    hash.u64(cfgs.size());
    for (const RunConfig &cfg : cfgs)
        hash.u64(runConfigHash(cfg));
    return hash.h;
}

RunResults
extractRunResults(Processor &proc, const RunConfig &cfg)
{
    const ProcessorConfig &pc = proc.config();

    RunResults r;
    r.benchmark = cfg.benchmark;
    r.gals = cfg.gals;

    const CommitStats &cs = proc.decodeUnit().commitStats();
    r.committed = cs.committed;
    r.fetched = proc.fetch().fetched();
    r.wrongPathFetched = proc.fetch().wrongPathFetched();
    r.ticks = proc.runTicks();
    r.timeSec = tickToSeconds(r.ticks);
    const double nominal_cycles =
        static_cast<double>(r.ticks) /
        static_cast<double>(pc.nominalPeriod);
    r.ipcNominal = nominal_cycles > 0.0 ? r.committed / nominal_cycles
                                        : 0.0;

    const double energy_nj = proc.finalizeEnergyNj();
    r.energyJ = energy_nj * 1e-9;
    r.avgPowerW = r.timeSec > 0.0 ? r.energyJ / r.timeSec : 0.0;
    for (unsigned i = 0; i < numUnits; ++i) {
        const Unit u = static_cast<Unit>(i);
        r.unitEnergyNj[unitName(u)] = proc.energy().unitEnergyNj(u);
    }
    r.fifoEvents = proc.fifoEvents();

    const double period = static_cast<double>(pc.nominalPeriod);
    if (cs.committed > 0) {
        r.avgSlipCycles =
            cs.slipSumTicks / double(cs.committed) / period;
        r.avgFifoSlipCycles =
            cs.fifoSlipSumTicks / double(cs.committed) / period;
    }

    r.misspecFraction =
        r.fetched ? double(r.wrongPathFetched) / double(r.fetched) : 0.0;
    r.mispredictsPerKCommitted =
        r.committed ? 1000.0 * double(cs.committedMispredicts) /
                          double(r.committed)
                    : 0.0;
    const BranchUnit &bu = proc.fetch().branchUnit();
    const std::uint64_t dir_total = bu.dirCorrect() + bu.dirWrong();
    r.dirAccuracy =
        dir_total ? double(bu.dirCorrect()) / double(dir_total) : 1.0;

    r.avgRobOcc = proc.decodeUnit().avgRobOccupancy();
    r.avgIntRenames = proc.decodeUnit().avgIntRenames();
    r.avgFpRenames = proc.decodeUnit().avgFpRenames();
    r.intIQOcc = proc.intCluster().avgQueueOccupancy();
    r.fpIQOcc = proc.fpCluster().avgQueueOccupancy();
    r.memIQOcc = proc.memCluster().avgQueueOccupancy();

    r.il1MissRate = proc.caches().il1().missRate();
    r.dl1MissRate = proc.caches().dl1().missRate();
    r.l2MissRate = proc.caches().l2().missRate();

    return r;
}

RunResults
runOne(const RunConfig &cfg)
{
    if (cfg.fabric.active()) {
        // Warmup snapshots are stamped onto single-core runs only
        // (runner::expandReplicatedRuns); a fabric config carrying
        // one is a programming error, never silently ignored.
        gals_assert(cfg.warmupInstructions == 0,
                    "warmup snapshots are single-core only");
        return runSystem(cfg);
    }

    const BenchmarkProfile &profile = findBenchmark(cfg.benchmark);

    ProcessorConfig pc = cfg.proc;
    pc.gals = cfg.gals;
    pc.dvfs = cfg.gals ? cfg.dvfs : DvfsSetting();
    pc.phaseSeed = effectivePhaseSeed(cfg);

    // Warm-state split: acquire the (memoized) warmup snapshot first,
    // then restore it into the fresh machine below. The cold and warm
    // paths are the same code — a "cold" run merely produces the
    // bytes it restores — so memoization cannot change any result
    // (core/snapshot.hh).
    const bool warm = cfg.warmupInstructions > 0;
    std::shared_ptr<const std::string> snapshot;
    if (warm) {
        if (cfg.warmupInstructions >= cfg.instructions)
            gals_fatal("warmup instructions (", cfg.warmupInstructions,
                       ") must be < total instructions (",
                       cfg.instructions, ")");
        snapshot = acquireWarmupSnapshot(cfg);
    }

    EventQueue eq("eq." + cfg.benchmark);
    Processor proc(eq, pc, profile, cfg.seed);

    if (warm) {
        std::string err;
        if (!restoreWarmMachine(proc, cfg, *snapshot, &err))
            gals_panic("warm snapshot restore failed: ", err);
    }

    // The online controller discovers per-domain utilization and
    // retunes clock/voltage while the run progresses; it manages the
    // FP domain (the paper's section 5.2 examples all slow the FP
    // clock) — fetch/memory issue slots are a poor utilization proxy
    // because loads are latency-critical.
    std::unique_ptr<DynamicDvfsController> ctrl;
    if (cfg.dynamicDvfs) {
        ctrl = std::make_unique<DynamicDvfsController>(eq, pc.tech);
        ctrl->manage(proc.domain(DomainId::fpd),
                     proc.fpCluster().issuedCounter(),
                     pc.core.fpIssueWidth);
        ctrl->start();
    }

    // The interval meter samples on its own clock domain and only
    // reads processor state, so its presence never perturbs the run.
    std::unique_ptr<RunMeter> meter;
    if (cfg.intervalTicks > 0) {
        meter = std::make_unique<RunMeter>(eq, proc,
                                           cfg.intervalTicks);
        meter->start();
    }

    if (warm)
        proc.runResumed(cfg.instructions - cfg.warmupInstructions);
    else
        proc.run(cfg.instructions);
    if (ctrl)
        ctrl->stop();
    if (meter)
        meter->stop();

    RunResults r = extractRunResults(proc, cfg);
    if (meter)
        r.intervals = meter->takeSamples();
    return r;
}

std::vector<RunResults>
runMany(const std::vector<RunConfig> &cfgs)
{
    std::vector<RunResults> results;
    results.reserve(cfgs.size());
    for (const RunConfig &cfg : cfgs)
        results.push_back(runOne(cfg));
    return results;
}

PairResults
runPair(const std::string &benchmark, std::uint64_t instructions,
        const DvfsSetting &galsDvfs, std::uint64_t seed,
        const ProcessorConfig &baseProc)
{
    RunConfig base;
    base.benchmark = benchmark;
    base.instructions = instructions;
    base.gals = false;
    base.seed = seed;
    base.proc = baseProc;

    RunConfig galsCfg = base;
    galsCfg.gals = true;
    galsCfg.dvfs = galsDvfs;

    PairResults pr;
    pr.base = runOne(base);
    pr.galsRun = runOne(galsCfg);
    return pr;
}

} // namespace gals
