#include "core/experiment.hh"

#include <memory>

#include "dvfs/controller.hh"
#include "sim/logging.hh"

namespace gals
{

std::uint64_t
effectivePhaseSeed(const RunConfig &cfg)
{
    return cfg.phaseSeed == phaseSeedFollowsWorkload ? cfg.seed
                                                     : cfg.phaseSeed;
}

RunResults
runOne(const RunConfig &cfg)
{
    const BenchmarkProfile &profile = findBenchmark(cfg.benchmark);

    ProcessorConfig pc = cfg.proc;
    pc.gals = cfg.gals;
    pc.dvfs = cfg.gals ? cfg.dvfs : DvfsSetting();
    pc.phaseSeed = effectivePhaseSeed(cfg);

    EventQueue eq("eq." + cfg.benchmark);
    Processor proc(eq, pc, profile, cfg.seed);

    // The online controller discovers per-domain utilization and
    // retunes clock/voltage while the run progresses; it manages the
    // FP domain (the paper's section 5.2 examples all slow the FP
    // clock) — fetch/memory issue slots are a poor utilization proxy
    // because loads are latency-critical.
    std::unique_ptr<DynamicDvfsController> ctrl;
    if (cfg.dynamicDvfs) {
        ctrl = std::make_unique<DynamicDvfsController>(eq, pc.tech);
        ctrl->manage(proc.domain(DomainId::fpd),
                     [&proc] { return proc.fpCluster().issued(); },
                     pc.core.fpIssueWidth);
        ctrl->start();
    }

    proc.run(cfg.instructions);
    if (ctrl)
        ctrl->stop();

    RunResults r;
    r.benchmark = cfg.benchmark;
    r.gals = cfg.gals;

    const CommitStats &cs = proc.decodeUnit().commitStats();
    r.committed = cs.committed;
    r.fetched = proc.fetch().fetched();
    r.wrongPathFetched = proc.fetch().wrongPathFetched();
    r.ticks = proc.runTicks();
    r.timeSec = tickToSeconds(r.ticks);
    const double nominal_cycles =
        static_cast<double>(r.ticks) /
        static_cast<double>(pc.nominalPeriod);
    r.ipcNominal = nominal_cycles > 0.0 ? r.committed / nominal_cycles
                                        : 0.0;

    const double energy_nj = proc.finalizeEnergyNj();
    r.energyJ = energy_nj * 1e-9;
    r.avgPowerW = r.timeSec > 0.0 ? r.energyJ / r.timeSec : 0.0;
    for (unsigned i = 0; i < numUnits; ++i) {
        const Unit u = static_cast<Unit>(i);
        r.unitEnergyNj[unitName(u)] = proc.energy().unitEnergyNj(u);
    }
    r.fifoEvents = proc.fifoEvents();

    const double period = static_cast<double>(pc.nominalPeriod);
    if (cs.committed > 0) {
        r.avgSlipCycles =
            cs.slipSumTicks / double(cs.committed) / period;
        r.avgFifoSlipCycles =
            cs.fifoSlipSumTicks / double(cs.committed) / period;
    }

    r.misspecFraction =
        r.fetched ? double(r.wrongPathFetched) / double(r.fetched) : 0.0;
    r.mispredictsPerKCommitted =
        r.committed ? 1000.0 * double(cs.committedMispredicts) /
                          double(r.committed)
                    : 0.0;
    const BranchUnit &bu = proc.fetch().branchUnit();
    const std::uint64_t dir_total = bu.dirCorrect() + bu.dirWrong();
    r.dirAccuracy =
        dir_total ? double(bu.dirCorrect()) / double(dir_total) : 1.0;

    r.avgRobOcc = proc.decodeUnit().avgRobOccupancy();
    r.avgIntRenames = proc.decodeUnit().avgIntRenames();
    r.avgFpRenames = proc.decodeUnit().avgFpRenames();
    r.intIQOcc = proc.intCluster().avgQueueOccupancy();
    r.fpIQOcc = proc.fpCluster().avgQueueOccupancy();
    r.memIQOcc = proc.memCluster().avgQueueOccupancy();

    r.il1MissRate = proc.caches().il1().missRate();
    r.dl1MissRate = proc.caches().dl1().missRate();
    r.l2MissRate = proc.caches().l2().missRate();

    return r;
}

std::vector<RunResults>
runMany(const std::vector<RunConfig> &cfgs)
{
    std::vector<RunResults> results;
    results.reserve(cfgs.size());
    for (const RunConfig &cfg : cfgs)
        results.push_back(runOne(cfg));
    return results;
}

PairResults
runPair(const std::string &benchmark, std::uint64_t instructions,
        const DvfsSetting &galsDvfs, std::uint64_t seed,
        const ProcessorConfig &baseProc)
{
    RunConfig base;
    base.benchmark = benchmark;
    base.instructions = instructions;
    base.gals = false;
    base.seed = seed;
    base.proc = baseProc;

    RunConfig galsCfg = base;
    galsCfg.gals = true;
    galsCfg.dvfs = galsDvfs;

    PairResults pr;
    pr.base = runOne(base);
    pr.galsRun = runOne(galsCfg);
    return pr;
}

} // namespace gals
