/**
 * @file
 * Warm-state checkpointing: serialize the long-lived
 * microarchitectural state of a machine that has committed a warmup
 * prefix, and restore it into fresh machines so sweep cells sharing
 * the same warmup stem pay for it once (RunConfig::warmupInstructions,
 * `galsbench --warmup-insts K`).
 *
 * ## The split and the contract
 *
 * A run with warmupInstructions = W and instructions = N executes
 * W instructions under the *canonical warmup configuration* (DVFS
 * neutral, clock-phase seed following the workload seed, dynamic
 * DVFS and the interval meter off), drains the pipeline to total
 * quiescence, snapshots, then runs the remaining N - W instructions
 * on a fresh event queue under the cell's own DVFS / phases / meter.
 * Statistics, energy and simulated time cover the measured region
 * only.
 *
 * Every warm run — including the very first, "cold" one — goes
 * through serialize -> deserialize: the producer's machine is only
 * ever used to make bytes, and the measured machine is always a
 * fresh construction restored from those bytes. Memoized and
 * non-memoized runs of the same configuration therefore execute
 * byte-identical instruction-by-instruction trajectories, on either
 * event-queue engine, at any job count: the contract holds by
 * construction, not by careful bookkeeping.
 *
 * ## Keying and sharing
 *
 * warmupKeyHash() hashes exactly the warmup-relevant subset of a
 * RunConfig — benchmark, W, workload seed, GALS mode and the
 * run-defining processor scalars — by reusing runConfigHash() over
 * canonicalWarmupConfig(). Cells that differ only in DVFS setting,
 * phase seed, dynamic-DVFS flag, meter period or total instruction
 * count share one key and one snapshot.
 *
 * Snapshots are memoized in a process-wide cache (one producer per
 * key, concurrent requesters block on its completion) and,
 * optionally, in a directory (`--snapshot-dir`) shared between
 * shard workers and dispatch restarts. Disk snapshots are written
 * atomically (temp + rename) and validated by a full test-restore
 * on load; truncated, stale or foreign files are silently ignored
 * and the snapshot is re-produced.
 */

#ifndef CORE_SNAPSHOT_HH
#define CORE_SNAPSHOT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/experiment.hh"

namespace gals
{

/** Warm-snapshot container format version (header field; bumped on
 *  any layout change — readers reject other versions). */
constexpr std::uint64_t snapshotFormatVersion = 1;

/**
 * The configuration a warmup snapshot for @p cfg is produced under:
 * @p cfg with instructions = warmupInstructions, DVFS neutralized,
 * the phase seed following the workload seed, dynamic DVFS and the
 * interval meter off, and warmupInstructions itself cleared. The
 * single point defining which axes share a warmup stem.
 */
RunConfig canonicalWarmupConfig(const RunConfig &cfg);

/**
 * Stable 64-bit key of the warmup-relevant subset of @p cfg:
 * runConfigHash() of canonicalWarmupConfig(). Identical across
 * machines, engines and job counts.
 */
std::uint64_t warmupKeyHash(const RunConfig &cfg);

/**
 * Run the canonical warmup for @p cfg from scratch and serialize the
 * quiescent machine. Deterministic: same cfg, same bytes. Does not
 * consult or populate any cache.
 */
std::string produceWarmupSnapshot(const RunConfig &cfg);

/**
 * Snapshot bytes for @p cfg's warmup stem: from the in-process
 * cache, else from the snapshot directory (validated), else produced
 * by produceWarmupSnapshot() — and then cached (and written to the
 * directory when one is set). Thread-safe; concurrent calls for one
 * key produce once.
 */
std::shared_ptr<const std::string> acquireWarmupSnapshot(
    const RunConfig &cfg);

/**
 * Restore warm state from @p bytes into the freshly constructed
 * @p proc, checking the header (magic, format version, simulator
 * version, warmup key of @p cfg) and every structural field on the
 * way. Returns false and sets @p err on any mismatch or truncation;
 * @p proc is then partially mutated and must be discarded.
 */
bool restoreWarmMachine(Processor &proc, const RunConfig &cfg,
                        std::string_view bytes, std::string *err);

/**
 * Set (or clear, with "") the directory snapshots are exchanged
 * through. Process-wide; `galsbench --snapshot-dir`. The directory
 * must already exist.
 */
void setSnapshotDir(const std::string &dir);

/** Current snapshot directory ("" when unset). */
std::string snapshotDir();

/** Path a given warmup key is stored at under @p dir. */
std::string snapshotPathFor(const std::string &dir,
                            std::uint64_t key);

/** Drop every memoized snapshot (tests and benchmark cold legs). */
void clearSnapshotCache();

} // namespace gals

#endif // CORE_SNAPSHOT_HH
