/**
 * @file
 * Experiment harness: runs one processor configuration on one
 * benchmark and extracts every metric the paper reports; pairs a base
 * run with a GALS run for the normalized comparisons of Figures 5-13.
 */

#ifndef CORE_EXPERIMENT_HH
#define CORE_EXPERIMENT_HH

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/processor.hh"
#include "fabric/fabric_config.hh"
#include "workload/profile.hh"

namespace gals
{

/**
 * Sentinel for RunConfig::phaseSeed: the clock-phase seed follows the
 * workload seed, so re-running the same config reproduces both the
 * instruction stream and the clock phases.
 */
constexpr std::uint64_t phaseSeedFollowsWorkload = ~std::uint64_t(0);

/** One simulation to run. */
struct RunConfig
{
    std::string benchmark = "gcc";
    std::uint64_t instructions = 100000;
    bool gals = false;
    DvfsSetting dvfs;          ///< applied in GALS mode only
    std::uint64_t seed = 0;    ///< workload seed
    /** Clock-phase seed; defaults to the workload seed (see
     *  phaseSeedFollowsWorkload / effectivePhaseSeed()). Set it
     *  independently to vary phases over an identical instruction
     *  stream (the section 5.1 phase-sensitivity experiment). */
    std::uint64_t phaseSeed = phaseSeedFollowsWorkload;
    /** Online application-driven DVFS on the FP domain (the paper's
     *  section 6 future direction); only meaningful with gals=true. */
    bool dynamicDvfs = false;
    ProcessorConfig proc;      ///< gals/dvfs fields are overridden
    /** Multi-core fabric axes; inert (and unhashed) at cores == 1, so
     *  every pre-fabric config keeps its archived hash. */
    FabricConfig fabric;
    /** Interval-meter period in ticks (`--interval-ticks K`): sample
     *  IPC / per-domain energy / FIFO occupancy every K ticks into
     *  RunResults::intervals. 0 (the default) disables the meter and
     *  — like the fabric axes — keeps the config unhashed, so every
     *  pre-meter config keeps its archived hash. Applies to the
     *  single-core path; fabric runs record no samples. */
    std::uint64_t intervalTicks = 0;
    /** Warm-state split (`--warmup-insts K`): run the first K
     *  instructions under the canonical warmup configuration
     *  (core/snapshot.hh), snapshot the quiescent machine, and
     *  measure only the remaining instructions on a fresh event
     *  queue — statistics, energy and time cover the measured region
     *  alone. Snapshots are memoized across runs sharing a warmup
     *  stem. 0 (the default) keeps the classic single-region run
     *  and — like the fabric/meter axes — leaves archived hashes
     *  untouched. Single-core only; must be < instructions. */
    std::uint64_t warmupInstructions = 0;
};

/**
 * Resolve the phase seed of a run: @p cfg.phaseSeed, unless it is the
 * phaseSeedFollowsWorkload sentinel, in which case the workload seed.
 * The single point where the sentinel is interpreted.
 */
std::uint64_t effectivePhaseSeed(const RunConfig &cfg);

/**
 * Per-core slice of a fabric run: the headline metrics of one core
 * plus its NIC traffic counters. Empty for single-core runs.
 */
struct CoreResults
{
    unsigned core = 0;
    std::uint64_t committed = 0;
    double ipcNominal = 0.0; ///< committed per nominal cycle, to the
                             ///< core's own last commit
    double energyJ = 0.0;
    std::uint64_t fifoEvents = 0;      ///< intra-core channel activity
    std::uint64_t msgsSent = 0;        ///< requests this core injected
    std::uint64_t msgsReceived = 0;    ///< requests served for others
    std::uint64_t remoteStallCycles = 0; ///< fetch cycles blocked on
                                         ///< the completion window
    double avgRemoteLatencyCycles = 0.0; ///< request round trip
};

/**
 * One interval-meter sample (RunConfig::intervalTicks > 0): the
 * in-run time series behind the phase-aware DVFS work. Counters are
 * per-interval deltas, the FIFO occupancy is the instantaneous sum at
 * the sample edge.
 */
struct IntervalSample
{
    Tick tick = 0;              ///< sample time (K, 2K, ...)
    std::uint64_t committed = 0; ///< instructions committed this
                                 ///< interval
    double ipc = 0.0;            ///< committed per nominal cycle of
                                 ///< this interval
    /** Energy charged this interval, per clock domain (domainIndex
     *  order), nJ. */
    std::array<double, numDomains> energyNj{};
    /** Items resident in the inter-domain FIFOs at the sample edge
     *  (sum of pushes - pops over every channel). */
    std::uint64_t fifoOcc = 0;
};

/** Everything measured in one run. */
struct RunResults
{
    std::string benchmark;
    bool gals = false;

    /** @name Throughput */
    /// @{
    std::uint64_t committed = 0;
    std::uint64_t fetched = 0;
    std::uint64_t wrongPathFetched = 0;
    Tick ticks = 0;
    double timeSec = 0.0;
    double ipcNominal = 0.0; ///< committed per nominal clock period
    /// @}

    /** @name Energy / power */
    /// @{
    double energyJ = 0.0;
    double avgPowerW = 0.0;
    std::map<std::string, double> unitEnergyNj;
    std::uint64_t fifoEvents = 0;
    /// @}

    /** @name Latency (paper Figures 6, 7) */
    /// @{
    double avgSlipCycles = 0.0;     ///< fetch-to-commit, nominal cycles
    double avgFifoSlipCycles = 0.0; ///< portion spent inside FIFOs
    /// @}

    /** @name Speculation (paper Figure 8) */
    /// @{
    double misspecFraction = 0.0; ///< wrong-path / all fetched
    double mispredictsPerKCommitted = 0.0;
    double dirAccuracy = 0.0;
    /// @}

    /** @name Occupancies (paper section 5.1) */
    /// @{
    double avgRobOcc = 0.0;
    double avgIntRenames = 0.0;
    double avgFpRenames = 0.0;
    double intIQOcc = 0.0, fpIQOcc = 0.0, memIQOcc = 0.0;
    /// @}

    /** @name Cache behaviour */
    /// @{
    double il1MissRate = 0.0, dl1MissRate = 0.0, l2MissRate = 0.0;
    /// @}

    /** Per-core breakdown; non-empty only for fabric (cores > 1)
     *  runs. The scalar metrics above are the system aggregates. */
    std::vector<CoreResults> cores;

    /** Interval-meter time series; non-empty only when
     *  RunConfig::intervalTicks > 0 on the single-core path. */
    std::vector<IntervalSample> intervals;
};

/**
 * Library version string, recorded in run manifests so archived
 * trajectory files can be matched to the simulator that produced
 * them. Bump whenever a change alters simulation results or the
 * meaning of a RunConfig field.
 */
const char *galssimVersion();

/**
 * One disjoint slice of a run grid for multi-machine sweeps
 * (`galsbench --shard i/N`): shard @ref index (1-based) of
 * @ref count. The default (count 0) means "not sharded"; an
 * explicit `--shard 1/1` is a *sharded* run of one slice, so a
 * driver script parameterized by N behaves identically at N=1
 * (reports suppressed, shard-tagged manifest, mergeable output).
 */
struct ShardSpec
{
    unsigned index = 1; ///< which shard, 1..count
    unsigned count = 0; ///< total shards; 0 = unsharded

    /** True when this invocation runs a shard (even 1/1). */
    bool active() const { return count >= 1; }
};

/**
 * The canonical run indices owned by @p shard of a @p total-run
 * grid: the round-robin slice {index-1, index-1+count, ...}, in
 * ascending order. Striding (rather than contiguous blocks) spreads
 * every benchmark across every shard, so shards finish in comparable
 * wall-clock even though run lengths are heterogeneous. Across
 * i = 1..count the slices are disjoint and cover [0, total) exactly —
 * merging shard outputs by canonical index reproduces the unsharded
 * ordering byte for byte.
 */
std::vector<std::size_t> shardRunIndices(std::size_t total,
                                         const ShardSpec &shard);

/**
 * Stable 64-bit hash of everything that defines a run: benchmark,
 * instruction budget, GALS/DVFS settings, seeds (with the phase-seed
 * sentinel resolved) and the run-defining ProcessorConfig scalars
 * (core widths and sizes, FIFO capacities, tech voltages). The hash
 * is computed over a canonical little-endian byte stream, so it is
 * identical across machines and job counts — it is what makes run
 * manifests byte-diffable. Deep structural config (branch predictor,
 * cache geometry, clock hierarchy) is covered by galssimVersion()
 * instead.
 */
std::uint64_t runConfigHash(const RunConfig &cfg);

/** Chained hash of a whole grid (order-sensitive, size included). */
std::uint64_t runConfigHash(const std::vector<RunConfig> &cfgs);

/** Execute one run. Dispatches to fabric::runSystem() when
 *  cfg.fabric.active(); otherwise the classic single-core path. */
RunResults runOne(const RunConfig &cfg);

/**
 * Harvest every RunResults metric from a finished Processor. Shared
 * by the single-core path and fabric::System (which extracts one per
 * core and aggregates). @p cfg supplies the labels and the nominal
 * period.
 */
RunResults extractRunResults(Processor &proc, const RunConfig &cfg);

/**
 * Execute a batch of runs serially; results[i] belongs to cfgs[i].
 * The parallel counterpart is runner::ExperimentEngine, which yields
 * element-wise identical results (each run owns its EventQueue and
 * Processor, so runs are independent).
 */
std::vector<RunResults> runMany(const std::vector<RunConfig> &cfgs);

/** A matched base/GALS pair on the same workload. */
struct PairResults
{
    RunResults base;
    RunResults galsRun;

    /** Relative performance: time_base / time_gals (Figure 5). */
    double perfRatio() const
    {
        return base.timeSec / galsRun.timeSec;
    }
    /** Normalized energy: E_gals / E_base (Figure 9). */
    double energyRatio() const
    {
        return galsRun.energyJ / base.energyJ;
    }
    /** Normalized average power: P_gals / P_base (Figure 9). */
    double powerRatio() const
    {
        return galsRun.avgPowerW / base.avgPowerW;
    }
    /** Slip growth: slip_gals / slip_base (Figure 6). */
    double slipRatio() const
    {
        return galsRun.avgSlipCycles / base.avgSlipCycles;
    }
};

/**
 * Run base and GALS on one benchmark with identical workloads.
 * @p galsDvfs applies to the GALS run only.
 */
PairResults runPair(const std::string &benchmark,
                    std::uint64_t instructions,
                    const DvfsSetting &galsDvfs = DvfsSetting(),
                    std::uint64_t seed = 0,
                    const ProcessorConfig &baseProc = ProcessorConfig());

} // namespace gals

#endif // CORE_EXPERIMENT_HH
