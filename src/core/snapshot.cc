#include "core/snapshot.hh"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <future>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/snapshot_io.hh"

namespace gals
{

namespace
{

constexpr const char *snapshotMagic = "GSNP";

std::mutex cacheMutex;
std::unordered_map<std::uint64_t,
                   std::shared_future<std::shared_ptr<const std::string>>>
    snapshotCache;
std::string snapshotDirPath;

/** A scratch machine built from the canonical warmup config, used to
 *  produce snapshots and to validate untrusted disk bytes. */
struct WarmupMachine
{
    explicit WarmupMachine(const RunConfig &warmCfg)
        : eq("eq.warmup." + warmCfg.benchmark),
          proc(eq, procConfigOf(warmCfg),
               findBenchmark(warmCfg.benchmark), warmCfg.seed)
    {
    }

    static ProcessorConfig
    procConfigOf(const RunConfig &warmCfg)
    {
        ProcessorConfig pc = warmCfg.proc;
        pc.gals = warmCfg.gals;
        pc.dvfs = warmCfg.gals ? warmCfg.dvfs : DvfsSetting();
        pc.phaseSeed = effectivePhaseSeed(warmCfg);
        return pc;
    }

    EventQueue eq;
    Processor proc;
};

std::string
readWholeFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::string();
    std::ostringstream os;
    os << is.rdbuf();
    return is.good() || is.eof() ? os.str() : std::string();
}

/** True when @p bytes fully restore into a scratch machine for
 *  @p cfg's warmup stem — the disk-snapshot trust gate. */
bool
validateSnapshotBytes(const RunConfig &cfg, const std::string &bytes)
{
    if (bytes.empty())
        return false;
    WarmupMachine scratch(canonicalWarmupConfig(cfg));
    std::string err;
    return restoreWarmMachine(scratch.proc, cfg, bytes, &err);
}

/** Atomic publish: write to a temp file in the same directory, then
 *  rename over the final name. Concurrent writers (shard workers on
 *  one filesystem) each use a private temp name; the last rename
 *  wins with identical content. Failures are silently ignored — the
 *  directory is a cache, not a store of record. */
void
writeSnapshotFile(const std::string &path, const std::string &bytes)
{
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << static_cast<const void *>(&bytes);
    const std::string tmp = tmp_name.str();
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return;
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        if (!os.good()) {
            os.close();
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

std::shared_ptr<const std::string>
loadOrProduce(const RunConfig &cfg, std::uint64_t key)
{
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        dir = snapshotDirPath;
    }

    if (!dir.empty()) {
        const std::string path = snapshotPathFor(dir, key);
        std::string bytes = readWholeFile(path);
        if (validateSnapshotBytes(cfg, bytes))
            return std::make_shared<const std::string>(
                std::move(bytes));
        // Missing, truncated, stale or foreign: fall through and
        // re-produce (overwriting whatever is there).
    }

    auto bytes = std::make_shared<const std::string>(
        produceWarmupSnapshot(cfg));
    if (!dir.empty())
        writeSnapshotFile(snapshotPathFor(dir, key), *bytes);
    return bytes;
}

} // namespace

RunConfig
canonicalWarmupConfig(const RunConfig &cfg)
{
    RunConfig c = cfg;
    c.instructions = cfg.warmupInstructions;
    c.warmupInstructions = 0;
    c.dvfs = DvfsSetting();
    c.phaseSeed = phaseSeedFollowsWorkload;
    c.dynamicDvfs = false;
    c.intervalTicks = 0;
    c.fabric = FabricConfig();
    return c;
}

std::uint64_t
warmupKeyHash(const RunConfig &cfg)
{
    gals_assert(cfg.warmupInstructions > 0,
                "warmup key of a run without a warmup split");
    return runConfigHash(canonicalWarmupConfig(cfg));
}

std::string
produceWarmupSnapshot(const RunConfig &cfg)
{
    const RunConfig wc = canonicalWarmupConfig(cfg);
    gals_assert(wc.instructions > 0, "empty warmup region");

    WarmupMachine m(wc);
    m.proc.runWarmup(wc.instructions);

    SnapshotWriter w;
    w.str(snapshotMagic);
    w.u64(snapshotFormatVersion);
    w.str(galssimVersion());
    w.u64(warmupKeyHash(cfg));
    w.u64(cfg.warmupInstructions);
    w.str(cfg.benchmark);
    w.section("machine");
    m.proc.snapshotSave(w);
    w.section("end");
    return w.take();
}

bool
restoreWarmMachine(Processor &proc, const RunConfig &cfg,
                   std::string_view bytes, std::string *err)
{
    SnapshotReader r(bytes);

    const std::string magic = r.str();
    if (r.ok() && magic != snapshotMagic)
        r.fail("not a warm-snapshot stream (bad magic)");
    r.expectU64(r.u64(), snapshotFormatVersion,
                "snapshot format version");
    const std::string version = r.str();
    if (r.ok() && version != galssimVersion())
        r.fail("snapshot from simulator version '" + version + "'");
    r.expectU64(r.u64(), warmupKeyHash(cfg), "warmup key");
    r.expectU64(r.u64(), cfg.warmupInstructions,
                "warmup instruction count");
    const std::string bench = r.str();
    if (r.ok() && bench != cfg.benchmark)
        r.fail("snapshot for benchmark '" + bench + "'");

    r.section("machine");
    if (r.ok())
        proc.snapshotRestore(r);
    r.section("end");

    if (r.ok() && !r.atEnd())
        r.fail("trailing bytes after snapshot");
    if (!r.ok()) {
        if (err)
            *err = r.error();
        return false;
    }
    return true;
}

std::shared_ptr<const std::string>
acquireWarmupSnapshot(const RunConfig &cfg)
{
    const std::uint64_t key = warmupKeyHash(cfg);

    std::shared_future<std::shared_ptr<const std::string>> fut;
    std::promise<std::shared_ptr<const std::string>> prom;
    bool producer = false;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = snapshotCache.find(key);
        if (it == snapshotCache.end()) {
            producer = true;
            fut = prom.get_future().share();
            snapshotCache.emplace(key, fut);
        } else {
            fut = it->second;
        }
    }

    if (producer)
        prom.set_value(loadOrProduce(cfg, key));
    return fut.get();
}

void
setSnapshotDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    snapshotDirPath = dir;
}

std::string
snapshotDir()
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    return snapshotDirPath;
}

std::string
snapshotPathFor(const std::string &dir, std::uint64_t key)
{
    std::ostringstream os;
    os << dir << "/snap_" << std::hex << std::setw(16)
       << std::setfill('0') << key << ".gsnp";
    return os.str();
}

void
clearSnapshotCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    snapshotCache.clear();
}

} // namespace gals
