/**
 * @file
 * Mixed-clock communication channels between pipeline regions.
 *
 * This is the heart of the GALS model. Successive logic blocks
 * communicate only through Channel objects:
 *
 *  - In the base (fully synchronous) processor a channel behaves like
 *    an ordinary pipeline latch/queue: an item written on one rising
 *    edge is visible at the next edge, and a freed slot is reusable
 *    immediately.
 *
 *  - In the GALS processor a channel models the Chelcea-Nowick style
 *    mixed-clock FIFO of paper section 3.2 / Figure 2: the producer
 *    writes on its own clock, the consumer reads on its own clock, and
 *    the full / empty flags each pass through a two-flop synchronizer
 *    in the opposite domain. An item pushed at time t therefore
 *    becomes visible at the syncEdges-th consumer edge strictly after
 *    t, and a freed slot becomes reusable at the syncEdges-th producer
 *    edge strictly after the pop. Steady-state throughput is one item
 *    per cycle (token-ring FIFO); only the latency and the flag
 *    conservatism differ from the synchronous latch, exactly the
 *    behaviour the paper attributes to the design of [4, 5].
 *
 * Channels also account the residency time of every item so the
 * paper's Figure 7 (slip split into FIFO time vs pipeline time) can be
 * reproduced, and count pushes/pops for the FIFO power model.
 *
 * Storage is an intrusive doubly-linked list over a pool of
 * capacity() entry nodes preallocated at construction — a channel can
 * never hold more than capacity() items — so the push/pop/squash hot
 * path in the domain-crossing traffic performs no allocations:
 * push takes a node from the embedded free list, pop returns it, and
 * squash unlinks mid-list nodes in O(1) each.
 */

#ifndef CORE_CHANNEL_HH
#define CORE_CHANNEL_HH

#include <algorithm>
#include <deque>
#include <memory>
#include <new>
#include <string>
#include <utility>

#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sim/intrusive_list.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace gals
{

/** Latch (synchronous) vs asynchronous FIFO behaviour. */
enum class ChannelMode : std::uint8_t
{
    syncLatch,
    asyncFifo,
};

/**
 * Untyped channel bookkeeping: identity, mode and activity counters.
 */
class ChannelBase
{
  public:
    /**
     * @param streaming  true for instruction-flow FIFOs (Chelcea-
     *     Nowick token ring: the empty-flag synchronization penalty is
     *     paid only on empty-to-non-empty transitions, giving one item
     *     per cycle in steady state); false for event-style channels
     *     (result wakeups, completion notices, redirects) where every
     *     transfer synchronizes independently.
     */
    ChannelBase(std::string name, ChannelMode mode, ClockDomain &producer,
                ClockDomain &consumer, std::size_t capacity,
                unsigned syncEdges, bool streaming = true);
    virtual ~ChannelBase() = default;

    ChannelBase(const ChannelBase &) = delete;
    ChannelBase &operator=(const ChannelBase &) = delete;

    const std::string &name() const { return name_; }
    ChannelMode mode() const { return mode_; }
    bool isAsync() const { return mode_ == ChannelMode::asyncFifo; }
    std::size_t capacity() const { return capacity_; }
    unsigned syncEdges() const { return syncEdges_; }

    ClockDomain &producer() const { return producer_; }
    ClockDomain &consumer() const { return consumer_; }
    bool streaming() const { return streaming_; }

    /** @name Activity counters (power model + Figure 7 accounting) */
    /// @{
    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t pops() const { return pops_; }
    std::uint64_t squashedItems() const { return squashedItems_; }
    Tick totalResidency() const { return totalResidency_; }
    /// @}

    /** Items pushed but neither popped nor squashed yet — the
     *  instantaneous occupancy, derived from the activity counters
     *  (interval meter samples, warm-snapshot quiescence). */
    std::size_t
    occupancy() const
    {
        const std::uint64_t out = pops_ + squashedItems_;
        return pushes_ > out
                   ? static_cast<std::size_t>(pushes_ - out)
                   : 0;
    }

  protected:
    /** Visibility time of an item pushed at @p t. */
    Tick visibleAt(Tick t) const;
    /** Time the producer observes a slot freed by a pop at @p t. */
    Tick freeVisibleAt(Tick t) const;

    std::string name_;
    ChannelMode mode_;
    ClockDomain &producer_;
    ClockDomain &consumer_;
    std::size_t capacity_;
    unsigned syncEdges_;
    bool streaming_;

    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
    std::uint64_t squashedItems_ = 0;
    Tick totalResidency_ = 0;
};

/**
 * Typed channel carrying items of type T.
 */
template <typename T>
class Channel : public ChannelBase
{
  public:
    Channel(std::string name, ChannelMode mode, ClockDomain &producer,
            ClockDomain &consumer, std::size_t capacity,
            unsigned syncEdges = 2, bool streaming = true)
        : ChannelBase(std::move(name), mode, producer, consumer, capacity,
                      syncEdges, streaming),
          pool_(std::make_unique<Node[]>(capacity))
    {
        // Thread every pool node onto the free list. full() bounds
        // the occupancy at capacity_, so the pool can never run dry.
        for (std::size_t i = 0; i < capacity; ++i)
            free_.pushFront(&pool_[i]);
    }

    ~Channel() override
    {
        for (Node *n = queue_.head(); n != nullptr;
             n = NodeList::next(n))
            n->destroyItem();
    }

    /**
     * Producer-side full test at the current time: counts occupants
     * plus freed slots whose release has not yet synchronized back.
     */
    bool
    full() const
    {
        const Tick now = producer_.eventQueue().now();
        std::size_t unobserved_frees = 0;
        for (const Tick t : freeVisible_)
            if (t > now)
                ++unobserved_frees;
        return size_ + unobserved_frees >= capacity_;
    }

    bool canPush() const { return !full(); }

    /** Push an item; caller must have checked canPush(). */
    void
    push(T item)
    {
        gals_assert(!full(), "push to full channel '", name_, "'");
        const Tick now = producer_.eventQueue().now();
        ++pushes_;
        // Steady-state streaming property of the token-ring FIFO
        // (paper section 3.2): the empty-flag synchronizer penalty is
        // paid only when the FIFO transitions from empty to non-empty.
        // An item entering a non-empty FIFO is readable one consumer
        // edge after the item ahead of it (one item per cycle
        // throughput), never earlier than the edge after its own push.
        Tick ready;
        if (queue_.empty() || !streaming_) {
            ready = visibleAt(now);
            if (queue_.tail() != nullptr)
                ready = std::max(ready, queue_.tail()->readyTick);
        } else {
            ready = std::max(queue_.tail()->readyTick,
                             consumer_.nextEdgeAfter(now));
        }

        Node *n = takeFree();
        new (n->storage) T(std::move(item));
        n->pushTick = now;
        n->readyTick = ready;
        queue_.pushBack(n);
        ++size_;
        pruneFrees(now);
    }

    /** Consumer-side empty test at the current time. */
    bool
    empty() const
    {
        const Node *h = queue_.head();
        if (h == nullptr)
            return true;
        const Tick now = consumer_.eventQueue().now();
        return h->readyTick > now;
    }

    /** First visible item; caller must have checked !empty(). */
    T &
    front()
    {
        gals_assert(!empty(), "front() on empty channel '", name_, "'");
        return *queue_.head()->item();
    }

    /** Push time of the first visible item (for residency metrics). */
    Tick
    frontPushTick() const
    {
        gals_assert(!empty(), "frontPushTick() on empty channel '", name_,
                    "'");
        return queue_.head()->pushTick;
    }

    /** Remove the first visible item. */
    void
    pop()
    {
        gals_assert(!empty(), "pop() on empty channel '", name_, "'");
        const Tick now = consumer_.eventQueue().now();
        ++pops_;
        Node *n = queue_.popFront();
        --size_;
        totalResidency_ += now - n->pushTick;
        n->destroyItem();
        free_.pushFront(n);
        freeVisible_.push_back(freeVisibleAt(now));
    }

    /** Number of items physically inside (visible or not). */
    std::size_t rawSize() const { return size_; }

    /**
     * Remove every item satisfying @p pred (pipeline squash). Removed
     * items free their slots like pops but do not count residency.
     * Each removal is an O(1) mid-list unlink.
     * @return number of items removed.
     */
    template <typename Pred>
    unsigned
    squash(Pred pred)
    {
        const Tick now = consumer_.eventQueue().now();
        unsigned removed = 0;
        for (Node *n = queue_.head(); n != nullptr;) {
            Node *next = NodeList::next(n);
            if (pred(*n->item())) {
                queue_.unlink(n);
                --size_;
                n->destroyItem();
                free_.pushFront(n);
                freeVisible_.push_back(freeVisibleAt(now));
                ++removed;
            }
            n = next;
        }
        squashedItems_ += removed;
        return removed;
    }

    /** Drop everything (reset). */
    void
    clear()
    {
        squashedItems_ += size_;
        while (Node *n = queue_.popFront()) {
            n->destroyItem();
            free_.pushFront(n);
        }
        size_ = 0;
        freeVisible_.clear();
    }

  private:
    /**
     * One pooled FIFO entry with embedded list links. The item lives
     * in raw aligned storage so pool nodes need no default-
     * constructible T; it is placement-constructed on push and
     * destroyed on pop/squash/clear.
     */
    struct Node
    {
        IntrusiveLink<Node> link;
        Tick pushTick = 0;
        Tick readyTick = 0;
        alignas(T) unsigned char storage[sizeof(T)];

        IntrusiveLink<Node> &intrusiveLink(DefaultListTag)
        {
            return link;
        }

        T *item() { return std::launder(reinterpret_cast<T *>(storage)); }
        void destroyItem() { item()->~T(); }
    };

    using NodeList = IntrusiveList<Node>;

    Node *
    takeFree()
    {
        Node *n = free_.popFront();
        gals_assert(n != nullptr, "channel '", name_,
                    "' entry pool exhausted");
        return n;
    }

    void
    pruneFrees(Tick now)
    {
        while (!freeVisible_.empty() && freeVisible_.front() <= now)
            freeVisible_.pop_front();
    }

    std::unique_ptr<Node[]> pool_; ///< capacity() nodes, fixed for life
    NodeList free_;                ///< recycled nodes
    NodeList queue_;               ///< FIFO order, oldest at head
    std::size_t size_ = 0;

    /** Pop-time slot releases not yet observed by the producer;
     *  sorted (pops happen in time order), pruned on push. */
    std::deque<Tick> freeVisible_;
};

} // namespace gals

#endif // CORE_CHANNEL_HH
