#include "core/domain.hh"

#include "sim/logging.hh"

namespace gals
{

const char *
domainName(DomainId d)
{
    switch (d) {
      case DomainId::fetch:
        return "fetch";
      case DomainId::decode:
        return "decode";
      case DomainId::intd:
        return "int";
      case DomainId::fpd:
        return "fp";
      case DomainId::memd:
        return "mem";
      default:
        gals_panic("bad domain id");
    }
}

} // namespace gals
