/**
 * @file
 * The five clock domains of the GALS processor (paper section 4.1,
 * Figure 3b):
 *
 *   1. fetch   — L1 instruction cache + branch prediction unit
 *   2. decode  — decode, register rename, regfile bookkeeping, commit
 *   3. intd    — integer issue queue + integer ALUs
 *   4. fpd     — floating-point issue queue + FP ALUs
 *   5. memd    — memory issue queue + D-cache + L2
 *
 * The base (synchronous) processor instantiates the same five regions
 * but drives them from clocks with identical period and phase, and
 * couples them with synchronous latches instead of asynchronous FIFOs.
 */

#ifndef CORE_DOMAIN_HH
#define CORE_DOMAIN_HH

#include <array>
#include <cstdint>

namespace gals
{

/** Identifier of one locally synchronous region. */
enum class DomainId : std::uint8_t
{
    fetch = 0, ///< clock domain 1 in the paper
    decode,    ///< clock domain 2
    intd,      ///< clock domain 3
    fpd,       ///< clock domain 4
    memd,      ///< clock domain 5
    numDomains
};

constexpr unsigned numDomains =
    static_cast<unsigned>(DomainId::numDomains);

/** Short lowercase name ("fetch", "decode", "int", "fp", "mem"). */
const char *domainName(DomainId d);

/** Per-domain value holder. */
template <typename T>
using PerDomain = std::array<T, numDomains>;

/** Index helper. */
constexpr unsigned
domainIndex(DomainId d)
{
    return static_cast<unsigned>(d);
}

} // namespace gals

#endif // CORE_DOMAIN_HH
