#include "power/logic_model.hh"

namespace gals
{

double
fuOpEnergyNj(InstClass cls, const TechParams &t)
{
    // Per-operation energies calibrated to Wattch-class published
    // numbers for a 0.13 um, ~1.5 V part: a 64-bit integer ALU
    // operation switches a few hundred pF-equivalent including operand
    // latches, bypass muxing and control (~0.45 nJ); multiplies and
    // iterative divides cost a small multiple of that.
    const double scale = t.energyScale(t.vddNominal); // 1.0 at nominal
    const double add_nj = 0.45 * scale;

    switch (cls) {
      case InstClass::intAlu:
      case InstClass::condBranch:
      case InstClass::uncondBranch:
      case InstClass::call:
      case InstClass::ret:
        return add_nj;
      case InstClass::intMult:
        return 3.0 * add_nj;
      case InstClass::intDiv:
        return 6.0 * add_nj;
      case InstClass::fpAlu:
        return 2.2 * add_nj;
      case InstClass::fpMult:
        return 3.8 * add_nj;
      case InstClass::fpDiv:
        return 7.5 * add_nj;
      case InstClass::load:
      case InstClass::store:
        return 0.8 * add_nj; // address generation
      default:
        return add_nj;
    }
}

double
decodeEnergyNj(const TechParams &t)
{
    return 0.30 * t.energyScale(t.vddNominal);
}

} // namespace gals
