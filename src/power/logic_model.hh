/**
 * @file
 * Random-logic energy constants: functional units and decode logic.
 *
 * Functional-unit energies are lumped per-operation constants at the
 * Wattch level of abstraction, scaled to 0.13 um; an FP multiply is a
 * few times an integer add, divides are iterative (energy charged once
 * per operation, as Wattch does).
 */

#ifndef POWER_LOGIC_MODEL_HH
#define POWER_LOGIC_MODEL_HH

#include "isa/inst.hh"
#include "power/tech_params.hh"

namespace gals
{

/** Energy of executing one operation of class @p cls (nJ, nominal V). */
double fuOpEnergyNj(InstClass cls, const TechParams &t);

/** Energy of decoding one instruction (nJ, nominal V). */
double decodeEnergyNj(const TechParams &t);

} // namespace gals

#endif // POWER_LOGIC_MODEL_HH
