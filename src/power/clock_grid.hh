/**
 * @file
 * Clock distribution network energy (paper section 4.3).
 *
 * The base processor charges a hierarchical network resembling the
 * Alpha 21264: a global grid spanning the die plus five major (local)
 * grids, one per region. The GALS processor keeps the five local
 * grids, clocked by their own domains, and eliminates the global grid
 * entirely. Grid capacitances are anchored to the published 21264
 * numbers (a global clock network of several nanofarads driving a
 * 300+ mm^2 die); each local grid's share follows its region's area
 * and latch count.
 *
 * The clock switches rail-to-rail twice per cycle, so per-cycle energy
 * is C * V^2.
 */

#ifndef POWER_CLOCK_GRID_HH
#define POWER_CLOCK_GRID_HH

#include "power/tech_params.hh"

namespace gals
{

/** One clock grid (global or local). */
struct ClockGridSpec
{
    double gridCapNf = 0.0;    ///< wire + buffer capacitance (nF)
    double latchCount = 0.0;   ///< clocked latches hanging off the grid
};

/** Per-cycle energy of the grid at supply @p vdd, in nJ. */
double clockGridEnergyPerCycleNj(const ClockGridSpec &spec, double vdd,
                                 const TechParams &t);

/** The 21264-like hierarchy used by the experiments. */
struct ClockHierarchySpec
{
    ClockGridSpec global;   ///< global grid (base processor only)
    ClockGridSpec fetch;    ///< domain 1 major grid
    ClockGridSpec decode;   ///< domain 2 major grid
    ClockGridSpec intCore;  ///< domain 3 major grid
    ClockGridSpec fpCore;   ///< domain 4 major grid
    ClockGridSpec memCore;  ///< domain 5 major grid
};

/** Default hierarchy anchored to published 21264 clock numbers. */
const ClockHierarchySpec &defaultClockHierarchy();

} // namespace gals

#endif // POWER_CLOCK_GRID_HH
