#include "power/cam_model.hh"

#include "sim/logging.hh"

namespace gals
{

double
camSearchEnergyNj(unsigned entries, unsigned tagBits, const TechParams &t)
{
    gals_assert(entries > 0 && tagBits > 0, "bad CAM geometry");
    // Tag lines: each bit line runs the height of the array and drives
    // two compare transistors per entry.
    const double tagline_cap =
        static_cast<double>(tagBits) *
        (static_cast<double>(entries) *
             (2.0 * t.cGateFfUm * 0.5 + t.cellHeightUm * t.cWireFfUm) +
         30.0);
    // Matchlines: one per entry, discharged on mismatch (assume most
    // mismatch), spanning tagBits cells.
    const double matchline_cap =
        static_cast<double>(entries) *
        (static_cast<double>(tagBits) *
             (t.cDiffFfUm + t.cellWidthUm * t.cWireFfUm) +
         20.0);
    const double v = t.vddNominal;
    return (tagline_cap + matchline_cap) * t.camEnergyScale * v * v *
           1e-6;
}

double
camWriteEnergyNj(unsigned entries, unsigned payloadBits,
                 const TechParams &t)
{
    // Writing one entry behaves like a small array write.
    const double wl_cap = static_cast<double>(payloadBits) *
                          (2.0 * t.cGateFfUm * 0.6 +
                           t.cellWidthUm * t.cWireFfUm);
    const double bl_cap = static_cast<double>(payloadBits) *
                          static_cast<double>(entries) *
                          (t.cDiffFfUm * 0.8 +
                           t.cellHeightUm * t.cWireFfUm) * 0.5;
    const double v = t.vddNominal;
    return (wl_cap + bl_cap) * t.arrayEnergyScale * v * v * 1e-6;
}

} // namespace gals
