/**
 * @file
 * The per-unit energy table: maps every architectural macro block of
 * the processor (the "various macro blocks" of paper Figure 10) to an
 * energy per access computed from the analytical models, plus the
 * clock-grid per-cycle energies.
 */

#ifndef POWER_POWER_MODEL_HH
#define POWER_POWER_MODEL_HH

#include <array>
#include <cstdint>
#include <string>

#include "core/domain.hh"
#include "power/clock_grid.hh"
#include "power/tech_params.hh"

namespace gals
{

struct CoreConfig; // cpu/core_config.hh

/**
 * Macro blocks tracked by the power model. The first six are clock
 * grids (charged per cycle); the rest are charged per access with a
 * 10% idle fraction (conditional clocking, paper section 4.3).
 */
enum class Unit : std::uint8_t
{
    globalClock = 0, ///< global grid: base processor only
    fetchClock,
    decodeClock,
    intClock,
    fpClock,
    memClock,

    icache,
    bpred,        ///< direction tables + BTB + RAS
    decodeLogic,
    renameTable,
    rob,
    regfileInt,
    regfileFp,
    intIssueQueue,
    fpIssueQueue,
    memIssueQueue,
    lsq,
    intAlu,
    fpAlu,
    dcache,
    l2cache,
    resultBus,
    fifo,         ///< inter-domain FIFOs: GALS processor only
    numUnits
};

constexpr unsigned numUnits = static_cast<unsigned>(Unit::numUnits);

/** Stable display name for a unit (used by Figure 10 output). */
const char *unitName(Unit u);

/** The clock domain each unit's activity belongs to. */
DomainId unitDomain(Unit u);

/** True for the six clock-grid units. */
bool isClockUnit(Unit u);

/**
 * Energy table for a specific core configuration: per-access energies
 * for every block, per-cycle energies for every clock grid, all in nJ
 * at nominal supply.
 */
class PowerModel
{
  public:
    PowerModel(const CoreConfig &core, const TechParams &tech,
               const ClockHierarchySpec &clocks);

    /** Per-access energy (per-cycle for clock units), nJ, nominal V. */
    double accessEnergyNj(Unit u) const
    {
        return energyNj_[static_cast<unsigned>(u)];
    }

    const TechParams &tech() const { return tech_; }

  private:
    TechParams tech_;
    std::array<double, numUnits> energyNj_{};
};

} // namespace gals

#endif // POWER_POWER_MODEL_HH
