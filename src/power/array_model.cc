#include "power/array_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace gals
{

double
arrayAccessCapFf(const ArrayGeometry &g, const TechParams &t)
{
    gals_assert(g.rows > 0 && g.colsBits > 0, "empty array geometry");

    const double ports = g.readPorts + g.writePorts;
    const double port_factor = 1.0 + t.cellPortGrowth * (ports - 1.0);
    const double cell_w = t.cellWidthUm * port_factor;
    const double cell_h = t.cellHeightUm * port_factor;

    // Row decoder: roughly log2(rows) stages of predecode driving the
    // wordline driver; modelled as a small multiple of gate cap.
    const double dec_cap =
        std::log2(static_cast<double>(g.rows) + 1.0) * 24.0 * t.cGateFfUm;

    // Wordline: one pass-gate pair per column bit plus the wire.
    const double wl_cap =
        static_cast<double>(g.colsBits) *
        (2.0 * t.cGateFfUm * 0.6 + cell_w * t.cWireFfUm);

    // Bitlines: every column swings; per column, one diffusion cap per
    // row plus the wire. Reads use a reduced (sense-amp limited)
    // swing, modelled as a 0.5 factor.
    const double bl_per_col =
        static_cast<double>(g.rows) *
        (t.cDiffFfUm * 0.8 + cell_h * t.cWireFfUm);
    const double bl_cap =
        static_cast<double>(g.colsBits) * bl_per_col * 0.5;

    // Sense amps and output drivers, per column bit.
    const double sense_cap = static_cast<double>(g.colsBits) * 6.0;

    return dec_cap + wl_cap + bl_cap + sense_cap;
}

double
arrayAccessEnergyNj(const ArrayGeometry &g, const TechParams &t)
{
    const double cap_ff = arrayAccessCapFf(g, t) * t.arrayEnergyScale;
    const double v = t.vddNominal;
    // E = C * V^2; fF * V^2 = fJ; convert to nJ.
    return cap_ff * v * v * 1e-6;
}

double
cacheAccessEnergyNj(std::uint64_t sizeBytes, unsigned sets, unsigned ways,
                    unsigned lineBytes, const TechParams &t)
{
    gals_assert(sets > 0 && ways > 0 && lineBytes > 0, "bad cache geom");

    // Large caches are sub-banked (CACTI style): an access activates
    // one subarray of at most 128 rows x 512 columns, plus H-tree
    // routing whose cost grows with the bank count.
    constexpr std::uint64_t bank_rows = 128;
    constexpr std::uint64_t bank_cols = 512;
    const std::uint64_t total_bits = sizeBytes * 8;
    const std::uint64_t banks =
        std::max<std::uint64_t>(1, total_bits / (bank_rows * bank_cols));

    ArrayGeometry data;
    data.rows = std::min<std::uint64_t>(sets, bank_rows);
    data.colsBits = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(ways) * lineBytes * 8, bank_cols);
    ArrayGeometry tags;
    tags.rows = std::min<std::uint64_t>(sets, bank_rows);
    tags.colsBits = static_cast<std::uint64_t>(ways) * 26; // tag+state

    const double routing_nj =
        0.25 * std::sqrt(static_cast<double>(banks)) *
        t.energyScale(t.vddNominal);

    return arrayAccessEnergyNj(data, t) + arrayAccessEnergyNj(tags, t) +
           routing_nj;
}

} // namespace gals
