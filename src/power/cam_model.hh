/**
 * @file
 * CAM (content-addressable) energy model for issue-queue wakeup and
 * LSQ address matching: a search drives the tag lines across every
 * entry and precharges/discharges one matchline per entry.
 */

#ifndef POWER_CAM_MODEL_HH
#define POWER_CAM_MODEL_HH

#include "power/tech_params.hh"

namespace gals
{

/**
 * Energy of one associative search over @p entries entries of
 * @p tagBits bits, in nanojoules at nominal supply.
 */
double camSearchEnergyNj(unsigned entries, unsigned tagBits,
                         const TechParams &t);

/**
 * Energy of writing one entry's payload of @p payloadBits bits.
 */
double camWriteEnergyNj(unsigned entries, unsigned payloadBits,
                        const TechParams &t);

} // namespace gals

#endif // POWER_CAM_MODEL_HH
