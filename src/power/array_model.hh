/**
 * @file
 * Analytical SRAM array energy model (CACTI/Wattch style).
 *
 * Energy per access is computed from decoder, wordline and bitline
 * switched capacitance for an array of R rows x C columns with P
 * ports. Used for caches, register files, rename tables, the ROB and
 * predictor tables.
 */

#ifndef POWER_ARRAY_MODEL_HH
#define POWER_ARRAY_MODEL_HH

#include <cstdint>

#include "power/tech_params.hh"

namespace gals
{

/** Geometry of an SRAM array. */
struct ArrayGeometry
{
    std::uint64_t rows = 0;
    std::uint64_t colsBits = 0;  ///< bits read per row (all columns)
    unsigned readPorts = 1;
    unsigned writePorts = 1;
};

/**
 * Switched capacitance of one access to the array, in femtofarads.
 * One access activates one wordline and swings every bitline pair.
 */
double arrayAccessCapFf(const ArrayGeometry &g, const TechParams &t);

/**
 * Energy of one access in nanojoules at the nominal supply.
 */
double arrayAccessEnergyNj(const ArrayGeometry &g, const TechParams &t);

/**
 * Convenience for cache-like structures: @p sizeBytes data +
 * @p tagBits per line of tag, organized as @p sets rows.
 */
double cacheAccessEnergyNj(std::uint64_t sizeBytes, unsigned sets,
                           unsigned ways, unsigned lineBytes,
                           const TechParams &t);

} // namespace gals

#endif // POWER_ARRAY_MODEL_HH
