#include "power/bus_model.hh"

namespace gals
{

double
busTransferEnergyNj(unsigned bits, double lengthMm, const TechParams &t)
{
    // Wire cap plus ~40% repeater overhead; half the bits toggle.
    const double wire_ff =
        static_cast<double>(bits) * lengthMm * 1000.0 * t.cWireFfUm;
    const double total_ff = wire_ff * 1.4 * 0.5;
    const double v = t.vddNominal;
    return total_ff * v * v * 1e-6;
}

} // namespace gals
