#include "power/power_model.hh"

#include "cpu/core_config.hh"
#include "power/array_model.hh"
#include "power/bus_model.hh"
#include "power/cam_model.hh"
#include "power/logic_model.hh"
#include "sim/logging.hh"

namespace gals
{

const char *
unitName(Unit u)
{
    switch (u) {
      case Unit::globalClock:   return "global_clock";
      case Unit::fetchClock:    return "fetch_clock";
      case Unit::decodeClock:   return "decode_clock";
      case Unit::intClock:      return "int_clock";
      case Unit::fpClock:       return "fp_clock";
      case Unit::memClock:      return "mem_clock";
      case Unit::icache:        return "icache";
      case Unit::bpred:         return "branch_pred";
      case Unit::decodeLogic:   return "decode_logic";
      case Unit::renameTable:   return "rename_table";
      case Unit::rob:           return "rob";
      case Unit::regfileInt:    return "regfile_int";
      case Unit::regfileFp:     return "regfile_fp";
      case Unit::intIssueQueue: return "int_issue_q";
      case Unit::fpIssueQueue:  return "fp_issue_q";
      case Unit::memIssueQueue: return "mem_issue_q";
      case Unit::lsq:           return "lsq";
      case Unit::intAlu:        return "int_alus";
      case Unit::fpAlu:         return "fp_alus";
      case Unit::dcache:        return "dcache";
      case Unit::l2cache:       return "l2_cache";
      case Unit::resultBus:     return "result_bus";
      case Unit::fifo:          return "async_fifos";
      default:
        gals_panic("bad unit");
    }
}

DomainId
unitDomain(Unit u)
{
    switch (u) {
      case Unit::globalClock:   return DomainId::decode; // reference
      case Unit::fetchClock:    return DomainId::fetch;
      case Unit::decodeClock:   return DomainId::decode;
      case Unit::intClock:      return DomainId::intd;
      case Unit::fpClock:       return DomainId::fpd;
      case Unit::memClock:      return DomainId::memd;
      case Unit::icache:        return DomainId::fetch;
      case Unit::bpred:         return DomainId::fetch;
      case Unit::decodeLogic:   return DomainId::decode;
      case Unit::renameTable:   return DomainId::decode;
      case Unit::rob:           return DomainId::decode;
      case Unit::regfileInt:    return DomainId::intd;
      case Unit::regfileFp:     return DomainId::fpd;
      case Unit::intIssueQueue: return DomainId::intd;
      case Unit::fpIssueQueue:  return DomainId::fpd;
      case Unit::memIssueQueue: return DomainId::memd;
      case Unit::lsq:           return DomainId::memd;
      case Unit::intAlu:        return DomainId::intd;
      case Unit::fpAlu:         return DomainId::fpd;
      case Unit::dcache:        return DomainId::memd;
      case Unit::l2cache:       return DomainId::memd;
      case Unit::resultBus:     return DomainId::intd;
      case Unit::fifo:          return DomainId::decode;
      default:
        gals_panic("bad unit");
    }
}

bool
isClockUnit(Unit u)
{
    switch (u) {
      case Unit::globalClock:
      case Unit::fetchClock:
      case Unit::decodeClock:
      case Unit::intClock:
      case Unit::fpClock:
      case Unit::memClock:
        return true;
      default:
        return false;
    }
}

PowerModel::PowerModel(const CoreConfig &core, const TechParams &tech,
                       const ClockHierarchySpec &clocks)
    : tech_(tech)
{
    auto set = [this](Unit u, double nj) {
        energyNj_[static_cast<unsigned>(u)] = nj;
    };
    const double vn = tech.vddNominal;

    // ----- clock grids (per-cycle energies at nominal supply) --------
    set(Unit::globalClock,
        clockGridEnergyPerCycleNj(clocks.global, vn, tech));
    set(Unit::fetchClock,
        clockGridEnergyPerCycleNj(clocks.fetch, vn, tech));
    set(Unit::decodeClock,
        clockGridEnergyPerCycleNj(clocks.decode, vn, tech));
    set(Unit::intClock,
        clockGridEnergyPerCycleNj(clocks.intCore, vn, tech));
    set(Unit::fpClock,
        clockGridEnergyPerCycleNj(clocks.fpCore, vn, tech));
    set(Unit::memClock,
        clockGridEnergyPerCycleNj(clocks.memCore, vn, tech));

    // ----- caches -----------------------------------------------------
    const auto &hc = core.caches;
    const unsigned il1_sets = static_cast<unsigned>(
        hc.il1Size / hc.il1Ways / hc.lineBytes);
    const unsigned dl1_sets = static_cast<unsigned>(
        hc.dl1Size / hc.dl1Ways / hc.lineBytes);
    const unsigned l2_sets = static_cast<unsigned>(
        hc.l2Size / hc.l2Ways / hc.lineBytes);
    set(Unit::icache, cacheAccessEnergyNj(hc.il1Size, il1_sets,
                                          hc.il1Ways, hc.lineBytes,
                                          tech));
    set(Unit::dcache, cacheAccessEnergyNj(hc.dl1Size, dl1_sets,
                                          hc.dl1Ways, hc.lineBytes,
                                          tech));
    set(Unit::l2cache, cacheAccessEnergyNj(hc.l2Size, l2_sets, hc.l2Ways,
                                           hc.lineBytes, tech));

    // ----- branch prediction ------------------------------------------
    {
        ArrayGeometry dir;
        dir.rows = core.bpred.gshareEntries / 8;
        dir.colsBits = 16; // 8 counters per row
        ArrayGeometry btb;
        btb.rows = core.bpred.btbSets;
        btb.colsBits = core.bpred.btbWays * 64;
        set(Unit::bpred, arrayAccessEnergyNj(dir, tech) +
                             arrayAccessEnergyNj(btb, tech));
    }

    // ----- decode / rename / rob --------------------------------------
    set(Unit::decodeLogic, decodeEnergyNj(tech));
    {
        // RAT: numArchRegs entries of ~7 bits, highly multiported.
        ArrayGeometry rat;
        rat.rows = numArchRegs;
        rat.colsBits = 8;
        rat.readPorts = 8;
        rat.writePorts = 4;
        set(Unit::renameTable, arrayAccessEnergyNj(rat, tech));
    }
    {
        ArrayGeometry rob;
        rob.rows = core.robSize;
        rob.colsBits = 96; // pc, status, regs
        rob.readPorts = 4;
        rob.writePorts = 4;
        set(Unit::rob, arrayAccessEnergyNj(rob, tech));
    }

    // ----- register files ---------------------------------------------
    {
        ArrayGeometry rf;
        rf.rows = core.numIntPhysRegs;
        rf.colsBits = 64;
        rf.readPorts = 8;
        rf.writePorts = 4;
        set(Unit::regfileInt, arrayAccessEnergyNj(rf, tech));
        rf.rows = core.numFpPhysRegs;
        set(Unit::regfileFp, arrayAccessEnergyNj(rf, tech));
    }

    // ----- issue queues: CAM wakeup + payload RAM ----------------------
    auto iq_energy = [&tech](unsigned entries) {
        ArrayGeometry payload;
        payload.rows = entries;
        payload.colsBits = 80;
        payload.readPorts = 4;
        payload.writePorts = 4;
        return camSearchEnergyNj(entries, 8, tech) +
               0.5 * arrayAccessEnergyNj(payload, tech);
    };
    set(Unit::intIssueQueue, iq_energy(core.intQueueSize));
    set(Unit::fpIssueQueue, iq_energy(core.fpQueueSize));
    set(Unit::memIssueQueue, iq_energy(core.memQueueSize));
    set(Unit::lsq, camSearchEnergyNj(core.lsqSize, 32, tech));

    // ----- functional units (representative per-op energies) ----------
    set(Unit::intAlu, fuOpEnergyNj(InstClass::intAlu, tech));
    set(Unit::fpAlu, fuOpEnergyNj(InstClass::fpMult, tech));

    // ----- result bus ---------------------------------------------------
    set(Unit::resultBus, busTransferEnergyNj(72, 6.0, tech));

    // ----- asynchronous FIFO push/pop ----------------------------------
    {
        // A FIFO slot write/read behaves like a small 8-entry array of
        // ~80 payload bits plus synchronizer flops.
        ArrayGeometry f;
        f.rows = 8;
        f.colsBits = 80;
        set(Unit::fifo, arrayAccessEnergyNj(f, tech) +
                            6.0 * tech.cLatchFf * vn * vn * 1e-6);
    }
}

} // namespace gals
