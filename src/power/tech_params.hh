/**
 * @file
 * Technology parameters for the power models.
 *
 * The paper's power experiments assume contemporary (2002) technology:
 * 0.13 um devices, for which it uses alpha = 1.6 in the delay/voltage
 * relation D ~ V / (V - Vt)^alpha (equation 1, after Chen & Hu). The
 * capacitance constants below are of the magnitude used by
 * Wattch/CACTI-class models scaled to 0.13 um; absolute watts are
 * calibration-grade, but relative block-to-block numbers — which are
 * all the paper's figures use — follow structure geometry.
 */

#ifndef POWER_TECH_PARAMS_HH
#define POWER_TECH_PARAMS_HH

namespace gals
{

/** Process / circuit constants used by all power models. */
struct TechParams
{
    double featureUm = 0.13;   ///< drawn feature size
    double vddNominal = 1.5;   ///< nominal supply (V)
    double vt = 0.3;           ///< threshold voltage (V)
    double alpha = 1.6;        ///< velocity-saturation exponent (eq. 1)

    /** @name Capacitance constants */
    /// @{
    double cGateFfUm = 1.7;    ///< gate cap per um of transistor width
    double cDiffFfUm = 1.0;    ///< drain/source diffusion cap per um
    double cWireFfUm = 0.25;   ///< wire cap per um of metal
    double cLatchFf = 12.0;    ///< clock load of one latch/flop (fF)
    /// @}

    /** @name SRAM cell geometry (um), grows with port count */
    /// @{
    double cellWidthUm = 1.7;
    double cellHeightUm = 1.7;
    double cellPortGrowth = 0.6; ///< extra size per additional port
    /// @}

    /** @name Structure-level energy calibration
     *
     * The analytic models below count only first-order switched
     * capacitance (wordlines, bitlines, taglines). Real structures add
     * decoders, sense amplifiers, precharge, drivers, control and
     * clock loading; these multipliers calibrate the totals to
     * published per-access energies of the era (Wattch-class models).
     */
    /// @{
    double arrayEnergyScale = 12.0;
    double camEnergyScale = 40.0;
    /// @}

    /**
     * Fraction of a unit's access energy burned when the unit is idle
     * in a cycle; models imperfect clock gating plus leakage (paper
     * section 4.3: "we modeled unused modules as consuming 10% of
     * their full power").
     */
    double idleFraction = 0.10;

    /** Voltage scaling factor for switching energy: (V / Vnom)^2. */
    double
    energyScale(double vdd) const
    {
        const double r = vdd / vddNominal;
        return r * r;
    }
};

/** The default 0.13 um technology used throughout the experiments. */
const TechParams &defaultTech();

} // namespace gals

#endif // POWER_TECH_PARAMS_HH
