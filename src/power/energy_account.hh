/**
 * @file
 * Runtime energy accounting.
 *
 * Pipeline stages report per-cycle access counts for each macro block;
 * at the end of each clock-domain cycle the account charges
 * n * E_access for active blocks and idleFraction * E_access for idle
 * ones (conditional clocking, paper section 4.3), plus the domain's
 * local clock-grid energy — and, in the base processor only, the
 * global clock grid. All charges scale with the square of the owning
 * domain's supply voltage, which is how per-domain voltage scaling
 * (section 5.2) enters the bookkeeping.
 */

#ifndef POWER_ENERGY_ACCOUNT_HH
#define POWER_ENERGY_ACCOUNT_HH

#include <array>
#include <cstdint>

#include "power/power_model.hh"

namespace gals
{

/**
 * Accumulates per-unit energies over a simulation run.
 */
class EnergyAccount
{
  public:
    explicit EnergyAccount(const PowerModel &model);

    /** Record @p n accesses to @p u in the current cycle. */
    void
    chargeAccess(Unit u, unsigned n = 1)
    {
        cycleAccesses_[static_cast<unsigned>(u)] += n;
    }

    /**
     * Charge @p n events against @p u immediately at supply @p vdd
     * (used for FIFO pushes/pops and result-bus transfers, which are
     * not per-cycle gated structures).
     */
    void chargeImmediate(Unit u, std::uint64_t n, double vdd);

    /** Charge a raw energy (nJ at nominal V) to @p u at @p vdd. */
    void chargeEnergyNj(Unit u, double nj, double vdd);

    /**
     * Close one cycle of clock domain @p d at supply @p vdd: charge
     * active/idle energies for the domain's blocks plus its local
     * clock grid.
     */
    void domainCycle(DomainId d, double vdd);

    /** Charge one global-clock-grid cycle (base processor only). */
    void globalClockCycle(double vdd);

    /** Accumulated energy of one unit, nJ. */
    double
    unitEnergyNj(Unit u) const
    {
        return energyNj_[static_cast<unsigned>(u)];
    }

    /** Total accumulated energy, nJ. */
    double totalNj() const;

    /** Total over the six clock-grid units, nJ. */
    double clockEnergyNj() const;

    const PowerModel &model() const { return model_; }

    void reset();

  private:
    const PowerModel &model_;
    std::array<std::uint64_t, numUnits> cycleAccesses_{};
    std::array<double, numUnits> energyNj_{};
};

/** The clock-grid unit of a domain. */
Unit clockUnitOf(DomainId d);

} // namespace gals

#endif // POWER_ENERGY_ACCOUNT_HH
