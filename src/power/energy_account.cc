#include "power/energy_account.hh"

#include "sim/logging.hh"

namespace gals
{

Unit
clockUnitOf(DomainId d)
{
    switch (d) {
      case DomainId::fetch:
        return Unit::fetchClock;
      case DomainId::decode:
        return Unit::decodeClock;
      case DomainId::intd:
        return Unit::intClock;
      case DomainId::fpd:
        return Unit::fpClock;
      case DomainId::memd:
        return Unit::memClock;
      default:
        gals_panic("bad domain id");
    }
}

EnergyAccount::EnergyAccount(const PowerModel &model) : model_(model) {}

void
EnergyAccount::chargeImmediate(Unit u, std::uint64_t n, double vdd)
{
    const double scale = model_.tech().energyScale(vdd);
    energyNj_[static_cast<unsigned>(u)] +=
        n * model_.accessEnergyNj(u) * scale;
}

void
EnergyAccount::chargeEnergyNj(Unit u, double nj, double vdd)
{
    const double scale = model_.tech().energyScale(vdd);
    energyNj_[static_cast<unsigned>(u)] += nj * scale;
}

void
EnergyAccount::domainCycle(DomainId d, double vdd)
{
    const double scale = model_.tech().energyScale(vdd);
    const double idle = model_.tech().idleFraction;

    for (unsigned i = 0; i < numUnits; ++i) {
        const Unit u = static_cast<Unit>(i);
        if (isClockUnit(u) || u == Unit::fifo || u == Unit::resultBus)
            continue; // charged per event, not per cycle
        if (unitDomain(u) != d)
            continue;
        const double ea = model_.accessEnergyNj(u);
        if (cycleAccesses_[i] > 0) {
            energyNj_[i] += cycleAccesses_[i] * ea * scale;
            cycleAccesses_[i] = 0;
        } else {
            energyNj_[i] += idle * ea * scale;
        }
    }

    const Unit clk = clockUnitOf(d);
    energyNj_[static_cast<unsigned>(clk)] +=
        model_.accessEnergyNj(clk) * scale;
}

void
EnergyAccount::globalClockCycle(double vdd)
{
    chargeImmediate(Unit::globalClock, 1, vdd);
}

double
EnergyAccount::totalNj() const
{
    double sum = 0.0;
    for (const double e : energyNj_)
        sum += e;
    return sum;
}

double
EnergyAccount::clockEnergyNj() const
{
    double sum = 0.0;
    for (unsigned i = 0; i < numUnits; ++i)
        if (isClockUnit(static_cast<Unit>(i)))
            sum += energyNj_[i];
    return sum;
}

void
EnergyAccount::reset()
{
    cycleAccesses_.fill(0);
    energyNj_.fill(0.0);
}

} // namespace gals
