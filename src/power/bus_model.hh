/**
 * @file
 * Result / operand bus energy: driving @p bits across @p lengthMm of
 * on-die wire with repeaters.
 */

#ifndef POWER_BUS_MODEL_HH
#define POWER_BUS_MODEL_HH

#include "power/tech_params.hh"

namespace gals
{

/** Energy of one transfer of @p bits over @p lengthMm (nJ). */
double busTransferEnergyNj(unsigned bits, double lengthMm,
                           const TechParams &t);

} // namespace gals

#endif // POWER_BUS_MODEL_HH
