#include "power/tech_params.hh"

namespace gals
{

const TechParams &
defaultTech()
{
    static const TechParams tech;
    return tech;
}

} // namespace gals
