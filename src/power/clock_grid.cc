#include "power/clock_grid.hh"

namespace gals
{

double
clockGridEnergyPerCycleNj(const ClockGridSpec &spec, double vdd,
                          const TechParams &t)
{
    const double cap_nf =
        spec.gridCapNf + spec.latchCount * t.cLatchFf * 1e-6;
    // Full swing up and down each cycle: E = C * V^2.
    return cap_nf * vdd * vdd;
}

const ClockHierarchySpec &
defaultClockHierarchy()
{
    // The 21264's full clock network dissipated a large fraction of
    // chip power; its global grid alone is several nF. The local
    // (major) grids divide by region area; latch counts follow the
    // relative amount of sequential state in each region.
    static const ClockHierarchySpec spec = {
        /* global */   {0.88, 16000.0},
        /* fetch */    {0.45, 18000.0},
        /* decode */   {0.50, 26000.0},
        /* intCore */  {0.65, 30000.0},
        /* fpCore */   {0.50, 22000.0},
        /* memCore */  {0.75, 30000.0},
    };
    return spec;
}

} // namespace gals
