#!/usr/bin/env python3
"""Compare two benchmark result files and print a delta table.

Usage: compare_bench.py BASELINE CURRENT

Two input formats are auto-detected per file:

* google-benchmark JSON (a single object with a "benchmarks" array),
  as produced by

    galsmicro --benchmark_repetitions=5 \
              --benchmark_report_aggregates_only=true \
              --benchmark_format=json --benchmark_out=...

  Compared metric: median real time per benchmark.

* sweep trajectory JSONL (one record object per line, as written by
  galsbench --output, or by `galsbench parse` from a .gtrj archive).
  Compared metric: simulated "ticks" per record, keyed by
  scenario/index/benchmark/seed. Ticks are deterministic, so any
  delta is a real behavior change in the simulated machine, not
  runner noise. Records carrying the gated interval-meter time-series
  (--interval-ticks) additionally contribute their final interval's
  cumulative committed count as a separate "… interval" entry;
  records without the field (every pre-meter archive) simply
  contribute no such entry.

Prints a per-entry table of baseline vs current (with the ratio) plus
entries that appear on only one side, so the CI perf-trajectory step
can surface deltas between consecutive runs. Comparison output is
informational: the exit code is 0 whenever both inputs parse,
regardless of regressions (gating perf on shared CI runners would be
noise-bound; the numbers are for humans reading the log).
"""

import json
import sys


def medians(data):
    """name -> (real_time, time_unit) for every *_median aggregate."""
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("aggregate_name") != "median":
            continue
        name = b["name"]
        if name.endswith("_median"):
            name = name[: -len("_median")]
        out[name] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


def trajectory_ticks(lines):
    """record key -> (ticks, "tk") for every trajectory record."""
    out = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        r = json.loads(line)
        key = "{}[{}] {} seed={}{}".format(
            r.get("scenario", "?"), r.get("index", "?"),
            r.get("benchmark", "?"), r.get("seed", "?"),
            " gals" if r.get("gals") else "")
        out[key] = (float(r["ticks"]), "tk")
        # Gated interval-meter series: compare the last interval's
        # cumulative committed count when present; absent fields
        # (pre-meter archives, meterless runs) are simply skipped.
        intervals = r.get("intervals")
        if intervals:
            committed = sum(s.get("committed", 0) for s in intervals)
            out[key + " interval"] = (float(committed), "in")
    return out


def load(path):
    """Return the metric map for either supported format."""
    with open(path) as f:
        text = f.read()
    try:
        data = json.loads(text)
    except ValueError:
        data = None
    if isinstance(data, dict) and "benchmarks" in data:
        return medians(data)
    return trajectory_ticks(text.splitlines())


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        base = load(argv[1])
        cur = load(argv[2])
    except (OSError, ValueError, KeyError) as e:
        print(f"compare_bench: cannot read inputs: {e}", file=sys.stderr)
        return 1

    if not base or not cur:
        print("compare_bench: no comparable entries found "
              "(need median aggregates or trajectory records)",
              file=sys.stderr)
        return 1

    shared = [n for n in cur if n in base]
    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}"
          f"  {'speedup':>8}")
    for name in shared:
        old, unit = base[name]
        new, _ = cur[name]
        speedup = old / new if new > 0 else float("inf")
        marker = ""
        if speedup >= 1.05:
            marker = "  faster"
        elif speedup <= 0.95:
            marker = "  SLOWER"
        print(f"{name:<{width}}  {old:>10.0f}{unit:>2}  "
              f"{new:>10.0f}{unit:>2}  {speedup:>7.2f}x{marker}")

    for name in sorted(set(cur) - set(base)):
        print(f"{name:<{width}}  {'-':>12}  "
              f"{cur[name][0]:>10.0f}{cur[name][1]:>2}  (new)")
    for name in sorted(set(base) - set(cur)):
        print(f"{name:<{width}}  {base[name][0]:>10.0f}"
              f"{base[name][1]:>2}  {'-':>12}  (removed)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
