#!/usr/bin/env python3
"""Compare two google-benchmark JSON result files by median time.

Usage: compare_bench.py BASELINE.json CURRENT.json

Both files are expected to come from

  galsmicro --benchmark_repetitions=5 \
            --benchmark_report_aggregates_only=true \
            --benchmark_format=json --benchmark_out=...

Prints a per-benchmark table of median real time (baseline vs current,
with the speedup factor) plus benchmarks that appear on only one side,
so the CI perf-trajectory step can surface deltas between consecutive
runs. Comparison output is informational: the exit code is 0 whenever
both inputs parse, regardless of regressions (gating perf on shared CI
runners would be noise-bound; the numbers are for humans reading the
log).
"""

import json
import sys


def medians(path):
    """name -> (real_time, time_unit) for every *_median aggregate."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("aggregate_name") != "median":
            continue
        name = b["name"]
        if name.endswith("_median"):
            name = name[: -len("_median")]
        out[name] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        base = medians(argv[1])
        cur = medians(argv[2])
    except (OSError, ValueError, KeyError) as e:
        print(f"compare_bench: cannot read inputs: {e}", file=sys.stderr)
        return 1

    if not base or not cur:
        print("compare_bench: no median aggregates found "
              "(need --benchmark_repetitions with aggregates)",
              file=sys.stderr)
        return 1

    shared = [n for n in cur if n in base]
    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}"
          f"  {'speedup':>8}")
    for name in shared:
        old, unit = base[name]
        new, _ = cur[name]
        speedup = old / new if new > 0 else float("inf")
        marker = ""
        if speedup >= 1.05:
            marker = "  faster"
        elif speedup <= 0.95:
            marker = "  SLOWER"
        print(f"{name:<{width}}  {old:>10.0f}{unit:>2}  "
              f"{new:>10.0f}{unit:>2}  {speedup:>7.2f}x{marker}")

    for name in sorted(set(cur) - set(base)):
        print(f"{name:<{width}}  {'-':>12}  "
              f"{cur[name][0]:>10.0f}{cur[name][1]:>2}  (new)")
    for name in sorted(set(base) - set(cur)):
        print(f"{name:<{width}}  {base[name][0]:>10.0f}"
              f"{base[name][1]:>2}  {'-':>12}  (removed)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
