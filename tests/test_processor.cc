/**
 * @file
 * Integration tests on the full processor: both configurations run to
 * completion, commit exactly the requested instruction count, maintain
 * machine invariants (no lost instructions, monotonic commit), are
 * deterministic, and expose sensible statistics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/processor.hh"

using namespace gals;

namespace
{

struct SimRun
{
    EventQueue eq;
    ProcessorConfig cfg;
    std::unique_ptr<Processor> proc;

    explicit SimRun(bool gals_mode, const std::string &bench = "gcc",
                 std::uint64_t insts = 5000,
                 DvfsSetting dvfs = DvfsSetting(),
                 std::uint64_t seed = 0)
    {
        cfg.gals = gals_mode;
        cfg.dvfs = gals_mode ? dvfs : DvfsSetting();
        cfg.phaseSeed = seed;
        proc = std::make_unique<Processor>(eq, cfg,
                                           findBenchmark(bench), seed);
        proc->run(insts);
    }
};

} // namespace

TEST(Processor, BaseRunsToCompletion)
{
    SimRun r(false);
    EXPECT_EQ(r.proc->decodeUnit().commitStats().committed, 5000u);
    EXPECT_GT(r.proc->runTicks(), 0u);
}

TEST(Processor, GalsRunsToCompletion)
{
    SimRun r(true);
    EXPECT_EQ(r.proc->decodeUnit().commitStats().committed, 5000u);
}

TEST(Processor, AllCorrectPathInstructionsCommit)
{
    SimRun r(false);
    const auto &f = r.proc->fetch();
    // fetched = committed correct path + wrong path fetches.
    EXPECT_EQ(f.fetched() - f.wrongPathFetched(), 5000u);
}

TEST(Processor, DeterministicAcrossRuns)
{
    SimRun a(true, "compress", 4000);
    SimRun b(true, "compress", 4000);
    EXPECT_EQ(a.proc->runTicks(), b.proc->runTicks());
    EXPECT_EQ(a.proc->fetch().fetched(), b.proc->fetch().fetched());
    EXPECT_DOUBLE_EQ(a.proc->finalizeEnergyNj(),
                     b.proc->finalizeEnergyNj());
}

TEST(Processor, PhaseSeedChangesGalsTimingOnly)
{
    SimRun a(true, "gcc", 4000, DvfsSetting(), 1);
    SimRun b(true, "gcc", 4000, DvfsSetting(), 2);
    // Different phases: timing may differ slightly...
    // (it is legal for them to coincide, so only sanity-check commits)
    EXPECT_EQ(a.proc->decodeUnit().commitStats().committed,
              b.proc->decodeUnit().commitStats().committed);
}

TEST(Processor, BaseDomainsShareClockGalsDomainsDiffer)
{
    SimRun base(false);
    for (unsigned i = 0; i < numDomains; ++i) {
        EXPECT_EQ(base.proc->domain(static_cast<DomainId>(i)).period(),
                  base.cfg.nominalPeriod);
        EXPECT_EQ(base.proc->domain(static_cast<DomainId>(i)).phase(),
                  0u);
    }

    SimRun gals_run(true);
    bool any_phase = false;
    for (unsigned i = 0; i < numDomains; ++i)
        any_phase = any_phase ||
                    gals_run.proc->domain(static_cast<DomainId>(i))
                            .phase() != 0;
    EXPECT_TRUE(any_phase);
}

TEST(Processor, DvfsSlowsDomainAndScalesVdd)
{
    DvfsSetting dvfs;
    dvfs.slowdown[domainIndex(DomainId::fpd)] = 2.0;
    SimRun r(true, "gcc", 3000, dvfs);
    EXPECT_EQ(r.proc->domain(DomainId::fpd).period(), 2000u);
    EXPECT_LT(r.proc->domain(DomainId::fpd).vdd(), 1.5);
    EXPECT_EQ(r.proc->domain(DomainId::intd).period(), 1000u);
}

TEST(Processor, ChannelsAreLatchesInBaseFifosInGals)
{
    SimRun base(false);
    for (const ChannelBase *ch : base.proc->channels())
        EXPECT_FALSE(ch->isAsync());
    SimRun g(true);
    for (const ChannelBase *ch : g.proc->channels())
        EXPECT_TRUE(ch->isAsync());
}

TEST(Processor, FifoResidencyOnlyInGals)
{
    SimRun base(false, "gcc", 4000);
    SimRun g(true, "gcc", 4000);
    const auto &bs = base.proc->decodeUnit().commitStats();
    const auto &gs = g.proc->decodeUnit().commitStats();
    EXPECT_DOUBLE_EQ(bs.fifoSlipSumTicks, 0.0);
    EXPECT_GT(gs.fifoSlipSumTicks, 0.0);
}

TEST(Processor, GalsIsSlowerThanBase)
{
    SimRun base(false, "gcc", 8000);
    SimRun g(true, "gcc", 8000);
    EXPECT_GT(g.proc->runTicks(), base.proc->runTicks());
}

TEST(Processor, GlobalClockEnergyOnlyInBase)
{
    SimRun base(false, "gcc", 3000);
    SimRun g(true, "gcc", 3000);
    EXPECT_GT(base.proc->energy().unitEnergyNj(Unit::globalClock), 0.0);
    EXPECT_DOUBLE_EQ(g.proc->energy().unitEnergyNj(Unit::globalClock),
                     0.0);
}

TEST(Processor, FifoEnergyOnlyInGals)
{
    SimRun base(false, "gcc", 3000);
    SimRun g(true, "gcc", 3000);
    base.proc->finalizeEnergyNj();
    g.proc->finalizeEnergyNj();
    EXPECT_DOUBLE_EQ(base.proc->energy().unitEnergyNj(Unit::fifo), 0.0);
    EXPECT_GT(g.proc->energy().unitEnergyNj(Unit::fifo), 0.0);
}

TEST(Processor, EnergyPositiveEverywhereItShouldBe)
{
    SimRun r(false, "fpppp", 5000);
    r.proc->finalizeEnergyNj();
    const auto &ea = r.proc->energy();
    EXPECT_GT(ea.unitEnergyNj(Unit::icache), 0.0);
    EXPECT_GT(ea.unitEnergyNj(Unit::dcache), 0.0);
    EXPECT_GT(ea.unitEnergyNj(Unit::fpAlu), 0.0);
    EXPECT_GT(ea.unitEnergyNj(Unit::regfileFp), 0.0);
    EXPECT_GT(ea.totalNj(), 0.0);
}

TEST(Processor, CommitTimesMonotonic)
{
    // lastCommitTick only moves forward and ends at the run end.
    SimRun r(false, "li", 4000);
    const auto &cs = r.proc->decodeUnit().commitStats();
    EXPECT_LE(cs.lastCommitTick, r.proc->runTicks());
    EXPECT_GT(cs.lastCommitTick, 0u);
}

TEST(Processor, MispredictsRecoveredExactly)
{
    SimRun r(false, "compress", 8000);
    // Every resolved mispredict produced exactly one redirect.
    EXPECT_EQ(r.proc->fetch().redirects(),
              r.proc->decodeUnit().commitStats().committedMispredicts);
}

TEST(Processor, OccupanciesWithinCapacities)
{
    SimRun r(true, "swim", 5000);
    EXPECT_LE(r.proc->decodeUnit().avgRobOccupancy(),
              r.proc->config().core.robSize);
    EXPECT_LE(r.proc->intCluster().avgQueueOccupancy(),
              r.proc->config().core.intQueueSize);
    EXPECT_LE(r.proc->fpCluster().avgQueueOccupancy(),
              r.proc->config().core.fpQueueSize);
    EXPECT_LE(r.proc->memCluster().avgQueueOccupancy(),
              r.proc->config().core.memQueueSize);
}

TEST(Processor, LoadsAndStoresReachTheCaches)
{
    SimRun r(false, "vortex", 6000);
    EXPECT_GT(r.proc->caches().dl1().accesses(), 1000u);
    EXPECT_GT(r.proc->caches().il1().accesses(), 1000u);
}

TEST(Processor, BranchStatsConsistent)
{
    SimRun r(false, "gcc", 8000);
    const auto &cs = r.proc->decodeUnit().commitStats();
    EXPECT_GT(cs.committedBranches, 500u);
    EXPECT_LT(cs.committedMispredicts, cs.committedBranches);
}

TEST(Processor, ValidatesBadConfig)
{
    ProcessorConfig cfg;
    cfg.fifoCapacity = 1;
    EXPECT_DEATH(
        {
            EventQueue eq;
            Processor p(eq, cfg, findBenchmark("gcc"));
        },
        "FIFO capacity");
}

TEST(Processor, FixedPhaseReproducible)
{
    ProcessorConfig cfg;
    cfg.gals = true;
    cfg.randomPhase = false;
    EventQueue eq;
    Processor p(eq, cfg, findBenchmark("adpcm"));
    p.run(2000);
    for (unsigned i = 0; i < numDomains; ++i)
        EXPECT_EQ(p.domain(static_cast<DomainId>(i)).phase(), 0u);
}

TEST(Processor, StatsDumpContainsKeyMetrics)
{
    SimRun r(true, "gcc", 3000);
    std::ostringstream os;
    r.proc->dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("gals.committed_insts"), std::string::npos);
    EXPECT_NE(out.find("gals.avg_slip_cycles"), std::string::npos);
    EXPECT_NE(out.find("gals.energy.async_fifos"), std::string::npos);
    EXPECT_NE(out.find("gals.channels.ch.fetch2decode.pushes"),
              std::string::npos);
    EXPECT_NE(out.find("3000"), std::string::npos);
}

TEST(Processor, StatsDumpBasePrefix)
{
    SimRun r(false, "adpcm", 2000);
    std::ostringstream os;
    r.proc->dumpStats(os);
    EXPECT_NE(os.str().find("base.ipc"), std::string::npos);
    EXPECT_NE(os.str().find("base.energy.global_clock"),
              std::string::npos);
}
