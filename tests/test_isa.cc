/**
 * @file
 * Tests for the instruction model: class properties, latencies, queue
 * binding and DynInst helpers.
 */

#include <gtest/gtest.h>

#include "isa/dyn_inst.hh"

using namespace gals;

TEST(Isa, LatenciesMatchSimpleScalarDefaults)
{
    EXPECT_EQ(instLatency(InstClass::intAlu), 1u);
    EXPECT_EQ(instLatency(InstClass::intMult), 3u);
    EXPECT_EQ(instLatency(InstClass::fpAlu), 2u);
    EXPECT_EQ(instLatency(InstClass::fpMult), 4u);
    EXPECT_EQ(instLatency(InstClass::fpDiv), 12u);
    EXPECT_EQ(instLatency(InstClass::load), 1u);
}

TEST(Isa, DividersAreUnpipelined)
{
    EXPECT_FALSE(instPipelined(InstClass::intDiv));
    EXPECT_FALSE(instPipelined(InstClass::fpDiv));
    EXPECT_TRUE(instPipelined(InstClass::intMult));
    EXPECT_TRUE(instPipelined(InstClass::fpMult));
}

TEST(Isa, QueueBindingMatchesPaperDomains)
{
    // Branches resolve in the integer cluster (domain 3).
    EXPECT_EQ(instQueue(InstClass::condBranch),
              IssueQueueId::intQueue);
    EXPECT_EQ(instQueue(InstClass::intAlu), IssueQueueId::intQueue);
    EXPECT_EQ(instQueue(InstClass::fpMult), IssueQueueId::fpQueue);
    EXPECT_EQ(instQueue(InstClass::load), IssueQueueId::memQueue);
    EXPECT_EQ(instQueue(InstClass::store), IssueQueueId::memQueue);
}

TEST(Isa, Classification)
{
    EXPECT_TRUE(isBranchClass(InstClass::ret));
    EXPECT_TRUE(isBranchClass(InstClass::call));
    EXPECT_FALSE(isBranchClass(InstClass::load));
    EXPECT_TRUE(isMemClass(InstClass::store));
    EXPECT_TRUE(isFpClass(InstClass::fpDiv));
    EXPECT_FALSE(isFpClass(InstClass::intDiv));
}

TEST(Isa, DestWriting)
{
    EXPECT_TRUE(writesDest(InstClass::load));
    EXPECT_FALSE(writesDest(InstClass::store));
    EXPECT_FALSE(writesDest(InstClass::condBranch));
    EXPECT_TRUE(writesDest(InstClass::call)); // link register
}

TEST(Isa, RegisterClassSplit)
{
    EXPECT_FALSE(isFpReg(0));
    EXPECT_FALSE(isFpReg(31));
    EXPECT_TRUE(isFpReg(32));
    EXPECT_TRUE(isFpReg(63));
}

TEST(DynInst, SlipArithmetic)
{
    DynInst di;
    di.fetchTick = 1000;
    di.commitTick = 23500;
    EXPECT_EQ(di.slip(), 22500u);
}

TEST(DynInst, Helpers)
{
    DynInst di;
    di.cls = InstClass::load;
    di.dest = 5;
    EXPECT_TRUE(di.isLoad());
    EXPECT_TRUE(di.isMem());
    EXPECT_FALSE(di.isStore());
    EXPECT_TRUE(di.hasDest());
    di.cls = InstClass::condBranch;
    EXPECT_TRUE(di.isBranch());
}

TEST(DynInst, ToStringSmoke)
{
    DynInst di;
    di.seq = 42;
    di.cls = InstClass::condBranch;
    di.pc = 0x400123;
    di.mispredicted = true;
    di.actualTaken = true;
    const std::string s = di.toString();
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("MISP"), std::string::npos);
}

TEST(Isa, ClassNamesDistinct)
{
    std::set<std::string> names;
    for (unsigned i = 0; i < numInstClasses; ++i)
        names.insert(instClassName(static_cast<InstClass>(i)));
    EXPECT_EQ(names.size(), numInstClasses);
}
