/**
 * @file
 * Tests for the statistics package: scalars, averages, distributions,
 * formulas, group nesting, dump formatting and reset.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

using namespace gals::stats;

TEST(Stats, ScalarOps)
{
    StatGroup g("top");
    Scalar s(&g, "count", "a counter");
    ++s;
    s += 4.0;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s = 2.0;
    EXPECT_DOUBLE_EQ(s.value(), 2.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageMoments)
{
    StatGroup g("top");
    Average a(&g, "lat", "latency");
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, AverageEmptyIsZero)
{
    StatGroup g("top");
    Average a(&g, "lat", "");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
}

TEST(Stats, DistributionBuckets)
{
    StatGroup g("top");
    Distribution d(&g, "d", "", 0.0, 10.0, 5);
    d.sample(-1);       // underflow
    d.sample(0);        // bucket 0
    d.sample(1.9);      // bucket 0
    d.sample(5.0);      // bucket 2
    d.sample(10.0);     // overflow (hi-exclusive)
    d.sample(100, 3);   // overflow x3
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.bucket(0), 2u);
    EXPECT_EQ(d.bucket(2), 1u);
    EXPECT_EQ(d.overflow(), 4u);
    EXPECT_EQ(d.count(), 8u);
}

TEST(Stats, DistributionMean)
{
    StatGroup g("top");
    Distribution d(&g, "d", "", 0.0, 100.0, 10);
    d.sample(10);
    d.sample(30);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup g("top");
    Scalar a(&g, "a", "");
    Scalar b(&g, "b", "");
    Formula f(&g, "ratio", "a per b",
              [&a, &b] { return b.value() ? a.value() / b.value() : 0; });
    a = 10;
    b = 4;
    EXPECT_DOUBLE_EQ(f.value(), 2.5);
    b = 5;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(Stats, GroupNestingAndFullNames)
{
    StatGroup top("sim");
    StatGroup child("cpu", &top);
    Scalar s(&child, "ipc", "");
    EXPECT_EQ(s.fullName(), "sim.cpu.ipc");
}

TEST(Stats, DumpFormat)
{
    StatGroup top("sim");
    Scalar s(&top, "commits", "committed instructions");
    s = 123;
    std::ostringstream os;
    top.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sim.commits"), std::string::npos);
    EXPECT_NE(out.find("123"), std::string::npos);
    EXPECT_NE(out.find("# committed instructions"), std::string::npos);
}

TEST(Stats, DumpRecursesChildren)
{
    StatGroup top("sim");
    StatGroup c1("fetch", &top);
    StatGroup c2("commit", &top);
    Scalar s1(&c1, "count", "");
    Scalar s2(&c2, "count", "");
    s1 = 1;
    s2 = 2;
    std::ostringstream os;
    top.dump(os);
    EXPECT_NE(os.str().find("sim.fetch.count"), std::string::npos);
    EXPECT_NE(os.str().find("sim.commit.count"), std::string::npos);
}

TEST(Stats, ResetRecurses)
{
    StatGroup top("sim");
    StatGroup child("cpu", &top);
    Scalar s(&child, "n", "");
    Average a(&top, "m", "");
    s = 9;
    a.sample(5);
    top.resetStats();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Stats, FindByPath)
{
    StatGroup top("sim");
    StatGroup child("cpu", &top);
    Scalar s(&child, "ipc", "");
    EXPECT_EQ(top.find("cpu.ipc"), &s);
    EXPECT_EQ(top.find("cpu.nope"), nullptr);
    EXPECT_EQ(top.find("nope.ipc"), nullptr);
}

TEST(Stats, StatDestructionDeregisters)
{
    StatGroup top("sim");
    {
        Scalar s(&top, "temp", "");
        EXPECT_EQ(top.statList().size(), 1u);
    }
    EXPECT_TRUE(top.statList().empty());
    std::ostringstream os;
    top.dump(os); // must not touch the dead stat
    EXPECT_TRUE(os.str().empty());
}
