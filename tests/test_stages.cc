/**
 * @file
 * Stage-level behaviour tests, driven through small full-processor
 * runs: I-cache stalls throttle fetch, wrong-path instructions flow
 * and are squashed, dispatch stalls are counted, and store-commit
 * traffic reaches the D-cache.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"

using namespace gals;

namespace
{

Processor &
run(EventQueue &eq, std::unique_ptr<Processor> &holder,
    const std::string &bench, bool gals_mode, std::uint64_t insts)
{
    ProcessorConfig cfg;
    cfg.gals = gals_mode;
    holder = std::make_unique<Processor>(eq, cfg,
                                         findBenchmark(bench), 0);
    holder->run(insts);
    return *holder;
}

} // namespace

TEST(FetchStage, IcacheMissesStallFetch)
{
    // gcc has a large code footprint: its I-cache misses must show up
    // as fetch stall cycles.
    EventQueue eq;
    std::unique_ptr<Processor> p;
    Processor &proc = run(eq, p, "gcc", false, 8000);
    EXPECT_GT(proc.caches().il1().misses(), 0u);
    EXPECT_GT(proc.fetch().icacheStallCycles(), 0u);
}

TEST(FetchStage, TinyKernelBarelyMissesIcache)
{
    EventQueue eq;
    std::unique_ptr<Processor> p;
    Processor &proc = run(eq, p, "adpcm", false, 8000);
    EXPECT_LT(proc.caches().il1().missRate(), 0.01);
}

TEST(FetchStage, WrongPathFetchesAreBounded)
{
    EventQueue eq;
    std::unique_ptr<Processor> p;
    Processor &proc = run(eq, p, "compress", false, 8000);
    const auto wp = proc.fetch().wrongPathFetched();
    EXPECT_GT(wp, 0u);
    // Wrong-path work cannot exceed total fetches minus commits.
    EXPECT_EQ(proc.fetch().fetched() - wp, 8000u);
}

TEST(FetchStage, EveryWrongPathInstructionIsSquashedOrDropped)
{
    // After the run completes, nothing wrong-path may have committed.
    EventQueue eq;
    std::unique_ptr<Processor> p;
    Processor &proc = run(eq, p, "go", true, 8000);
    const auto &cs = proc.decodeUnit().commitStats();
    EXPECT_EQ(cs.committed, 8000u);
    // Branch accounting: every committed mispredict redirected once.
    EXPECT_EQ(proc.fetch().redirects(), cs.committedMispredicts);
}

TEST(DecodeStage, DispatchStallsAreObserved)
{
    // A memory-heavy benchmark backs up the mem queue and stalls
    // dispatch at least occasionally.
    EventQueue eq;
    std::unique_ptr<Processor> p;
    Processor &proc = run(eq, p, "swim", false, 8000);
    EXPECT_GT(proc.decodeUnit().decodeStallCycles(), 0u);
}

TEST(DecodeStage, DispatchCountCoversCommits)
{
    EventQueue eq;
    std::unique_ptr<Processor> p;
    Processor &proc = run(eq, p, "li", false, 6000);
    // Everything committed was dispatched (plus squashed extras).
    EXPECT_GE(proc.decodeUnit().dispatched(), 6000u);
}

TEST(MemCluster, CommittedStoresReachTheDcache)
{
    EventQueue eq;
    std::unique_ptr<Processor> p;
    Processor &proc = run(eq, p, "vortex", false, 6000);
    const auto &cs = proc.decodeUnit().commitStats();
    EXPECT_GT(cs.committedStores, 500u);
    // The D-cache sees nearly one access per committed load and store
    // (forwarded loads skip it; a few committed stores may still sit
    // in the store-commit channel when the run target is reached).
    EXPECT_GE(proc.caches().dl1().accesses(),
              0.9 * (cs.committedLoads + cs.committedStores));
}

TEST(ExecClusters, WorkSplitsByClass)
{
    EventQueue eq;
    std::unique_ptr<Processor> p;
    Processor &proc = run(eq, p, "fpppp", false, 8000);
    EXPECT_GT(proc.fpCluster().issued(), 2000u);  // fp-heavy
    EXPECT_GT(proc.memCluster().issued(), 2000u); // load/store-heavy
    EXPECT_GT(proc.intCluster().issued(), 100u);  // branches + int

    EventQueue eq2;
    std::unique_ptr<Processor> p2;
    Processor &gcc = run(eq2, p2, "gcc", false, 8000);
    EXPECT_LT(gcc.fpCluster().issued(), 100u); // virtually no fp
}

TEST(ExecClusters, CompletionsCoverIssues)
{
    EventQueue eq;
    std::unique_ptr<Processor> p;
    Processor &proc = run(eq, p, "epic", false, 6000);
    // At run end every non-squashed issued op has completed; squashed
    // ones may not have, so completed <= issued always.
    EXPECT_LE(proc.intCluster().completed(),
              proc.intCluster().issued());
    EXPECT_GT(proc.intCluster().completed(), 0u);
}

TEST(Slip, FifoSlipBoundedByTotalSlip)
{
    EventQueue eq;
    std::unique_ptr<Processor> p;
    Processor &proc = run(eq, p, "mpeg2", true, 6000);
    const auto &cs = proc.decodeUnit().commitStats();
    EXPECT_GE(cs.slipSumTicks, cs.fifoSlipSumTicks);
}
