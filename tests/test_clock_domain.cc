/**
 * @file
 * Tests for ClockDomain: edge timing, phases, cycle counting,
 * runtime retiming (the DVFS mechanism) and next-edge queries (the
 * primitive the asynchronous FIFO visibility rules are built on).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock_domain.hh"

using namespace gals;

TEST(ClockDomain, TicksAtPeriod)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1000);
    std::vector<Tick> edges;
    cd.addTicker([&] { edges.push_back(eq.now()); });
    cd.start();
    eq.runUntil(3500);
    EXPECT_EQ(edges, (std::vector<Tick>{0, 1000, 2000, 3000}));
}

TEST(ClockDomain, PhaseOffsetsFirstEdge)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1000, 250);
    std::vector<Tick> edges;
    cd.addTicker([&] { edges.push_back(eq.now()); });
    cd.start();
    eq.runUntil(2500);
    EXPECT_EQ(edges, (std::vector<Tick>{250, 1250, 2250}));
}

TEST(ClockDomain, CycleCounts)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 500);
    cd.start();
    eq.runUntil(2400);
    EXPECT_EQ(cd.cycle(), 5u); // edges at 0,500,1000,1500,2000
}

TEST(ClockDomain, TickerPriorityOrder)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1000);
    std::vector<int> order;
    cd.addTicker([&] { order.push_back(2); }, 50);
    cd.addTicker([&] { order.push_back(1); }, 10);
    cd.addTicker([&] { order.push_back(3); }, 90);
    cd.start();
    eq.runUntil(0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ClockDomain, EqualPriorityRegistrationOrder)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1000);
    std::vector<int> order;
    cd.addTicker([&] { order.push_back(1); });
    cd.addTicker([&] { order.push_back(2); });
    cd.start();
    eq.runUntil(0);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ClockDomain, StopHaltsEdges)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 100);
    int ticks = 0;
    cd.addTicker([&] { ++ticks; });
    cd.start();
    eq.runUntil(250);
    cd.stop();
    eq.runUntil(1000);
    EXPECT_EQ(ticks, 3);
    EXPECT_TRUE(eq.empty());
}

TEST(ClockDomain, RetimeTakesEffectNextEdge)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 100);
    std::vector<Tick> edges;
    cd.addTicker([&] {
        edges.push_back(eq.now());
        if (edges.size() == 2)
            cd.setPeriod(300);
    });
    cd.start();
    eq.runUntil(1000);
    ASSERT_GE(edges.size(), 4u);
    EXPECT_EQ(edges[0], 0u);
    EXPECT_EQ(edges[1], 100u);
    EXPECT_EQ(edges[2], 400u);
    EXPECT_EQ(edges[3], 700u);
}

TEST(ClockDomain, FrequencyMHz)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1000); // 1 ns
    EXPECT_DOUBLE_EQ(cd.frequencyMHz(), 1000.0);
    cd.setPeriod(2000);
    EXPECT_DOUBLE_EQ(cd.frequencyMHz(), 500.0);
}

TEST(ClockDomain, NextEdgeAtBeforeStart)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1000, 300);
    EXPECT_EQ(cd.nextEdgeAt(0), 300u);
    EXPECT_EQ(cd.nextEdgeAt(300), 300u);
    EXPECT_EQ(cd.nextEdgeAt(301), 1300u);
}

TEST(ClockDomain, NextEdgeAtWhileRunning)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1000);
    cd.start();
    eq.runUntil(2100); // edges at 0,1000,2000; next scheduled 3000
    EXPECT_EQ(cd.nextEdgeAt(2100), 3000u);
    EXPECT_EQ(cd.nextEdgeAt(3000), 3000u);
    EXPECT_EQ(cd.nextEdgeAt(3001), 4000u);
    EXPECT_EQ(cd.nextEdgeAt(7500), 8000u);
}

TEST(ClockDomain, NextEdgeAfterIsStrict)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1000);
    cd.start();
    eq.runUntil(500);
    EXPECT_EQ(cd.nextEdgeAfter(1000), 2000u);
    EXPECT_EQ(cd.nextEdgeAfter(999), 1000u);
}

TEST(ClockDomain, SetPhaseBeforeStart)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1000);
    cd.setPhase(420);
    std::vector<Tick> edges;
    cd.addTicker([&] { edges.push_back(eq.now()); });
    cd.start();
    eq.runUntil(1500);
    EXPECT_EQ(edges, (std::vector<Tick>{420, 1420}));
}

TEST(ClockDomain, VddStorage)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1000);
    EXPECT_DOUBLE_EQ(cd.vdd(), 1.5);
    cd.setVdd(1.1);
    EXPECT_DOUBLE_EQ(cd.vdd(), 1.1);
}

TEST(ClockDomain, TwoDomainsInterleave)
{
    EventQueue eq;
    ClockDomain a(eq, "a", 200);
    ClockDomain b(eq, "b", 300, 50);
    std::vector<std::pair<char, Tick>> log;
    a.addTicker([&] { log.emplace_back('a', eq.now()); });
    b.addTicker([&] { log.emplace_back('b', eq.now()); });
    a.start();
    b.start();
    eq.runUntil(650);
    const std::vector<std::pair<char, Tick>> expect = {
        {'a', 0},   {'b', 50},  {'a', 200}, {'b', 350},
        {'a', 400}, {'a', 600}, {'b', 650},
    };
    EXPECT_EQ(log, expect);
}

TEST(ClockDomain, LastEdgeTracksMostRecent)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 400);
    cd.start();
    eq.runUntil(900);
    EXPECT_EQ(cd.lastEdge(), 800u);
}

TEST(ClockDomain, RemoveTickerHeadMiddleTail)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 100);
    std::string log;
    auto *a = cd.addTicker([&] { log += 'a'; }, 10);
    auto *b = cd.addTicker([&] { log += 'b'; }, 20);
    auto *c = cd.addTicker([&] { log += 'c'; }, 30);
    auto *d = cd.addTicker([&] { log += 'd'; }, 40);
    cd.start();
    eq.runUntil(0);
    EXPECT_EQ(log, "abcd");

    log.clear();
    cd.removeTicker(b); // middle
    eq.runUntil(100);
    EXPECT_EQ(log, "acd");

    log.clear();
    cd.removeTicker(a); // head
    eq.runUntil(200);
    EXPECT_EQ(log, "cd");

    log.clear();
    cd.removeTicker(d); // tail
    eq.runUntil(300);
    EXPECT_EQ(log, "c");

    log.clear();
    cd.removeTicker(c); // sole remaining ticker
    eq.runUntil(400);
    EXPECT_EQ(log, "");

    // Registration after emptying the list works again.
    cd.addTicker([&] { log += 'e'; });
    eq.runUntil(500);
    EXPECT_EQ(log, "e");
}

TEST(ClockDomain, TickerPriorityAndRegistrationOrder)
{
    // Equal priorities keep registration order; lower priority runs
    // first regardless of registration order.
    EventQueue eq;
    ClockDomain cd(eq, "c", 100);
    std::string log;
    cd.addTicker([&] { log += '1'; }, 50);
    cd.addTicker([&] { log += '2'; }, 50);
    cd.addTicker([&] { log += '0'; }, 10);
    cd.addTicker([&] { log += '3'; }, 50);
    cd.addTicker([&] { log += '9'; }, 90);
    cd.start();
    eq.runUntil(0);
    EXPECT_EQ(log, "01239");
}

namespace
{

/** Typed ticker for the devirtualized registration path. */
struct CountingTicker : ClockDomain::Ticker
{
    std::string &log;
    char tag;

    CountingTicker(std::string &l, char t) : log(l), tag(t) {}
    void tick() override { log += tag; }
};

} // namespace

TEST(ClockDomain, TypedTickerRegistration)
{
    // A Ticker subclass registers by reference and interleaves with
    // function tickers under the same priority rules.
    EventQueue eq;
    ClockDomain cd(eq, "c", 100);
    std::string log;
    CountingTicker a(log, 'a');
    CountingTicker c(log, 'c');
    cd.addTicker(a, 10);
    cd.addTicker([&] { log += 'b'; }, 20);
    cd.addTicker(c, 30);
    cd.start();
    eq.runUntil(100);
    EXPECT_EQ(log, "abcabc");
}

TEST(ClockDomain, TypedTickerUnregistersOnDestruction)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 100);
    std::string log;
    CountingTicker a(log, 'a');
    cd.addTicker(a, 10);
    {
        CountingTicker b(log, 'b');
        cd.addTicker(b, 20);
        cd.start();
        eq.runUntil(0);
        EXPECT_EQ(log, "ab");
    }
    // b went out of scope while registered: it must have unlinked
    // itself, leaving the walk intact.
    log.clear();
    eq.runUntil(100);
    EXPECT_EQ(log, "a");
}

TEST(ClockDomain, RemoveSelfFromOwnCallback)
{
    // Regression: removeTicker() from within the running ticker's own
    // callback used to be documented UB; it is now a deferred unlink.
    EventQueue eq;
    ClockDomain cd(eq, "c", 100);
    std::string log;
    ClockDomain::Ticker *b = nullptr;
    cd.addTicker([&] { log += 'a'; }, 10);
    b = cd.addTicker(
        [&] {
            log += 'b';
            cd.removeTicker(b); // self-removal mid-tick
        },
        20);
    cd.addTicker([&] { log += 'c'; }, 30);
    cd.start();

    // Edge 0: b still runs (and asks to go), and the walk continues
    // to c afterwards.
    eq.runUntil(0);
    EXPECT_EQ(log, "abc");

    // Edge 1: b is gone.
    log.clear();
    eq.runUntil(100);
    EXPECT_EQ(log, "ac");
}

TEST(ClockDomain, RemoveSoleTickerFromOwnCallback)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 100);
    int ticks = 0;
    ClockDomain::Ticker *t = nullptr;
    t = cd.addTicker([&] {
        ++ticks;
        cd.removeTicker(t);
    });
    cd.start();
    eq.runUntil(300);
    EXPECT_EQ(ticks, 1);

    // The list is empty and usable again.
    cd.addTicker([&] { ticks += 10; });
    eq.runUntil(400);
    EXPECT_EQ(ticks, 11);
}

TEST(ClockDomain, RemoveNextTickerMidEdge)
{
    // Removing a *different*, not-yet-run ticker from a callback takes
    // effect immediately: the walk must not visit the freed node.
    EventQueue eq;
    ClockDomain cd(eq, "c", 100);
    std::string log;
    ClockDomain::Ticker *c = nullptr;
    cd.addTicker(
        [&] {
            log += 'a';
            if (c != nullptr) {
                // Victim is later in this same edge's walk.
                cd.removeTicker(c);
                c = nullptr;
            }
        },
        10);
    c = cd.addTicker([&] { log += 'c'; }, 20);
    cd.addTicker([&] { log += 'd'; }, 30);
    cd.start();
    eq.runUntil(0);
    EXPECT_EQ(log, "ad");

    log.clear();
    eq.runUntil(100);
    EXPECT_EQ(log, "ad"); // removal is permanent
}

TEST(ClockDomain, MidTickAddRunsSameEdgeWhenLater)
{
    // A ticker added during an edge at a priority after the current
    // one is visited on that same edge (successor is read after the
    // callback), matching the historical semantics.
    EventQueue eq;
    ClockDomain cd(eq, "c", 100);
    std::string log;
    bool added = false;
    cd.addTicker(
        [&] {
            log += 'a';
            if (!added) {
                added = true;
                cd.addTicker([&] { log += 'n'; }, 50);
            }
        },
        10);
    cd.addTicker([&] { log += 'z'; }, 90);
    cd.start();
    eq.runUntil(0);
    EXPECT_EQ(log, "anz");

    log.clear();
    eq.runUntil(100);
    EXPECT_EQ(log, "anz");
}
