/**
 * @file
 * Tests for the branch prediction substrate: 2-bit counter learning,
 * gshare pattern learning, the combining chooser, BTB tagging/LRU, the
 * return address stack, and the BranchUnit front-end composition.
 */

#include <gtest/gtest.h>

#include "bpred/bpred.hh"

using namespace gals;

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor p(64);
    const std::uint64_t pc = 0x400100;
    for (int i = 0; i < 4; ++i)
        p.update(pc, false);
    EXPECT_FALSE(p.predict(pc));
    for (int i = 0; i < 4; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
}

TEST(Bimodal, HysteresisSurvivesOneFlip)
{
    BimodalPredictor p(64);
    const std::uint64_t pc = 0x400104;
    for (int i = 0; i < 4; ++i)
        p.update(pc, true);
    p.update(pc, false); // single anomaly
    EXPECT_TRUE(p.predict(pc));
}

TEST(Bimodal, DistinctPcsIndependent)
{
    BimodalPredictor p(64);
    for (int i = 0; i < 4; ++i) {
        p.update(0x1000, true);
        p.update(0x1004, false);
    }
    EXPECT_TRUE(p.predict(0x1000));
    EXPECT_FALSE(p.predict(0x1004));
}

TEST(Gshare, LearnsAlternatingPattern)
{
    // A strict T/N alternation is invisible to bimodal but trivial for
    // global history.
    GsharePredictor p(4096, 12);
    const std::uint64_t pc = 0x400200;
    bool taken = false;
    for (int i = 0; i < 200; ++i) {
        taken = !taken;
        p.update(pc, taken);
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        taken = !taken;
        if (p.predict(pc) == taken)
            ++correct;
        p.update(pc, taken);
    }
    EXPECT_GT(correct, 95);
}

TEST(Gshare, HistoryAdvances)
{
    GsharePredictor p(1024, 8);
    const auto h0 = p.history();
    p.update(0x100, true);
    EXPECT_EQ(p.history(), ((h0 << 1) | 1u) & 0xffu);
}

TEST(Combining, BeatsComponentsOnMixedWorkload)
{
    // Branch A is biased (bimodal-friendly), branch B alternates
    // (gshare-friendly); the chooser should route each accordingly.
    CombiningPredictor p;
    bool b_taken = false;
    for (int i = 0; i < 2000; ++i) {
        p.update(0x1000, true);
        b_taken = !b_taken;
        p.update(0x2000, b_taken);
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        // Predict-then-train per branch, preserving the global history
        // order the tables were trained with.
        if (p.predict(0x1000))
            ++correct;
        p.update(0x1000, true);
        b_taken = !b_taken;
        if (p.predict(0x2000) == b_taken)
            ++correct;
        p.update(0x2000, b_taken);
    }
    // The biased branch must be near-perfect; the alternating branch
    // must be clearly better than a 50/50 coin (the interleaved global
    // history dilutes gshare, so do not demand perfection).
    EXPECT_GT(correct, 160); // out of 200
}

TEST(Btb, MissThenHitAfterInsert)
{
    Btb btb(64, 2);
    std::uint64_t tgt = 0;
    EXPECT_FALSE(btb.lookup(0x4000, tgt));
    btb.insert(0x4000, 0x9000);
    ASSERT_TRUE(btb.lookup(0x4000, tgt));
    EXPECT_EQ(tgt, 0x9000u);
}

TEST(Btb, RefreshUpdatesTarget)
{
    Btb btb(64, 2);
    btb.insert(0x4000, 0x9000);
    btb.insert(0x4000, 0xa000);
    std::uint64_t tgt = 0;
    ASSERT_TRUE(btb.lookup(0x4000, tgt));
    EXPECT_EQ(tgt, 0xa000u);
}

TEST(Btb, LruReplacementWithinSet)
{
    Btb btb(16, 2);
    // Three pcs mapping to the same set (stride 16 insts * 4B = 64B).
    const std::uint64_t a = 0x1000, b = a + 64, c = a + 128;
    btb.insert(a, 1);
    btb.insert(b, 2);
    std::uint64_t t = 0;
    btb.lookup(a, t); // a is MRU
    btb.insert(c, 3); // evicts b
    EXPECT_TRUE(btb.lookup(a, t));
    EXPECT_FALSE(btb.lookup(b, t));
    EXPECT_TRUE(btb.lookup(c, t));
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, EmptyPopsZero)
{
    ReturnAddressStack ras(8);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.depth(), 0u);
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(4);
    for (std::uint64_t i = 1; i <= 6; ++i)
        ras.push(i * 0x10);
    // The four newest survive: 0x60, 0x50, 0x40, 0x30.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.depth(), 0u);
}

TEST(BranchUnit, CondPredictionNeedsBtbForTaken)
{
    BranchUnit bu;
    // Train direction taken but give no BTB entry: front end cannot
    // redirect without a target, so it predicts not-taken.
    for (int i = 0; i < 4; ++i)
        bu.update(0x5000, InstClass::condBranch, true, 0x6000);
    // update() inserted the target into the BTB, so now:
    const auto p = bu.predict(0x5000, InstClass::condBranch);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 0x6000u);
}

TEST(BranchUnit, UncondMissesBtbFirstTime)
{
    BranchUnit bu;
    const auto p = bu.predict(0x7000, InstClass::uncondBranch);
    EXPECT_FALSE(p.btbHit);
    EXPECT_FALSE(p.taken);
    bu.update(0x7000, InstClass::uncondBranch, true, 0x8000);
    const auto p2 = bu.predict(0x7000, InstClass::uncondBranch);
    EXPECT_TRUE(p2.taken);
    EXPECT_EQ(p2.target, 0x8000u);
}

TEST(BranchUnit, CallPushesRasRetPops)
{
    BranchUnit bu;
    bu.update(0x9000, InstClass::call, true, 0xa000);
    const auto pc = bu.predict(0x9000, InstClass::call);
    EXPECT_TRUE(pc.taken);
    const auto pr = bu.predict(0xa010, InstClass::ret);
    EXPECT_TRUE(pr.taken);
    EXPECT_EQ(pr.target, 0x9004u); // return to call pc + 4
}

TEST(BranchUnit, WrongPathPredictionLeavesRasIntact)
{
    BranchUnit bu;
    bu.update(0x9000, InstClass::call, true, 0xa000);
    bu.predict(0x9000, InstClass::call); // pushes 0x9004
    // Wrong-path call and return must not disturb the stack.
    bu.predict(0xb000, InstClass::call, /*useRas=*/false);
    bu.predict(0xb010, InstClass::ret, /*useRas=*/false);
    const auto pr = bu.predict(0xa020, InstClass::ret);
    EXPECT_EQ(pr.target, 0x9004u);
}

TEST(BranchUnit, DirAccuracyCounters)
{
    BranchUnit bu;
    for (int i = 0; i < 10; ++i)
        bu.update(0x100, InstClass::condBranch, true, 0x200);
    EXPECT_GT(bu.dirCorrect(), 6u);
    EXPECT_EQ(bu.dirCorrect() + bu.dirWrong(), 10u);
}

TEST(BranchUnit, KindSelection)
{
    BranchUnit::Config cfg;
    cfg.kind = "bimodal";
    BranchUnit b1(cfg);
    cfg.kind = "gshare";
    BranchUnit b2(cfg);
    cfg.kind = "combining";
    BranchUnit b3(cfg);
    // All three must predict without crashing.
    b1.predict(0x100, InstClass::condBranch);
    b2.predict(0x100, InstClass::condBranch);
    b3.predict(0x100, InstClass::condBranch);
    EXPECT_GT(b3.sizeBits(), b1.sizeBits());
}
