/**
 * @file
 * Tests for the ExperimentEngine / ScenarioRegistry layer: the
 * parallel executor must be element-wise identical to the serial
 * batch (every run is an independent simulation), the registry must
 * carry every former bench driver, the phaseSeed sentinel must follow
 * the workload seed, and the ratio-average helper must be a true
 * geometric mean.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"
#include "runner/engine.hh"
#include "runner/merge.hh"
#include "runner/reporter.hh"
#include "runner/scenario.hh"
#include "runner/trajectory.hh"

using namespace gals;
using namespace gals::runner;

namespace
{

constexpr std::uint64_t testInsts = 3000;

/** Exact comparison: serial and parallel execute identical code on
 *  identical inputs, so every field must match bit for bit. */
void
expectIdentical(const RunResults &a, const RunResults &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.gals, b.gals);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.fetched, b.fetched);
    EXPECT_EQ(a.wrongPathFetched, b.wrongPathFetched);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.timeSec, b.timeSec);
    EXPECT_EQ(a.ipcNominal, b.ipcNominal);
    EXPECT_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.avgPowerW, b.avgPowerW);
    EXPECT_EQ(a.unitEnergyNj, b.unitEnergyNj);
    EXPECT_EQ(a.fifoEvents, b.fifoEvents);
    EXPECT_EQ(a.avgSlipCycles, b.avgSlipCycles);
    EXPECT_EQ(a.avgFifoSlipCycles, b.avgFifoSlipCycles);
    EXPECT_EQ(a.misspecFraction, b.misspecFraction);
    EXPECT_EQ(a.mispredictsPerKCommitted, b.mispredictsPerKCommitted);
    EXPECT_EQ(a.dirAccuracy, b.dirAccuracy);
    EXPECT_EQ(a.avgRobOcc, b.avgRobOcc);
    EXPECT_EQ(a.avgIntRenames, b.avgIntRenames);
    EXPECT_EQ(a.avgFpRenames, b.avgFpRenames);
    EXPECT_EQ(a.intIQOcc, b.intIQOcc);
    EXPECT_EQ(a.fpIQOcc, b.fpIQOcc);
    EXPECT_EQ(a.memIQOcc, b.memIQOcc);
    EXPECT_EQ(a.il1MissRate, b.il1MissRate);
    EXPECT_EQ(a.dl1MissRate, b.dl1MissRate);
    EXPECT_EQ(a.l2MissRate, b.l2MissRate);
}

SweepOptions
smallSweep()
{
    SweepOptions opts;
    opts.instructions = testInsts;
    opts.benchmarks = {"gcc", "ijpeg", "fpppp", "adpcm"};
    return opts;
}

ScenarioRegistry &
registry()
{
    static ScenarioRegistry reg = [] {
        ScenarioRegistry r;
        bench::registerAllScenarios(r);
        return r;
    }();
    return reg;
}

} // namespace

TEST(ScenarioRegistry, ListsEveryFormerBenchDriver)
{
    EXPECT_GE(registry().size(), 12u);
    for (const char *name :
         {"fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
          "fig11", "fig12", "fig13", "table1", "phase",
          "ablation-fifo", "ablation-dvfs", "quickstart", "suite",
          "dvfs-explorer"}) {
        const Scenario *s = registry().find(name);
        ASSERT_NE(s, nullptr) << "missing scenario " << name;
        EXPECT_FALSE(s->description.empty());
        EXPECT_TRUE(s->makeRuns != nullptr);
        EXPECT_TRUE(s->reduce != nullptr);
    }
}

TEST(ScenarioRegistry, FindUnknownReturnsNull)
{
    EXPECT_EQ(registry().find("nonsense"), nullptr);
}

TEST(ScenarioRegistry, ScenariosExpandToRuns)
{
    const SweepOptions opts = smallSweep();
    // Every scenario except the literature table produces runs.
    for (const Scenario &s : registry().all()) {
        const auto runs = s.makeRuns(opts);
        if (s.name == "table1")
            EXPECT_TRUE(runs.empty());
        else
            EXPECT_FALSE(runs.empty()) << s.name;
    }
}

TEST(ExperimentEngine, ParallelMatchesSerial)
{
    const SweepOptions opts = smallSweep();
    const auto runs = registry().find("fig05")->makeRuns(opts);

    const auto serial = ExperimentEngine(1).run(runs);
    const auto parallel = ExperimentEngine(8).run(runs);

    ASSERT_EQ(serial.size(), runs.size());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
}

TEST(ExperimentEngine, ParallelReportsAreByteIdentical)
{
    const SweepOptions opts = smallSweep();
    const auto runs = registry().find("fig09")->makeRuns(opts);

    std::ostringstream serialJson, parallelJson;
    writeJsonLines(serialJson, "fig09", runs,
                   ExperimentEngine(1).run(runs));
    writeJsonLines(parallelJson, "fig09", runs,
                   ExperimentEngine(8).run(runs));
    EXPECT_EQ(serialJson.str(), parallelJson.str());
    EXPECT_FALSE(serialJson.str().empty());
}

TEST(ExperimentEngine, MatchesRunMany)
{
    SweepOptions opts = smallSweep();
    opts.benchmarks = {"gcc", "adpcm"};
    const auto runs = registry().find("fig05")->makeRuns(opts);

    const auto batch = runMany(runs);
    const auto engine = ExperimentEngine(0).run(runs); // hardware jobs
    ASSERT_EQ(batch.size(), engine.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        expectIdentical(batch[i], engine[i]);
}

TEST(ExperimentEngine, ZeroJobsPicksHardwareConcurrency)
{
    EXPECT_GE(ExperimentEngine(0).jobs(), 1u);
    EXPECT_EQ(ExperimentEngine(3).jobs(), 3u);
}

TEST(WorkStealing, HeterogeneousTasksRunExactlyOnceIntoTheirSlots)
{
    // Randomized heterogeneous "run lengths": task i busy-waits a
    // pseudo-random few-hundred-microsecond interval, so with a
    // static division one worker would finish long after the rest
    // and the thieves must actually steal. The *output* contract is
    // what matters: every index executed exactly once, results in
    // per-index slots identical to the serial order.
    std::mt19937 rng(0xC0FFEE);
    for (unsigned jobs : {2u, 3u, 8u}) {
        const std::size_t n = 64;
        std::vector<unsigned> durationUs(n);
        for (unsigned &d : durationUs)
            d = rng() % 300;

        std::vector<std::uint64_t> results(n, 0);
        std::vector<std::atomic<unsigned>> hits(n);
        for (auto &h : hits)
            h = 0;

        ExperimentEngine(jobs).runIndexed(n, [&](std::size_t i) {
            const auto until =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(durationUs[i]);
            while (std::chrono::steady_clock::now() < until) {
            }
            results[i] = 1000 + i * i;
            ++hits[i];
        });

        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(hits[i].load(), 1u)
                << "index " << i << " at jobs " << jobs;
            EXPECT_EQ(results[i], 1000 + i * i);
        }
    }
}

TEST(WorkStealing, DegenerateCounts)
{
    std::atomic<unsigned> calls{0};
    ExperimentEngine(8).runIndexed(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0u);
    ExperimentEngine(8).runIndexed(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1u);
    // More workers than tasks: the pool clamps, every task still
    // runs once.
    std::vector<std::atomic<unsigned>> hits(3);
    for (auto &h : hits)
        h = 0;
    ExperimentEngine(16).runIndexed(3,
                                    [&](std::size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1u);
}

TEST(WorkStealing, ShardedGridMatchesUnshardedSlice)
{
    // End to end through real simulations: running a shard slice
    // must give exactly the results the same indices get in the
    // full-grid run, for any job count.
    SweepOptions opts = smallSweep();
    opts.benchmarks = {"gcc", "adpcm"};
    const auto runs = registry().find("fig05")->makeRuns(opts);
    const auto full = ExperimentEngine(1).run(runs);

    const ShardSpec shard{2, 3};
    const auto indices = shardRunIndices(runs.size(), shard);
    const auto slice = selectRuns(runs, indices);
    const auto shardResults = ExperimentEngine(4).run(slice);

    ASSERT_EQ(shardResults.size(), indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k)
        expectIdentical(shardResults[k], full[indices[k]]);
}

namespace
{

/** Archive a small sweep (trajectory + manifest) the way galsbench
 *  does, into @p dir; returns the manifest path. */
std::string
archiveSweep(const std::string &dir, const std::string &trajName)
{
    SweepOptions opts;
    opts.instructions = 1500;
    opts.benchmarks = {"gcc"};
    opts.explicitSeeds = {0, 1};

    const Scenario *scenario = registry().find("quickstart");
    std::size_t gridSize = 0;
    const auto runs = expandReplicatedRuns(*scenario, opts, &gridSize);
    const auto results = ExperimentEngine(2).run(runs);

    TrajectorySink sink(dir + trajName);
    sink.append(scenario->name, runs, results);
    sink.close();

    const std::string manifestPath = dir + trajName + ".manifest";
    writeManifestFile(manifestPath, opts, "calendar", trajName,
                      {{scenario->name, gridSize, 2,
                        runConfigHash(runs)}});
    return manifestPath;
}

} // namespace

TEST(Verify, ReplayOfArchivedManifestIsByteIdentical)
{
    const std::string dir = ::testing::TempDir();
    const std::string manifest =
        archiveSweep(dir, "verify_ok.jsonl");

    std::ostringstream diag;
    EXPECT_TRUE(verifyManifest(registry(), ExperimentEngine(2),
                               manifest, diag))
        << diag.str();
    EXPECT_NE(diag.str().find("OK"), std::string::npos);
}

TEST(Verify, TamperedTrajectoryFailsWithRecordDiff)
{
    const std::string dir = ::testing::TempDir();
    const std::string manifest =
        archiveSweep(dir, "verify_tamper.jsonl");

    // Flip one digit of one record.
    const std::string traj = dir + "verify_tamper.jsonl";
    std::string text;
    {
        std::ifstream is(traj, std::ios::binary);
        std::ostringstream buf;
        buf << is.rdbuf();
        text = buf.str();
    }
    const std::size_t pos = text.find("\"committed\":");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 12] = text[pos + 12] == '9' ? '8' : '9';
    {
        std::ofstream os(traj, std::ios::binary | std::ios::trunc);
        os << text;
    }

    std::ostringstream diag;
    EXPECT_FALSE(verifyManifest(registry(), ExperimentEngine(2),
                                manifest, diag));
    EXPECT_NE(diag.str().find("FAILED"), std::string::npos)
        << diag.str();
    EXPECT_NE(diag.str().find("record "), std::string::npos);
    EXPECT_NE(diag.str().find("1 differing line"),
              std::string::npos)
        << diag.str();
}

TEST(Verify, ConfigDriftFailsBeforeSimulating)
{
    const std::string dir = ::testing::TempDir();
    const std::string manifest =
        archiveSweep(dir, "verify_drift.jsonl");

    // Corrupt the archived config hash: the replay must refuse
    // without comparing trajectories.
    std::string text;
    {
        std::ifstream is(manifest, std::ios::binary);
        std::ostringstream buf;
        buf << is.rdbuf();
        text = buf.str();
    }
    const std::size_t pos = text.find("\"config_hash\": \"");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t digit = pos + std::strlen("\"config_hash\": \"");
    text[digit] = text[digit] == 'f' ? '0' : 'f';
    {
        std::ofstream os(manifest, std::ios::binary | std::ios::trunc);
        os << text;
    }

    std::ostringstream diag;
    EXPECT_FALSE(verifyManifest(registry(), ExperimentEngine(2),
                                manifest, diag));
    EXPECT_NE(diag.str().find("config hash mismatch"),
              std::string::npos)
        << diag.str();
}

TEST(Verify, MissingTrajectoryOrUnknownScenarioFailCleanly)
{
    const std::string dir = ::testing::TempDir();

    // Manifest whose trajectory file does not exist.
    SweepOptions opts;
    opts.instructions = 1500;
    const std::string noTraj = dir + "verify_notraj.manifest";
    writeManifestFile(noTraj, opts, "calendar", "does_not_exist.jsonl",
                      {{"quickstart", 2, 1, 0}});
    std::ostringstream diag1;
    EXPECT_FALSE(verifyManifest(registry(), ExperimentEngine(1),
                                noTraj, diag1));

    // Manifest naming a scenario this binary does not register.
    const std::string traj = dir + "verify_unknown.jsonl";
    {
        TrajectorySink sink(traj);
        sink.close();
    }
    const std::string unknown = dir + "verify_unknown.manifest";
    writeManifestFile(unknown, opts, "calendar",
                      "verify_unknown.jsonl",
                      {{"no-such-scenario", 2, 1, 0}});
    std::ostringstream diag2;
    EXPECT_FALSE(verifyManifest(registry(), ExperimentEngine(1),
                                unknown, diag2));
    EXPECT_NE(diag2.str().find("unknown scenario"),
              std::string::npos)
        << diag2.str();
}

TEST(PairHelpers, AppendPairConvention)
{
    std::vector<RunConfig> runs;
    appendPair(runs, "gcc", 1000, DvfsSetting(), 7);
    appendPair(runs, "ijpeg", 1000);
    ASSERT_EQ(runs.size(), 4u);
    EXPECT_FALSE(runs[0].gals);
    EXPECT_TRUE(runs[1].gals);
    EXPECT_EQ(runs[0].benchmark, "gcc");
    EXPECT_EQ(runs[1].benchmark, "gcc");
    EXPECT_EQ(runs[0].seed, 7u);
    EXPECT_EQ(runs[2].benchmark, "ijpeg");
    EXPECT_TRUE(runs[3].gals);
}

TEST(PairHelpers, PairAtMatchesRunPair)
{
    std::vector<RunConfig> runs;
    appendPair(runs, "gcc", testInsts);
    const auto results = runMany(runs);
    const PairResults viaEngine = pairAt(results, 0);
    const PairResults direct = runPair("gcc", testInsts);
    expectIdentical(viaEngine.base, direct.base);
    expectIdentical(viaEngine.galsRun, direct.galsRun);
}

TEST(PhaseSeed, SentinelFollowsWorkloadSeed)
{
    RunConfig cfg;
    cfg.seed = 42;
    EXPECT_EQ(cfg.phaseSeed, phaseSeedFollowsWorkload);
    EXPECT_EQ(effectivePhaseSeed(cfg), 42u);

    cfg.phaseSeed = 7;
    EXPECT_EQ(effectivePhaseSeed(cfg), 7u);

    cfg.phaseSeed = phaseSeedFollowsWorkload;
    cfg.seed = 0;
    EXPECT_EQ(effectivePhaseSeed(cfg), 0u);
}

TEST(PhaseSeed, DefaultRunMatchesExplicitWorkloadSeed)
{
    RunConfig implicit;
    implicit.benchmark = "gcc";
    implicit.instructions = testInsts;
    implicit.gals = true;
    implicit.seed = 11;

    RunConfig explicitSeed = implicit;
    explicitSeed.phaseSeed = 11;

    expectIdentical(runOne(implicit), runOne(explicitSeed));
}

TEST(PhaseSeed, DifferentPhaseSeedChangesGalsTiming)
{
    RunConfig a;
    a.benchmark = "gcc";
    a.instructions = testInsts;
    a.gals = true;

    RunConfig b = a;
    b.phaseSeed = 0x1234;

    // Same workload, different clock phases: committed count equal,
    // timing (ticks) differing — the section 5.1 sensitivity.
    const RunResults ra = runOne(a);
    const RunResults rb = runOne(b);
    EXPECT_EQ(ra.committed, rb.committed);
    EXPECT_NE(ra.ticks, rb.ticks);
}

TEST(MeanTracker, IsGeometric)
{
    bench::MeanTracker m;
    m.add(2.0);
    m.add(0.5);
    EXPECT_NEAR(m.mean(), 1.0, 1e-12); // arithmetic would say 1.25

    bench::MeanTracker m2;
    m2.add(1.0);
    m2.add(4.0);
    EXPECT_NEAR(m2.mean(), 2.0, 1e-12); // arithmetic would say 2.5

    bench::MeanTracker empty;
    EXPECT_EQ(empty.mean(), 0.0);
}

TEST(Reporters, CsvHasHeaderAndOneRowPerRun)
{
    SweepOptions opts = smallSweep();
    opts.benchmarks = {"gcc"};
    const auto runs = registry().find("quickstart")->makeRuns(opts);
    const auto results = runMany(runs);

    std::ostringstream csv;
    writeCsv(csv, "quickstart", runs, results);
    std::istringstream lines(csv.str());
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line))
        ++count;
    EXPECT_EQ(count, 1 + results.size());
    EXPECT_EQ(csv.str().rfind("scenario,index,benchmark", 0), 0u);
}
