/**
 * @file
 * Calendar-vs-heap EventQueue engine equivalence.
 *
 * The two engines must pop element-wise identical sequences — same
 * event, same time — for any schedule/deschedule/reschedule/service
 * history, including same-tick (priority, seq) ties and runUntil
 * boundary hits. These tests drive both engines with identical
 * deterministic churn and compare the full pop logs, and pin the
 * calendar-specific machinery (dynamic resize, engine selection).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/channel.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace gals;

namespace
{

/** One (event id, fire time) pop record. */
using PopLog = std::vector<std::pair<int, Tick>>;

/**
 * A queue plus N recording events and a deterministic churn driver.
 * Two harnesses built from the same seed apply bit-identical op
 * streams; any behavioural divergence between engines shows up as a
 * pop-log mismatch.
 */
struct ChurnHarness
{
    EventQueue eq;
    Rng rng;
    PopLog log;
    std::vector<std::unique_ptr<CallbackEvent>> events;

    ChurnHarness(QueueEngine engine, int nEvents, std::uint64_t seed)
        : eq("churn", engine), rng(seed)
    {
        for (int i = 0; i < nEvents; ++i) {
            // Three priority classes create same-tick priority ties;
            // same-priority same-tick schedules fall back to seq.
            events.push_back(std::make_unique<CallbackEvent>(
                [this, i] { log.emplace_back(i, eq.now()); },
                "ev" + std::to_string(i), (i % 3) * 40));
        }
    }

    void
    churn(int ops)
    {
        for (int k = 0; k < ops; ++k) {
            auto &ev = *events[rng.range(0, events.size() - 1)];
            switch (rng.range(0, 9)) {
              case 0:
              case 1:
              case 2: // schedule/reschedule nearby (often same tick)
                eq.reschedule(&ev, eq.now() + rng.range(0, 3) * 10);
                break;
              case 3:
              case 4: // schedule/reschedule far out (bucket laps)
                eq.reschedule(&ev,
                              eq.now() + rng.range(1, 500) * 1000);
                break;
              case 5: // cancel
                if (ev.scheduled())
                    eq.deschedule(&ev);
                break;
              case 6:
              case 7: // service a few
                eq.serviceOne();
                break;
              default: // run to a boundary events can land on exactly
                eq.runUntil(eq.now() + rng.range(0, 40) * 10);
                break;
            }
        }
        eq.runAll();
    }
};

PopLog
churnLog(QueueEngine engine, int nEvents, int ops, std::uint64_t seed)
{
    ChurnHarness h(engine, nEvents, seed);
    h.churn(ops);
    return h.log;
}

} // namespace

TEST(EngineEquivalence, RandomChurnPopOrderIdentical)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        const PopLog cal =
            churnLog(QueueEngine::calendar, 32, 4000, seed);
        const PopLog heap = churnLog(QueueEngine::heap, 32, 4000, seed);
        ASSERT_FALSE(cal.empty());
        EXPECT_EQ(cal, heap) << "seed " << seed;
    }
}

TEST(EngineEquivalence, SameTickTieBreaksIdentical)
{
    // Everything lands on one tick: order must be (priority, seq) on
    // both engines.
    for (QueueEngine engine :
         {QueueEngine::calendar, QueueEngine::heap}) {
        EventQueue eq("ties", engine);
        PopLog log;
        std::vector<std::unique_ptr<CallbackEvent>> evs;
        for (int i = 0; i < 16; ++i)
            evs.push_back(std::make_unique<CallbackEvent>(
                [&log, &eq, i] { log.emplace_back(i, eq.now()); },
                "t" + std::to_string(i), (15 - i) % 4));
        for (auto &ev : evs)
            eq.schedule(ev.get(), 777);
        eq.runAll();

        PopLog expect;
        for (int pri = 0; pri < 4; ++pri)
            for (int i = 0; i < 16; ++i)
                if ((15 - i) % 4 == pri)
                    expect.emplace_back(i, 777);
        EXPECT_EQ(log, expect) << queueEngineName(engine);
    }
}

TEST(EngineEquivalence, PeriodicClockTrafficIdentical)
{
    // GALS-shaped traffic: five mismatched periodic clocks plus churny
    // one-shots, compared across engines over many edges.
    auto run = [](QueueEngine engine) {
        EventQueue eq("clocks", engine);
        PopLog log;
        std::vector<std::unique_ptr<PeriodicEvent>> clocks;
        const Tick periods[] = {1000, 1300, 2500, 997, 1111};
        for (int i = 0; i < 5; ++i)
            clocks.push_back(std::make_unique<PeriodicEvent>(
                [&log, &eq, i] { log.emplace_back(i, eq.now()); },
                periods[i], "clk" + std::to_string(i)));
        for (int i = 0; i < 5; ++i)
            eq.schedule(clocks[i].get(), 100 * i);
        CallbackEvent oneShot([&log, &eq] { log.emplace_back(99,
                                                             eq.now()); },
                              "shot", Event::statsPri);
        for (Tick t = 0; t < 400000; t += 50000) {
            eq.runUntil(t + 49999);
            eq.reschedule(&oneShot, eq.now() + 500);
        }
        eq.runUntil(500000);
        for (auto &c : clocks)
            c->cancelRepeat();
        eq.runAll();
        return log;
    };
    const PopLog cal = run(QueueEngine::calendar);
    const PopLog heap = run(QueueEngine::heap);
    ASSERT_GT(cal.size(), 1000u);
    EXPECT_EQ(cal, heap);
}

TEST(EngineEquivalence, SameTickBatchDrainIdentical)
{
    // Edge batching: five equal-period, equal-phase periodic events at
    // the clock-edge priority all tie at every edge, so the calendar
    // services each edge's run in one pop. Order within a batch must
    // remain (priority, seq) — identical to the heap — and events
    // scheduled *during* a batch at the same (when, priority) must be
    // drained by that same batch, in insertion order.
    auto run = [](QueueEngine engine) {
        EventQueue eq("batch", engine);
        PopLog log;
        std::vector<std::unique_ptr<PeriodicEvent>> clocks;
        std::vector<std::unique_ptr<CallbackEvent>> echoes;
        for (int i = 0; i < 5; ++i) {
            echoes.push_back(std::make_unique<CallbackEvent>(
                [&log, &eq, i] { log.emplace_back(100 + i, eq.now()); },
                "echo" + std::to_string(i), Event::clockEdgePri));
            CallbackEvent *echo = echoes.back().get();
            clocks.push_back(std::make_unique<PeriodicEvent>(
                [&log, &eq, i, echo] {
                    log.emplace_back(i, eq.now());
                    // Same (when, priority) as the batch being
                    // drained: must fire within this batch, after
                    // the pending tie (larger seq).
                    if (i == 2 && !echo->scheduled())
                        eq.schedule(echo, eq.now());
                },
                1000, "clk" + std::to_string(i), Event::clockEdgePri));
        }
        for (auto &c : clocks)
            eq.schedule(c.get(), 0);
        eq.runUntil(20000);
        for (auto &c : clocks)
            c->cancelRepeat();
        eq.runAll();
        return log;
    };

    const PopLog cal = run(QueueEngine::calendar);
    const PopLog heap = run(QueueEngine::heap);
    ASSERT_GT(cal.size(), 100u);
    EXPECT_EQ(cal, heap);

    // Shape check on one edge: the five clocks in registration order,
    // then the echo scheduled mid-batch.
    PopLog first(cal.begin(), cal.begin() + 6);
    const PopLog expect = {{0, 0}, {1, 0}, {2, 0},
                           {3, 0}, {4, 0}, {102, 0}};
    EXPECT_EQ(first, expect);
}

TEST(EngineEquivalence, MidTickTickerChurnIdentical)
{
    // Mid-tick add/remove of tickers on clock domains driven by both
    // engines: the observable tick log must be engine-independent.
    auto run = [](QueueEngine engine) {
        EventQueue eq("tickers", engine);
        ClockDomain a(eq, "a", 700);
        ClockDomain b(eq, "b", 1100, 300);
        std::vector<std::pair<int, Tick>> log;
        ClockDomain::Ticker *victim = nullptr;
        int edges = 0;
        a.addTicker([&] {
            log.emplace_back(1, eq.now());
            ++edges;
            if (edges == 3)
                victim = a.addTicker(
                    [&] { log.emplace_back(2, eq.now()); }, 60);
            if (edges == 6 && victim != nullptr) {
                a.removeTicker(victim);
                victim = nullptr;
            }
        });
        b.addTicker([&] { log.emplace_back(3, eq.now()); });
        a.start();
        b.start();
        eq.runUntil(15000);
        a.stop();
        b.stop();
        return log;
    };

    const auto cal = run(QueueEngine::calendar);
    const auto heap = run(QueueEngine::heap);
    ASSERT_GT(cal.size(), 30u);
    EXPECT_EQ(cal, heap);
}

TEST(EngineEquivalence, CrossDomainChannelFanInFanOutIdentical)
{
    // The fabric-shaped workload: three producer domains fan into a
    // hub domain through async FIFOs (the inter-core link pattern of
    // fabric/system.cc), the hub routes each item onward to one of
    // two sink domains, and every so often a mid-flight squash rips
    // items out of an in-flight link — exactly what a pipeline flush
    // does to an inter-core channel. Six domains with pairwise
    // mismatched periods and phases; the full pop log (value, tick)
    // plus the squash accounting must be byte-identical across
    // engines and across seeds.
    auto run = [](QueueEngine engine, std::uint64_t seed) {
        EventQueue eq("fabric", engine);
        ClockDomain p0(eq, "p0", 1000), p1(eq, "p1", 1300, 250),
            p2(eq, "p2", 1700, 600);
        ClockDomain hub(eq, "hub", 900, 100);
        ClockDomain s0(eq, "s0", 1100, 40), s1(eq, "s1", 701, 7);
        ClockDomain *prods[] = {&p0, &p1, &p2};

        std::vector<std::unique_ptr<Channel<int>>> in, out;
        for (int i = 0; i < 3; ++i)
            in.push_back(std::make_unique<Channel<int>>(
                "in" + std::to_string(i), ChannelMode::asyncFifo,
                *prods[i], hub, 8, 2, false));
        ClockDomain *sinks[] = {&s0, &s1};
        for (int j = 0; j < 2; ++j)
            out.push_back(std::make_unique<Channel<int>>(
                "out" + std::to_string(j), ChannelMode::asyncFifo,
                hub, *sinks[j], 8, 2, false));

        std::vector<std::pair<int, Tick>> log;
        std::uint64_t squashed = 0;

        std::vector<Rng> prodRng;
        std::vector<int> sent(3, 0);
        for (int i = 0; i < 3; ++i)
            prodRng.emplace_back(seed * 31 + i);
        for (int i = 0; i < 3; ++i)
            prods[i]->addTicker([&, i] {
                if (prodRng[i].chance(0.7) && in[i]->canPush())
                    in[i]->push(i * 1000000 + sent[i]++);
            });

        int hubEdges = 0;
        hub.addTicker([&] {
            // Fixed ascending-source drain order with per-port
            // backpressure — the NIC discipline.
            for (int i = 0; i < 3; ++i)
                while (!in[i]->empty()) {
                    const int v = in[i]->front();
                    Channel<int> &hop = *out[v % 2];
                    if (hop.full())
                        break;
                    hop.push(v);
                    in[i]->pop();
                }
            // Mid-flight squash on a rotating link every 7 hub
            // edges: items still inside the FIFO (including ones not
            // yet visible through the synchronizer) vanish, survivors
            // keep their order.
            if (++hubEdges % 7 == 0)
                squashed += in[hubEdges / 7 % 3]->squash(
                    [](int v) { return v % 3 == 0; });
        });

        for (int j = 0; j < 2; ++j)
            sinks[j]->addTicker([&, j] {
                while (!out[j]->empty()) {
                    log.emplace_back(out[j]->front(), eq.now());
                    out[j]->pop();
                }
            });

        for (ClockDomain *d : {&p0, &p1, &p2, &hub, &s0, &s1})
            d->start();
        eq.runUntil(300000);
        for (ClockDomain *d : {&p0, &p1, &p2, &hub, &s0, &s1})
            d->stop();
        eq.runAll();
        log.emplace_back(static_cast<int>(squashed), 0);
        return log;
    };

    for (std::uint64_t seed : {1ull, 9ull, 0xfab41cull}) {
        const auto cal = run(QueueEngine::calendar, seed);
        const auto heap = run(QueueEngine::heap, seed);
        ASSERT_GT(cal.size(), 200u) << "seed " << seed;
        EXPECT_GT(cal.back().first, 0) << "no squashes, seed "
                                       << seed;
        EXPECT_EQ(cal, heap) << "seed " << seed;
    }
}

TEST(CalendarQueue, ResizeGrowsAndShrinksWithPopulation)
{
    EventQueue eq("resize", QueueEngine::calendar);
    EXPECT_EQ(eq.calendarBuckets(), EventQueue::calInitialBuckets);

    std::vector<std::unique_ptr<CallbackEvent>> evs;
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        evs.push_back(std::make_unique<CallbackEvent>([] {}));
        // Widely varying gaps: clustered ticks and distant outliers.
        const Tick when = (i % 7 == 0) ? rng.range(1, 100)
                                       : rng.range(1, 50'000'000);
        eq.schedule(evs.back().get(), when);
    }
    EXPECT_GT(eq.calendarBuckets(), EventQueue::calInitialBuckets);
    EXPECT_GE(eq.calendarBucketWidth(), 1u);

    // Cancel everything; the wheel must shrink back to its floor.
    for (auto &ev : evs)
        eq.deschedule(ev.get());
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.calendarBuckets(), EventQueue::calInitialBuckets);
}

TEST(CalendarQueue, ResizedQueueStillPopsSorted)
{
    EventQueue eq("sorted", QueueEngine::calendar);
    std::vector<std::unique_ptr<CallbackEvent>> evs;
    std::vector<Tick> popped;
    Rng rng(11);
    for (int i = 0; i < 3000; ++i) {
        evs.push_back(std::make_unique<CallbackEvent>(
            [&popped, &eq] { popped.push_back(eq.now()); }));
        eq.schedule(evs.back().get(), rng.range(0, 10'000'000));
    }
    eq.runAll();
    ASSERT_EQ(popped.size(), 3000u);
    EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
}

TEST(CalendarQueue, EngineSelection)
{
    // The built-in default is the calendar engine (unless the tree was
    // compiled with GALSSIM_HEAP_EVENTQUEUE).
#ifndef GALSSIM_HEAP_EVENTQUEUE
    EXPECT_EQ(EventQueue::defaultEngine(), QueueEngine::calendar);
#endif
    const QueueEngine saved = EventQueue::defaultEngine();
    EventQueue::setDefaultEngine(QueueEngine::heap);
    EventQueue byDefault;
    EXPECT_EQ(byDefault.engine(), QueueEngine::heap);
    EventQueue::setDefaultEngine(saved);

    EventQueue explicitCal("c", QueueEngine::calendar);
    EXPECT_EQ(explicitCal.engine(), QueueEngine::calendar);
    EXPECT_EQ(explicitCal.calendarBuckets(),
              EventQueue::calInitialBuckets);
    EventQueue explicitHeap("h", QueueEngine::heap);
    EXPECT_EQ(explicitHeap.engine(), QueueEngine::heap);
    EXPECT_EQ(explicitHeap.calendarBuckets(), 0u);

    EXPECT_EQ(parseQueueEngine("calendar"), QueueEngine::calendar);
    EXPECT_EQ(parseQueueEngine("heap"), QueueEngine::heap);
    EXPECT_STREQ(queueEngineName(QueueEngine::calendar), "calendar");
    EXPECT_STREQ(queueEngineName(QueueEngine::heap), "heap");
}

TEST(CalendarQueue, EventDestructorDeschedulesAcrossResize)
{
    // Destroying still-scheduled events must stay safe while the
    // wheel is far from its initial geometry.
    EventQueue eq("dtor", QueueEngine::calendar);
    {
        std::vector<std::unique_ptr<CallbackEvent>> evs;
        Rng rng(3);
        for (int i = 0; i < 200; ++i) {
            evs.push_back(std::make_unique<CallbackEvent>([] {}));
            eq.schedule(evs.back().get(), rng.range(1, 1'000'000));
        }
        // evs destructs here, one deschedule (and shrink) at a time.
    }
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextEventTime(), maxTick);
}
