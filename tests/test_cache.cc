/**
 * @file
 * Tests for the cache model and hierarchy: geometry checks, hit/miss
 * behaviour, LRU replacement, write-back traffic and the level
 * reporting the pipeline converts into latency.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

using namespace gals;

namespace
{

bool
touch(Cache &c, std::uint64_t addr, bool write = false)
{
    bool wb = false;
    return c.access(addr, write, wb);
}

} // namespace

TEST(Cache, GeometryDerivation)
{
    Cache c("c", 16 * 1024, 4, 32, 1);
    EXPECT_EQ(c.sets(), 128u);
    EXPECT_EQ(c.ways(), 4u);
    EXPECT_EQ(c.lineBytes(), 32u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c("c", 1024, 2, 32, 1);
    EXPECT_FALSE(touch(c, 0x1000));
    EXPECT_TRUE(touch(c, 0x1000));
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    Cache c("c", 1024, 2, 32, 1);
    touch(c, 0x2000);
    EXPECT_TRUE(touch(c, 0x2000 + 31));
    EXPECT_FALSE(touch(c, 0x2000 + 32)); // next line
}

TEST(Cache, AssociativityHoldsConflictingLines)
{
    // 2-way, 16 sets of 32B: addresses 32*16 apart map to one set.
    Cache c("c", 1024, 2, 32, 1);
    const std::uint64_t stride = 32 * 16;
    touch(c, 0);
    touch(c, stride);
    EXPECT_TRUE(touch(c, 0));
    EXPECT_TRUE(touch(c, stride));
}

TEST(Cache, LruEviction)
{
    Cache c("c", 1024, 2, 32, 1);
    const std::uint64_t stride = 32 * 16;
    touch(c, 0 * stride);
    touch(c, 1 * stride);
    touch(c, 0 * stride);          // 0 is now MRU
    touch(c, 2 * stride);          // evicts 1 (LRU)
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(1 * stride));
    EXPECT_TRUE(c.contains(2 * stride));
}

TEST(Cache, DirectMappedConflicts)
{
    Cache c("c", 512, 1, 32, 1);
    const std::uint64_t stride = 512;
    touch(c, 0);
    touch(c, stride); // same index, evicts
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(touch(c, 0));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c("c", 1024, 1, 32, 1);
    const std::uint64_t stride = 1024;
    bool wb = false;
    c.access(0, true, wb); // dirty
    EXPECT_FALSE(wb);
    c.access(stride, false, wb); // evicts dirty line
    EXPECT_TRUE(wb);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c("c", 1024, 1, 32, 1);
    bool wb = false;
    c.access(0, false, wb);
    c.access(1024, false, wb);
    EXPECT_FALSE(wb);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c("c", 1024, 1, 32, 1);
    bool wb = false;
    c.access(0, false, wb); // clean fill
    c.access(0, true, wb);  // dirty it
    c.access(1024, false, wb);
    EXPECT_TRUE(wb);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c("c", 1024, 2, 32, 1);
    touch(c, 0x100);
    c.flush();
    EXPECT_FALSE(c.contains(0x100));
}

TEST(Cache, MissRateArithmetic)
{
    Cache c("c", 1024, 2, 32, 1);
    touch(c, 0);
    touch(c, 0);
    touch(c, 0);
    touch(c, 4096);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(Hierarchy, L1HitLevel)
{
    CacheHierarchy h;
    h.dataAccess(0x1000, false); // cold: fills all levels
    const auto oc = h.dataAccess(0x1000, false);
    EXPECT_EQ(oc.level, 1u);
    EXPECT_EQ(oc.l2Accesses, 0u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    HierarchyConfig cfg;
    CacheHierarchy h(cfg);
    h.dataAccess(0x0, false);
    // Evict from 16KB 4-way L1 by filling its set (stride = 4KB).
    for (int i = 1; i <= 4; ++i)
        h.dataAccess(i * 4096ull, false);
    const auto oc = h.dataAccess(0x0, false);
    EXPECT_EQ(oc.level, 2u); // still L2-resident
}

TEST(Hierarchy, MemoryLevelOnColdAccess)
{
    CacheHierarchy h;
    const auto oc = h.dataAccess(0xdeadbe00, false);
    EXPECT_EQ(oc.level, 3u);
    EXPECT_EQ(oc.memAccesses, 1u);
    EXPECT_EQ(h.memory().accesses(), 1u);
}

TEST(Hierarchy, InstFetchUsesIl1)
{
    CacheHierarchy h;
    h.instFetch(0x400000);
    EXPECT_EQ(h.il1().accesses(), 1u);
    EXPECT_EQ(h.dl1().accesses(), 0u);
    const auto oc = h.instFetch(0x400000);
    EXPECT_EQ(oc.level, 1u);
}

TEST(Hierarchy, DirtyL1VictimWritesIntoL2)
{
    CacheHierarchy h;
    h.dataAccess(0x0, true); // dirty in L1
    const auto before = h.l2().accesses();
    for (int i = 1; i <= 4; ++i)
        h.dataAccess(i * 4096ull, false); // evict the dirty line
    EXPECT_GT(h.l2().accesses(), before + 3); // demand + writeback
}

TEST(Hierarchy, Table3Defaults)
{
    const HierarchyConfig cfg;
    EXPECT_EQ(cfg.il1Size, 16u * 1024);
    EXPECT_EQ(cfg.il1Ways, 1u);  // direct mapped
    EXPECT_EQ(cfg.dl1Size, 16u * 1024);
    EXPECT_EQ(cfg.dl1Ways, 4u);
    EXPECT_EQ(cfg.l2Size, 256u * 1024);
    EXPECT_EQ(cfg.l2Ways, 4u);
    EXPECT_EQ(cfg.l2Latency, 6u);
    EXPECT_EQ(cfg.dl1Latency, 1u);
    EXPECT_EQ(cfg.il1Latency, 1u);
}

/** Parameterized geometry sweep: construction + basic behaviour. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheGeometry, FillThenFullyHit)
{
    const auto [kb, ways] = GetParam();
    Cache c("c", kb * 1024ull, ways, 32, 1);
    const unsigned lines = kb * 1024 / 32;
    for (unsigned i = 0; i < lines; ++i)
        touch(c, i * 32ull);
    // Second pass: everything resident.
    for (unsigned i = 0; i < lines; ++i)
        ASSERT_TRUE(touch(c, i * 32ull)) << "line " << i;
    EXPECT_EQ(c.misses(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CacheGeometry,
    ::testing::Values(std::make_tuple(1u, 1u), std::make_tuple(4u, 2u),
                      std::make_tuple(16u, 4u), std::make_tuple(8u, 8u),
                      std::make_tuple(256u, 4u)));
