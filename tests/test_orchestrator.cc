/**
 * @file
 * Tests for the crash-safe dispatch orchestrator.
 *
 * The slice state machine (retry caps, capped exponential backoff,
 * straggler deadlines) and the resume scan are tested pure, with
 * injected clocks and fabricated record files. The integration tests
 * then drive the real thing: runDispatch() launching actual galsbench
 * worker subprocesses with injected crashes and hangs, asserting the
 * merged trajectory is byte-identical to an in-process unsharded
 * reference — the whole point of the orchestrator — plus resume after
 * a simulated mid-record kill, plan-mismatch refusal, retry-cap
 * exhaustion and the atomic-write guarantees underneath it all.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "bench/register_all.hh"
#include "power/power_model.hh"
#include "runner/atomic_file.hh"
#include "runner/engine.hh"
#include "runner/fault.hh"
#include "runner/gtrj.hh"
#include "runner/json.hh"
#include "runner/merge.hh"
#include "runner/orchestrator.hh"
#include "runner/trajectory.hh"

using namespace gals;
using namespace gals::runner;

namespace fs = std::filesystem;

namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "galssim_orch_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

void
spit(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
    ASSERT_TRUE(os.good()) << path;
}

DispatchPolicy
testPolicy()
{
    DispatchPolicy p;
    p.maxAttempts = 3;
    p.backoffBaseMs = 100;
    p.backoffCapMs = 800;
    p.stragglerFactor = 4.0;
    p.minDeadlineMs = 50;
    return p;
}

// ---------------------------------------------------------------- tracker

TEST(DispatchTracker, BackoffScheduleIsCappedExponential)
{
    const DispatchTracker t(1, testPolicy());
    EXPECT_EQ(t.backoffDelayMs(1), 100u);
    EXPECT_EQ(t.backoffDelayMs(2), 200u);
    EXPECT_EQ(t.backoffDelayMs(3), 400u);
    EXPECT_EQ(t.backoffDelayMs(4), 800u);
    EXPECT_EQ(t.backoffDelayMs(5), 800u); // capped
    EXPECT_EQ(t.backoffDelayMs(64), 800u); // no shift overflow
}

TEST(DispatchTracker, FailedSliceWaitsOutItsBackoff)
{
    DispatchTracker t(2, testPolicy());
    ASSERT_EQ(t.nextDispatch(0), std::optional<std::size_t>(0));
    t.onLaunched(0, 0);
    // Slice 0 running: the next dispatch is slice 1.
    ASSERT_EQ(t.nextDispatch(0), std::optional<std::size_t>(1));
    t.onLaunched(1, 0);
    EXPECT_FALSE(t.nextDispatch(0).has_value());

    t.onFailed(0, 1000); // first failure: 100 ms backoff
    EXPECT_EQ(t.state(0), SliceState::pending);
    EXPECT_EQ(t.eligibleAtMs(0), 1100u);
    EXPECT_FALSE(t.nextDispatch(1099).has_value());
    EXPECT_EQ(t.nextDispatch(1100), std::optional<std::size_t>(0));

    t.onLaunched(0, 1100);
    t.onFailed(0, 1200); // second failure: 200 ms backoff
    EXPECT_EQ(t.eligibleAtMs(0), 1400u);
}

TEST(DispatchTracker, AttemptCapMarksSliceFailed)
{
    DispatchTracker t(1, testPolicy()); // maxAttempts = 3
    for (int attempt = 0; attempt < 3; ++attempt) {
        EXPECT_EQ(t.state(0), SliceState::pending);
        t.onLaunched(0, 0);
        t.onFailed(0, 10);
    }
    EXPECT_EQ(t.state(0), SliceState::failed);
    EXPECT_EQ(t.attempts(0), 3u);
    EXPECT_TRUE(t.anyExhausted());
    EXPECT_FALSE(t.nextDispatch(100000).has_value());
    EXPECT_FALSE(t.allDone());
}

TEST(DispatchTracker, NoStragglerDeadlineBeforeFirstCompletion)
{
    DispatchTracker t(3, testPolicy());
    t.onLaunched(0, 0);
    EXPECT_EQ(t.deadlineMs(), 0u);
    // Hours pass: still no deadline — there is no median to scale.
    EXPECT_TRUE(t.stragglers(3600 * 1000).empty());

    // markDone() (a resume-complete slice) must NOT arm the
    // deadline either: it contributes no wall-time observation.
    t.markDone(1);
    EXPECT_EQ(t.deadlineMs(), 0u);
    EXPECT_TRUE(t.stragglers(3600 * 1000).empty());
}

TEST(DispatchTracker, StragglerDeadlineScalesFromMedian)
{
    DispatchTracker t(3, testPolicy());
    t.onLaunched(0, 0);
    t.onFinished(0, 100); // median 100 ms
    EXPECT_EQ(t.medianDurationMs(), 100u);
    EXPECT_EQ(t.deadlineMs(), 400u); // 4 x median > 50 ms floor

    t.onLaunched(1, 100);
    t.onLaunched(2, 100);
    EXPECT_TRUE(t.stragglers(500).empty()); // 400 ms old: at limit
    const std::vector<std::size_t> late = t.stragglers(501);
    EXPECT_EQ(late, (std::vector<std::size_t>{1, 2}));
    // Pure: asking twice reports the same set.
    EXPECT_EQ(t.stragglers(501), late);
    // A straggler leaves the set only through onFailed().
    t.onFailed(1, 501);
    EXPECT_EQ(t.stragglers(501), (std::vector<std::size_t>{2}));
}

TEST(DispatchTracker, DeadlineRespectsTheFloor)
{
    DispatchPolicy p = testPolicy();
    p.minDeadlineMs = 5000;
    DispatchTracker t(2, p);
    t.onLaunched(0, 0);
    t.onFinished(0, 10); // 4 x 10 ms << the 5 s floor
    EXPECT_EQ(t.deadlineMs(), 5000u);
}

TEST(DispatchTracker, MedianOfEvenCountAveragesTheMiddle)
{
    DispatchTracker t(4, testPolicy());
    t.onLaunched(0, 0);
    t.onFinished(0, 100);
    t.onLaunched(1, 0);
    t.onFinished(1, 300);
    EXPECT_EQ(t.medianDurationMs(), 200u);
    t.onLaunched(2, 0);
    t.onFinished(2, 1000);
    EXPECT_EQ(t.medianDurationMs(), 300u);
}

TEST(DispatchTracker, CountsAndCompletion)
{
    DispatchTracker t(3, testPolicy());
    t.markDone(0);
    t.onLaunched(1, 0);
    EXPECT_EQ(t.countIn(SliceState::done), 1u);
    EXPECT_EQ(t.countIn(SliceState::running), 1u);
    EXPECT_EQ(t.countIn(SliceState::pending), 1u);
    EXPECT_FALSE(t.allDone());
    t.onFinished(1, 10);
    t.onLaunched(2, 10);
    t.onFinished(2, 20);
    EXPECT_TRUE(t.allDone());
}

// ------------------------------------------------------------ slice scan

std::vector<SliceExpectation>
expectations(const std::string &scenario,
             std::initializer_list<std::uint64_t> indices)
{
    std::vector<SliceExpectation> out;
    for (std::uint64_t i : indices)
        out.push_back({scenario, i});
    return out;
}

std::string
fakeRecord(const std::string &scenario, std::uint64_t index,
           const std::string &benchmark = "adpcm")
{
    return "{\"scenario\":\"" + scenario +
           "\",\"index\":" + std::to_string(index) +
           ",\"benchmark\":\"" + benchmark +
           "\",\"time_sec\":0.5}\n";
}

TEST(SliceScan, MissingFileIsAnEmptyPrefix)
{
    SliceScan scan;
    std::string err;
    ASSERT_TRUE(scanSliceRecords(tempPath("scan_missing.jsonl"),
                                 expectations("s", {0, 3}), scan,
                                 err));
    EXPECT_EQ(scan.validRecords, 0u);
    EXPECT_EQ(scan.validBytes, 0u);
    EXPECT_FALSE(scan.trimmedTail);
}

TEST(SliceScan, FullFileMatchesWithoutTrim)
{
    const std::string path = tempPath("scan_full.jsonl");
    spit(path, fakeRecord("s", 0) + fakeRecord("s", 3, "fpppp"));
    SliceScan scan;
    std::string err;
    std::vector<RecordStat> stats;
    ASSERT_TRUE(scanSliceRecords(path, expectations("s", {0, 3}),
                                 scan, err, &stats));
    EXPECT_EQ(scan.validRecords, 2u);
    EXPECT_EQ(scan.validBytes, slurp(path).size());
    EXPECT_FALSE(scan.trimmedTail);
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].benchmark, "adpcm");
    EXPECT_EQ(stats[1].benchmark, "fpppp");
    EXPECT_DOUBLE_EQ(stats[1].timeSec, 0.5);
}

TEST(SliceScan, TornTrailingLineIsTrimmed)
{
    const std::string path = tempPath("scan_torn.jsonl");
    const std::string first = fakeRecord("s", 0);
    // A crash mid-write: the second record lost its tail (and its
    // newline).
    spit(path, first + "{\"scenario\":\"s\",\"index\":3,\"ben");
    SliceScan scan;
    std::string err;
    ASSERT_TRUE(scanSliceRecords(path, expectations("s", {0, 3}),
                                 scan, err));
    EXPECT_EQ(scan.validRecords, 1u);
    EXPECT_EQ(scan.validBytes, first.size());
    EXPECT_TRUE(scan.trimmedTail);
}

TEST(SliceScan, MismatchedRecordEndsThePrefix)
{
    const std::string path = tempPath("scan_mismatch.jsonl");
    // Second record carries the wrong canonical index.
    spit(path, fakeRecord("s", 0) + fakeRecord("s", 7) +
                   fakeRecord("s", 5));
    SliceScan scan;
    std::string err;
    ASSERT_TRUE(scanSliceRecords(path,
                                 expectations("s", {0, 3, 5}), scan,
                                 err));
    EXPECT_EQ(scan.validRecords, 1u);
    EXPECT_EQ(scan.validBytes, fakeRecord("s", 0).size());
    EXPECT_TRUE(scan.trimmedTail);
}

TEST(SliceScan, ExtraRecordsPastTheExpectationAreTail)
{
    const std::string path = tempPath("scan_extra.jsonl");
    spit(path, fakeRecord("s", 0) + fakeRecord("s", 3) +
                   fakeRecord("s", 9));
    SliceScan scan;
    std::string err;
    ASSERT_TRUE(scanSliceRecords(path, expectations("s", {0, 3}),
                                 scan, err));
    EXPECT_EQ(scan.validRecords, 2u);
    EXPECT_TRUE(scan.trimmedTail);
}

// ----------------------------------------------------- gtrj slice scan

/** One encoded gtrj frame with just enough record identity for the
 *  scan: scenario, canonical index, benchmark, time_sec. */
std::string
fakeGtrjFrame(const std::string &scenario, std::uint64_t index,
              const std::string &benchmark = "adpcm")
{
    RunConfig cfg;
    cfg.benchmark = benchmark;
    cfg.instructions = 2000;
    RunResults r;
    r.benchmark = benchmark;
    r.timeSec = 0.5;
    // The encoder's positional unit-energy block requires the full
    // power-model unit set, exactly like a real run.
    for (unsigned u = 0; u < numUnits; ++u)
        r.unitEnergyNj[unitName(static_cast<Unit>(u))] = 1.0;
    return gtrj::encodeRecord(scenario, index, cfg, r);
}

TEST(SliceScan, GtrjFullFileMatchesWithoutTrim)
{
    const std::string path = tempPath("scan_full.gtrj");
    spit(path, gtrj::fileHeader() + fakeGtrjFrame("s", 0) +
                   fakeGtrjFrame("s", 3, "fpppp"));
    SliceScan scan;
    std::string err;
    std::vector<RecordStat> stats;
    ASSERT_TRUE(scanSliceRecords(path, expectations("s", {0, 3}),
                                 scan, err, &stats));
    EXPECT_EQ(scan.validRecords, 2u);
    EXPECT_EQ(scan.validBytes, slurp(path).size());
    EXPECT_FALSE(scan.trimmedTail);
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].benchmark, "adpcm");
    EXPECT_EQ(stats[1].benchmark, "fpppp");
    EXPECT_DOUBLE_EQ(stats[1].timeSec, 0.5);
}

TEST(SliceScan, GtrjTornTrailingFrameIsTrimmed)
{
    const std::string path = tempPath("scan_torn.gtrj");
    const std::string keep =
        gtrj::fileHeader() + fakeGtrjFrame("s", 0);
    const std::string second = fakeGtrjFrame("s", 3);
    // A SIGKILL mid-write: the second frame lost its tail.
    spit(path, keep + second.substr(0, second.size() / 2));
    SliceScan scan;
    std::string err;
    ASSERT_TRUE(scanSliceRecords(path, expectations("s", {0, 3}),
                                 scan, err));
    EXPECT_EQ(scan.validRecords, 1u);
    EXPECT_EQ(scan.validBytes, keep.size());
    EXPECT_TRUE(scan.trimmedTail);
}

TEST(SliceScan, GtrjTornHeaderSalvagesNothing)
{
    const std::string path = tempPath("scan_header.gtrj");
    spit(path, gtrj::fileHeader().substr(0, 2));
    SliceScan scan;
    std::string err;
    ASSERT_TRUE(scanSliceRecords(path, expectations("s", {0}), scan,
                                 err));
    EXPECT_EQ(scan.validRecords, 0u);
    EXPECT_EQ(scan.validBytes, 0u); // the reopened sink rewrites it
    EXPECT_TRUE(scan.trimmedTail);
}

TEST(SliceScan, GtrjMismatchedFrameEndsThePrefix)
{
    const std::string path = tempPath("scan_mismatch.gtrj");
    spit(path, gtrj::fileHeader() + fakeGtrjFrame("s", 0) +
                   fakeGtrjFrame("s", 7) + fakeGtrjFrame("s", 5));
    SliceScan scan;
    std::string err;
    ASSERT_TRUE(scanSliceRecords(path, expectations("s", {0, 3, 5}),
                                 scan, err));
    EXPECT_EQ(scan.validRecords, 1u);
    EXPECT_EQ(scan.validBytes,
              gtrj::fileHeader().size() +
                  fakeGtrjFrame("s", 0).size());
    EXPECT_TRUE(scan.trimmedTail);
}

// ------------------------------------------------------------- fault spec

TEST(FaultSpec, ParsesExitAndHang)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(parseFaultSpec("exit-after=2", plan, err)) << err;
    EXPECT_EQ(plan.exitAfter, 2u);
    EXPECT_EQ(plan.hangAfter, FaultPlan::disabled);
    ASSERT_TRUE(parseFaultSpec("hang-after=0", plan, err)) << err;
    EXPECT_EQ(plan.hangAfter, 0u);
    EXPECT_TRUE(plan.active());
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(parseFaultSpec("exit-after", plan, err));
    EXPECT_FALSE(parseFaultSpec("exit-after=", plan, err));
    EXPECT_FALSE(parseFaultSpec("exit-after=-1", plan, err));
    EXPECT_FALSE(parseFaultSpec("exit-after=2x", plan, err));
    EXPECT_FALSE(parseFaultSpec("explode-after=2", plan, err));
    EXPECT_NE(err.find("explode-after"), std::string::npos);
}

// ----------------------------------------------------------- atomic write

TEST(AtomicFile, WritesAndLeavesNoTemp)
{
    const std::string path = tempPath("atomic_ok.json");
    std::string err;
    ASSERT_TRUE(atomicWriteFile(path, "{\"a\": 1}\n", err)) << err;
    EXPECT_EQ(slurp(path), "{\"a\": 1}\n");
    EXPECT_FALSE(fs::exists(atomicTempPath(path)));
    // Overwrite: same guarantee.
    ASSERT_TRUE(atomicWriteFile(path, "{\"a\": 2}\n", err)) << err;
    EXPECT_EQ(slurp(path), "{\"a\": 2}\n");
    EXPECT_FALSE(fs::exists(atomicTempPath(path)));
}

TEST(AtomicFile, FailureReportsAndSetsError)
{
    std::string err;
    EXPECT_FALSE(atomicWriteFile(
        "/nonexistent-dir/galssim_orch_atomic.json", "x", err));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST(AtomicFile, FailureLeavesTheOldFileIntact)
{
    const std::string path = tempPath("atomic_keep.json");
    std::string err;
    ASSERT_TRUE(atomicWriteFile(path, "old contents\n", err)) << err;
    // Block the deterministic temp path with a directory: the write
    // must fail without touching the existing file.
    const std::string tmp = atomicTempPath(path);
    fs::remove_all(tmp);
    ASSERT_TRUE(fs::create_directory(tmp));
    EXPECT_FALSE(atomicWriteFile(path, "new contents\n", err));
    EXPECT_EQ(slurp(path), "old contents\n");
    fs::remove_all(tmp);
}

TEST(AtomicFile, ManifestWriterLeavesNoTemp)
{
    // Regression for the satellite fix: writeManifestFile() goes
    // through the temp-file + rename path now.
    const std::string path = tempPath("manifest_atomic.json");
    SweepOptions opts;
    writeManifestFile(path, opts, "calendar", "", {});
    EXPECT_FALSE(fs::exists(atomicTempPath(path)));
    json::Value v;
    std::string err;
    EXPECT_TRUE(json::parse(slurp(path), v, err)) << err;
}

// ------------------------------------------------------------ integration

/** The galsbench binary the orchestrator execs as workers: the
 *  GALSBENCH env var (set by CTest), falling back to a sibling of
 *  this test binary. */
std::string
galsbenchBinary()
{
    if (const char *env = std::getenv("GALSBENCH"))
        if (::access(env, X_OK) == 0)
            return env;
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    const std::string self(buf);
    const std::size_t slash = self.find_last_of('/');
    if (slash == std::string::npos)
        return "";
    const std::string sibling = self.substr(0, slash) + "/galsbench";
    return ::access(sibling.c_str(), X_OK) == 0 ? sibling : "";
}

/** The integration sweep: fig05, one benchmark, two seeds — a 4-run
 *  grid that exercises multi-record slices without burning time. */
SweepOptions
integrationSweep()
{
    SweepOptions sweep;
    sweep.instructions = 2000;
    sweep.benchmarks = {"adpcm"};
    sweep.explicitSeeds = {0, 1};
    return sweep;
}

DispatchOptions
integrationOptions(const std::string &outputPath)
{
    DispatchOptions opts;
    opts.scenarios = {"fig05"};
    opts.sweep = integrationSweep();
    opts.outputPath = outputPath;
    opts.workerBinary = galsbenchBinary();
    opts.slices = 3;
    opts.workers = 2;
    opts.statusIntervalMs = 50;
    opts.policy.maxAttempts = 3;
    opts.policy.backoffBaseMs = 20;
    opts.policy.backoffCapMs = 100;
    opts.policy.minDeadlineMs = 60000; // stragglers off by default
    return opts;
}

/** The unsharded single-machine trajectory the dispatch must
 *  reproduce byte for byte, generated in-process. */
void
writeReference(const ScenarioRegistry &registry,
               const std::string &path)
{
    const SweepOptions sweep = integrationSweep();
    TrajectorySink sink(path);
    const ExperimentEngine engine(1);
    const Scenario *scenario = registry.find("fig05");
    ASSERT_NE(scenario, nullptr);
    const std::vector<RunConfig> runs =
        expandReplicatedRuns(*scenario, sweep, nullptr);
    sink.append("fig05", runs, engine.run(runs));
    sink.close();
}

class DispatchIntegration : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (galsbenchBinary().empty())
            GTEST_SKIP() << "galsbench binary not found (set "
                            "GALSBENCH)";
        bench::registerAllScenarios(registry_);
        writeReference(registry_, referencePath_);
    }

    ScenarioRegistry registry_;
    std::string referencePath_ = tempPath("reference.jsonl");
};

TEST_F(DispatchIntegration, CrashedWorkerIsRetriedToByteIdentity)
{
    const std::string out = tempPath("crash/merged.jsonl");
    fs::remove_all(tempPath("crash"));
    fs::create_directories(tempPath("crash"));

    DispatchOptions opts = integrationOptions(out);
    // Slice 1 (2 records) dies like a SIGKILL after flushing its
    // first record — the retry must skip that record and finish.
    opts.firstAttemptArgs[1] = {"--fault-exit-after", "1"};

    std::ostringstream diag;
    DispatchReport report;
    ASSERT_TRUE(runDispatch(registry_, opts, diag, &report))
        << diag.str();
    EXPECT_EQ(report.totalRuns, 4u);
    EXPECT_EQ(report.retries, 1u);
    EXPECT_EQ(report.launches, 4u); // 3 slices + 1 retry
    EXPECT_EQ(slurp(out), slurp(referencePath_));

    // The relaunch appended after the salvaged record rather than
    // re-running the whole slice.
    EXPECT_NE(
        slurp(out + ".dispatch/journal.jsonl").find("\"skip\":1"),
        std::string::npos);

    // status.json reports the finished dispatch.
    json::Value status;
    std::string err;
    ASSERT_TRUE(json::parse(slurp(out + ".dispatch/status.json"),
                            status, err))
        << err;
    EXPECT_EQ(status.find("state")->str, "done");
    std::uint64_t done = 0;
    ASSERT_TRUE(
        status.find("records")->find("done")->asU64(done));
    EXPECT_EQ(done, 4u);
}

TEST_F(DispatchIntegration, HungWorkerIsKilledAndRedispatched)
{
    const std::string out = tempPath("hang/merged.jsonl");
    fs::remove_all(tempPath("hang"));
    fs::create_directories(tempPath("hang"));

    DispatchOptions opts = integrationOptions(out);
    // Slice 2 hangs after its single record; the deadline floor is
    // generous against CI timing noise but far below the test
    // timeout.
    opts.firstAttemptArgs[2] = {"--fault-hang-after", "0"};
    opts.policy.minDeadlineMs = 1500;

    std::ostringstream diag;
    DispatchReport report;
    ASSERT_TRUE(runDispatch(registry_, opts, diag, &report))
        << diag.str();
    EXPECT_EQ(report.stragglersKilled, 1u);
    EXPECT_EQ(report.retries, 1u);
    EXPECT_EQ(slurp(out), slurp(referencePath_));
}

TEST_F(DispatchIntegration, ResumeRunsOnlyTheMissingRecords)
{
    const std::string out = tempPath("resume/merged.jsonl");
    fs::remove_all(tempPath("resume"));
    fs::create_directories(tempPath("resume"));

    DispatchOptions opts = integrationOptions(out);
    std::ostringstream diag1;
    ASSERT_TRUE(runDispatch(registry_, opts, diag1, nullptr))
        << diag1.str();
    EXPECT_EQ(slurp(out), slurp(referencePath_));

    // Simulate a kill -9 mid-slice-1: cut its trajectory mid-record
    // (torn line, no trailing newline), drop its manifest, drop the
    // merged outputs.
    const std::string workDir = out + ".dispatch";
    const std::string slice1 = workDir + "/slice_1.jsonl";
    const std::string full = slurp(slice1);
    const std::size_t firstEnd = full.find('\n');
    ASSERT_NE(firstEnd, std::string::npos);
    // Keep record 1 plus half of record 2.
    spit(slice1, full.substr(0, firstEnd + 1 + 40));
    fs::remove(workDir + "/slice_1.manifest.json");
    fs::remove(out);

    std::ostringstream diag2;
    DispatchReport report;
    ASSERT_TRUE(runDispatch(registry_, opts, diag2, &report))
        << diag2.str();
    // Slices 2 and 3 were complete: no relaunch. Slice 1 salvaged
    // its first record and re-ran only the second.
    EXPECT_EQ(report.resumedDoneSlices, 2u);
    EXPECT_EQ(report.launches, 1u);
    EXPECT_EQ(report.resumedRecords, 3u); // 1 salvaged + 2 + 1 done
    EXPECT_EQ(report.recordsRun, 1u);
    EXPECT_EQ(slurp(out), slurp(referencePath_));
    // The torn tail was journaled as a trim.
    EXPECT_NE(slurp(workDir + "/journal.jsonl").find("\"trim\""),
              std::string::npos);

    // The merged manifest replays clean: grid shapes, config hashes
    // and record bytes all line up with the archive.
    std::ostringstream vdiag;
    const ExperimentEngine engine(1);
    EXPECT_TRUE(verifyManifest(registry_, engine,
                               workDir + "/manifest.json", vdiag))
        << vdiag.str();
}

TEST_F(DispatchIntegration, WarmupSnapshotDirSurvivesKillAndResume)
{
    const std::string out = tempPath("warmsnap/merged.jsonl");
    fs::remove_all(tempPath("warmsnap"));
    fs::create_directories(tempPath("warmsnap"));
    const std::string snapDir = tempPath("warmsnap/snapshots");
    fs::create_directories(snapDir);

    // Warm variant of the integration sweep: same 4-run grid, every
    // run split 3:1 warmup:measure so the seeds' two warmup stems are
    // shared through the exchange directory.
    SweepOptions sweep = integrationSweep();
    sweep.warmupInstructions = 1500;

    // In-process warm reference (no snapshot directory: in-process
    // memoization alone must already give the same bytes).
    const std::string ref = tempPath("warmsnap/reference.jsonl");
    {
        TrajectorySink sink(ref);
        const ExperimentEngine engine(1);
        const Scenario *scenario = registry_.find("fig05");
        ASSERT_NE(scenario, nullptr);
        const std::vector<RunConfig> runs =
            expandReplicatedRuns(*scenario, sweep, nullptr);
        sink.append("fig05", runs, engine.run(runs));
        sink.close();
    }

    DispatchOptions opts = integrationOptions(out);
    opts.sweep = sweep;
    opts.snapshotDir = snapDir;

    std::ostringstream diag1;
    ASSERT_TRUE(runDispatch(registry_, opts, diag1, nullptr))
        << diag1.str();
    EXPECT_EQ(slurp(out), slurp(ref));

    // The workers exchanged warmup stems through the directory.
    std::size_t snapshots = 0;
    for (const auto &e : fs::directory_iterator(snapDir)) {
        EXPECT_EQ(e.path().extension(), ".gsnp") << e.path();
        ++snapshots;
    }
    EXPECT_GT(snapshots, 0u);

    // Kill -9 aftermath: a torn slice trajectory, every snapshot in
    // the exchange directory truncated to half, and a stale garbage
    // file alongside them. The resumed dispatch must ignore the
    // partial/foreign snapshots (re-producing whichever stems it
    // needs) and still converge to the reference bytes.
    const std::string workDir = out + ".dispatch";
    const std::string slice1 = workDir + "/slice_1.jsonl";
    const std::string full = slurp(slice1);
    const std::size_t firstEnd = full.find('\n');
    ASSERT_NE(firstEnd, std::string::npos);
    spit(slice1, full.substr(0, firstEnd + 1 + 40));
    fs::remove(workDir + "/slice_1.manifest.json");
    fs::remove(out);
    for (const auto &e : fs::directory_iterator(snapDir))
        fs::resize_file(e.path(), fs::file_size(e.path()) / 2);
    spit(snapDir + "/snap_0000000000000bad.gsnp",
         "not a snapshot at all");

    std::ostringstream diag2;
    DispatchReport report;
    ASSERT_TRUE(runDispatch(registry_, opts, diag2, &report))
        << diag2.str();
    EXPECT_EQ(report.resumedDoneSlices, 2u);
    EXPECT_EQ(report.launches, 1u);
    EXPECT_EQ(slurp(out), slurp(ref));
}

TEST_F(DispatchIntegration, GtrjDispatchResumesAcrossATornFrame)
{
    const std::string out = tempPath("gtrj/merged.gtrj");
    fs::remove_all(tempPath("gtrj"));
    fs::create_directories(tempPath("gtrj"));

    // The unsharded binary reference the dispatch must reproduce.
    const std::string refPath = tempPath("gtrj/reference.gtrj");
    {
        const SweepOptions sweep = integrationSweep();
        TrajectorySink sink(refPath);
        const ExperimentEngine engine(1);
        const Scenario *scenario = registry_.find("fig05");
        ASSERT_NE(scenario, nullptr);
        const std::vector<RunConfig> runs =
            expandReplicatedRuns(*scenario, sweep, nullptr);
        sink.append("fig05", runs, engine.run(runs));
        sink.close();
    }

    DispatchOptions opts = integrationOptions(out);
    // Slice 1 dies after flushing its first frame; the retry must
    // append from the salvaged frame, as with JSON lines.
    opts.firstAttemptArgs[1] = {"--fault-exit-after", "1"};
    std::ostringstream diag1;
    DispatchReport report;
    ASSERT_TRUE(runDispatch(registry_, opts, diag1, &report))
        << diag1.str();
    EXPECT_EQ(report.retries, 1u);
    EXPECT_EQ(slurp(out), slurp(refPath));

    // Kill -9 simulation on the binary slice: keep the header, the
    // first frame and half of the second, drop the slice manifest
    // and the merged outputs, then resume.
    const std::string workDir = out + ".dispatch";
    const std::string slice1 = workDir + "/slice_1.gtrj";
    const std::string full = slurp(slice1);
    std::size_t pos = 0;
    std::string err;
    ASSERT_TRUE(gtrj::readHeader(full, pos, err)) << err;
    std::string_view payload;
    ASSERT_EQ(gtrj::nextFrame(full, pos, payload, err),
              gtrj::FrameStatus::ok)
        << err;
    spit(slice1, full.substr(0, pos + 7)); // 7 bytes of frame 2
    fs::remove(workDir + "/slice_1.manifest.json");
    fs::remove(out);

    opts.firstAttemptArgs.clear(); // the resume runs fault-free
    std::ostringstream diag2;
    ASSERT_TRUE(runDispatch(registry_, opts, diag2, &report))
        << diag2.str();
    EXPECT_EQ(report.resumedDoneSlices, 2u);
    EXPECT_EQ(report.launches, 1u);
    EXPECT_EQ(report.recordsRun, 1u);
    EXPECT_EQ(slurp(out), slurp(refPath));
    EXPECT_NE(slurp(workDir + "/journal.jsonl").find("\"trim\""),
              std::string::npos);

    // The merged binary manifest replays clean through --verify.
    std::ostringstream vdiag;
    const ExperimentEngine engine(1);
    EXPECT_TRUE(verifyManifest(registry_, engine,
                               workDir + "/manifest.json", vdiag))
        << vdiag.str();
}

TEST_F(DispatchIntegration, PlanMismatchRefusesToResume)
{
    const std::string out = tempPath("plan/merged.jsonl");
    fs::remove_all(tempPath("plan"));
    fs::create_directories(tempPath("plan"));

    DispatchOptions opts = integrationOptions(out);
    std::ostringstream diag1;
    ASSERT_TRUE(runDispatch(registry_, opts, diag1, nullptr))
        << diag1.str();

    // Same work dir, different sweep: must refuse, not mis-merge.
    DispatchOptions other = opts;
    other.sweep.instructions = 4000;
    std::ostringstream diag2;
    EXPECT_FALSE(runDispatch(registry_, other, diag2, nullptr));
    EXPECT_NE(diag2.str().find("different sweep plan"),
              std::string::npos)
        << diag2.str();

    // --fresh discards the old state and runs the new plan.
    other.fresh = true;
    std::ostringstream diag3;
    ASSERT_TRUE(runDispatch(registry_, other, diag3, nullptr))
        << diag3.str();
}

TEST_F(DispatchIntegration, RetryCapExhaustionFailsTheDispatch)
{
    const std::string out = tempPath("exhaust/merged.jsonl");
    fs::remove_all(tempPath("exhaust"));
    fs::create_directories(tempPath("exhaust"));

    DispatchOptions opts = integrationOptions(out);
    opts.slices = 2;
    opts.workers = 1;
    opts.policy.maxAttempts = 2;
    // Every attempt of every slice dies before its first record.
    opts.workerArgs = {"--fault-exit-after", "0"};

    std::ostringstream diag;
    DispatchReport report;
    EXPECT_FALSE(runDispatch(registry_, opts, diag, &report));
    EXPECT_NE(diag.str().find("attempts exhausted"),
              std::string::npos)
        << diag.str();
    EXPECT_FALSE(fs::exists(out)); // no merged output on failure

    json::Value status;
    std::string err;
    ASSERT_TRUE(json::parse(slurp(out + ".dispatch/status.json"),
                            status, err))
        << err;
    EXPECT_EQ(status.find("state")->str, "failed");
}

TEST_F(DispatchIntegration, ConcurrentDispatchIsLockedOut)
{
    const std::string out = tempPath("lock/merged.jsonl");
    fs::remove_all(tempPath("lock"));
    fs::create_directories(tempPath("lock") + "/merged.jsonl.dispatch");

    // Hold the journal lock the way a live orchestrator would.
    const std::string journal =
        out + ".dispatch/journal.jsonl";
    const int fd = ::open(journal.c_str(), O_RDWR | O_CREAT, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::flock(fd, LOCK_EX | LOCK_NB), 0);

    DispatchOptions opts = integrationOptions(out);
    std::ostringstream diag;
    EXPECT_FALSE(runDispatch(registry_, opts, diag, nullptr));
    EXPECT_NE(diag.str().find("another dispatch"),
              std::string::npos)
        << diag.str();
    ::close(fd);
}

} // namespace
