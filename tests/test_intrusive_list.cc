/**
 * @file
 * Tests for the shared intrusive list: link/unlink at every position,
 * insertAfter, splice, multi-tag membership, and pool-style reuse (the
 * free-list pattern Channel<T> runs on).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/intrusive_list.hh"

using namespace gals;

namespace
{

struct TagA
{
};
struct TagB
{
};

struct Node
{
    int id;
    IntrusiveLink<Node, TagA> linkA;
    IntrusiveLink<Node, TagB> linkB;

    explicit Node(int i) : id(i) {}

    IntrusiveLink<Node, TagA> &intrusiveLink(TagA) { return linkA; }
    IntrusiveLink<Node, TagB> &intrusiveLink(TagB) { return linkB; }
};

using ListA = IntrusiveList<Node, TagA>;
using ListB = IntrusiveList<Node, TagB>;

std::vector<int>
ids(const ListA &l)
{
    std::vector<int> out;
    for (Node *n = l.head(); n != nullptr; n = ListA::next(n))
        out.push_back(n->id);
    return out;
}

} // namespace

TEST(IntrusiveList, StartsEmpty)
{
    ListA l;
    EXPECT_TRUE(l.empty());
    EXPECT_EQ(l.head(), nullptr);
    EXPECT_EQ(l.tail(), nullptr);
    EXPECT_EQ(l.sizeSlow(), 0u);
    EXPECT_EQ(l.popFront(), nullptr);
}

TEST(IntrusiveList, PushBackKeepsOrder)
{
    Node a(1), b(2), c(3);
    ListA l;
    l.pushBack(&a);
    l.pushBack(&b);
    l.pushBack(&c);
    EXPECT_EQ(ids(l), (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(l.head(), &a);
    EXPECT_EQ(l.tail(), &c);
    EXPECT_EQ(l.sizeSlow(), 3u);
    EXPECT_EQ(ListA::prev(&b), &a);
    EXPECT_EQ(ListA::next(&b), &c);
}

TEST(IntrusiveList, PushFrontPrepends)
{
    Node a(1), b(2);
    ListA l;
    l.pushFront(&a);
    l.pushFront(&b);
    EXPECT_EQ(ids(l), (std::vector<int>{2, 1}));
}

TEST(IntrusiveList, InsertAfterEveryPosition)
{
    Node a(1), b(2), c(3), d(4);
    ListA l;
    l.pushBack(&a);
    l.pushBack(&c);
    l.insertAfter(&a, &b);       // middle
    l.insertAfter(&c, &d);       // after tail
    EXPECT_EQ(ids(l), (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(l.tail(), &d);

    Node e(0);
    l.insertAfter(nullptr, &e);  // nullptr position == front
    EXPECT_EQ(ids(l), (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(l.head(), &e);
}

TEST(IntrusiveList, UnlinkHeadMiddleTail)
{
    Node a(1), b(2), c(3), d(4);
    ListA l;
    for (Node *n : {&a, &b, &c, &d})
        l.pushBack(n);

    l.unlink(&b); // middle
    EXPECT_EQ(ids(l), (std::vector<int>{1, 3, 4}));
    // Unlinked node's pointers are reset.
    EXPECT_EQ(ListA::next(&b), nullptr);
    EXPECT_EQ(ListA::prev(&b), nullptr);

    l.unlink(&a); // head
    EXPECT_EQ(ids(l), (std::vector<int>{3, 4}));
    EXPECT_EQ(l.head(), &c);

    l.unlink(&d); // tail
    EXPECT_EQ(ids(l), (std::vector<int>{3}));
    EXPECT_EQ(l.tail(), &c);

    l.unlink(&c); // sole node
    EXPECT_TRUE(l.empty());
    EXPECT_EQ(l.tail(), nullptr);
}

TEST(IntrusiveList, PopFrontDrains)
{
    Node a(1), b(2);
    ListA l;
    l.pushBack(&a);
    l.pushBack(&b);
    EXPECT_EQ(l.popFront(), &a);
    EXPECT_EQ(l.popFront(), &b);
    EXPECT_EQ(l.popFront(), nullptr);
    EXPECT_TRUE(l.empty());
}

TEST(IntrusiveList, SpliceAppendsAndEmptiesSource)
{
    Node a(1), b(2), c(3), d(4);
    ListA l1, l2;
    l1.pushBack(&a);
    l1.pushBack(&b);
    l2.pushBack(&c);
    l2.pushBack(&d);

    l1.splice(l2);
    EXPECT_EQ(ids(l1), (std::vector<int>{1, 2, 3, 4}));
    EXPECT_TRUE(l2.empty());

    // Splicing an empty list is a no-op.
    l1.splice(l2);
    EXPECT_EQ(l1.sizeSlow(), 4u);

    // Splicing into an empty list transfers wholesale.
    ListA l3;
    l3.splice(l1);
    EXPECT_EQ(ids(l3), (std::vector<int>{1, 2, 3, 4}));
    EXPECT_TRUE(l1.empty());
}

TEST(IntrusiveList, TwoTagsIndependentMembership)
{
    // One node on two lists at once through distinct tags — the
    // pattern that lets an Event sit in a calendar bucket while other
    // links remain free for future use.
    Node a(1), b(2), c(3);
    ListA la;
    ListB lb;
    la.pushBack(&a);
    la.pushBack(&b);
    la.pushBack(&c);
    lb.pushBack(&c);
    lb.pushBack(&a);

    EXPECT_EQ(ids(la), (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(lb.head(), &c);
    EXPECT_EQ(ListB::next(&c), &a);

    // Unlinking from one list leaves the other intact.
    la.unlink(&a);
    EXPECT_EQ(ids(la), (std::vector<int>{2, 3}));
    EXPECT_EQ(ListB::next(&c), &a);
    EXPECT_EQ(lb.sizeSlow(), 2u);
}

TEST(IntrusiveList, PoolReuseCycle)
{
    // Free-list pattern: nodes shuttle between a free list and an
    // active list many times without losing integrity.
    Node n0(0), n1(1), n2(2);
    ListA free, active;
    for (Node *n : {&n0, &n1, &n2})
        free.pushFront(n);

    for (int round = 0; round < 100; ++round) {
        while (Node *n = free.popFront())
            active.pushBack(n);
        EXPECT_EQ(active.sizeSlow(), 3u);
        EXPECT_TRUE(free.empty());
        while (Node *n = active.popFront())
            free.pushFront(n);
        EXPECT_EQ(free.sizeSlow(), 3u);
        EXPECT_TRUE(active.empty());
    }
}

TEST(IntrusiveList, ResetDropsWithoutTouchingNodes)
{
    Node a(1), b(2);
    ListA l;
    l.pushBack(&a);
    l.pushBack(&b);
    l.reset();
    EXPECT_TRUE(l.empty());
    // Node links are untouched by reset(); the caller owns re-linking.
    EXPECT_EQ(ListA::next(&a), &b);
}
