/**
 * @file
 * Unit tests for the event-driven simulation engine (paper section
 * 4.2): ordering, priorities, periodic events and the Figure 4
 * three-clock example.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace gals;

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueue, ServiceOneOnEmptyReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.serviceOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    CallbackEvent a([&] { order.push_back(1); }, "a");
    CallbackEvent b([&] { order.push_back(2); }, "b");
    CallbackEvent c([&] { order.push_back(3); }, "c");
    eq.schedule(&c, 30);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTimePriorityBreaksTie)
{
    EventQueue eq;
    std::vector<int> order;
    CallbackEvent lo([&] { order.push_back(1); }, "lo", 10);
    CallbackEvent hi([&] { order.push_back(2); }, "hi", 90);
    eq.schedule(&hi, 5);
    eq.schedule(&lo, 5);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SameTimeSamePriorityInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    CallbackEvent a([&] { order.push_back(1); }, "a");
    CallbackEvent b([&] { order.push_back(2); }, "b");
    CallbackEvent c([&] { order.push_back(3); }, "c");
    eq.schedule(&a, 7);
    eq.schedule(&b, 7);
    eq.schedule(&c, 7);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue eq;
    Tick seen = 0;
    CallbackEvent a([&] { seen = eq.now(); }, "a");
    eq.schedule(&a, 42);
    eq.serviceOne();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    bool ran = false;
    CallbackEvent a([&] { ran = true; }, "a");
    eq.schedule(&a, 10);
    EXPECT_TRUE(a.scheduled());
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.runAll();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    Tick seen = 0;
    CallbackEvent a([&] { seen = eq.now(); }, "a");
    eq.schedule(&a, 10);
    eq.reschedule(&a, 99);
    eq.runAll();
    EXPECT_EQ(seen, 99u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int count = 0;
    CallbackEvent a([&] { ++count; }, "a");
    CallbackEvent b([&] { ++count; }, "b");
    CallbackEvent c([&] { ++count; }, "c");
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.schedule(&c, 30);
    const auto n = eq.runUntil(20);
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, NextEventTime)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTime(), maxTick);
    CallbackEvent a([] {}, "a");
    eq.schedule(&a, 123);
    EXPECT_EQ(eq.nextEventTime(), 123u);
}

TEST(EventQueue, ProcessedCount)
{
    EventQueue eq;
    CallbackEvent a([] {}, "a");
    CallbackEvent b([] {}, "b");
    eq.schedule(&a, 1);
    eq.schedule(&b, 2);
    eq.runAll();
    EXPECT_EQ(eq.processedCount(), 2u);
}

TEST(EventQueue, EventDestructorDeschedules)
{
    EventQueue eq;
    {
        CallbackEvent a([] {}, "a");
        eq.schedule(&a, 10);
    }
    EXPECT_TRUE(eq.empty());
}

TEST(PeriodicEvent, RepeatsWithPeriod)
{
    EventQueue eq;
    std::vector<Tick> times;
    PeriodicEvent p([&] { times.push_back(eq.now()); }, 10, "p");
    eq.schedule(&p, 5);
    eq.runUntil(45);
    EXPECT_EQ(times, (std::vector<Tick>{5, 15, 25, 35, 45}));
}

TEST(PeriodicEvent, CancelRepeatStops)
{
    EventQueue eq;
    int count = 0;
    PeriodicEvent p(
        [&] {
            ++count;
            if (count == 3)
                p.cancelRepeat();
        },
        10, "p");
    eq.schedule(&p, 0);
    eq.runUntil(1000);
    EXPECT_EQ(count, 3);
    EXPECT_TRUE(eq.empty());
}

TEST(PeriodicEvent, PeriodChangeTakesEffectNextCycle)
{
    EventQueue eq;
    std::vector<Tick> times;
    PeriodicEvent p(
        [&] {
            times.push_back(eq.now());
            if (times.size() == 2)
                p.period(50);
        },
        10, "p");
    eq.schedule(&p, 0);
    eq.runUntil(200);
    ASSERT_GE(times.size(), 4u);
    EXPECT_EQ(times[0], 0u);
    EXPECT_EQ(times[1], 10u);
    EXPECT_EQ(times[2], 60u);  // 10 + 50
    EXPECT_EQ(times[3], 110u);
}

/**
 * The paper's Figure 4 example: three clocks with periods 2, 3 and
 * 2.5 ns and phases 0.5, 1.0 and 0.0 ns. Reproduced at picosecond
 * resolution; checks the interleaving over the first 8 ns.
 */
TEST(PeriodicEvent, PaperFigure4ThreeClockExample)
{
    EventQueue eq;
    std::vector<std::pair<int, Tick>> fires;
    PeriodicEvent clk1([&] { fires.emplace_back(1, eq.now()); }, 2000,
                       "clk1");
    PeriodicEvent clk2([&] { fires.emplace_back(2, eq.now()); }, 3000,
                       "clk2");
    PeriodicEvent clk3([&] { fires.emplace_back(3, eq.now()); }, 2500,
                       "clk3");
    eq.schedule(&clk1, 500);
    eq.schedule(&clk2, 1000);
    eq.schedule(&clk3, 0);
    eq.runUntil(8000);

    // Expected edges within [0, 8] ns:
    // clk1: 0.5 2.5 4.5 6.5   clk2: 1 4 7   clk3: 0 2.5 5 7.5
    // At t = 2.5 ns both clk1 and clk3 fire; clk3 rescheduled itself
    // first (it fired at t = 0, before clk1's t = 0.5 edge), so it
    // executes first — ties resolve by reschedule order.
    std::vector<std::pair<int, Tick>> expect = {
        {3, 0},    {1, 500},  {2, 1000}, {3, 2500}, {1, 2500},
        {2, 4000}, {1, 4500}, {3, 5000}, {1, 6500}, {2, 7000},
        {3, 7500},
    };
    ASSERT_EQ(fires.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(fires[i].second, expect[i].second) << "edge " << i;
        EXPECT_EQ(fires[i].first, expect[i].first) << "edge " << i;
    }
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    std::vector<std::unique_ptr<CallbackEvent>> events;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 1000; ++i) {
        events.push_back(std::make_unique<CallbackEvent>([&] {
            if (eq.now() < last)
                monotonic = false;
            last = eq.now();
        }));
        // Deterministic pseudo-scatter of times.
        eq.schedule(events.back().get(), (i * 7919) % 10007);
    }
    eq.runAll();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(eq.processedCount(), 1000u);
}
