/**
 * @file
 * Tests for the backend structures: ROB ordering and squash, issue
 * queue wakeup/selection, LSQ forwarding and the functional unit pool.
 */

#include <gtest/gtest.h>

#include "cpu/fu_pool.hh"
#include "cpu/issue_queue.hh"
#include "cpu/lsq.hh"
#include "cpu/rob.hh"
#include "cpu/scoreboard.hh"

using namespace gals;

namespace
{

DynInstPtr
makeInst(InstSeqNum seq, InstClass cls = InstClass::intAlu)
{
    auto di = std::make_shared<DynInst>();
    di->seq = seq;
    di->cls = cls;
    return di;
}

DynInstPtr
makeDep(InstSeqNum seq, PhysRegId src, std::uint32_t epoch)
{
    auto di = makeInst(seq);
    di->numSrcs = 1;
    di->physSrcs[0] = src;
    di->srcEpochs[0] = epoch;
    return di;
}

} // namespace

// ------------------------------------------------------------------ ROB

TEST(Rob, InsertAndCommitInOrder)
{
    Rob rob(8);
    rob.insert(makeInst(1));
    rob.insert(makeInst(2));
    EXPECT_EQ(rob.head()->seq, 1u);
    rob.popHead();
    EXPECT_EQ(rob.head()->seq, 2u);
}

TEST(Rob, FullDetection)
{
    Rob rob(2);
    rob.insert(makeInst(1));
    EXPECT_FALSE(rob.full());
    rob.insert(makeInst(2));
    EXPECT_TRUE(rob.full());
}

TEST(Rob, MarkCompleted)
{
    Rob rob(4);
    rob.insert(makeInst(1));
    rob.insert(makeInst(2));
    EXPECT_TRUE(rob.markCompleted(2));
    EXPECT_FALSE(rob.head()->completed);
    EXPECT_FALSE(rob.markCompleted(99)); // unknown seq: benign
}

TEST(Rob, SquashAfterRemovesYoungestFirst)
{
    Rob rob(8);
    for (InstSeqNum s = 1; s <= 5; ++s)
        rob.insert(makeInst(s));
    std::vector<InstSeqNum> squashed;
    const unsigned n = rob.squashAfter(
        2, [&squashed](DynInst &d) { squashed.push_back(d.seq); });
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(squashed, (std::vector<InstSeqNum>{5, 4, 3}));
    EXPECT_EQ(rob.size(), 2u);
}

TEST(Rob, SquashSetsFlag)
{
    Rob rob(4);
    auto di = makeInst(3);
    rob.insert(makeInst(1));
    rob.insert(di);
    rob.squashAfter(1, [](DynInst &) {});
    EXPECT_TRUE(di->squashed);
}

// --------------------------------------------------------- Issue queue

TEST(IssueQueue, ReadyAtInsertIssuesImmediately)
{
    Scoreboard sb(16);
    IssueQueue iq("iq", 4, sb);
    auto di = makeDep(1, 3, 0); // epoch 0 always ready
    iq.insert(di);
    const auto sel =
        iq.selectIssue(4, [](const DynInst &) { return true; });
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_EQ(sel[0]->seq, 1u);
    EXPECT_TRUE(iq.empty());
}

TEST(IssueQueue, WaitsForWakeup)
{
    Scoreboard sb(16);
    IssueQueue iq("iq", 4, sb);
    iq.insert(makeDep(1, 3, 5)); // needs epoch 5 of reg 3
    EXPECT_TRUE(iq.selectIssue(4, [](const DynInst &) {
                      return true;
                  }).empty());
    sb.observe(3, 5);
    iq.wakeup(3, 5);
    EXPECT_EQ(iq.selectIssue(4, [](const DynInst &) {
                    return true;
                }).size(),
              1u);
}

TEST(IssueQueue, StaleWakeupIgnored)
{
    Scoreboard sb(16);
    IssueQueue iq("iq", 4, sb);
    iq.insert(makeDep(1, 3, 5));
    iq.wakeup(3, 4); // older epoch: not enough
    EXPECT_TRUE(iq.selectIssue(4, [](const DynInst &) {
                      return true;
                  }).empty());
}

TEST(IssueQueue, OldestFirstSelection)
{
    Scoreboard sb(16);
    IssueQueue iq("iq", 8, sb);
    for (InstSeqNum s = 1; s <= 4; ++s)
        iq.insert(makeDep(s, 0, 0));
    const auto sel =
        iq.selectIssue(2, [](const DynInst &) { return true; });
    ASSERT_EQ(sel.size(), 2u);
    EXPECT_EQ(sel[0]->seq, 1u);
    EXPECT_EQ(sel[1]->seq, 2u);
}

TEST(IssueQueue, FuRejectionSkipsButKeeps)
{
    Scoreboard sb(16);
    IssueQueue iq("iq", 8, sb);
    auto mul = makeInst(1, InstClass::intMult);
    auto alu = makeInst(2, InstClass::intAlu);
    iq.insert(mul);
    iq.insert(alu);
    // Reject multiplies: the younger ALU op issues around it.
    const auto sel = iq.selectIssue(4, [](const DynInst &d) {
        return d.cls != InstClass::intMult;
    });
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_EQ(sel[0]->seq, 2u);
    EXPECT_EQ(iq.size(), 1u);
}

TEST(IssueQueue, SquashAfter)
{
    Scoreboard sb(16);
    IssueQueue iq("iq", 8, sb);
    for (InstSeqNum s = 1; s <= 5; ++s)
        iq.insert(makeDep(s, 0, 0));
    EXPECT_EQ(iq.squashAfter(3), 2u);
    EXPECT_EQ(iq.size(), 3u);
}

TEST(IssueQueue, CapacityEnforced)
{
    Scoreboard sb(16);
    IssueQueue iq("iq", 2, sb);
    iq.insert(makeInst(1));
    iq.insert(makeInst(2));
    EXPECT_TRUE(iq.full());
}

// ---------------------------------------------------------------- LSQ

TEST(Lsq, ForwardFromCompletedOlderStore)
{
    Lsq lsq(8);
    auto st = makeInst(1, InstClass::store);
    st->memAddr = 0x1000;
    st->completed = true;
    auto ld = makeInst(2, InstClass::load);
    ld->memAddr = 0x1008; // same 32B line
    lsq.insert(st);
    lsq.insert(ld);
    EXPECT_TRUE(lsq.loadForwards(ld));
}

TEST(Lsq, NoForwardFromIncompleteStore)
{
    Lsq lsq(8);
    auto st = makeInst(1, InstClass::store);
    st->memAddr = 0x1000;
    auto ld = makeInst(2, InstClass::load);
    ld->memAddr = 0x1000;
    lsq.insert(st);
    lsq.insert(ld);
    EXPECT_FALSE(lsq.loadForwards(ld));
}

TEST(Lsq, NoForwardFromYoungerStore)
{
    Lsq lsq(8);
    auto ld = makeInst(1, InstClass::load);
    ld->memAddr = 0x1000;
    auto st = makeInst(2, InstClass::store);
    st->memAddr = 0x1000;
    st->completed = true;
    lsq.insert(ld);
    lsq.insert(st);
    EXPECT_FALSE(lsq.loadForwards(ld));
}

TEST(Lsq, DifferentLineNoForward)
{
    Lsq lsq(8);
    auto st = makeInst(1, InstClass::store);
    st->memAddr = 0x1000;
    st->completed = true;
    auto ld = makeInst(2, InstClass::load);
    ld->memAddr = 0x1040;
    lsq.insert(st);
    lsq.insert(ld);
    EXPECT_FALSE(lsq.loadForwards(ld));
}

TEST(Lsq, RemoveAndSquash)
{
    Lsq lsq(8);
    auto st = makeInst(1, InstClass::store);
    auto ld = makeInst(2, InstClass::load);
    auto ld2 = makeInst(3, InstClass::load);
    lsq.insert(st);
    lsq.insert(ld);
    lsq.insert(ld2);
    lsq.removeLoad(2);
    EXPECT_EQ(lsq.size(), 2u);
    EXPECT_EQ(lsq.squashAfter(1), 1u);
    lsq.removeStore(1);
    EXPECT_EQ(lsq.size(), 0u);
}

// ------------------------------------------------------------ FU pool

TEST(FuPool, SimpleUnitsPerCycle)
{
    FuPool fu(2, 1, 0);
    fu.newCycle(0);
    EXPECT_TRUE(fu.available(InstClass::intAlu));
    fu.allocate(InstClass::intAlu, 1);
    fu.allocate(InstClass::intAlu, 1);
    EXPECT_FALSE(fu.available(InstClass::intAlu));
    fu.newCycle(1);
    EXPECT_TRUE(fu.available(InstClass::intAlu));
}

TEST(FuPool, BranchesShareSimpleAlus)
{
    FuPool fu(1, 1, 0);
    fu.newCycle(0);
    fu.allocate(InstClass::condBranch, 1);
    EXPECT_FALSE(fu.available(InstClass::intAlu));
}

TEST(FuPool, UnpipelinedDivideBlocksMulGroup)
{
    FuPool fu(4, 1, 0);
    fu.newCycle(0);
    fu.allocate(InstClass::intDiv, 20);
    fu.newCycle(1);
    EXPECT_FALSE(fu.available(InstClass::intMult));
    fu.newCycle(20);
    EXPECT_TRUE(fu.available(InstClass::intMult));
}

TEST(FuPool, PipelinedMultiplyIssuesEveryCycle)
{
    FuPool fu(4, 1, 0);
    fu.newCycle(0);
    fu.allocate(InstClass::intMult, 3);
    fu.newCycle(1);
    EXPECT_TRUE(fu.available(InstClass::intMult));
}

TEST(FuPool, MemPortsIndependent)
{
    FuPool fu(0, 0, 2);
    fu.newCycle(0);
    fu.allocate(InstClass::load, 1);
    fu.allocate(InstClass::store, 1);
    EXPECT_FALSE(fu.available(InstClass::load));
    fu.newCycle(1);
    EXPECT_TRUE(fu.available(InstClass::store));
}

// -------------------------------------------------------- Scoreboard

TEST(Scoreboard, EpochSemantics)
{
    Scoreboard sb(8);
    EXPECT_TRUE(sb.ready(3, 0));  // initial values ready
    EXPECT_FALSE(sb.ready(3, 1)); // allocated epoch pending
    sb.observe(3, 1);
    EXPECT_TRUE(sb.ready(3, 1));
    sb.observe(3, 0); // stale observe cannot regress
    EXPECT_TRUE(sb.ready(3, 1));
}
