/**
 * @file
 * Tests for the deterministic RNG: reproducibility, ranges and
 * first-moment sanity of the distributions the workload generator
 * relies on.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"

using namespace gals;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedResets)
{
    Rng a(7);
    const auto first = a.next64();
    a.next64();
    a.seed(7);
    EXPECT_EQ(a.next64(), first);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(3, 7);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 7u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeSingleValue)
{
    Rng r(9);
    EXPECT_EQ(r.range(5, 5), 5u);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.3))
            ++hits;
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanAndMinimum)
{
    Rng r(19);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const unsigned v = r.geometric(4.0);
        ASSERT_GE(v, 1u);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, GeometricMeanOneDegenerates)
{
    Rng r(23);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.geometric(1.0), 1u);
}

TEST(Rng, GaussianMoments)
{
    Rng r(29);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double v = r.gaussian(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}
