/**
 * @file
 * Tests for the power models: positivity and monotonicity of the
 * analytic capacitance models, clock-grid energies, the per-unit
 * energy table, voltage-squared scaling and the conditional-clocking
 * (10% idle) accounting of EnergyAccount.
 */

#include <gtest/gtest.h>

#include "cpu/core_config.hh"
#include "power/array_model.hh"
#include "power/bus_model.hh"
#include "power/cam_model.hh"
#include "power/clock_grid.hh"
#include "power/energy_account.hh"
#include "power/logic_model.hh"
#include "power/power_model.hh"

using namespace gals;

namespace
{

const TechParams &tech = defaultTech();

PowerModel
makeModel()
{
    CoreConfig core;
    return PowerModel(core, tech, defaultClockHierarchy());
}

} // namespace

TEST(ArrayModel, PositiveEnergy)
{
    ArrayGeometry g{64, 64, 1, 1};
    EXPECT_GT(arrayAccessEnergyNj(g, tech), 0.0);
}

TEST(ArrayModel, MonotonicInRowsAndCols)
{
    ArrayGeometry small{32, 64, 1, 1};
    ArrayGeometry tall{128, 64, 1, 1};
    ArrayGeometry wide{32, 256, 1, 1};
    const double e0 = arrayAccessEnergyNj(small, tech);
    EXPECT_GT(arrayAccessEnergyNj(tall, tech), e0);
    EXPECT_GT(arrayAccessEnergyNj(wide, tech), e0);
}

TEST(ArrayModel, PortsCostEnergy)
{
    ArrayGeometry p1{64, 64, 1, 1};
    ArrayGeometry p8{64, 64, 8, 4};
    EXPECT_GT(arrayAccessEnergyNj(p8, tech),
              arrayAccessEnergyNj(p1, tech));
}

TEST(ArrayModel, CacheSubBankingKeepsBigCachesReasonable)
{
    // A 16x larger cache must cost more than a small one, but far less
    // than 16x (sub-banking activates one bank + routing).
    const double e16k = cacheAccessEnergyNj(16 * 1024, 128, 4, 32, tech);
    const double e256k =
        cacheAccessEnergyNj(256 * 1024, 2048, 4, 32, tech);
    EXPECT_GT(e256k, e16k);
    EXPECT_LT(e256k, 8.0 * e16k);
}

TEST(CamModel, GrowsWithEntriesAndTagBits)
{
    const double e = camSearchEnergyNj(16, 8, tech);
    EXPECT_GT(camSearchEnergyNj(32, 8, tech), e);
    EXPECT_GT(camSearchEnergyNj(16, 16, tech), e);
    EXPECT_GT(camWriteEnergyNj(16, 80, tech), 0.0);
}

TEST(LogicModel, RelativeOpCosts)
{
    const double add = fuOpEnergyNj(InstClass::intAlu, tech);
    EXPECT_GT(add, 0.0);
    EXPECT_GT(fuOpEnergyNj(InstClass::intMult, tech), add);
    EXPECT_GT(fuOpEnergyNj(InstClass::fpDiv, tech),
              fuOpEnergyNj(InstClass::fpMult, tech));
    EXPECT_LT(fuOpEnergyNj(InstClass::load, tech), add);
}

TEST(BusModel, ScalesWithBitsAndLength)
{
    const double e = busTransferEnergyNj(64, 5.0, tech);
    EXPECT_NEAR(busTransferEnergyNj(128, 5.0, tech), 2 * e, 1e-9);
    EXPECT_NEAR(busTransferEnergyNj(64, 10.0, tech), 2 * e, 1e-9);
}

TEST(ClockGrid, EnergyQuadraticInVdd)
{
    const ClockGridSpec spec{1.0, 10000.0};
    const double e15 = clockGridEnergyPerCycleNj(spec, 1.5, tech);
    const double e075 = clockGridEnergyPerCycleNj(spec, 0.75, tech);
    EXPECT_NEAR(e15 / e075, 4.0, 1e-9);
}

TEST(ClockGrid, GlobalIsSignificantShareOfHierarchy)
{
    // The global grid must be a significant (~10-25%) share of total
    // clock energy: that share is exactly what the GALS design saves
    // (calibrated so it is ~10% of *total* chip power, see the paper's
    // Figure 9/10 discussion).
    const auto &h = defaultClockHierarchy();
    const double g = clockGridEnergyPerCycleNj(h.global, 1.5, tech);
    double total = g;
    for (const auto *local :
         {&h.fetch, &h.decode, &h.intCore, &h.fpCore, &h.memCore})
        total += clockGridEnergyPerCycleNj(*local, 1.5, tech);
    EXPECT_GT(g / total, 0.10);
    EXPECT_LT(g / total, 0.40);
}

TEST(PowerModel, AllUnitsHavePositiveEnergy)
{
    const PowerModel pm = makeModel();
    for (unsigned i = 0; i < numUnits; ++i)
        EXPECT_GT(pm.accessEnergyNj(static_cast<Unit>(i)), 0.0)
            << unitName(static_cast<Unit>(i));
}

TEST(PowerModel, L2CostsMoreThanL1)
{
    const PowerModel pm = makeModel();
    EXPECT_GT(pm.accessEnergyNj(Unit::l2cache),
              pm.accessEnergyNj(Unit::dcache));
}

TEST(PowerModel, UnitDomainAssignmentsMatchPaperPartitioning)
{
    EXPECT_EQ(unitDomain(Unit::icache), DomainId::fetch);
    EXPECT_EQ(unitDomain(Unit::bpred), DomainId::fetch);
    EXPECT_EQ(unitDomain(Unit::renameTable), DomainId::decode);
    EXPECT_EQ(unitDomain(Unit::rob), DomainId::decode);
    EXPECT_EQ(unitDomain(Unit::intAlu), DomainId::intd);
    EXPECT_EQ(unitDomain(Unit::fpIssueQueue), DomainId::fpd);
    EXPECT_EQ(unitDomain(Unit::dcache), DomainId::memd);
    EXPECT_EQ(unitDomain(Unit::l2cache), DomainId::memd);
}

TEST(PowerModel, ClockUnitClassification)
{
    EXPECT_TRUE(isClockUnit(Unit::globalClock));
    EXPECT_TRUE(isClockUnit(Unit::memClock));
    EXPECT_FALSE(isClockUnit(Unit::dcache));
    EXPECT_EQ(clockUnitOf(DomainId::fetch), Unit::fetchClock);
    EXPECT_EQ(clockUnitOf(DomainId::memd), Unit::memClock);
}

TEST(EnergyAccount, ActiveChargesPerAccess)
{
    const PowerModel pm = makeModel();
    EnergyAccount ea(pm);
    ea.chargeAccess(Unit::intAlu, 3);
    ea.domainCycle(DomainId::intd, tech.vddNominal);
    const double expect = 3 * pm.accessEnergyNj(Unit::intAlu);
    // The cycle also charges idle fractions of the other int-domain
    // units plus the int clock grid.
    EXPECT_NEAR(ea.unitEnergyNj(Unit::intAlu), expect, 1e-9);
}

TEST(EnergyAccount, IdleChargesTenPercent)
{
    const PowerModel pm = makeModel();
    EnergyAccount ea(pm);
    ea.domainCycle(DomainId::intd, tech.vddNominal);
    EXPECT_NEAR(ea.unitEnergyNj(Unit::intAlu),
                0.10 * pm.accessEnergyNj(Unit::intAlu), 1e-9);
}

TEST(EnergyAccount, ClockChargedEveryCycle)
{
    const PowerModel pm = makeModel();
    EnergyAccount ea(pm);
    for (int i = 0; i < 5; ++i)
        ea.domainCycle(DomainId::fetch, tech.vddNominal);
    EXPECT_NEAR(ea.unitEnergyNj(Unit::fetchClock),
                5 * pm.accessEnergyNj(Unit::fetchClock), 1e-9);
}

TEST(EnergyAccount, VoltageScalingQuadratic)
{
    const PowerModel pm = makeModel();
    EnergyAccount hi(pm), lo(pm);
    hi.chargeAccess(Unit::fpAlu, 1);
    hi.domainCycle(DomainId::fpd, 1.5);
    lo.chargeAccess(Unit::fpAlu, 1);
    lo.domainCycle(DomainId::fpd, 0.75);
    EXPECT_NEAR(hi.unitEnergyNj(Unit::fpAlu) /
                    lo.unitEnergyNj(Unit::fpAlu),
                4.0, 1e-9);
}

TEST(EnergyAccount, CountersClearAfterCycle)
{
    const PowerModel pm = makeModel();
    EnergyAccount ea(pm);
    ea.chargeAccess(Unit::dcache, 2);
    ea.domainCycle(DomainId::memd, tech.vddNominal);
    const double after_first = ea.unitEnergyNj(Unit::dcache);
    ea.domainCycle(DomainId::memd, tech.vddNominal);
    // Second cycle: idle only.
    EXPECT_NEAR(ea.unitEnergyNj(Unit::dcache) - after_first,
                0.10 * pm.accessEnergyNj(Unit::dcache), 1e-9);
}

TEST(EnergyAccount, OtherDomainsUntouched)
{
    const PowerModel pm = makeModel();
    EnergyAccount ea(pm);
    ea.chargeAccess(Unit::icache, 1);
    ea.domainCycle(DomainId::memd, tech.vddNominal); // wrong domain
    EXPECT_DOUBLE_EQ(ea.unitEnergyNj(Unit::icache), 0.0);
    ea.domainCycle(DomainId::fetch, tech.vddNominal);
    EXPECT_NEAR(ea.unitEnergyNj(Unit::icache),
                pm.accessEnergyNj(Unit::icache), 1e-9);
}

TEST(EnergyAccount, GlobalClockAndTotals)
{
    const PowerModel pm = makeModel();
    EnergyAccount ea(pm);
    ea.globalClockCycle(tech.vddNominal);
    EXPECT_NEAR(ea.unitEnergyNj(Unit::globalClock),
                pm.accessEnergyNj(Unit::globalClock), 1e-9);
    EXPECT_NEAR(ea.clockEnergyNj(), ea.totalNj(), 1e-9);
    ea.reset();
    EXPECT_DOUBLE_EQ(ea.totalNj(), 0.0);
}

TEST(EnergyAccount, ImmediateChargesBypassGating)
{
    const PowerModel pm = makeModel();
    EnergyAccount ea(pm);
    ea.chargeImmediate(Unit::fifo, 10, tech.vddNominal);
    EXPECT_NEAR(ea.unitEnergyNj(Unit::fifo),
                10 * pm.accessEnergyNj(Unit::fifo), 1e-9);
}
