/**
 * @file
 * Warm-state checkpointing tests (core/snapshot.hh): per-unit
 * save/restore round trips, strict rejection of damaged or foreign
 * snapshot bytes, the warmup-key sharing rules, the disk cache's
 * tolerance of stale/partial files, and the headline contract — a
 * memoized warm run is byte-identical to the same sweep run cold,
 * on both event-queue engines, at any job count.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "bpred/bpred.hh"
#include "cache/cache.hh"
#include "core/snapshot.hh"
#include "cpu/rename.hh"
#include "runner/engine.hh"
#include "runner/reporter.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/snapshot_io.hh"
#include "workload/generator.hh"

using namespace gals;

namespace
{

/** A fresh machine for the config, built exactly as runOne builds
 *  the measured-region machine. */
struct Machine
{
    explicit Machine(const RunConfig &cfg)
        : eq("eq.snaptest"),
          proc(eq, procCfg(cfg), findBenchmark(cfg.benchmark),
               cfg.seed)
    {
    }

    static ProcessorConfig
    procCfg(const RunConfig &cfg)
    {
        ProcessorConfig pc = cfg.proc;
        pc.gals = cfg.gals;
        pc.dvfs = cfg.gals ? cfg.dvfs : DvfsSetting();
        pc.phaseSeed = effectivePhaseSeed(cfg);
        return pc;
    }

    EventQueue eq;
    Processor proc;
};

RunConfig
warmCfg()
{
    RunConfig cfg;
    cfg.benchmark = "gcc";
    cfg.gals = true;
    cfg.instructions = 6000;
    cfg.warmupInstructions = 4000;
    cfg.seed = 7;
    return cfg;
}

/** A 4-cell DVFS sweep sharing one warmup stem. */
std::vector<RunConfig>
warmGrid()
{
    std::vector<RunConfig> cfgs;
    for (const double slow : {1.0, 1.2, 1.5, 2.0}) {
        RunConfig cfg = warmCfg();
        cfg.dvfs.slowdown[domainIndex(DomainId::fpd)] = slow;
        cfgs.push_back(cfg);
    }
    return cfgs;
}

/** Run the warm grid and serialize every record to JSON lines. */
std::string
gridJson(QueueEngine engine, unsigned jobs, bool coldStart)
{
    const QueueEngine prev = EventQueue::defaultEngine();
    EventQueue::setDefaultEngine(engine);
    if (coldStart)
        clearSnapshotCache();
    const std::vector<RunConfig> cfgs = warmGrid();
    const std::vector<RunResults> results =
        runner::ExperimentEngine(jobs).run(cfgs);
    EventQueue::setDefaultEngine(prev);
    std::ostringstream os;
    runner::writeJsonLines(os, "warm-grid", cfgs, results);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// Per-unit round trips
// ---------------------------------------------------------------------

TEST(SnapshotRoundTrip, RngContinuesBitExactly)
{
    Rng a(123);
    for (int i = 0; i < 1000; ++i)
        a.next64();
    a.gaussian(0.0, 1.0); // leave a Box-Muller spare in flight

    SnapshotWriter w;
    a.snapshotSave(w);

    Rng b(999);
    SnapshotReader r(w.bytes());
    b.snapshotRestore(r);
    ASSERT_TRUE(r.ok()) << r.error();
    ASSERT_TRUE(r.atEnd());

    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
    EXPECT_EQ(a.gaussian(1.0, 2.0), b.gaussian(1.0, 2.0));
}

TEST(SnapshotRoundTrip, CacheStateIsIdentical)
{
    Cache a("a", 16 * 1024, 4, 32, 1);
    Rng rng(5);
    for (int i = 0; i < 3000; ++i) {
        bool writeback = false;
        a.access(rng.range(0, 1 << 18), rng.chance(0.3), writeback);
    }

    SnapshotWriter wa;
    a.snapshotSave(wa);

    Cache b("b", 16 * 1024, 4, 32, 1);
    SnapshotReader r(wa.bytes());
    b.snapshotRestore(r);
    ASSERT_TRUE(r.ok()) << r.error();

    SnapshotWriter wb;
    b.snapshotSave(wb);
    EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(SnapshotRoundTrip, BranchUnitStateIsIdentical)
{
    BranchUnit a;
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t pc = 0x400000 + 4 * rng.range(0, 500);
        a.predict(pc, InstClass::condBranch);
        a.update(pc, InstClass::condBranch, rng.chance(0.6), pc + 64);
    }

    SnapshotWriter wa;
    a.snapshotSave(wa);

    BranchUnit b;
    SnapshotReader r(wa.bytes());
    b.snapshotRestore(r);
    ASSERT_TRUE(r.ok()) << r.error();

    SnapshotWriter wb;
    b.snapshotSave(wb);
    EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(SnapshotRoundTrip, BranchUnitRejectsCrossKindRestore)
{
    BranchUnit::Config gshareCfg;
    gshareCfg.kind = "gshare";
    BranchUnit a(gshareCfg);

    SnapshotWriter w;
    a.snapshotSave(w);

    BranchUnit b; // combining
    SnapshotReader r(w.bytes());
    b.snapshotRestore(r);
    EXPECT_FALSE(r.ok());
}

TEST(SnapshotRoundTrip, RenameStateIsIdentical)
{
    RenameUnit a(80, 72);
    // Exercise the RAT, free lists and epochs through the public API:
    // rename + commit a stream of ALU ops over rotating registers.
    for (int i = 0; i < 200; ++i) {
        DynInst inst;
        inst.cls = InstClass::intAlu;
        inst.numSrcs = 1;
        inst.srcs[0] = static_cast<RegId>(i % numArchIntRegs);
        inst.dest = static_cast<RegId>((i * 7 + 3) % numArchIntRegs);
        ASSERT_TRUE(a.canRename(inst));
        a.rename(inst);
        a.commitFree(inst);
    }

    SnapshotWriter wa;
    a.snapshotSave(wa);

    RenameUnit b(80, 72);
    SnapshotReader r(wa.bytes());
    b.snapshotRestore(r);
    ASSERT_TRUE(r.ok()) << r.error();

    SnapshotWriter wb;
    b.snapshotSave(wb);
    EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(SnapshotRoundTrip, GeneratorContinuesBitExactly)
{
    const BenchmarkProfile &profile = findBenchmark("gcc");
    StreamGenerator a(profile, 5);
    for (int i = 0; i < 5000; ++i)
        a.next();

    SnapshotWriter w;
    a.snapshotSave(w);

    StreamGenerator b(profile, 5);
    SnapshotReader r(w.bytes());
    b.snapshotRestore(r);
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(a.generated(), b.generated());

    for (int i = 0; i < 2000; ++i) {
        const GenInst &ga = a.next();
        const GenInst &gb = b.next();
        ASSERT_EQ(ga.pc, gb.pc);
        ASSERT_EQ(static_cast<int>(ga.cls), static_cast<int>(gb.cls));
        ASSERT_EQ(ga.taken, gb.taken);
        ASSERT_EQ(ga.target, gb.target);
        ASSERT_EQ(ga.memAddr, gb.memAddr);
        ASSERT_EQ(ga.dest, gb.dest);
    }
}

TEST(SnapshotRoundTrip, GeneratorRejectsForeignProgramShape)
{
    StreamGenerator a(findBenchmark("gcc"), 5);
    for (int i = 0; i < 100; ++i)
        a.next();
    SnapshotWriter w;
    a.snapshotSave(w);

    StreamGenerator b(findBenchmark("swim"), 5);
    SnapshotReader r(w.bytes());
    b.snapshotRestore(r);
    EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------
// Container format: production, determinism, rejection
// ---------------------------------------------------------------------

TEST(SnapshotFormat, ProductionIsDeterministic)
{
    const RunConfig cfg = warmCfg();
    EXPECT_EQ(produceWarmupSnapshot(cfg), produceWarmupSnapshot(cfg));
}

TEST(SnapshotFormat, FullSnapshotRestores)
{
    const RunConfig cfg = warmCfg();
    const std::string bytes = produceWarmupSnapshot(cfg);

    Machine m(cfg);
    std::string err;
    EXPECT_TRUE(restoreWarmMachine(m.proc, cfg, bytes, &err)) << err;
    EXPECT_TRUE(m.proc.quiescentForSnapshot());
}

TEST(SnapshotFormat, TruncatedBytesAreRejected)
{
    const RunConfig cfg = warmCfg();
    const std::string bytes = produceWarmupSnapshot(cfg);

    for (const std::size_t cut :
         {std::size_t(0), std::size_t(3), bytes.size() / 3,
          bytes.size() / 2, bytes.size() - 1}) {
        Machine m(cfg);
        std::string err;
        EXPECT_FALSE(restoreWarmMachine(
            m.proc, cfg, std::string_view(bytes).substr(0, cut), &err))
            << "cut at " << cut;
        EXPECT_FALSE(err.empty());
    }
}

TEST(SnapshotFormat, TrailingGarbageIsRejected)
{
    const RunConfig cfg = warmCfg();
    std::string bytes = produceWarmupSnapshot(cfg);
    bytes += "junk";
    Machine m(cfg);
    std::string err;
    EXPECT_FALSE(restoreWarmMachine(m.proc, cfg, bytes, &err));
}

TEST(SnapshotFormat, VersionMismatchIsRejected)
{
    // A header claiming a future format version must be rejected
    // before any machine state is parsed.
    SnapshotWriter w;
    w.str("GSNP");
    w.u64(snapshotFormatVersion + 1);
    w.str(galssimVersion());

    const RunConfig cfg = warmCfg();
    Machine m(cfg);
    std::string err;
    EXPECT_FALSE(restoreWarmMachine(m.proc, cfg, w.bytes(), &err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(SnapshotFormat, ForeignMagicIsRejected)
{
    const RunConfig cfg = warmCfg();
    Machine m(cfg);
    std::string err;
    EXPECT_FALSE(restoreWarmMachine(
        m.proc, cfg, "this is not a snapshot at all", &err));
}

TEST(SnapshotFormat, WrongStemKeyIsRejected)
{
    const RunConfig cfg = warmCfg();
    const std::string bytes = produceWarmupSnapshot(cfg);

    RunConfig other = cfg;
    other.seed = cfg.seed + 1; // different warmup stem
    Machine m(other);
    std::string err;
    EXPECT_FALSE(restoreWarmMachine(m.proc, other, bytes, &err));
    EXPECT_NE(err.find("warmup key"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// Warmup-key sharing rules
// ---------------------------------------------------------------------

TEST(WarmupKey, MeasuredRegionAxesShareAStem)
{
    const RunConfig base = warmCfg();
    const std::uint64_t key = warmupKeyHash(base);

    RunConfig dvfs = base;
    dvfs.dvfs.slowdown[domainIndex(DomainId::fpd)] = 2.0;
    EXPECT_EQ(warmupKeyHash(dvfs), key);

    RunConfig phase = base;
    phase.phaseSeed = 99;
    EXPECT_EQ(warmupKeyHash(phase), key);

    RunConfig longer = base;
    longer.instructions = base.instructions * 3;
    EXPECT_EQ(warmupKeyHash(longer), key);

    RunConfig metered = base;
    metered.intervalTicks = 5000;
    EXPECT_EQ(warmupKeyHash(metered), key);

    RunConfig dynamic = base;
    dynamic.dynamicDvfs = true;
    EXPECT_EQ(warmupKeyHash(dynamic), key);
}

TEST(WarmupKey, WarmupDefiningAxesSplitStems)
{
    const RunConfig base = warmCfg();
    const std::uint64_t key = warmupKeyHash(base);

    RunConfig bench = base;
    bench.benchmark = "swim";
    EXPECT_NE(warmupKeyHash(bench), key);

    RunConfig seed = base;
    seed.seed = base.seed + 1;
    EXPECT_NE(warmupKeyHash(seed), key);

    RunConfig len = base;
    len.warmupInstructions = base.warmupInstructions / 2;
    EXPECT_NE(warmupKeyHash(len), key);

    RunConfig sync = base;
    sync.gals = false;
    EXPECT_NE(warmupKeyHash(sync), key);
}

TEST(WarmupKey, RunHashGatesOnWarmupLikeFabricAndMeter)
{
    RunConfig plain = warmCfg();
    plain.warmupInstructions = 0;
    RunConfig warm = warmCfg();
    // The gated section must change the run hash when present...
    EXPECT_NE(runConfigHash(plain), runConfigHash(warm));
    // ...and two different splits must hash differently.
    RunConfig other = warm;
    other.warmupInstructions = warm.warmupInstructions / 2;
    EXPECT_NE(runConfigHash(warm), runConfigHash(other));
}

// ---------------------------------------------------------------------
// The headline contract: cold == memoized, across engines and jobs
// ---------------------------------------------------------------------

TEST(WarmSweep, ColdEqualsMemoizedAcrossEnginesAndJobs)
{
    const std::string reference =
        gridJson(QueueEngine::calendar, 1, /*coldStart=*/true);
    ASSERT_FALSE(reference.empty());

    // Memoized rerun, same engine, serial.
    EXPECT_EQ(reference, gridJson(QueueEngine::calendar, 1, false));
    // Cold again under 8 jobs: cells race for one stem.
    EXPECT_EQ(reference, gridJson(QueueEngine::calendar, 8, true));
    // Heap engine, cold and memoized, serial and parallel.
    EXPECT_EQ(reference, gridJson(QueueEngine::heap, 1, true));
    EXPECT_EQ(reference, gridJson(QueueEngine::heap, 8, false));
}

TEST(WarmSweep, MeasuredRegionCoversOnlyMeasuredInstructions)
{
    RunConfig cfg = warmCfg();
    clearSnapshotCache();
    const RunResults r = runOne(cfg);
    EXPECT_EQ(r.committed, cfg.instructions - cfg.warmupInstructions);
    EXPECT_GT(r.ticks, 0u);
}

// ---------------------------------------------------------------------
// Disk cache: atomicity, staleness, partial files
// ---------------------------------------------------------------------

class SnapshotDirTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "galssim_snaptest";
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        setSnapshotDir(dir_.string());
        clearSnapshotCache();
    }

    void
    TearDown() override
    {
        setSnapshotDir("");
        clearSnapshotCache();
        std::filesystem::remove_all(dir_);
    }

    std::filesystem::path dir_;
};

TEST_F(SnapshotDirTest, ProducerWritesReusableFile)
{
    const RunConfig cfg = warmCfg();
    const auto bytes = acquireWarmupSnapshot(cfg);
    ASSERT_TRUE(bytes && !bytes->empty());

    const std::string path =
        snapshotPathFor(dir_.string(), warmupKeyHash(cfg));
    ASSERT_TRUE(std::filesystem::exists(path));

    // A fresh process (simulated by clearing the in-memory cache)
    // loads the same bytes back from disk.
    clearSnapshotCache();
    const auto reloaded = acquireWarmupSnapshot(cfg);
    EXPECT_EQ(*bytes, *reloaded);
    // No temp files left behind by the atomic writer.
    for (const auto &e : std::filesystem::directory_iterator(dir_))
        EXPECT_EQ(e.path().extension(), ".gsnp") << e.path();
}

TEST_F(SnapshotDirTest, PartialFileIsIgnoredAndRewritten)
{
    const RunConfig cfg = warmCfg();
    const auto bytes = acquireWarmupSnapshot(cfg);
    const std::string path =
        snapshotPathFor(dir_.string(), warmupKeyHash(cfg));

    // Simulate a crash mid-write: truncate the file.
    std::filesystem::resize_file(path,
                                 std::filesystem::file_size(path) / 2);
    clearSnapshotCache();
    const auto again = acquireWarmupSnapshot(cfg);
    EXPECT_EQ(*bytes, *again);
    EXPECT_EQ(std::filesystem::file_size(path), bytes->size());
}

TEST_F(SnapshotDirTest, StaleGarbageFileIsIgnored)
{
    const RunConfig cfg = warmCfg();
    const std::string path =
        snapshotPathFor(dir_.string(), warmupKeyHash(cfg));
    {
        std::ofstream os(path, std::ios::binary);
        os << "stale bytes from another simulator version";
    }
    const auto bytes = acquireWarmupSnapshot(cfg);
    ASSERT_TRUE(bytes && !bytes->empty());

    Machine m(cfg);
    std::string err;
    EXPECT_TRUE(restoreWarmMachine(m.proc, cfg, *bytes, &err)) << err;
}
