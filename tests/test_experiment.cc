/**
 * @file
 * Paper-shape integration tests: the qualitative results of every
 * figure must hold — GALS loses performance but not catastrophically,
 * per-cycle power drops (global clock eliminated), energy does not
 * drop much (overheads offset the clock saving), slip and speculation
 * grow, and per-domain DVFS trades performance for energy.
 *
 * Bands are deliberately loose: these tests pin the *shape* of the
 * reproduction, not exact numbers.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "dvfs/dvfs_policy.hh"

using namespace gals;

namespace
{

constexpr std::uint64_t testInsts = 12000;

const PairResults &
gccPair()
{
    static const PairResults pr = runPair("gcc", testInsts);
    return pr;
}

} // namespace

TEST(PaperShape, GalsIsSlowerWithinBand)
{
    // Paper Figure 5: 5-15% slowdown. Allow 2-25%.
    const double perf =
        gccPair().galsRun.ipcNominal / gccPair().base.ipcNominal;
    EXPECT_LT(perf, 0.98);
    EXPECT_GT(perf, 0.75);
}

TEST(PaperShape, GalsPowerIsLower)
{
    // Paper Figure 9: per-cycle/average power drops ~10%.
    EXPECT_LT(gccPair().powerRatio(), 0.97);
    EXPECT_GT(gccPair().powerRatio(), 0.70);
}

TEST(PaperShape, GalsEnergyDoesNotDropMuch)
{
    // Paper Figure 9: energy is about the same (±1% on average);
    // "elimination of the global clock is not in itself a solution
    // for low power".
    EXPECT_GT(gccPair().energyRatio(), 0.90);
    EXPECT_LT(gccPair().energyRatio(), 1.15);
}

TEST(PaperShape, SlipGrows)
{
    // Paper Figure 6.
    EXPECT_GT(gccPair().slipRatio(), 1.0);
}

TEST(PaperShape, FifoResidencyExplainsOnlyPartOfSlipGrowth)
{
    // Paper Figure 7: slip growth exceeds FIFO residency alone.
    const auto &pr = gccPair();
    EXPECT_GT(pr.galsRun.avgFifoSlipCycles, 0.0);
    EXPECT_LT(pr.galsRun.avgFifoSlipCycles,
              pr.galsRun.avgSlipCycles);
}

TEST(PaperShape, SpeculationGrows)
{
    // Paper Figure 8: more wrong-path work in GALS.
    EXPECT_GT(gccPair().galsRun.misspecFraction,
              gccPair().base.misspecFraction * 0.95);
}

TEST(PaperShape, GlobalClockShareIsAbout10Percent)
{
    double total = 0.0;
    for (const auto &[u, nj] : gccPair().base.unitEnergyNj)
        total += nj;
    const double share =
        gccPair().base.unitEnergyNj.at("global_clock") / total;
    EXPECT_GT(share, 0.05);
    EXPECT_LT(share, 0.20);
}

TEST(PaperShape, FppppLeastAffectedAmongTested)
{
    // Paper: fpppp has the lowest performance hit (fewest branches).
    const PairResults fp = runPair("fpppp", testInsts);
    const PairResults go = runPair("go", testInsts);
    const double perf_fp =
        fp.galsRun.ipcNominal / fp.base.ipcNominal;
    const double perf_go =
        go.galsRun.ipcNominal / go.base.ipcNominal;
    EXPECT_GT(perf_fp, perf_go - 0.03);
}

TEST(PaperShape, DvfsTradesPerformanceForEnergy)
{
    // Paper Figure 13: gcc with a slow FP clock saves energy & power.
    const PairResults pr =
        runPair("gcc", testInsts, gccFpPolicy(1).setting);
    EXPECT_LT(pr.energyRatio(), gccPair().energyRatio());
    EXPECT_LT(pr.powerRatio(), gccPair().powerRatio());
    EXPECT_LT(pr.galsRun.ipcNominal, pr.base.ipcNominal);
}

TEST(PaperShape, GccInsensitiveToFpSlowdownDepth)
{
    // Paper Figure 13: gals-1 vs gals-2 perform nearly identically.
    const PairResults g1 =
        runPair("gcc", testInsts, gccFpPolicy(1).setting);
    const PairResults g2 =
        runPair("gcc", testInsts, gccFpPolicy(2).setting);
    const double p1 = g1.galsRun.ipcNominal / g1.base.ipcNominal;
    const double p2 = g2.galsRun.ipcNominal / g2.base.ipcNominal;
    EXPECT_NEAR(p1, p2, 0.03);
}

TEST(PaperShape, IjpegMemorySlowdownIsPoorTradeoff)
{
    // Paper Figure 12: more memory slowdown hurts performance more
    // than it saves energy relative to the ideal bound.
    const PairResults g00 =
        runPair("ijpeg", testInsts, ijpegSweepPolicy(0).setting);
    const PairResults g50 =
        runPair("ijpeg", testInsts, ijpegSweepPolicy(50).setting);
    const double p00 =
        g00.galsRun.ipcNominal / g00.base.ipcNominal;
    const double p50 =
        g50.galsRun.ipcNominal / g50.base.ipcNominal;
    EXPECT_LT(p50, p00); // deeper slowdown is slower
    const IdealScaling ideal50 =
        idealScalingForPerf(p50, defaultTech());
    // GALS energy sits well above the ideal bound at that perf.
    EXPECT_GT(g50.energyRatio(), ideal50.energyFactor + 0.05);
}

TEST(PaperShape, PhaseSensitivityIsSmall)
{
    // Paper section 5.1: ~0.5% variation with clock phase.
    double mn = 1e30, mx = 0;
    for (unsigned s = 0; s < 4; ++s) {
        RunConfig rc;
        rc.benchmark = "adpcm";
        rc.instructions = 8000;
        rc.gals = true;
        rc.phaseSeed = 100 + s;
        const RunResults r = runOne(rc);
        mn = std::min(mn, r.ipcNominal);
        mx = std::max(mx, r.ipcNominal);
    }
    EXPECT_LT((mx - mn) / mn, 0.05); // small, not zero
    EXPECT_GT(mx, mn);               // but phases do matter
}

TEST(PaperShape, VoltageScalingRequiredForSavings)
{
    // Without voltage scaling, slowing a clock saves little energy.
    DvfsSetting no_scale = gccFpPolicy(1).setting;
    no_scale.scaleVoltage = false;
    const PairResults off =
        runPair("gcc", testInsts, no_scale);
    const PairResults on =
        runPair("gcc", testInsts, gccFpPolicy(1).setting);
    EXPECT_LT(on.energyRatio(), off.energyRatio());
}

TEST(Experiment, ResultsAreInternallyConsistent)
{
    RunConfig rc;
    rc.benchmark = "epic";
    rc.instructions = 8000;
    const RunResults r = runOne(rc);
    EXPECT_EQ(r.committed, 8000u);
    EXPECT_NEAR(r.avgPowerW, r.energyJ / r.timeSec, 1e-9);
    EXPECT_NEAR(r.ipcNominal,
                r.committed /
                    (r.timeSec * 1e12 / 1000.0 /* cycles */),
                1e-6);
    double total = 0;
    for (const auto &[u, nj] : r.unitEnergyNj)
        total += nj;
    EXPECT_NEAR(total * 1e-9, r.energyJ, r.energyJ * 1e-6);
}

TEST(Experiment, SameSeedSameResults)
{
    RunConfig rc;
    rc.benchmark = "g721";
    rc.instructions = 6000;
    rc.gals = true;
    const RunResults a = runOne(rc);
    const RunResults b = runOne(rc);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
}
