/**
 * @file
 * Tests for the mixed-clock Channel — the paper's central mechanism.
 *
 * Covers: synchronous-latch semantics (1-cycle visibility, immediate
 * slot reuse), asynchronous-FIFO semantics (empty-flag synchronizer
 * latency, delayed full-flag slot release, steady-state streaming
 * throughput), ordering/no-loss properties under parameterized period
 * ratios, and squash behaviour.
 */

#include <gtest/gtest.h>

#include <deque>
#include <tuple>

#include "core/channel.hh"

using namespace gals;

namespace
{

struct Harness
{
    EventQueue eq;
    ClockDomain prod;
    ClockDomain cons;

    Harness(Tick pp, Tick cp, Tick cphase = 0)
        : prod(eq, "prod", pp), cons(eq, "cons", cp, cphase)
    {
    }
};

} // namespace

TEST(SyncChannel, VisibleNextConsumerEdge)
{
    Harness h(1000, 1000);
    Channel<int> ch("ch", ChannelMode::syncLatch, h.prod, h.cons, 4);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    ch.push(7); // pushed at t=0
    EXPECT_TRUE(ch.empty());
    h.eq.runUntil(999);
    EXPECT_TRUE(ch.empty());
    h.eq.runUntil(1000);
    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(ch.front(), 7);
}

TEST(SyncChannel, PopFreesSlotImmediately)
{
    Harness h(1000, 1000);
    Channel<int> ch("ch", ChannelMode::syncLatch, h.prod, h.cons, 2);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    ch.push(1);
    ch.push(2);
    EXPECT_TRUE(ch.full());
    h.eq.runUntil(1000);
    ch.pop();
    EXPECT_FALSE(ch.full());
}

TEST(SyncChannel, FifoOrderPreserved)
{
    Harness h(1000, 1000);
    Channel<int> ch("ch", ChannelMode::syncLatch, h.prod, h.cons, 8);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    for (int i = 0; i < 5; ++i)
        ch.push(i);
    h.eq.runUntil(1000);
    for (int i = 0; i < 5; ++i) {
        ASSERT_FALSE(ch.empty());
        EXPECT_EQ(ch.front(), i);
        ch.pop();
    }
    EXPECT_TRUE(ch.empty());
}

TEST(AsyncChannel, EmptyFlagSynchronizerLatency)
{
    // Consumer period 1000, phase 300; push at t=0 into an EMPTY fifo
    // with syncEdges=2: first edge strictly after 0 is 300, plus one
    // more period -> visible at 1300.
    Harness h(1000, 1000, 300);
    Channel<int> ch("ch", ChannelMode::asyncFifo, h.prod, h.cons, 4, 2);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    ch.push(9);
    h.eq.runUntil(1299);
    EXPECT_TRUE(ch.empty());
    h.eq.runUntil(1300);
    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(ch.front(), 9);
}

TEST(AsyncChannel, StreamingBackToBackThroughput)
{
    // Items pushed into a non-empty FIFO ride one consumer edge behind
    // their predecessor: steady-state throughput one per cycle.
    Harness h(1000, 1000, 300);
    Channel<int> ch("ch", ChannelMode::asyncFifo, h.prod, h.cons, 8, 2);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    ch.push(0); // empty fifo: synchronizer latency, visible at 1300
    h.eq.runUntil(1000);
    ch.push(1); // non-empty: rides behind item0, also ready by 1300
    h.eq.runUntil(2000);
    ch.push(2); // ready at the edge after its push: 2300
    h.eq.runUntil(1300);
    ASSERT_FALSE(ch.empty());
    ch.pop();
    ASSERT_FALSE(ch.empty()); // item1 streamed in right behind
    ch.pop();
    EXPECT_TRUE(ch.empty());
    h.eq.runUntil(2300);
    ASSERT_FALSE(ch.empty());
    ch.pop();
}

TEST(AsyncChannel, NonStreamingPaysFullLatencyPerItem)
{
    Harness h(1000, 1000, 300);
    Channel<int> ch("ch", ChannelMode::asyncFifo, h.prod, h.cons, 8, 2,
                    /*streaming=*/false);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    ch.push(0); // visible 1300
    h.eq.runUntil(1000);
    ch.push(1); // visible at first edge after 1000 (=1300) + 1000 = 2300
    h.eq.runUntil(1300);
    ASSERT_FALSE(ch.empty());
    ch.pop();
    EXPECT_TRUE(ch.empty());
    h.eq.runUntil(2300);
    EXPECT_FALSE(ch.empty());
}

TEST(AsyncChannel, FullFlagReleaseIsDelayed)
{
    Harness h(1000, 1000, 0);
    Channel<int> ch("ch", ChannelMode::asyncFifo, h.prod, h.cons, 2, 2);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    ch.push(1);
    ch.push(2);
    EXPECT_TRUE(ch.full());
    h.eq.runUntil(2000); // both visible by now
    ch.pop();            // pop at t=2000
    // Slot release synchronizes back: producer edge after 2000 is
    // 3000, plus one period -> visible to producer at 4000.
    EXPECT_TRUE(ch.full());
    h.eq.runUntil(3999);
    EXPECT_TRUE(ch.full());
    h.eq.runUntil(4000);
    EXPECT_FALSE(ch.full());
}

TEST(AsyncChannel, SquashFreesCapacity)
{
    Harness h(1000, 1000);
    Channel<int> ch("ch", ChannelMode::asyncFifo, h.prod, h.cons, 4, 2);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    for (int i = 0; i < 4; ++i)
        ch.push(i);
    EXPECT_TRUE(ch.full());
    const unsigned removed = ch.squash([](int v) { return v >= 2; });
    EXPECT_EQ(removed, 2u);
    EXPECT_EQ(ch.rawSize(), 2u);
    EXPECT_EQ(ch.squashedItems(), 2u);
    h.eq.runUntil(10000);
    EXPECT_FALSE(ch.full());
}

TEST(AsyncChannel, SquashKeepsSurvivorsInOrder)
{
    Harness h(1000, 1000);
    Channel<int> ch("ch", ChannelMode::asyncFifo, h.prod, h.cons, 8, 2);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    for (int i = 0; i < 6; ++i)
        ch.push(i);
    ch.squash([](int v) { return v % 2 == 1; });
    h.eq.runUntil(20000);
    std::vector<int> got;
    while (!ch.empty()) {
        got.push_back(ch.front());
        ch.pop();
    }
    EXPECT_EQ(got, (std::vector<int>{0, 2, 4}));
}

TEST(AsyncChannel, MidFlightSquashOnInterCoreLink)
{
    // Inter-core link shape (fabric/system.cc): non-streaming FIFO
    // between two cores' mismatched-period domains. A squash must
    // also remove items still crossing the synchronizer (pushed but
    // not yet visible) — the remote half of a pipeline flush — and
    // the consumer must never observe them afterwards.
    Harness h(1000, 1300, 500);
    Channel<int> ch("link", ChannelMode::asyncFifo, h.prod, h.cons, 8,
                    2, false);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    ch.push(1);
    ch.push(2);
    ch.push(3);
    // Nothing is visible yet; the squash reaches into the raw FIFO.
    EXPECT_TRUE(ch.empty());
    EXPECT_EQ(ch.squash([](int v) { return v % 2 == 0; }), 1u);
    std::vector<int> got;
    for (Tick t = 0; t <= 20000; t += 100) {
        h.eq.runUntil(t);
        while (!ch.empty()) {
            got.push_back(ch.front());
            ch.pop();
        }
    }
    EXPECT_EQ(got, (std::vector<int>{1, 3}));
    EXPECT_EQ(ch.squashedItems(), 1u);
}

TEST(Channel, ResidencyAccounting)
{
    Harness h(1000, 1000);
    Channel<int> ch("ch", ChannelMode::asyncFifo, h.prod, h.cons, 4, 2);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    ch.push(5); // at t=0
    h.eq.runUntil(2000);
    EXPECT_EQ(ch.frontPushTick(), 0u);
    ch.pop(); // at t=2000
    EXPECT_EQ(ch.totalResidency(), 2000u);
    EXPECT_EQ(ch.pushes(), 1u);
    EXPECT_EQ(ch.pops(), 1u);
}

TEST(Channel, ClearEmptiesEverything)
{
    Harness h(1000, 1000);
    Channel<int> ch("ch", ChannelMode::syncLatch, h.prod, h.cons, 4);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    ch.push(1);
    ch.push(2);
    ch.clear();
    EXPECT_EQ(ch.rawSize(), 0u);
    h.eq.runUntil(5000);
    EXPECT_TRUE(ch.empty());
    EXPECT_FALSE(ch.full());
}

/**
 * Property tests over mismatched clock periods: no item is ever lost
 * or reordered, visibility is never before the synchronizer bound, and
 * capacity is never exceeded.
 */
class ChannelProperty
    : public ::testing::TestWithParam<
          std::tuple<Tick, Tick, Tick, unsigned, bool>>
{
};

TEST_P(ChannelProperty, NoLossNoReorderLatencyBound)
{
    const auto [pp, cp, phase, sync_edges, streaming] = GetParam();
    EventQueue eq;
    ClockDomain prod(eq, "p", pp);
    ClockDomain cons(eq, "c", cp, phase);
    Channel<std::uint64_t> ch("ch", ChannelMode::asyncFifo, prod, cons,
                              8, sync_edges, streaming);

    std::uint64_t next_push = 0;
    std::uint64_t expect_pop = 0;
    std::deque<Tick> push_times;
    bool ok = true;

    prod.addTicker([&] {
        if (next_push < 300 && ch.canPush()) {
            push_times.push_back(eq.now());
            ch.push(next_push++);
        }
    });
    cons.addTicker([&] {
        while (!ch.empty()) {
            // Ordering property.
            if (ch.front() != expect_pop)
                ok = false;
            // Latency lower bound: never visible before the first
            // consumer edge strictly after the push.
            if (eq.now() <= push_times.front())
                ok = false;
            push_times.pop_front();
            ++expect_pop;
            ch.pop();
        }
        if (ch.rawSize() > 8)
            ok = false;
    });

    prod.start();
    cons.start();
    eq.runUntil(pp * 2000);
    prod.stop();
    cons.stop();
    eq.runUntil(pp * 2000 + cp * 10);

    EXPECT_TRUE(ok);
    EXPECT_EQ(next_push, 300u);   // producer finished
    EXPECT_EQ(expect_pop, 300u);  // everything arrived, in order
    EXPECT_EQ(ch.pushes(), 300u);
    EXPECT_EQ(ch.pops(), 300u);
}

INSTANTIATE_TEST_SUITE_P(
    PeriodRatios, ChannelProperty,
    ::testing::Values(
        std::make_tuple(1000, 1000, 0, 2u, true),
        std::make_tuple(1000, 1000, 437, 2u, true),
        std::make_tuple(1000, 1300, 211, 2u, true),
        std::make_tuple(1300, 1000, 59, 2u, true),
        std::make_tuple(1000, 2000, 999, 2u, true),
        std::make_tuple(2000, 1000, 1, 2u, true),
        std::make_tuple(1000, 1111, 300, 3u, true),
        std::make_tuple(1111, 1000, 300, 3u, true),
        std::make_tuple(1000, 1300, 211, 2u, false),
        std::make_tuple(1300, 1000, 59, 3u, false),
        std::make_tuple(997, 1009, 13, 1u, true),
        std::make_tuple(1009, 997, 13, 1u, false)));

/**
 * Entry-pool reuse: cycle far more items than the channel has pooled
 * nodes under mismatched clocks, interleaving mid-list squashes. FIFO
 * order of survivors must hold through arbitrary node recycling.
 */
TEST(AsyncChannel, IntrusivePoolReuseKeepsOrderUnderChurn)
{
    EventQueue eq;
    ClockDomain prod(eq, "p", 997);
    ClockDomain cons(eq, "c", 1303, 211);
    Channel<std::uint64_t> ch("ch", ChannelMode::asyncFifo, prod, cons,
                              4, 2);

    std::uint64_t next_push = 0;
    std::uint64_t last_pop = 0;
    std::uint64_t popped = 0, squashed = 0;
    bool ordered = true;

    prod.addTicker([&] {
        if (next_push < 5000 && ch.canPush())
            ch.push(++next_push);
    });
    cons.addTicker([&] {
        // Every ~16 consumer edges, squash the odd survivors from the
        // middle of the list instead of popping.
        if (cons.cycle() % 16 == 0 && ch.rawSize() > 1) {
            squashed += ch.squash(
                [](std::uint64_t v) { return v % 2 == 1; });
            return;
        }
        while (!ch.empty()) {
            if (ch.front() <= last_pop)
                ordered = false;
            last_pop = ch.front();
            ch.pop();
            ++popped;
        }
    });

    prod.start();
    cons.start();
    eq.runUntil(997 * 20000);

    EXPECT_TRUE(ordered);
    EXPECT_EQ(next_push, 5000u);
    // Cycled the 4-node pool three orders of magnitude over.
    EXPECT_EQ(popped + squashed + ch.rawSize(), 5000u);
    EXPECT_EQ(ch.pops(), popped);
    EXPECT_EQ(ch.squashedItems(), squashed);
    EXPECT_GT(squashed, 0u);
}

/** Move-only payloads: the pooled entries placement-construct items,
 *  so channels work without default- or copy-constructible types. */
TEST(AsyncChannel, MoveOnlyPayload)
{
    Harness h(1000, 1000);
    Channel<std::unique_ptr<int>> ch("ch", ChannelMode::asyncFifo,
                                     h.prod, h.cons, 2, 2);
    h.prod.start();
    h.cons.start();
    h.eq.runUntil(0);
    ch.push(std::make_unique<int>(41));
    ch.push(std::make_unique<int>(42));
    h.eq.runUntil(5000);
    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(*ch.front(), 41);
    std::unique_ptr<int> got = std::move(ch.front());
    ch.pop();
    EXPECT_EQ(*got, 41);
    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(*ch.front(), 42);
    ch.clear(); // destroys the live item, returns its node
    EXPECT_EQ(ch.rawSize(), 0u);
}

/** The same properties for the synchronous latch configuration. */
TEST(SyncChannel, PropertySweepSameClock)
{
    EventQueue eq;
    ClockDomain prod(eq, "p", 1000);
    ClockDomain cons(eq, "c", 1000);
    Channel<std::uint64_t> ch("ch", ChannelMode::syncLatch, prod, cons,
                              4);
    std::uint64_t next_push = 0, expect_pop = 0;
    bool ok = true;
    cons.addTicker([&] {
        while (!ch.empty()) {
            if (ch.front() != expect_pop)
                ok = false;
            ++expect_pop;
            ch.pop();
        }
    });
    prod.addTicker([&] {
        for (int k = 0; k < 2 && next_push < 500; ++k)
            if (ch.canPush())
                ch.push(next_push++);
    });
    prod.start();
    cons.start();
    eq.runUntil(1000 * 600);
    EXPECT_TRUE(ok);
    EXPECT_EQ(next_push, 500u);
    EXPECT_EQ(expect_pop, 500u);
}
