/**
 * @file
 * Tests for the synthetic workload: profile table integrity, static
 * program construction, stream determinism, instruction-mix
 * convergence, control-flow consistency and wrong-path generation.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/generator.hh"

using namespace gals;

TEST(Profiles, TableHasAllSuites)
{
    EXPECT_EQ(benchmarksInSuite("spec95int").size(), 8u);
    EXPECT_EQ(benchmarksInSuite("spec95fp").size(), 4u);
    EXPECT_EQ(benchmarksInSuite("mediabench").size(), 4u);
}

TEST(Profiles, AllValidate)
{
    for (const auto &p : allBenchmarks())
        p.validate(); // fatal on error
    SUCCEED();
}

TEST(Profiles, FindByName)
{
    EXPECT_EQ(findBenchmark("gcc").name, "gcc");
    EXPECT_EQ(findBenchmark("fpppp").suite, "spec95fp");
}

TEST(Profiles, NamesUnique)
{
    std::set<std::string> names;
    for (const auto &p : allBenchmarks())
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(Profiles, PaperCitedCharacteristics)
{
    // fpppp: ~1 branch per 67 instructions (paper section 5.1).
    const auto &fpppp = findBenchmark("fpppp");
    EXPECT_NEAR(fpppp.branchFrac(), 1.0 / 67.0, 0.004);
    // perl: virtually no floating point (section 5.2).
    const auto &perl = findBenchmark("perl");
    EXPECT_EQ(perl.fracFpAlu + perl.fracFpMult + perl.fracFpDiv, 0.0);
    // ijpeg: very low proportion of memory accesses (section 5.2).
    const auto &ijpeg = findBenchmark("ijpeg");
    const auto &gcc = findBenchmark("gcc");
    EXPECT_LT(ijpeg.fracLoad + ijpeg.fracStore,
              0.6 * (gcc.fracLoad + gcc.fracStore));
}

TEST(Generator, DeterministicStream)
{
    const auto &p = findBenchmark("gcc");
    StreamGenerator a(p, 7), b(p, 7);
    for (int i = 0; i < 5000; ++i) {
        const GenInst &x = a.next();
        const GenInst &y = b.next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
        ASSERT_EQ(x.taken, y.taken);
        ASSERT_EQ(x.memAddr, y.memAddr);
    }
}

TEST(Generator, RunSeedChangesDynamics)
{
    const auto &p = findBenchmark("gcc");
    StreamGenerator a(p, 1), b(p, 2);
    int diff = 0;
    for (int i = 0; i < 2000; ++i) {
        const GenInst x = a.next();
        const GenInst y = b.next();
        if (x.pc != y.pc || x.taken != y.taken)
            ++diff;
    }
    EXPECT_GT(diff, 0);
}

TEST(Generator, StaticProgramIsContiguous)
{
    StreamGenerator g(findBenchmark("li"), 0);
    std::uint64_t expect = StreamGenerator::codeBase;
    for (unsigned b = 0; b < g.numBlocks(); ++b) {
        EXPECT_EQ(g.blockStartPc(b), expect);
        expect += g.blockLength(b) * 4;
    }
    EXPECT_EQ(g.staticProgramBytes(),
              expect - StreamGenerator::codeBase);
}

TEST(Generator, EveryBlockEndsInOneBranch)
{
    // Walk the dynamic stream: a branch must always be the last
    // instruction before a block transition.
    StreamGenerator g(findBenchmark("compress"), 0);
    std::uint64_t prev_pc = 0;
    bool prev_branch = false;
    bool prev_taken = false;
    std::uint64_t prev_target = 0;
    for (int i = 0; i < 20000; ++i) {
        const GenInst gi = g.next();
        if (i > 0) {
            if (prev_branch && prev_taken) {
                ASSERT_EQ(gi.pc, prev_target);
            } else {
                ASSERT_EQ(gi.pc, prev_pc + 4);
            }
        }
        prev_pc = gi.pc;
        prev_branch = isBranchClass(gi.cls);
        prev_taken = gi.taken;
        prev_target = gi.target;
    }
}

TEST(Generator, MixConvergesToProfile)
{
    const auto &p = findBenchmark("gcc");
    StreamGenerator g(p, 0);
    std::map<InstClass, unsigned> counts;
    const int n = 60000;
    for (int i = 0; i < n; ++i)
        ++counts[g.next().cls];

    const double loads = double(counts[InstClass::load]) / n;
    const double stores = double(counts[InstClass::store]) / n;
    const double fp = double(counts[InstClass::fpAlu] +
                             counts[InstClass::fpMult] +
                             counts[InstClass::fpDiv]) /
                      n;
    // Control flow skews the dynamic mix somewhat (loop re-execution),
    // so use generous bands.
    EXPECT_NEAR(loads, p.fracLoad, 0.08);
    EXPECT_NEAR(stores, p.fracStore, 0.05);
    EXPECT_LT(fp, 0.01); // gcc is integer code
}

TEST(Generator, FppppBranchDensityIsLow)
{
    StreamGenerator g(findBenchmark("fpppp"), 0);
    unsigned branches = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        if (isBranchClass(g.next().cls))
            ++branches;
    // The paper: roughly one branch per 67 instructions.
    EXPECT_LT(double(branches) / n, 0.05);
}

TEST(Generator, MemAddrsAreDataSpaceAligned)
{
    StreamGenerator g(findBenchmark("swim"), 0);
    for (int i = 0; i < 20000; ++i) {
        const GenInst gi = g.next();
        if (isMemClass(gi.cls)) {
            EXPECT_GE(gi.memAddr, StreamGenerator::dataBase);
            EXPECT_EQ(gi.memAddr % 4, 0u);
        }
    }
}

TEST(Generator, BranchSourcesAreIntRegs)
{
    StreamGenerator g(findBenchmark("gcc"), 0);
    for (int i = 0; i < 20000; ++i) {
        const GenInst gi = g.next();
        if (gi.cls == InstClass::condBranch) {
            ASSERT_EQ(gi.numSrcs, 1u);
            EXPECT_FALSE(isFpReg(gi.srcs[0]));
        }
    }
}

TEST(Generator, FpOpsUseFpRegs)
{
    StreamGenerator g(findBenchmark("fpppp"), 0);
    for (int i = 0; i < 20000; ++i) {
        const GenInst gi = g.next();
        if (isFpClass(gi.cls)) {
            EXPECT_TRUE(isFpReg(gi.dest));
            for (unsigned s = 0; s < gi.numSrcs; ++s)
                EXPECT_TRUE(isFpReg(gi.srcs[s]));
        }
    }
}

TEST(Generator, WrongPathReturnsRealCode)
{
    StreamGenerator g(findBenchmark("li"), 0);
    for (int i = 0; i < 100; ++i)
        g.next();
    const GenInst wp = g.wrongPath(g.blockStartPc(3) + 4);
    EXPECT_EQ(wp.pc, g.blockStartPc(3) + 4);
}

TEST(Generator, WrongPathWrapsPastProgramEnd)
{
    StreamGenerator g(findBenchmark("adpcm"), 0);
    const std::uint64_t beyond =
        StreamGenerator::codeBase + g.staticProgramBytes() + 64;
    const GenInst wp = g.wrongPath(beyond);
    EXPECT_GE(wp.pc, StreamGenerator::codeBase);
    EXPECT_LT(wp.pc,
              StreamGenerator::codeBase + g.staticProgramBytes());
}

TEST(Generator, WrongPathDoesNotPerturbCorrectPath)
{
    const auto &p = findBenchmark("gcc");
    StreamGenerator a(p, 3), b(p, 3);
    for (int i = 0; i < 1000; ++i) {
        a.next();
        b.next();
    }
    // Interleave wrong-path fetches on one generator only.
    for (int i = 0; i < 500; ++i)
        a.wrongPath(StreamGenerator::codeBase + 4 * i);
    for (int i = 0; i < 1000; ++i) {
        const GenInst x = a.next();
        const GenInst y = b.next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.taken, y.taken);
    }
}

TEST(Generator, CallsReturnToFallthrough)
{
    // After a call's target block eventually rets, control should come
    // back to the block after the call. Verify via the stream: every
    // taken ret target equals some prior call's pc + 4 (contiguous
    // layout makes fallthrough == next block start).
    StreamGenerator g(findBenchmark("li"), 0);
    std::set<std::uint64_t> pending_returns;
    int checked = 0;
    for (int i = 0; i < 60000 && checked < 50; ++i) {
        const GenInst gi = g.next();
        if (gi.cls == InstClass::call)
            pending_returns.insert(gi.pc + 4);
        if (gi.cls == InstClass::ret && gi.taken) {
            EXPECT_TRUE(pending_returns.count(gi.target))
                << "ret to 0x" << std::hex << gi.target;
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}
