/**
 * @file
 * Tests for the dynamic DVFS controller: utilization tracking, step
 * walking in both directions, voltage coupling, and an end-to-end run
 * where an idle FP domain glides to a deep slowdown on integer code.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "dvfs/controller.hh"

using namespace gals;

namespace
{

struct FakeLoad
{
    EventQueue eq;
    ClockDomain domain;
    std::uint64_t work = 0;
    double perCycle;

    explicit FakeLoad(double work_per_cycle)
        : domain(eq, "dom", 1000), perCycle(work_per_cycle)
    {
        domain.addTicker([this] {
            acc_ += perCycle;
            while (acc_ >= 1.0) {
                ++work;
                acc_ -= 1.0;
            }
        });
    }

  private:
    double acc_ = 0.0;
};

} // namespace

TEST(DvfsController, IdleDomainStepsDown)
{
    FakeLoad f(0.05); // 5% of peak 1/cycle
    DynamicDvfsConfig cfg;
    cfg.samplePeriod = 100 * 1000;
    DynamicDvfsController ctrl(f.eq, defaultTech(), cfg);
    ctrl.manage(f.domain, &f.work, 1.0);
    f.domain.start();
    ctrl.start();
    f.eq.runUntil(1000 * 1000);
    EXPECT_EQ(ctrl.stepOf(f.domain), cfg.steps.size() - 1);
    EXPECT_GT(f.domain.period(), 1000u);
    EXPECT_LT(f.domain.vdd(), defaultTech().vddNominal);
    EXPECT_GE(ctrl.adjustments(), cfg.steps.size() - 1);
}

TEST(DvfsController, BusyDomainStaysNominal)
{
    FakeLoad f(0.9);
    DynamicDvfsConfig cfg;
    cfg.samplePeriod = 100 * 1000;
    DynamicDvfsController ctrl(f.eq, defaultTech(), cfg);
    ctrl.manage(f.domain, &f.work, 1.0);
    f.domain.start();
    ctrl.start();
    f.eq.runUntil(1000 * 1000);
    EXPECT_EQ(ctrl.stepOf(f.domain), 0u);
    EXPECT_EQ(f.domain.period(), 1000u);
    EXPECT_EQ(ctrl.adjustments(), 0u);
}

TEST(DvfsController, UtilizationMeasured)
{
    FakeLoad f(0.30);
    DynamicDvfsConfig cfg;
    cfg.samplePeriod = 200 * 1000;
    DynamicDvfsController ctrl(f.eq, defaultTech(), cfg);
    ctrl.manage(f.domain, &f.work, 1.0);
    f.domain.start();
    ctrl.start();
    f.eq.runUntil(600 * 1000);
    EXPECT_NEAR(ctrl.utilizationOf(f.domain), 0.30, 0.05);
    // 0.30 is inside [loUtil, hiUtil]: no change.
    EXPECT_EQ(ctrl.stepOf(f.domain), 0u);
}

TEST(DvfsController, RecoversWhenLoadReturns)
{
    // Start idle, step down; then make the domain busy relative to its
    // (now slower) clock and verify it climbs back.
    FakeLoad f(0.0);
    DynamicDvfsConfig cfg;
    cfg.samplePeriod = 100 * 1000;
    DynamicDvfsController ctrl(f.eq, defaultTech(), cfg);
    ctrl.manage(f.domain, &f.work, 1.0);
    f.domain.start();
    ctrl.start();
    f.eq.runUntil(600 * 1000);
    EXPECT_GT(ctrl.stepOf(f.domain), 0u);

    f.perCycle = 1.0; // suddenly busy
    f.eq.runUntil(2000 * 1000);
    EXPECT_EQ(ctrl.stepOf(f.domain), 0u);
    EXPECT_EQ(f.domain.period(), 1000u);
    EXPECT_DOUBLE_EQ(f.domain.vdd(), defaultTech().vddNominal);
}

TEST(DvfsController, StopFreezesSettings)
{
    FakeLoad f(0.0);
    DynamicDvfsConfig cfg;
    cfg.samplePeriod = 100 * 1000;
    DynamicDvfsController ctrl(f.eq, defaultTech(), cfg);
    ctrl.manage(f.domain, &f.work, 1.0);
    f.domain.start();
    ctrl.start();
    f.eq.runUntil(250 * 1000);
    const unsigned step = ctrl.stepOf(f.domain);
    ctrl.stop();
    f.eq.runUntil(2000 * 1000);
    EXPECT_EQ(ctrl.stepOf(f.domain), step);
}

TEST(DvfsController, EndToEndIdleFpSlowsOnIntegerCode)
{
    // gcc has virtually no floating point: under dynamic control the
    // FP domain must glide to the deepest slowdown and save energy.
    EventQueue eq;
    ProcessorConfig pc;
    pc.gals = true;
    Processor proc(eq, pc, findBenchmark("gcc"), 0);

    DynamicDvfsController ctrl(eq, pc.tech);
    ctrl.manage(proc.domain(DomainId::fpd),
                proc.fpCluster().issuedCounter(),
                pc.core.fpIssueWidth);
    ctrl.start();
    proc.run(10000);
    ctrl.stop();

    EXPECT_GT(ctrl.stepOf(proc.domain(DomainId::fpd)), 0u);
    EXPECT_GT(proc.domain(DomainId::fpd).period(), pc.nominalPeriod);
    EXPECT_LT(proc.domain(DomainId::fpd).vdd(), pc.tech.vddNominal);
    EXPECT_EQ(proc.decodeUnit().commitStats().committed, 10000u);
}

TEST(DvfsController, EndToEndBusyFpStaysFastOnFpCode)
{
    EventQueue eq;
    ProcessorConfig pc;
    pc.gals = true;
    Processor proc(eq, pc, findBenchmark("fpppp"), 0);

    DynamicDvfsController ctrl(eq, pc.tech);
    ctrl.manage(proc.domain(DomainId::fpd),
                proc.fpCluster().issuedCounter(),
                pc.core.fpIssueWidth);
    ctrl.start();
    proc.run(10000);
    ctrl.stop();

    // fpppp keeps its FP cluster busy enough to avoid the deepest
    // slowdown step.
    EXPECT_LT(ctrl.stepOf(proc.domain(DomainId::fpd)), 3u);
}

TEST(DvfsController, RejectsBadConfig)
{
    EventQueue eq;
    DynamicDvfsConfig cfg;
    cfg.steps = {2.0, 3.0}; // must start at 1.0
    EXPECT_DEATH(DynamicDvfsController(eq, defaultTech(), cfg),
                 "steps must start");
}
