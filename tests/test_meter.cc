/**
 * @file
 * Tests for the interval meter (sim/meter.hh + the runOne()
 * `--interval-ticks` wiring).
 *
 * Two contracts matter. First, the meter is read-only: a metered run
 * must reproduce the unmetered run's headline metrics exactly, with
 * the interval series strictly additive. Second, the series itself
 * is part of the deterministic output: samples must be
 * byte-identical (checked through the gtrj frame encoding, which
 * covers every field bit-for-bit) across job counts and across the
 * calendar/heap event-queue engines, or archived metered
 * trajectories could never be `--verify`d.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "runner/engine.hh"
#include "runner/gtrj.hh"
#include "sim/event_queue.hh"
#include "sim/meter.hh"

using namespace gals;
using namespace gals::runner;

namespace
{

/** A short deterministic run. */
RunConfig
meteredConfig(std::uint64_t seed, bool gals)
{
    RunConfig c;
    c.benchmark = "adpcm";
    c.instructions = 2000;
    c.gals = gals;
    c.seed = seed;
    return c;
}

/** One frame per run: byte-wise equality covers every config field,
 *  metric column and interval sample at full precision. */
std::string
framesOf(const std::vector<RunConfig> &cfgs,
         const std::vector<RunResults> &results)
{
    std::string buf;
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        buf += gtrj::encodeRecord("t", i, cfgs[i], results[i]);
    return buf;
}

class CountingMeter final : public PeriodicMeter
{
  public:
    CountingMeter(EventQueue &eq, Tick k) : PeriodicMeter(eq, "m", k)
    {
    }
    std::vector<Tick> sampleTicks;

  protected:
    void
    sampleInterval(std::uint64_t index, Tick now) override
    {
        EXPECT_EQ(index, sampleTicks.size());
        sampleTicks.push_back(now);
    }
};

} // namespace

TEST(PeriodicMeter, FirstSampleLandsOneFullIntervalAfterStart)
{
    EventQueue eq;
    CountingMeter meter(eq, 1000);
    EXPECT_EQ(meter.intervalTicks(), Tick(1000));
    meter.start();
    eq.runUntil(3500);
    // No sample at tick 0: the first interval must elapse first.
    EXPECT_EQ(meter.sampleTicks,
              (std::vector<Tick>{1000, 2000, 3000}));
    EXPECT_EQ(meter.samples(), 3u);

    // stop() deschedules: no further edges fire.
    meter.stop();
    eq.runUntil(9000);
    EXPECT_EQ(meter.samples(), 3u);
}

TEST(RunMeter, MeterIsReadOnlyAndSamplesAreConsistent)
{
    RunConfig plain = meteredConfig(1, /*gals=*/true);
    const RunResults bare = runOne(plain);
    ASSERT_GT(bare.ticks, 0u);
    EXPECT_TRUE(bare.intervals.empty());

    // Sample ~5 times over the run.
    RunConfig metered = plain;
    metered.intervalTicks = bare.ticks / 5;
    ASSERT_GT(metered.intervalTicks, 0u);
    const RunResults r = runOne(metered);

    // Read-only: every headline metric of the metered run equals the
    // bare run's.
    EXPECT_EQ(r.committed, bare.committed);
    EXPECT_EQ(r.fetched, bare.fetched);
    EXPECT_EQ(r.ticks, bare.ticks);
    EXPECT_DOUBLE_EQ(r.ipcNominal, bare.ipcNominal);
    EXPECT_DOUBLE_EQ(r.energyJ, bare.energyJ);
    EXPECT_EQ(r.fifoEvents, bare.fifoEvents);
    EXPECT_EQ(r.unitEnergyNj, bare.unitEnergyNj);

    // The series: strictly ascending multiples of K, with
    // per-interval deltas that never exceed the run totals.
    ASSERT_GE(r.intervals.size(), 3u);
    std::uint64_t committedSum = 0;
    double energyNjSum = 0.0;
    for (std::size_t i = 0; i < r.intervals.size(); ++i) {
        const IntervalSample &s = r.intervals[i];
        EXPECT_EQ(s.tick, metered.intervalTicks * (i + 1));
        committedSum += s.committed;
        for (unsigned d = 0; d < numDomains; ++d) {
            EXPECT_GE(s.energyNj[d], 0.0);
            energyNjSum += s.energyNj[d];
        }
        EXPECT_GE(s.ipc, 0.0);
    }
    // The samples stop at the last full interval before the final
    // commit, so the sums are partial but bounded by the totals.
    EXPECT_LE(committedSum, r.committed);
    EXPECT_GT(committedSum, 0u);
    EXPECT_LE(energyNjSum, r.energyJ * 1e9 * (1.0 + 1e-9));
    EXPECT_GT(energyNjSum, 0.0);
}

TEST(RunMeter, ZeroIntervalTicksDisablesTheMeter)
{
    RunConfig cfg = meteredConfig(0, /*gals=*/false);
    cfg.intervalTicks = 0;
    EXPECT_TRUE(runOne(cfg).intervals.empty());
}

TEST(RunMeter, SeriesIsByteIdenticalAcrossJobCounts)
{
    std::vector<RunConfig> cfgs;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        RunConfig c = meteredConfig(seed, seed % 2 == 1);
        c.intervalTicks = 1500;
        cfgs.push_back(c);
    }

    const std::vector<RunResults> serial =
        ExperimentEngine(1).run(cfgs);
    const std::vector<RunResults> parallel =
        ExperimentEngine(8).run(cfgs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (const RunResults &r : serial)
        EXPECT_FALSE(r.intervals.empty());
    EXPECT_EQ(framesOf(cfgs, serial), framesOf(cfgs, parallel));
}

TEST(RunMeter, SeriesIsByteIdenticalAcrossQueueEngines)
{
    RunConfig cfg = meteredConfig(3, /*gals=*/true);
    cfg.intervalTicks = 1500;

    const QueueEngine saved = EventQueue::defaultEngine();
    EventQueue::setDefaultEngine(QueueEngine::calendar);
    const RunResults calendar = runOne(cfg);
    EventQueue::setDefaultEngine(QueueEngine::heap);
    const RunResults heap = runOne(cfg);
    EventQueue::setDefaultEngine(saved);

    ASSERT_FALSE(calendar.intervals.empty());
    EXPECT_EQ(framesOf({cfg}, {calendar}), framesOf({cfg}, {heap}));
}
