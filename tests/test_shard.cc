/**
 * @file
 * Tests for grid sharding and shard fan-in: shardRunIndices() must
 * partition any grid completely, disjointly and near-evenly; the
 * JSON reader must round-trip our own record formats; and
 * mergeTrajectories()/mergeManifests() must reassemble shard files
 * byte-identical to the unsharded originals — including CSV header
 * handling, scenario-order recovery and the overlap/gap error
 * paths. Everything here runs on fabricated results, no simulation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "runner/json.hh"
#include "runner/merge.hh"
#include "runner/reporter.hh"
#include "runner/scenario.hh"
#include "runner/trajectory.hh"

using namespace gals;
using namespace gals::runner;

namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "galssim_shard_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

void
spit(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
    ASSERT_TRUE(os.good()) << path;
}

/** A fabricated run: every field deterministic in @p i, including a
 *  couple of unit-energy columns so CSV headers are exercised. */
RunResults
fakeResult(std::size_t i)
{
    RunResults r;
    r.benchmark = i % 2 ? "fpppp" : "adpcm";
    r.gals = i % 2;
    r.committed = 1000 + i;
    r.fetched = 2000 + 3 * i;
    r.ticks = 5000 + 17 * i;
    r.timeSec = 1e-6 * static_cast<double>(i + 1);
    r.ipcNominal = 0.5 + 0.01 * static_cast<double>(i);
    r.energyJ = 1e-5 + 1e-7 * static_cast<double>(i);
    r.avgPowerW = 20.0 - 0.1 * static_cast<double>(i);
    r.unitEnergyNj = {{"icache", 10.5 + i}, {"rob", 3.25 * (i + 1)}};
    return r;
}

RunConfig
fakeConfig(std::size_t i)
{
    RunConfig c;
    c.benchmark = i % 2 ? "fpppp" : "adpcm";
    c.instructions = 2000;
    c.gals = i % 2;
    c.seed = i / 2;
    return c;
}

/** One fabricated scenario grid: cfgs/results for @p n runs. */
struct FakeGrid
{
    std::string name;
    std::vector<RunConfig> cfgs;
    std::vector<RunResults> results;

    FakeGrid(std::string scenario, std::size_t n)
        : name(std::move(scenario))
    {
        for (std::size_t i = 0; i < n; ++i) {
            cfgs.push_back(fakeConfig(i));
            results.push_back(fakeResult(i));
        }
    }
};

/** Write the unsharded trajectory of @p grids to @p path. */
void
writeUnsharded(const std::string &path,
               const std::vector<FakeGrid> &grids)
{
    TrajectorySink sink(path);
    for (const FakeGrid &g : grids)
        sink.append(g.name, g.cfgs, g.results);
    sink.close();
}

/** Write shard @p shard of @p grids to @p path, the way galsbench
 *  does: slice per scenario, records carrying canonical indices. */
void
writeShard(const std::string &path, const std::vector<FakeGrid> &grids,
           const ShardSpec &shard)
{
    TrajectorySink sink(path);
    for (const FakeGrid &g : grids) {
        const std::vector<std::size_t> indices =
            shardRunIndices(g.cfgs.size(), shard);
        std::vector<RunConfig> cfgs;
        std::vector<RunResults> results;
        for (std::size_t i : indices) {
            cfgs.push_back(g.cfgs[i]);
            results.push_back(g.results[i]);
        }
        sink.append(g.name, cfgs, results, &indices);
    }
    sink.close();
}

} // namespace

TEST(ShardIndices, PartitionIsCompleteDisjointAndBalanced)
{
    for (std::size_t total : {0u, 1u, 2u, 5u, 16u, 17u, 64u}) {
        for (unsigned count : {1u, 2u, 3u, 5u, 8u, 16u, 64u}) {
            std::set<std::size_t> seen;
            for (unsigned i = 1; i <= count; ++i) {
                const auto slice =
                    shardRunIndices(total, ShardSpec{i, count});
                // Balanced: every slice within one run of total/N.
                EXPECT_LE(slice.size(), total / count + 1);
                EXPECT_GE(slice.size() + 1,
                          (total + count - 1) / count);
                for (std::size_t idx : slice) {
                    EXPECT_LT(idx, total);
                    // Disjoint: no index in two shards.
                    EXPECT_TRUE(seen.insert(idx).second)
                        << "duplicate index " << idx;
                }
            }
            // Complete: the union is exactly [0, total).
            EXPECT_EQ(seen.size(), total)
                << "total " << total << " count " << count;
        }
    }
}

TEST(ShardIndices, DefaultSpecIsWholeGridInOrder)
{
    const auto all = shardRunIndices(5, ShardSpec{});
    ASSERT_EQ(all.size(), 5u);
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i], i);
    EXPECT_FALSE(ShardSpec{}.active());
    EXPECT_TRUE((ShardSpec{1, 3}).active());
}

TEST(ShardIndices, StrideInterleavesBenchmarks)
{
    // Round-robin, not blocks: shard 1 of 2 over 6 runs is 0,2,4.
    const auto s1 = shardRunIndices(6, ShardSpec{1, 2});
    const auto s2 = shardRunIndices(6, ShardSpec{2, 2});
    EXPECT_EQ(s1, (std::vector<std::size_t>{0, 2, 4}));
    EXPECT_EQ(s2, (std::vector<std::size_t>{1, 3, 5}));
}

TEST(Json, ParsesOurRecordShapes)
{
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(
        "{\"scenario\":\"fig\\u00350\",\"index\":42,"
        "\"nested\":{\"a\":[1,2.5,-3e2,null,true,false]},"
        "\"big\":18446744073709551615}",
        v, err))
        << err;
    const json::Value *s = v.find("scenario");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->str, "fig50");
    std::uint64_t idx = 0;
    ASSERT_TRUE(v.find("index")->asU64(idx));
    EXPECT_EQ(idx, 42u);
    std::uint64_t big = 0;
    ASSERT_TRUE(v.find("big")->asU64(big));
    EXPECT_EQ(big, 18446744073709551615ull);
    const json::Value *nested = v.find("nested");
    ASSERT_NE(nested, nullptr);
    const json::Value *arr = nested->find("a");
    ASSERT_NE(arr, nullptr);
    ASSERT_EQ(arr->items.size(), 6u);
    EXPECT_DOUBLE_EQ(arr->items[1].number, 2.5);
    EXPECT_DOUBLE_EQ(arr->items[2].number, -300.0);
    EXPECT_TRUE(arr->items[3].isNull());
    EXPECT_TRUE(arr->items[4].boolean);
    // Negative / fractional numbers are not u64s.
    std::uint64_t bad = 0;
    EXPECT_FALSE(arr->items[1].asU64(bad));
    EXPECT_FALSE(arr->items[2].asU64(bad));
}

TEST(Json, RejectsMalformedInput)
{
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse("{\"a\":1} trailing", v, err));
    EXPECT_FALSE(json::parse("{\"a\":nan}", v, err));
    EXPECT_FALSE(json::parse("{\"a\":'single'}", v, err));
    EXPECT_FALSE(json::parse("{\"a\":\"\\q\"}", v, err));
    EXPECT_FALSE(json::parse("{\"a\":1", v, err));
    EXPECT_FALSE(json::parse("", v, err));
    EXPECT_TRUE(json::parse(" [ ] ", v, err)) << err;
    EXPECT_TRUE(json::parse("{\"q\":\"a\\\"b\\\\c\"}", v, err));
    EXPECT_EQ(v.find("q")->str, "a\"b\\c");
}

TEST(Merge, JsonlShardsReassembleByteIdentical)
{
    // Two scenarios: one whose grid (2 runs) is smaller than the
    // shard count, so one shard holds no record of it at all.
    const std::vector<FakeGrid> grids = {FakeGrid("alpha", 7),
                                         FakeGrid("beta", 2)};
    const std::string ref = tempPath("ref.jsonl");
    writeUnsharded(ref, grids);

    std::vector<std::string> shardFiles;
    for (unsigned i = 1; i <= 3; ++i) {
        const std::string path =
            tempPath("s" + std::to_string(i) + ".jsonl");
        writeShard(path, grids, ShardSpec{i, 3});
        shardFiles.push_back(path);
    }

    const std::string merged = tempPath("merged.jsonl");
    std::ostringstream diag;
    ASSERT_TRUE(mergeTrajectories(shardFiles, merged, diag))
        << diag.str();
    EXPECT_EQ(slurp(merged), slurp(ref));

    // File order must not matter: shard files arrive in whatever
    // order the CI fan-in downloaded them.
    std::vector<std::string> reversed(shardFiles.rbegin(),
                                      shardFiles.rend());
    std::ostringstream diag2;
    ASSERT_TRUE(mergeTrajectories(reversed, merged, diag2))
        << diag2.str();
    EXPECT_EQ(slurp(merged), slurp(ref));
}

TEST(Merge, CsvShardsReassembleByteIdentical)
{
    const std::vector<FakeGrid> grids = {FakeGrid("alpha", 5),
                                         FakeGrid("beta", 3)};
    const std::string ref = tempPath("ref.csv");
    writeUnsharded(ref, grids);

    std::vector<std::string> shardFiles;
    for (unsigned i = 1; i <= 2; ++i) {
        const std::string path =
            tempPath("s" + std::to_string(i) + ".csv");
        writeShard(path, grids, ShardSpec{i, 2});
        shardFiles.push_back(path);
    }

    const std::string merged = tempPath("merged.csv");
    std::ostringstream diag;
    ASSERT_TRUE(mergeTrajectories(shardFiles, merged, diag))
        << diag.str();
    EXPECT_EQ(slurp(merged), slurp(ref));
}

TEST(Merge, DetectsOverlapGapAndFormatMismatch)
{
    const std::vector<FakeGrid> grids = {FakeGrid("alpha", 6)};
    std::vector<std::string> shardFiles;
    for (unsigned i = 1; i <= 3; ++i) {
        const std::string path =
            tempPath("e" + std::to_string(i) + ".jsonl");
        writeShard(path, grids, ShardSpec{i, 3});
        shardFiles.push_back(path);
    }
    const std::string merged = tempPath("emerged.jsonl");

    // Same shard twice: duplicate canonical indices.
    {
        std::ostringstream diag;
        EXPECT_FALSE(mergeTrajectories(
            {shardFiles[0], shardFiles[1], shardFiles[1]}, merged,
            diag));
        EXPECT_NE(diag.str().find("overlapping"), std::string::npos)
            << diag.str();
    }
    // A shard missing: index gaps.
    {
        std::ostringstream diag;
        EXPECT_FALSE(mergeTrajectories(
            {shardFiles[0], shardFiles[2]}, merged, diag));
        EXPECT_NE(diag.str().find("missing"), std::string::npos)
            << diag.str();
    }
    // Mixed formats.
    {
        std::ostringstream diag;
        EXPECT_FALSE(mergeTrajectories(shardFiles,
                                       tempPath("emerged.csv"),
                                       diag));
        EXPECT_NE(diag.str().find("format"), std::string::npos)
            << diag.str();
    }
    // Malformed record.
    {
        const std::string bad = tempPath("bad.jsonl");
        spit(bad, "{\"scenario\":\"alpha\",\"index\":\n");
        std::ostringstream diag;
        EXPECT_FALSE(
            mergeTrajectories({shardFiles[0], bad}, merged, diag));
    }
    // A lone shard file whose records reveal the stride: the file
    // count contradicts it even though indices are a contiguous
    // prefix... of nothing — shard 1 alone starts at 0 with step 3.
    {
        std::ostringstream diag;
        EXPECT_FALSE(
            mergeTrajectories({shardFiles[0]}, merged, diag));
        EXPECT_NE(diag.str().find("missing"), std::string::npos)
            << diag.str();
    }
    // Shard files from different sweeps: same scenario, different
    // instruction budgets — must not fuse.
    {
        const std::vector<FakeGrid> other = {FakeGrid("alpha", 6)};
        const std::string path = tempPath("e_other.jsonl");
        {
            TrajectorySink sink(path);
            std::vector<RunConfig> cfgs = other[0].cfgs;
            for (RunConfig &c : cfgs)
                c.instructions = 4000; // grids[] uses 2000
            const std::vector<std::size_t> indices =
                shardRunIndices(cfgs.size(), ShardSpec{2, 3});
            std::vector<RunConfig> sliceCfgs;
            std::vector<RunResults> sliceResults;
            for (std::size_t i : indices) {
                sliceCfgs.push_back(cfgs[i]);
                sliceResults.push_back(other[0].results[i]);
            }
            sink.append("alpha", sliceCfgs, sliceResults, &indices);
            sink.close();
        }
        std::ostringstream diag;
        EXPECT_FALSE(mergeTrajectories(
            {shardFiles[0], path, shardFiles[2]}, merged, diag));
        EXPECT_NE(diag.str().find("different sweeps"),
                  std::string::npos)
            << diag.str();
    }
}

TEST(Merge, SuffixGapsAreCaughtByStrideOrManifestPlan)
{
    // The adversarial case: a 2-run grid over 2 shards leaves one
    // record per file, so the records alone carry no stride
    // evidence. A lone shard 1 must be refused outright, and with
    // the manifest plan the missing-suffix merge is caught by the
    // declared run count.
    const std::vector<FakeGrid> grids = {FakeGrid("alpha", 2)};
    std::vector<std::string> shardFiles;
    for (unsigned i = 1; i <= 2; ++i) {
        const std::string path =
            tempPath("sg" + std::to_string(i) + ".jsonl");
        writeShard(path, grids, ShardSpec{i, 2});
        shardFiles.push_back(path);
    }
    const std::string merged = tempPath("sg.merged.jsonl");

    {
        std::ostringstream diag;
        EXPECT_FALSE(
            mergeTrajectories({shardFiles[0]}, merged, diag));
        EXPECT_NE(diag.str().find("cannot be proven"),
                  std::string::npos)
            << diag.str();
        // Even with both files, no record-level evidence proves
        // completeness — without the manifest plan the merge must
        // refuse rather than silently accept a possibly-truncated
        // set.
        std::ostringstream diag2;
        EXPECT_FALSE(mergeTrajectories(shardFiles, merged, diag2));
        EXPECT_NE(diag2.str().find("cannot be proven"),
                  std::string::npos)
            << diag2.str();
    }
    {
        MergePlan plan;
        plan.shardCount = 2;
        plan.scenarios = {{"alpha", 2, 1, 0}};
        std::ostringstream diag;
        EXPECT_FALSE(mergeTrajectories({shardFiles[0]}, merged,
                                       diag, &plan));
        std::ostringstream diag2;
        EXPECT_TRUE(mergeTrajectories(shardFiles, merged, diag2,
                                      &plan))
            << diag2.str();
        // Plan with a wrong run count: records can't satisfy it.
        plan.scenarios = {{"alpha", 3, 1, 0}};
        std::ostringstream diag3;
        EXPECT_FALSE(mergeTrajectories(shardFiles, merged, diag3,
                                       &plan));
        EXPECT_NE(diag3.str().find("declare"), std::string::npos)
            << diag3.str();
    }
}

TEST(Merge, ManifestsReassembleByteIdentical)
{
    SweepOptions opts;
    opts.instructions = 2000;
    opts.explicitSeeds = {3, 5};
    opts.benchmarks = {"gcc", "fpppp"};
    const std::vector<ManifestScenario> scenarios = {
        {"alpha", 4, 2, 0x0123456789abcdefull},
        {"beta", 2, 2, 0xfedcba9876543210ull},
    };

    const std::string ref = tempPath("ref.manifest.json");
    writeManifestFile(ref, opts, "calendar", "BENCH.jsonl",
                      scenarios);

    std::vector<std::string> shardFiles;
    for (unsigned i = 1; i <= 3; ++i) {
        SweepOptions shardOpts = opts;
        shardOpts.shard = ShardSpec{i, 3};
        const std::string path =
            tempPath("m" + std::to_string(i) + ".json");
        writeManifestFile(path, shardOpts, "calendar",
                          "shard_" + std::to_string(i) + ".jsonl",
                          scenarios);
        shardFiles.push_back(path);
    }

    const std::string merged = tempPath("merged.manifest.json");
    std::ostringstream diag;
    ASSERT_TRUE(
        mergeManifests(shardFiles, merged, "BENCH.jsonl", diag))
        << diag.str();
    EXPECT_EQ(slurp(merged), slurp(ref));
}

TEST(Merge, ManifestsRejectMismatchesAndIncompleteSets)
{
    SweepOptions opts;
    opts.instructions = 2000;
    opts.explicitSeeds = {0};
    const std::vector<ManifestScenario> scenarios = {
        {"alpha", 4, 1, 0x1111111111111111ull}};

    std::vector<std::string> shardFiles;
    for (unsigned i = 1; i <= 2; ++i) {
        SweepOptions shardOpts = opts;
        shardOpts.shard = ShardSpec{i, 2};
        const std::string path =
            tempPath("mm" + std::to_string(i) + ".json");
        writeManifestFile(path, shardOpts, "calendar", "s.jsonl",
                          scenarios);
        shardFiles.push_back(path);
    }
    const std::string merged = tempPath("mm.merged.json");

    // A shard missing.
    {
        std::ostringstream diag;
        EXPECT_FALSE(
            mergeManifests({shardFiles[0]}, merged, "", diag));
    }
    // The same shard twice.
    {
        std::ostringstream diag;
        EXPECT_FALSE(mergeManifests({shardFiles[0], shardFiles[0]},
                                    merged, "", diag));
        EXPECT_NE(diag.str().find("twice"), std::string::npos)
            << diag.str();
    }
    // Disagreeing sweeps (different instruction budget).
    {
        SweepOptions other = opts;
        other.instructions = 4000;
        other.shard = ShardSpec{2, 2};
        const std::string path = tempPath("mm2b.json");
        writeManifestFile(path, other, "calendar", "s.jsonl",
                          scenarios);
        std::ostringstream diag;
        EXPECT_FALSE(mergeManifests({shardFiles[0], path}, merged,
                                    "", diag));
        EXPECT_NE(diag.str().find("disagrees"), std::string::npos)
            << diag.str();
    }
    // An unsharded manifest is not a shard.
    {
        const std::string path = tempPath("mm.unsharded.json");
        writeManifestFile(path, opts, "calendar", "s.jsonl",
                          scenarios);
        std::ostringstream diag;
        EXPECT_FALSE(mergeManifests({path}, merged, "", diag));
        EXPECT_NE(diag.str().find("not a shard"), std::string::npos)
            << diag.str();
    }
    // An unwritable destination returns false instead of dying.
    {
        std::ostringstream diag;
        EXPECT_FALSE(mergeManifests(
            shardFiles, "/nonexistent-dir/merged.json", "", diag));
        EXPECT_NE(diag.str().find("cannot open"), std::string::npos)
            << diag.str();
    }
}

TEST(Trajectory, ShardRecordsCarryCanonicalIndices)
{
    const FakeGrid grid("alpha", 5);
    const ShardSpec shard{2, 2}; // canonical indices 1, 3
    const std::vector<std::size_t> indices =
        shardRunIndices(grid.cfgs.size(), shard);
    ASSERT_EQ(indices, (std::vector<std::size_t>{1, 3}));

    std::vector<RunConfig> cfgs;
    std::vector<RunResults> results;
    for (std::size_t i : indices) {
        cfgs.push_back(grid.cfgs[i]);
        results.push_back(grid.results[i]);
    }
    std::ostringstream shardOut, fullOut;
    writeJsonLines(shardOut, "alpha", cfgs, results, &indices);
    writeJsonLines(fullOut, "alpha", grid.cfgs, grid.results);

    // Every shard record must be byte-identical to the same record
    // of the unsharded stream.
    std::vector<std::string> shardLines, fullLines;
    for (std::istringstream is(shardOut.str()); !is.eof();) {
        std::string line;
        if (std::getline(is, line))
            shardLines.push_back(line);
    }
    for (std::istringstream is(fullOut.str()); !is.eof();) {
        std::string line;
        if (std::getline(is, line))
            fullLines.push_back(line);
    }
    ASSERT_EQ(shardLines.size(), 2u);
    ASSERT_EQ(fullLines.size(), 5u);
    EXPECT_EQ(shardLines[0], fullLines[1]);
    EXPECT_EQ(shardLines[1], fullLines[3]);
}
