/**
 * @file
 * Tests for the `.gtrj` binary trajectory format (runner/gtrj.hh).
 *
 * The format's contract is exactness: a decoded record regenerates
 * the JSON-lines / CSV bytes of the native run, non-finite doubles
 * round-trip bit-for-bit, and a torn tail (mid-write SIGKILL) is
 * detected rather than misparsed. These tests pin the varint
 * encoding (including canonicality of the 10-byte case), the
 * header/version gate, the full record round trip through every
 * optional block (fabric, per-core, intervals), the byte-identity of
 * toJsonLines()/toCsv() against the strict reporters, the size
 * advantage over the text twin, and the TrajectorySink append-mode
 * header-once behavior the dispatch resume path relies on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "power/power_model.hh"
#include "runner/gtrj.hh"
#include "runner/reporter.hh"
#include "runner/stats.hh"
#include "runner/trajectory.hh"

using namespace gals;
using namespace gals::runner;

namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "galssim_gtrj_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** Every record reports the full power-model unit set (the encoder
 *  asserts it); fill it with distinguishable values. */
std::map<std::string, double>
fullUnitEnergies(double base)
{
    std::map<std::string, double> m;
    for (unsigned i = 0; i < numUnits; ++i)
        m[unitName(static_cast<Unit>(i))] = base + double(i) * 0.25;
    return m;
}

/** A config exercising hostile strings and the phase-seed
 *  sentinel. */
RunConfig
sampleConfig(std::uint64_t seed)
{
    RunConfig c;
    c.benchmark = "ad,pcm\"x";
    c.instructions = 2000;
    c.gals = true;
    c.seed = seed;
    // The follows-workload sentinel (~0) must survive the round trip
    // raw, not resolved.
    c.phaseSeed = phaseSeedFollowsWorkload;
    return c;
}

/** Results with non-finite doubles in both a metric column and a
 *  unit-energy cell. */
RunResults
sampleResults(std::uint64_t seed)
{
    RunResults r;
    r.benchmark = "ad,pcm\"x";
    r.gals = true;
    r.committed = 2000 + seed;
    r.fetched = 3000;
    r.wrongPathFetched = 400;
    r.ticks = 9000 + seed;
    r.timeSec = 0.5;
    r.ipcNominal = 0.25;
    r.energyJ = 2.0;
    r.avgPowerW = 4.0;
    r.fifoEvents = 12;
    r.avgSlipCycles = 1.5;
    r.misspecFraction = std::numeric_limits<double>::quiet_NaN();
    r.mispredictsPerKCommitted =
        -std::numeric_limits<double>::infinity();
    r.dirAccuracy = 0.75;
    r.unitEnergyNj = fullUnitEnergies(double(seed));
    r.unitEnergyNj[unitName(static_cast<Unit>(0))] =
        std::numeric_limits<double>::quiet_NaN();
    return r;
}

/** header + one frame per (cfg, result) pair. */
std::string
buildFile(const std::string &scenario,
          const std::vector<RunConfig> &cfgs,
          const std::vector<RunResults> &results,
          const std::vector<std::size_t> &indices)
{
    std::string buf = gtrj::fileHeader();
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        buf += gtrj::encodeRecord(scenario, indices[i], cfgs[i],
                                  results[i]);
    return buf;
}

// ---------------------------------------------------------------
// Varints
// ---------------------------------------------------------------

TEST(GtrjVarint, RoundTripsBoundaryValues)
{
    const std::uint64_t values[] = {0,         1,
                                    127,       128,
                                    300,       (1ull << 32) - 1,
                                    1ull << 32, ~std::uint64_t(0)};
    for (std::uint64_t v : values) {
        std::string buf;
        gtrj::appendVarint(buf, v);
        std::size_t pos = 0;
        std::uint64_t back = 0;
        ASSERT_TRUE(gtrj::readVarint(buf, pos, back)) << v;
        EXPECT_EQ(back, v);
        EXPECT_EQ(pos, buf.size()) << v;
    }

    // Single-byte and two-byte boundaries are exact.
    std::string one, two;
    gtrj::appendVarint(one, 127);
    gtrj::appendVarint(two, 128);
    EXPECT_EQ(one.size(), 1u);
    EXPECT_EQ(two.size(), 2u);
}

TEST(GtrjVarint, RejectsTruncatedAndOverlongEncodings)
{
    // Truncated: a continuation bit with nothing after it.
    std::size_t pos = 0;
    std::uint64_t v = 0;
    EXPECT_FALSE(gtrj::readVarint(std::string("\x80", 1), pos, v));

    // ~0 encodes as 10 bytes whose last byte is exactly 0x01: the
    // 10th byte may carry only bit 63.
    std::string max;
    gtrj::appendVarint(max, ~std::uint64_t(0));
    ASSERT_EQ(max.size(), 10u);
    EXPECT_EQ(static_cast<unsigned char>(max.back()), 0x01u);

    // A 10th byte with any other bit set is non-canonical garbage.
    std::string bad(9, '\x80');
    bad.push_back('\x02');
    pos = 0;
    EXPECT_FALSE(gtrj::readVarint(bad, pos, v));

    // An 11-byte encoding can never be valid.
    std::string over(10, '\x80');
    over.push_back('\x01');
    pos = 0;
    EXPECT_FALSE(gtrj::readVarint(over, pos, v));
}

// ---------------------------------------------------------------
// Header
// ---------------------------------------------------------------

TEST(GtrjHeader, AcceptsOwnHeaderRejectsForeignBytes)
{
    std::string err;
    std::size_t pos = 0;
    ASSERT_TRUE(gtrj::readHeader(gtrj::fileHeader(), pos, err));
    EXPECT_EQ(pos, gtrj::fileHeader().size());

    // Short buffer (a torn header from a killed writer).
    pos = 0;
    EXPECT_FALSE(gtrj::readHeader("GT", pos, err));

    // Wrong magic — a JSONL file fed to the binary reader.
    pos = 0;
    EXPECT_FALSE(gtrj::readHeader("{\"scenario\":1}", pos, err));

    // Right magic, unknown future version: readers reject rather
    // than guess at an unknown payload layout.
    std::string future(gtrj::magic, sizeof(gtrj::magic));
    gtrj::appendVarint(future, gtrj::formatVersion + 1);
    pos = 0;
    EXPECT_FALSE(gtrj::readHeader(future, pos, err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

// ---------------------------------------------------------------
// Record round trip
// ---------------------------------------------------------------

TEST(GtrjRecord, RoundTripsConfigMetricsAndNonFiniteDoubles)
{
    const RunConfig cfg = sampleConfig(7);
    const RunResults r = sampleResults(7);
    const std::string frame =
        gtrj::encodeRecord("fig05\"x", 42, cfg, r);

    std::size_t pos = 0;
    std::string_view payload;
    std::string err;
    ASSERT_EQ(gtrj::nextFrame(frame, pos, payload, err),
              gtrj::FrameStatus::ok);
    EXPECT_EQ(pos, frame.size());

    gtrj::DecodedRecord dec;
    ASSERT_TRUE(gtrj::decodePayload(payload, dec, err)) << err;
    EXPECT_EQ(dec.scenario, "fig05\"x");
    EXPECT_EQ(dec.index, 42u);
    EXPECT_EQ(dec.cfg.benchmark, cfg.benchmark);
    EXPECT_EQ(dec.cfg.instructions, cfg.instructions);
    EXPECT_EQ(dec.cfg.seed, cfg.seed);
    EXPECT_EQ(dec.cfg.phaseSeed, phaseSeedFollowsWorkload);
    EXPECT_TRUE(dec.cfg.gals);
    EXPECT_EQ(dec.results.committed, r.committed);
    EXPECT_EQ(dec.results.ticks, r.ticks);
    EXPECT_DOUBLE_EQ(dec.results.ipcNominal, r.ipcNominal);
    EXPECT_TRUE(std::isnan(dec.results.misspecFraction));
    EXPECT_TRUE(std::isinf(dec.results.mispredictsPerKCommitted));
    EXPECT_LT(dec.results.mispredictsPerKCommitted, 0.0);
    ASSERT_EQ(dec.results.unitEnergyNj.size(), std::size_t(numUnits));
    EXPECT_TRUE(std::isnan(
        dec.results.unitEnergyNj.at(unitName(static_cast<Unit>(0)))));
    EXPECT_TRUE(dec.results.intervals.empty());
    EXPECT_TRUE(dec.results.cores.empty());
}

TEST(GtrjRecord, RoundTripsFabricAndPerCoreBlocks)
{
    RunConfig cfg = sampleConfig(1);
    cfg.fabric.cores = 4;
    cfg.fabric.topology = TopologyKind::mesh2d;
    cfg.fabric.traffic = "hotspot:2";

    RunResults r = sampleResults(1);
    for (unsigned c = 0; c < 4; ++c) {
        CoreResults cr;
        cr.core = c;
        cr.committed = 500 + c;
        cr.ipcNominal = 0.5 + double(c);
        cr.energyJ = 0.25 * double(c);
        cr.fifoEvents = 3 * c;
        cr.msgsSent = c;
        cr.msgsReceived = 4 - c;
        cr.remoteStallCycles = 10 * c;
        cr.avgRemoteLatencyCycles = 12.5 + double(c);
        r.cores.push_back(cr);
    }

    const std::string frame = gtrj::encodeRecord("fabric", 3, cfg, r);
    std::size_t pos = 0;
    std::string_view payload;
    std::string err;
    ASSERT_EQ(gtrj::nextFrame(frame, pos, payload, err),
              gtrj::FrameStatus::ok);
    gtrj::DecodedRecord dec;
    ASSERT_TRUE(gtrj::decodePayload(payload, dec, err)) << err;
    EXPECT_EQ(dec.cfg.fabric.cores, 4u);
    EXPECT_EQ(dec.cfg.fabric.topology, TopologyKind::mesh2d);
    EXPECT_EQ(dec.cfg.fabric.traffic, "hotspot:2");
    ASSERT_EQ(dec.results.cores.size(), 4u);
    EXPECT_EQ(dec.results.cores[2].committed, 502u);
    EXPECT_EQ(dec.results.cores[2].msgsReceived, 2u);
    EXPECT_DOUBLE_EQ(dec.results.cores[3].avgRemoteLatencyCycles,
                     15.5);
}

TEST(GtrjRecord, RoundTripsIntervalSamples)
{
    RunConfig cfg = sampleConfig(2);
    cfg.intervalTicks = 5000;

    RunResults r = sampleResults(2);
    for (int i = 1; i <= 3; ++i) {
        IntervalSample s;
        s.tick = 5000u * unsigned(i);
        s.committed = 100u * unsigned(i);
        s.ipc = 0.1 * double(i);
        for (unsigned d = 0; d < numDomains; ++d)
            s.energyNj[d] = double(i) + 0.5 * double(d);
        s.fifoOcc = unsigned(i);
        r.intervals.push_back(s);
    }

    const std::string frame = gtrj::encodeRecord("fig05", 0, cfg, r);
    std::size_t pos = 0;
    std::string_view payload;
    std::string err;
    ASSERT_EQ(gtrj::nextFrame(frame, pos, payload, err),
              gtrj::FrameStatus::ok);
    gtrj::DecodedRecord dec;
    ASSERT_TRUE(gtrj::decodePayload(payload, dec, err)) << err;
    EXPECT_EQ(dec.cfg.intervalTicks, 5000u);
    ASSERT_EQ(dec.results.intervals.size(), 3u);
    EXPECT_EQ(dec.results.intervals[1].tick, Tick(10000));
    EXPECT_EQ(dec.results.intervals[1].committed, 200u);
    EXPECT_DOUBLE_EQ(dec.results.intervals[2].ipc, 0.3);
    EXPECT_DOUBLE_EQ(dec.results.intervals[2].energyNj[1], 3.5);
    EXPECT_EQ(dec.results.intervals[2].fifoOcc, 3u);
}

TEST(GtrjRecord, RejectsTrailingBytesAndUnknownFlags)
{
    const std::string frame =
        gtrj::encodeRecord("s", 0, sampleConfig(0), sampleResults(0));
    std::size_t pos = 0;
    std::string_view payload;
    std::string err;
    ASSERT_EQ(gtrj::nextFrame(frame, pos, payload, err),
              gtrj::FrameStatus::ok);

    // A payload with junk appended must not decode: the format has
    // no in-band skipping, so trailing bytes mean a layout mismatch.
    std::string padded(payload);
    padded.push_back('\x00');
    gtrj::DecodedRecord dec;
    EXPECT_FALSE(gtrj::decodePayload(padded, dec, err));

    // Corrupt the flags byte (after scenario, index and benchmark
    // strings) to set an undefined bit: readers reject rather than
    // misattribute the following bytes.
    std::string mangled(payload);
    std::size_t p = 0;
    std::uint64_t n = 0;
    ASSERT_TRUE(gtrj::readVarint(mangled, p, n)); // scenario len
    p += n;
    ASSERT_TRUE(gtrj::readVarint(mangled, p, n)); // index
    ASSERT_TRUE(gtrj::readVarint(mangled, p, n)); // benchmark len
    p += n;
    mangled[p] = static_cast<char>(0x80);
    EXPECT_FALSE(gtrj::decodePayload(mangled, dec, err));
    EXPECT_NE(err.find("flag"), std::string::npos) << err;
}

// ---------------------------------------------------------------
// Frame walking / torn tails
// ---------------------------------------------------------------

TEST(GtrjFrames, DetectsCleanEofAndTornTail)
{
    const std::string f1 =
        gtrj::encodeRecord("s", 0, sampleConfig(0), sampleResults(0));
    const std::string f2 =
        gtrj::encodeRecord("s", 1, sampleConfig(1), sampleResults(1));
    const std::string whole = gtrj::fileHeader() + f1 + f2;

    std::size_t pos = 0;
    std::string err;
    ASSERT_TRUE(gtrj::readHeader(whole, pos, err));
    std::string_view payload;
    EXPECT_EQ(gtrj::nextFrame(whole, pos, payload, err),
              gtrj::FrameStatus::ok);
    EXPECT_EQ(gtrj::nextFrame(whole, pos, payload, err),
              gtrj::FrameStatus::ok);
    EXPECT_EQ(gtrj::nextFrame(whole, pos, payload, err),
              gtrj::FrameStatus::eof);
    EXPECT_EQ(pos, whole.size());

    // Cut the second frame mid-payload: the walk reports torn, not
    // eof and not a bogus record.
    const std::string torn =
        whole.substr(0, gtrj::fileHeader().size() + f1.size() + 5);
    pos = 0;
    ASSERT_TRUE(gtrj::readHeader(torn, pos, err));
    EXPECT_EQ(gtrj::nextFrame(torn, pos, payload, err),
              gtrj::FrameStatus::ok);
    const std::size_t afterFirst = pos;
    EXPECT_EQ(gtrj::nextFrame(torn, pos, payload, err),
              gtrj::FrameStatus::torn);
    EXPECT_EQ(pos, afterFirst); // pos is not advanced past a torn tail

    EXPECT_EQ(gtrj::countFrames(whole), 2u);
    EXPECT_EQ(gtrj::countFrames(torn), 1u);
}

// ---------------------------------------------------------------
// parse byte-identity against the strict reporters
// ---------------------------------------------------------------

TEST(GtrjParse, JsonLinesMatchNativeReporterByteForByte)
{
    std::vector<RunConfig> cfgs = {sampleConfig(0), sampleConfig(1)};
    std::vector<RunResults> results = {sampleResults(0),
                                       sampleResults(1)};
    cfgs[1].intervalTicks = 5000;
    IntervalSample s;
    s.tick = 5000;
    s.committed = 123;
    s.ipc = 0.125;
    s.fifoOcc = 2;
    results[1].intervals.push_back(s);
    // Shard-style non-contiguous canonical indices.
    const std::vector<std::size_t> indices = {5, 9};

    const std::string buf =
        buildFile("fig05", cfgs, results, indices);

    std::ostringstream expected;
    writeJsonLines(expected, "fig05", cfgs, results, &indices);

    std::string text, err;
    ASSERT_TRUE(gtrj::toJsonLines(buf, text, err)) << err;
    EXPECT_EQ(text, expected.str());
}

TEST(GtrjParse, CsvMatchesNativeReporterByteForByte)
{
    std::vector<RunConfig> cfgs = {sampleConfig(0), sampleConfig(1)};
    std::vector<RunResults> results = {sampleResults(0),
                                       sampleResults(1)};
    const std::vector<std::size_t> indices = {0, 1};

    const std::string buf =
        buildFile("fig05", cfgs, results, indices);

    std::ostringstream expected;
    writeCsv(expected, "fig05", cfgs, results);

    std::string text, err;
    ASSERT_TRUE(gtrj::toCsv(buf, text, err)) << err;
    EXPECT_EQ(text, expected.str());
}

TEST(GtrjParse, RejectsTornInput)
{
    const std::string whole =
        gtrj::fileHeader() +
        gtrj::encodeRecord("s", 0, sampleConfig(0), sampleResults(0));
    std::string text, err;
    ASSERT_TRUE(gtrj::toJsonLines(whole, text, err)) << err;
    EXPECT_FALSE(
        gtrj::toJsonLines(whole.substr(0, whole.size() - 3), text,
                          err));
    EXPECT_FALSE(gtrj::toJsonLines("GT", text, err));
}

// ---------------------------------------------------------------
// Size: the whole point of the binary twin
// ---------------------------------------------------------------

TEST(GtrjSize, BinaryIsAtMostAThirdOfJsonLines)
{
    std::vector<RunConfig> cfgs;
    std::vector<RunResults> results;
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < 16; ++i) {
        cfgs.push_back(sampleConfig(i));
        // Realistic records: every metric column carries a value, and
        // the doubles need full shortest-round-trip precision in the
        // text twin (a simulated IPC is 0.23076923076923078, not 0).
        RunResults r = sampleResults(i);
        std::size_t m = 0;
        for (const MetricAccessor &acc : metricAccessors()) {
            ++m;
            if (acc.integral)
                acc.setU(r, 10000 + 137 * m * (i + 1));
            else
                acc.set(r, double(m * (i + 1)) / 13.0);
        }
        r.unitEnergyNj = fullUnitEnergies(double(i) + 1.0 / 7.0);
        results.push_back(r);
        indices.push_back(i);
    }
    const std::string bin = buildFile("fig05", cfgs, results, indices);
    std::ostringstream text;
    writeJsonLines(text, "fig05", cfgs, results, &indices);
    EXPECT_LE(bin.size() * 3, text.str().size())
        << bin.size() << " vs " << text.str().size();
}

// ---------------------------------------------------------------
// CLI path validation
// ---------------------------------------------------------------

TEST(GtrjPaths, CliPathParseIsStrictWhileLegacyParseIsLenient)
{
    TrajectoryFormat f = TrajectoryFormat::csv;
    EXPECT_TRUE(trajectoryFormatForCliPath("a/run.jsonl", f));
    EXPECT_EQ(f, TrajectoryFormat::jsonLines);
    EXPECT_TRUE(trajectoryFormatForCliPath("run.json", f));
    EXPECT_EQ(f, TrajectoryFormat::jsonLines);
    EXPECT_TRUE(trajectoryFormatForCliPath("run.csv", f));
    EXPECT_EQ(f, TrajectoryFormat::csv);
    EXPECT_TRUE(trajectoryFormatForCliPath("run.gtrj", f));
    EXPECT_EQ(f, TrajectoryFormat::gtrj);

    // Unknown extensions are a usage error at the CLI...
    EXPECT_FALSE(trajectoryFormatForCliPath("out", f));
    EXPECT_FALSE(trajectoryFormatForCliPath("run.txt", f));
    EXPECT_FALSE(trajectoryFormatForCliPath("run.GTRJ", f));

    // ...but the lenient mapping (archives, internal paths) still
    // defaults them to JSON lines.
    EXPECT_EQ(trajectoryFormatForPath("out"),
              TrajectoryFormat::jsonLines);
    EXPECT_EQ(trajectoryFormatForPath("run.gtrj"),
              TrajectoryFormat::gtrj);
}

// ---------------------------------------------------------------
// TrajectorySink gtrj backend
// ---------------------------------------------------------------

TEST(GtrjSink, StreamedAppendMatchesHandBuiltFile)
{
    const std::string path = tempPath("sink.gtrj");
    std::remove(path.c_str());

    std::vector<RunConfig> cfgs = {sampleConfig(0), sampleConfig(1)};
    std::vector<RunResults> results = {sampleResults(0),
                                       sampleResults(1)};
    {
        TrajectorySink sink(path);
        EXPECT_EQ(sink.format(), TrajectoryFormat::gtrj);
        sink.appendOne("fig05", cfgs[0], results[0], 0);
        sink.appendOne("fig05", cfgs[1], results[1], 1);
        sink.close();
    }
    EXPECT_EQ(slurp(path),
              buildFile("fig05", cfgs, results, {0, 1}));
    std::remove(path.c_str());
}

TEST(GtrjSink, AppendModeWritesTheHeaderExactlyOnce)
{
    const std::string path = tempPath("resume.gtrj");
    std::remove(path.c_str());

    std::vector<RunConfig> cfgs = {sampleConfig(0), sampleConfig(1)};
    std::vector<RunResults> results = {sampleResults(0),
                                       sampleResults(1)};
    {
        TrajectorySink sink(path);
        sink.appendOne("fig05", cfgs[0], results[0], 0);
        sink.close();
    }
    {
        // A resumed worker reopens in append mode: the header is
        // already on disk and must not repeat.
        TrajectorySink sink(path, /*appendMode=*/true);
        sink.appendOne("fig05", cfgs[1], results[1], 1);
        sink.close();
    }
    EXPECT_EQ(slurp(path),
              buildFile("fig05", cfgs, results, {0, 1}));

    {
        // Append mode on an empty file (the resume scan truncated a
        // torn header to zero bytes) writes the header fresh.
        std::ofstream(path, std::ios::trunc).close();
        TrajectorySink sink(path, /*appendMode=*/true);
        sink.appendOne("fig05", cfgs[0], results[0], 0);
        sink.close();
    }
    EXPECT_EQ(slurp(path), buildFile("fig05", {cfgs[0]},
                                     {results[0]}, {0}));
    std::remove(path.c_str());
}

} // namespace
