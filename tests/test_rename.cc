/**
 * @file
 * Tests for the rename unit: RAT translation, free-list conservation,
 * epochs, checkpoint/restore, and commit/squash freeing.
 */

#include <gtest/gtest.h>

#include "cpu/rename.hh"

using namespace gals;

namespace
{

DynInst
makeOp(RegId dest, RegId s0 = 0, RegId s1 = 1)
{
    DynInst di;
    di.cls = InstClass::intAlu;
    di.numSrcs = 2;
    di.srcs[0] = s0;
    di.srcs[1] = s1;
    di.dest = dest;
    return di;
}

} // namespace

TEST(Rename, InitialIdentityMapping)
{
    RenameUnit r(72, 72);
    for (RegId a = 0; a < 32; ++a)
        EXPECT_EQ(r.mapOf(a), a);
    EXPECT_EQ(r.mapOf(32), 72); // first fp arch reg -> fp base
}

TEST(Rename, AllocatesNewDest)
{
    RenameUnit r(72, 72);
    DynInst di = makeOp(5);
    r.rename(di);
    EXPECT_NE(di.physDest, invalidPhysReg);
    EXPECT_NE(di.physDest, 5);
    EXPECT_EQ(di.oldPhysDest, 5);
    EXPECT_EQ(r.mapOf(5), di.physDest);
}

TEST(Rename, SourcesReadCurrentMapping)
{
    RenameUnit r(72, 72);
    DynInst w = makeOp(7);
    r.rename(w);
    DynInst rd = makeOp(8, 7, 7);
    r.rename(rd);
    EXPECT_EQ(rd.physSrcs[0], w.physDest);
    EXPECT_EQ(rd.srcEpochs[0], w.destEpoch);
}

TEST(Rename, FreeListConservation)
{
    RenameUnit r(72, 72);
    EXPECT_EQ(r.freeIntRegs(), 40u);
    std::vector<DynInst> ops;
    for (int i = 0; i < 10; ++i) {
        ops.push_back(makeOp(static_cast<RegId>(i % 32)));
        r.rename(ops.back());
    }
    EXPECT_EQ(r.freeIntRegs(), 30u);
    for (auto &op : ops)
        r.commitFree(op);
    EXPECT_EQ(r.freeIntRegs(), 40u);
}

TEST(Rename, ExhaustionDetected)
{
    RenameUnit r(34, 34); // only 2 spare per class
    DynInst a = makeOp(1), b = makeOp(2), c = makeOp(3);
    EXPECT_TRUE(r.canRename(a));
    r.rename(a);
    r.rename(b);
    EXPECT_FALSE(r.canRename(c));
    // Non-writing instructions can always rename.
    DynInst st;
    st.cls = InstClass::store;
    st.numSrcs = 2;
    st.srcs[0] = 0;
    st.srcs[1] = 1;
    EXPECT_TRUE(r.canRename(st));
}

TEST(Rename, SeparateIntFpPools)
{
    RenameUnit r(72, 72);
    DynInst fp;
    fp.cls = InstClass::fpAlu;
    fp.numSrcs = 2;
    fp.srcs[0] = 33;
    fp.srcs[1] = 34;
    fp.dest = 40;
    r.rename(fp);
    EXPECT_EQ(r.freeIntRegs(), 40u);
    EXPECT_EQ(r.freeFpRegs(), 39u);
    EXPECT_GE(fp.physDest, 72);
}

TEST(Rename, EpochIncrementsPerAllocation)
{
    RenameUnit r(34, 34);
    DynInst a = makeOp(1);
    r.rename(a);
    r.commitFree(a); // frees old phys 1
    // Recycle until the same phys reg comes around.
    DynInst b = makeOp(1);
    r.rename(b);
    EXPECT_GE(b.destEpoch, 1u);
    if (a.physDest == b.physDest) {
        EXPECT_GT(b.destEpoch, a.destEpoch);
    }
}

TEST(Rename, CheckpointRestore)
{
    RenameUnit r(72, 72);
    DynInst a = makeOp(5);
    r.rename(a);
    r.checkpoint(100);
    const PhysRegId mapped = r.mapOf(5);

    DynInst wrong1 = makeOp(5), wrong2 = makeOp(6);
    r.rename(wrong1);
    r.rename(wrong2);
    EXPECT_NE(r.mapOf(5), mapped);

    r.restore(100);
    r.squashFree(wrong1);
    r.squashFree(wrong2);
    EXPECT_EQ(r.mapOf(5), mapped);
    EXPECT_EQ(r.freeIntRegs(), 39u); // only a's allocation outstanding
    EXPECT_FALSE(r.hasCheckpoint());
}

TEST(Rename, SquashFreeReturnsAllocated)
{
    RenameUnit r(72, 72);
    DynInst a = makeOp(3);
    r.rename(a);
    EXPECT_EQ(r.freeIntRegs(), 39u);
    r.squashFree(a);
    EXPECT_EQ(r.freeIntRegs(), 40u);
}

TEST(Rename, OccupancyCounters)
{
    RenameUnit r(72, 72);
    // Initially only the 32 architectural mappings are live.
    EXPECT_EQ(r.intRenamesInFlight(), 0u);
    DynInst a = makeOp(1);
    r.rename(a);
    EXPECT_EQ(r.intRenamesInFlight(), 1u);
}

TEST(Rename, DiscardCheckpointIsIdempotent)
{
    RenameUnit r(72, 72);
    r.checkpoint(5);
    r.discardCheckpoint();
    EXPECT_FALSE(r.hasCheckpoint());
    r.discardCheckpoint();
    EXPECT_FALSE(r.hasCheckpoint());
}
