/**
 * @file
 * Tests for the voltage/frequency scaling math (paper equation 1):
 * delay-factor properties, the bisection inverse, energy factors, the
 * named experiment policies and the "ideal" scaling bound.
 */

#include <gtest/gtest.h>

#include "dvfs/dvfs_policy.hh"
#include "dvfs/vscale.hh"

using namespace gals;

namespace
{
const TechParams &tech = defaultTech();
}

TEST(Vscale, NominalDelayIsUnity)
{
    EXPECT_DOUBLE_EQ(delayFactor(tech.vddNominal, tech), 1.0);
}

TEST(Vscale, LowerVoltageIsSlower)
{
    EXPECT_GT(delayFactor(1.2, tech), 1.0);
    EXPECT_GT(delayFactor(0.8, tech), delayFactor(1.2, tech));
}

TEST(Vscale, SolverInvertsDelayFactor)
{
    for (const double s : {1.0, 1.111, 1.25, 1.5, 2.0, 3.0, 5.0}) {
        const double v = vddForSlowdown(s, tech);
        EXPECT_NEAR(delayFactor(v, tech), s, 1e-6) << "slowdown " << s;
        EXPECT_GT(v, tech.vt);
        EXPECT_LE(v, tech.vddNominal);
    }
}

TEST(Vscale, SlowdownOneKeepsNominal)
{
    EXPECT_DOUBLE_EQ(vddForSlowdown(1.0, tech), tech.vddNominal);
}

TEST(Vscale, EnergyFactorQuadratic)
{
    EXPECT_DOUBLE_EQ(energyFactor(tech.vddNominal, tech), 1.0);
    EXPECT_NEAR(energyFactor(tech.vddNominal / 2, tech), 0.25, 1e-12);
}

TEST(Vscale, PaperAlphaValue)
{
    // Paper section 5.2: alpha = 1.6 for 0.13 um devices.
    EXPECT_DOUBLE_EQ(tech.alpha, 1.6);
}

TEST(Vscale, MonotoneSlowdownVoltage)
{
    double prev = tech.vddNominal + 1;
    for (double s = 1.0; s <= 4.0; s += 0.25) {
        const double v = vddForSlowdown(s, tech);
        EXPECT_LT(v, prev);
        prev = v;
    }
}

TEST(DvfsSetting, VddPerDomain)
{
    DvfsSetting d;
    d.slowdown[domainIndex(DomainId::fpd)] = 2.0;
    EXPECT_DOUBLE_EQ(d.vddOf(DomainId::intd, tech), tech.vddNominal);
    EXPECT_LT(d.vddOf(DomainId::fpd, tech), tech.vddNominal);
    EXPECT_FALSE(d.allNominal());
}

TEST(DvfsSetting, VoltageScalingCanBeDisabled)
{
    DvfsSetting d;
    d.slowdown[domainIndex(DomainId::fpd)] = 2.0;
    d.scaleVoltage = false;
    EXPECT_DOUBLE_EQ(d.vddOf(DomainId::fpd, tech), tech.vddNominal);
}

TEST(DvfsSetting, DefaultAllNominal)
{
    DvfsSetting d;
    EXPECT_TRUE(d.allNominal());
}

TEST(Policy, SlowdownFromPercent)
{
    EXPECT_DOUBLE_EQ(slowdownFromPercent(0.0), 1.0);
    EXPECT_NEAR(slowdownFromPercent(10.0), 1.0 / 0.9, 1e-12);
    EXPECT_NEAR(slowdownFromPercent(50.0), 2.0, 1e-12);
}

TEST(Policy, GenericMatchesFigure11)
{
    const DvfsPolicy p = genericSlowdownPolicy();
    EXPECT_NEAR(p.setting.slowdown[domainIndex(DomainId::fetch)],
                1.0 / 0.9, 1e-9);
    EXPECT_NEAR(p.setting.slowdown[domainIndex(DomainId::memd)],
                1.0 / 0.9, 1e-9);
    EXPECT_NEAR(p.setting.slowdown[domainIndex(DomainId::fpd)], 2.0,
                1e-9);
    EXPECT_DOUBLE_EQ(p.setting.slowdown[domainIndex(DomainId::intd)],
                     1.0);
}

TEST(Policy, IjpegSweepMatchesFigure12)
{
    const auto policies = ijpegSweepPolicies();
    ASSERT_EQ(policies.size(), 4u);
    EXPECT_EQ(policies[0].name, "gals-00");
    EXPECT_EQ(policies[3].name, "gals-50");
    for (const auto &p : policies) {
        EXPECT_NEAR(p.setting.slowdown[domainIndex(DomainId::fetch)],
                    1.0 / 0.9, 1e-9);
        EXPECT_NEAR(p.setting.slowdown[domainIndex(DomainId::fpd)],
                    1.0 / 0.8, 1e-9);
    }
    EXPECT_NEAR(policies[3].setting.slowdown[domainIndex(
                    DomainId::memd)],
                2.0, 1e-9);
}

TEST(Policy, GccMatchesFigure13)
{
    const DvfsPolicy g1 = gccFpPolicy(1);
    const DvfsPolicy g2 = gccFpPolicy(2);
    EXPECT_NEAR(g1.setting.slowdown[domainIndex(DomainId::fpd)], 2.0,
                1e-9);
    EXPECT_NEAR(g2.setting.slowdown[domainIndex(DomainId::fpd)], 3.0,
                1e-9);
    EXPECT_EQ(g1.name, "gals-1");
    EXPECT_EQ(g2.name, "gals-2");
}

TEST(Policy, PerlFp3x)
{
    const DvfsPolicy p = perlFpPolicy();
    EXPECT_NEAR(p.setting.slowdown[domainIndex(DomainId::fpd)], 3.0,
                1e-9);
}

TEST(Ideal, ScalingBound)
{
    const IdealScaling is = idealScalingForPerf(0.8, tech);
    EXPECT_NEAR(is.slowdown, 1.25, 1e-9);
    EXPECT_LT(is.vdd, tech.vddNominal);
    EXPECT_LT(is.energyFactor, 1.0);
    EXPECT_LT(is.powerFactor, is.energyFactor);
}

TEST(Ideal, PerfectPerfIsIdentity)
{
    const IdealScaling is = idealScalingForPerf(1.0, tech);
    EXPECT_DOUBLE_EQ(is.slowdown, 1.0);
    EXPECT_DOUBLE_EQ(is.energyFactor, 1.0);
}

TEST(Ideal, MoreSlowdownMoreSavings)
{
    const IdealScaling a = idealScalingForPerf(0.9, tech);
    const IdealScaling b = idealScalingForPerf(0.7, tech);
    EXPECT_LT(b.energyFactor, a.energyFactor);
}
