/**
 * @file
 * Tests for the record formats and replication statistics behind
 * archivable sweeps: every JSON-lines record must parse as strict
 * JSON (escaping, non-finite -> null), CSV must be RFC-4180 (quoted
 * fields, non-finite -> empty), manifests must be byte-deterministic,
 * and the multi-seed aggregation must produce textbook mean / CI
 * numbers. The JSON checks go through a real recursive-descent
 * parser, not substring matching, so structural corruption cannot
 * slip through.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "runner/reporter.hh"
#include "runner/scenario.hh"
#include "runner/stats.hh"
#include "runner/trajectory.hh"

using namespace gals;
using namespace gals::runner;

namespace
{

/**
 * Minimal strict JSON parser (validator): objects, arrays, strings
 * with escapes, numbers, true/false/null. Returns true iff the whole
 * input is exactly one valid JSON value. Deliberately rejects the
 * bare `nan` / `inf` tokens %.17g would produce.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    const std::string &s_;
    std::size_t pos_ = 0;

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }
    bool
    eat(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }
    void
    skipWs()
    {
        while (pos_ < s_.size() && std::isspace(
                   static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }
    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p)
            if (!eat(*p))
                return false;
        return true;
    }

    bool
    string()
    {
        if (!eat('"'))
            return false;
        while (pos_ < s_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(s_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return false; // unescaped control character
            if (c == '\\') {
                ++pos_;
                const char e = peek();
                if (e == 'u') {
                    ++pos_;
                    for (int i = 0; i < 4; ++i, ++pos_)
                        if (!std::isxdigit(static_cast<unsigned char>(
                                peek())))
                            return false;
                } else if (std::strchr("\"\\/bfnrt", e) && e) {
                    ++pos_;
                } else {
                    return false;
                }
            } else {
                ++pos_;
            }
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        eat('-');
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return false;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (eat('.')) {
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    value()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            if (!value())
                return false;
            skipWs();
            if (eat('}'))
                return true;
            if (!eat(','))
                return false;
        }
    }

    bool
    array()
    {
        if (!eat('['))
            return false;
        skipWs();
        if (eat(']'))
            return true;
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (eat(']'))
                return true;
            if (!eat(','))
                return false;
        }
    }
};

bool
everyLineIsStrictJson(const std::string &text)
{
    std::istringstream lines(text);
    std::string line;
    bool any = false;
    while (std::getline(lines, line)) {
        any = true;
        if (!JsonValidator(line).valid())
            return false;
    }
    return any;
}

/** A synthetic run with hostile strings and simple exact doubles. */
RunConfig
awkwardConfig()
{
    RunConfig c;
    c.benchmark = "ad,pcm\"x";
    c.instructions = 1000;
    c.gals = true;
    c.seed = 7;
    return c;
}

RunResults
awkwardResults()
{
    RunResults r;
    r.benchmark = "ad,pcm\"x";
    r.gals = true;
    r.committed = 1000;
    r.fetched = 1500;
    r.wrongPathFetched = 500;
    r.ticks = 4000;
    r.timeSec = 0.5;
    r.ipcNominal = 0.25;
    r.energyJ = 2.0;
    r.avgPowerW = 4.0;
    r.fifoEvents = 12;
    r.avgSlipCycles = 1.5;
    r.avgFifoSlipCycles = 0.5;
    r.misspecFraction = std::numeric_limits<double>::quiet_NaN();
    r.mispredictsPerKCommitted =
        std::numeric_limits<double>::infinity();
    r.dirAccuracy = 0.75;
    r.avgRobOcc = 8.0;
    r.avgIntRenames = 4.0;
    r.avgFpRenames = 2.0;
    r.intIQOcc = 1.0;
    r.fpIQOcc = 0.5;
    r.memIQOcc = 0.25;
    r.il1MissRate = 0.125;
    r.dl1MissRate = 0.0625;
    r.l2MissRate = 0.03125;
    r.unitEnergyNj = {{"alu", 1.5},
                      {"we\"ird,unit",
                       std::numeric_limits<double>::quiet_NaN()}};
    return r;
}

/** Helpers shared by the replication tests: a 2-point grid (gcc
 *  base/gals) whose ipcNominal samples over 3 replicas are known. */
std::vector<RunResults>
replicatedResults(std::size_t gridSize, std::size_t replicas)
{
    std::vector<RunResults> all;
    for (std::size_t r = 0; r < replicas; ++r) {
        for (std::size_t g = 0; g < gridSize; ++g) {
            RunResults res;
            res.benchmark = "gcc";
            res.gals = g % 2 == 1;
            // ipc samples per grid point: {1,2,3} + g
            res.ipcNominal = double(1 + r + g);
            res.committed = 100 * (r + 1);
            res.energyJ = 2.0;
            res.unitEnergyNj = {{"alu", double(10 * (r + 1))}};
            all.push_back(res);
        }
    }
    return all;
}

} // namespace

TEST(JsonLines, EscapesStringsAndParses)
{
    std::ostringstream os;
    writeJsonLines(os, "sce\"na,rio", {awkwardConfig()},
                   {awkwardResults()});
    const std::string text = os.str();

    EXPECT_TRUE(everyLineIsStrictJson(text)) << text;
    // The quote inside the benchmark name must be escaped, and no
    // raw nan/inf tokens may survive.
    EXPECT_NE(text.find("\"benchmark\":\"ad,pcm\\\"x\""),
              std::string::npos);
    EXPECT_NE(text.find("\"scenario\":\"sce\\\"na,rio\""),
              std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
    EXPECT_NE(text.find("\"misspec_fraction\":null"),
              std::string::npos);
    EXPECT_NE(text.find("\"mispredicts_per_k\":null"),
              std::string::npos);
}

TEST(JsonLines, ControlCharactersEscaped)
{
    RunConfig c;
    RunResults r;
    r.benchmark = "a\nb\tc";
    std::ostringstream os;
    writeJsonLines(os, "s", {c}, {r});
    EXPECT_TRUE(everyLineIsStrictJson(os.str())) << os.str();
    EXPECT_NE(os.str().find("a\\nb\\tc"), std::string::npos);
}

TEST(Csv, GoldenRowWithQuotingAndNonFinite)
{
    std::ostringstream os;
    writeCsv(os, "tra,j", {awkwardConfig()}, {awkwardResults()});
    std::istringstream lines(os.str());
    std::string header, row;
    ASSERT_TRUE(std::getline(lines, header));
    ASSERT_TRUE(std::getline(lines, row));

    EXPECT_EQ(header,
              "scenario,index,benchmark,gals,dynamic_dvfs,"
              "instructions,seed,phase_seed,committed,fetched,"
              "wrong_path_fetched,ticks,time_sec,ipc_nominal,"
              "energy_j,avg_power_w,fifo_events,avg_slip_cycles,"
              "avg_fifo_slip_cycles,misspec_fraction,"
              "mispredicts_per_k,dir_accuracy,avg_rob_occ,"
              "avg_int_renames,avg_fp_renames,int_iq_occ,fp_iq_occ,"
              "mem_iq_occ,il1_miss_rate,dl1_miss_rate,l2_miss_rate,"
              "energy_nj.alu,\"energy_nj.we\"\"ird,unit\"");
    // RFC 4180: scenario and benchmark quoted (comma / quote),
    // internal quotes doubled; nan -> empty, inf -> empty.
    EXPECT_EQ(row,
              "\"tra,j\",0,\"ad,pcm\"\"x\",1,0,1000,7,7,1000,1500,"
              "500,4000,0.5,0.25,2,4,12,1.5,0.5,,,0.75,8,4,2,1,0.5,"
              "0.25,0.125,0.0625,0.03125,1.5,");
}

TEST(Csv, PlainFieldsStayUnquoted)
{
    RunConfig c;
    c.benchmark = "gcc";
    RunResults r;
    r.benchmark = "gcc";
    std::ostringstream os;
    writeCsv(os, "fig05", {c}, {r});
    EXPECT_EQ(os.str().find('"'), std::string::npos);
    EXPECT_EQ(os.str().rfind("scenario,index,benchmark", 0), 0u);
}

TEST(FormatPrimitives, JsonQuoteAndCsvField)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(jsonQuote(std::string("x\x01y")), "\"x\\u0001y\"");
    EXPECT_EQ(csvField("plain"), "plain");
    EXPECT_EQ(csvField("a,b"), "\"a,b\"");
    EXPECT_EQ(csvField("a\"b"), "\"a\"\"b\"");
    EXPECT_EQ(csvField("a\nb"), "\"a\nb\"");
}

TEST(Stats, SummarizeMatchesTextbookCi)
{
    const MetricSummary s = summarize({1.0, 2.0, 3.0});
    EXPECT_EQ(s.n, 3u);
    EXPECT_DOUBLE_EQ(s.mean, 2.0);
    EXPECT_DOUBLE_EQ(s.stddev, 1.0);
    // 95% CI half-width: t(dof=2) * sd / sqrt(n).
    EXPECT_DOUBLE_EQ(s.ci95, tCritical95(2) * 1.0 / std::sqrt(3.0));
    EXPECT_NEAR(tCritical95(2), 4.3027, 1e-9);

    const MetricSummary one = summarize({5.0});
    EXPECT_DOUBLE_EQ(one.mean, 5.0);
    EXPECT_DOUBLE_EQ(one.ci95, 0.0);

    // t decreases toward the normal asymptote; the step
    // approximation past dof 30 uses each bracket's lower-dof
    // (larger) value so CIs are never understated.
    EXPECT_GT(tCritical95(1), tCritical95(2));
    EXPECT_GT(tCritical95(30), tCritical95(121));
    EXPECT_NEAR(tCritical95(31), 2.0395, 1e-9);  // t(31), not t(40)
    EXPECT_NEAR(tCritical95(1000), 1.9799, 1e-9); // t(121) floor
    EXPECT_GE(tCritical95(30), tCritical95(31));
    EXPECT_GE(tCritical95(40), tCritical95(41));
    EXPECT_GE(tCritical95(60), tCritical95(61));
}

TEST(Stats, SummarizeReplicasThreeSeedGrid)
{
    const std::size_t gridSize = 2;
    const auto all = replicatedResults(gridSize, 3);
    const ReplicaSummary summary = summarizeReplicas(gridSize, all);

    EXPECT_EQ(summary.gridSize, 2u);
    EXPECT_EQ(summary.replicas, 3u);
    ASSERT_EQ(summary.mean.size(), 2u);

    // Grid point 0: ipc samples {1,2,3}; grid point 1: {2,3,4}.
    const MetricSummary *ipc0 = summary.metric(0, "ipc_nominal");
    const MetricSummary *ipc1 = summary.metric(1, "ipc_nominal");
    ASSERT_NE(ipc0, nullptr);
    ASSERT_NE(ipc1, nullptr);
    EXPECT_DOUBLE_EQ(ipc0->mean, 2.0);
    EXPECT_DOUBLE_EQ(ipc1->mean, 3.0);
    EXPECT_DOUBLE_EQ(ipc0->ci95,
                     tCritical95(2) * 1.0 / std::sqrt(3.0));

    // The mean RunResults carry metric-wise means (integers
    // rounded) and replica-averaged unit energies.
    EXPECT_DOUBLE_EQ(summary.mean[0].ipcNominal, 2.0);
    EXPECT_EQ(summary.mean[0].committed, 200u); // mean of 100,200,300
    EXPECT_DOUBLE_EQ(summary.mean[0].unitEnergyNj.at("alu"), 20.0);
    EXPECT_EQ(summary.mean[0].benchmark, "gcc");
    EXPECT_FALSE(summary.mean[0].gals);
    EXPECT_TRUE(summary.mean[1].gals);

    // Zero-spread metric: CI must be exactly 0.
    const MetricSummary *e = summary.metric(0, "energy_j");
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->mean, 2.0);
    EXPECT_DOUBLE_EQ(e->ci95, 0.0);

    EXPECT_EQ(summary.metric(0, "no_such_metric"), nullptr);
}

TEST(Stats, RatioCi95DeltaMethod)
{
    // a = 2 ± 0.2, b = 4 ± 0.4 -> a/b = 0.5, rel errs 0.1 each.
    const double ci = ratioCi95(2.0, 0.2, 4.0, 0.4);
    EXPECT_NEAR(ci, 0.5 * std::sqrt(0.02), 1e-12);
    EXPECT_TRUE(std::isnan(ratioCi95(0.0, 0.1, 1.0, 0.1)));
}

TEST(Stats, SummaryReportersEmitCiColumnsAndParse)
{
    const std::size_t gridSize = 2;
    const auto all = replicatedResults(gridSize, 3);
    const ReplicaSummary summary = summarizeReplicas(gridSize, all);
    const std::vector<RunConfig> gridCfgs(2);

    std::ostringstream json;
    writeJsonLinesSummary(json, "fig05", gridCfgs, summary);
    EXPECT_TRUE(everyLineIsStrictJson(json.str())) << json.str();
    EXPECT_NE(json.str().find("\"replicas\":3"), std::string::npos);
    EXPECT_NE(json.str().find("\"ipc_nominal_ci95\":"),
              std::string::npos);

    std::ostringstream csv;
    writeCsvSummary(csv, "fig05", gridCfgs, summary);
    std::istringstream lines(csv.str());
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_NE(header.find(",replicas"), std::string::npos);
    EXPECT_NE(header.find(",ipc_nominal,ipc_nominal_ci95"),
              std::string::npos);
    std::string row;
    std::size_t rows = 0;
    while (std::getline(lines, row))
        ++rows;
    EXPECT_EQ(rows, gridSize); // one aggregated row per grid point
}

TEST(SweepOptions, SeedListSemantics)
{
    SweepOptions opts;
    EXPECT_EQ(opts.seedList(), std::vector<std::uint64_t>{0});
    EXPECT_FALSE(opts.replicated());

    opts.seed = 5;
    opts.seedReplicas = 3;
    EXPECT_EQ(opts.seedList(),
              (std::vector<std::uint64_t>{5, 6, 7}));
    EXPECT_TRUE(opts.replicated());

    opts.explicitSeeds = {42, 7};
    EXPECT_EQ(opts.seedList(),
              (std::vector<std::uint64_t>{42, 7}));
}

TEST(SweepOptions, ExpandReplicatedRunsLayout)
{
    Scenario s;
    s.name = "toy";
    s.makeRuns = [](const SweepOptions &o) {
        std::vector<RunConfig> runs(2);
        runs[0].benchmark = "gcc";
        runs[1].benchmark = "adpcm";
        for (RunConfig &r : runs) {
            r.seed = o.seed;
            r.instructions = o.instructions;
        }
        return runs;
    };

    SweepOptions opts;
    opts.seed = 10;
    opts.seedReplicas = 3;
    std::size_t gridSize = 0;
    const auto all = expandReplicatedRuns(s, opts, &gridSize);

    EXPECT_EQ(gridSize, 2u);
    ASSERT_EQ(all.size(), 6u);
    // Replica r occupies [r*G, (r+1)*G) with seed 10+r throughout.
    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_EQ(all[r * 2].seed, 10 + r);
        EXPECT_EQ(all[r * 2 + 1].seed, 10 + r);
        EXPECT_EQ(all[r * 2].benchmark, "gcc");
        EXPECT_EQ(all[r * 2 + 1].benchmark, "adpcm");
    }
}

TEST(Manifest, DeterministicAndParses)
{
    SweepOptions opts;
    opts.instructions = 2000;
    opts.seed = 0;
    opts.seedReplicas = 3;
    opts.benchmarks = {"gcc", "ad,pcm"};

    RunConfig cfg;
    cfg.benchmark = "gcc";
    const std::vector<ManifestScenario> scenarios = {
        {"fig05", 8, 3, runConfigHash(std::vector<RunConfig>(24, cfg))},
        {"fig09", 8, 3, 0x1234abcd5678ef00ull},
    };

    std::ostringstream a, b;
    writeManifest(a, opts, "calendar", "out.jsonl", scenarios);
    writeManifest(b, opts, "calendar", "out.jsonl", scenarios);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_TRUE(JsonValidator(a.str()).valid()) << a.str();
    EXPECT_NE(a.str().find("\"seeds\": [0, 1, 2]"),
              std::string::npos);
    EXPECT_NE(a.str().find("\"galssim_version\": \""),
              std::string::npos);
    EXPECT_NE(a.str().find("\"runs\": 24"), std::string::npos);

    // No output file: "output" must be null and still parse.
    std::ostringstream noOut;
    writeManifest(noOut, opts, "heap", "", {});
    EXPECT_TRUE(JsonValidator(noOut.str()).valid()) << noOut.str();
    EXPECT_NE(noOut.str().find("\"output\": null"),
              std::string::npos);
}

TEST(Manifest, ConfigHashDistinguishesRuns)
{
    RunConfig a;
    a.benchmark = "gcc";
    RunConfig b = a;
    EXPECT_EQ(runConfigHash(a), runConfigHash(b));

    b.seed = 1;
    EXPECT_NE(runConfigHash(a), runConfigHash(b));

    RunConfig c = a;
    c.gals = true;
    EXPECT_NE(runConfigHash(a), runConfigHash(c));

    RunConfig d = a;
    d.dvfs.slowdown[2] = 1.25;
    EXPECT_NE(runConfigHash(a), runConfigHash(d));

    // The phase-seed sentinel hashes like its resolved value.
    RunConfig e = a;
    e.seed = 9;
    RunConfig f = e;
    f.phaseSeed = 9;
    EXPECT_EQ(runConfigHash(e), runConfigHash(f));

    EXPECT_NE(runConfigHash(std::vector<RunConfig>{a}),
              runConfigHash(std::vector<RunConfig>{a, a}));
}

TEST(Manifest, ConfigHashPinnedForPreFabricConfigs)
{
    // Byte-stability pin: archived sweep manifests (the CI
    // verify-archive artifacts from earlier PRs) replay through
    // --verify by comparing these exact hash values. The fabric
    // fields may extend the hash only behind fabric.active(); if
    // this test fails, the change broke every archived manifest.
    RunConfig cfg;
    cfg.benchmark = "gcc";
    EXPECT_EQ(runConfigHash(cfg), 0xf908c34edfbbcd09ull);
    cfg.instructions = 50000;
    EXPECT_EQ(runConfigHash(cfg), 0x465975452ebb9273ull);

    // An inert fabric config (cores == 1) must not perturb the hash,
    // whatever its other fields say.
    RunConfig inert = cfg;
    inert.fabric.traffic = "incast";
    inert.fabric.trafficWindow = 2;
    EXPECT_EQ(runConfigHash(inert), runConfigHash(cfg));

    // An active one must: the fabric axes are part of the sweep
    // identity for multi-core points.
    RunConfig active = cfg;
    active.fabric.cores = 4;
    EXPECT_NE(runConfigHash(active), runConfigHash(cfg));
    RunConfig mesh = active;
    mesh.fabric.topology = TopologyKind::mesh2d;
    EXPECT_NE(runConfigHash(mesh), runConfigHash(active));
    RunConfig hot = active;
    hot.fabric.traffic = "hotspot:1";
    EXPECT_NE(runConfigHash(hot), runConfigHash(active));
}

TEST(Trajectory, CsvHeaderDeferredPastEmptyGrids)
{
    // A literature-only scenario (empty grid) appended first must
    // not pin a header without the energy_nj.* columns.
    const std::string path =
        testing::TempDir() + "/traj_header.csv";
    TrajectorySink sink(path);
    sink.append("table1", {}, {});
    sink.append("fig05", {awkwardConfig()}, {awkwardResults()});
    sink.close();

    std::ifstream in(path);
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_NE(header.find("energy_nj.alu"), std::string::npos)
        << header;
    std::string row;
    std::size_t rows = 0;
    while (std::getline(in, row))
        ++rows;
    EXPECT_EQ(rows, 1u);
}

TEST(Trajectory, FormatFollowsExtension)
{
    EXPECT_EQ(trajectoryFormatForPath("out.jsonl"),
              TrajectoryFormat::jsonLines);
    EXPECT_EQ(trajectoryFormatForPath("out.json"),
              TrajectoryFormat::jsonLines);
    EXPECT_EQ(trajectoryFormatForPath("out"),
              TrajectoryFormat::jsonLines);
    EXPECT_EQ(trajectoryFormatForPath("out.csv"),
              TrajectoryFormat::csv);
    EXPECT_STREQ(trajectoryFormatName(TrajectoryFormat::csv), "csv");
    EXPECT_STREQ(trajectoryFormatName(TrajectoryFormat::jsonLines),
                 "jsonl");
}
