/**
 * @file
 * Tests for the multi-core fabric layer: topology generation and
 * routing, traffic-matrix parsing, FabricConfig validation, the
 * single-core identity guarantee (an inert fabric config is
 * bit-for-bit the classic single-Processor run), and the determinism
 * contract (repeat runs and calendar-vs-heap engines byte-identical,
 * per-core records included).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "fabric/fabric_config.hh"
#include "fabric/system.hh"
#include "fabric/topology.hh"
#include "runner/reporter.hh"
#include "sim/event_queue.hh"

using namespace gals;

namespace
{

/** Canonical byte serialization of one run, per-core block included —
 *  the same bytes a trajectory would archive. */
std::string
recordBytes(const RunConfig &cfg, const RunResults &r)
{
    std::ostringstream os;
    runner::writeJsonLines(os, "t", {cfg}, {r});
    return os.str();
}

RunConfig
fabricCfg(unsigned cores, TopologyKind topo,
          const std::string &traffic, bool gals = true)
{
    RunConfig cfg;
    cfg.benchmark = "gcc";
    cfg.instructions = 1200;
    cfg.gals = gals;
    cfg.fabric.cores = cores;
    cfg.fabric.topology = topo;
    cfg.fabric.traffic = traffic;
    return cfg;
}

} // namespace

TEST(Topology, RingLinks)
{
    const auto links = buildTopologyLinks(TopologyKind::ring, 4);
    // Bidirectional ring: 2 directed links per node, sorted by
    // (src, dst), deduped.
    ASSERT_EQ(links.size(), 8u);
    for (const LinkSpec &l : links) {
        const unsigned fwd = (l.src + 1) % 4;
        const unsigned back = (l.src + 3) % 4;
        EXPECT_TRUE(l.dst == fwd || l.dst == back)
            << l.src << "->" << l.dst;
    }
    // Two cores: one link each way, not a duplicated pair.
    EXPECT_EQ(buildTopologyLinks(TopologyKind::ring, 2).size(), 2u);
}

TEST(Topology, MeshLinksAndShape)
{
    EXPECT_EQ(meshRows(6), 2u);  // 2x3
    EXPECT_EQ(meshRows(9), 3u);  // 3x3
    EXPECT_EQ(meshRows(7), 1u);  // prime: degenerates to a chain
    // 2x3 mesh: 7 undirected edges? No: rows*(cols-1) + cols*(rows-1)
    // = 2*2 + 3*1 = 7 undirected, 14 directed.
    EXPECT_EQ(buildTopologyLinks(TopologyKind::mesh2d, 6).size(),
              14u);
}

TEST(Topology, RingRoutingShortestDirection)
{
    // 6-node ring: 0 -> 2 goes forward (distance 2 vs 4).
    EXPECT_EQ(nextHop(TopologyKind::ring, 6, 0, 2), 1u);
    // 0 -> 5 goes backward (distance 1).
    EXPECT_EQ(nextHop(TopologyKind::ring, 6, 0, 5), 5u);
    // Tie (0 -> 3) resolves forward, deterministically.
    EXPECT_EQ(nextHop(TopologyKind::ring, 6, 0, 3), 1u);
}

TEST(Topology, MeshRoutingColumnFirst)
{
    // 2x3 mesh (rows x cols): node = row*3 + col.
    //   0 1 2
    //   3 4 5
    // 0 -> 5: column first (XY with cols varying fastest): 0 -> 1 ->
    // 2 -> 5.
    unsigned at = 0;
    std::vector<unsigned> path;
    while (at != 5) {
        at = nextHop(TopologyKind::mesh2d, 6, at, 5);
        path.push_back(at);
        ASSERT_LT(path.size(), 6u);
    }
    EXPECT_EQ(path, (std::vector<unsigned>{1, 2, 5}));
}

TEST(Traffic, PatternsExpand)
{
    std::vector<TrafficFlow> flows;
    EXPECT_EQ(parseTrafficPattern("permutation", 4, flows), "");
    ASSERT_EQ(flows.size(), 4u);
    EXPECT_EQ(flows[3].dst, 0u);

    EXPECT_EQ(parseTrafficPattern("uniform", 3, flows), "");
    EXPECT_EQ(flows.size(), 6u); // all-to-all minus self

    EXPECT_EQ(parseTrafficPattern("incast", 4, flows), "");
    for (const TrafficFlow &f : flows)
        EXPECT_EQ(f.dst, 0u);

    EXPECT_EQ(parseTrafficPattern("hotspot:2", 4, flows), "");
    for (const TrafficFlow &f : flows)
        EXPECT_EQ(f.dst, 2u);

    EXPECT_EQ(parseTrafficPattern("none", 4, flows), "");
    EXPECT_TRUE(flows.empty());
}

TEST(Traffic, RejectsBadSpecs)
{
    std::vector<TrafficFlow> flows;
    EXPECT_NE(parseTrafficPattern("bogus", 4, flows), "");
    // hotspot target out of range for this core count.
    EXPECT_NE(parseTrafficPattern("hotspot:7", 4, flows), "");
    // Syntax-only check passes hotspot:7 (core count unknown)...
    EXPECT_EQ(checkTrafficSpec("hotspot:7"), "");
    // ...but still rejects garbage.
    EXPECT_NE(checkTrafficSpec("hotspot:x"), "");
    EXPECT_NE(checkTrafficSpec(""), "");
}

TEST(FabricConfig, Validate)
{
    FabricConfig fab;
    EXPECT_EQ(fab.validate(), ""); // inert default
    fab.cores = 4;
    EXPECT_EQ(fab.validate(), "");
    fab.traffic = "hotspot:9";
    EXPECT_NE(fab.validate(), "");
    fab.traffic = "uniform";
    fab.linkFifoCapacity = 1;
    EXPECT_NE(fab.validate(), "");
}

TEST(System, SingleCoreIdentity)
{
    // cores == 1 must take the classic path: identical record bytes,
    // fabric fields absent.
    RunConfig plain;
    plain.benchmark = "gcc";
    plain.instructions = 1500;
    plain.gals = true;

    RunConfig inert = plain;
    inert.fabric.cores = 1;
    inert.fabric.traffic = "incast"; // inert: must not matter

    const std::string a = recordBytes(plain, runOne(plain));
    const std::string b = recordBytes(inert, runOne(inert));
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.find("\"cores\""), std::string::npos);
    EXPECT_EQ(a.find("per_core"), std::string::npos);
}

TEST(System, DeterministicRepeatRuns)
{
    const RunConfig cfg =
        fabricCfg(4, TopologyKind::ring, "uniform");
    const std::string a = recordBytes(cfg, runOne(cfg));
    const std::string b = recordBytes(cfg, runOne(cfg));
    EXPECT_EQ(a, b);
    // The record carries the fabric axes and the per-core block.
    EXPECT_NE(a.find("\"cores\":4"), std::string::npos);
    EXPECT_NE(a.find("\"topology\":\"ring\""), std::string::npos);
    EXPECT_NE(a.find("\"per_core\":[{\"core\":0,"),
              std::string::npos);
}

TEST(System, EnginesAgreeByteForByte)
{
    const RunConfig cfg =
        fabricCfg(6, TopologyKind::mesh2d, "hotspot:1");
    const QueueEngine prev = EventQueue::defaultEngine();
    EventQueue::setDefaultEngine(QueueEngine::calendar);
    const std::string cal = recordBytes(cfg, runOne(cfg));
    EventQueue::setDefaultEngine(QueueEngine::heap);
    const std::string heap = recordBytes(cfg, runOne(cfg));
    EventQueue::setDefaultEngine(prev);
    EXPECT_EQ(cal, heap);
}

TEST(System, EveryCoreReachesItsCommitTarget)
{
    const RunConfig cfg =
        fabricCfg(4, TopologyKind::ring, "permutation");
    System sys(cfg);
    const RunResults r = sys.run();
    ASSERT_EQ(r.cores.size(), 4u);
    for (const CoreResults &c : r.cores) {
        EXPECT_EQ(c.committed, cfg.instructions);
        EXPECT_GT(c.msgsSent, 0u);
        EXPECT_GT(c.msgsReceived, 0u);
    }
    EXPECT_EQ(r.committed, 4 * cfg.instructions);
}

TEST(System, BaseModeRunsSynchronously)
{
    // Fabric in base (non-GALS) mode: sync latch links, no random
    // phases — still deterministic and completing.
    const RunConfig cfg =
        fabricCfg(4, TopologyKind::ring, "uniform", false);
    const std::string a = recordBytes(cfg, runOne(cfg));
    const std::string b = recordBytes(cfg, runOne(cfg));
    EXPECT_EQ(a, b);
}
