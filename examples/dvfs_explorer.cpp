/**
 * @file
 * DVFS design-space explorer: sweeps per-domain clock slowdowns for
 * one benchmark on the GALS processor and prints the performance /
 * energy / power frontier with the ideal voltage-scaling bound.
 * Thin driver over the "dvfs-explorer" scenario —
 * `galsbench --scenario dvfs-explorer` is equivalent.
 *
 * Usage: dvfs_explorer [benchmark] [instructions]
 */

#include <cstdlib>

#include "bench/register_all.hh"
#include "runner/engine.hh"

using namespace gals;
using namespace gals::runner;

int
main(int argc, char **argv)
{
    SweepOptions opts;
    opts.benchmarks = {argc > 1 ? argv[1] : "gcc"};
    opts.instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40000;

    ScenarioRegistry registry;
    bench::registerAllScenarios(registry);
    const Scenario &scenario = *registry.find("dvfs-explorer");

    const ExperimentEngine engine(0); // all hardware threads
    const std::vector<RunResults> results =
        engine.run(scenario.makeRuns(opts));
    scenario.reduce(opts, SweepView{results});
    return 0;
}
