/**
 * @file
 * DVFS design-space explorer: sweeps per-domain clock slowdowns for
 * one benchmark on the GALS processor and prints the performance /
 * energy / power frontier, with the ideal uniform-voltage-scaling
 * bound for reference — the methodology behind the paper's section 5.2
 * ("we tried to determine which parts of the processor could be slowed
 * down in an application-dependent manner").
 *
 * Usage: dvfs_explorer [benchmark] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hh"
#include "dvfs/dvfs_policy.hh"

using namespace gals;

namespace
{

void
runPoint(const std::string &bench, std::uint64_t insts,
         const std::string &label, const DvfsSetting &setting,
         const RunResults &base)
{
    RunConfig rc;
    rc.benchmark = bench;
    rc.instructions = insts;
    rc.gals = true;
    rc.dvfs = setting;
    const RunResults g = runOne(rc);

    const double perf = g.ipcNominal / base.ipcNominal;
    const double energy = g.energyJ / base.energyJ;
    const double power = g.avgPowerW / base.avgPowerW;
    const IdealScaling ideal = idealScalingForPerf(perf, defaultTech());

    std::printf("%-22s %8.3f %8.3f %8.3f %8.3f %s\n", label.c_str(),
                perf, energy, power, ideal.energyFactor,
                energy < ideal.energyFactor + 0.03 ? "(near-ideal)"
                                                   : "");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "gcc";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40000;

    std::printf("DVFS explorer: %s, %llu instructions (base = fully "
                "synchronous at nominal clock/voltage)\n\n",
                bench.c_str(), static_cast<unsigned long long>(insts));

    RunConfig rb;
    rb.benchmark = bench;
    rb.instructions = insts;
    const RunResults base = runOne(rb);
    std::printf("base: ipc %.3f, %.2f W\n\n", base.ipcNominal,
                base.avgPowerW);

    std::printf("%-22s %8s %8s %8s %8s\n", "configuration", "perf",
                "energy", "power", "ideal");

    runPoint(bench, insts, "gals nominal", DvfsSetting(), base);

    // Single-domain sweeps.
    for (const DomainId d : {DomainId::fetch, DomainId::fpd,
                             DomainId::memd, DomainId::intd}) {
        for (const double pct : {20.0, 50.0}) {
            DvfsSetting s;
            s.slowdown[domainIndex(d)] = slowdownFromPercent(pct);
            runPoint(bench, insts,
                     std::string(domainName(d)) + " -" +
                         std::to_string(static_cast<int>(pct)) + "%",
                     s, base);
        }
    }

    // The paper's named policies.
    runPoint(bench, insts, "paper generic (fig11)",
             genericSlowdownPolicy().setting, base);
    runPoint(bench, insts, "paper gals-1 (fig13)",
             gccFpPolicy(1).setting, base);
    runPoint(bench, insts, "paper gals-2 (fig13)",
             gccFpPolicy(2).setting, base);

    std::printf("\n'ideal' = synchronous core slowed uniformly to the "
                "same performance with voltage per eq. 1 "
                "(alpha = %.1f)\n",
                defaultTech().alpha);
    return 0;
}
