/**
 * @file
 * Quickstart: run the base (fully synchronous) and GALS processors on
 * one benchmark and print the paper's headline metrics side by side.
 * Thin driver over the "quickstart" scenario —
 * `galsbench --scenario quickstart` is equivalent.
 *
 * Usage: quickstart [benchmark] [instructions]
 */

#include <cstdlib>

#include "bench/register_all.hh"
#include "runner/engine.hh"

using namespace gals;
using namespace gals::runner;

int
main(int argc, char **argv)
{
    SweepOptions opts;
    opts.benchmarks = {argc > 1 ? argv[1] : "gcc"};
    opts.instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

    ScenarioRegistry registry;
    bench::registerAllScenarios(registry);
    const Scenario &scenario = *registry.find("quickstart");

    const ExperimentEngine engine(0); // all hardware threads
    const std::vector<RunResults> results =
        engine.run(scenario.makeRuns(opts));
    scenario.reduce(opts, SweepView{results});
    return 0;
}
