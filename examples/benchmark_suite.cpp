/**
 * @file
 * Run every shipped benchmark on the base and GALS processors and
 * print a full comparison table plus the base processor's energy
 * breakdown. Thin driver over the "suite" scenario —
 * `galsbench --scenario suite` is equivalent.
 *
 * Usage: benchmark_suite [instructions] [suite|benchmark ...]
 */

#include <cstdlib>
#include <string>

#include "bench/register_all.hh"
#include "runner/engine.hh"

using namespace gals;
using namespace gals::runner;

int
main(int argc, char **argv)
{
    SweepOptions opts;
    opts.instructions =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto in_suite = benchmarksInSuite(arg);
        if (!in_suite.empty())
            for (const auto &p : in_suite)
                opts.benchmarks.push_back(p.name);
        else
            opts.benchmarks.push_back(arg);
    }

    ScenarioRegistry registry;
    bench::registerAllScenarios(registry);
    const Scenario &scenario = *registry.find("suite");

    const ExperimentEngine engine(0); // all hardware threads
    const std::vector<RunResults> results =
        engine.run(scenario.makeRuns(opts));
    scenario.reduce(opts, SweepView{results});
    return 0;
}
