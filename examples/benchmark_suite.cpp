/**
 * @file
 * Run every shipped benchmark on the base and GALS processors and
 * print a full comparison table plus the base processor's energy
 * breakdown — a compact view of everything the paper measures.
 *
 * Usage: benchmark_suite [instructions] [suite|benchmark ...]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hh"

using namespace gals;

int
main(int argc, char **argv)
{
    const std::uint64_t insts =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

    std::vector<std::string> names;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto in_suite = benchmarksInSuite(arg);
        if (!in_suite.empty())
            for (const auto &p : in_suite)
                names.push_back(p.name);
        else
            names.push_back(arg);
    }
    if (names.empty())
        names = benchmarkNames();

    std::printf("%-10s %6s %6s | %5s %5s %5s | %5s %5s | %5s %5s | "
                "%5s %5s\n",
                "bench", "ipcB", "ipcG", "perf", "enrgy", "power",
                "slipB", "slipG", "wpB%", "wpG%", "accB", "dl1B%");

    double sum_perf = 0, sum_e = 0, sum_p = 0, sum_slip = 0;
    for (const auto &name : names) {
        const PairResults pr = runPair(name, insts);
        const auto &b = pr.base;
        const auto &g = pr.galsRun;
        std::printf("%-10s %6.3f %6.3f | %5.3f %5.3f %5.3f | "
                    "%5.1f %5.1f | %5.2f %5.2f | %5.3f %5.2f\n",
                    name.c_str(), b.ipcNominal, g.ipcNominal,
                    g.ipcNominal / b.ipcNominal, pr.energyRatio(),
                    pr.powerRatio(), b.avgSlipCycles, g.avgSlipCycles,
                    100 * b.misspecFraction, 100 * g.misspecFraction,
                    b.dirAccuracy, 100 * b.dl1MissRate);
        sum_perf += g.ipcNominal / b.ipcNominal;
        sum_e += pr.energyRatio();
        sum_p += pr.powerRatio();
        sum_slip += pr.slipRatio();
    }
    const double n = static_cast<double>(names.size());
    std::printf("%-10s %6s %6s | %5.3f %5.3f %5.3f | avg slip ratio "
                "%.2f\n",
                "AVG", "", "", sum_perf / n, sum_e / n, sum_p / n,
                sum_slip / n);

    // Base-processor energy breakdown for the first benchmark.
    RunConfig rc;
    rc.benchmark = names.front();
    rc.instructions = insts;
    const RunResults r = runOne(rc);
    double total = 0;
    for (const auto &[unit, nj] : r.unitEnergyNj)
        total += nj;
    std::printf("\nenergy breakdown, base, %s (total %.3f mJ, "
                "%.1f W):\n",
                names.front().c_str(), total * 1e-6, r.avgPowerW);
    for (const auto &[unit, nj] : r.unitEnergyNj)
        if (nj > 0)
            std::printf("  %-14s %8.3f mJ  %5.1f%%\n", unit.c_str(),
                        nj * 1e-6, 100.0 * nj / total);
    return 0;
}
