/**
 * @file
 * Multi-clock playground: the paper's Figure 4 example, built on the
 * public event-driven engine API.
 *
 * Three clock domains with periods 2 ns, 3 ns and 2.5 ns (phases 0.5,
 * 1.0 and 0.0 ns) tick side by side; domains 1 and 3 exchange tokens
 * through an asynchronous FIFO so you can watch the synchronizer
 * latency and the full/empty flag conservatism in action.
 *
 * Usage: multiclock_playground [ns-to-simulate]
 */

#include <cstdio>
#include <cstdlib>

#include "core/channel.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"

using namespace gals;

int
main(int argc, char **argv)
{
    const Tick horizon =
        (argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20) * 1000;

    EventQueue eq("playground");

    // The three clocks of paper Figure 4 (picosecond ticks).
    ClockDomain clk1(eq, "clock1", 2000, 500);
    ClockDomain clk2(eq, "clock2", 3000, 1000);
    ClockDomain clk3(eq, "clock3", 2500, 0);

    // An asynchronous FIFO from domain 1 to domain 3.
    Channel<int> fifo("fifo.1to3", ChannelMode::asyncFifo, clk1, clk3,
                      4, 2);

    int next_token = 0;
    clk1.addTicker([&] {
        std::printf("%7.1f ns  clock1 edge (cycle %llu)",
                    eq.now() / 1000.0,
                    static_cast<unsigned long long>(clk1.cycle()));
        if (fifo.canPush()) {
            fifo.push(next_token);
            std::printf("  -> push token %d", next_token);
            ++next_token;
        } else {
            std::printf("  (fifo full-flag set)");
        }
        std::printf("\n");
    });

    clk2.addTicker([&] {
        std::printf("%7.1f ns  clock2 edge (cycle %llu)\n",
                    eq.now() / 1000.0,
                    static_cast<unsigned long long>(clk2.cycle()));
    });

    clk3.addTicker([&] {
        std::printf("%7.1f ns  clock3 edge (cycle %llu)",
                    eq.now() / 1000.0,
                    static_cast<unsigned long long>(clk3.cycle()));
        while (!fifo.empty()) {
            std::printf("  <- pop token %d (waited %.1f ns)",
                        fifo.front(),
                        (eq.now() - fifo.frontPushTick()) / 1000.0);
            fifo.pop();
        }
        std::printf("\n");
    });

    clk1.start();
    clk2.start();
    clk3.start();
    eq.runUntil(horizon);

    std::printf("\nprocessed %llu events; fifo moved %llu tokens, "
                "mean residency %.2f ns\n",
                static_cast<unsigned long long>(eq.processedCount()),
                static_cast<unsigned long long>(fifo.pops()),
                fifo.pops() ? fifo.totalResidency() / 1000.0 /
                                  static_cast<double>(fifo.pops())
                            : 0.0);
    return 0;
}
