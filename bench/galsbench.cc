/**
 * @file
 * galsbench — the one CLI for every experiment in this repo.
 *
 * Replaces the former 15 hand-rolled bench drivers: each paper
 * figure, ablation and sweep is a registered Scenario; galsbench
 * expands the chosen scenarios into their run grids, executes them on
 * the parallel ExperimentEngine, and renders the results either as
 * the paper-style tables (default) or as raw JSON-lines / CSV
 * records.
 *
 * Sweeps are archivable: `--output PATH` streams every per-run record
 * into a trajectory file (JSON-lines, or CSV when PATH ends in .csv)
 * and `--manifest PATH` writes a run manifest (engine, seeds, config
 * hashes); both are byte-identical for any `--jobs` on any machine.
 * `--seeds N` / `--seed-list a,b,c` replicate every grid point across
 * workload seeds, and the table/JSON/CSV reports then carry
 * mean ± 95% CI columns (per-replica rows stay in the trajectory).
 *
 * Usage:
 *   galsbench --list [--format md]
 *   galsbench --scenario fig05 [--scenario fig09 ...] | --all
 *             [--jobs N] [--format table|json|csv]
 *             [--insts N] [--bench NAME] [--seed N]
 *             [--seeds N | --seed-list a,b,c]
 *             [--output PATH] [--manifest PATH]
 *             [--engine calendar|heap]
 *
 * Environment: GALSSIM_INSTS, GALSSIM_BENCH and GALSSIM_ENGINE provide
 * defaults for --insts / --bench / --engine (the first two are the
 * knobs the old drivers honoured).
 */

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/register_all.hh"
#include "runner/engine.hh"
#include "runner/reporter.hh"
#include "runner/scenario.hh"
#include "runner/stats.hh"
#include "runner/trajectory.hh"
#include "sim/event_queue.hh"

using namespace gals;
using namespace gals::runner;

namespace
{

void
usage(std::FILE *to, int exitCode)
{
    std::fprintf(
        to,
        "usage: galsbench --list [--format md]\n"
        "       galsbench (--scenario NAME)... | --all\n"
        "                 [--jobs N] [--format table|json|csv]\n"
        "                 [--insts N] [--bench NAME] [--seed N]\n"
        "                 [--seeds N | --seed-list a,b,c]\n"
        "                 [--output PATH] [--manifest PATH]\n"
        "                 [--engine calendar|heap]\n"
        "\n"
        "  --list          list registered scenarios and exit\n"
        "                  (--format md emits the markdown catalog\n"
        "                  that docs/SCENARIOS.md is generated from)\n"
        "  --scenario NAME run one scenario (repeatable)\n"
        "  --all           run every registered scenario\n"
        "  --jobs N        worker threads (0 = all hardware threads;\n"
        "                  default 1; results are identical for any "
        "N)\n"
        "  --format F      table (default), json or csv\n"
        "  --insts N       instructions per run (or GALSSIM_INSTS)\n"
        "  --bench NAME    restrict the benchmark sweep (repeatable,\n"
        "                  or GALSSIM_BENCH)\n"
        "  --seed N        workload seed (default 0)\n"
        "  --seeds N       replicate every grid point over N seeds\n"
        "                  (seed, seed+1, ...); reports show\n"
        "                  mean +/- 95%% CI\n"
        "  --seed-list S   explicit comma-separated replica seeds\n"
        "                  (overrides --seed/--seeds)\n"
        "  --output PATH   append every per-run record to a\n"
        "                  trajectory file: JSON-lines, or CSV when\n"
        "                  PATH ends in .csv\n"
        "  --manifest PATH write a run manifest (version, engine,\n"
        "                  seeds, per-scenario config hashes)\n"
        "  --engine E      event-queue engine: calendar (default) or\n"
        "                  heap (A/B baseline; or GALSSIM_ENGINE).\n"
        "                  Results are identical for either.\n");
    std::exit(exitCode);
}

const char *
argValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "galsbench: %s needs a value\n", argv[i]);
        usage(stderr, 2);
    }
    return argv[++i];
}

std::uint64_t
numericValue(const char *flag, const char *text)
{
    // strtoull silently wraps negatives ("-1" -> 2^64-1) and
    // saturates out-of-range values with only errno to show for it,
    // so reject a leading minus sign explicitly — skipping the same
    // whitespace set strtoull itself skips — and check ERANGE.
    const char *p = text;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    char *end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(text, &end, 10);
    if (*p == '-' || end == text || *end != '\0' ||
        errno == ERANGE) {
        std::fprintf(stderr,
                     "galsbench: %s expects a non-negative number, "
                     "got '%s'\n",
                     flag, text);
        usage(stderr, 2);
    }
    return v;
}

/** numericValue() additionally bounded to `unsigned` range, so
 *  --jobs / --seeds cannot silently truncate through a cast. */
unsigned
unsignedValue(const char *flag, const char *text)
{
    const std::uint64_t v = numericValue(flag, text);
    if (v > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "galsbench: %s value %s is out of "
                             "range\n",
                     flag, text);
        usage(stderr, 2);
    }
    return static_cast<unsigned>(v);
}

/** Parse the --seed-list value: comma-separated non-negative
 *  integers, at least one. */
std::vector<std::uint64_t>
seedListValue(const char *text)
{
    std::vector<std::uint64_t> seeds;
    const std::string s = text;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string item = s.substr(pos, comma - pos);
        if (item.empty()) {
            std::fprintf(stderr,
                         "galsbench: --seed-list expects "
                         "comma-separated numbers, got '%s'\n",
                         text);
            usage(stderr, 2);
        }
        seeds.push_back(numericValue("--seed-list", item.c_str()));
        pos = comma + 1;
    }
    return seeds;
}

} // namespace

int
main(int argc, char **argv)
{
    ScenarioRegistry registry;
    bench::registerAllScenarios(registry);

    SweepOptions opts = SweepOptions::fromEnvironment();
    if (const char *env = std::getenv("GALSSIM_ENGINE"))
        EventQueue::setDefaultEngine(parseQueueEngine(env));
    std::vector<std::string> selected, cliBenchmarks;
    std::string outputPath, manifestPath;
    bool listOnly = false, runAll = false;
    unsigned jobs = 1;
    OutputFormat format = OutputFormat::table;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--list")) {
            listOnly = true;
        } else if (!std::strcmp(arg, "--all")) {
            runAll = true;
        } else if (!std::strcmp(arg, "--scenario")) {
            selected.push_back(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--jobs")) {
            jobs = unsignedValue("--jobs", argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--format")) {
            format = parseOutputFormat(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--insts")) {
            opts.instructions =
                numericValue("--insts", argValue(argc, argv, i));
            if (opts.instructions == 0) {
                std::fprintf(stderr,
                             "galsbench: --insts must be > 0\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--bench")) {
            cliBenchmarks.push_back(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--seed")) {
            opts.seed =
                numericValue("--seed", argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--seeds")) {
            opts.seedReplicas =
                unsignedValue("--seeds", argValue(argc, argv, i));
            if (opts.seedReplicas == 0) {
                std::fprintf(stderr,
                             "galsbench: --seeds must be > 0\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--seed-list")) {
            opts.explicitSeeds =
                seedListValue(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--output")) {
            outputPath = argValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--manifest")) {
            manifestPath = argValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--engine")) {
            EventQueue::setDefaultEngine(
                parseQueueEngine(argValue(argc, argv, i)));
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(stdout, 0);
        } else {
            std::fprintf(stderr, "galsbench: unknown argument '%s'\n",
                         arg);
            usage(stderr, 2);
        }
    }

    // Explicit --bench flags override the GALSSIM_BENCH default.
    if (!cliBenchmarks.empty())
        opts.benchmarks = std::move(cliBenchmarks);

    if (listOnly) {
        if (!outputPath.empty() || !manifestPath.empty()) {
            std::fprintf(stderr,
                         "galsbench: --output/--manifest are only "
                         "valid when running scenarios\n");
            return 2;
        }
        if (format == OutputFormat::markdown) {
            // The checked-in catalog documents the registry at stock
            // sweep defaults, deliberately ignoring GALSSIM_INSTS /
            // --insts overrides so the CI drift check is stable in
            // any environment.
            writeScenarioCatalogMarkdown(std::cout, registry,
                                         SweepOptions{});
            return 0;
        }
        std::printf("%-16s %-14s %s\n", "name", "figure",
                    "description");
        for (const Scenario &s : registry.all())
            std::printf("%-16s %-14s %s\n", s.name.c_str(),
                        s.figure.c_str(), s.description.c_str());
        return 0;
    }

    if (format == OutputFormat::markdown) {
        std::fprintf(stderr,
                     "galsbench: --format md is only valid with "
                     "--list\n");
        return 2;
    }

    if (runAll) {
        // --all replaces any --scenario picks (no duplicate runs).
        selected.clear();
        for (const Scenario &s : registry.all())
            selected.push_back(s.name);
    }

    if (selected.empty()) {
        std::fprintf(stderr,
                     "galsbench: no scenario selected (try --list)\n");
        usage(stderr, 2);
    }

    // Resolve every scenario before opening the sink: the sink
    // truncates --output on open, and a typo'd scenario name must
    // not destroy a previously archived trajectory.
    std::vector<const Scenario *> scenarios;
    scenarios.reserve(selected.size());
    for (const std::string &name : selected) {
        const Scenario *scenario = registry.find(name);
        if (!scenario) {
            std::fprintf(stderr,
                         "galsbench: unknown scenario '%s' (try "
                         "--list)\n",
                         name.c_str());
            return 2;
        }
        scenarios.push_back(scenario);
    }

    std::unique_ptr<TrajectorySink> sink;
    if (!outputPath.empty())
        sink = std::make_unique<TrajectorySink>(outputPath);
    std::vector<ManifestScenario> manifestScenarios;

    const std::size_t replicas = opts.seedList().size();
    const ExperimentEngine engine(jobs);
    for (const Scenario *scenario : scenarios) {
        std::size_t gridSize = 0;
        const std::vector<RunConfig> runs =
            expandReplicatedRuns(*scenario, opts, &gridSize);
        const std::vector<RunResults> results = engine.run(runs);

        if (sink)
            sink->append(scenario->name, runs, results);
        manifestScenarios.push_back({scenario->name, gridSize,
                                     replicas, runConfigHash(runs)});

        if (replicas <= 1) {
            switch (format) {
              case OutputFormat::table:
                scenario->reduce(opts, SweepView{results});
                break;
              case OutputFormat::json:
                writeJsonLines(std::cout, scenario->name, runs,
                               results);
                break;
              case OutputFormat::csv:
                writeCsv(std::cout, scenario->name, runs, results);
                break;
              case OutputFormat::markdown:
                break; // rejected above; --list handles md itself
            }
            continue;
        }

        if (gridSize == 0) {
            // Literature-only scenario (empty grid): nothing to
            // aggregate, but its table report is still valid.
            if (format == OutputFormat::table)
                scenario->reduce(opts, SweepView{results});
            continue;
        }

        // The first replica block is the grid the aggregated
        // reports describe.
        const std::vector<RunConfig> gridCfgs(
            runs.begin(),
            runs.begin() + static_cast<std::ptrdiff_t>(gridSize));
        const ReplicaSummary summary =
            summarizeReplicas(gridSize, results);
        switch (format) {
          case OutputFormat::table:
            scenario->reduce(opts, SweepView{summary.mean, &summary});
            writeReplicationTable(std::cout, scenario->name, gridCfgs,
                                  summary);
            break;
          case OutputFormat::json:
            writeJsonLinesSummary(std::cout, scenario->name, gridCfgs,
                                  summary);
            break;
          case OutputFormat::csv:
            writeCsvSummary(std::cout, scenario->name, gridCfgs,
                            summary);
            break;
          case OutputFormat::markdown:
            break;
        }
    }

    if (sink)
        sink->close();
    if (!manifestPath.empty())
        writeManifestFile(manifestPath, opts,
                          queueEngineName(EventQueue::defaultEngine()),
                          outputPath, manifestScenarios);
    return 0;
}
