/**
 * @file
 * galsbench — the one CLI for every experiment in this repo.
 *
 * Replaces the former 15 hand-rolled bench drivers: each paper
 * figure, ablation and sweep is a registered Scenario; galsbench
 * expands the chosen scenarios into their run grids, executes them on
 * the parallel ExperimentEngine, and renders the results either as
 * the paper-style tables (default) or as raw JSON-lines / CSV
 * records.
 *
 * Usage:
 *   galsbench --list [--format md]
 *   galsbench --scenario fig05 [--scenario fig09 ...] | --all
 *             [--jobs N] [--format table|json|csv]
 *             [--insts N] [--bench NAME] [--seed N]
 *             [--engine calendar|heap]
 *
 * Environment: GALSSIM_INSTS, GALSSIM_BENCH and GALSSIM_ENGINE provide
 * defaults for --insts / --bench / --engine (the first two are the
 * knobs the old drivers honoured).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/register_all.hh"
#include "runner/engine.hh"
#include "runner/reporter.hh"
#include "runner/scenario.hh"
#include "sim/event_queue.hh"

using namespace gals;
using namespace gals::runner;

namespace
{

void
usage(std::FILE *to, int exitCode)
{
    std::fprintf(
        to,
        "usage: galsbench --list [--format md]\n"
        "       galsbench (--scenario NAME)... | --all\n"
        "                 [--jobs N] [--format table|json|csv]\n"
        "                 [--insts N] [--bench NAME] [--seed N]\n"
        "                 [--engine calendar|heap]\n"
        "\n"
        "  --list          list registered scenarios and exit\n"
        "                  (--format md emits the markdown catalog\n"
        "                  that docs/SCENARIOS.md is generated from)\n"
        "  --scenario NAME run one scenario (repeatable)\n"
        "  --all           run every registered scenario\n"
        "  --jobs N        worker threads (0 = all hardware threads;\n"
        "                  default 1; results are identical for any "
        "N)\n"
        "  --format F      table (default), json or csv\n"
        "  --insts N       instructions per run (or GALSSIM_INSTS)\n"
        "  --bench NAME    restrict the benchmark sweep (repeatable,\n"
        "                  or GALSSIM_BENCH)\n"
        "  --seed N        workload seed (default 0)\n"
        "  --engine E      event-queue engine: calendar (default) or\n"
        "                  heap (A/B baseline; or GALSSIM_ENGINE).\n"
        "                  Results are identical for either.\n");
    std::exit(exitCode);
}

const char *
argValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "galsbench: %s needs a value\n", argv[i]);
        usage(stderr, 2);
    }
    return argv[++i];
}

std::uint64_t
numericValue(const char *flag, const char *text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "galsbench: %s expects a number, got "
                             "'%s'\n",
                     flag, text);
        usage(stderr, 2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    ScenarioRegistry registry;
    bench::registerAllScenarios(registry);

    SweepOptions opts = SweepOptions::fromEnvironment();
    if (const char *env = std::getenv("GALSSIM_ENGINE"))
        EventQueue::setDefaultEngine(parseQueueEngine(env));
    std::vector<std::string> selected, cliBenchmarks;
    bool listOnly = false, runAll = false;
    unsigned jobs = 1;
    OutputFormat format = OutputFormat::table;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--list")) {
            listOnly = true;
        } else if (!std::strcmp(arg, "--all")) {
            runAll = true;
        } else if (!std::strcmp(arg, "--scenario")) {
            selected.push_back(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--jobs")) {
            jobs = static_cast<unsigned>(
                numericValue("--jobs", argValue(argc, argv, i)));
        } else if (!std::strcmp(arg, "--format")) {
            format = parseOutputFormat(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--insts")) {
            opts.instructions =
                numericValue("--insts", argValue(argc, argv, i));
            if (opts.instructions == 0) {
                std::fprintf(stderr,
                             "galsbench: --insts must be > 0\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--bench")) {
            cliBenchmarks.push_back(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--seed")) {
            opts.seed =
                numericValue("--seed", argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--engine")) {
            EventQueue::setDefaultEngine(
                parseQueueEngine(argValue(argc, argv, i)));
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(stdout, 0);
        } else {
            std::fprintf(stderr, "galsbench: unknown argument '%s'\n",
                         arg);
            usage(stderr, 2);
        }
    }

    // Explicit --bench flags override the GALSSIM_BENCH default.
    if (!cliBenchmarks.empty())
        opts.benchmarks = std::move(cliBenchmarks);

    if (listOnly) {
        if (format == OutputFormat::markdown) {
            // The checked-in catalog documents the registry at stock
            // sweep defaults, deliberately ignoring GALSSIM_INSTS /
            // --insts overrides so the CI drift check is stable in
            // any environment.
            writeScenarioCatalogMarkdown(std::cout, registry,
                                         SweepOptions{});
            return 0;
        }
        std::printf("%-16s %-14s %s\n", "name", "figure",
                    "description");
        for (const Scenario &s : registry.all())
            std::printf("%-16s %-14s %s\n", s.name.c_str(),
                        s.figure.c_str(), s.description.c_str());
        return 0;
    }

    if (format == OutputFormat::markdown) {
        std::fprintf(stderr,
                     "galsbench: --format md is only valid with "
                     "--list\n");
        return 2;
    }

    if (runAll) {
        // --all replaces any --scenario picks (no duplicate runs).
        selected.clear();
        for (const Scenario &s : registry.all())
            selected.push_back(s.name);
    }

    if (selected.empty()) {
        std::fprintf(stderr,
                     "galsbench: no scenario selected (try --list)\n");
        usage(stderr, 2);
    }

    const ExperimentEngine engine(jobs);
    for (const std::string &name : selected) {
        const Scenario *scenario = registry.find(name);
        if (!scenario) {
            std::fprintf(stderr,
                         "galsbench: unknown scenario '%s' (try "
                         "--list)\n",
                         name.c_str());
            return 2;
        }

        const std::vector<RunConfig> runs = scenario->makeRuns(opts);
        const std::vector<RunResults> results = engine.run(runs);

        switch (format) {
          case OutputFormat::table:
            scenario->reduce(opts, results);
            break;
          case OutputFormat::json:
            writeJsonLines(std::cout, scenario->name, runs, results);
            break;
          case OutputFormat::csv:
            writeCsv(std::cout, scenario->name, runs, results);
            break;
          case OutputFormat::markdown:
            break; // rejected above; --list handles md itself
        }
    }
    return 0;
}
